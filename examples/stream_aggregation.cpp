// Streaming aggregation with a combiner flow (paper section 4.2.3): eight
// worker nodes push measurements; one receiver node computes SUM / COUNT /
// MIN / MAX per sensor — the N:1 aggregation pattern of a SQL GROUP BY or
// a parameter server.
//
//   $ ./build/examples/stream_aggregation

#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "core/dfi.h"

using namespace dfi;  // NOLINT: example brevity

int main() {
  constexpr uint32_t kWorkers = 8;
  constexpr uint32_t kSensors = 16;
  constexpr uint64_t kSamplesPerWorker = 50000;

  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(1 + kWorkers)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);

  CombinerFlowSpec spec;
  spec.name = "sensors";
  for (uint32_t w = 0; w < kWorkers; ++w) {
    spec.sources.Append(Endpoint{addrs[1 + w], 0});
  }
  spec.targets.Append(Endpoint{addrs[0], 0});
  spec.schema = Schema{{"sensor", DataType::kUInt64},
                       {"reading", DataType::kDouble}};
  spec.group_by_index = 0;
  spec.aggregates = {{AggFunc::kSum, 1},
                     {AggFunc::kCount, 0},
                     {AggFunc::kMin, 1},
                     {AggFunc::kMax, 1}};
  DFI_CHECK_OK(dfi.InitCombinerFlow(std::move(spec)));

  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto source = dfi.CreateCombinerSource("sensors", w);
      DFI_CHECK(source.ok());
      Xorshift128Plus rng(w + 1);
      struct Sample {
        uint64_t sensor;
        double reading;
      };
      for (uint64_t i = 0; i < kSamplesPerWorker; ++i) {
        Sample s{rng.NextBelow(kSensors),
                 static_cast<double>(rng.NextBelow(1000)) / 10.0};
        DFI_CHECK_OK((*source)->Push(&s));
      }
      DFI_CHECK_OK((*source)->Close());
    });
  }

  auto target = dfi.CreateCombinerTarget("sensors", 0);
  DFI_CHECK(target.ok());
  AggRow row;
  std::printf("%-8s %12s %8s %8s %8s\n", "sensor", "sum", "count", "min",
              "max");
  uint64_t groups = 0;
  while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
    std::printf("%-8llu %12.1f %8.0f %8.1f %8.1f\n",
                static_cast<unsigned long long>(row.group_key),
                row.values[0], row.values[1], row.values[2], row.values[3]);
    ++groups;
  }
  for (auto& th : workers) th.join();
  std::printf(
      "%llu groups from %llu samples, aggregated in %s of virtual time\n",
      static_cast<unsigned long long>(groups),
      static_cast<unsigned long long>(kWorkers * kSamplesPerWorker),
      FormatDuration((*target)->clock().now()).c_str());
  return 0;
}
