// Streaming aggregation as a typed dataflow graph (DESIGN.md §14): eight
// sensor vertices push measurements over a combiner edge; one aggregate
// vertex computes SUM / COUNT / MIN / MAX per sensor — the N:1 aggregation
// pattern of a SQL GROUP BY or a parameter server (paper section 4.2.3).
//
// This is the graph-API quickstart: declare vertices (operators) and typed
// edges (DFI flows), let Graph::Build type-check the whole pipeline, then
// Instantiate + Start run every operator as an actor. Compare
// examples/quickstart.cpp for the single-flow API the graph lowers onto.
//
//   $ ./build/examples/stream_aggregation

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "core/dfi.h"

using namespace dfi;  // NOLINT: example brevity

int main() {
  constexpr uint32_t kWorkers = 8;
  constexpr uint32_t kSensors = 16;
  constexpr uint64_t kSamplesPerWorker = 50000;

  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(1 + kWorkers)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);

  // Vertex "sensors": one source worker per worker node, each emitting
  // seeded pseudo-random {sensor, reading} samples.
  graph::GraphSpec gs;
  gs.name = "sensors";
  graph::VertexSpec sensors;
  sensors.name = "sensors";
  sensors.kind = graph::OpKind::kSource;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    sensors.workers.Append(Endpoint{addrs[1 + w], 0});
  }
  sensors.output = {Schema{{"sensor", DataType::kUInt64},
                           {"reading", DataType::kDouble}},
                    Ordering::kNone};
  sensors.source_fn = [](graph::OpContext& ctx,
                         const graph::EmitFn& emit) -> Status {
    Xorshift128Plus rng(ctx.worker + 1);
    struct Sample {
      uint64_t sensor;
      double reading;
    };
    for (uint64_t i = 0; i < kSamplesPerWorker; ++i) {
      Sample s{rng.NextBelow(kSensors),
               static_cast<double>(rng.NextBelow(1000)) / 10.0};
      DFI_RETURN_IF_ERROR(emit(&s));
    }
    return Status::OK();
  };

  // Vertex "report": the combiner's target side, receiving one AggRow per
  // sensor after the flow drained.
  uint64_t groups = 0;
  SimTime done = 0;
  graph::VertexSpec report;
  report.name = "report";
  report.kind = graph::OpKind::kAggregate;
  report.workers.Append(Endpoint{addrs[0], 0});
  report.agg_sink = [&](graph::OpContext& ctx, const AggRow& row) -> Status {
    std::printf("%-8llu %12.1f %8.0f %8.1f %8.1f\n",
                static_cast<unsigned long long>(row.group_key),
                row.values[0], row.values[1], row.values[2], row.values[3]);
    ++groups;
    done = ctx.clock->now();
    return Status::OK();
  };
  gs.vertices = {std::move(sensors), std::move(report)};

  // Edge "sensors.fold": a combiner flow grouping by the sensor field. The
  // typed validation pass checks the schema against what the source emits
  // and the N:1 topology before anything is instantiated.
  graph::EdgeSpec fold;
  fold.name = "sensors.fold";
  fold.from = "sensors";
  fold.to = "report";
  fold.kind = graph::EdgeKind::kCombiner;
  fold.type = {Schema{{"sensor", DataType::kUInt64},
                      {"reading", DataType::kDouble}},
               Ordering::kNone};
  fold.key_index = 0;
  fold.aggregates = {{AggFunc::kSum, 1},
                     {AggFunc::kCount, 0},
                     {AggFunc::kMin, 1},
                     {AggFunc::kMax, 1}};
  gs.edges = {std::move(fold)};

  auto g = graph::Graph::Build(std::move(gs), &dfi.fabric());
  DFI_CHECK_OK(g.status());
  auto run = g->Instantiate(&dfi);
  DFI_CHECK_OK(run.status());
  std::printf("%-8s %12s %8s %8s %8s\n", "sensor", "sum", "count", "min",
              "max");
  DFI_CHECK_OK((*run)->Start());
  DFI_CHECK_OK((*run)->Finish());

  std::printf(
      "%llu groups from %llu samples, aggregated in %s of virtual time\n",
      static_cast<unsigned long long>(groups),
      static_cast<unsigned long long>(kWorkers * kSamplesPerWorker),
      FormatDuration(done).c_str());
  return 0;
}
