// Quickstart: the paper's Figure 1 end to end — initialize a shuffle flow,
// push tuples from one source thread and consume them on two target
// threads, key-partitioned.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <thread>

#include "core/dfi.h"

using namespace dfi;  // NOLINT: example brevity

int main() {
  // The emulated cluster: three nodes on a 100 Gbps fabric.
  net::Fabric fabric;
  (void)fabric.AddNode("192.168.0.1");
  (void)fabric.AddNode("192.168.0.2");
  (void)fabric.AddNode("192.168.0.3");
  DfiRuntime dfi(&fabric);

  // --- Flow initialization (paper Figure 1) -------------------------------
  //   DFI_Nodes n({"192.168.0.1|0", ...});
  //   DFI_Schema schema({"key", int}, {"value", int});
  //   DFI_Flow_init(name, {n[0]}, {n[1], n[2]}, schema, 0);
  ShuffleFlowSpec spec;
  spec.name = "quickstart";
  spec.sources = DfiNodes({"192.168.0.1|0"});
  spec.targets = DfiNodes({"192.168.0.2|0", "192.168.0.3|0"});
  spec.schema = Schema{{"key", DataType::kInt64}, {"value", DataType::kInt64}};
  spec.shuffle_key_index = 0;  // shuffle on "key"
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  // --- Flow execution ------------------------------------------------------
  struct Tuple {
    int64_t key;
    int64_t value;
  };

  // Source thread: push tuples; push is asynchronous and returns as soon as
  // the tuple is staged in the send buffer.
  std::thread source_thread([&] {
    auto source = dfi.CreateShuffleSource("quickstart", 0);
    DFI_CHECK(source.ok());
    for (int64_t i = 0; i < 8; ++i) {
      Tuple tuple{i, i * 10};
      DFI_CHECK_OK((*source)->Push(&tuple));
    }
    DFI_CHECK_OK((*source)->Close());  // end-of-flow to both targets
  });

  // Two target threads: consume until FLOW_END.
  std::vector<std::thread> target_threads;
  for (uint32_t t = 0; t < 2; ++t) {
    target_threads.emplace_back([&, t] {
      auto target = dfi.CreateShuffleTarget("quickstart", t);
      DFI_CHECK(target.ok());
      TupleView tuple;
      while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        std::printf("target %u consumed {%lld, %lld}\n", t,
                    static_cast<long long>(tuple.Get<int64_t>(0)),
                    static_cast<long long>(tuple.Get<int64_t>(1)));
      }
      std::printf("target %u: FLOW_END at virtual time %s\n", t,
                  FormatDuration((*target)->clock().now()).c_str());
    });
  }

  source_thread.join();
  for (auto& th : target_threads) th.join();
  return 0;
}
