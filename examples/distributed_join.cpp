// Distributed radix hash join on DFI flows (paper section 4.3.1 / Figure 2)
// plus the fragment-and-replicate variant — demonstrates how trivially the
// communication pattern of an algorithm is swapped under DFI.
//
//   $ ./build/examples/distributed_join

#include <cstdio>

#include "apps/join/distributed_join.h"
#include "common/units.h"
#include "core/dfi.h"

using namespace dfi;  // NOLINT: example brevity

int main() {
  join::JoinConfig cfg;
  cfg.num_nodes = 4;
  cfg.workers_per_node = 4;
  cfg.inner_tuples = 1 << 18;
  cfg.outer_tuples = 1 << 18;

  std::printf("distributed join: %u nodes x %u workers, %llu x %llu tuples\n",
              cfg.num_nodes, cfg.workers_per_node,
              static_cast<unsigned long long>(cfg.inner_tuples),
              static_cast<unsigned long long>(cfg.outer_tuples));

  // Radix hash join over two bandwidth-optimized shuffle flows.
  {
    net::Fabric fabric;
    std::vector<std::string> addrs;
    for (net::NodeId id : fabric.AddNodes(cfg.num_nodes)) {
      addrs.push_back(fabric.node(id).address());
    }
    DfiRuntime dfi(&fabric);
    auto result = join::RunDfiRadixJoin(&dfi, addrs, cfg);
    DFI_CHECK(result.ok()) << result.status();
    std::printf(
        "radix join:      %llu matches, network+partition %s, "
        "build+probe %s, total %s\n",
        static_cast<unsigned long long>(result->matches),
        FormatDuration(result->phases.network_partition).c_str(),
        FormatDuration(result->phases.build_probe).c_str(),
        FormatDuration(result->phases.total).c_str());
  }

  // Fragment-and-replicate: with a small inner relation, replace the inner
  // shuffle flow with a replicate flow — the outer relation never crosses
  // the network.
  cfg.inner_tuples = cfg.outer_tuples / 1024;
  {
    net::Fabric fabric;
    std::vector<std::string> addrs;
    for (net::NodeId id : fabric.AddNodes(cfg.num_nodes)) {
      addrs.push_back(fabric.node(id).address());
    }
    DfiRuntime dfi(&fabric);
    auto result = join::RunDfiReplicateJoin(&dfi, addrs, cfg);
    DFI_CHECK(result.ok()) << result.status();
    std::printf(
        "replicate join:  %llu matches (small inner), replication %s, "
        "build+probe %s, total %s\n",
        static_cast<unsigned long long>(result->matches),
        FormatDuration(result->phases.network_replication).c_str(),
        FormatDuration(result->phases.build_probe).c_str(),
        FormatDuration(result->phases.total).c_str());
  }
  return 0;
}
