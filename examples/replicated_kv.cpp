// Replicated key-value store with consensus over DFI flows (paper section
// 4.3.2 / Figure 3): runs the same YCSB-style workload through Multi-Paxos
// and NOPaxos and prints throughput/latency.
//
//   $ ./build/examples/replicated_kv

#include <cstdio>

#include "apps/consensus/consensus.h"
#include "common/units.h"
#include "core/dfi.h"

using namespace dfi;  // NOLINT: example brevity

namespace {

template <typename Fn>
void RunOne(const char* name, Fn run, const consensus::ConsensusConfig& cfg) {
  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id :
       fabric.AddNodes(cfg.num_replicas + cfg.num_client_nodes)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);
  auto result = run(&dfi, addrs, cfg);
  DFI_CHECK(result.ok()) << result.status();
  std::printf("%-12s %8llu requests  %10.0f req/s  median %-9s p95 %s\n",
              name, static_cast<unsigned long long>(result->completed),
              result->throughput_rps,
              FormatDuration(result->median_latency_ns).c_str(),
              FormatDuration(result->p95_latency_ns).c_str());
}

}  // namespace

int main() {
  consensus::ConsensusConfig cfg;
  cfg.requests_per_client = 1000;
  cfg.think_time_ns = 5000;  // moderate load

  std::printf(
      "replicated KV store: %u replicas, %u clients, 64 B requests, "
      "YCSB %d%%/%d%% read/write\n",
      cfg.num_replicas, cfg.num_clients,
      static_cast<int>((1 - cfg.write_fraction) * 100),
      static_cast<int>(cfg.write_fraction * 100));

  // Multi-Paxos: 4 flows (submit, propose via ordered-free multicast,
  // vote, reply) — the message flow of paper Figure 3.
  RunOne("Multi-Paxos", consensus::RunMultiPaxos, cfg);
  // NOPaxos: clients multicast through the globally-ordered replicate flow
  // (the OUM primitive with the tuple sequencer); followers ack straight
  // to the clients.
  RunOne("NOPaxos", consensus::RunNoPaxos, cfg);
  return 0;
}
