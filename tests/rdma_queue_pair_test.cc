#include "rdma/queue_pair.h"

#include <gtest/gtest.h>

#include "rdma/rdma_env.h"

namespace dfi::rdma {
namespace {

class QueuePairTest : public ::testing::Test {
 protected:
  QueuePairTest() : env_(&fabric_) {
    nodes_ = fabric_.AddNodes(2);
    src_ctx_ = env_.context(nodes_[0]);
    dst_ctx_ = env_.context(nodes_[1]);
    cq_ = src_ctx_->CreateCq();
    qp_ = src_ctx_->CreateRcQp(nodes_[1], cq_);
    remote_mr_ = dst_ctx_->AllocateRegion(4096);
    local_mr_ = src_ctx_->AllocateRegion(4096);
  }

  net::Fabric fabric_;
  RdmaEnv env_;
  std::vector<net::NodeId> nodes_;
  RdmaContext* src_ctx_;
  RdmaContext* dst_ctx_;
  CompletionQueue* cq_;
  RcQueuePair* qp_;
  MemoryRegion* remote_mr_;
  MemoryRegion* local_mr_;
  VirtualClock clock_;
};

TEST_F(QueuePairTest, WriteMovesBytes) {
  for (int i = 0; i < 100; ++i) local_mr_->addr()[i] = static_cast<uint8_t>(i);
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(100);
  desc.length = 100;
  auto t = qp_->PostWrite(desc, &clock_);
  ASSERT_TRUE(t.ok()) << t.status();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(remote_mr_->addr()[100 + i], i);
  }
}

TEST_F(QueuePairTest, WriteTimingMilestonesOrdered) {
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 1024;
  auto t = qp_->PostWrite(desc, &clock_);
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t->post_done, 0);
  EXPECT_GT(t->arrival, t->post_done);
  EXPECT_GT(t->ack, t->arrival);
  // Posting is asynchronous: the caller clock only advanced by the post
  // cost, far less than the arrival time.
  EXPECT_LT(clock_.now(), t->arrival);
}

TEST_F(QueuePairTest, SmallWriteLatencyMatchesModel) {
  const net::SimConfig& cfg = fabric_.config();
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 16;
  auto t = qp_->PostWrite(desc, &clock_);
  ASSERT_TRUE(t.ok());
  // One-way: post + nic + egress(16B) + propagation + ingress(16B).
  const SimTime transfer =
      static_cast<SimTime>(16 / cfg.LinkBytesPerNs());
  const SimTime expected = cfg.post_wqe_ns + cfg.nic_process_ns + transfer +
                           cfg.propagation_ns + transfer;
  EXPECT_NEAR(t->arrival, expected, 5);
}

TEST_F(QueuePairTest, SignaledWritePushesCompletion) {
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 64;
  desc.signaled = true;
  desc.wr_id = 77;
  auto t = qp_->PostWrite(desc, &clock_);
  ASSERT_TRUE(t.ok());
  Completion c;
  ASSERT_TRUE(cq_->TryPoll(&c, &clock_));
  EXPECT_EQ(c.wr_id, 77u);
  EXPECT_EQ(c.type, WorkType::kWrite);
  EXPECT_EQ(c.time, t->ack);
  EXPECT_GE(clock_.now(), t->ack) << "polling joins the clock with the ack";
}

TEST_F(QueuePairTest, UnsignaledWriteHasNoCompletion) {
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 64;
  auto t = qp_->PostWrite(desc, &clock_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(cq_->size(), 0u);
}

TEST_F(QueuePairTest, WriteOutOfBoundsRejected) {
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(4090);
  desc.length = 100;
  auto t = qp_->PostWrite(desc, &clock_);
  EXPECT_EQ(t.status().code(), StatusCode::kOutOfRange);
}

TEST_F(QueuePairTest, ReadFetchesRemoteBytes) {
  for (int i = 0; i < 32; ++i) {
    remote_mr_->addr()[i] = static_cast<uint8_t>(0xF0 + i);
  }
  ReadDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 32;
  auto t = qp_->PostRead(desc, &clock_);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(local_mr_->addr()[i], static_cast<uint8_t>(0xF0 + i));
  }
  EXPECT_GT(t->arrival, 0);
}

TEST_F(QueuePairTest, FetchAddReturnsOldAndIncrements) {
  auto* counter = reinterpret_cast<uint64_t*>(remote_mr_->addr());
  *counter = 5;
  auto old = qp_->FetchAdd(remote_mr_->RefAt(0), 3, &clock_);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, 5u);
  EXPECT_EQ(*counter, 8u);
  // Fetch-add is blocking: the clock advanced by a full round trip.
  EXPECT_GT(clock_.now(), 2 * fabric_.config().propagation_ns);
}

TEST_F(QueuePairTest, FetchAddSequencesConcurrentCallers) {
  auto* counter = reinterpret_cast<uint64_t*>(remote_mr_->addr());
  *counter = 0;
  CompletionQueue* cq2 = dst_ctx_->CreateCq();
  RcQueuePair* qp2 = dst_ctx_->CreateRcQp(nodes_[0], cq2);
  // Two QPs hammer the same counter; all returned values must be unique.
  std::vector<uint64_t> seen;
  VirtualClock clock2;
  for (int i = 0; i < 50; ++i) {
    auto a = qp_->FetchAdd(remote_mr_->RefAt(0), 1, &clock_);
    ASSERT_TRUE(a.ok());
    seen.push_back(*a);
    // qp2 targets node 0's MR? No — same remote MR on node 1 via its rkey.
    auto b = qp2->FetchAdd(remote_mr_->RefAt(0), 1, &clock2);
    ASSERT_TRUE(b.ok());
    seen.push_back(*b);
  }
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);
  }
  EXPECT_EQ(*counter, 100u);
}

TEST_F(QueuePairTest, BandwidthOfPipelinedWritesMatchesLink) {
  // 1000 unsignaled 8 KiB writes back to back must move at link speed.
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 4096;
  OpTiming last{};
  for (int i = 0; i < 1000; ++i) {
    auto t = qp_->PostWrite(desc, &clock_);
    ASSERT_TRUE(t.ok());
    last = *t;
  }
  const double bytes = 4096.0 * 1000;
  const double rate = bytes / static_cast<double>(last.arrival);  // B/ns
  EXPECT_NEAR(rate, fabric_.config().LinkBytesPerNs(), 0.5);
}

TEST_F(QueuePairTest, InlineWriteChargesCopyCost) {
  WriteDesc desc;
  desc.local = local_mr_->addr();
  desc.remote = remote_mr_->RefAt(0);
  desc.length = 200;
  desc.inlined = true;
  VirtualClock plain_clock, inline_clock;
  WriteDesc plain = desc;
  plain.inlined = false;
  ASSERT_TRUE(qp_->PostWrite(plain, &plain_clock).ok());
  ASSERT_TRUE(qp_->PostWrite(desc, &inline_clock).ok());
  EXPECT_GT(inline_clock.now(), plain_clock.now());
}

}  // namespace
}  // namespace dfi::rdma
