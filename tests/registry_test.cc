#include "registry/flow_registry.h"

#include <gtest/gtest.h>

#include <thread>

namespace dfi {
namespace {

struct DummyState : FlowStateBase {
  explicit DummyState(int v) : value(v) {}
  int value;
};

TEST(FlowRegistryTest, PublishAndRetrieve) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  auto s = registry.Retrieve("f");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::static_pointer_cast<DummyState>(*s)->value, 1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(FlowRegistryTest, DuplicateNameRejected) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  EXPECT_EQ(registry.Publish("f", std::make_shared<DummyState>(2)).code(),
            StatusCode::kAlreadyExists);
}

TEST(FlowRegistryTest, MissingFlowNotFound) {
  FlowRegistry registry;
  EXPECT_EQ(registry.Retrieve("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Remove("nope").code(), StatusCode::kNotFound);
}

TEST(FlowRegistryTest, RemoveFreesName) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  ASSERT_TRUE(registry.Remove("f").ok());
  EXPECT_TRUE(registry.Publish("f", std::make_shared<DummyState>(2)).ok());
}

TEST(FlowRegistryTest, RetrieveBlockingWaitsForPublish) {
  FlowRegistry registry;
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(registry.Publish("late", std::make_shared<DummyState>(9))
                    .ok());
  });
  auto s = registry.RetrieveBlocking("late", std::chrono::milliseconds(2000));
  publisher.join();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::static_pointer_cast<DummyState>(*s)->value, 9);
}

TEST(FlowRegistryTest, RetrieveBlockingTimesOut) {
  FlowRegistry registry;
  auto s = registry.RetrieveBlocking("never", std::chrono::milliseconds(20));
  EXPECT_EQ(s.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace dfi
