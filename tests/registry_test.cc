#include "registry/flow_registry.h"

#include <gtest/gtest.h>

#include <thread>

namespace dfi {
namespace {

struct DummyState : FlowStateBase {
  explicit DummyState(int v) : value(v) {}
  void Abort(const Status& cause) override {
    aborted = true;
    abort_cause = cause;
  }
  int value;
  bool aborted = false;
  Status abort_cause;
};

TEST(FlowRegistryTest, PublishAndRetrieve) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  auto s = registry.Retrieve("f");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::static_pointer_cast<DummyState>(*s)->value, 1);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(FlowRegistryTest, DuplicateNameRejected) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  EXPECT_EQ(registry.Publish("f", std::make_shared<DummyState>(2)).code(),
            StatusCode::kAlreadyExists);
}

TEST(FlowRegistryTest, MissingFlowNotFound) {
  FlowRegistry registry;
  EXPECT_EQ(registry.Retrieve("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.Remove("nope").code(), StatusCode::kNotFound);
}

TEST(FlowRegistryTest, RemoveFreesName) {
  FlowRegistry registry;
  ASSERT_TRUE(registry.Publish("f", std::make_shared<DummyState>(1)).ok());
  ASSERT_TRUE(registry.Remove("f").ok());
  EXPECT_TRUE(registry.Publish("f", std::make_shared<DummyState>(2)).ok());
}

TEST(FlowRegistryTest, RetrieveBlockingWaitsForPublish) {
  FlowRegistry registry;
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(registry.Publish("late", std::make_shared<DummyState>(9))
                    .ok());
  });
  auto s = registry.RetrieveBlocking("late", std::chrono::milliseconds(2000));
  publisher.join();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(std::static_pointer_cast<DummyState>(*s)->value, 9);
}

// Regression (robustness PR): a bounded retrieve that never sees the flow
// published reports the caller's elapsed deadline, not a transient
// kUnavailable.
TEST(FlowRegistryTest, RetrieveBlockingTimesOutWithDeadlineExceeded) {
  FlowRegistry registry;
  auto s = registry.RetrieveBlocking("never", std::chrono::milliseconds(20));
  EXPECT_EQ(s.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FlowRegistryTest, LeaseKeepsPublisherAliveUntilExpiry) {
  FlowRegistry registry;
  ASSERT_TRUE(registry
                  .PublishWithLease("f", std::make_shared<DummyState>(1),
                                    /*lease_expiry=*/1000)
                  .ok());
  EXPECT_TRUE(registry.PublisherAlive("f", 999));
  ASSERT_TRUE(registry.RenewLease("f", /*now=*/999, /*new_expiry=*/5000).ok());
  EXPECT_TRUE(registry.PublisherAlive("f", 4999));
  // The lapsed lease fails the flow; the answer is sticky even for earlier
  // probe times afterwards.
  EXPECT_FALSE(registry.PublisherAlive("f", 5000));
  EXPECT_FALSE(registry.PublisherAlive("f", 0));
  EXPECT_EQ(registry.Retrieve("f").status().code(), StatusCode::kPeerFailed);
  EXPECT_EQ(registry.RenewLease("f", /*now=*/5001, /*new_expiry=*/9000).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FlowRegistryTest, MarkExpiredScrubsLapsedLeasesAndAbortsState) {
  FlowRegistry registry;
  auto leased = std::make_shared<DummyState>(1);
  auto unleased = std::make_shared<DummyState>(2);
  ASSERT_TRUE(registry.PublishWithLease("leased", leased, 100).ok());
  ASSERT_TRUE(registry.Publish("unleased", unleased).ok());
  EXPECT_EQ(registry.MarkExpired(99), 0u);
  EXPECT_EQ(registry.MarkExpired(100), 1u);
  EXPECT_EQ(registry.MarkExpired(100), 0u);  // idempotent
  EXPECT_TRUE(leased->aborted);
  EXPECT_EQ(leased->abort_cause.code(), StatusCode::kPeerFailed);
  EXPECT_FALSE(unleased->aborted);
  EXPECT_TRUE(registry.PublisherAlive("unleased", 1 << 30));
}

// Regression (control-plane PR): a heartbeat landing in the same virtual
// tick as the lease scrubber resolves identically in either call order —
// the flow fails, it is never resurrected.
TEST(FlowRegistryTest, RenewVsExpirySameTickIsOrderIndependent) {
  FlowRegistry scrub_first;
  ASSERT_TRUE(scrub_first
                  .PublishWithLease("f", std::make_shared<DummyState>(1), 100)
                  .ok());
  EXPECT_EQ(scrub_first.MarkExpired(100), 1u);
  EXPECT_EQ(scrub_first.RenewLease("f", /*now=*/100, /*new_expiry=*/500)
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scrub_first.Retrieve("f").status().code(),
            StatusCode::kPeerFailed);

  FlowRegistry renew_first;
  ASSERT_TRUE(renew_first
                  .PublishWithLease("f", std::make_shared<DummyState>(1), 100)
                  .ok());
  EXPECT_EQ(renew_first.RenewLease("f", /*now=*/100, /*new_expiry=*/500)
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(renew_first.MarkExpired(100), 0u);  // already failed, not "newly"
  EXPECT_EQ(renew_first.Retrieve("f").status().code(),
            StatusCode::kPeerFailed);
}

// Regression (control-plane PR): a publish/remove pair landing while a
// retriever is blocked hands the removed entry to that retriever instead
// of starving it; retrievers arriving after the Remove wait as usual.
TEST(FlowRegistryTest, RemoveHandsOffToBlockedRetriever) {
  FlowRegistry registry;
  exec::Engine engine({.workers = 1});
  VirtualClock retriever_clock;
  StatusOr<std::shared_ptr<FlowStateBase>> got =
      Status::Internal("not run");
  // The retriever runs first (virtual time 0) and parks as a waiter; the
  // publisher then publishes and removes without yielding in between.
  engine.Spawn(0, "retriever", [&] {
    got = registry.RetrieveBlocking("ephemeral",
                                    std::chrono::milliseconds(1000),
                                    &retriever_clock);
  });
  engine.Spawn(1, "publisher", [&] {
    VirtualClock clock;
    clock.AdvanceTo(1'000);
    ASSERT_TRUE(
        registry.Publish("ephemeral", std::make_shared<DummyState>(42)).ok());
    ASSERT_TRUE(registry.Remove("ephemeral").ok());
  });
  engine.Run();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(std::static_pointer_cast<DummyState>(*got)->value, 42);

  // A retriever arriving after the Remove is not entitled to the handoff.
  VirtualClock late_clock;
  exec::Engine late({.workers = 1});
  StatusCode late_code = StatusCode::kOk;
  late.Spawn(0, "late", [&] {
    late_code = registry
                    .RetrieveBlocking("ephemeral",
                                      std::chrono::milliseconds(5),
                                      &late_clock)
                    .status()
                    .code();
  });
  late.Run();
  EXPECT_EQ(late_code, StatusCode::kDeadlineExceeded);
}

// Regression (control-plane PR): inside an engine task the blocking
// retrieve deadline is virtual time — an idle fleet jumps straight to it
// and the waiter's clock is charged exactly the timeout.
TEST(FlowRegistryTest, EngineModeBlockingRetrieveChargesVirtualDeadline) {
  FlowRegistry registry;
  exec::Engine engine({.workers = 1});
  VirtualClock clock;
  StatusCode code = StatusCode::kOk;
  engine.Spawn(0, "r", [&] {
    code = registry
               .RetrieveBlocking("never", std::chrono::milliseconds(5),
                                 &clock)
               .status()
               .code();
  });
  engine.Run();
  EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(clock.now(), 5'000'000);
}

TEST(FlowRegistryTest, MarkFailedAbortsStateAndPoisonsRetrieve) {
  FlowRegistry registry;
  auto state = std::make_shared<DummyState>(7);
  ASSERT_TRUE(registry.Publish("f", state).ok());
  const Status cause = Status::PeerFailed("node 3 crashed");
  ASSERT_TRUE(registry.MarkFailed("f", cause).ok());
  EXPECT_TRUE(state->aborted);
  auto r = registry.Retrieve("f");
  EXPECT_EQ(r.status().code(), StatusCode::kPeerFailed);
  EXPECT_FALSE(registry.PublisherAlive("f", 0));
  // A failed flow also fails blocking retrieves immediately (it is
  // published, just dead).
  auto rb = registry.RetrieveBlocking("f", std::chrono::milliseconds(1000));
  EXPECT_EQ(rb.status().code(), StatusCode::kPeerFailed);
  EXPECT_EQ(registry.MarkFailed("nope", cause).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dfi
