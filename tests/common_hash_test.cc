#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dfi {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  EXPECT_NE(HashU64(42), HashU64(43));
}

TEST(HashTest, SpreadsSequentialKeys) {
  // Sequential keys must land in different mod-8 buckets reasonably evenly.
  int counts[8] = {};
  for (uint64_t k = 0; k < 8000; ++k) {
    ++counts[HashU64(k) % 8];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(HashTest, BytesHashDependsOnContent) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(HashBytes(a, 5), HashBytes(b, 5));
  EXPECT_EQ(HashBytes(a, 5), HashBytes("hello", 5));
}

TEST(HashTest, RadixBitsExtractsRequestedWidth) {
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(RadixBits(k, 0, 4), 16u);
    EXPECT_LT(RadixBits(k, 7, 3), 8u);
  }
}

TEST(HashTest, RadixBitsPartitionsAreStable) {
  EXPECT_EQ(RadixBits(99, 0, 6), RadixBits(99, 0, 6));
}

TEST(FastDivisorTest, MatchesHardwareDivideExactly) {
  // Exactness matters: routing contracts assert HashU64(key) % m placement.
  std::vector<uint64_t> samples = {0, 1, 2, 3, 63, 64, 65, 1000, 1ull << 32,
                                   (1ull << 32) + 1, UINT64_MAX - 1,
                                   UINT64_MAX};
  uint64_t x = 0x243f6a8885a308d3ull;  // deterministic pseudo-random walk
  for (int i = 0; i < 512; ++i) {
    x = HashU64(x + i);
    samples.push_back(x);
  }
  for (uint32_t d = 1; d <= 300; ++d) {
    const FastDivisor fd(d);
    for (uint64_t n : samples) {
      ASSERT_EQ(fd.Div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
    // Exact multiples and their neighbours are the boundary cases of the
    // magic-number rounding.
    for (uint64_t q : {uint64_t{1}, uint64_t{12345}, UINT64_MAX / d}) {
      for (int64_t delta = -2; delta <= 2; ++delta) {
        const uint64_t n = q * d + static_cast<uint64_t>(delta);
        ASSERT_EQ(fd.Div(n), n / d) << "n=" << n << " d=" << d;
        ASSERT_EQ(fd.Mod(n), n % d) << "n=" << n << " d=" << d;
      }
    }
  }
  for (uint32_t d : {1u << 10, 3u << 20, UINT32_MAX, UINT32_MAX - 1}) {
    const FastDivisor fd(d);
    for (uint64_t n : samples) {
      ASSERT_EQ(fd.Div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(HashTest, RadixDifferentShiftsIndependent) {
  // Same key, different shift windows should not always agree.
  int agree = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (RadixBits(k, 0, 4) == RadixBits(k, 4, 4)) ++agree;
  }
  EXPECT_LT(agree, 64);
}

}  // namespace
}  // namespace dfi
