#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace dfi {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  EXPECT_NE(HashU64(42), HashU64(43));
}

TEST(HashTest, SpreadsSequentialKeys) {
  // Sequential keys must land in different mod-8 buckets reasonably evenly.
  int counts[8] = {};
  for (uint64_t k = 0; k < 8000; ++k) {
    ++counts[HashU64(k) % 8];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(HashTest, BytesHashDependsOnContent) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(HashBytes(a, 5), HashBytes(b, 5));
  EXPECT_EQ(HashBytes(a, 5), HashBytes("hello", 5));
}

TEST(HashTest, RadixBitsExtractsRequestedWidth) {
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(RadixBits(k, 0, 4), 16u);
    EXPECT_LT(RadixBits(k, 7, 3), 8u);
  }
}

TEST(HashTest, RadixBitsPartitionsAreStable) {
  EXPECT_EQ(RadixBits(99, 0, 6), RadixBits(99, 0, 6));
}

TEST(HashTest, RadixDifferentShiftsIndependent) {
  // Same key, different shift windows should not always agree.
  int agree = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (RadixBits(k, 0, 4) == RadixBits(k, 4, 4)) ++agree;
  }
  EXPECT_LT(agree, 64);
}

}  // namespace
}  // namespace dfi
