#include "apps/join/distributed_join.h"

#include <gtest/gtest.h>

#include "apps/join/hash_table.h"
#include "bench_util/workload.h"

namespace dfi::join {
namespace {

TEST(JoinHashTableTest, InsertAndProbe) {
  JoinHashTable table;
  table.Reserve(100);
  for (uint64_t k = 0; k < 100; ++k) {
    table.Insert(k, k * 10);
  }
  EXPECT_EQ(table.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t payload = 0;
    EXPECT_EQ(table.Probe(k, [&](uint64_t p) { payload = p; }), 1u);
    EXPECT_EQ(payload, k * 10);
  }
  EXPECT_EQ(table.CountMatches(1000), 0u);
}

TEST(JoinHashTableTest, DuplicateKeys) {
  JoinHashTable table;
  table.Reserve(10);
  table.Insert(7, 1);
  table.Insert(7, 2);
  table.Insert(7, 3);
  EXPECT_EQ(table.CountMatches(7), 3u);
}

TEST(JoinHashTableTest, EmptyTableProbe) {
  JoinHashTable table;
  EXPECT_EQ(table.CountMatches(1), 0u);
}

class DistributedJoinTest : public ::testing::Test {
 protected:
  JoinConfig SmallConfig() {
    JoinConfig cfg;
    cfg.num_nodes = 4;
    cfg.workers_per_node = 2;
    cfg.inner_tuples = 1 << 14;
    cfg.outer_tuples = 1 << 15;
    cfg.local_radix_bits = 4;
    return cfg;
  }

  std::vector<std::string> SetUpNodes(net::Fabric* fabric, uint32_t n) {
    std::vector<std::string> addrs;
    for (net::NodeId id : fabric->AddNodes(n)) {
      addrs.push_back(fabric->node(id).address());
    }
    return addrs;
  }
};

TEST_F(DistributedJoinTest, DfiRadixJoinMatchesReference) {
  net::Fabric fabric;
  const JoinConfig cfg = SmallConfig();
  auto addrs = SetUpNodes(&fabric, cfg.num_nodes);
  DfiRuntime dfi(&fabric);
  auto result = RunDfiRadixJoin(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->matches, ReferenceJoinMatches(cfg));
  EXPECT_GT(result->phases.network_partition, 0);
  EXPECT_GT(result->phases.total, result->phases.network_partition);
  EXPECT_EQ(result->phases.histogram, 0) << "DFI join needs no histogram";
  EXPECT_EQ(result->phases.sync_barrier, 0) << "DFI join needs no barrier";
}

TEST_F(DistributedJoinTest, GraphRadixJoinMatchesReference) {
  // The same join expressed as built-in graph operators (two kSource scans
  // feeding a kJoin vertex) finds exactly the reference match count.
  net::Fabric fabric;
  const JoinConfig cfg = SmallConfig();
  auto addrs = SetUpNodes(&fabric, cfg.num_nodes);
  DfiRuntime dfi(&fabric);
  auto result = RunGraphRadixJoin(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->matches, ReferenceJoinMatches(cfg));
  EXPECT_GT(result->phases.total, 0);
}

TEST_F(DistributedJoinTest, MpiRadixJoinMatchesReference) {
  net::Fabric fabric;
  const JoinConfig cfg = SmallConfig();
  SetUpNodes(&fabric, cfg.num_nodes);
  std::vector<net::NodeId> ids;
  for (uint32_t i = 0; i < cfg.num_nodes; ++i) ids.push_back(i);
  auto result = RunMpiRadixJoin(&fabric, ids, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->matches, ReferenceJoinMatches(cfg));
  EXPECT_GT(result->phases.histogram, 0);
  EXPECT_GT(result->phases.sync_barrier, 0);
  EXPECT_GT(result->phases.network_partition, 0);
}

TEST_F(DistributedJoinTest, ReplicateJoinMatchesReference) {
  net::Fabric fabric;
  JoinConfig cfg = SmallConfig();
  cfg.inner_tuples = 1 << 10;  // small inner: fragment-and-replicate case
  auto addrs = SetUpNodes(&fabric, cfg.num_nodes);
  DfiRuntime dfi(&fabric);
  auto result = RunDfiReplicateJoin(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->matches, ReferenceJoinMatches(cfg));
  EXPECT_GT(result->phases.network_replication, 0);
}

TEST_F(DistributedJoinTest, DfiFasterThanMpi) {
  // The headline of Figure 13: the DFI radix join beats the MPI radix join
  // (no histogram pass, no barrier, overlapped communication). Needs a
  // bandwidth-bound scale — at tiny sizes fixed per-channel latencies
  // dominate and the advantage vanishes (crossover ~2^16 tuples here).
  JoinConfig cfg = SmallConfig();
  cfg.inner_tuples = 1 << 16;
  cfg.outer_tuples = 1 << 16;
  net::Fabric fabric_dfi;
  auto addrs = SetUpNodes(&fabric_dfi, cfg.num_nodes);
  DfiRuntime dfi(&fabric_dfi);
  auto dfi_result = RunDfiRadixJoin(&dfi, addrs, cfg);
  ASSERT_TRUE(dfi_result.ok());

  net::Fabric fabric_mpi;
  SetUpNodes(&fabric_mpi, cfg.num_nodes);
  std::vector<net::NodeId> ids;
  for (uint32_t i = 0; i < cfg.num_nodes; ++i) ids.push_back(i);
  auto mpi_result = RunMpiRadixJoin(&fabric_mpi, ids, cfg);
  ASSERT_TRUE(mpi_result.ok());

  EXPECT_LT(dfi_result->phases.total, mpi_result->phases.total);
}

TEST_F(DistributedJoinTest, ReplicateJoinWinsForTinyInner) {
  // Figure 14: with a 1000x smaller inner relation, replicating the inner
  // beats shuffling both relations.
  JoinConfig cfg = SmallConfig();
  cfg.inner_tuples = cfg.outer_tuples / 1024;
  {
    net::Fabric f;
    auto addrs = SetUpNodes(&f, cfg.num_nodes);
    DfiRuntime dfi(&f);
    auto radix = RunDfiRadixJoin(&dfi, addrs, cfg);
    ASSERT_TRUE(radix.ok());
    net::Fabric f2;
    auto addrs2 = SetUpNodes(&f2, cfg.num_nodes);
    DfiRuntime dfi2(&f2);
    auto repl = RunDfiReplicateJoin(&dfi2, addrs2, cfg);
    ASSERT_TRUE(repl.ok());
    EXPECT_EQ(radix->matches, repl->matches);
    EXPECT_LT(repl->phases.total, radix->phases.total);
  }
}

TEST(WorkloadTest, UniformRelationDeterministic) {
  auto a = bench::GenerateUniformRelation(1000, 100, 7);
  auto b = bench::GenerateUniformRelation(1000, 100, 7);
  ASSERT_EQ(a.size(), 1000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_LT(a[i].key, 100u);
  }
}

TEST(WorkloadTest, PrimaryKeyRelationIsPermutation) {
  auto rel = bench::GeneratePrimaryKeyRelation(512, 3);
  std::vector<bool> seen(512, false);
  for (const auto& t : rel) {
    ASSERT_LT(t.key, 512u);
    EXPECT_FALSE(seen[t.key]);
    seen[t.key] = true;
  }
}

TEST(WorkloadTest, YcsbWriteFraction) {
  auto reqs = bench::GenerateYcsbRequests(20000, 1000, 0.05, 0.0, 9);
  size_t writes = 0;
  for (const auto& r : reqs)

    if (r.is_write) ++writes;
  EXPECT_NEAR(writes, 1000, 200);
}

}  // namespace
}  // namespace dfi::join
