#include "net/fabric.h"

#include <gtest/gtest.h>

namespace dfi::net {
namespace {

TEST(FabricTest, AddAndResolveNodes) {
  Fabric fabric;
  auto a = fabric.AddNode("192.168.0.1");
  ASSERT_TRUE(a.ok());
  auto b = fabric.AddNode("192.168.0.2");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(fabric.node_count(), 2u);

  auto r = fabric.ResolveAddress("192.168.0.2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, *b);
  EXPECT_EQ(fabric.node(*a).address(), "192.168.0.1");
}

TEST(FabricTest, DuplicateAddressRejected) {
  Fabric fabric;
  ASSERT_TRUE(fabric.AddNode("n1").ok());
  EXPECT_EQ(fabric.AddNode("n1").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(FabricTest, UnknownAddressNotFound) {
  Fabric fabric;
  EXPECT_EQ(fabric.ResolveAddress("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(FabricTest, AddNodesConvenience) {
  Fabric fabric;
  auto ids = fabric.AddNodes(4);
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(fabric.node_count(), 4u);
}

TEST(FabricTest, LinkCapacityFromConfig) {
  SimConfig cfg;
  cfg.link_gbps = 80.0;
  Fabric fabric(cfg);
  auto id = fabric.AddNode("n");
  ASSERT_TRUE(id.ok());
  EXPECT_DOUBLE_EQ(fabric.node(*id).egress().bytes_per_ns(), 10.0);
  EXPECT_DOUBLE_EQ(fabric.node(*id).ingress().bytes_per_ns(), 10.0);
}

TEST(FabricTest, RegisteredByteAccounting) {
  Fabric fabric;
  auto id = fabric.AddNode("n");
  ASSERT_TRUE(id.ok());
  Node& node = fabric.node(*id);
  EXPECT_EQ(node.registered_bytes(), 0u);
  node.AddRegisteredBytes(4096);
  EXPECT_EQ(node.registered_bytes(), 4096u);
  node.SubRegisteredBytes(4096);
  EXPECT_EQ(node.registered_bytes(), 0u);
}

TEST(SwitchTest, MulticastGroups) {
  Fabric fabric;
  auto ids = fabric.AddNodes(3);
  Switch& sw = fabric.network_switch();
  MulticastGroupId g = sw.CreateGroup();
  EXPECT_TRUE(sw.JoinGroup(g, ids[0]).ok());
  EXPECT_TRUE(sw.JoinGroup(g, ids[1]).ok());
  EXPECT_TRUE(sw.JoinGroup(g, ids[1]).ok()) << "idempotent join";
  auto members = sw.GroupMembers(g);
  EXPECT_EQ(members.size(), 2u);
  EXPECT_EQ(sw.JoinGroup(99, ids[0]).code(), StatusCode::kNotFound);
}

TEST(SwitchTest, GroupResourceSerializes) {
  SimConfig cfg;
  cfg.multicast_group_gbps = 8.0;  // 1 B/ns
  Fabric fabric(cfg);
  Switch& sw = fabric.network_switch();
  MulticastGroupId g = sw.CreateGroup();
  TransferWindow a = sw.ReserveGroup(g, 0, 100);
  TransferWindow b = sw.ReserveGroup(g, 0, 100);
  EXPECT_EQ(a.end, 100);
  EXPECT_EQ(b.start, 100);
}

TEST(SwitchTest, LossInjectionRate) {
  SimConfig cfg;
  cfg.multicast_loss_probability = 0.1;
  Fabric fabric(cfg);
  Switch& sw = fabric.network_switch();
  int drops = 0;
  for (uint64_t key = 0; key < 10000; ++key) {
    if (sw.ShouldDropDelivery(key, /*target=*/1, /*at=*/0)) ++drops;
  }
  EXPECT_NEAR(drops, 1000, 150);
}

TEST(SwitchTest, LossInjectionDeterministic) {
  SimConfig cfg;
  cfg.multicast_loss_probability = 0.1;
  Fabric a(cfg);
  Fabric b(cfg);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.network_switch().ShouldDropDelivery(key, 1, 0),
              b.network_switch().ShouldDropDelivery(key, 1, 0));
  }
}

TEST(SwitchTest, NoLossByDefault) {
  Fabric fabric;
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(fabric.network_switch().ShouldDropDelivery(key, 1, 0));
  }
}

TEST(NodeTest, SubRegisteredBytesClampsAtZero) {
  Fabric fabric;
  NodeId id = *fabric.AddNode("n0");
  Node& n = fabric.node(id);
  n.AddRegisteredBytes(100);
  n.SubRegisteredBytes(60);
  EXPECT_EQ(n.registered_bytes(), 40u);
#ifdef NDEBUG
  // Release builds clamp instead of wrapping (debug builds assert).
  n.SubRegisteredBytes(1000);
  EXPECT_EQ(n.registered_bytes(), 0u);
#endif
}

}  // namespace
}  // namespace dfi::net
