// Chaos tests (robustness PR): kill sources and targets mid-flow across
// all three flow types and assert that every surviving participant comes
// back with a non-OK Status — through poisoned-channel teardown, fault-plan
// crash detection, or the blocking deadline — and that nothing ever hangs
// (each scenario bounds its own real time; the harness adds a hard ctest
// timeout on top).

#include <gtest/gtest.h>

#include <thread>

#include "core/combiner_flow.h"
#include "core/dfi_runtime.h"
#include "core/replicate_flow.h"
#include "core/shuffle_flow.h"

namespace dfi {
namespace {

Schema U64Schema() { return Schema{{"key", DataType::kUInt64}}; }

class ChaosFlowTest : public ::testing::Test {
 protected:
  ChaosFlowTest() : dfi_(&fabric_) {
    for (net::NodeId id : fabric_.AddNodes(4)) {
      addrs_.push_back(fabric_.node(id).address());
    }
  }

  FlowOptions Bounded(SimTime deadline_ns = 5 * kMillisecond) {
    FlowOptions opt;
    opt.optimization = FlowOptimization::kLatency;
    opt.block_deadline_ns = deadline_ns;
    return opt;
  }

  net::Fabric fabric_;
  DfiRuntime dfi_;
  std::vector<std::string> addrs_;
};

// ---- Shuffle ---------------------------------------------------------------

TEST_F(ChaosFlowTest, ShuffleSourceAbortFailsConsumer) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.sources.Append(Endpoint{addrs_[2], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded();
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  std::thread healthy([&] {
    auto src = dfi_.CreateShuffleSource("f", 1);
    for (uint64_t k = 0; k < 5; ++k) ASSERT_TRUE((*src)->Push(&k).ok());
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::thread dying([&] {
    auto src = dfi_.CreateShuffleSource("f", 0);
    uint64_t k = 99;
    ASSERT_TRUE((*src)->Push(&k).ok());
    (*src)->Abort(Status::PeerFailed("source 0 died"));  // no Close
  });

  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  uint64_t consumed = 0;
  ConsumeResult r;
  TupleView tuple;
  while ((r = (*tgt)->Consume(&tuple)) == ConsumeResult::kOk) ++consumed;
  EXPECT_EQ(r, ConsumeResult::kError)
      << "an aborted source must fail the consumer, not end the flow";
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
  EXPECT_LE(consumed, 6u);
  healthy.join();
  dying.join();
}

TEST_F(ChaosFlowTest, ShuffleTargetAbortUnblocksFullRingProducer) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded(/*deadline_ns=*/0);  // no deadline: only the abort
  spec.options.segments_per_ring = 4;         // fill the ring quickly
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  Status push_status;
  std::thread producer([&] {
    auto src = dfi_.CreateShuffleSource("f", 0);
    for (uint64_t k = 0; k < 1000; ++k) {
      push_status = (*src)->Push(&k);
      if (!push_status.ok()) return;
    }
  });
  // Let the producer wedge against the never-consumed ring, then kill the
  // target. The blocked Push must wake with the abort cause even though no
  // deadline was configured.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*tgt)->Abort(Status::PeerFailed("target process killed"));
  producer.join();
  EXPECT_EQ(push_status.code(), StatusCode::kPeerFailed);
}

TEST_F(ChaosFlowTest, ShuffleConsumeDeadlineExpiresWithSilentSource) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded(/*deadline_ns=*/1 * kMillisecond);
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  // The source exists but never pushes and never closes: only the
  // consumer's own deadline can end the wait.
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  TupleView tuple;
  EXPECT_EQ((*tgt)->Consume(&tuple), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ChaosFlowTest, ShuffleFaultPlanCrashDetectedByConsumer) {
  fabric_.fault_plan().CrashNode(1, 10 * kMicrosecond);
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});  // on the crashing node
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded(/*deadline_ns=*/60 * kMillisecond);
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  // No source endpoint is ever created — the node is dead. The consumer
  // must report the peer's death (from the fault plan), well before its
  // own 60 ms deadline.
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  TupleView tuple;
  EXPECT_EQ((*tgt)->Consume(&tuple), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
}

// ---- Replicate -------------------------------------------------------------

TEST_F(ChaosFlowTest, ReplicateNaiveSourceAbortFailsAllTargets) {
  ReplicateFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[2], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.targets.Append(Endpoint{addrs_[1], 0});
  spec.schema = U64Schema();
  spec.options = Bounded();
  ASSERT_TRUE(dfi_.InitReplicateFlow(std::move(spec)).ok());

  std::thread producer([&] {
    auto src = dfi_.CreateReplicateSource("f", 0);
    for (uint64_t k = 0; k < 8; ++k) ASSERT_TRUE((*src)->Push(&k).ok());
    (*src)->Abort(Status::PeerFailed("replicate source died"));
  });
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_.CreateReplicateTarget("f", t);
      SegmentView seg;
      ConsumeResult r;
      while ((r = (*tgt)->ConsumeSegment(&seg)) == ConsumeResult::kOk) {
      }
      EXPECT_EQ(r, ConsumeResult::kError);
      EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
}

TEST_F(ChaosFlowTest, ReplicateMulticastAbortFailsAllTargets) {
  ReplicateFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[2], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.targets.Append(Endpoint{addrs_[1], 0});
  spec.schema = U64Schema();
  spec.options = Bounded();
  spec.options.use_multicast = true;
  ASSERT_TRUE(dfi_.InitReplicateFlow(std::move(spec)).ok());

  std::thread producer([&] {
    auto src = dfi_.CreateReplicateSource("f", 0);
    for (uint64_t k = 0; k < 8; ++k) ASSERT_TRUE((*src)->Push(&k).ok());
    (*src)->Abort(Status::PeerFailed("multicast source died"));
  });
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_.CreateReplicateTarget("f", t);
      SegmentView seg;
      ConsumeResult r;
      while ((r = (*tgt)->ConsumeSegment(&seg)) == ConsumeResult::kOk) {
      }
      EXPECT_EQ(r, ConsumeResult::kError);
      EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
}

TEST_F(ChaosFlowTest, ReplicateMulticastFaultPlanCrashDetected) {
  fabric_.fault_plan().CrashNode(2, 10 * kMicrosecond);
  ReplicateFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[2], 0});  // on the crashing node
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded(/*deadline_ns=*/60 * kMillisecond);
  spec.options.use_multicast = true;
  ASSERT_TRUE(dfi_.InitReplicateFlow(std::move(spec)).ok());

  auto tgt = dfi_.CreateReplicateTarget("f", 0);
  SegmentView seg;
  EXPECT_EQ((*tgt)->ConsumeSegment(&seg), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
}

// ---- Combiner --------------------------------------------------------------

TEST_F(ChaosFlowTest, CombinerSourceAbortFailsAggregation) {
  CombinerFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.sources.Append(Endpoint{addrs_[2], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = Schema{{"key", DataType::kUInt64},
                       {"value", DataType::kInt64}};
  spec.group_by_index = 0;
  spec.aggregates = {{AggFunc::kSum, 1}};
  spec.options = Bounded();
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());

  struct Kv {
    uint64_t key;
    int64_t value;
  };
  std::thread healthy([&] {
    auto src = dfi_.CreateCombinerSource("f", 0);
    Kv kv{1, 10};
    ASSERT_TRUE((*src)->Push(&kv).ok());
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::thread dying([&] {
    auto src = dfi_.CreateCombinerSource("f", 1);
    Kv kv{2, 20};
    ASSERT_TRUE((*src)->Push(&kv).ok());
    (*src)->Abort(Status::PeerFailed("combiner source died"));
  });

  // The drain pre-aggregates everything before the first row is released,
  // so a dead source fails the whole aggregation — partial sums would be
  // silently wrong answers.
  auto tgt = dfi_.CreateCombinerTarget("f", 0);
  AggRow row;
  EXPECT_EQ((*tgt)->ConsumeAggregate(&row), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
  healthy.join();
  dying.join();
}

TEST_F(ChaosFlowTest, CombinerDrainDeadlineExpiresWithSilentSource) {
  CombinerFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = Schema{{"key", DataType::kUInt64},
                       {"value", DataType::kInt64}};
  spec.group_by_index = 0;
  spec.aggregates = {{AggFunc::kSum, 1}};
  spec.options = Bounded(/*deadline_ns=*/1 * kMillisecond);
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());

  auto tgt = dfi_.CreateCombinerTarget("f", 0);
  AggRow row;
  EXPECT_EQ((*tgt)->ConsumeAggregate(&row), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kDeadlineExceeded);
}

// ---- Runtime-level teardown ------------------------------------------------

TEST_F(ChaosFlowTest, AbortFlowByNameUnblocksWaitingConsumer) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources.Append(Endpoint{addrs_[1], 0});
  spec.targets.Append(Endpoint{addrs_[0], 0});
  spec.schema = U64Schema();
  spec.options = Bounded(/*deadline_ns=*/0);  // block forever if unaided
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  EXPECT_EQ(dfi_.AbortFlow("nope", Status::Aborted("x")).code(),
            StatusCode::kNotFound);

  ConsumeResult result = ConsumeResult::kOk;
  Status seen;
  std::thread consumer([&] {
    auto tgt = dfi_.CreateShuffleTarget("f", 0);
    TupleView tuple;
    result = (*tgt)->Consume(&tuple);
    seen = (*tgt)->last_status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(
      dfi_.AbortFlow("f", Status::PeerFailed("operator killed flow")).ok());
  consumer.join();
  EXPECT_EQ(result, ConsumeResult::kError);
  EXPECT_EQ(seen.code(), StatusCode::kPeerFailed);
}

}  // namespace
}  // namespace dfi
