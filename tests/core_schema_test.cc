#include "core/schema.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(SchemaTest, OffsetsArePacked) {
  Schema schema{{"a", DataType::kInt32},
                {"b", DataType::kInt64},
                {"c", DataType::kUInt16}};
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 4u);
  EXPECT_EQ(schema.offset(2), 12u);
  EXPECT_EQ(schema.tuple_size(), 14u);
}

TEST(SchemaTest, TypeSizesMirrorLp64) {
  EXPECT_EQ(DataTypeSize(DataType::kInt8), 1u);
  EXPECT_EQ(DataTypeSize(DataType::kUInt16), 2u);
  EXPECT_EQ(DataTypeSize(DataType::kInt32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kDouble), 8u);
}

TEST(SchemaTest, CharFieldUsesExplicitLength) {
  Schema schema{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 24}};
  EXPECT_EQ(schema.tuple_size(), 32u);
  EXPECT_EQ(schema.field_size(1), 24u);
}

TEST(SchemaTest, CreateRejectsEmpty) {
  EXPECT_EQ(Schema::Create({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, CreateRejectsDuplicateNames) {
  auto s = Schema::Create({{"x", DataType::kInt32, 0},
                           {"x", DataType::kInt64, 0}});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, CreateRejectsZeroLengthChar) {
  auto s = Schema::Create({{"c", DataType::kChar, 0}});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IndexOf) {
  Schema schema{{"key", DataType::kUInt64}, {"value", DataType::kUInt64}};
  auto idx = schema.IndexOf("value");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(schema.IndexOf("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, Equality) {
  Schema a{{"k", DataType::kUInt64}};
  Schema b{{"k", DataType::kUInt64}};
  Schema c{{"k", DataType::kUInt32}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaTest, ToStringIsReadable) {
  Schema schema{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 8}};
  EXPECT_EQ(schema.ToString(), "{key:uint64, pad:char(8)}");
}

TEST(TupleTest, WriteAndReadRoundTrip) {
  Schema schema{{"key", DataType::kUInt64},
                {"count", DataType::kInt32},
                {"score", DataType::kDouble}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema)
      .Set<uint64_t>(0, 0xDEADBEEFull)
      .Set<int32_t>(1, -42)
      .Set<double>(2, 2.75);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(view.Get<uint64_t>(0), 0xDEADBEEFull);
  EXPECT_EQ(view.Get<int32_t>(1), -42);
  EXPECT_DOUBLE_EQ(view.Get<double>(2), 2.75);
}

TEST(TupleTest, UnalignedAccessViaMemcpy) {
  // Packed layout forces unaligned 8-byte fields; getters must still work.
  Schema schema{{"pad", DataType::kUInt8}, {"key", DataType::kUInt64}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema).Set<uint64_t>(1, 0x0123456789ABCDEFull);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(view.Get<uint64_t>(1), 0x0123456789ABCDEFull);
}

TEST(TupleTest, SetBytes) {
  Schema schema{{"name", DataType::kChar, 5}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema).SetBytes(0, "hello", 5);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(std::memcmp(view.FieldPtr(0), "hello", 5), 0);
}

}  // namespace
}  // namespace dfi
