#include "core/schema.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(SchemaTest, OffsetsArePacked) {
  Schema schema{{"a", DataType::kInt32},
                {"b", DataType::kInt64},
                {"c", DataType::kUInt16}};
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 4u);
  EXPECT_EQ(schema.offset(2), 12u);
  EXPECT_EQ(schema.tuple_size(), 14u);
}

TEST(SchemaTest, TypeSizesMirrorLp64) {
  EXPECT_EQ(DataTypeSize(DataType::kInt8), 1u);
  EXPECT_EQ(DataTypeSize(DataType::kUInt16), 2u);
  EXPECT_EQ(DataTypeSize(DataType::kInt32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::kDouble), 8u);
}

TEST(SchemaTest, CharFieldUsesExplicitLength) {
  Schema schema{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 24}};
  EXPECT_EQ(schema.tuple_size(), 32u);
  EXPECT_EQ(schema.field_size(1), 24u);
}

TEST(SchemaTest, CreateRejectsEmpty) {
  EXPECT_EQ(Schema::Create({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, CreateRejectsDuplicateNames) {
  auto s = Schema::Create({{"x", DataType::kInt32, 0},
                           {"x", DataType::kInt64, 0}});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, CreateRejectsZeroLengthChar) {
  auto s = Schema::Create({{"c", DataType::kChar, 0}});
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IndexOf) {
  Schema schema{{"key", DataType::kUInt64}, {"value", DataType::kUInt64}};
  auto idx = schema.IndexOf("value");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(schema.IndexOf("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, Equality) {
  Schema a{{"k", DataType::kUInt64}};
  Schema b{{"k", DataType::kUInt64}};
  Schema c{{"k", DataType::kUInt32}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaTest, ToStringIsReadable) {
  Schema schema{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 8}};
  EXPECT_EQ(schema.ToString(), "{key:uint64, pad:char(8)}");
}

TEST(TupleTest, WriteAndReadRoundTrip) {
  Schema schema{{"key", DataType::kUInt64},
                {"count", DataType::kInt32},
                {"score", DataType::kDouble}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema)
      .Set<uint64_t>(0, 0xDEADBEEFull)
      .Set<int32_t>(1, -42)
      .Set<double>(2, 2.75);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(view.Get<uint64_t>(0), 0xDEADBEEFull);
  EXPECT_EQ(view.Get<int32_t>(1), -42);
  EXPECT_DOUBLE_EQ(view.Get<double>(2), 2.75);
}

TEST(TupleTest, UnalignedAccessViaMemcpy) {
  // Packed layout forces unaligned 8-byte fields; getters must still work.
  Schema schema{{"pad", DataType::kUInt8}, {"key", DataType::kUInt64}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema).Set<uint64_t>(1, 0x0123456789ABCDEFull);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(view.Get<uint64_t>(1), 0x0123456789ABCDEFull);
}

TEST(TupleTest, SetBytes) {
  Schema schema{{"name", DataType::kChar, 5}};
  std::vector<uint8_t> buf(schema.tuple_size());
  TupleWriter(buf.data(), &schema).SetBytes(0, "hello", 5);
  TupleView view(buf.data(), &schema);
  EXPECT_EQ(std::memcmp(view.FieldPtr(0), "hello", 5), 0);
}

// ---- Composition paths (graph-edge typing, DESIGN.md §14) ------------------

TEST(SchemaCompositionTest, ExtendAppendsAndRecomputesOffsets) {
  Schema base{{"key", DataType::kUInt64}, {"seq", DataType::kUInt64}};
  auto extended = base.Extend({"wkey", DataType::kUInt64, 0});
  ASSERT_TRUE(extended.ok()) << extended.status();
  EXPECT_EQ(extended->num_fields(), 3u);
  EXPECT_EQ(extended->offset(2), 16u);
  EXPECT_EQ(extended->tuple_size(), 24u);
  // The original is untouched (value semantics).
  EXPECT_EQ(base.num_fields(), 2u);
}

TEST(SchemaCompositionTest, ExtendRejectsDuplicateName) {
  Schema base{{"key", DataType::kUInt64}};
  auto extended = base.Extend({"key", DataType::kUInt32, 0});
  EXPECT_EQ(extended.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaCompositionTest, WithFieldReplacesInPlace) {
  Schema base{{"key", DataType::kUInt64},
              {"pad", DataType::kChar, 8},
              {"val", DataType::kUInt64}};
  auto widened = base.WithField({"pad", DataType::kChar, 24});
  ASSERT_TRUE(widened.ok()) << widened.status();
  EXPECT_EQ(widened->field_size(1), 24u);
  EXPECT_EQ(widened->offset(2), 32u) << "offsets must be recomputed";
  EXPECT_EQ(base.WithField({"nope", DataType::kUInt64, 0}).status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaCompositionTest, ProjectSelectsAndReorders) {
  Schema base{{"a", DataType::kUInt64},
              {"b", DataType::kUInt32},
              {"c", DataType::kDouble}};
  auto narrow = base.Project({"c", "a"});
  ASSERT_TRUE(narrow.ok()) << narrow.status();
  EXPECT_EQ(narrow->num_fields(), 2u);
  EXPECT_EQ(narrow->field(0).name, "c");
  EXPECT_EQ(narrow->field(1).name, "a");
  EXPECT_EQ(narrow->offset(1), 8u);
  EXPECT_EQ(base.Project({"a", "missing"}).status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaCompositionTest, CheckCompatibleFieldCountMismatch) {
  Schema produced{{"key", DataType::kUInt64}};
  Schema required{{"key", DataType::kUInt64}, {"val", DataType::kUInt64}};
  const Status s = CheckCompatible(produced, required);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("1 fields"), std::string::npos) << s;
  EXPECT_NE(s.message().find("requires 2"), std::string::npos) << s;
}

TEST(SchemaCompositionTest, CheckCompatibleFieldNameMismatch) {
  Schema produced{{"key", DataType::kUInt64}, {"value", DataType::kUInt64}};
  Schema required{{"key", DataType::kUInt64}, {"payload", DataType::kUInt64}};
  const Status s = CheckCompatible(produced, required);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The message names the first offending field on both sides.
  EXPECT_NE(s.message().find("'value'"), std::string::npos) << s;
  EXPECT_NE(s.message().find("'payload'"), std::string::npos) << s;
}

TEST(SchemaCompositionTest, CheckCompatibleTypeMismatch) {
  Schema produced{{"key", DataType::kUInt64}, {"score", DataType::kDouble}};
  Schema required{{"key", DataType::kUInt64}, {"score", DataType::kInt64}};
  const Status s = CheckCompatible(produced, required);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("'score'"), std::string::npos) << s;
  EXPECT_NE(s.message().find("double"), std::string::npos) << s;
  EXPECT_NE(s.message().find("int64"), std::string::npos) << s;
}

TEST(SchemaCompositionTest, CheckCompatibleWidthMismatch) {
  Schema produced{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 8}};
  Schema required{{"key", DataType::kUInt64}, {"pad", DataType::kChar, 24}};
  const Status s = CheckCompatible(produced, required);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("width 8"), std::string::npos) << s;
  EXPECT_NE(s.message().find("requires 24"), std::string::npos) << s;
}

TEST(SchemaCompositionTest, CheckCompatibleAcceptsChainedDerivation) {
  // The window operator's actual derivation: extend the ingest schema by
  // the fused window key, then require exactly that on the combiner edge.
  Schema ingest{{"key", DataType::kUInt64}, {"seq", DataType::kUInt64}};
  auto windowed = ingest.Extend({"wkey", DataType::kUInt64, 0});
  ASSERT_TRUE(windowed.ok());
  Schema required{{"key", DataType::kUInt64},
                  {"seq", DataType::kUInt64},
                  {"wkey", DataType::kUInt64}};
  EXPECT_TRUE(CheckCompatible(*windowed, required).ok());
}

TEST(OrderingTest, StrengthOrder) {
  EXPECT_LT(Ordering::kNone, Ordering::kPerChannel);
  EXPECT_LT(Ordering::kPerChannel, Ordering::kGlobal);
  EXPECT_STREQ(OrderingName(Ordering::kNone), "none");
  EXPECT_STREQ(OrderingName(Ordering::kPerChannel), "per-channel");
  EXPECT_STREQ(OrderingName(Ordering::kGlobal), "global");
}

TEST(OrderingTest, ComposeIsWeakestLink) {
  EXPECT_EQ(ComposeOrdering(Ordering::kGlobal, Ordering::kPerChannel),
            Ordering::kPerChannel);
  EXPECT_EQ(ComposeOrdering(Ordering::kPerChannel, Ordering::kGlobal),
            Ordering::kPerChannel);
  EXPECT_EQ(ComposeOrdering(Ordering::kNone, Ordering::kGlobal),
            Ordering::kNone);
  EXPECT_EQ(ComposeOrdering(Ordering::kGlobal, Ordering::kGlobal),
            Ordering::kGlobal);
}

TEST(OrderingTest, PropagatesAcrossChainedEdges) {
  // A kNone edge anywhere in a chain erases the guarantee for everything
  // downstream, no matter how strong the later edges are.
  const Ordering chain_weak_middle = ComposeOrdering(
      ComposeOrdering(Ordering::kGlobal, Ordering::kNone), Ordering::kGlobal);
  EXPECT_EQ(chain_weak_middle, Ordering::kNone);
  // An all-global chain keeps the global guarantee end to end.
  const Ordering chain_strong = ComposeOrdering(
      ComposeOrdering(Ordering::kGlobal, Ordering::kGlobal),
      Ordering::kGlobal);
  EXPECT_EQ(chain_strong, Ordering::kGlobal);
  // Composition is associative: grouping does not change the outcome.
  EXPECT_EQ(ComposeOrdering(Ordering::kGlobal,
                            ComposeOrdering(Ordering::kNone,
                                            Ordering::kGlobal)),
            chain_weak_middle);
}

}  // namespace
}  // namespace dfi
