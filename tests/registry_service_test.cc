// Control-plane tests (sharded, replicated registry PR): shard routing,
// primary/backup failover with epoch bumps, exactly-once retries through
// mid-batch crashes, client cache fencing, and pool-size-independent
// event traces.

#include "registry/registry_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/exec/engine.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "registry/registry_client.h"

namespace dfi::reg {
namespace {

struct DummyState : FlowStateBase {
  explicit DummyState(int v) : value(v) {}
  int value;
};

std::shared_ptr<FlowStateBase> State(int v) {
  return std::make_shared<DummyState>(v);
}

int ValueOf(const std::shared_ptr<FlowStateBase>& s) {
  return std::static_pointer_cast<DummyState>(s)->value;
}

// ---- Loopback deployment ---------------------------------------------------

TEST(RegistryServiceTest, LoopbackPublishRetrieveClose) {
  RegistryService service(/*fabric=*/nullptr);
  RegistryClient client(&service);
  ASSERT_TRUE(client.Publish("f", State(7)).ok());
  auto r = client.Retrieve("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ValueOf(*r), 7);
  EXPECT_EQ(service.TotalFlows(0), 1u);
  ASSERT_TRUE(client.Close("f").ok());
  EXPECT_EQ(service.TotalFlows(0), 0u);
  EXPECT_EQ(client.Retrieve("f").status().code(), StatusCode::kNotFound);
}

TEST(RegistryServiceTest, ShardRoutingIsStableAndValidated) {
  RegistryServiceOptions opts;
  opts.num_shards = 8;
  RegistryService service(/*fabric=*/nullptr, opts);
  const ShardId s1 = service.ShardOf("flow.a");
  EXPECT_EQ(s1, service.ShardOf("flow.a"));
  EXPECT_LT(s1, 8u);

  // A batch whose op does not belong to the addressed shard is rejected
  // before execution.
  Op op;
  op.kind = OpKind::kRetrieve;
  op.name = "flow.a";
  BatchRequest req;
  req.shard = (s1 + 1) % 8;
  req.ops.push_back(op);
  BatchResult res = service.Execute(req, /*start=*/0);
  EXPECT_EQ(res.transport.code(), StatusCode::kInvalidArgument);
}

TEST(RegistryServiceTest, BatchedOpsSpanShards) {
  RegistryServiceOptions opts;
  opts.num_shards = 4;
  RegistryService service(/*fabric=*/nullptr, opts);
  RegistryClient client(&service);
  std::vector<std::pair<std::string, std::shared_ptr<FlowStateBase>>> flows;
  std::vector<std::string> names;
  for (int i = 0; i < 32; ++i) {
    names.push_back("flow." + std::to_string(i));
    flows.emplace_back(names.back(), State(i));
  }
  auto pub = client.PublishBatch(flows);
  ASSERT_TRUE(pub.ok());
  for (const OpResult& r : *pub) EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(service.TotalFlows(0), 32u);

  auto got = client.RetrieveBatch(names);
  ASSERT_TRUE(got.ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE((*got)[i].status.ok()) << names[i];
    EXPECT_EQ(ValueOf((*got)[i].state), i);
  }
  auto closed = client.CloseBatch(names);
  ASSERT_TRUE(closed.ok());
  for (const OpResult& r : *closed) EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(service.TotalFlows(0), 0u);
}

// ---- Replicated fabric deployment -----------------------------------------

class ReplicatedRegistryTest : public ::testing::Test {
 protected:
  /// One shard, three replicas on nodes 1..3; clients on node 0 and 4.
  void Build(uint32_t replication = 3) {
    nodes_ = fabric_.AddNodes(5);
    RegistryServiceOptions opts;
    opts.num_shards = 1;
    opts.replication = replication;
    for (uint32_t r = 0; r < replication; ++r) {
      opts.replica_nodes.push_back(nodes_[1 + r]);
    }
    opts.record_trace = true;
    service_ = std::make_unique<RegistryService>(&fabric_, opts);
  }

  SimTime Hop(net::NodeId from, net::NodeId to, SimTime at,
              uint32_t bytes) const {
    return net::RpcPath(&fabric_).HopNs(from, to, at, bytes);
  }

  net::Fabric fabric_;
  std::vector<net::NodeId> nodes_;
  std::unique_ptr<RegistryService> service_;
};

TEST_F(ReplicatedRegistryTest, FailoverBumpsEpochAndPromotesBackup) {
  Build();
  fabric_.fault_plan().CrashNode(nodes_[1], /*at=*/1'000'000);

  ShardView before = service_->ViewAt(0, 999'999);
  EXPECT_EQ(before.epoch, 1u);
  EXPECT_EQ(before.primary, 0u);
  EXPECT_EQ(before.primary_node, nodes_[1]);
  EXPECT_TRUE(before.available);

  ShardView after = service_->ViewAt(0, 1'000'000);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.primary, 1u);
  EXPECT_EQ(after.primary_node, nodes_[2]);
  EXPECT_TRUE(after.available);
}

TEST_F(ReplicatedRegistryTest, ReplicatedStateSurvivesPrimaryCrash) {
  Build();
  fabric_.fault_plan().CrashNode(nodes_[1], /*at=*/1'000'000);
  VirtualClock clock;
  RegistryClient client(
      service_.get(),
      RegistryClientOptions{.client_id = 1, .node = nodes_[0]}, &clock);
  ASSERT_TRUE(client.Publish("f", State(42)).ok());
  ASSERT_LT(clock.now(), 1'000'000);  // published before the crash

  clock.AdvanceTo(2'000'000);  // past the crash
  auto r = client.Retrieve("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ValueOf(*r), 42);
  EXPECT_EQ(service_->TotalFlows(2'000'000), 1u);
}

TEST_F(ReplicatedRegistryTest, WrongPrimaryRedirectCarriesView) {
  Build();
  Op op;
  op.kind = OpKind::kRetrieve;
  op.name = "f";
  BatchRequest req;
  req.client_id = 9;
  req.client_node = nodes_[0];
  req.shard = 0;
  req.target_replica = 2;  // a live backup, not the primary
  req.ops.push_back(op);
  BatchResult res = service_->Execute(req, /*start=*/0);
  ASSERT_TRUE(res.transport.ok());
  EXPECT_TRUE(res.wrong_primary);
  EXPECT_EQ(res.epoch, 1u);
  EXPECT_TRUE(res.results.empty());
  EXPECT_GT(res.complete_at, 0);  // redirect cost a round trip
}

TEST_F(ReplicatedRegistryTest, MidBatchCrashRetriesExactlyOnce) {
  Build();
  // Publish 6 flows in one batch; the primary dies after applying (and
  // replicating) exactly 2 of them. The client observes silence, backs
  // off, and resends to the promoted backup, which answers the first two
  // ops from its dedup window and applies the rest — nothing lost, nothing
  // double-applied (a double apply would surface as kAlreadyExists).
  const uint32_t kOps = 6;
  const SimTime hop =
      Hop(nodes_[0], nodes_[1], 0,
          service_->options().op_wire_bytes * kOps);
  const SimTime t_arrive = hop;
  const SimTime per_op = service_->options().op_serve_ns;
  fabric_.fault_plan().CrashNode(nodes_[1], t_arrive + per_op * 2 + 1);

  VirtualClock clock;
  RegistryClient client(
      service_.get(),
      RegistryClientOptions{.client_id = 1, .node = nodes_[0]}, &clock);
  std::vector<std::pair<std::string, std::shared_ptr<FlowStateBase>>> flows;
  for (uint32_t i = 0; i < kOps; ++i) {
    flows.emplace_back("f" + std::to_string(i), State(static_cast<int>(i)));
  }
  auto pub = client.PublishBatch(flows);
  ASSERT_TRUE(pub.ok());
  for (uint32_t i = 0; i < kOps; ++i) {
    EXPECT_TRUE((*pub)[i].status.ok())
        << "op " << i << ": " << (*pub)[i].status.ToString();
  }
  EXPECT_EQ((*pub)[0].duplicate, true);   // prefix answered from the window
  EXPECT_EQ((*pub)[1].duplicate, true);
  EXPECT_EQ((*pub)[2].duplicate, false);  // rest applied fresh
  EXPECT_EQ(service_->duplicates_suppressed(), 2u);
  EXPECT_EQ(service_->TotalFlows(clock.now()), kOps);
  const RegistryClientStats stats = client.stats();
  EXPECT_GE(stats.retries, 1u);

  // Every flow is retrievable from the promoted primary.
  for (uint32_t i = 0; i < kOps; ++i) {
    auto r = client.Retrieve("f" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(ValueOf(*r), static_cast<int>(i));
  }
}

TEST_F(ReplicatedRegistryTest, AllReplicasCrashedReportsPeerFailed) {
  Build(/*replication=*/2);
  fabric_.fault_plan().CrashNode(nodes_[1], 100);
  fabric_.fault_plan().CrashNode(nodes_[2], 200);
  VirtualClock clock;
  clock.AdvanceTo(1'000);
  RegistryClient client(
      service_.get(),
      RegistryClientOptions{.client_id = 1, .node = nodes_[0]}, &clock);
  EXPECT_EQ(client.Publish("f", State(1)).code(), StatusCode::kPeerFailed);
  EXPECT_FALSE(service_->ViewAt(0, 1'000).available);
}

TEST_F(ReplicatedRegistryTest, PartitionedClientExhaustsRetryDeadline) {
  Build();
  fabric_.fault_plan().Partition({nodes_[0]}, /*at=*/0);
  VirtualClock clock;
  RegistryClient client(service_.get(),
                        RegistryClientOptions{.client_id = 1,
                                              .node = nodes_[0],
                                              .retry_deadline_ns = 300'000},
                        &clock);
  const Status s = client.Publish("f", State(1));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  const RegistryClientStats stats = client.stats();
  EXPECT_GE(stats.retries, 2u);  // capped exponential backoff ran
  EXPECT_LE(clock.now(), 400'000);
}

TEST_F(ReplicatedRegistryTest, ClientCacheFencedByEpochBump) {
  Build();
  fabric_.fault_plan().CrashNode(nodes_[1], /*at=*/5'000'000);
  VirtualClock clock;
  RegistryClient client(
      service_.get(),
      RegistryClientOptions{.client_id = 1, .node = nodes_[0]}, &clock);
  ASSERT_TRUE(client.Publish("f", State(5)).ok());
  ASSERT_TRUE(client.Retrieve("f").ok());  // miss: fetched and cached
  ASSERT_TRUE(client.Retrieve("f").ok());  // hit
  RegistryClientStats stats = client.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // Cross the crash: the cached entry carries epoch 1, the view now says
  // epoch 2, so the entry is fenced and re-fetched from the new primary.
  clock.AdvanceTo(6'000'000);
  auto r = client.Retrieve("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ValueOf(*r), 5);
  stats = client.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_GE(stats.cache_invalidations, 1u);
}

TEST_F(ReplicatedRegistryTest, AbandonedBatchDoesNotWedgeTheWindow) {
  Build();
  // A client that gave up on a batch (deadline) moves on with fresh
  // sequence numbers; the shard accepts the forward jump and only ever
  // rejects re-use.
  Op op;
  op.kind = OpKind::kPublish;
  op.name = "f";
  op.state = State(1);
  BatchRequest req;
  req.client_id = 3;
  req.client_node = nodes_[0];
  req.shard = 0;
  req.target_replica = 0;
  req.base_seq = 40;  // seqs 0..39 were abandoned
  req.ops.push_back(op);
  BatchResult res = service_->Execute(req, /*start=*/0);
  ASSERT_TRUE(res.transport.ok());
  ASSERT_EQ(res.results.size(), 1u);
  EXPECT_TRUE(res.results[0].status.ok());

  // Re-sending the same seq is deduplicated, not re-applied.
  BatchResult retry = service_->Execute(req, /*start=*/res.complete_at);
  ASSERT_TRUE(retry.transport.ok());
  EXPECT_TRUE(retry.results[0].duplicate);
  EXPECT_EQ(service_->duplicates_suppressed(), 1u);
}

// ---- Determinism -----------------------------------------------------------

uint64_t RunChurn(uint32_t workers, std::string* trace) {
  net::Fabric fabric;
  const std::vector<net::NodeId> nodes = fabric.AddNodes(8);
  // Shard 0 on nodes {0,1}, shard 1 on nodes {2,3}; crash shard 0's
  // primary mid-run. Clients on nodes 4..7.
  fabric.fault_plan().CrashNode(nodes[0], /*at=*/40'000);
  RegistryServiceOptions opts;
  opts.num_shards = 2;
  opts.replication = 2;
  opts.replica_nodes = {nodes[0], nodes[1], nodes[2], nodes[3]};
  opts.record_trace = true;
  RegistryService service(&fabric, opts);

  constexpr uint32_t kClients = 4;
  constexpr uint32_t kFlowsPerClient = 16;
  std::vector<std::unique_ptr<VirtualClock>> clocks;
  std::vector<std::unique_ptr<RegistryClient>> clients;
  for (uint32_t c = 0; c < kClients; ++c) {
    clocks.push_back(std::make_unique<VirtualClock>());
    clients.push_back(std::make_unique<RegistryClient>(
        &service,
        RegistryClientOptions{.client_id = c + 1, .node = nodes[4 + c]},
        clocks[c].get()));
  }
  exec::Engine engine({.workers = workers});
  for (uint32_t c = 0; c < kClients; ++c) {
    engine.Spawn(c, "client" + std::to_string(c), [&, c] {
      RegistryClient& cl = *clients[c];
      for (uint32_t i = 0; i < kFlowsPerClient; ++i) {
        const std::string name =
            "w" + std::to_string(c) + ".f" + std::to_string(i);
        ASSERT_TRUE(cl.Publish(name, State(static_cast<int>(i))).ok());
        ASSERT_TRUE(cl.Retrieve(name).ok());
        if (i % 2 == 0) {
          ASSERT_TRUE(cl.Close(name).ok());
        }
      }
    });
  }
  engine.Run();
  if (trace != nullptr) *trace = service.TraceString();
  return service.TraceHash();
}

TEST(RegistryDeterminismTest, ChurnTraceIdenticalAcrossWorkerPools) {
  std::string trace1, trace2, trace4;
  const uint64_t h1 = RunChurn(1, &trace1);
  const uint64_t h2 = RunChurn(2, &trace2);
  const uint64_t h4 = RunChurn(4, &trace4);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h4);
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(trace1, trace4);
}

}  // namespace
}  // namespace dfi::reg
