// FlowBarrier tests: release on full arrival, generational reuse,
// virtual-time join at the release instant, timeout, participant-count
// validation, and release across a shard-primary crash.

#include "registry/flow_barrier.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/exec/engine.h"
#include "net/fabric.h"
#include "registry/registry_client.h"
#include "registry/registry_service.h"

namespace dfi::reg {
namespace {

TEST(FlowBarrierTest, ThreadModeReleasesAllParticipants) {
  RegistryService service(/*fabric=*/nullptr);
  constexpr uint32_t kN = 3;
  std::vector<Status> results(kN, Status::Internal("not run"));
  std::vector<std::thread> threads;
  for (uint32_t p = 0; p < kN; ++p) {
    threads.emplace_back([&, p] {
      RegistryClient client(&service,
                            RegistryClientOptions{.client_id = p + 1});
      FlowBarrier barrier(&client, "start", kN);
      results[p] = barrier.Wait(std::chrono::milliseconds(5000));
    });
  }
  for (auto& t : threads) t.join();
  for (uint32_t p = 0; p < kN; ++p) {
    EXPECT_TRUE(results[p].ok()) << "participant " << p << ": "
                                 << results[p].ToString();
  }
}

TEST(FlowBarrierTest, EngineModeJoinsClocksAtLatestArrival) {
  RegistryService service(/*fabric=*/nullptr);
  constexpr uint32_t kN = 3;
  const SimTime arrivals[kN] = {10'000, 30'000, 20'000};
  std::vector<std::unique_ptr<VirtualClock>> clocks;
  std::vector<std::unique_ptr<RegistryClient>> clients;
  std::vector<std::unique_ptr<FlowBarrier>> barriers;
  for (uint32_t p = 0; p < kN; ++p) {
    clocks.push_back(std::make_unique<VirtualClock>());
    clients.push_back(std::make_unique<RegistryClient>(
        &service, RegistryClientOptions{.client_id = p + 1},
        clocks[p].get()));
    barriers.push_back(
        std::make_unique<FlowBarrier>(clients[p].get(), "phase", kN));
  }
  exec::Engine engine({.workers = 2});
  for (uint32_t p = 0; p < kN; ++p) {
    engine.Spawn(p, "p" + std::to_string(p), [&, p] {
      clocks[p]->AdvanceTo(arrivals[p]);
      ASSERT_TRUE(barriers[p]->Wait().ok());
      // Every participant leaves at the latest arrival's virtual time.
      EXPECT_EQ(clocks[p]->now(), 30'000);
      EXPECT_EQ(barriers[p]->generation(), 1u);
      // Generational reuse: a second round works on the same instance.
      clocks[p]->Advance(1'000 * (p + 1));
      ASSERT_TRUE(barriers[p]->Wait().ok());
      EXPECT_EQ(clocks[p]->now(), 30'000 + 3'000);
      EXPECT_EQ(barriers[p]->generation(), 2u);
    });
  }
  engine.Run();
}

TEST(FlowBarrierTest, TimeoutWhenParticipantsMissing) {
  RegistryService service(/*fabric=*/nullptr);
  VirtualClock clock;
  RegistryClient client(&service, RegistryClientOptions{.client_id = 1},
                        &clock);
  FlowBarrier barrier(&client, "lonely", /*expected=*/2);
  Status result = Status::OK();
  exec::Engine engine({.workers = 1});
  engine.Spawn(0, "p0", [&] {
    result = barrier.Wait(std::chrono::milliseconds(5));
  });
  engine.Run();
  EXPECT_EQ(result.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(clock.now(), 5'000'000);  // charged the virtual deadline
  EXPECT_EQ(barrier.generation(), 0u);
}

TEST(FlowBarrierTest, ParticipantCountMismatchRejected) {
  RegistryService service(/*fabric=*/nullptr);
  RegistryClient c1(&service, RegistryClientOptions{.client_id = 1});
  RegistryClient c2(&service, RegistryClientOptions{.client_id = 2});
  FlowBarrier b1(&c1, "b", /*expected=*/2);
  FlowBarrier b2(&c2, "b", /*expected=*/3);
  Status s1 = Status::Internal("not run");
  std::thread t1([&] { s1 = b1.Wait(); });
  // The first arrival fixes the group size; wait until it has been applied
  // before the disagreeing participant shows up.
  while (service.applied_ops() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The second participant disagrees about the group size: rejected, and
  // the barrier still releases for the group that agreed.
  Status s2 = b2.Wait(std::chrono::milliseconds(100));
  EXPECT_EQ(s2.code(), StatusCode::kInvalidArgument);
  RegistryClient c3(&service, RegistryClientOptions{.client_id = 3});
  FlowBarrier b3(&c3, "b", /*expected=*/2);
  ASSERT_TRUE(b3.Wait().ok());
  t1.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
}

TEST(FlowBarrierTest, ReleasesAcrossPrimaryCrash) {
  net::Fabric fabric;
  const std::vector<net::NodeId> nodes = fabric.AddNodes(4);
  RegistryServiceOptions opts;
  opts.num_shards = 1;
  opts.replication = 2;
  opts.replica_nodes = {nodes[0], nodes[1]};
  RegistryService service(&fabric, opts);
  // The primary dies after the first participant's arrival was applied
  // and replicated, but before the second participant enters; the backup
  // takes over with the arrival intact and releases the barrier.
  fabric.fault_plan().CrashNode(nodes[0], /*at=*/1'000'000);

  VirtualClock clock_a, clock_b;
  RegistryClient ca(&service,
                    RegistryClientOptions{.client_id = 1, .node = nodes[2]},
                    &clock_a);
  RegistryClient cb(&service,
                    RegistryClientOptions{.client_id = 2, .node = nodes[3]},
                    &clock_b);
  FlowBarrier ba(&ca, "sync", 2);
  FlowBarrier bb(&cb, "sync", 2);

  exec::Engine engine({.workers = 2});
  Status sa = Status::Internal("not run"), sb = sa;
  engine.Spawn(0, "a", [&] { sa = ba.Wait(); });
  engine.Spawn(1, "b", [&] {
    clock_b.AdvanceTo(2'000'000);  // enters after the crash
    sb = bb.Wait();
  });
  engine.Run();
  EXPECT_TRUE(sa.ok()) << sa.ToString();
  EXPECT_TRUE(sb.ok()) << sb.ToString();
  // Both left at the latest arrival (participant b, after the crash).
  EXPECT_GE(clock_a.now(), 2'000'000);
}

}  // namespace
}  // namespace dfi::reg
