#include "core/combiner_flow.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "core/dfi_runtime.h"

namespace dfi {
namespace {

struct Kv {
  uint64_t key;
  int64_t value;
};

Schema KvSchema() {
  return Schema{{"key", DataType::kUInt64}, {"value", DataType::kInt64}};
}

class CombinerTest : public ::testing::Test {
 protected:
  CombinerTest() : dfi_(&fabric_) { fabric_.AddNodes(9); }

  CombinerFlowSpec BaseSpec(uint32_t num_sources, uint32_t target_threads) {
    CombinerFlowSpec spec;
    spec.name = "agg";
    for (uint32_t s = 0; s < num_sources; ++s) {
      spec.sources.Append(
          Endpoint{"10.0.0." + std::to_string(s + 2), 0});
    }
    for (uint32_t t = 0; t < target_threads; ++t) {
      spec.targets.Append(Endpoint{"10.0.0.1", t});
    }
    spec.schema = KvSchema();
    spec.group_by_index = 0;
    return spec;
  }

  net::Fabric fabric_;
  DfiRuntime dfi_;
};

TEST_F(CombinerTest, InitValidation) {
  auto spec = BaseSpec(1, 1);
  spec.aggregates = {};
  EXPECT_EQ(dfi_.InitCombinerFlow(spec).code(),
            StatusCode::kInvalidArgument);
  spec.aggregates = {{AggFunc::kSum, 9}};
  EXPECT_EQ(dfi_.InitCombinerFlow(spec).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CombinerTest, MultiNodeTargetsRejectedWithoutOptIn) {
  auto spec = BaseSpec(1, 1);
  spec.targets.Append(Endpoint{"10.0.0.3", 0});
  spec.aggregates = {{AggFunc::kSum, 1}};
  EXPECT_EQ(dfi_.InitCombinerFlow(spec).code(),
            StatusCode::kInvalidArgument);
  // Same-node target sets never need the flag.
  auto single = BaseSpec(1, 2);
  single.aggregates = {{AggFunc::kSum, 1}};
  EXPECT_TRUE(dfi_.InitCombinerFlow(std::move(single)).ok());
}

TEST_F(CombinerTest, MultiNodeTargetsPartitionGroups) {
  // N:M topology: group-key partitions spread over two target nodes.
  auto spec = BaseSpec(2, 1);
  spec.targets.Append(Endpoint{"10.0.0.4", 0});
  spec.multi_node_targets = true;
  spec.aggregates = {{AggFunc::kSum, 1}, {AggFunc::kCount, 0}};
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());

  constexpr uint64_t kPerSource = 2048;  // multiple of kGroups: equal counts
  constexpr uint64_t kGroups = 32;
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateCombinerSource("agg", s);
      ASSERT_TRUE(source.ok());
      for (uint64_t i = 0; i < kPerSource; ++i) {
        Kv kv{i % kGroups, 2};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }
  std::mutex mu;
  std::map<uint64_t, AggRow> rows;
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi_.CreateCombinerTarget("agg", t);
      ASSERT_TRUE(target.ok());
      AggRow row;
      std::map<uint64_t, AggRow> local;
      while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
        // Group keys are hash-partitioned across the target threads exactly
        // as in the single-node case.
        ASSERT_EQ(HashU64(row.group_key) % 2, t);
        local[row.group_key] = row;
      }
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [k, r] : local) {
        ASSERT_EQ(rows.count(k), 0u) << "group seen by two targets";
        rows[k] = r;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(rows.size(), kGroups);
  for (auto& [key, row] : rows) {
    EXPECT_DOUBLE_EQ(row.values[0], 2.0 * 2 * kPerSource / kGroups);
    EXPECT_DOUBLE_EQ(row.values[1], 2.0 * kPerSource / kGroups);
  }
}

TEST_F(CombinerTest, SumGroupByMatchesReference) {
  auto spec = BaseSpec(4, 1);
  spec.aggregates = {{AggFunc::kSum, 1}, {AggFunc::kCount, 0}};
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());

  constexpr uint64_t kPerSource = 3000;
  constexpr uint64_t kGroups = 17;
  std::map<uint64_t, double> ref_sum;
  std::map<uint64_t, double> ref_count;
  std::mutex ref_mu;

  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateCombinerSource("agg", s);
      ASSERT_TRUE(source.ok());
      std::map<uint64_t, double> local_sum, local_count;
      for (uint64_t i = 0; i < kPerSource; ++i) {
        Kv kv{(s + i) % kGroups, static_cast<int64_t>(i % 100) - 50};
        local_sum[kv.key] += static_cast<double>(kv.value);
        local_count[kv.key] += 1;
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
      std::lock_guard<std::mutex> lock(ref_mu);
      for (auto& [k, v] : local_sum) ref_sum[k] += v;
      for (auto& [k, v] : local_count) ref_count[k] += v;
    });
  }

  std::map<uint64_t, AggRow> rows;
  threads.emplace_back([&] {
    auto target = dfi_.CreateCombinerTarget("agg", 0);
    ASSERT_TRUE(target.ok());
    AggRow row;
    while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
      rows[row.group_key] = row;
    }
    EXPECT_EQ((*target)->tuples_aggregated(), 4 * kPerSource);
  });
  for (auto& th : threads) th.join();

  ASSERT_EQ(rows.size(), kGroups);
  for (auto& [key, row] : rows) {
    EXPECT_DOUBLE_EQ(row.values[0], ref_sum[key]) << "group " << key;
    EXPECT_DOUBLE_EQ(row.values[1], ref_count[key]) << "group " << key;
  }
}

TEST_F(CombinerTest, MinMaxAggregates) {
  auto spec = BaseSpec(2, 1);
  spec.aggregates = {{AggFunc::kMin, 1}, {AggFunc::kMax, 1}};
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateCombinerSource("agg", s);
      for (int64_t i = 0; i < 1000; ++i) {
        Kv kv{static_cast<uint64_t>(i % 5),
              s == 0 ? i : -i};  // source 1 pushes negatives
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }
  std::map<uint64_t, AggRow> rows;
  threads.emplace_back([&] {
    auto target = dfi_.CreateCombinerTarget("agg", 0);
    AggRow row;
    while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
      rows[row.group_key] = row;
    }
  });
  for (auto& th : threads) th.join();
  ASSERT_EQ(rows.size(), 5u);
  for (auto& [key, row] : rows) {
    // Keys k, k+5, ..., k+995: min is -(max positive) and max is positive.
    EXPECT_LE(row.values[0], -990.0);
    EXPECT_GE(row.values[1], 990.0);
  }
}

TEST_F(CombinerTest, MultiThreadedTargetPartitionsGroups) {
  auto spec = BaseSpec(2, 4);
  spec.aggregates = {{AggFunc::kCount, 0}};
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());
  constexpr uint64_t kGroups = 64;
  constexpr uint64_t kPerSource = 2048;  // multiple of kGroups: equal counts
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateCombinerSource("agg", s);
      for (uint64_t i = 0; i < kPerSource; ++i) {
        Kv kv{i % kGroups, 1};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }
  std::mutex mu;
  std::map<uint64_t, double> counts;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi_.CreateCombinerTarget("agg", t);
      AggRow row;
      std::map<uint64_t, double> local;
      while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
        // Group keys are hash-partitioned across target threads.
        ASSERT_EQ(HashU64(row.group_key) % 4, t);
        local[row.group_key] = row.values[0];
      }
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [k, v] : local) {
        ASSERT_EQ(counts.count(k), 0u) << "group seen by two targets";
        counts[k] = v;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(counts.size(), kGroups);
  for (auto& [k, v] : counts) {
    EXPECT_DOUBLE_EQ(v, 2.0 * kPerSource / kGroups);
  }
}

TEST_F(CombinerTest, GlobalAggregatePartialsSumUp) {
  auto spec = BaseSpec(2, 2);
  spec.global_aggregate = true;
  spec.aggregates = {{AggFunc::kSum, 1}};
  ASSERT_TRUE(dfi_.InitCombinerFlow(std::move(spec)).ok());
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateCombinerSource("agg", s);
      for (int64_t i = 1; i <= 1000; ++i) {
        Kv kv{0, i};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }
  std::atomic<double> total{0};
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi_.CreateCombinerTarget("agg", t);
      AggRow row;
      double partial = 0;
      while ((*target)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
        partial += row.values[0];
      }
      double expected = total.load();
      while (!total.compare_exchange_weak(expected, expected + partial)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(total.load(), 2.0 * 1000 * 1001 / 2);
}

}  // namespace
}  // namespace dfi
