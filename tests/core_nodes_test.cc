#include "core/nodes.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(DfiNodesTest, ParsesPaperNotation) {
  DfiNodes n({"192.168.0.1|0", "192.168.0.2|13"});
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].address, "192.168.0.1");
  EXPECT_EQ(n[0].thread_id, 0u);
  EXPECT_EQ(n[1].address, "192.168.0.2");
  EXPECT_EQ(n[1].thread_id, 13u);
}

TEST(DfiNodesTest, ParseRejectsMalformed) {
  EXPECT_EQ(DfiNodes::Parse({"noseparator"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DfiNodes::Parse({"|2"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DfiNodes::Parse({"host|"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DfiNodes::Parse({"host|x1"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DfiNodesTest, ResolveAgainstFabric) {
  net::Fabric fabric;
  ASSERT_TRUE(fabric.AddNode("a").ok());
  ASSERT_TRUE(fabric.AddNode("b").ok());
  DfiNodes n({"b|0", "a|1", "b|1"});
  auto ids = n.Resolve(fabric);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ((*ids)[0], 1u);
  EXPECT_EQ((*ids)[1], 0u);
  EXPECT_EQ((*ids)[2], 1u);
}

TEST(DfiNodesTest, ResolveUnknownAddressFails) {
  net::Fabric fabric;
  DfiNodes n({"ghost|0"});
  EXPECT_EQ(n.Resolve(fabric).status().code(), StatusCode::kNotFound);
}

TEST(DfiNodesTest, GridOf) {
  DfiNodes n = DfiNodes::GridOf({"n1", "n2"}, 3);
  ASSERT_EQ(n.size(), 6u);
  EXPECT_EQ(n[0].address, "n1");
  EXPECT_EQ(n[2].thread_id, 2u);
  EXPECT_EQ(n[3].address, "n2");
  EXPECT_EQ(n[3].thread_id, 0u);
}

}  // namespace
}  // namespace dfi
