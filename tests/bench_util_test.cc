#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "bench_util/table_printer.h"
#include "bench_util/workload.h"

namespace dfi::bench {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long header", "c"});
  t.AddRow({"wide value", "x", "y"});
  const std::string out = t.ToString();
  // Header line, separator, one data row.
  EXPECT_NE(out.find("a           long header  c"), std::string::npos) << out;
  EXPECT_NE(out.find("wide value  x            y"), std::string::npos) << out;
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, RaggedRowsDoNotCrash) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3"});
  EXPECT_FALSE(t.ToString().empty());
}

TEST(TablePrinterTest, JsonCaptureIncludesMetrics) {
  // The collector is process-wide, so this test owns everything captured.
  EXPECT_FALSE(ResultCaptureEnabled());
  RecordMetric("dropped before enable", 1.0, "x");  // must be a no-op
  EnableResultCapture();
  PrintSection("section one");
  RecordMetric("peak bandwidth", 11.64, "GiB/s");
  RecordMetric("speedup", 2.5, "x");
  const std::string path = ::testing::TempDir() + "/metrics.json";
  ASSERT_TRUE(WriteJsonResults(path));
  std::ifstream in(path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"title\":\"section one\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"peak bandwidth\",\"value\":11.64,"
                      "\"unit\":\"GiB/s\"}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"speedup\""), std::string::npos);
  EXPECT_EQ(json.find("dropped before enable"), std::string::npos);
}

TEST(WorkloadTest, ForeignKeyRelationInDomain) {
  auto rel = GenerateForeignKeyRelation(5000, 128, 3);
  ASSERT_EQ(rel.size(), 5000u);
  for (const auto& t : rel) {
    EXPECT_LT(t.key, 128u);
  }
}

TEST(WorkloadTest, YcsbKeysInSpace) {
  auto reqs = GenerateYcsbRequests(1000, 50, 0.5, 0.99, 4);
  for (const auto& r : reqs) {
    EXPECT_LT(r.key, 50u);
  }
}

TEST(WorkloadTest, YcsbZipfSkewsKeys) {
  auto reqs = GenerateYcsbRequests(20000, 1000, 0.0, 0.99, 5);
  size_t low = 0;
  for (const auto& r : reqs) {
    if (r.key < 10) ++low;
  }
  // With theta=0.99 the 1% hottest keys draw far more than 1% of accesses.
  EXPECT_GT(low, 20000u / 20);
}

TEST(WorkloadTest, DistinctSeedsDistinctStreams) {
  auto a = GenerateUniformRelation(100, 1000000, 1);
  auto b = GenerateUniformRelation(100, 1000000, 2);
  size_t same = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (a[i].key == b[i].key) ++same;
  }
  EXPECT_LT(same, 5u);
}

}  // namespace
}  // namespace dfi::bench
