// Application-level gap handling of ordered replicate flows: with
// FlowOptions::app_handles_gaps the flow surfaces kGap with the missing
// sequence number and the application decides — SkipGap (no-op) or
// SupplyGap (content recovered through its own protocol). This is the
// NOPaxos gap-agreement hook (paper section 5.4).

#include <gtest/gtest.h>

#include <thread>

#include "common/units.h"
#include "core/dfi_runtime.h"
#include "core/replicate_flow.h"

namespace dfi {
namespace {

class GapHandlingTest : public ::testing::Test {
 protected:
  void Init(double loss, uint64_t seed, double reorder = 0.0) {
    net::SimConfig cfg;
    cfg.multicast_loss_probability = loss;
    cfg.multicast_reorder_probability = reorder;
    cfg.loss_seed = seed;
    fabric_ = std::make_unique<net::Fabric>(cfg);
    fabric_->AddNodes(3);
    dfi_ = std::make_unique<DfiRuntime>(fabric_.get());

    ReplicateFlowSpec spec;
    spec.name = "gap";
    spec.sources.Append(Endpoint{fabric_->node(2).address(), 0});
    spec.targets.Append(Endpoint{fabric_->node(0).address(), 0});
    spec.targets.Append(Endpoint{fabric_->node(1).address(), 0});
    spec.schema = Schema{{"key", DataType::kUInt64}};
    spec.options.use_multicast = true;
    spec.options.global_ordering = true;
    spec.options.optimization = FlowOptimization::kLatency;
    spec.options.app_handles_gaps = true;
    ASSERT_TRUE(dfi_->InitReplicateFlow(std::move(spec)).ok());
  }

  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<DfiRuntime> dfi_;
};

TEST_F(GapHandlingTest, NoGapsWithoutLoss) {
  Init(0.0, 1);
  std::thread producer([&] {
    auto src = dfi_->CreateReplicateSource("gap", 0);
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE((*src)->Push(&k).ok());
    }
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_->CreateReplicateTarget("gap", t);
      uint64_t count = 0;
      SegmentView seg;
      ConsumeResult r;
      while ((r = (*tgt)->ConsumeSegment(&seg)) != ConsumeResult::kFlowEnd) {
        ASSERT_NE(r, ConsumeResult::kGap) << "no loss -> no gaps";
        ++count;
      }
      EXPECT_EQ(count, 200u);
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
}

TEST_F(GapHandlingTest, GapsSurfacedAndSkippable) {
  Init(0.15, 7);
  std::thread producer([&] {
    auto src = dfi_->CreateReplicateSource("gap", 0);
    for (uint64_t k = 0; k < 150; ++k) {
      ASSERT_TRUE((*src)->Push(&k).ok());
    }
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::vector<uint64_t> gaps_seen(2, 0);
  std::vector<uint64_t> delivered(2, 0);
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_->CreateReplicateTarget("gap", t);
      SegmentView seg;
      uint64_t last_seq = 0;
      bool first = true;
      // In app-handled-gap mode the application also owns termination (the
      // end marker itself may be lost): stop once all 150 data sequences
      // were either delivered or explicitly skipped.
      while (delivered[t] + gaps_seen[t] < 150) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        ASSERT_NE(r, ConsumeResult::kFlowEnd);
        if (r == ConsumeResult::kGap) {
          // The application decides: treat the lost sequence as a no-op.
          ++gaps_seen[t];
          (*tgt)->SkipGap();
          continue;
        }
        if (!first) {
          EXPECT_GT(seg.sequence, last_seq) << "order must still hold";
        }
        first = false;
        last_seq = seg.sequence;
        ++delivered[t];
      }
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
  for (uint32_t t = 0; t < 2; ++t) {
    EXPECT_GT(gaps_seen[t], 0u) << "15% loss must surface gaps";
    EXPECT_EQ(delivered[t] + gaps_seen[t], 150u)
        << "every data sequence either delivered or explicitly skipped";
  }
}

// Robustness PR: bursty loss scripted through the FaultPlan (no base loss
// at all — every drop comes from LossBurst windows, up to 0.2) combined
// with reorder injection. Delivered sequences must stay strictly ordered,
// and every data sequence must be either delivered or explicitly skipped;
// reordered stragglers that arrive after their gap was skipped are
// discarded as duplicates, never delivered out of order.
TEST_F(GapHandlingTest, BurstyFaultPlanLossWithReorderStaysOrdered) {
  Init(/*loss=*/0.0, /*seed=*/33, /*reorder=*/0.1);
  fabric_->fault_plan().LossBurst(0, 50 * kMicrosecond, 0.2);
  fabric_->fault_plan().LossBurst(100 * kMicrosecond, kSecond, 0.15);
  constexpr uint64_t kMessages = 250;
  std::thread producer([&] {
    auto src = dfi_->CreateReplicateSource("gap", 0);
    for (uint64_t k = 0; k < kMessages; ++k) {
      ASSERT_TRUE((*src)->Push(&k).ok());
    }
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::vector<uint64_t> gaps_seen(2, 0);
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_->CreateReplicateTarget("gap", t);
      SegmentView seg;
      uint64_t delivered = 0;
      uint64_t last_seq = 0;
      bool first = true;
      while (delivered + gaps_seen[t] < kMessages) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        ASSERT_NE(r, ConsumeResult::kFlowEnd);
        ASSERT_NE(r, ConsumeResult::kError);
        if (r == ConsumeResult::kGap) {
          ++gaps_seen[t];
          (*tgt)->SkipGap();
          continue;
        }
        if (!first) {
          ASSERT_GT(seg.sequence, last_seq)
              << "loss bursts + reorder must not break ordering";
        }
        first = false;
        last_seq = seg.sequence;
        ++delivered;
      }
      EXPECT_EQ(delivered + gaps_seen[t], kMessages);
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
  for (uint32_t t = 0; t < 2; ++t) {
    EXPECT_GT(gaps_seen[t], 0u)
        << "the scripted loss bursts must surface gaps";
  }
}

TEST_F(GapHandlingTest, SupplyGapInjectsRecoveredContent) {
  Init(0.15, 21);
  std::thread producer([&] {
    auto src = dfi_->CreateReplicateSource("gap", 0);
    for (uint64_t k = 0; k < 120; ++k) {
      ASSERT_TRUE((*src)->Push(&k).ok());
    }
    ASSERT_TRUE((*src)->Close().ok());
  });
  std::vector<std::thread> consumers;
  for (uint32_t t = 0; t < 2; ++t) {
    consumers.emplace_back([&, t] {
      auto tgt = dfi_->CreateReplicateTarget("gap", t);
      SegmentView seg;
      uint64_t total = 0;
      uint64_t recovered_count = 0;
      while (total < 120) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        ASSERT_NE(r, ConsumeResult::kFlowEnd);
        if (r == ConsumeResult::kGap) {
          // The application "recovered" the content out of band (in
          // NOPaxos: from the leader) and supplies it; the flow then
          // delivers it in sequence like any other segment.
          const uint64_t recovered = 0xDEAD0000 + seg.sequence;
          (*tgt)->SupplyGap(&recovered, sizeof(recovered));
          ++recovered_count;
          continue;
        }
        ++total;
      }
      EXPECT_EQ(total, 120u);
      EXPECT_GT(recovered_count, 0u) << "15% loss must recover something";
    });
  }
  producer.join();
  for (auto& th : consumers) th.join();
}

}  // namespace
}  // namespace dfi
