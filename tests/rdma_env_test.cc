#include "rdma/rdma_env.h"

#include <gtest/gtest.h>

#include "rdma/dma_memory.h"

namespace dfi::rdma {
namespace {

class RdmaEnvTest : public ::testing::Test {
 protected:
  RdmaEnvTest() : fabric_(), env_(&fabric_) {
    nodes_ = fabric_.AddNodes(2);
  }
  net::Fabric fabric_;
  RdmaEnv env_;
  std::vector<net::NodeId> nodes_;
};

TEST_F(RdmaEnvTest, ContextPerNodeIsStable) {
  RdmaContext* a = env_.context(nodes_[0]);
  EXPECT_EQ(a, env_.context(nodes_[0]));
  EXPECT_NE(a, env_.context(nodes_[1]));
  EXPECT_EQ(a->node_id(), nodes_[0]);
}

TEST_F(RdmaEnvTest, AllocateRegionIsZeroedAndAccounted) {
  RdmaContext* ctx = env_.context(nodes_[0]);
  MemoryRegion* mr = ctx->AllocateRegion(1024);
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->length(), 1024u);
  for (size_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(mr->addr()[i], 0);
  }
  EXPECT_EQ(fabric_.node(nodes_[0]).registered_bytes(), 1024u);
}

TEST_F(RdmaEnvTest, ResolveMr) {
  RdmaContext* ctx = env_.context(nodes_[1]);
  MemoryRegion* mr = ctx->AllocateRegion(256);
  auto info = env_.ResolveMr(mr->rkey());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->base, mr->addr());
  EXPECT_EQ(info->length, 256u);
  EXPECT_EQ(info->node, nodes_[1]);
  EXPECT_EQ(env_.ResolveMr(9999).status().code(), StatusCode::kNotFound);
}

TEST_F(RdmaEnvTest, ResolveRemoteBoundsChecked) {
  RdmaContext* ctx = env_.context(nodes_[0]);
  MemoryRegion* mr = ctx->AllocateRegion(128);
  auto ok = env_.ResolveRemote(mr->RefAt(64), 64);
  EXPECT_TRUE(ok.ok());
  auto bad = env_.ResolveRemote(mr->RefAt(64), 65);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST_F(RdmaEnvTest, RegisterCallerMemory) {
  alignas(8) static uint8_t buffer[512];
  RdmaContext* ctx = env_.context(nodes_[0]);
  MemoryRegion* mr = ctx->RegisterRegion(buffer, sizeof(buffer));
  auto p = env_.ResolveRemote(mr->RefAt(0), 512);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, buffer);
}

TEST(DmaMemoryTest, CopyPublishesAllBytes) {
  alignas(8) uint8_t src[64];
  alignas(8) uint8_t dst[64] = {};
  for (int i = 0; i < 64; ++i) src[i] = static_cast<uint8_t>(i + 1);
  DmaCopy(dst, src, 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(dst[i], src[i]);
  }
}

TEST(DmaMemoryTest, FlagRoundTrip) {
  uint8_t flag = 0;
  StoreDmaFlag(&flag, 3);
  EXPECT_EQ(LoadDmaFlag(&flag), 3);
}

TEST(DmaMemoryTest, SingleByteCopy) {
  uint8_t src = 0xAB, dst = 0;
  DmaCopy(&dst, &src, 1);
  EXPECT_EQ(dst, 0xAB);
}

}  // namespace
}  // namespace dfi::rdma
