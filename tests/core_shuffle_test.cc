#include "core/shuffle_flow.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include "core/dfi_runtime.h"

namespace dfi {
namespace {

Schema KvSchema() {
  return Schema{{"key", DataType::kUInt64}, {"value", DataType::kUInt64}};
}

struct Kv {
  uint64_t key;
  uint64_t value;
};
static_assert(sizeof(Kv) == 16);

class ShuffleTest : public ::testing::Test {
 protected:
  ShuffleTest() : dfi_(&fabric_) { fabric_.AddNodes(4); }

  net::Fabric fabric_;
  DfiRuntime dfi_;
};

TEST_F(ShuffleTest, InitValidation) {
  ShuffleFlowSpec spec;
  spec.name = "";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  EXPECT_EQ(dfi_.InitShuffleFlow(spec).code(), StatusCode::kInvalidArgument);

  spec.name = "ok";
  spec.shuffle_key_index = 7;
  EXPECT_EQ(dfi_.InitShuffleFlow(spec).code(), StatusCode::kInvalidArgument);

  spec.shuffle_key_index = 0;
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  EXPECT_EQ(dfi_.InitShuffleFlow(spec).code(), StatusCode::kAlreadyExists);
}

TEST_F(ShuffleTest, EndpointIndexValidation) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  EXPECT_EQ(dfi_.CreateShuffleSource("f", 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(dfi_.CreateShuffleTarget("f", 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(dfi_.CreateShuffleSource("missing", 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ShuffleTest, OneToOneRoundTrip) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());

  auto source = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE(source.ok());
  auto target = dfi_.CreateShuffleTarget("f", 0);
  ASSERT_TRUE(target.ok());

  constexpr uint64_t kTuples = 10000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTuples; ++i) {
      Kv kv{i, i * 2};
      ASSERT_TRUE((*source)->Push(&kv).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });

  uint64_t count = 0, key_sum = 0;
  TupleView tuple;
  while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
    EXPECT_EQ(tuple.Get<uint64_t>(1), tuple.Get<uint64_t>(0) * 2);
    key_sum += tuple.Get<uint64_t>(0);
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kTuples);
  EXPECT_EQ(key_sum, kTuples * (kTuples - 1) / 2);
  EXPECT_GT((*target)->clock().now(), 0);
}

TEST_F(ShuffleTest, FlowEndIsSticky) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  auto target = dfi_.CreateShuffleTarget("f", 0);
  ASSERT_TRUE((*source)->Close().ok());
  TupleView tuple;
  EXPECT_EQ((*target)->Consume(&tuple), ConsumeResult::kFlowEnd);
  EXPECT_EQ((*target)->Consume(&tuple), ConsumeResult::kFlowEnd);
}

TEST_F(ShuffleTest, PushAfterCloseFails) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE((*source)->Close().ok());
  Kv kv{1, 1};
  EXPECT_EQ((*source)->Push(&kv).code(), StatusCode::kFailedPrecondition);
  // A target must still see a clean flow end.
  auto target = dfi_.CreateShuffleTarget("f", 0);
  TupleView tuple;
  EXPECT_EQ((*target)->Consume(&tuple), ConsumeResult::kFlowEnd);
}

TEST_F(ShuffleTest, KeyRoutingPartitionsDisjointly) {
  // N:M shuffle: every key lands at exactly the target its hash selects,
  // and nothing is lost or duplicated.
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0", "10.0.0.2|0"});
  spec.targets = DfiNodes({"10.0.0.3|0", "10.0.0.4|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());

  constexpr uint64_t kPerSource = 5000;
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateShuffleSource("f", s);
      ASSERT_TRUE(source.ok());
      for (uint64_t i = 0; i < kPerSource; ++i) {
        Kv kv{s * kPerSource + i, i};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }

  std::vector<std::vector<uint64_t>> received(2);
  for (uint32_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi_.CreateShuffleTarget("f", t);
      ASSERT_TRUE(target.ok());
      TupleView tuple;
      while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        const uint64_t key = tuple.Get<uint64_t>(0);
        EXPECT_EQ(HashU64(key) % 2, t) << "key routed to wrong target";
        received[t].push_back(key);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<uint64_t> all;
  for (auto& r : received) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 2 * kPerSource);
  for (uint64_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i);
  }
}

TEST_F(ShuffleTest, CustomRoutingFunction) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0", "10.0.0.3|0"});
  spec.schema = KvSchema();
  // Range partitioning: keys < 100 left, rest right.
  spec.routing = [](TupleView t, uint32_t) -> uint32_t {
    return t.Get<uint64_t>(0) < 100 ? 0 : 1;
  };
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());

  auto source = dfi_.CreateShuffleSource("f", 0);
  std::thread producer([&] {
    for (uint64_t i = 0; i < 200; ++i) {
      Kv kv{i, 0};
      ASSERT_TRUE((*source)->Push(&kv).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });

  auto t0 = dfi_.CreateShuffleTarget("f", 0);
  auto t1 = dfi_.CreateShuffleTarget("f", 1);
  std::vector<uint64_t> left, right;
  std::thread consumer0([&] {
    TupleView tuple;
    while ((*t0)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
      left.push_back(tuple.Get<uint64_t>(0));
    }
  });
  TupleView tuple;
  while ((*t1)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
    right.push_back(tuple.Get<uint64_t>(0));
  }
  producer.join();
  consumer0.join();
  EXPECT_EQ(left.size(), 100u);
  EXPECT_EQ(right.size(), 100u);
  for (uint64_t k : left) EXPECT_LT(k, 100u);
  for (uint64_t k : right) EXPECT_GE(k, 100u);
}

TEST_F(ShuffleTest, PushToExplicitTarget) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0", "10.0.0.3|0"});
  spec.schema = KvSchema();
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  Kv kv{42, 7};
  EXPECT_EQ((*source)->PushTo(&kv, 5).code(), StatusCode::kOutOfRange);
  std::thread producer([&] {
    Kv t{42, 7};
    ASSERT_TRUE((*source)->PushTo(&t, 1).ok());
    ASSERT_TRUE((*source)->Close().ok());
  });
  auto t0 = dfi_.CreateShuffleTarget("f", 0);
  auto t1 = dfi_.CreateShuffleTarget("f", 1);
  TupleView tuple;
  int t1_count = 0;
  while ((*t1)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
    EXPECT_EQ(tuple.Get<uint64_t>(0), 42u);
    ++t1_count;
  }
  EXPECT_EQ(t1_count, 1);
  EXPECT_EQ((*t0)->Consume(&tuple), ConsumeResult::kFlowEnd);
  producer.join();
}

TEST_F(ShuffleTest, LatencyOptimizedRoundTrip) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  spec.options.optimization = FlowOptimization::kLatency;
  spec.options.segments_per_ring = 8;
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());

  auto source = dfi_.CreateShuffleSource("f", 0);
  auto target = dfi_.CreateShuffleTarget("f", 0);
  constexpr uint64_t kTuples = 2000;  // > credits, forces credit refreshes
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTuples; ++i) {
      Kv kv{i, i + 1};
      ASSERT_TRUE((*source)->Push(&kv).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });
  uint64_t count = 0;
  uint64_t expected = 0;
  TupleView tuple;
  while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
    // Latency mode over one channel preserves order.
    EXPECT_EQ(tuple.Get<uint64_t>(0), expected);
    ++expected;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kTuples);
}

TEST_F(ShuffleTest, SegmentConsumeIsZeroCopyBatched) {
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  spec.options.segment_size = 256;  // 16 tuples per segment
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  auto target = dfi_.CreateShuffleTarget("f", 0);
  std::thread producer([&] {
    for (uint64_t i = 0; i < 64; ++i) {
      Kv kv{i, i};
      ASSERT_TRUE((*source)->Push(&kv).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });
  SegmentView view;
  uint64_t tuples = 0;
  int segments = 0;
  while ((*target)->ConsumeSegment(&view) != ConsumeResult::kFlowEnd) {
    EXPECT_EQ(view.bytes % 16, 0u);
    tuples += view.bytes / 16;
    ++segments;
  }
  producer.join();
  EXPECT_EQ(tuples, 64u);
  EXPECT_EQ(segments, 4) << "16 tuples per 256 B segment";
}

TEST_F(ShuffleTest, SmallRingStillCompletes) {
  // Ring pressure: tiny ring, many tuples; sources must block and resume.
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = KvSchema();
  spec.options.segments_per_ring = 2;
  spec.options.segment_size = 64;
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  auto target = dfi_.CreateShuffleTarget("f", 0);
  constexpr uint64_t kTuples = 5000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kTuples; ++i) {
      Kv kv{i, i};
      ASSERT_TRUE((*source)->Push(&kv).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });
  uint64_t count = 0;
  TupleView tuple;
  while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) ++count;
  producer.join();
  EXPECT_EQ(count, kTuples);
}

TEST_F(ShuffleTest, VirtualTimeReflectsLinkBandwidth) {
  // Moving 64 MiB over one 100 Gbps link takes >= 5.37 ms of virtual time.
  // 1 KiB tuples keep a single source thread from being CPU-bound, so the
  // completion time must be within a factor ~1.5 of wire speed.
  ShuffleFlowSpec spec;
  spec.name = "f";
  spec.sources = DfiNodes({"10.0.0.1|0"});
  spec.targets = DfiNodes({"10.0.0.2|0"});
  spec.schema = Schema{{"key", DataType::kUInt64},
                       {"pad", DataType::kChar, 1016}};
  ASSERT_TRUE(dfi_.InitShuffleFlow(spec).ok());
  auto source = dfi_.CreateShuffleSource("f", 0);
  auto target = dfi_.CreateShuffleTarget("f", 0);
  const uint64_t kTuples = 64 * kMiB / 1024;
  std::thread producer([&] {
    std::vector<uint8_t> buf(1024, 0);
    for (uint64_t i = 0; i < kTuples; ++i) {
      TupleWriter(buf.data(), &(*source)->schema()).Set<uint64_t>(0, i);
      ASSERT_TRUE((*source)->Push(buf.data()).ok());
    }
    ASSERT_TRUE((*source)->Close().ok());
  });
  TupleView tuple;
  uint64_t count = 0;
  while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) ++count;
  producer.join();
  ASSERT_EQ(count, kTuples);
  const double min_ns = 64.0 * kMiB / fabric_.config().LinkBytesPerNs();
  EXPECT_GE((*target)->clock().now(), static_cast<SimTime>(min_ns));
  // A single source thread pays ~94 ns of CPU per 1 KiB tuple (cost
  // model), so the run is mildly CPU-bound: allow up to 2x wire time.
  EXPECT_LE((*target)->clock().now(), static_cast<SimTime>(2.0 * min_ns));
}

}  // namespace
}  // namespace dfi
