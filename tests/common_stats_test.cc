#include "common/stats.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(LatencyRecorderTest, QuantilesOfKnownDistribution) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(i);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Median(), 50, 1);
  EXPECT_NEAR(rec.Quantile(0.95), 95, 1);
  EXPECT_DOUBLE_EQ(rec.Mean(), 50.5);
}

TEST(LatencyRecorderTest, RecordAfterQuantileResorts) {
  LatencyRecorder rec;
  rec.Record(10);
  rec.Record(20);
  EXPECT_EQ(rec.Median(), 15);
  rec.Record(100);
  EXPECT_EQ(rec.Max(), 100);
}

TEST(LatencyRecorderTest, Merge) {
  LatencyRecorder a, b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Max(), 3);
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder rec;
  rec.Record(42);
  EXPECT_EQ(rec.Quantile(0.0), 42);
  EXPECT_EQ(rec.Quantile(1.0), 42);
  EXPECT_EQ(rec.Median(), 42);
}

TEST(RunningStatTest, Accumulates) {
  RunningStat s;
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStatTest, EmptyMeanIsZero) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace dfi
