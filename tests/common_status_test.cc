#include "common/status.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("flow 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "flow 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: flow 'x'");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::PeerFailed("").code(), StatusCode::kPeerFailed);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
}

TEST(StatusTest, FailureCodesStringify) {
  EXPECT_EQ(Status::DeadlineExceeded("remote ring full").ToString(),
            "DeadlineExceeded: remote ring full");
  EXPECT_EQ(Status::PeerFailed("node 2 crashed").ToString(),
            "PeerFailed: node 2 crashed");
  EXPECT_EQ(Status::Aborted("flow torn down").ToString(),
            "Aborted: flow torn down");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

Status Fails() { return Status::OutOfRange("nope"); }
Status Propagates() {
  DFI_RETURN_IF_ERROR(Fails());
  return Status::OK();
}
StatusOr<int> Gives(int x) { return x; }
Status UsesAssign(int* out) {
  DFI_ASSIGN_OR_RETURN(*out, Gives(5));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_EQ(Propagates().code(), StatusCode::kOutOfRange);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  ASSERT_TRUE(UsesAssign(&out).ok());
  EXPECT_EQ(out, 5);
}

}  // namespace
}  // namespace dfi
