// Property tests for the batched zero-copy push path: for any topology,
// optimization mode, segment geometry, tuple size and routing strategy,
// ShuffleSource::PushBatch must deliver exactly the same multiset of
// tuples to each target as tuple-at-a-time Push — and, for 1:1 topologies,
// the same order. Batch sizes cycle through empty, tiny and
// segment-straddling runs to exercise every reservation boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "core/dfi_runtime.h"

namespace dfi {
namespace {

enum class Routing : uint8_t { kDefaultHash, kRadix, kGeneric };

struct GridParam {
  FlowOptimization opt;
  uint32_t segment_size;
  uint32_t segments_per_ring;
  uint32_t num_sources;
  uint32_t num_targets;
  uint32_t tuple_payload;  // extra kChar bytes beyond the 8-byte key
  uint64_t tuples_per_source;
  Routing routing;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  std::string s = p.opt == FlowOptimization::kBandwidth ? "bw" : "lat";
  s += "_seg" + std::to_string(p.segment_size);
  s += "_ring" + std::to_string(p.segments_per_ring);
  s += "_n" + std::to_string(p.num_sources);
  s += "_m" + std::to_string(p.num_targets);
  s += "_t" + std::to_string(8 + p.tuple_payload);
  s += p.routing == Routing::kDefaultHash
           ? "_hash"
           : (p.routing == Routing::kRadix ? "_radix" : "_generic");
  return s;
}

/// Batch sizes cycled through by the batched run: empty batches, tiny
/// batches, and batches that straddle several segment boundaries.
constexpr size_t kBatchCycle[] = {0, 1, 7, 64, 0, 1000, 3};

/// The deterministic key of tuple `i` of source `s` (spread so key-hash,
/// radix and modulo routing all produce non-trivial partitions).
uint64_t KeyOf(uint32_t s, uint64_t i) {
  return (static_cast<uint64_t>(s) << 40) + i * 0x9e3779b97f4a7c15ull % 997;
}

void ApplyRouting(ShuffleFlowSpec* spec, Routing routing,
                  uint32_t num_targets) {
  switch (routing) {
    case Routing::kDefaultHash:
      break;  // flow default: KeyHashRouting(shuffle_key_index)
    case Routing::kRadix: {
      uint32_t bits = 0;
      while ((1u << bits) < num_targets) ++bits;
      ASSERT_EQ(1u << bits, num_targets)
          << "radix cases need a power-of-two target count";
      spec->routing = RadixRouting(0, /*shift=*/0, bits);
      break;
    }
    case Routing::kGeneric:
      spec->routing = [](TupleView t, uint32_t m) {
        return static_cast<uint32_t>(t.Get<uint64_t>(0) % m);
      };
      break;
  }
}

/// Runs one shuffle flow and returns, per target, the keys in arrival
/// order. `batched` selects PushBatch (with the kBatchCycle pattern)
/// versus tuple-at-a-time Push over identical input data.
std::vector<std::vector<uint64_t>> RunFlow(const GridParam& p,
                                           bool batched) {
  net::Fabric fabric;
  fabric.AddNodes(std::max(p.num_sources, p.num_targets));
  DfiRuntime dfi(&fabric);

  std::vector<std::string> addrs;
  for (size_t i = 0; i < fabric.node_count(); ++i) {
    addrs.push_back(fabric.node(static_cast<net::NodeId>(i)).address());
  }

  ShuffleFlowSpec spec;
  spec.name = "batch_prop";
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    spec.sources.Append(Endpoint{addrs[s % addrs.size()], s});
  }
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    spec.targets.Append(Endpoint{addrs[t % addrs.size()], t});
  }
  std::vector<Field> fields{{"key", DataType::kUInt64, 0}};
  if (p.tuple_payload > 0) {
    fields.push_back({"pad", DataType::kChar, p.tuple_payload});
  }
  auto schema = Schema::Create(fields);
  EXPECT_TRUE(schema.ok());
  spec.schema = *schema;
  ApplyRouting(&spec, p.routing, p.num_targets);
  spec.options.optimization = p.opt;
  spec.options.segment_size = p.segment_size;
  spec.options.segments_per_ring = p.segments_per_ring;
  EXPECT_TRUE(dfi.InitShuffleFlow(std::move(spec)).ok());

  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi.CreateShuffleSource("batch_prop", s);
      ASSERT_TRUE(source.ok());
      const size_t tuple_size = (*source)->schema().tuple_size();
      // Identical input data for both runs: a packed buffer of all of this
      // source's tuples.
      std::vector<uint8_t> buf(p.tuples_per_source * tuple_size, 0);
      for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
        TupleWriter(buf.data() + i * tuple_size, &(*source)->schema())
            .Set<uint64_t>(0, KeyOf(s, i));
      }
      if (batched) {
        size_t pos = 0, cycle = 0;
        while (pos < p.tuples_per_source) {
          const size_t n =
              std::min<size_t>(kBatchCycle[cycle % std::size(kBatchCycle)],
                               p.tuples_per_source - pos);
          ++cycle;
          ASSERT_TRUE(
              (*source)->PushBatch(buf.data() + pos * tuple_size, n).ok());
          pos += n;
        }
      } else {
        for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
          ASSERT_TRUE((*source)->Push(buf.data() + i * tuple_size).ok());
        }
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }

  std::vector<std::vector<uint64_t>> received(p.num_targets);
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi.CreateShuffleTarget("batch_prop", t);
      ASSERT_TRUE(target.ok());
      TupleView tuple;
      while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        received[t].push_back(tuple.Get<uint64_t>(0));
      }
    });
  }
  for (auto& th : threads) th.join();
  return received;
}

class BatchPushPropertyTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(BatchPushPropertyTest, BatchedEqualsTupleAtATime) {
  const GridParam& p = GetParam();
  auto scalar = RunFlow(p, /*batched=*/false);
  auto batch = RunFlow(p, /*batched=*/true);
  ASSERT_EQ(scalar.size(), batch.size());
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    if (p.num_sources == 1 && p.num_targets == 1) {
      // 1:1: a single channel preserves push order exactly.
      ASSERT_EQ(scalar[t], batch[t]) << "order mismatch at target " << t;
      continue;
    }
    // Multi-source targets interleave channels nondeterministically; the
    // per-target multiset must still be identical.
    std::sort(scalar[t].begin(), scalar[t].end());
    std::sort(batch[t].begin(), batch[t].end());
    ASSERT_EQ(scalar[t], batch[t]) << "multiset mismatch at target " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, BatchPushPropertyTest,
    ::testing::Values(
        GridParam{FlowOptimization::kBandwidth, 256, 4, 1, 1, 0, 3000,
                  Routing::kDefaultHash},  // 1:1, order-checked
        GridParam{FlowOptimization::kBandwidth, 512, 8, 3, 1, 0, 2000,
                  Routing::kDefaultHash},  // N:1
        GridParam{FlowOptimization::kBandwidth, 512, 8, 1, 4, 0, 3000,
                  Routing::kDefaultHash},  // 1:N
        GridParam{FlowOptimization::kBandwidth, 512, 8, 3, 4, 0, 1500,
                  Routing::kDefaultHash},  // N:M
        GridParam{FlowOptimization::kBandwidth, 512, 8, 4, 2, 24, 1000,
                  Routing::kDefaultHash}),  // N:M, 32-byte tuples
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    SegmentBoundaries, BatchPushPropertyTest,
    ::testing::Values(
        // Tiny segments: every nontrivial batch straddles many segments.
        GridParam{FlowOptimization::kBandwidth, 64, 4, 1, 1, 0, 4000,
                  Routing::kDefaultHash},
        // Tuple size that does not divide the segment size.
        GridParam{FlowOptimization::kBandwidth, 256, 4, 2, 2, 16, 1500,
                  Routing::kDefaultHash},
        // Minimal ring (hard back-pressure under batched bursts).
        GridParam{FlowOptimization::kBandwidth, 128, 2, 2, 2, 0, 3000,
                  Routing::kDefaultHash}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    LatencyMode, BatchPushPropertyTest,
    ::testing::Values(
        GridParam{FlowOptimization::kLatency, 0, 8, 1, 1, 0, 1200,
                  Routing::kDefaultHash},
        GridParam{FlowOptimization::kLatency, 0, 16, 2, 2, 0, 800,
                  Routing::kDefaultHash},
        GridParam{FlowOptimization::kLatency, 0, 8, 1, 1, 40, 600,
                  Routing::kDefaultHash}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    RoutingKinds, BatchPushPropertyTest,
    ::testing::Values(
        // Radix partitioner, devirtualized batch path.
        GridParam{FlowOptimization::kBandwidth, 256, 8, 2, 4, 0, 2000,
                  Routing::kRadix},
        GridParam{FlowOptimization::kBandwidth, 256, 8, 1, 2, 16, 1500,
                  Routing::kRadix},
        // Custom RoutingFn, per-tuple fallback inside PushBatch.
        GridParam{FlowOptimization::kBandwidth, 256, 8, 2, 3, 0, 2000,
                  Routing::kGeneric},
        GridParam{FlowOptimization::kLatency, 0, 8, 2, 2, 0, 500,
                  Routing::kGeneric}),
    ParamName);

// The batched path must charge exactly the per-tuple virtual cost of the
// tuple-at-a-time path (precomputed once, charged per batch): with no
// back-pressure coupling, the source's final virtual clock is identical.
TEST(BatchPushClock, SimulatedTimeMatchesTupleAtATime) {
  for (bool batched : {false, true}) {
    net::Fabric fabric;
    fabric.AddNodes(2);
    DfiRuntime dfi(&fabric);
    ShuffleFlowSpec spec;
    spec.name = "clock";
    spec.sources.Append(Endpoint{fabric.node(0).address(), 0});
    spec.targets.Append(Endpoint{fabric.node(1).address(), 0});
    spec.schema = Schema{{"key", DataType::kUInt64}};
    spec.options.segment_size = 256;
    spec.options.segments_per_ring = 32;
    ASSERT_TRUE(dfi.InitShuffleFlow(std::move(spec)).ok());

    // 500 8-byte tuples fit the 32-segment ring without blocking, so the
    // source clock is untouched by target-side timing.
    auto source = dfi.CreateShuffleSource("clock", 0);
    ASSERT_TRUE(source.ok());
    std::vector<uint8_t> buf(500 * 8, 0);
    for (uint64_t i = 0; i < 500; ++i) {
      TupleWriter(buf.data() + i * 8, &(*source)->schema())
          .Set<uint64_t>(0, i);
    }
    if (batched) {
      ASSERT_TRUE((*source)->PushBatch(buf.data(), 500).ok());
    } else {
      for (uint64_t i = 0; i < 500; ++i) {
        ASSERT_TRUE((*source)->Push(buf.data() + i * 8).ok());
      }
    }
    static SimTime scalar_time = 0;
    if (!batched) {
      scalar_time = (*source)->clock().now();
    } else {
      EXPECT_EQ((*source)->clock().now(), scalar_time)
          << "batched push must charge the same virtual time";
    }
    ASSERT_TRUE((*source)->Close().ok());
    auto target = dfi.CreateShuffleTarget("clock", 0);
    ASSERT_TRUE(target.ok());
    TupleView tuple;
    uint64_t n = 0;
    while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) ++n;
    ASSERT_EQ(n, 500u);
  }
}

}  // namespace
}  // namespace dfi
