// Property sweep over mini-MPI point-to-point: for any message size
// (crossing the eager/rendezvous threshold), rank count and message count,
// transfers must deliver bytes exactly and virtual completion times must
// respect the link capacity lower bound.

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "mpi/mpi_env.h"

namespace dfi::mpi {
namespace {

struct P2pParam {
  size_t message_bytes;
  int messages;
};

std::string ParamName(const ::testing::TestParamInfo<P2pParam>& info) {
  return "b" + std::to_string(info.param.message_bytes) + "_n" +
         std::to_string(info.param.messages);
}

class MpiP2pProperty : public ::testing::TestWithParam<P2pParam> {};

TEST_P(MpiP2pProperty, ExactDeliveryAndLinkBound) {
  const P2pParam& p = GetParam();
  net::Fabric fabric;
  auto nodes = fabric.AddNodes(2);
  MpiEnv env(&fabric, nodes);

  std::vector<uint8_t> payload(p.message_bytes);
  std::iota(payload.begin(), payload.end(), 1);

  VirtualClock recv_clock;
  std::thread sender([&] {
    VirtualClock clock;
    for (int i = 0; i < p.messages; ++i) {
      ASSERT_TRUE(
          env.Send(0, 1, 3, payload.data(), p.message_bytes, &clock).ok());
    }
  });
  std::vector<uint8_t> out(p.message_bytes);
  for (int i = 0; i < p.messages; ++i) {
    out.assign(p.message_bytes, 0);
    ASSERT_TRUE(
        env.Recv(1, 0, 3, out.data(), p.message_bytes, &recv_clock).ok());
    ASSERT_EQ(out, payload) << "message " << i;
  }
  sender.join();

  // Completion cannot beat the wire: total bytes at link speed.
  const double min_ns = static_cast<double>(p.message_bytes) * p.messages /
                        fabric.config().LinkBytesPerNs();
  EXPECT_GE(recv_clock.now(), static_cast<SimTime>(min_ns));
}

INSTANTIATE_TEST_SUITE_P(
    EagerAndRendezvous, MpiP2pProperty,
    ::testing::Values(P2pParam{1, 50},          // tiny eager
                      P2pParam{64, 200},        // typical eager
                      P2pParam{8192, 50},       // at the eager threshold
                      P2pParam{8193, 50},       // first rendezvous size
                      P2pParam{262144, 20},     // bulk rendezvous
                      P2pParam{1 << 20, 5}),    // 1 MiB rendezvous
    ParamName);

TEST(MpiCollectiveProperty, AlltoallConservesBytesAcrossRankCounts) {
  for (int ranks : {2, 3, 5, 8}) {
    net::Fabric fabric;
    auto nodes = fabric.AddNodes(ranks);
    MpiEnv env(&fabric, nodes);
    constexpr size_t kBytes = 512;
    std::vector<std::vector<uint8_t>> recv(
        ranks, std::vector<uint8_t>(ranks * kBytes));
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([&, r] {
        std::vector<uint8_t> send(ranks * kBytes);
        for (int q = 0; q < ranks; ++q) {
          std::fill(send.begin() + q * kBytes,
                    send.begin() + (q + 1) * kBytes,
                    static_cast<uint8_t>(r * 16 + q));
        }
        VirtualClock clock;
        ASSERT_TRUE(
            env.Alltoall(r, send.data(), recv[r].data(), kBytes, &clock)
                .ok());
      });
    }
    for (auto& t : threads) t.join();
    for (int r = 0; r < ranks; ++r) {
      for (int q = 0; q < ranks; ++q) {
        for (size_t b = 0; b < kBytes; ++b) {
          ASSERT_EQ(recv[r][q * kBytes + b], q * 16 + r)
              << "ranks=" << ranks << " r=" << r << " q=" << q;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dfi::mpi
