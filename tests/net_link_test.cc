#include "net/link.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dfi::net {
namespace {

TEST(LinkSchedulerTest, SingleTransferTiming) {
  LinkScheduler link("l", 10.0);  // 10 B/ns
  TransferWindow w = link.Reserve(100, 1000);
  EXPECT_EQ(w.start, 100);
  EXPECT_EQ(w.end, 200);  // 1000 B / 10 B/ns
}

TEST(LinkSchedulerTest, BackToBackSerializes) {
  LinkScheduler link("l", 1.0);
  TransferWindow a = link.Reserve(0, 100);
  TransferWindow b = link.Reserve(0, 100);
  EXPECT_EQ(a.end, 100);
  EXPECT_EQ(b.start, 100);
  EXPECT_EQ(b.end, 200);
}

TEST(LinkSchedulerTest, IdleGapPreserved) {
  LinkScheduler link("l", 1.0);
  link.Reserve(0, 100);
  TransferWindow b = link.Reserve(500, 100);
  EXPECT_EQ(b.start, 500);
  EXPECT_EQ(b.end, 600);
  EXPECT_EQ(link.busy_time(), 200);  // only occupied time counts
  EXPECT_EQ(link.busy_until(), 600);
}

TEST(LinkSchedulerTest, ConservationOfBytes) {
  LinkScheduler link("l", 2.0);
  uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    link.Reserve(0, 64 + i);
    total += 64 + i;
  }
  EXPECT_EQ(link.total_bytes(), total);
}

TEST(LinkSchedulerTest, SaturatedLinkRateMatchesCapacity) {
  // A saturated link's throughput must equal its configured rate.
  LinkScheduler link("l", 12.5);  // 100 Gbps
  const uint64_t kSeg = 8192;
  const int kCount = 1000;
  SimTime end = 0;
  for (int i = 0; i < kCount; ++i) {
    end = link.Reserve(0, kSeg).end;
  }
  const double rate = static_cast<double>(kSeg) * kCount / end;  // B/ns
  EXPECT_NEAR(rate, 12.5, 0.1);
}

TEST(LinkSchedulerTest, ConcurrentReservationsDoNotOverlap) {
  LinkScheduler link("l", 1.0);
  std::vector<std::thread> threads;
  std::vector<TransferWindow> windows(64);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        windows[t * 8 + i] = link.Reserve(0, 10);
      }
    });
  }
  for (auto& th : threads) th.join();
  // All 64 windows are 10 ns long and disjoint -> busy time 640.
  EXPECT_EQ(link.busy_time(), 640);
  EXPECT_EQ(link.busy_until(), 640);
  for (const auto& w : windows) {
    EXPECT_EQ(w.end - w.start, 10);
  }
}

TEST(LinkSchedulerTest, ZeroByteReserveIsInstant) {
  LinkScheduler link("l", 1.0);
  TransferWindow w = link.Reserve(50, 0);
  EXPECT_EQ(w.start, w.end);
}

}  // namespace
}  // namespace dfi::net
