// Determinism of the parallel emulation engine (tentpole acceptance): the
// same seeded workload must produce identical results at every worker-pool
// size, and identical to the plain-thread execution. Task interleavings DO
// vary with the pool size — what must not vary is anything the emulation
// reports: per-channel FIFO delivery sequences, order-insensitive content
// checksums, completion counts, and the fault plan's event trace.

#include <array>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/consensus/consensus.h"
#include "apps/pipeline/streaming_pipeline.h"
#include "bench_util/workload.h"
#include "common/exec/engine.h"
#include "core/dfi.h"

namespace dfi {
namespace {

constexpr uint32_t kSources = 4;
constexpr uint32_t kTargets = 4;
constexpr uint64_t kTuplesPerSource = 4000;

/// Everything the shuffle workload externally produces. Per-channel
/// sequence hashes witness FIFO delivery order (deterministic by
/// construction); target sums witness content independent of the
/// cross-channel interleave (which legitimately varies with scheduling).
struct ShuffleTrace {
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> channel_hash;
  std::array<uint64_t, kTargets> target_tuples{};
  uint64_t total_tuples = 0;

  bool operator==(const ShuffleTrace& o) const {
    return channel_hash == o.channel_hash &&
           target_tuples == o.target_tuples &&
           total_tuples == o.total_tuples;
  }
};

uint64_t HashStep(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// The workload body: 4 sources push seeded key streams through a hashed
/// shuffle, 4 targets drain and fingerprint what they see. Runs the actors
/// on the ambient engine when called from inside one, on OS threads
/// otherwise (ActorGroup picks).
ShuffleTrace ShuffleWorkload(uint64_t seed) {
  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(kSources + kTargets)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "det.shuffle";
  for (uint32_t s = 0; s < kSources; ++s) {
    spec.sources.Append(Endpoint{addrs[s], 0});
  }
  for (uint32_t t = 0; t < kTargets; ++t) {
    spec.targets.Append(Endpoint{addrs[kSources + t], 0});
  }
  spec.schema = Schema{{"key", DataType::kUInt64}};
  spec.options.segments_per_ring = 8;  // shallow rings: handoff-heavy
  spec.routing = [](TupleView t, uint32_t m) {
    return static_cast<uint32_t>(t.Get<uint64_t>(0) % m);
  };
  DFI_CHECK(dfi.InitShuffleFlow(std::move(spec)).ok());

  ShuffleTrace trace;
  std::array<std::map<uint32_t, uint64_t>, kTargets> per_channel;
  std::array<uint64_t, kTargets> counts{};

  exec::ActorGroup actors;
  for (uint32_t s = 0; s < kSources; ++s) {
    actors.Spawn(s, "src." + std::to_string(s), [&dfi, s, seed] {
      auto src = dfi.CreateShuffleSource("det.shuffle", s);
      DFI_CHECK(src.ok());
      uint64_t x = seed + s * 0x9e3779b97f4a7c15ull + 1;
      for (uint64_t i = 0; i < kTuplesPerSource; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        DFI_CHECK((*src)->Push(&x).ok());
      }
      DFI_CHECK((*src)->Close().ok());
    });
  }
  for (uint32_t t = 0; t < kTargets; ++t) {
    actors.Spawn(kSources + t, "tgt." + std::to_string(t),
                 [&dfi, &per_channel, &counts, t] {
      auto tgt = dfi.CreateShuffleTarget("det.shuffle", t);
      DFI_CHECK(tgt.ok());
      SegmentView seg;
      for (;;) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) break;
        DFI_CHECK(r == ConsumeResult::kOk);
        const uint64_t* keys = reinterpret_cast<const uint64_t*>(seg.payload);
        const uint64_t n = seg.bytes / sizeof(uint64_t);
        uint64_t& h = per_channel[t][seg.source_index];
        for (uint64_t i = 0; i < n; ++i) h = HashStep(h, keys[i]);
        counts[t] += n;
      }
    });
  }
  actors.Join();

  for (uint32_t t = 0; t < kTargets; ++t) {
    for (const auto& [src, h] : per_channel[t]) {
      trace.channel_hash[{src, t}] = h;
    }
    trace.target_tuples[t] = counts[t];
    trace.total_tuples += counts[t];
  }
  return trace;
}

ShuffleTrace ShuffleUnderEngine(uint32_t workers, uint64_t seed) {
  ShuffleTrace trace;
  exec::Engine engine({.workers = workers, .lookahead_ns = 1000});
  engine.Spawn(0, "root", [&] { trace = ShuffleWorkload(seed); });
  engine.Run();
  return trace;
}

TEST(EngineDeterminismTest, ShuffleTraceIdenticalAcrossPoolSizes) {
  const uint64_t seed = 42;
  const ShuffleTrace threads = ShuffleWorkload(seed);  // no engine
  EXPECT_EQ(threads.total_tuples, uint64_t{kSources} * kTuplesPerSource);
  for (uint32_t workers : {1u, 2u, 4u}) {
    const ShuffleTrace engine = ShuffleUnderEngine(workers, seed);
    EXPECT_TRUE(engine == threads)
        << "engine trace diverged at pool size " << workers;
  }
}

TEST(EngineDeterminismTest, ShuffleSeedChangesTrace) {
  // Sanity: the fingerprint actually depends on the data.
  EXPECT_FALSE(ShuffleUnderEngine(2, 1) == ShuffleUnderEngine(2, 2));
}

// ---------------------------------------------------------------------------
// Adaptive (skew-aware) shuffle determinism
// ---------------------------------------------------------------------------

/// Witness of an adaptive zipfian shuffle. Work stealing makes *which*
/// sink thread consumes a segment scheduling-dependent, so the trace
/// fingerprints channels, not sinks: adaptive routing is a pure function
/// of each source's own input prefix, hence the (source, target-column)
/// content — count and an order-insensitive key sum — must be
/// bit-identical at every pool size.
struct AdaptiveTrace {
  std::map<std::pair<uint32_t, uint32_t>, std::pair<uint64_t, uint64_t>>
      channels;  // (src, column) -> (tuples, key sum)
  uint64_t total_tuples = 0;

  bool operator==(const AdaptiveTrace& o) const {
    return channels == o.channels && total_tuples == o.total_tuples;
  }
};

AdaptiveTrace AdaptiveShuffleWorkload(uint64_t seed) {
  constexpr uint32_t kNodes = 2;
  constexpr uint32_t kThreadsPerNode = 4;
  constexpr uint32_t kAdTargets = kNodes * kThreadsPerNode;
  constexpr uint32_t kAdSources = 4;
  constexpr uint64_t kAdTuples = 4000;

  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(kNodes)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "det.adaptive";
  for (uint32_t s = 0; s < kAdSources; ++s) {
    spec.sources.Append(Endpoint{addrs[s % kNodes], s});
  }
  for (uint32_t t = 0; t < kAdTargets; ++t) {
    spec.targets.Append(Endpoint{addrs[t / kThreadsPerNode], t});
  }
  spec.schema = Schema{{"key", DataType::kUInt64}};
  spec.options.segments_per_ring = 8;
  spec.options.adaptive.enabled = true;
  spec.options.adaptive.hot_factor = 1.0;
  spec.options.adaptive.epoch_tuples = 512;
  DFI_CHECK(dfi.InitShuffleFlow(std::move(spec)).ok());

  std::array<AdaptiveTrace, kAdTargets> local;
  exec::ActorGroup actors;
  for (uint32_t s = 0; s < kAdSources; ++s) {
    actors.Spawn(s, "src." + std::to_string(s), [&dfi, s, seed] {
      auto rel =
          bench::GenerateZipfianRelation(kAdTuples, 1 << 16, 1.1, seed + s);
      auto src = dfi.CreateShuffleSource("det.adaptive", s);
      DFI_CHECK(src.ok());
      for (const auto& t : rel) {
        DFI_CHECK((*src)->Push(&t.key).ok());
      }
      DFI_CHECK((*src)->Close().ok());
    });
  }
  for (uint32_t t = 0; t < kAdTargets; ++t) {
    actors.Spawn(kAdSources + t, "tgt." + std::to_string(t),
                 [&dfi, &local, t] {
      auto tgt = dfi.CreateShuffleTarget("det.adaptive", t);
      DFI_CHECK(tgt.ok());
      SegmentView seg;
      for (;;) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) break;
        DFI_CHECK(r == ConsumeResult::kOk);
        const uint64_t* keys = reinterpret_cast<const uint64_t*>(seg.payload);
        const uint64_t n = seg.bytes / sizeof(uint64_t);
        auto& slot = local[t].channels[{seg.source_index, seg.target_column}];
        for (uint64_t i = 0; i < n; ++i) {
          slot.second += HashStep(0, keys[i]);  // commutative content sum
        }
        slot.first += n;
        local[t].total_tuples += n;
      }
    });
  }
  actors.Join();

  AdaptiveTrace trace;
  for (const auto& part : local) {
    for (const auto& [ch, v] : part.channels) {
      auto& slot = trace.channels[ch];
      slot.first += v.first;
      slot.second += v.second;
    }
    trace.total_tuples += part.total_tuples;
  }
  return trace;
}

TEST(EngineDeterminismTest, AdaptiveShuffleTraceIdenticalAcrossPoolSizes) {
  const uint64_t seed = 42;
  const AdaptiveTrace threads = AdaptiveShuffleWorkload(seed);
  EXPECT_EQ(threads.total_tuples, uint64_t{4} * 4000);
  for (uint32_t workers : {1u, 2u, 4u}) {
    AdaptiveTrace trace;
    exec::Engine engine({.workers = workers, .lookahead_ns = 1000});
    engine.Spawn(0, "root", [&] { trace = AdaptiveShuffleWorkload(seed); });
    engine.Run();
    EXPECT_TRUE(trace == threads)
        << "adaptive trace diverged at pool size " << workers;
  }
}

TEST(EngineDeterminismTest, AdaptiveShuffleSeedChangesTrace) {
  EXPECT_FALSE(AdaptiveShuffleWorkload(1) == AdaptiveShuffleWorkload(2));
}

/// Chaos consensus: scripted leader crash + failover. The run's witnesses —
/// completion count, resubmission count and the fault plan's canonical
/// event trace — must be bit-identical at every pool size.
struct ChaosTrace {
  uint64_t completed = 0;
  std::string fault_trace;

  bool operator==(const ChaosTrace& o) const {
    return completed == o.completed && fault_trace == o.fault_trace;
  }
};

ChaosTrace ChaosWorkload() {
  consensus::ChaosConfig chaos;
  chaos.base.requests_per_client = 60;
  chaos.base.seed = 7;
  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(chaos.base.num_replicas +
                                        chaos.base.num_client_nodes)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);
  auto r = consensus::RunMultiPaxosChaos(&dfi, addrs, chaos);
  DFI_CHECK(r.ok()) << r.status();
  ChaosTrace trace;
  trace.completed = r->completed;
  trace.fault_trace = r->fault_trace;
  return trace;
}

TEST(EngineDeterminismTest, ChaosConsensusIdenticalAcrossPoolSizes) {
  const ChaosTrace threads = ChaosWorkload();  // plain-thread reference
  for (uint32_t workers : {1u, 2u, 4u}) {
    ChaosTrace trace;
    exec::Engine engine({.workers = workers, .lookahead_ns = 1000});
    engine.Spawn(0, "root", [&] { trace = ChaosWorkload(); });
    engine.Run();
    EXPECT_TRUE(trace == threads)
        << "chaos trace diverged at pool size " << workers;
  }
}

// ---------------------------------------------------------------------------
// Multi-stage graph pipeline (ingest -> adaptive shuffle -> window ->
// combiner aggregate -> replicate -> subscribers)
// ---------------------------------------------------------------------------

/// The pipeline's witnesses: window assignment is a pure function of tuple
/// content and the combiner folds are commutative, so the full
/// group -> (COUNT, SUM) content map and the per-subscriber commutative
/// fingerprints must be identical at every pool size. Row *delivery order*
/// at the subscribers legitimately varies — the fingerprints are
/// order-insensitive by construction.
pipeline::PipelineResult PipelineWorkload(uint64_t seed) {
  pipeline::PipelineConfig cfg;
  cfg.num_nodes = 4;
  cfg.tuples_per_source = 2048;
  cfg.key_domain = 256;
  cfg.zipf_theta = 0.99;  // exercise the adaptive path, not just uniform
  cfg.seed = seed;
  net::Fabric fabric;
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric.AddNodes(cfg.num_nodes)) {
    addrs.push_back(fabric.node(id).address());
  }
  DfiRuntime dfi(&fabric);
  auto r = pipeline::RunStreamingPipeline(&dfi, addrs, cfg);
  DFI_CHECK(r.ok()) << r.status();
  return std::move(*r);
}

TEST(EngineDeterminismTest, PipelineContentIdenticalAcrossPoolSizes) {
  const uint64_t seed = 42;
  const pipeline::PipelineResult threads = PipelineWorkload(seed);
  EXPECT_EQ(threads.tuples_ingested, uint64_t{4} * 2 * 2048);
  EXPECT_FALSE(threads.windows.empty());
  for (uint32_t workers : {1u, 2u, 4u}) {
    pipeline::PipelineResult run;
    exec::Engine engine({.workers = workers, .lookahead_ns = 1000});
    engine.Spawn(0, "root", [&] { run = PipelineWorkload(seed); });
    engine.Run();
    EXPECT_EQ(run.windows, threads.windows)
        << "pipeline content diverged at pool size " << workers;
    EXPECT_EQ(run.fingerprints, threads.fingerprints)
        << "subscriber fingerprints diverged at pool size " << workers;
    EXPECT_EQ(run.rows_delivered, threads.rows_delivered);
  }
}

TEST(EngineDeterminismTest, PipelineSeedChangesContent) {
  EXPECT_NE(PipelineWorkload(1).windows, PipelineWorkload(2).windows);
}

}  // namespace
}  // namespace dfi
