// API-surface tests of DfiRuntime: flow lifecycle, type safety across flow
// kinds, registry integration and memory accounting.

#include "core/dfi_runtime.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/combiner_flow.h"
#include "core/replicate_flow.h"

namespace dfi {
namespace {

class DfiRuntimeTest : public ::testing::Test {
 protected:
  DfiRuntimeTest() : dfi_(&fabric_) { fabric_.AddNodes(4); }

  ShuffleFlowSpec ShuffleSpec(const std::string& name) {
    ShuffleFlowSpec spec;
    spec.name = name;
    spec.sources = DfiNodes({"10.0.0.1|0"});
    spec.targets = DfiNodes({"10.0.0.2|0"});
    spec.schema = Schema{{"k", DataType::kUInt64}};
    return spec;
  }

  ReplicateFlowSpec ReplicateSpec(const std::string& name) {
    ReplicateFlowSpec spec;
    spec.name = name;
    spec.sources = DfiNodes({"10.0.0.1|0"});
    spec.targets = DfiNodes({"10.0.0.2|0", "10.0.0.3|0"});
    spec.schema = Schema{{"k", DataType::kUInt64}};
    return spec;
  }

  net::Fabric fabric_;
  DfiRuntime dfi_;
};

TEST_F(DfiRuntimeTest, FlowTypeMismatchIsRejected) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("s")).ok());
  ASSERT_TRUE(dfi_.InitReplicateFlow(ReplicateSpec("r")).ok());
  // A shuffle flow is not a replicate flow and vice versa.
  EXPECT_EQ(dfi_.CreateReplicateSource("s", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfi_.CreateShuffleTarget("r", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dfi_.CreateCombinerSource("s", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DfiRuntimeTest, FlowNamesShareOneNamespace) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("x")).ok());
  EXPECT_EQ(dfi_.InitReplicateFlow(ReplicateSpec("x")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DfiRuntimeTest, RemoveFlowFreesTheName) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  ASSERT_TRUE(dfi_.RemoveFlow("f").ok());
  EXPECT_EQ(dfi_.RemoveFlow("f").code(), StatusCode::kNotFound);
  EXPECT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
}

TEST_F(DfiRuntimeTest, EndpointsOutliveRegistryRemoval) {
  // The registry drops its reference; live endpoints keep the flow state
  // alive via shared ownership.
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  auto src = dfi_.CreateShuffleSource("f", 0);
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(tgt.ok());
  ASSERT_TRUE(dfi_.RemoveFlow("f").ok());
  const uint64_t k = 7;
  std::thread producer([&] {
    EXPECT_TRUE((*src)->Push(&k).ok());
    EXPECT_TRUE((*src)->Close().ok());
  });
  TupleView tuple;
  EXPECT_EQ((*tgt)->Consume(&tuple), ConsumeResult::kOk);
  EXPECT_EQ(tuple.Get<uint64_t>(0), 7u);
  EXPECT_EQ((*tgt)->Consume(&tuple), ConsumeResult::kFlowEnd);
  producer.join();
}

TEST_F(DfiRuntimeTest, FlowInitAllocatesTargetRings) {
  const uint64_t before = dfi_.RegisteredBytesOnNode(1);
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  const uint64_t after = dfi_.RegisteredBytesOnNode(1);
  // 1 channel: 32 segments x (8 KiB + 24 B footer) + 64 B credit region.
  EXPECT_EQ(after - before, 32 * (8192 + 24) + 64u);
}

TEST_F(DfiRuntimeTest, SourceCreationAllocatesStagingOnSourceNode) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  const uint64_t before = dfi_.RegisteredBytesOnNode(0);
  auto src = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE(src.ok());
  EXPECT_GT(dfi_.RegisteredBytesOnNode(0), before);
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  std::thread producer([&] { EXPECT_TRUE((*src)->Close().ok()); });
  TupleView t;
  EXPECT_EQ((*tgt)->Consume(&t), ConsumeResult::kFlowEnd);
  producer.join();
}

TEST_F(DfiRuntimeTest, UnknownNodeAddressFailsInit) {
  ShuffleFlowSpec spec = ShuffleSpec("f");
  spec.sources = DfiNodes({"10.9.9.9|0"});
  EXPECT_DEATH({ (void)dfi_.InitShuffleFlow(std::move(spec)); },
               "node address");
}

TEST_F(DfiRuntimeTest, ReplicateFlowValidation) {
  ReplicateFlowSpec spec = ReplicateSpec("r");
  spec.name = "";
  EXPECT_EQ(dfi_.InitReplicateFlow(spec).code(),
            StatusCode::kInvalidArgument);
  spec.name = "r";
  spec.options.global_ordering = true;
  spec.options.use_multicast = false;
  EXPECT_EQ(dfi_.InitReplicateFlow(spec).code(),
            StatusCode::kUnimplemented);
}

TEST_F(DfiRuntimeTest, TupleSizeMismatchRejectedOnPush) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  auto src = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE(src.ok());
  // PushTo with an out-of-range target index.
  const uint64_t k = 1;
  EXPECT_EQ((*src)->PushTo(&k, 99).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE((*src)->Close().ok());
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  TupleView t;
  EXPECT_EQ((*tgt)->Consume(&t), ConsumeResult::kFlowEnd);
}

// Teardown handshake regressions: repeated or post-abort lifecycle calls on
// the same flow name must come back as clean Statuses, never crash.
TEST_F(DfiRuntimeTest, DoubleCloseIsIdempotent) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  auto src = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE(src.ok());
  const uint64_t k = 7;
  ASSERT_TRUE((*src)->Push(&k).ok());
  EXPECT_TRUE((*src)->Close().ok());
  EXPECT_TRUE((*src)->Close().ok());  // second close is a clean no-op
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  TupleView t;
  EXPECT_EQ((*tgt)->Consume(&t), ConsumeResult::kOk);
  EXPECT_EQ((*tgt)->Consume(&t), ConsumeResult::kFlowEnd);
}

TEST_F(DfiRuntimeTest, CloseAfterAbortFlowReturnsCleanStatus) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  auto src = dfi_.CreateShuffleSource("f", 0);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dfi_.AbortFlow("f", Status::Aborted("operator killed")).ok());
  // The channels are poisoned: Close must surface a Status, not crash or
  // pretend the end-of-flow marker was delivered.
  EXPECT_FALSE((*src)->Close().ok());
  auto tgt = dfi_.CreateShuffleTarget("f", 0);
  SegmentView view;
  EXPECT_EQ((*tgt)->ConsumeSegment(&view), ConsumeResult::kError);
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kAborted);
  // Aborting an already-aborted flow keeps the first cause.
  EXPECT_TRUE(
      dfi_.AbortFlow("f", Status::PeerFailed("late second cause")).ok());
  EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kAborted);
}

TEST_F(DfiRuntimeTest, DoubleRemoveReturnsNotFound) {
  ASSERT_TRUE(dfi_.InitShuffleFlow(ShuffleSpec("f")).ok());
  EXPECT_TRUE(dfi_.RemoveFlow("f").ok());
  EXPECT_EQ(dfi_.RemoveFlow("f").code(), StatusCode::kNotFound);
  EXPECT_EQ(dfi_.AbortFlow("f", Status::Aborted("gone")).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dfi
