// Property sweep over the globally-ordered replicate flow (the OUM
// primitive): for any loss rate, source/target count and optimization
// mode, every pushed tuple must be delivered to every target exactly once,
// and all targets must observe the identical global sequence.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/dfi_runtime.h"
#include "core/replicate_flow.h"

namespace dfi {
namespace {

struct OumParam {
  double loss;
  uint32_t num_sources;
  uint32_t num_targets;
  FlowOptimization opt;
  uint64_t tuples_per_source;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<OumParam>& info) {
  const OumParam& p = info.param;
  std::string s = "loss";
  s += std::to_string(static_cast<int>(p.loss * 100));
  s += "_n" + std::to_string(p.num_sources);
  s += "_m" + std::to_string(p.num_targets);
  s += p.opt == FlowOptimization::kBandwidth ? "_bw" : "_lat";
  s += "_seed" + std::to_string(p.seed);
  return s;
}

class OrderedReplicateProperty : public ::testing::TestWithParam<OumParam> {};

TEST_P(OrderedReplicateProperty, ExactlyOnceIdenticalOrder) {
  const OumParam& p = GetParam();
  net::SimConfig cfg;
  cfg.multicast_loss_probability = p.loss;
  cfg.loss_seed = p.seed;
  net::Fabric fabric(cfg);
  fabric.AddNodes(p.num_sources + p.num_targets);
  DfiRuntime dfi(&fabric);

  ReplicateFlowSpec spec;
  spec.name = "oum";
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    spec.sources.Append(
        Endpoint{fabric.node(p.num_targets + s).address(), 0});
  }
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    spec.targets.Append(Endpoint{fabric.node(t).address(), 0});
  }
  spec.schema = Schema{{"key", DataType::kUInt64}};
  spec.options.use_multicast = true;
  spec.options.global_ordering = true;
  spec.options.optimization = p.opt;
  ASSERT_TRUE(dfi.InitReplicateFlow(std::move(spec)).ok());

  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto src = dfi.CreateReplicateSource("oum", s);
      ASSERT_TRUE(src.ok());
      for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
        const uint64_t key = s * p.tuples_per_source + i;
        ASSERT_TRUE((*src)->Push(&key).ok());
      }
      ASSERT_TRUE((*src)->Close().ok());
    });
  }
  std::vector<std::vector<uint64_t>> observed(p.num_targets);
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi.CreateReplicateTarget("oum", t);
      ASSERT_TRUE(tgt.ok());
      TupleView tuple;
      while ((*tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        observed[t].push_back(tuple.Get<uint64_t>(0));
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t total = p.num_sources * p.tuples_per_source;
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    ASSERT_EQ(observed[t].size(), total) << "target " << t;
    EXPECT_EQ(observed[t], observed[0])
        << "target " << t << " diverged from target 0";
  }
  // Exactly once: the multiset of keys is the full range.
  std::vector<uint64_t> sorted = observed[0];
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(sorted[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoLoss, OrderedReplicateProperty,
    ::testing::Values(OumParam{0.0, 1, 2, FlowOptimization::kLatency, 400, 1},
                      OumParam{0.0, 2, 3, FlowOptimization::kLatency, 300, 2},
                      OumParam{0.0, 1, 4, FlowOptimization::kBandwidth, 2000,
                               3},
                      OumParam{0.0, 3, 2, FlowOptimization::kBandwidth, 1000,
                               4}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    WithLoss, OrderedReplicateProperty,
    ::testing::Values(
        OumParam{0.02, 1, 2, FlowOptimization::kLatency, 250, 11},
        OumParam{0.05, 2, 2, FlowOptimization::kLatency, 200, 12},
        OumParam{0.05, 1, 3, FlowOptimization::kBandwidth, 1500, 13},
        OumParam{0.10, 1, 2, FlowOptimization::kLatency, 150, 14},
        OumParam{0.05, 2, 2, FlowOptimization::kLatency, 200, 15}),
    ParamName);

}  // namespace
}  // namespace dfi
