#include "core/replicate_flow.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/dfi_runtime.h"

namespace dfi {
namespace {

struct Kv {
  uint64_t key;
  uint64_t value;
};

Schema KvSchema() {
  return Schema{{"key", DataType::kUInt64}, {"value", DataType::kUInt64}};
}

class ReplicateTest : public ::testing::Test {
 protected:
  explicit ReplicateTest(net::SimConfig cfg = net::SimConfig())
      : fabric_(cfg), dfi_(&fabric_) {
    fabric_.AddNodes(9);
  }

  ReplicateFlowSpec BaseSpec(uint32_t num_targets, bool multicast,
                             bool ordered) {
    ReplicateFlowSpec spec;
    spec.name = "rep";
    spec.sources = DfiNodes({"10.0.0.1|0"});
    for (uint32_t t = 0; t < num_targets; ++t) {
      spec.targets.Append(
          Endpoint{"10.0.0." + std::to_string(t + 2), 0});
    }
    spec.schema = KvSchema();
    spec.options.use_multicast = multicast;
    spec.options.global_ordering = ordered;
    return spec;
  }

  /// Pushes kTuples from source 0 and verifies every target received all
  /// of them (order checked when `expect_order`).
  void RunOneToN(uint32_t num_targets, uint64_t tuples, bool expect_order) {
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      auto source = dfi_.CreateReplicateSource("rep", 0);
      ASSERT_TRUE(source.ok());
      for (uint64_t i = 0; i < tuples; ++i) {
        Kv kv{i, i * 3};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
    std::vector<uint64_t> counts(num_targets, 0);
    for (uint32_t t = 0; t < num_targets; ++t) {
      threads.emplace_back([&, t] {
        auto target = dfi_.CreateReplicateTarget("rep", t);
        ASSERT_TRUE(target.ok());
        TupleView tuple;
        uint64_t expected = 0;
        while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
          const uint64_t key = tuple.Get<uint64_t>(0);
          if (expect_order) {
            ASSERT_EQ(key, expected);
          }
          ASSERT_EQ(tuple.Get<uint64_t>(1), key * 3);
          ++expected;
          ++counts[t];
        }
      });
    }
    for (auto& th : threads) th.join();
    for (uint32_t t = 0; t < num_targets; ++t) {
      EXPECT_EQ(counts[t], tuples) << "target " << t;
    }
  }

  net::Fabric fabric_;
  DfiRuntime dfi_;
};

TEST_F(ReplicateTest, NaiveOneToEightDeliversAll) {
  ASSERT_TRUE(dfi_.InitReplicateFlow(BaseSpec(8, false, false)).ok());
  RunOneToN(8, 3000, /*expect_order=*/true);  // single source: FIFO per ring
}

TEST_F(ReplicateTest, NaiveLatencyMode) {
  auto spec = BaseSpec(4, false, false);
  spec.options.optimization = FlowOptimization::kLatency;
  spec.options.segments_per_ring = 8;
  ASSERT_TRUE(dfi_.InitReplicateFlow(std::move(spec)).ok());
  RunOneToN(4, 800, /*expect_order=*/true);
}

TEST_F(ReplicateTest, MulticastOneToEightDeliversAll) {
  ASSERT_TRUE(dfi_.InitReplicateFlow(BaseSpec(8, true, false)).ok());
  RunOneToN(8, 3000, /*expect_order=*/false);
}

TEST_F(ReplicateTest, MulticastOrderedSingleSourcePreservesOrder) {
  ASSERT_TRUE(dfi_.InitReplicateFlow(BaseSpec(4, true, true)).ok());
  RunOneToN(4, 2000, /*expect_order=*/true);
}

TEST_F(ReplicateTest, OrderedWithoutMulticastUnimplemented) {
  EXPECT_EQ(dfi_.InitReplicateFlow(BaseSpec(2, false, true)).code(),
            StatusCode::kUnimplemented);
}

TEST_F(ReplicateTest, MulticastOrderedMultiSourceGlobalOrder) {
  // The OUM property (paper 4.2.2): with global ordering, all targets
  // consume the same sequence even with multiple concurrent sources.
  ReplicateFlowSpec spec = BaseSpec(3, true, true);
  spec.sources = DfiNodes({"10.0.0.1|0", "10.0.0.9|0"});
  spec.options.optimization = FlowOptimization::kLatency;  // tuple-granular
  ASSERT_TRUE(dfi_.InitReplicateFlow(std::move(spec)).ok());

  constexpr uint64_t kPerSource = 500;
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi_.CreateReplicateSource("rep", s);
      ASSERT_TRUE(source.ok());
      for (uint64_t i = 0; i < kPerSource; ++i) {
        Kv kv{s * kPerSource + i, i};
        ASSERT_TRUE((*source)->Push(&kv).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }
  std::vector<std::vector<uint64_t>> sequences(3);
  for (uint32_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi_.CreateReplicateTarget("rep", t);
      ASSERT_TRUE(target.ok());
      TupleView tuple;
      while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        sequences[t].push_back(tuple.Get<uint64_t>(0));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(sequences[0].size(), 2 * kPerSource);
  EXPECT_EQ(sequences[0], sequences[1]) << "targets disagree on order";
  EXPECT_EQ(sequences[0], sequences[2]) << "targets disagree on order";
}

class ReplicateLossTest : public ReplicateTest {
 protected:
  static net::SimConfig LossConfig() {
    net::SimConfig cfg;
    cfg.multicast_loss_probability = 0.05;
    cfg.loss_seed = 99;
    return cfg;
  }
  ReplicateLossTest() : ReplicateTest(LossConfig()) {}
};

TEST_F(ReplicateLossTest, OrderedFlowRecoversLostSegments) {
  // 5% multicast loss; the ordered flow must still deliver everything, in
  // order, to every target via gap detection + retransmission.
  ASSERT_TRUE(dfi_.InitReplicateFlow(BaseSpec(3, true, true)).ok());
  RunOneToN(3, 600, /*expect_order=*/true);
}

TEST_F(ReplicateLossTest, UnorderedLossyFlowRejectedAtInit) {
  EXPECT_DEATH(
      { (void)dfi_.InitReplicateFlow(BaseSpec(2, true, false)); },
      "loss injection requires");
}

}  // namespace
}  // namespace dfi
