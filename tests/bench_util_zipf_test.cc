// Statistical and determinism properties of the skewed workload
// generators behind the adaptive-shuffle benchmarks: the zipfian relation
// must match the analytic zipf pmf (chi-square), be bit-reproducible per
// seed, and collapse to the uniform generator exactly at theta = 0 so the
// static baselines stay digit-identical.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "bench_util/workload.h"

namespace dfi::bench {
namespace {

bool SameRelation(const std::vector<JoinTuple>& a,
                  const std::vector<JoinTuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].payload != b[i].payload) return false;
  }
  return true;
}

TEST(ZipfRelationTest, ThetaZeroIsExactlyTheUniformGenerator) {
  // Not "statistically uniform" — byte-identical, so benches that switch
  // from GenerateUniformRelation to theta=0 zipf reproduce old baselines.
  for (uint64_t seed : {1u, 7u, 42u}) {
    auto uniform = GenerateUniformRelation(5000, 1 << 16, seed);
    auto zipf = GenerateZipfianRelation(5000, 1 << 16, 0.0, seed);
    EXPECT_TRUE(SameRelation(uniform, zipf)) << "seed " << seed;
  }
}

TEST(ZipfRelationTest, DeterministicPerSeed) {
  auto a = GenerateZipfianRelation(20000, 1 << 20, 0.99, 7);
  auto b = GenerateZipfianRelation(20000, 1 << 20, 0.99, 7);
  EXPECT_TRUE(SameRelation(a, b));
  auto c = GenerateZipfianRelation(20000, 1 << 20, 0.99, 8);
  EXPECT_FALSE(SameRelation(a, c)) << "different seeds drew the same keys";
}

TEST(ZipfRelationTest, KeysInDomainAndPayloadsAreTupleIndex) {
  const uint64_t domain = 257;  // not a power of two
  auto rel = GenerateZipfianRelation(10000, domain, 1.2, 3);
  ASSERT_EQ(rel.size(), 10000u);
  for (uint64_t i = 0; i < rel.size(); ++i) {
    EXPECT_LT(rel[i].key, domain);
    // Payload = tuple index keeps duplicate keys distinguishable in the
    // data-plane multiset checks.
    EXPECT_EQ(rel[i].payload, i);
  }
}

TEST(ZipfRelationTest, PmfMatchesAnalyticZipf) {
  // Small domain, large sample: compare the empirical distribution to the
  // analytic zipf pmf p(k) = (1/(k+1)^theta) / zeta_n(theta). The
  // generator is the YCSB/Gray construction, which draws ranks 0 and 1
  // exactly but approximates the tail through a continuous power law — a
  // plain chi-square against the discrete pmf rejects on that systematic
  // (not sampling) error, so the bounds are: tight on the exact head,
  // relative-error-bounded on the tail, and a small aggregate
  // total-variation distance.
  const uint64_t n = 64;
  const uint64_t count = 200000;
  for (double theta : {0.8, 0.99, 1.2}) {
    for (uint64_t seed : {7u, 42u}) {
      auto rel = GenerateZipfianRelation(count, n, theta, seed);

      std::vector<uint64_t> observed(n, 0);
      for (const auto& t : rel) observed[t.key]++;

      double zeta = 0.0;
      for (uint64_t k = 0; k < n; ++k) zeta += 1.0 / std::pow(k + 1, theta);
      double tv = 0.0;
      for (uint64_t k = 0; k < n; ++k) {
        const double expected = count / std::pow(k + 1, theta) / zeta;
        const double rel_err = std::abs(observed[k] - expected) / expected;
        // Sampling noise at this count is < 4% per bucket; the
        // construction's tail approximation stays within ~15%.
        EXPECT_LT(rel_err, k < 2 ? 0.03 : 0.20)
            << "rank " << k << " theta " << theta << " seed " << seed;
        tv += std::abs(observed[k] - expected);
      }
      tv /= 2.0 * count;
      EXPECT_LT(tv, 0.02) << "total-variation distance, theta " << theta;
      // And the gross shape: the top rank dominates, the tail does not.
      EXPECT_GT(observed[0], observed[n - 1] * 5);
    }
  }
}

TEST(ZipfRelationTest, SkewGrowsWithTheta) {
  const uint64_t n = 1 << 10;
  const uint64_t count = 100000;
  uint64_t prev_top = 0;
  for (double theta : {0.5, 0.8, 0.99, 1.2}) {
    auto rel = GenerateZipfianRelation(count, n, theta, 7);
    uint64_t top = 0;
    for (const auto& t : rel) {
      if (t.key == 0) top++;
    }
    EXPECT_GT(top, prev_top) << "theta " << theta
                             << " did not concentrate more mass on rank 0";
    prev_top = top;
  }
}

TEST(HotKeyRelationTest, FractionAndPartitionOfDomain) {
  const uint64_t domain = 1 << 20;
  const uint64_t hot = 4;
  const double fraction = 0.5;
  auto rel = GenerateHotKeyRelation(200000, domain, hot, fraction, 11);
  uint64_t hot_hits = 0;
  for (const auto& t : rel) {
    ASSERT_LT(t.key, domain);
    if (t.key < hot) hot_hits++;
  }
  const double observed = static_cast<double>(hot_hits) / rel.size();
  EXPECT_NEAR(observed, fraction, 0.01);
}

TEST(HotKeyRelationTest, DeterministicPerSeed) {
  auto a = GenerateHotKeyRelation(20000, 1 << 16, 8, 0.3, 5);
  auto b = GenerateHotKeyRelation(20000, 1 << 16, 8, 0.3, 5);
  EXPECT_TRUE(SameRelation(a, b));
}

}  // namespace
}  // namespace dfi::bench
