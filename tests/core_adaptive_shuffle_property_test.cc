// Property tests for the skew-adaptive shuffle data plane: whatever the
// adaptive layer does (hot-key re-splitting, ordered hand-off, work
// stealing between same-node sinks), the flow must deliver exactly the
// static flow's multiset of tuples, never move a key off its home node,
// keep per-key order reconstructible in ordered mode, and fail cleanly
// when a peer crashes mid-migration.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util/workload.h"
#include "common/hash.h"
#include "core/dfi_runtime.h"
#include "core/endpoint/policies.h"

namespace dfi {
namespace {

using bench::JoinTuple;

Schema KeyPayloadSchema() {
  return Schema{{"key", DataType::kUInt64}, {"payload", DataType::kUInt64}};
}

struct RunResult {
  /// Per target, in arrival order at that target.
  std::vector<std::vector<JoinTuple>> per_target;

  std::vector<std::pair<uint64_t, uint64_t>> SortedMultiset() const {
    std::vector<std::pair<uint64_t, uint64_t>> all;
    for (const auto& t : per_target) {
      for (const auto& j : t) all.emplace_back(j.key, j.payload);
    }
    std::sort(all.begin(), all.end());
    return all;
  }
};

std::vector<std::pair<uint64_t, uint64_t>> SortedMultiset(
    const std::vector<std::vector<JoinTuple>>& relations) {
  std::vector<std::pair<uint64_t, uint64_t>> all;
  for (const auto& r : relations) {
    for (const auto& j : r) all.emplace_back(j.key, j.payload);
  }
  std::sort(all.begin(), all.end());
  return all;
}

class AdaptiveShufflePropertyTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kNodes = 2;
  static constexpr uint32_t kThreadsPerNode = 4;
  static constexpr uint32_t kTargets = kNodes * kThreadsPerNode;

  AdaptiveShufflePropertyTest() : dfi_(&fabric_) {
    for (net::NodeId id : fabric_.AddNodes(kNodes)) {
      addrs_.push_back(fabric_.node(id).address());
    }
  }

  /// Target t lives on node t / kThreadsPerNode (matrix order).
  static uint32_t NodeOfTarget(uint32_t target) {
    return target / kThreadsPerNode;
  }
  static uint32_t HomeTarget(uint64_t key) {
    return static_cast<uint32_t>(HashU64(key) % kTargets);
  }

  /// Runs one shuffle of `relations` (one vector per source) and collects
  /// every target's arrival sequence. `sources` are spread round-robin
  /// over the nodes.
  RunResult Run(const std::vector<std::vector<JoinTuple>>& relations,
                const AdaptiveShuffleOptions& adaptive,
                const std::string& name) {
    const uint32_t num_sources = static_cast<uint32_t>(relations.size());
    ShuffleFlowSpec spec;
    spec.name = name;
    for (uint32_t s = 0; s < num_sources; ++s) {
      spec.sources.Append(Endpoint{addrs_[s % kNodes], s});
    }
    for (uint32_t t = 0; t < kTargets; ++t) {
      spec.targets.Append(Endpoint{addrs_[NodeOfTarget(t)], t});
    }
    spec.schema = KeyPayloadSchema();
    spec.options.adaptive = adaptive;
    EXPECT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

    RunResult result;
    result.per_target.resize(kTargets);
    std::vector<std::thread> threads;
    for (uint32_t s = 0; s < num_sources; ++s) {
      threads.emplace_back([&, s] {
        auto src = dfi_.CreateShuffleSource(name, s);
        ASSERT_TRUE(src.ok());
        for (const auto& t : relations[s]) {
          ASSERT_TRUE((*src)->Push(&t).ok());
        }
        ASSERT_TRUE((*src)->Close().ok());
      });
    }
    for (uint32_t t = 0; t < kTargets; ++t) {
      threads.emplace_back([&, t] {
        auto tgt = dfi_.CreateShuffleTarget(name, t);
        ASSERT_TRUE(tgt.ok());
        TupleView tuple;
        while ((*tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
          result.per_target[t].push_back(
              JoinTuple{tuple.Get<uint64_t>(0), tuple.Get<uint64_t>(1)});
        }
      });
    }
    for (auto& th : threads) th.join();
    return result;
  }

  net::Fabric fabric_;
  DfiRuntime dfi_;
  std::vector<std::string> addrs_;
};

TEST_F(AdaptiveShufflePropertyTest, AdaptiveDeliversStaticMultiset) {
  // Across skews and seeds: the adaptive flow (sketch re-splitting + work
  // stealing) must deliver exactly the tuples the static flow delivers —
  // nothing lost, duplicated, or invented — and never move a tuple off
  // its key's home node.
  int variant = 0;
  for (double theta : {0.0, 0.99, 1.2}) {
    for (uint64_t seed : {1u, 7u}) {
      std::vector<std::vector<JoinTuple>> relations;
      for (uint32_t s = 0; s < 4; ++s) {
        relations.push_back(
            bench::GenerateZipfianRelation(4096, 1 << 16, theta, seed + s));
      }
      const auto pushed = SortedMultiset(relations);

      AdaptiveShuffleOptions off;  // static baseline
      auto st =
          Run(relations, off, "static" + std::to_string(variant));

      AdaptiveShuffleOptions on;
      on.enabled = true;
      on.hot_factor = 1.0;
      on.epoch_tuples = 512;
      auto ad = Run(relations, on, "adaptive" + std::to_string(variant));
      ++variant;

      EXPECT_EQ(st.SortedMultiset(), pushed)
          << "static flow lost tuples, theta=" << theta;
      EXPECT_EQ(ad.SortedMultiset(), pushed)
          << "adaptive flow and static flow disagree, theta=" << theta;

      // Node-level containment: work stealing may move a segment between
      // sink threads of one node, and re-splitting may move a hot key
      // between target threads of one node — but never across nodes.
      for (uint32_t t = 0; t < kTargets; ++t) {
        for (const auto& j : ad.per_target[t]) {
          ASSERT_EQ(NodeOfTarget(HomeTarget(j.key)), NodeOfTarget(t))
              << "key " << j.key << " left its home node";
        }
      }
    }
  }
}

TEST_F(AdaptiveShufflePropertyTest, OrderedHandoffKeepsPerKeyOrder) {
  // Ordered hand-off: a hot key has exactly one owning target at a time,
  // re-homed only at epoch boundaries with the previous owner's channel
  // flushed first. With a single source, each (key, target) arrival
  // sequence must be push-ordered, and a key's tuples in push order must
  // switch targets only at hand-offs — at most once per epoch, not per
  // tuple like the unordered round-robin spread.
  const uint64_t count = 8192;
  const uint32_t epoch = 512;
  std::vector<std::vector<JoinTuple>> relations{
      bench::GenerateHotKeyRelation(count, 1 << 16, 2, 0.6, 3)};
  const auto pushed = SortedMultiset(relations);

  AdaptiveShuffleOptions on;
  on.enabled = true;
  on.hot_factor = 1.0;
  on.epoch_tuples = epoch;
  on.ordered_handoff = true;
  auto run = Run(relations, on, "ordered");

  EXPECT_EQ(run.SortedMultiset(), pushed);

  // Payloads are the push index, so "push order" is payload order.
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> per_key;
  for (uint32_t t = 0; t < kTargets; ++t) {
    std::map<uint64_t, uint64_t> last_payload;
    for (const auto& j : run.per_target[t]) {
      auto it = last_payload.find(j.key);
      if (it != last_payload.end()) {
        EXPECT_LT(it->second, j.payload)
            << "per-key arrival order inverted at target " << t;
      }
      last_payload[j.key] = j.payload;
      per_key[j.key].emplace_back(j.payload, t);
    }
  }
  const uint64_t epochs = count / epoch;
  for (uint64_t key : {0u, 1u}) {
    auto& seq = per_key[key];
    ASSERT_FALSE(seq.empty());
    std::sort(seq.begin(), seq.end());
    uint64_t switches = 0;
    for (size_t i = 1; i < seq.size(); ++i) {
      if (seq[i].second != seq[i - 1].second) ++switches;
    }
    // Each epoch boundary re-homes the key at most once (plus the initial
    // promotion). The unordered spread would switch on nearly every tuple
    // (thousands of times here).
    EXPECT_LE(switches, epochs + 1)
        << "hot key " << key << " changed targets mid-epoch";
    EXPECT_GE(switches, 1u)
        << "hot key " << key << " was never re-homed across "
        << epochs << " epochs";
  }
}

TEST_F(AdaptiveShufflePropertyTest, AdaptiveRoutingIsDeterministic) {
  // The sketch/epoch state is a pure function of the source's own input
  // prefix: two partitioners fed the same tuples must make identical
  // decisions, and every re-split decision stays on the home node.
  const Schema schema = KeyPayloadSchema();
  std::vector<net::NodeId> target_nodes;
  for (uint32_t t = 0; t < kTargets; ++t) {
    target_nodes.push_back(static_cast<net::NodeId>(NodeOfTarget(t)));
  }
  AdaptiveShuffleOptions opts;
  opts.enabled = true;
  opts.hot_factor = 1.0;
  opts.epoch_tuples = 256;

  auto rel = bench::GenerateZipfianRelation(20000, 1 << 16, 1.1, 9);
  AdaptivePartitioner a(&schema, 0, target_nodes, opts, nullptr);
  AdaptivePartitioner b(&schema, 0, target_nodes, opts, nullptr);
  for (const auto& t : rel) {
    const auto da = a.Route(reinterpret_cast<const uint8_t*>(&t));
    const auto db = b.Route(reinterpret_cast<const uint8_t*>(&t));
    ASSERT_EQ(da.target, db.target);
    ASSERT_EQ(da.flush_first, db.flush_first);
    ASSERT_EQ(NodeOfTarget(da.target), NodeOfTarget(a.HomeTarget(t.key)));
  }
  EXPECT_GT(a.promotions(), 0u) << "skewed input promoted no keys";
  EXPECT_GT(a.resplit_tuples(), 0u);
  EXPECT_EQ(a.promotions(), b.promotions());
  EXPECT_EQ(a.resplit_tuples(), b.resplit_tuples());
}

TEST_F(AdaptiveShufflePropertyTest, CrashMidMigrationFailsCleanly) {
  // One source node crashes (fault plan, fail-stop) while the surviving
  // source is re-splitting hot keys and the sink group is stealing. Every
  // sink must come back with kPeerFailed — not hang, not report flow end
  // — and the tuples it did consume must be a duplicate-free subset of
  // what the live source pushed.
  fabric_.fault_plan().CrashNode(1, 10 * kMicrosecond);

  ShuffleFlowSpec spec;
  spec.name = "crash";
  spec.sources.Append(Endpoint{addrs_[0], 0});  // live
  spec.sources.Append(Endpoint{addrs_[1], 1});  // crashes, never attaches
  for (uint32_t t = 0; t < kThreadsPerNode; ++t) {
    spec.targets.Append(Endpoint{addrs_[0], t});
  }
  spec.schema = KeyPayloadSchema();
  spec.options.block_deadline_ns = 60 * kMillisecond;
  spec.options.adaptive.enabled = true;
  spec.options.adaptive.hot_factor = 1.0;
  spec.options.adaptive.epoch_tuples = 256;
  ASSERT_TRUE(dfi_.InitShuffleFlow(std::move(spec)).ok());

  auto rel = bench::GenerateHotKeyRelation(4096, 1 << 16, 2, 0.5, 5);
  const auto pushed = SortedMultiset({rel});

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    auto src = dfi_.CreateShuffleSource("crash", 0);
    ASSERT_TRUE(src.ok());
    for (const auto& t : rel) {
      if (!(*src)->Push(&t).ok()) break;  // teardown may race the pushes
    }
    (void)(*src)->Close();
  });
  std::vector<std::vector<JoinTuple>> got(kThreadsPerNode);
  for (uint32_t t = 0; t < kThreadsPerNode; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi_.CreateShuffleTarget("crash", t);
      ASSERT_TRUE(tgt.ok());
      TupleView tuple;
      ConsumeResult r;
      while ((r = (*tgt)->Consume(&tuple)) == ConsumeResult::kOk) {
        got[t].push_back(
            JoinTuple{tuple.Get<uint64_t>(0), tuple.Get<uint64_t>(1)});
      }
      EXPECT_EQ(r, ConsumeResult::kError);
      EXPECT_EQ((*tgt)->last_status().code(), StatusCode::kPeerFailed);
    });
  }
  for (auto& th : threads) th.join();

  auto consumed = SortedMultiset(got);
  EXPECT_EQ(std::adjacent_find(consumed.begin(), consumed.end()),
            consumed.end())
      << "a tuple was delivered twice during teardown";
  EXPECT_TRUE(std::includes(pushed.begin(), pushed.end(), consumed.begin(),
                            consumed.end()))
      << "a tuple was invented during teardown";
}

}  // namespace
}  // namespace dfi
