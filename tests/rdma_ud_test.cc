#include "rdma/ud_queue_pair.h"

#include <gtest/gtest.h>

#include <cstring>

#include "rdma/rdma_env.h"

namespace dfi::rdma {
namespace {

class UdTest : public ::testing::Test {
 protected:
  explicit UdTest(net::SimConfig cfg = net::SimConfig())
      : fabric_(cfg), env_(&fabric_) {
    nodes_ = fabric_.AddNodes(9);  // 1 sender + 8 receivers
    sender_ctx_ = env_.context(nodes_[0]);
    sender_qp_ =
        sender_ctx_->CreateUdQp(sender_ctx_->CreateCq(),
                                sender_ctx_->CreateCq());
  }

  struct Receiver {
    UdQueuePair* qp;
    CompletionQueue* cq;
    MemoryRegion* pool;
  };

  Receiver MakeReceiver(net::NodeId node, uint32_t slots, uint32_t bytes) {
    RdmaContext* ctx = env_.context(node);
    Receiver r;
    r.cq = ctx->CreateCq();
    r.qp = ctx->CreateUdQp(ctx->CreateCq(), r.cq);
    r.pool = ctx->AllocateRegion(static_cast<size_t>(slots) * bytes);
    for (uint32_t i = 0; i < slots; ++i) {
      r.qp->PostRecv(r.pool->addr() + static_cast<size_t>(i) * bytes, bytes,
                     i);
    }
    return r;
  }

  net::Fabric fabric_;
  RdmaEnv env_;
  std::vector<net::NodeId> nodes_;
  RdmaContext* sender_ctx_;
  UdQueuePair* sender_qp_;
  VirtualClock clock_;
};

TEST_F(UdTest, UnicastDeliversIntoPostedRecv) {
  Receiver r = MakeReceiver(nodes_[1], 4, 256);
  uint8_t msg[100];
  for (int i = 0; i < 100; ++i) msg[i] = static_cast<uint8_t>(i * 3);
  auto t = sender_qp_->PostSend(r.qp->qpn(), msg, 100, 1, false, &clock_);
  ASSERT_TRUE(t.ok()) << t.status();
  Completion c;
  VirtualClock rclock;
  ASSERT_TRUE(r.cq->TryPoll(&c, &rclock));
  EXPECT_EQ(c.type, WorkType::kRecv);
  EXPECT_EQ(c.byte_len, 100u);
  EXPECT_EQ(c.src_node, nodes_[0]);
  EXPECT_EQ(std::memcmp(r.pool->addr(), msg, 100), 0);
  EXPECT_GE(rclock.now(), t->arrival);
}

TEST_F(UdTest, NoPostedRecvDropsDatagram) {
  Receiver r = MakeReceiver(nodes_[1], 1, 256);
  uint8_t msg[32] = {};
  ASSERT_TRUE(
      sender_qp_->PostSend(r.qp->qpn(), msg, 32, 1, false, &clock_).ok());
  ASSERT_TRUE(
      sender_qp_->PostSend(r.qp->qpn(), msg, 32, 2, false, &clock_).ok());
  EXPECT_EQ(r.cq->size(), 1u);
  EXPECT_EQ(r.qp->drops_no_recv(), 1u);
}

TEST_F(UdTest, PayloadOverMtuRejected) {
  Receiver r = MakeReceiver(nodes_[1], 1, 8192);
  std::vector<uint8_t> big(fabric_.config().ud_mtu_bytes + 1);
  auto t = sender_qp_->PostSend(r.qp->qpn(), big.data(),
                                static_cast<uint32_t>(big.size()), 1, false,
                                &clock_);
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UdTest, UnknownQpnRejected) {
  uint8_t msg[8] = {};
  auto t = sender_qp_->PostSend(424242, msg, 8, 1, false, &clock_);
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST_F(UdTest, MulticastReachesAllMembers) {
  net::MulticastGroupId group = fabric_.network_switch().CreateGroup();
  std::vector<Receiver> receivers;
  for (int i = 1; i <= 8; ++i) {
    Receiver r = MakeReceiver(nodes_[i], 4, 512);
    ASSERT_TRUE(r.qp->AttachMulticast(group).ok());
    receivers.push_back(r);
  }
  uint8_t msg[64];
  std::memset(msg, 0x5A, sizeof(msg));
  auto t = sender_qp_->PostSendMulticast(group, msg, 64, 9, false, &clock_);
  ASSERT_TRUE(t.ok()) << t.status();
  for (auto& r : receivers) {
    Completion c;
    VirtualClock rc;
    ASSERT_TRUE(r.cq->TryPoll(&c, &rc));
    EXPECT_EQ(std::memcmp(r.pool->addr(), msg, 64), 0);
  }
}

TEST_F(UdTest, MulticastAggregateBandwidthExceedsOneLink) {
  // The headline property of Figure 8b: aggregated receive bandwidth with 8
  // targets exceeds the sender's link speed, because replication happens in
  // the switch.
  net::MulticastGroupId group = fabric_.network_switch().CreateGroup();
  std::vector<Receiver> receivers;
  const uint32_t kBytes = 4096;
  const int kMessages = 500;
  for (int i = 1; i <= 8; ++i) {
    Receiver r = MakeReceiver(nodes_[i], kMessages, kBytes);
    ASSERT_TRUE(r.qp->AttachMulticast(group).ok());
    receivers.push_back(r);
  }
  OpTiming last{};
  std::vector<uint8_t> msg(kBytes, 1);
  for (int i = 0; i < kMessages; ++i) {
    auto t = sender_qp_->PostSendMulticast(group, msg.data(), kBytes, i,
                                           false, &clock_);
    ASSERT_TRUE(t.ok());
    last = *t;
  }
  const double delivered = 8.0 * kBytes * kMessages;
  const double rate = delivered / static_cast<double>(last.arrival);
  EXPECT_GT(rate, 2.0 * fabric_.config().LinkBytesPerNs());
}

class UdLossTest : public UdTest {
 protected:
  static net::SimConfig LossConfig() {
    net::SimConfig cfg;
    cfg.multicast_loss_probability = 0.2;
    cfg.loss_seed = 7;
    return cfg;
  }
  UdLossTest() : UdTest(LossConfig()) {}
};

TEST_F(UdLossTest, LossInjectionDropsSomeDeliveries) {
  net::MulticastGroupId group = fabric_.network_switch().CreateGroup();
  Receiver r = MakeReceiver(nodes_[1], 1000, 128);
  ASSERT_TRUE(r.qp->AttachMulticast(group).ok());
  uint8_t msg[64] = {};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        sender_qp_->PostSendMulticast(group, msg, 64, i, false, &clock_)
            .ok());
  }
  EXPECT_LT(r.cq->size(), 950u);
  EXPECT_GT(r.cq->size(), 650u);
}

}  // namespace
}  // namespace dfi::rdma
