#include "mpi/mpi_env.h"

#include <gtest/gtest.h>

#include <cstring>
#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

namespace dfi::mpi {
namespace {

class MpiTest : public ::testing::Test {
 protected:
  void SetUpEnv(int ranks, ThreadMode mode = ThreadMode::kSingle,
                uint32_t threads_per_rank = 1) {
    nodes_ = fabric_.AddNodes(ranks);
    env_ = std::make_unique<MpiEnv>(&fabric_, nodes_, mode, threads_per_rank);
  }

  net::Fabric fabric_;
  std::vector<net::NodeId> nodes_;
  std::unique_ptr<MpiEnv> env_;
};

TEST_F(MpiTest, EagerSendRecvRoundTrip) {
  SetUpEnv(2);
  std::vector<uint8_t> data(512);
  std::iota(data.begin(), data.end(), 0);
  VirtualClock sc, rc;
  std::thread sender([&] {
    ASSERT_TRUE(env_->Send(0, 1, 7, data.data(), data.size(), &sc).ok());
  });
  std::vector<uint8_t> out(512, 0);
  ASSERT_TRUE(env_->Recv(1, 0, 7, out.data(), out.size(), &rc).ok());
  sender.join();
  EXPECT_EQ(out, data);
  EXPECT_GT(rc.now(), sc.now()) << "receiver completes after the arrival";
}

TEST_F(MpiTest, EagerSenderDoesNotBlock) {
  SetUpEnv(2);
  // Send completes with no receiver present (buffered).
  std::vector<uint8_t> data(64, 1);
  VirtualClock sc;
  ASSERT_TRUE(env_->Send(0, 1, 0, data.data(), data.size(), &sc).ok());
  VirtualClock rc;
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(env_->Recv(1, 0, 0, out.data(), out.size(), &rc).ok());
  EXPECT_EQ(out, data);
}

TEST_F(MpiTest, RendezvousBlocksUntilMatched) {
  SetUpEnv(2);
  std::vector<uint8_t> data(64 * 1024);
  std::iota(data.begin(), data.end(), 0);
  VirtualClock sc(1000), rc(5'000'000);
  std::atomic<bool> send_returned{false};
  std::thread sender([&] {
    ASSERT_TRUE(env_->Send(0, 1, 1, data.data(), data.size(), &sc).ok());
    send_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(send_returned.load()) << "rendezvous must wait for the recv";
  std::vector<uint8_t> out(data.size());
  ASSERT_TRUE(env_->Recv(1, 0, 1, out.data(), out.size(), &rc).ok());
  sender.join();
  EXPECT_TRUE(send_returned.load());
  EXPECT_EQ(out, data);
  // The transfer cannot start before the late receiver posted.
  EXPECT_GT(rc.now(), 5'000'000);
  EXPECT_GT(sc.now(), 5'000'000) << "sender waited for handshake";
}

TEST_F(MpiTest, RecvSizeMismatchRejected) {
  SetUpEnv(2);
  std::vector<uint8_t> data(128, 0);
  VirtualClock sc, rc;
  ASSERT_TRUE(env_->Send(0, 1, 2, data.data(), 128, &sc).ok());
  std::vector<uint8_t> out(64);
  EXPECT_EQ(env_->Recv(1, 0, 2, out.data(), 64, &rc).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MpiTest, RankValidation) {
  SetUpEnv(2);
  VirtualClock c;
  uint8_t b = 0;
  EXPECT_EQ(env_->Send(0, 5, 0, &b, 1, &c).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(env_->Recv(7, 0, 0, &b, 1, &c).code(), StatusCode::kOutOfRange);
}

TEST_F(MpiTest, TagsDoNotCrossMatch) {
  SetUpEnv(2);
  VirtualClock sc, rc;
  uint64_t a = 111, b = 222;
  ASSERT_TRUE(env_->Send(0, 1, 10, &a, sizeof(a), &sc).ok());
  ASSERT_TRUE(env_->Send(0, 1, 20, &b, sizeof(b), &sc).ok());
  uint64_t out = 0;
  ASSERT_TRUE(env_->Recv(1, 0, 20, &out, sizeof(out), &rc).ok());
  EXPECT_EQ(out, 222u);
  ASSERT_TRUE(env_->Recv(1, 0, 10, &out, sizeof(out), &rc).ok());
  EXPECT_EQ(out, 111u);
}

TEST_F(MpiTest, BarrierJoinsClocks) {
  SetUpEnv(3);
  std::vector<std::unique_ptr<VirtualClock>> clocks;
  for (int r = 0; r < 3; ++r) {
    clocks.push_back(std::make_unique<VirtualClock>(r * 1'000'000));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back(
        [&, r] { ASSERT_TRUE(env_->Barrier(r, clocks[r].get()).ok()); });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < 3; ++r) {
    EXPECT_GE(clocks[r]->now(), 2'000'000) << "rank " << r;
  }
}

TEST_F(MpiTest, AlltoallExchangesSlices) {
  constexpr int kRanks = 4;
  constexpr size_t kBytes = 1024;
  SetUpEnv(kRanks);
  std::vector<std::thread> threads;
  std::vector<std::vector<uint8_t>> recv(kRanks,
                                         std::vector<uint8_t>(kRanks * kBytes));
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      std::vector<uint8_t> send(kRanks * kBytes);
      for (int q = 0; q < kRanks; ++q) {
        std::memset(send.data() + q * kBytes, 16 * r + q, kBytes);
      }
      VirtualClock clock;
      ASSERT_TRUE(
          env_->Alltoall(r, send.data(), recv[r].data(), kBytes, &clock).ok());
      EXPECT_GT(clock.now(), 0);
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kRanks; ++r) {
    for (int q = 0; q < kRanks; ++q) {
      // Slice q of rank r's recv buffer came from rank q's slice r.
      EXPECT_EQ(recv[r][q * kBytes], 16 * q + r) << "r=" << r << " q=" << q;
    }
  }
}

TEST_F(MpiTest, AlltoallStragglerDelaysEveryone) {
  constexpr int kRanks = 4;
  SetUpEnv(kRanks);
  std::vector<std::thread> threads;
  std::vector<SimTime> finish(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      // Rank 3 arrives 10 ms late (the straggler).
      VirtualClock clock(r == 3 ? 10'000'000 : 0);
      std::vector<uint8_t> send(kRanks * 64, 0), recv(kRanks * 64, 0);
      ASSERT_TRUE(env_->Alltoall(r, send.data(), recv.data(), 64, &clock).ok());
      finish[r] = clock.now();
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GE(finish[r], 10'000'000)
        << "bulk-synchronous collective: rank " << r
        << " must wait for the straggler";
  }
}

TEST_F(MpiTest, MultiThreadLatchSerializesAndDegrades) {
  SetUpEnv(2, ThreadMode::kMultiple, /*threads_per_rank=*/4);
  // 4 threads of rank 0 each send 100 eager messages; the latch must make
  // the aggregate virtual time exceed the uncontended case markedly.
  constexpr int kThreads = 4;
  constexpr int kMsgs = 100;
  std::vector<std::thread> threads;
  std::vector<SimTime> finish(kThreads);
  std::vector<uint8_t> payload(64, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VirtualClock clock;
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_TRUE(
            env_->Send(0, 1, 100 + t, payload.data(), 64, &clock).ok());
      }
      finish[t] = clock.now();
    });
  }
  // Drain on rank 1 so mailbox memory stays bounded.
  std::thread drainer([&] {
    VirtualClock clock;
    std::vector<uint8_t> buf(64);
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_TRUE(env_->Recv(1, 0, 100 + t, buf.data(), 64, &clock).ok());
      }
    }
  });
  for (auto& t : threads) t.join();
  drainer.join();
  // Total latch hold: 400 calls * (300 + 120*3) ns = 264 us serialized, so
  // the last thread to finish must carry (almost) the whole serialization,
  // far above the ~40 us a single uncontended thread needs.
  const SimTime slowest = *std::max_element(finish.begin(), finish.end());
  EXPECT_GE(slowest, 250'000);
  // And every thread at least pays for its own 100 latch holds.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GE(finish[t], 66'000) << "thread " << t;
  }
}

TEST_F(MpiTest, WindowPutAndFence) {
  SetUpEnv(3);
  auto window = env_->CreateWindow(4096);
  ASSERT_TRUE(window.ok());
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      VirtualClock clock;
      uint64_t value = 1000 + r;
      // Every rank writes its value into every rank's window at offset r*8.
      for (int q = 0; q < 3; ++q) {
        ASSERT_TRUE(env_->Put(r, &value, sizeof(value), q, r * 8, *window,
                              &clock)
                        .ok());
      }
      ASSERT_TRUE(env_->Fence(r, *window, &clock).ok());
      // After the fence, all puts are visible everywhere.
      for (int src = 0; src < 3; ++src) {
        uint64_t got;
        std::memcpy(&got, (*window)->local(r) + src * 8, 8);
        EXPECT_EQ(got, 1000u + src);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST_F(MpiTest, PutBeyondWindowRejected) {
  SetUpEnv(2);
  auto window = env_->CreateWindow(64);
  ASSERT_TRUE(window.ok());
  VirtualClock clock;
  uint64_t v = 0;
  EXPECT_EQ(env_->Put(0, &v, 8, 1, 60, *window, &clock).code(),
            StatusCode::kOutOfRange);
}

TEST_F(MpiTest, WindowMemoryAccounted) {
  SetUpEnv(2);
  const uint64_t before0 = fabric_.node(nodes_[0]).registered_bytes();
  auto window = env_->CreateWindow(8192);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(fabric_.node(nodes_[0]).registered_bytes(), before0 + 8192);
}

}  // namespace
}  // namespace dfi::mpi
