// Unit tests for the deterministic work-stealing virtual-time engine
// (src/common/exec): task scheduling order, WaitPoint park/wake, timed
// parks (DES jumps), ActorGroup spawn/join in both modes, and the
// progress-epoch idle protocol.

#include "common/exec/engine.h"

#include <atomic>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace dfi::exec {
namespace {

TEST(EngineTest, RunsAllTasks) {
  Engine engine({.workers = 1});
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    engine.Spawn(i, "t", [&] { ran.fetch_add(1); });
  }
  engine.Run();
  EXPECT_EQ(ran.load(), 10);
}

TEST(EngineTest, CurrentIsNullOutsideAndSetInside) {
  EXPECT_EQ(Engine::Current(), nullptr);
  EXPECT_FALSE(Engine::InTask());
  Engine engine({.workers = 1});
  bool inside = false;
  engine.Spawn(0, "probe", [&] { inside = Engine::InTask(); });
  engine.Run();
  EXPECT_TRUE(inside);
  EXPECT_EQ(Engine::Current(), nullptr);
}

TEST(EngineTest, SingleWorkerRunsInVirtualTimeOrder) {
  // With one worker and disjoint virtual times, tasks must execute in
  // (virtual time, spawn id) order regardless of spawn order.
  Engine engine({.workers = 1, .lookahead_ns = 0});
  std::vector<int> order;
  // Spawned in reverse virtual-time order; Yield re-enqueues at the given
  // virtual time, so the scheduler must sort them.
  for (int i = 4; i >= 0; --i) {
    engine.Spawn(static_cast<uint32_t>(i), "t" + std::to_string(i), [&, i] {
      Engine::Yield(static_cast<SimTime>(i) * 1000);
      order.push_back(i);
    });
  }
  engine.Run();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineTest, ParkAndWakeAll) {
  Engine engine({.workers = 1});
  WaitPoint wp;
  std::mutex mu;
  bool flag = false;
  std::vector<int> order;
  engine.Spawn(0, "waiter", [&] {
    auto done = [&] {
      std::lock_guard<std::mutex> lock(mu);
      return flag;
    };
    while (!done()) Engine::Park(&wp, done, 0, Engine::kNoTimer);
    order.push_back(1);
  });
  engine.Spawn(1, "setter", [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      flag = true;
    }
    wp.WakeAll();
    order.push_back(0);
  });
  engine.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);  // setter finished first; waiter was parked
  EXPECT_EQ(order[1], 1);
}

TEST(EngineTest, ParkDeclinesWhenPredicateAlreadyTrue) {
  Engine engine({.workers = 1});
  WaitPoint wp;
  WakeCause cause = WakeCause::kTimer;
  engine.Spawn(0, "t", [&] {
    cause = Engine::Park(&wp, [] { return true; }, 0, Engine::kNoTimer);
  });
  engine.Run();
  EXPECT_EQ(cause, WakeCause::kNotified);
}

TEST(EngineTest, TimedParkJumpsVirtualTime) {
  // A lone task parked with a timer must be released by the virtual-time
  // floor reaching its wake time (a DES jump) — no real-time sleeping, no
  // notifier. If the engine waited in real time this test would hang.
  Engine engine({.workers = 1});
  WaitPoint wp;
  WakeCause cause = WakeCause::kNotified;
  engine.Spawn(0, "sleeper", [&] {
    cause = Engine::Park(&wp, [] { return false; }, /*now=*/0,
                         /*wake_at=*/1'000'000'000);
  });
  engine.Run();
  EXPECT_EQ(cause, WakeCause::kTimer);
}

TEST(EngineTest, SpawnFromInsideTask) {
  Engine engine({.workers = 1});
  std::atomic<int> ran{0};
  engine.Spawn(0, "parent", [&] {
    ran.fetch_add(1);
    Engine::Current()->Spawn(1, "child", [&] { ran.fetch_add(1); });
  });
  engine.Run();
  EXPECT_EQ(ran.load(), 2);
}

TEST(EngineTest, MultiWorkerCompletesAllTasks) {
  Engine engine({.workers = 4});
  std::atomic<int> ran{0};
  WaitPoint wp;
  std::atomic<bool> flag{false};
  for (int i = 0; i < 32; ++i) {
    engine.Spawn(static_cast<uint32_t>(i % 8), "t", [&] {
      auto done = [&] { return flag.load(); };
      while (!done()) Engine::Park(&wp, done, 0, Engine::kNoTimer);
      ran.fetch_add(1);
    });
  }
  engine.Spawn(99, "setter", [&] {
    flag.store(true);
    wp.WakeAll();
  });
  engine.Run();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ActorGroupTest, ThreadModeOutsideEngine) {
  // Outside any engine, ActorGroup spawns real threads — the historical
  // behavior every existing bench relies on.
  ActorGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    group.Spawn(static_cast<uint32_t>(i), "t", [&] { ran.fetch_add(1); });
  }
  group.Join();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ActorGroupTest, EngineModeInsideTask) {
  Engine engine({.workers = 2});
  std::atomic<int> ran{0};
  engine.Spawn(0, "root", [&] {
    ActorGroup group;
    for (int i = 0; i < 8; ++i) {
      group.Spawn(static_cast<uint32_t>(i), "actor",
                  [&] { ran.fetch_add(1); });
    }
    group.Join();
    EXPECT_EQ(ran.load(), 8);
  });
  engine.Run();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ProgressEpochTest, BumpAdvancesAndIdleWaitReturns) {
  const uint64_t before = ProgressEpoch();
  BumpProgress();
  EXPECT_GT(ProgressEpoch(), before);
  // Thread mode: IdleWait with a stale epoch returns after one sleep slice.
  IdleWait(before);
}

TEST(ProgressEpochTest, IdleWaitParksUntilBump) {
  Engine engine({.workers = 1});
  std::vector<int> order;
  engine.Spawn(0, "poller", [&] {
    const uint64_t seen = ProgressEpoch();
    // Nothing produced yet: IdleWait must park this task and let the
    // producer run, not spin.
    IdleWait(seen);
    order.push_back(1);
  });
  engine.Spawn(1, "producer", [&] {
    order.push_back(0);
    BumpProgress();
  });
  engine.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

}  // namespace
}  // namespace dfi::exec
