// Unit tests for the unified transport layer (FlowEndpoint / FlowSink /
// ChannelMatrix) exercised directly — no flow-type policy on top — so ring
// wrap-around, footer prefetch, deadline expiry and abort propagation are
// pinned down independently of shuffle/replicate/combiner semantics.
#include "core/endpoint/flow_endpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/endpoint/flow_sink.h"
#include "core/endpoint/policies.h"
#include "net/fabric.h"
#include "rdma/rdma_env.h"

namespace dfi {
namespace {

struct Rec {
  uint64_t seq;
  uint64_t payload;
};

Schema RecSchema() {
  return Schema{{"seq", DataType::kUInt64}, {"payload", DataType::kUInt64}};
}

constexpr uint32_t kTupleSize = sizeof(Rec);

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest() : env_(&fabric_) {
    nodes_ = fabric_.AddNodes(2);
    schema_ = RecSchema();
  }

  /// 1x1 matrix: one source on nodes_[0], one target ring on nodes_[1].
  ChannelMatrix MakeMatrix(const FlowOptions& options) {
    return ChannelMatrix(&env_, options, kTupleSize, /*num_sources=*/1,
                         {nodes_[1]});
  }

  FlowSink MakeSink(ChannelMatrix* matrix, VirtualClock* clock,
                    const AbortLatch* latch = nullptr) {
    return FlowSink(matrix, /*target_index=*/0, &schema_, &env_.config(),
                    clock, "endpoint", {nodes_[0]}, latch);
  }

  net::Fabric fabric_;
  rdma::RdmaEnv env_;
  std::vector<net::NodeId> nodes_;
  Schema schema_;
};

// A ring much smaller than the pushed volume: every slot is rewritten many
// times, so delivery depends on the footer-driven release/recycle protocol
// (sequence numbers in footers, wrap-around of both rings).
TEST_F(EndpointTest, RingWrapAroundPreservesOrder) {
  FlowOptions options;
  options.segment_size = 256;      // 16 tuples per segment
  options.segments_per_ring = 4;   // target ring wraps every 4 segments
  options.source_segments = 2;     // staging ring wraps every 2
  ChannelMatrix matrix = MakeMatrix(options);

  constexpr uint64_t kTuples = 16 * 4 * 8;  // 8 full target-ring laps
  std::thread producer([&] {
    VirtualClock clock;
    FlowEndpoint endpoint(&matrix, /*source_index=*/0,
                          env_.context(nodes_[0]), &clock);
    Partitioner single = Partitioner::Single();
    for (uint64_t i = 0; i < kTuples; ++i) {
      Rec rec{i, ~i};
      ASSERT_TRUE(endpoint.Push(&rec, &single).ok());
    }
    ASSERT_TRUE(endpoint.Close().ok());
    // Bandwidth mode pipelines one footer prefetch per transmitted segment
    // (plus polls while blocked on a full ring).
    EXPECT_GT(endpoint.channel(0)->segments_sent(),
              uint64_t{options.segments_per_ring});
    EXPECT_GE(endpoint.channel(0)->footer_reads(),
              endpoint.channel(0)->segments_sent());
  });

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock);
  uint64_t next = 0;
  SegmentView view;
  for (;;) {
    ConsumeResult r = sink.ConsumeSegment(&view);
    if (r == ConsumeResult::kFlowEnd) break;
    ASSERT_EQ(r, ConsumeResult::kOk) << sink.last_status();
    ASSERT_EQ(view.bytes % kTupleSize, 0u);
    for (uint32_t off = 0; off < view.bytes; off += kTupleSize) {
      Rec rec;
      std::memcpy(&rec, view.payload + off, sizeof(rec));
      ASSERT_EQ(rec.seq, next) << "tuple order broken across ring wrap";
      ASSERT_EQ(rec.payload, ~next);
      ++next;
    }
  }
  producer.join();
  EXPECT_EQ(next, kTuples);
}

// Per-tuple consume path across a wrapping ring (iteration state inside the
// held segment plus release on segment boundaries).
TEST_F(EndpointTest, TupleConsumeAcrossWrap) {
  FlowOptions options;
  options.segment_size = 128;  // 8 tuples per segment
  options.segments_per_ring = 2;
  ChannelMatrix matrix = MakeMatrix(options);

  constexpr uint64_t kTuples = 8 * 2 * 5;
  std::thread producer([&] {
    VirtualClock clock;
    FlowEndpoint endpoint(&matrix, 0, env_.context(nodes_[0]), &clock);
    for (uint64_t i = 0; i < kTuples; ++i) {
      Rec rec{i, i * 3};
      ASSERT_TRUE(endpoint.PushTo(&rec, 0).ok());
    }
    ASSERT_TRUE(endpoint.Close().ok());
  });

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock);
  TupleView tuple;
  uint64_t next = 0;
  while (sink.Consume(&tuple) == ConsumeResult::kOk) {
    ASSERT_EQ(tuple.Get<uint64_t>(0), next);
    ASSERT_EQ(tuple.Get<uint64_t>(1), next * 3);
    ++next;
  }
  producer.join();
  EXPECT_EQ(next, kTuples);
  EXPECT_TRUE(sink.last_status().ok());
}

// A source facing a full remote ring with no consumer must not hang: the
// footer poll gives up after block_deadline_ns of virtual waiting.
TEST_F(EndpointTest, PushDeadlineExpiresOnFullRing) {
  FlowOptions options;
  options.segment_size = 64;  // 4 tuples per segment
  options.segments_per_ring = 2;
  options.block_deadline_ns = 1 * kMillisecond;
  ChannelMatrix matrix = MakeMatrix(options);

  VirtualClock clock;
  FlowEndpoint endpoint(&matrix, 0, env_.context(nodes_[0]), &clock);
  Status status = Status::OK();
  for (uint64_t i = 0; i < 64 && status.ok(); ++i) {
    Rec rec{i, 0};
    status = endpoint.PushTo(&rec, 0);
  }
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status;
  // The expired wait charged at least the deadline to virtual time.
  EXPECT_GE(clock.now(), options.block_deadline_ns);
}

// A sink whose source never shows up gives up after the deadline instead of
// blocking forever.
TEST_F(EndpointTest, ConsumeDeadlineExpiresWithSilentSource) {
  FlowOptions options;
  options.block_deadline_ns = 1 * kMillisecond;
  ChannelMatrix matrix = MakeMatrix(options);

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock);
  SegmentView view;
  EXPECT_EQ(sink.ConsumeSegment(&view), ConsumeResult::kError);
  EXPECT_EQ(sink.last_status().code(), StatusCode::kDeadlineExceeded)
      << sink.last_status();
}

// Source-side Abort poisons the channel: the sink surfaces the cause as
// kError even though data (and no end-of-flow marker) was staged.
TEST_F(EndpointTest, AbortPropagatesSourceToSink) {
  FlowOptions options;
  ChannelMatrix matrix = MakeMatrix(options);

  VirtualClock source_clock;
  FlowEndpoint endpoint(&matrix, 0, env_.context(nodes_[0]), &source_clock);
  Rec rec{1, 2};
  ASSERT_TRUE(endpoint.PushTo(&rec, 0).ok());  // staged, not transmitted
  endpoint.Abort(Status::Aborted("source failed mid-flow"));

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock);
  SegmentView view;
  EXPECT_EQ(sink.ConsumeSegment(&view), ConsumeResult::kError);
  EXPECT_EQ(sink.last_status().code(), StatusCode::kAborted)
      << sink.last_status();
  // Further pushes on the aborted endpoint fail (the channel is closed).
  EXPECT_FALSE(endpoint.PushTo(&rec, 0).ok());
}

// Target-side Abort wakes a source blocked on the full ring (no deadline
// configured — teardown alone must interrupt the wait).
TEST_F(EndpointTest, AbortPropagatesSinkToSource) {
  FlowOptions options;
  options.segment_size = 64;  // 4 tuples per segment
  options.segments_per_ring = 2;
  ChannelMatrix matrix = MakeMatrix(options);

  std::atomic<bool> blocked{false};
  Status push_status = Status::OK();
  std::thread producer([&] {
    VirtualClock clock;
    FlowEndpoint endpoint(&matrix, 0, env_.context(nodes_[0]), &clock);
    for (uint64_t i = 0; i < 64; ++i) {
      Rec rec{i, 0};
      // Enough pushes to fill the remote ring; with nobody consuming the
      // transmit blocks until the abort below tears the channel down.
      blocked.store(i >= 8, std::memory_order_relaxed);
      push_status = endpoint.PushTo(&rec, 0);
      if (!push_status.ok()) return;
    }
  });

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock);
  while (!blocked.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sink.Abort(Status::Aborted("target failed"));
  producer.join();
  EXPECT_EQ(push_status.code(), StatusCode::kAborted) << push_status;
}

// A tripped flow-level AbortLatch (replicate-style flow-granular teardown)
// unblocks a waiting sink with the latch's cause.
TEST_F(EndpointTest, FlowAbortLatchUnblocksSink) {
  FlowOptions options;  // no deadline: only the latch can end the wait
  ChannelMatrix matrix = MakeMatrix(options);
  AbortLatch latch;

  VirtualClock clock;
  FlowSink sink = MakeSink(&matrix, &clock, &latch);
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    latch.Trip(Status::PeerFailed("sibling target crashed"));
    matrix.PoisonAll(latch.status());  // wake the gate, as flows do
  });
  SegmentView view;
  EXPECT_EQ(sink.ConsumeSegment(&view), ConsumeResult::kError);
  EXPECT_EQ(sink.last_status().code(), StatusCode::kPeerFailed)
      << sink.last_status();
  aborter.join();
}

// AbortLatch semantics the flows rely on: first cause wins, OK causes are
// normalized to a generic abort.
TEST_F(EndpointTest, AbortLatchFirstCauseWins) {
  AbortLatch latch;
  EXPECT_FALSE(latch.tripped());
  EXPECT_TRUE(latch.status().ok());
  EXPECT_TRUE(latch.Trip(Status::DeadlineExceeded("first")));
  EXPECT_FALSE(latch.Trip(Status::Aborted("second")));
  EXPECT_TRUE(latch.tripped());
  EXPECT_EQ(latch.status().code(), StatusCode::kDeadlineExceeded);

  AbortLatch normalizing;
  EXPECT_TRUE(normalizing.Trip(Status::OK()));
  EXPECT_EQ(normalizing.status().code(), StatusCode::kAborted);
}

// ---------------------------------------------------------------------------
// Backpressure signal (TargetLoadBoard) and its adaptive-routing reaction
// ---------------------------------------------------------------------------

TEST(TargetLoadBoardTest, RiseFallThresholdsWithHysteresis) {
  TargetLoadBoard board(/*num_targets=*/1, /*high=*/4, /*low=*/2);
  EXPECT_EQ(board.depth(0), 0u);
  EXPECT_FALSE(board.saturated(0));

  // Below the high-water mark: never saturated.
  for (int i = 0; i < 3; ++i) board.OnDelivered(0);
  EXPECT_EQ(board.depth(0), 3u);
  EXPECT_FALSE(board.saturated(0));

  // Trips exactly at `high`.
  board.OnDelivered(0);
  EXPECT_TRUE(board.saturated(0));

  // Hysteresis: stays saturated while depth is above `low`...
  board.OnConsumed(0);
  EXPECT_EQ(board.depth(0), 3u);
  EXPECT_TRUE(board.saturated(0));

  // ...and clears exactly at `low`, so a target hovering around one
  // threshold cannot flap.
  board.OnConsumed(0);
  EXPECT_EQ(board.depth(0), 2u);
  EXPECT_FALSE(board.saturated(0));

  // Climbing back above `low` (but below `high`) does not re-trip.
  board.OnDelivered(0);
  EXPECT_FALSE(board.saturated(0));
}

TEST(TargetLoadBoardTest, SlotsAreIndependent) {
  TargetLoadBoard board(/*num_targets=*/3, /*high=*/2, /*low=*/1);
  board.OnDelivered(1);
  board.OnDelivered(1);
  EXPECT_TRUE(board.saturated(1));
  EXPECT_FALSE(board.saturated(0));
  EXPECT_FALSE(board.saturated(2));
  EXPECT_EQ(board.depth(0), 0u);
  EXPECT_EQ(board.depth(2), 0u);
}

TEST(AdaptiveBackpressureTest, SaturatedTargetThrottlesOnlyItsOwnSources) {
  // 2 nodes x 2 target threads: targets {0,1} on node 0, {2,3} on node 1.
  // Saturating target 0 must divert only the tuples homed at target 0 —
  // and only to its same-node sibling — while traffic for every other
  // target routes exactly as the static partitioner would.
  const Schema schema{{"key", DataType::kUInt64}};
  const std::vector<net::NodeId> target_nodes{0, 0, 1, 1};
  AdaptiveShuffleOptions opts;
  opts.enabled = true;
  opts.react_to_backpressure = true;
  opts.backpressure_high = 4;
  opts.backpressure_low = 2;
  TargetLoadBoard board(4, opts.backpressure_high, opts.backpressure_low);
  AdaptivePartitioner part(&schema, 0, target_nodes, opts, &board);

  // One representative cold key per home target.
  uint64_t key_for[4];
  for (uint32_t found = 0, k = 0; found != 0xf; ++k) {
    const uint32_t home = part.HomeTarget(k);
    if ((found & (1u << home)) == 0) {
      key_for[home] = k;
      found |= 1u << home;
    }
  }

  auto route = [&](uint64_t key) {
    return part.Route(reinterpret_cast<const uint8_t*>(&key)).target;
  };

  // Unsaturated: everything goes to its static home.
  for (uint32_t t = 0; t < 4; ++t) {
    EXPECT_EQ(route(key_for[t]), t);
  }

  // Saturate target 0.
  for (uint32_t i = 0; i < opts.backpressure_high; ++i) board.OnDelivered(0);
  ASSERT_TRUE(board.saturated(0));

  // Its traffic diverts to the same-node sibling (target 1)...
  EXPECT_EQ(route(key_for[0]), 1u);
  EXPECT_GT(part.diverted_tuples(), 0u);
  // ...but never across nodes, and other targets' traffic is untouched.
  const uint64_t diverted_before = part.diverted_tuples();
  EXPECT_EQ(route(key_for[1]), 1u);
  EXPECT_EQ(route(key_for[2]), 2u);
  EXPECT_EQ(route(key_for[3]), 3u);
  EXPECT_EQ(part.diverted_tuples(), diverted_before);

  // With every sibling of the node saturated there is nowhere better to
  // go: the tuple stays home rather than leaving the node.
  for (uint32_t i = 0; i < opts.backpressure_high; ++i) board.OnDelivered(1);
  ASSERT_TRUE(board.saturated(1));
  EXPECT_EQ(route(key_for[0]), 0u);

  // Hysteresis end-to-end: draining target 0 to the low-water mark lifts
  // the diversion.
  for (uint32_t i = 0; i < opts.backpressure_high; ++i) board.OnConsumed(0);
  ASSERT_FALSE(board.saturated(0));
  EXPECT_EQ(route(key_for[0]), 0u);
}

TEST(AdaptiveBackpressureTest, NoReactionWithoutOptInOrBoard) {
  // The board is advisory: without react_to_backpressure (or without a
  // board at all) routing must ignore saturation — that is what keeps the
  // default adaptive path bit-deterministic.
  const Schema schema{{"key", DataType::kUInt64}};
  const std::vector<net::NodeId> target_nodes{0, 0};
  TargetLoadBoard board(2, 2, 1);
  board.OnDelivered(0);
  board.OnDelivered(0);
  ASSERT_TRUE(board.saturated(0));

  uint64_t key0 = 0;
  AdaptiveShuffleOptions opts;
  opts.enabled = true;
  opts.react_to_backpressure = false;
  {
    AdaptivePartitioner part(&schema, 0, target_nodes, opts, &board);
    while (part.HomeTarget(key0) != 0) ++key0;
    EXPECT_EQ(part.Route(reinterpret_cast<const uint8_t*>(&key0)).target, 0u);
    EXPECT_EQ(part.diverted_tuples(), 0u);
  }
  {
    opts.react_to_backpressure = true;  // opted in, but no board wired up
    AdaptivePartitioner part(&schema, 0, target_nodes, opts, nullptr);
    EXPECT_EQ(part.Route(reinterpret_cast<const uint8_t*>(&key0)).target, 0u);
    EXPECT_EQ(part.diverted_tuples(), 0u);
  }
}

}  // namespace
}  // namespace dfi
