// Property-style sweeps over the shuffle flow: for any combination of
// optimization mode, segment geometry, tuple size and endpoint counts, a
// shuffle must deliver every pushed tuple exactly once to exactly the
// routed target ("exactly-once, correctly-partitioned" invariant).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "core/dfi_runtime.h"

namespace dfi {
namespace {

struct GridParam {
  FlowOptimization opt;
  uint32_t segment_size;
  uint32_t segments_per_ring;
  uint32_t num_sources;
  uint32_t num_targets;
  uint32_t tuple_payload;  // extra kChar bytes beyond the 8-byte key
  uint64_t tuples_per_source;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  std::string s = p.opt == FlowOptimization::kBandwidth ? "bw" : "lat";
  s += "_seg" + std::to_string(p.segment_size);
  s += "_ring" + std::to_string(p.segments_per_ring);
  s += "_n" + std::to_string(p.num_sources);
  s += "_m" + std::to_string(p.num_targets);
  s += "_t" + std::to_string(8 + p.tuple_payload);
  return s;
}

class ShufflePropertyTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(ShufflePropertyTest, ExactlyOnceCorrectlyPartitioned) {
  const GridParam& p = GetParam();
  net::Fabric fabric;
  fabric.AddNodes(std::max(p.num_sources, p.num_targets));
  DfiRuntime dfi(&fabric);

  std::vector<std::string> addrs;
  for (size_t i = 0; i < fabric.node_count(); ++i) {
    addrs.push_back(fabric.node(static_cast<net::NodeId>(i)).address());
  }

  ShuffleFlowSpec spec;
  spec.name = "prop";
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    spec.sources.Append(Endpoint{addrs[s % addrs.size()], s});
  }
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    spec.targets.Append(Endpoint{addrs[t % addrs.size()], t});
  }
  std::vector<Field> fields{{"key", DataType::kUInt64, 0}};
  if (p.tuple_payload > 0) {
    fields.push_back({"pad", DataType::kChar, p.tuple_payload});
  }
  auto schema = Schema::Create(fields);
  ASSERT_TRUE(schema.ok());
  spec.schema = *schema;
  spec.options.optimization = p.opt;
  spec.options.segment_size = p.segment_size;
  spec.options.segments_per_ring = p.segments_per_ring;
  ASSERT_TRUE(dfi.InitShuffleFlow(std::move(spec)).ok());

  const uint64_t total = p.num_sources * p.tuples_per_source;
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto source = dfi.CreateShuffleSource("prop", s);
      ASSERT_TRUE(source.ok());
      std::vector<uint8_t> buf((*source)->schema().tuple_size(), 0);
      for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
        const uint64_t key = s * p.tuples_per_source + i;
        TupleWriter(buf.data(), &(*source)->schema()).Set<uint64_t>(0, key);
        ASSERT_TRUE((*source)->Push(buf.data()).ok());
      }
      ASSERT_TRUE((*source)->Close().ok());
    });
  }

  std::vector<std::vector<uint64_t>> received(p.num_targets);
  for (uint32_t t = 0; t < p.num_targets; ++t) {
    threads.emplace_back([&, t] {
      auto target = dfi.CreateShuffleTarget("prop", t);
      ASSERT_TRUE(target.ok());
      TupleView tuple;
      while ((*target)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        const uint64_t key = tuple.Get<uint64_t>(0);
        ASSERT_EQ(HashU64(key) % p.num_targets, t)
            << "tuple arrived at wrong partition";
        received[t].push_back(key);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<uint64_t> all;
  for (auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), total) << "lost or duplicated tuples";
  std::sort(all.begin(), all.end());
  for (uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(all[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthGeometry, ShufflePropertyTest,
    ::testing::Values(
        // Vary segment size against a fixed workload.
        GridParam{FlowOptimization::kBandwidth, 64, 4, 1, 1, 0, 3000},
        GridParam{FlowOptimization::kBandwidth, 256, 4, 1, 1, 0, 3000},
        GridParam{FlowOptimization::kBandwidth, 8192, 32, 1, 1, 0, 3000},
        // Tuple sizes that do not divide the segment size.
        GridParam{FlowOptimization::kBandwidth, 256, 4, 1, 1, 16, 2000},
        GridParam{FlowOptimization::kBandwidth, 256, 4, 1, 1, 56, 2000},
        // Minimal ring (hard back-pressure).
        GridParam{FlowOptimization::kBandwidth, 128, 2, 1, 1, 0, 4000}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Topologies, ShufflePropertyTest,
    ::testing::Values(
        GridParam{FlowOptimization::kBandwidth, 512, 8, 2, 1, 0, 2000},  // N:1
        GridParam{FlowOptimization::kBandwidth, 512, 8, 1, 3, 0, 3000},  // 1:N
        GridParam{FlowOptimization::kBandwidth, 512, 8, 3, 3, 0, 1500},  // N:M
        GridParam{FlowOptimization::kBandwidth, 512, 8, 4, 2, 24, 1000}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    LatencyMode, ShufflePropertyTest,
    ::testing::Values(
        GridParam{FlowOptimization::kLatency, 0, 8, 1, 1, 0, 1500},
        GridParam{FlowOptimization::kLatency, 0, 2, 1, 1, 0, 1000},
        GridParam{FlowOptimization::kLatency, 0, 16, 2, 2, 0, 800},
        GridParam{FlowOptimization::kLatency, 0, 8, 1, 1, 40, 800}),
    ParamName);

}  // namespace
}  // namespace dfi
