// FaultPlan: deterministic, virtual-time-scheduled fault injection
// (robustness PR). Two identically-built plans must produce identical
// event traces and identical per-delivery drop decisions — queries are
// pure functions of (plan, seed, virtual time), never of wall-clock
// scheduling.

#include "net/fault_plan.h"

#include <gtest/gtest.h>

namespace dfi::net {
namespace {

void BuildScript(FaultPlan* plan) {
  plan->CrashNode(2, 2'000'000);
  plan->DegradeLink(0, 500'000, 10.0);
  plan->RestoreLink(0, 1'500'000);
  plan->LossBurst(1'000'000, 1'500'000, 0.3);
  plan->Partition({3, 4}, 700'000);
  plan->Heal(900'000);
}

TEST(FaultPlanTest, InactiveByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_TRUE(plan.NodeAlive(0, FaultPlan::kNever - 1));
  EXPECT_EQ(plan.CrashTime(0), FaultPlan::kNever);
  EXPECT_TRUE(plan.Reachable(0, 1, 123));
  EXPECT_EQ(plan.LinkRateFactor(0, 123, 100.0), 1.0);
  EXPECT_EQ(plan.LossBoost(123), 0.0);
  EXPECT_EQ(plan.TraceString(), "");
}

TEST(FaultPlanTest, SamePlanSameSeedYieldsIdenticalTraceAndDecisions) {
  FaultPlan a(42), b(42);
  BuildScript(&a);
  BuildScript(&b);
  ASSERT_NE(a.TraceString(), "");
  EXPECT_EQ(a.TraceString(), b.TraceString());
  // Per-delivery decisions hash (seed, key): identical across instances,
  // independent of how many queries happened before (no shared RNG whose
  // draw order depends on thread timing).
  for (uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(a.ShouldDropDelivery(key, 0.3),
              b.ShouldDropDelivery(key, 0.3));
  }
  // ...and a different seed makes different decisions (statistically).
  FaultPlan c(43);
  BuildScript(&c);
  uint32_t differing = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    differing += a.ShouldDropDelivery(key, 0.3) !=
                 c.ShouldDropDelivery(key, 0.3);
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlanTest, TraceOrdersByVirtualTimeNotInsertion) {
  FaultPlan plan;
  plan.Heal(900);    // inserted first, fires last
  plan.CrashNode(1, 100);
  EXPECT_EQ(plan.TraceString(), "@100ns crash node=1\n@900ns heal\n");
  ASSERT_EQ(plan.Events().size(), 2u);
  EXPECT_EQ(plan.Events()[0].type, FaultEventType::kNodeCrash);
}

TEST(FaultPlanTest, NodeAliveFlipsExactlyAtCrashTime) {
  FaultPlan plan;
  plan.CrashNode(2, 2'000'000);
  EXPECT_TRUE(plan.NodeAlive(2, 1'999'999));
  EXPECT_FALSE(plan.NodeAlive(2, 2'000'000));
  EXPECT_FALSE(plan.NodeAlive(2, FaultPlan::kNever - 1));
  EXPECT_TRUE(plan.NodeAlive(0, 2'000'000)) << "other nodes unaffected";
  EXPECT_EQ(plan.CrashTime(2), 2'000'000);
  // A second crash of the same node keeps the earliest time (fail-stop:
  // a node cannot die twice, the first death wins).
  plan.CrashNode(2, 1'000'000);
  EXPECT_EQ(plan.CrashTime(2), 1'000'000);
  plan.CrashNode(2, 3'000'000);
  EXPECT_EQ(plan.CrashTime(2), 1'000'000);
}

TEST(FaultPlanTest, PartitionSeparatesIslandUntilHeal) {
  FaultPlan plan;
  plan.Partition({3, 4}, 700);
  plan.Heal(900);
  EXPECT_TRUE(plan.Reachable(0, 3, 699)) << "before the partition";
  EXPECT_FALSE(plan.Reachable(0, 3, 700));
  EXPECT_FALSE(plan.Reachable(3, 0, 800)) << "symmetric";
  EXPECT_TRUE(plan.Reachable(3, 4, 800)) << "within the island";
  EXPECT_TRUE(plan.Reachable(0, 1, 800)) << "within the mainland";
  EXPECT_TRUE(plan.Reachable(0, 3, 900)) << "healed";
  EXPECT_TRUE(plan.Reachable(5, 5, 800)) << "self always reachable";
}

TEST(FaultPlanTest, LinkRateFactorFollowsDegradeAndRestore) {
  FaultPlan plan;
  plan.DegradeLink(0, 500, 10.0);
  plan.RestoreLink(0, 1500);
  EXPECT_EQ(plan.LinkRateFactor(0, 499, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.LinkRateFactor(0, 500, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(plan.LinkRateFactor(0, 1499, 100.0), 0.1);
  EXPECT_EQ(plan.LinkRateFactor(0, 1500, 100.0), 1.0);
  EXPECT_EQ(plan.LinkRateFactor(1, 800, 100.0), 1.0) << "other node";
}

TEST(FaultPlanTest, LossBoostCoversBurstWindowOnly) {
  FaultPlan plan;
  plan.LossBurst(1000, 1500, 0.3);
  plan.LossBurst(1200, 1300, 0.1);  // overlapping weaker burst
  EXPECT_EQ(plan.LossBoost(999), 0.0);
  EXPECT_DOUBLE_EQ(plan.LossBoost(1000), 0.3);
  EXPECT_DOUBLE_EQ(plan.LossBoost(1250), 0.3) << "strongest burst wins";
  EXPECT_DOUBLE_EQ(plan.LossBoost(1499), 0.3);
  EXPECT_EQ(plan.LossBoost(1500), 0.0) << "half-open interval";
}

TEST(FaultPlanTest, DropDecisionsMatchProbabilityRoughly) {
  FaultPlan plan(7);
  uint32_t dropped = 0;
  const uint32_t n = 20000;
  for (uint64_t key = 0; key < n; ++key) {
    if (plan.ShouldDropDelivery(key, 0.2)) ++dropped;
  }
  EXPECT_NEAR(dropped / static_cast<double>(n), 0.2, 0.02);
  EXPECT_FALSE(plan.ShouldDropDelivery(1, 0.0));
  EXPECT_TRUE(plan.ShouldDropDelivery(1, 1.0));
}

}  // namespace
}  // namespace dfi::net
