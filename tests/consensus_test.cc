#include "apps/consensus/consensus.h"

#include <gtest/gtest.h>

#include "apps/consensus/kv_store.h"
#include "apps/consensus/messages.h"

namespace dfi::consensus {
namespace {

TEST(KvStoreTest, PutGet) {
  KvStore kv;
  Value v;
  v.fill(9);
  kv.Put(42, v);
  Value out;
  EXPECT_TRUE(kv.Get(42, &out));
  EXPECT_EQ(out, v);
  EXPECT_FALSE(kv.Get(43, &out));
  for (uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(MessagesTest, SchemasMatchStructLayouts) {
  EXPECT_EQ(Command::MakeSchema().tuple_size(), sizeof(Command));
  EXPECT_EQ(Reply::MakeSchema().tuple_size(), sizeof(Reply));
  EXPECT_EQ(Proposal::MakeSchema().tuple_size(), sizeof(Proposal));
  EXPECT_EQ(Vote::MakeSchema().tuple_size(), sizeof(Vote));
  EXPECT_EQ(sizeof(Command), 64u) << "paper: 64-byte requests";
}

class ConsensusTest : public ::testing::Test {
 protected:
  ConsensusConfig SmallConfig() {
    ConsensusConfig cfg;
    cfg.requests_per_client = 300;
    return cfg;
  }

  std::vector<std::string> SetUpNodes(net::Fabric* fabric,
                                      const ConsensusConfig& cfg) {
    std::vector<std::string> addrs;
    for (net::NodeId id :
         fabric->AddNodes(cfg.num_replicas + cfg.num_client_nodes)) {
      addrs.push_back(fabric->node(id).address());
    }
    return addrs;
  }
};

TEST_F(ConsensusTest, MultiPaxosCompletesAllRequests) {
  net::Fabric fabric;
  const ConsensusConfig cfg = SmallConfig();
  auto addrs = SetUpNodes(&fabric, cfg);
  DfiRuntime dfi(&fabric);
  auto result = RunMultiPaxos(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed,
            uint64_t{cfg.num_clients} * cfg.requests_per_client);
  EXPECT_GT(result->throughput_rps, 0);
  EXPECT_GT(result->median_latency_ns, 0);
  EXPECT_GE(result->p95_latency_ns, result->median_latency_ns);
}

TEST_F(ConsensusTest, NoPaxosCompletesAllRequests) {
  net::Fabric fabric;
  const ConsensusConfig cfg = SmallConfig();
  auto addrs = SetUpNodes(&fabric, cfg);
  DfiRuntime dfi(&fabric);
  auto result = RunNoPaxos(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed,
            uint64_t{cfg.num_clients} * cfg.requests_per_client);
  EXPECT_GT(result->median_latency_ns, 0);
}

TEST_F(ConsensusTest, DareCompletesAllRequests) {
  net::Fabric fabric;
  const ConsensusConfig cfg = SmallConfig();
  auto addrs = SetUpNodes(&fabric, cfg);
  DfiRuntime dfi(&fabric);
  auto result = RunDare(&dfi, addrs, cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->completed,
            uint64_t{cfg.num_clients} * cfg.requests_per_client);
}

TEST_F(ConsensusTest, DfiSystemsOutperformDare) {
  // The headline of Figure 15: both DFI-based implementations consistently
  // beat DARE in throughput (sequential clients + serializing write
  // protocol cap DARE).
  const ConsensusConfig cfg = SmallConfig();
  double dare_rps, paxos_rps, nopaxos_rps;
  {
    net::Fabric f;
    auto addrs = SetUpNodes(&f, cfg);
    DfiRuntime dfi(&f);
    auto r = RunDare(&dfi, addrs, cfg);
    ASSERT_TRUE(r.ok());
    dare_rps = r->throughput_rps;
  }
  {
    net::Fabric f;
    auto addrs = SetUpNodes(&f, cfg);
    DfiRuntime dfi(&f);
    auto r = RunMultiPaxos(&dfi, addrs, cfg);
    ASSERT_TRUE(r.ok());
    paxos_rps = r->throughput_rps;
  }
  {
    net::Fabric f;
    auto addrs = SetUpNodes(&f, cfg);
    DfiRuntime dfi(&f);
    auto r = RunNoPaxos(&dfi, addrs, cfg);
    ASSERT_TRUE(r.ok());
    nopaxos_rps = r->throughput_rps;
  }
  EXPECT_GT(paxos_rps, dare_rps);
  EXPECT_GT(nopaxos_rps, dare_rps);
}

TEST_F(ConsensusTest, ValidatesReplicaCount) {
  net::Fabric fabric;
  ConsensusConfig cfg = SmallConfig();
  cfg.num_replicas = 4;  // even: no clean majority
  fabric.AddNodes(cfg.num_replicas + cfg.num_client_nodes);
  std::vector<std::string> addrs;
  for (uint32_t i = 0; i < cfg.num_replicas + cfg.num_client_nodes; ++i) {
    addrs.push_back(fabric.node(i).address());
  }
  DfiRuntime dfi(&fabric);
  EXPECT_EQ(RunMultiPaxos(&dfi, addrs, cfg).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunNoPaxos(&dfi, addrs, cfg).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunDare(&dfi, addrs, cfg).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dfi::consensus
