#include "common/units.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(UnitsTest, GbpsToBytesPerNs) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerNs(100.0), 12.5);
  EXPECT_DOUBLE_EQ(GbpsToBytesPerNs(8.0), 1.0);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(8 * kKiB), "8 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3 MiB");
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(FormatBandwidth(1024.0 * 1024 * 1024), "1 GiB/s");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(1500 * kMicrosecond), "1.50 ms");
  EXPECT_EQ(FormatDuration(25 * kSecond / 10), "2.50 s") << "2.5 seconds";
}

}  // namespace
}  // namespace dfi
