// Property sweep over combiner flows: for any aggregation function, group
// count, source count and optimization mode, the flow's aggregates must
// equal a scalar reference computed over the same input.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "core/combiner_flow.h"
#include "core/dfi_runtime.h"

namespace dfi {
namespace {

struct CombinerParam {
  AggFunc func;
  uint32_t num_sources;
  uint32_t target_threads;
  uint64_t groups;
  FlowOptimization opt;
  uint64_t tuples_per_source;
};

std::string ParamName(const ::testing::TestParamInfo<CombinerParam>& info) {
  const CombinerParam& p = info.param;
  std::string s;
  switch (p.func) {
    case AggFunc::kSum:
      s = "sum";
      break;
    case AggFunc::kCount:
      s = "count";
      break;
    case AggFunc::kMin:
      s = "min";
      break;
    case AggFunc::kMax:
      s = "max";
      break;
  }
  s += "_n" + std::to_string(p.num_sources);
  s += "_t" + std::to_string(p.target_threads);
  s += "_g" + std::to_string(p.groups);
  s += p.opt == FlowOptimization::kBandwidth ? "_bw" : "_lat";
  return s;
}

int64_t ValueFor(uint32_t source, uint64_t i) {
  // Deterministic, sign-varying values exercise min/max properly.
  return static_cast<int64_t>((source * 37 + i * 13) % 1001) - 500;
}

class CombinerProperty : public ::testing::TestWithParam<CombinerParam> {};

TEST_P(CombinerProperty, MatchesScalarReference) {
  const CombinerParam& p = GetParam();
  net::Fabric fabric;
  fabric.AddNodes(p.num_sources + 1);
  DfiRuntime dfi(&fabric);

  CombinerFlowSpec spec;
  spec.name = "prop";
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    spec.sources.Append(Endpoint{fabric.node(1 + s).address(), 0});
  }
  for (uint32_t t = 0; t < p.target_threads; ++t) {
    spec.targets.Append(Endpoint{fabric.node(0).address(), t});
  }
  spec.schema =
      Schema{{"key", DataType::kUInt64}, {"value", DataType::kInt64}};
  spec.group_by_index = 0;
  spec.aggregates = {{p.func, 1}};
  spec.options.optimization = p.opt;
  ASSERT_TRUE(dfi.InitCombinerFlow(std::move(spec)).ok());

  // Scalar reference.
  std::map<uint64_t, double> reference;
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
      const uint64_t key = (s + i) % p.groups;
      const double v = static_cast<double>(ValueFor(s, i));
      auto [it, inserted] = reference.try_emplace(key);
      switch (p.func) {
        case AggFunc::kSum:
          it->second += v;
          break;
        case AggFunc::kCount:
          it->second += 1;
          break;
        case AggFunc::kMin:
          it->second = inserted ? v : std::min(it->second, v);
          break;
        case AggFunc::kMax:
          it->second = inserted ? v : std::max(it->second, v);
          break;
      }
    }
  }

  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < p.num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto src = dfi.CreateCombinerSource("prop", s);
      ASSERT_TRUE(src.ok());
      struct {
        uint64_t key;
        int64_t value;
      } tuple;
      for (uint64_t i = 0; i < p.tuples_per_source; ++i) {
        tuple.key = (s + i) % p.groups;
        tuple.value = ValueFor(s, i);
        ASSERT_TRUE((*src)->Push(&tuple).ok());
      }
      ASSERT_TRUE((*src)->Close().ok());
    });
  }
  std::mutex mu;
  std::map<uint64_t, double> measured;
  for (uint32_t t = 0; t < p.target_threads; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi.CreateCombinerTarget("prop", t);
      ASSERT_TRUE(tgt.ok());
      AggRow row;
      std::map<uint64_t, double> local;
      while ((*tgt)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
        local[row.group_key] = row.values[0];
      }
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [k, v] : local) {
        ASSERT_EQ(measured.count(k), 0u) << "group on two target threads";
        measured[k] = v;
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(measured.size(), reference.size());
  for (auto& [key, expected] : reference) {
    ASSERT_TRUE(measured.count(key)) << "group " << key;
    EXPECT_DOUBLE_EQ(measured[key], expected) << "group " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, CombinerProperty,
    ::testing::Values(
        CombinerParam{AggFunc::kSum, 2, 1, 13, FlowOptimization::kBandwidth,
                      3000},
        CombinerParam{AggFunc::kCount, 2, 1, 13,
                      FlowOptimization::kBandwidth, 3000},
        CombinerParam{AggFunc::kMin, 2, 1, 13, FlowOptimization::kBandwidth,
                      3000},
        CombinerParam{AggFunc::kMax, 2, 1, 13, FlowOptimization::kBandwidth,
                      3000}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Shapes, CombinerProperty,
    ::testing::Values(
        CombinerParam{AggFunc::kSum, 1, 1, 1, FlowOptimization::kBandwidth,
                      2000},
        CombinerParam{AggFunc::kSum, 4, 2, 64, FlowOptimization::kBandwidth,
                      2000},
        CombinerParam{AggFunc::kSum, 3, 4, 200,
                      FlowOptimization::kBandwidth, 1500},
        CombinerParam{AggFunc::kMax, 2, 2, 32, FlowOptimization::kLatency,
                      500},
        CombinerParam{AggFunc::kSum, 1, 1, 7, FlowOptimization::kLatency,
                      800}),
    ParamName);

}  // namespace
}  // namespace dfi
