#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace dfi {
namespace {

TEST(XorshiftTest, DeterministicForSeed) {
  Xorshift128Plus a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XorshiftTest, DifferentSeedsDiffer) {
  Xorshift128Plus a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(XorshiftTest, NextBelowInRange) {
  Xorshift128Plus rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(XorshiftTest, NextDoubleInUnitInterval) {
  Xorshift128Plus rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XorshiftTest, NextBoolFrequency) {
  Xorshift128Plus rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(10, 0.0, 3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[zipf.Next()];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 200);
  }
}

TEST(ZipfTest, SkewPrefersLowKeys) {
  ZipfGenerator zipf(1000, 0.99, 5);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[zipf.Next()];
  }
  // Key 0 must be far more frequent than the tail.
  EXPECT_GT(counts[0], 20 * (counts[500] + 1));
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(37, 0.5, 8);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Next(), 37u);
  }
}

}  // namespace
}  // namespace dfi
