#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace dfi {
namespace {

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now(), 150);
}

TEST(VirtualClockTest, AdvanceToIsMaxJoin) {
  VirtualClock clock;
  clock.Advance(100);
  clock.AdvanceTo(80);  // behind: no-op
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(250);
  EXPECT_EQ(clock.now(), 250);
}

#ifdef NDEBUG
TEST(VirtualClockTest, NegativeAdvanceClampsInRelease) {
  VirtualClock clock;
  clock.Advance(100);
  clock.Advance(-500);  // would wrap the timeline; clamped to no charge
  EXPECT_EQ(clock.now(), 100);
}
#else
TEST(VirtualClockDeathTest, NegativeAdvanceAssertsInDebug) {
  VirtualClock clock;
  clock.Advance(100);
  EXPECT_DEATH(clock.Advance(-1), "negative delta");
}
#endif

TEST(VirtualClockTest, ResetRestarts) {
  VirtualClock clock(500);
  EXPECT_EQ(clock.now(), 500);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

}  // namespace
}  // namespace dfi
