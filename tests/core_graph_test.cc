#include "core/graph/graph.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/dfi.h"
#include "core/graph/executor.h"

namespace dfi::graph {
namespace {

Schema TwoFieldSchema() {
  return Schema{{"key", DataType::kUInt64}, {"val", DataType::kUInt64}};
}

std::vector<std::string> MakeCluster(net::Fabric* fabric, size_t n) {
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric->AddNodes(n)) {
    addrs.push_back(fabric->node(id).address());
  }
  return addrs;
}

/// First diagnostic with `code`, or nullptr.
const Diagnostic* FindDiag(const std::vector<Diagnostic>& diags,
                           DiagCode code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

VertexSpec Source(const std::string& name, const DfiNodes& workers) {
  VertexSpec v;
  v.name = name;
  v.kind = OpKind::kSource;
  v.workers = workers;
  v.output = {TwoFieldSchema(), Ordering::kNone};
  v.source_fn = [](OpContext&, const EmitFn& emit) -> Status {
    const uint64_t tuple[2] = {1, 1};
    return emit(tuple);
  };
  return v;
}

VertexSpec Sink(const std::string& name, const DfiNodes& workers) {
  VertexSpec v;
  v.name = name;
  v.kind = OpKind::kSink;
  v.workers = workers;
  v.tuple_sink = [](OpContext&, TupleView) { return Status::OK(); };
  return v;
}

EdgeSpec Shuffle(const std::string& name, const std::string& from,
                 const std::string& to) {
  EdgeSpec e;
  e.name = name;
  e.from = from;
  e.to = to;
  e.kind = EdgeKind::kShuffle;
  e.type = {TwoFieldSchema(), Ordering::kNone};
  return e;
}

class GraphBuildTest : public ::testing::Test {
 protected:
  GraphBuildTest() : addrs_(MakeCluster(&fabric_, 2)) {
    workers_ = DfiNodes::GridOf(addrs_, 2);
  }

  /// A well-typed source -> sink graph the tests then break one way each.
  GraphSpec BaseSpec() {
    GraphSpec gs;
    gs.name = "g";
    gs.vertices = {Source("src", workers_), Sink("snk", workers_)};
    gs.edges = {Shuffle("g.edge", "src", "snk")};
    return gs;
  }

  net::Fabric fabric_;
  std::vector<std::string> addrs_;
  DfiNodes workers_;
};

TEST_F(GraphBuildTest, WellTypedGraphBuilds) {
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(BaseSpec(), &fabric_, &diags);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_TRUE(diags.empty());
  // Static shuffle delivers per-channel FIFO end to end.
  EXPECT_EQ(g->edge_info(0).delivered, Ordering::kPerChannel);
  EXPECT_EQ(g->FindVertex("snk"), 1);
  EXPECT_EQ(g->FindEdge("g.edge"), 0);
  EXPECT_EQ(g->vertex_info(0).produced.num_fields(), 2u);
}

TEST_F(GraphBuildTest, SchemaMismatchNamesVertexAndEdge) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].type.schema = Schema{{"key", DataType::kUInt64},
                                   {"payload", DataType::kUInt64}};
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  const Diagnostic* d = FindDiag(diags, DiagCode::kSchemaMismatch);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "src");
  EXPECT_EQ(d->edge, "g.edge");
  EXPECT_NE(d->message.find("'val'"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("'payload'"), std::string::npos) << d->message;
}

TEST_F(GraphBuildTest, OrderedEdgeWithoutSequencerRejected) {
  // A replicate edge can only promise one total order via the OUM
  // sequencer (multicast + global_ordering); requiring kGlobal without it
  // must fail with the reason spelled out.
  GraphSpec gs = BaseSpec();
  gs.edges[0].kind = EdgeKind::kReplicate;
  gs.edges[0].type.ordering = Ordering::kGlobal;
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kOrderingUnsatisfied);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->edge, "g.edge");
  EXPECT_NE(d->message.find("sequencer"), std::string::npos) << d->message;
}

TEST_F(GraphBuildTest, OrderedEdgeWithSequencerAccepted) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].kind = EdgeKind::kReplicate;
  gs.edges[0].type.ordering = Ordering::kGlobal;
  gs.edges[0].options.use_multicast = true;
  gs.edges[0].options.global_ordering = true;
  auto g = Graph::Build(std::move(gs), &fabric_);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->edge_info(0).delivered, Ordering::kGlobal);
}

TEST_F(GraphBuildTest, AdaptiveOnNonKeyHashRoutingRejected) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].options.adaptive.enabled = true;
  gs.edges[0].routing = RoutingSpec::Radix(0, 0, 4);
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  const Diagnostic* d = FindDiag(diags, DiagCode::kAdaptiveRouting);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "src");
  EXPECT_EQ(d->edge, "g.edge");
}

TEST_F(GraphBuildTest, AdaptiveEdgeCannotPromisePerChannelOrder) {
  // Adaptive re-splitting breaks per-(source, key) FIFO unless the ordered
  // hand-off is on; requiring kPerChannel must name the reason.
  GraphSpec gs = BaseSpec();
  gs.edges[0].options.adaptive.enabled = true;
  gs.edges[0].type.ordering = Ordering::kPerChannel;
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kOrderingUnsatisfied);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_NE(d->message.find("ordered_handoff"), std::string::npos)
      << d->message;
  // The ordered hand-off restores the guarantee.
  GraphSpec fixed = BaseSpec();
  fixed.edges[0].options.adaptive.enabled = true;
  fixed.edges[0].options.adaptive.ordered_handoff = true;
  fixed.edges[0].type.ordering = Ordering::kPerChannel;
  EXPECT_TRUE(Graph::Build(std::move(fixed), &fabric_).ok());
}

TEST_F(GraphBuildTest, CombinerSpanningNodesNeedsOptIn) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].kind = EdgeKind::kCombiner;
  gs.edges[0].aggregates = {{AggFunc::kSum, 1}};
  gs.vertices[1].kind = OpKind::kAggregate;  // combiner in edge, no out
  std::vector<Diagnostic> diags;
  // The sink ("snk") spans both fabric nodes without the opt-in.
  auto g = Graph::Build(gs, &fabric_, &diags);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
  const Diagnostic* d = FindDiag(diags, DiagCode::kCombinerTopology);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "snk");
  EXPECT_EQ(d->edge, "g.edge");
  EXPECT_NE(d->message.find("multi_node_targets"), std::string::npos);
  // Opting in fixes it; so does a single-node placement.
  gs.edges[0].multi_node_targets = true;
  EXPECT_TRUE(Graph::Build(gs, &fabric_).ok());
  gs.edges[0].multi_node_targets = false;
  gs.vertices[1].workers = DfiNodes::GridOf({addrs_[0]}, 2);
  EXPECT_TRUE(Graph::Build(std::move(gs), &fabric_).ok());
}

TEST_F(GraphBuildTest, CombinerWithoutAggregatesRejected) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].kind = EdgeKind::kCombiner;
  gs.vertices[1].kind = OpKind::kAggregate;
  gs.vertices[1].workers = DfiNodes::GridOf({addrs_[0]}, 2);
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(FindDiag(diags, DiagCode::kNoAggregates), nullptr) << g.status();
}

TEST_F(GraphBuildTest, ShuffleKeyOutOfRangeRejected) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].key_index = 7;
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kKeyOutOfRange);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->edge, "g.edge");
}

TEST_F(GraphBuildTest, UnknownVertexNamed) {
  GraphSpec gs = BaseSpec();
  gs.edges[0].to = "nowhere";
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kUnknownVertex);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "nowhere");
  EXPECT_EQ(d->edge, "g.edge");
}

TEST_F(GraphBuildTest, DuplicateNamesRejected) {
  GraphSpec gs = BaseSpec();
  gs.vertices.push_back(Source("src", workers_));
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kDuplicateName);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "src");
}

TEST_F(GraphBuildTest, ArityViolationNamed) {
  // A source with two out edges.
  GraphSpec gs = BaseSpec();
  gs.vertices.push_back(Sink("snk2", workers_));
  gs.edges.push_back(Shuffle("g.edge2", "src", "snk2"));
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kArity);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "src");
}

TEST_F(GraphBuildTest, MissingBodyNamed) {
  GraphSpec gs = BaseSpec();
  gs.vertices[1].tuple_sink = nullptr;
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kMissingBody);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "snk");
}

TEST_F(GraphBuildTest, CycleDetected) {
  GraphSpec gs;
  gs.name = "loop";
  VertexSpec a, b;
  a.name = "a";
  a.kind = OpKind::kCustom;
  a.workers = workers_;
  a.output = {TwoFieldSchema(), Ordering::kNone};
  b = a;
  b.name = "b";
  gs.vertices = {a, b};
  gs.edges = {Shuffle("ab", "a", "b"), Shuffle("ba", "b", "a")};
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(FindDiag(diags, DiagCode::kCycle), nullptr) << g.status();
}

TEST_F(GraphBuildTest, OrderingComposesAcrossStages) {
  // src -> (combiner) -> agg -> (replicate requiring kPerChannel): the
  // combiner edge erases all order upstream of the aggregate, so even
  // though a naive replicate transport delivers per-channel FIFO on its
  // own, the composed guarantee is kNone and the requirement must fail.
  GraphSpec gs;
  gs.name = "chain";
  gs.vertices = {Source("src", workers_)};
  VertexSpec agg;
  agg.name = "agg";
  agg.kind = OpKind::kAggregate;
  agg.workers = DfiNodes::GridOf({addrs_[0]}, 2);
  gs.vertices.push_back(std::move(agg));
  gs.vertices.push_back(Sink("snk", workers_));
  EdgeSpec fold = Shuffle("chain.fold", "src", "agg");
  fold.kind = EdgeKind::kCombiner;
  fold.aggregates = {{AggFunc::kSum, 1}};
  EdgeSpec fan = Shuffle("chain.fan", "agg", "snk");
  fan.kind = EdgeKind::kReplicate;
  fan.type.schema = Schema{{"group", DataType::kUInt64},
                           {"a0", DataType::kDouble}};
  fan.type.ordering = Ordering::kPerChannel;
  gs.edges = {std::move(fold), std::move(fan)};

  std::vector<Diagnostic> diags;
  auto g = Graph::Build(gs, &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kOrderingUnsatisfied);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->edge, "chain.fan");
  // Dropping the requirement builds, and the resolved info shows why: the
  // aggregate's input ordering is kNone (combiner), which caps the
  // replicate edge's delivered ordering.
  gs.edges[1].type.ordering = Ordering::kNone;
  auto ok = Graph::Build(std::move(gs), &fabric_);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->vertex_info(ok->FindVertex("agg")).input_ordering,
            Ordering::kNone);
  EXPECT_EQ(ok->edge_info(ok->FindEdge("chain.fan")).delivered,
            Ordering::kNone);
}

TEST_F(GraphBuildTest, AggregateDerivesRowSchema) {
  GraphSpec gs;
  gs.name = "rows";
  gs.vertices = {Source("src", workers_)};
  VertexSpec agg;
  agg.name = "agg";
  agg.kind = OpKind::kAggregate;
  agg.workers = DfiNodes::GridOf({addrs_[0]}, 1);
  gs.vertices.push_back(std::move(agg));
  EdgeSpec fold = Shuffle("rows.fold", "src", "agg");
  fold.kind = EdgeKind::kCombiner;
  fold.aggregates = {{AggFunc::kCount, 0}, {AggFunc::kSum, 1}};
  gs.edges = {std::move(fold)};
  auto g = Graph::Build(std::move(gs), &fabric_);
  ASSERT_TRUE(g.ok()) << g.status();
  const Schema& rows = g->vertex_info(g->FindVertex("agg")).produced;
  ASSERT_EQ(rows.num_fields(), 3u);
  EXPECT_EQ(rows.field(0).name, "group");
  EXPECT_EQ(rows.field(1).name, "a0");
  EXPECT_EQ(rows.field(2).type, DataType::kDouble);
}

TEST_F(GraphBuildTest, WindowKeyOutOfRangeNamed) {
  GraphSpec gs = BaseSpec();
  VertexSpec win;
  win.name = "win";
  win.kind = OpKind::kWindow;
  win.workers = workers_;
  win.window.seq_field = 9;
  gs.vertices.push_back(std::move(win));
  gs.edges[0].to = "win";
  gs.edges.push_back(Shuffle("g.out", "win", "snk"));
  std::vector<Diagnostic> diags;
  auto g = Graph::Build(std::move(gs), &fabric_, &diags);
  ASSERT_FALSE(g.ok());
  const Diagnostic* d = FindDiag(diags, DiagCode::kKeyOutOfRange);
  ASSERT_NE(d, nullptr) << g.status();
  EXPECT_EQ(d->vertex, "win");
}

TEST(GraphRunTest, SourceTransformSinkDeliversEverything) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  const DfiNodes workers = DfiNodes::GridOf(addrs, 2);
  constexpr uint64_t kPerSource = 512;

  GraphSpec gs;
  gs.name = "e2e";
  VertexSpec src;
  src.name = "src";
  src.kind = OpKind::kSource;
  src.workers = workers;
  src.output = {TwoFieldSchema(), Ordering::kNone};
  src.source_fn = [&](OpContext& ctx, const EmitFn& emit) -> Status {
    for (uint64_t i = 0; i < kPerSource; ++i) {
      const uint64_t tuple[2] = {ctx.worker * kPerSource + i, 1};
      DFI_RETURN_IF_ERROR(emit(tuple));
    }
    return Status::OK();
  };
  VertexSpec map;
  map.name = "map";
  map.kind = OpKind::kTransform;
  map.workers = workers;
  map.output = {TwoFieldSchema(), Ordering::kNone};
  map.transform_fn = [](OpContext&, TupleView in,
                        const EmitFn& emit) -> Status {
    const uint64_t tuple[2] = {in.Get<uint64_t>(0), in.Get<uint64_t>(1) * 2};
    return emit(tuple);
  };
  std::atomic<uint64_t> sum{0};
  VertexSpec snk;
  snk.name = "snk";
  snk.kind = OpKind::kSink;
  snk.workers = workers;
  snk.tuple_sink = [&sum](OpContext&, TupleView t) {
    sum.fetch_add(t.Get<uint64_t>(1));
    return Status::OK();
  };
  gs.vertices = {std::move(src), std::move(map), std::move(snk)};
  gs.edges = {Shuffle("e2e.in", "src", "map"),
              Shuffle("e2e.out", "map", "snk")};

  auto g = Graph::Build(std::move(gs), &dfi.fabric());
  ASSERT_TRUE(g.ok()) << g.status();
  auto run = g->Instantiate(&dfi);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_TRUE((*run)->Start().ok());
  ASSERT_TRUE((*run)->Finish().ok()) << (*run)->status();

  const uint64_t total = 4 * kPerSource;  // 4 source workers
  EXPECT_EQ((*run)->stats("src").tuples_out, total);
  EXPECT_EQ((*run)->stats("map").tuples_in, total);
  EXPECT_EQ((*run)->stats("map").tuples_out, total);
  EXPECT_EQ((*run)->stats("snk").tuples_in, total);
  EXPECT_EQ(sum.load(), 2 * total);
  EXPECT_GT((*run)->stats("snk").max_clock, 0);
}

TEST(GraphRunTest, InstantiateRegistersAndFinishRemovesFlows) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  const DfiNodes workers = DfiNodes::GridOf(addrs, 1);
  GraphSpec gs;
  gs.name = "reg";
  VertexSpec src = [&] {
    VertexSpec v;
    v.name = "src";
    v.kind = OpKind::kSource;
    v.workers = workers;
    v.output = {TwoFieldSchema(), Ordering::kNone};
    v.source_fn = [](OpContext&, const EmitFn&) { return Status::OK(); };
    return v;
  }();
  VertexSpec snk = [&] {
    VertexSpec v;
    v.name = "snk";
    v.kind = OpKind::kSink;
    v.workers = workers;
    v.tuple_sink = [](OpContext&, TupleView) { return Status::OK(); };
    return v;
  }();
  gs.vertices = {std::move(src), std::move(snk)};
  gs.edges = {Shuffle("reg.flow", "src", "snk")};
  auto g = Graph::Build(std::move(gs), &dfi.fabric());
  ASSERT_TRUE(g.ok()) << g.status();
  auto run = g->Instantiate(&dfi);
  ASSERT_TRUE(run.ok()) << run.status();
  // The batched publish made the flow retrievable while the run is live.
  EXPECT_TRUE(dfi.registry_client().Retrieve("reg.flow").ok());
  ASSERT_TRUE((*run)->Start().ok());
  EXPECT_TRUE((*run)->Finish().ok());
  EXPECT_FALSE(dfi.registry_client().Retrieve("reg.flow").ok());
}

}  // namespace
}  // namespace dfi::graph
