#include "core/segment.h"

#include <gtest/gtest.h>

#include <vector>

namespace dfi {
namespace {

TEST(SegmentFooterTest, LayoutIsWireFormat) {
  EXPECT_EQ(sizeof(SegmentFooter), 24u);
  SegmentFooter f;
  EXPECT_EQ(f.flags, kFlagWritable);
  EXPECT_FALSE(f.consumable());
  f.flags = kFlagConsumable;
  EXPECT_TRUE(f.consumable());
  EXPECT_FALSE(f.end_of_flow());
  f.flags = kFlagConsumable | kFlagEndOfFlow;
  EXPECT_TRUE(f.end_of_flow());
}

TEST(SegmentRingTest, GeometryAndAddressing) {
  std::vector<uint8_t> mem(4 * (1024 + sizeof(SegmentFooter)));
  SegmentRing ring(mem.data(), 1024, 4);
  EXPECT_EQ(ring.slot_bytes(), 1024 + 24u);
  EXPECT_EQ(ring.total_bytes(), 4 * (1024 + 24u));
  EXPECT_EQ(ring.payload(0), mem.data());
  EXPECT_EQ(ring.payload(1), mem.data() + 1048);
  EXPECT_EQ(reinterpret_cast<uint8_t*>(ring.footer(0)),
            mem.data() + 1024);
  EXPECT_EQ(ring.slot_offset(2), 2 * 1048u);
  EXPECT_EQ(ring.footer_offset(2), 2 * 1048u + 1024);
}

TEST(SegmentRingTest, FlagsRoundTripWithDmaSemantics) {
  std::vector<uint8_t> mem(2 * (64 + sizeof(SegmentFooter)));
  SegmentRing ring(mem.data(), 64, 2);
  EXPECT_EQ(ring.LoadFlags(0), kFlagWritable);
  ring.footer(0)->fill_bytes = 48;
  ring.StoreFlags(0, kFlagConsumable);
  EXPECT_EQ(ring.LoadFlags(0), kFlagConsumable);
  EXPECT_EQ(ring.footer(0)->fill_bytes, 48u);
  EXPECT_EQ(ring.LoadFlags(1), kFlagWritable) << "slots independent";
}

TEST(SegmentRingTest, FooterIsEightAlignedWithinSlot) {
  // Payload capacities are forced to multiples of 8 so the footer (and its
  // atomic final byte's containing word) stay aligned.
  std::vector<uint8_t> mem(3 * (8 + sizeof(SegmentFooter)));
  SegmentRing ring(mem.data(), 8, 3);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ring.footer(i)) % 8, 0u)
        << "footer " << i;
  }
}

}  // namespace
}  // namespace dfi
