// Ablation: the segment size is DFI's central tuning knob between
// bandwidth and latency (paper section 5.1: "the segment size is a tuning
// parameter that allows DFI to either optimize for bandwidth or latency
// independent of the tuple sizes used by the application").
//
// This sweep measures, for a 1:1 flow with 64 B tuples:
//   * sustained throughput (large transfer), and
//   * first-tuple delivery latency (time until a single pushed tuple is
//     consumable at the target, including the fill-the-batch wait),
// across segment sizes 256 B .. 64 KiB, plus the effect of the source-ring
// depth (selective-signaling frequency).

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kTupleSize = 64;
constexpr uint64_t kTableBytes = 32 * kMiB;

double Throughput(uint32_t segment_size, uint32_t source_segments) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "ab";
  spec.sources.Append(Endpoint{addrs[0], 0});
  spec.targets.Append(Endpoint{addrs[1], 0});
  spec.schema = PaddedSchema(kTupleSize);
  spec.options.segment_size = segment_size;
  spec.options.source_segments = source_segments;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  std::thread producer([&] {
    auto src = dfi.CreateShuffleSource("ab", 0);
    std::vector<uint8_t> buf(kTupleSize, 0);
    for (uint64_t i = 0; i < kTableBytes / kTupleSize; ++i) {
      TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
      DFI_CHECK_OK((*src)->Push(buf.data()));
    }
    DFI_CHECK_OK((*src)->Close());
  });
  auto tgt = dfi.CreateShuffleTarget("ab", 0);
  SegmentView seg;
  while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
  }
  producer.join();
  return static_cast<double>(kTableBytes) /
         static_cast<double>((*tgt)->clock().now());
}

/// Virtual time until the FIRST tuple of a steady stream (one push every
/// 100 ns) is consumable at the target: the batch-fill wait a tuple pays
/// before its segment ships — the latency half of the tradeoff.
SimTime FirstTupleLatency(uint32_t segment_size) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "ab";
  spec.sources.Append(Endpoint{addrs[0], 0});
  spec.targets.Append(Endpoint{addrs[1], 0});
  spec.schema = PaddedSchema(kTupleSize);
  spec.options.segment_size = segment_size;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  std::thread producer([&] {
    auto src = dfi.CreateShuffleSource("ab", 0);
    std::vector<uint8_t> buf(kTupleSize, 1);
    // Enough tuples to fill several segments of the largest setting.
    for (uint64_t i = 0; i < 4 * 65536 / kTupleSize; ++i) {
      (*src)->clock().Advance(100);  // application produces one per 100 ns
      TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
      DFI_CHECK_OK((*src)->Push(buf.data()));
    }
    DFI_CHECK_OK((*src)->Close());
  });
  auto tgt = dfi.CreateShuffleTarget("ab", 0);
  TupleView tuple;
  DFI_CHECK((*tgt)->Consume(&tuple) == ConsumeResult::kOk);
  const SimTime latency = (*tgt)->clock().now();
  while ((*tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
  }
  producer.join();
  return latency;
}

void Run() {
  PrintSection(
      "Ablation: segment size — bandwidth vs delivery latency "
      "(1:1 flow, 64 B tuples)");
  TablePrinter table({"segment size", "throughput", "first-tuple latency"});
  for (uint32_t seg : {256u, 1024u, 4096u, 8192u, 16384u, 65536u}) {
    table.AddRow({FormatBytes(seg), Rate(Throughput(seg, 4) * 1e9,
                                         1'000'000'000),
                  Micros(FirstTupleLatency(seg))});
  }
  table.Print();
  std::printf(
      "(larger segments amortize per-segment costs -> higher throughput,\n"
      " but a tuple waits longer for its batch; 8 KiB is the default\n"
      " sweet spot the paper chose)\n");

  PrintSection(
      "Ablation: source-ring depth (selective-signaling frequency), "
      "8 KiB segments");
  TablePrinter table2({"source segments", "throughput"});
  for (uint32_t ss : {2u, 4u, 8u, 16u}) {
    table2.AddRow({std::to_string(ss),
                   Rate(Throughput(8192, ss) * 1e9, 1'000'000'000)});
  }
  table2.Print();
  std::printf(
      "(the source ring bounds in-flight unsignaled writes; very shallow\n"
      " rings stall on completion reaping at each wrap-around)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
