// Flagship graph-layer pipeline (DESIGN.md §14): ingest sources feed a
// skew-adaptive shuffle into windowed combiner aggregation whose rows are
// replicated to one subscriber per node —
//
//   ingest --shuffle(adaptive)--> window --combiner--> aggregate
//     --replicate--> subscribers
//
// built and validated as one typed dataflow graph (Graph::Build), lowered
// onto four DFI flows registered through a single batched control-plane
// RPC, and executed as engine actors.
//
// Three sections:
//  1. End-to-end run (engine, 4 workers): stage counts, completion,
//     ingest throughput, and end-to-end row latency p50/p95/p99 (subscriber
//     consume time minus the row's newest tuple timestamp).
//  2. Determinism: the same pipeline at engine pool sizes 1/2/4 must
//     produce identical window content (group -> (COUNT, SUM) map) and
//     identical per-subscriber commutative fingerprints.
//  3. Skew: zipf 0.99 ingest keys, static vs adaptive shuffle edge —
//     the graph relays FlowOptions per edge, so the pipeline inherits the
//     skew resilience of the flow layer.
//
// `--smoke` runs a scaled-down configuration for CI.

#include <cinttypes>
#include <string>

#include "apps/pipeline/streaming_pipeline.h"
#include "bench/bench_common.h"
#include "common/exec/engine.h"
#include "common/hash.h"

namespace dfi::bench {
namespace {

bool g_smoke = false;

pipeline::PipelineConfig Config() {
  pipeline::PipelineConfig cfg;
  cfg.num_nodes = g_smoke ? 4 : 8;
  cfg.tuples_per_source = g_smoke ? 1 << 12 : 1 << 16;
  cfg.seed = BenchSeed();
  return cfg;
}

/// Runs the pipeline inside an engine with `pool` workers.
pipeline::PipelineResult RunEngine(const pipeline::PipelineConfig& cfg,
                                   uint32_t pool) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, cfg.num_nodes);
  DfiRuntime dfi(&fabric);
  pipeline::PipelineResult result;
  exec::Engine engine({.workers = pool, .lookahead_ns = 1000});
  engine.Spawn(0, "pipeline-root", [&] {
    auto r = pipeline::RunStreamingPipeline(&dfi, addrs, cfg);
    DFI_CHECK_OK(r.status());
    result = std::move(*r);
  });
  engine.Run();
  return result;
}

/// Order-insensitive digest of the full window content map.
uint64_t WindowDigest(const pipeline::PipelineResult& r) {
  uint64_t digest = 0;
  for (const auto& [wkey, cs] : r.windows) {
    digest ^= HashU64(wkey ^ HashU64(cs.first) ^ HashU64(cs.second << 1));
  }
  return digest;
}

void Run() {
  const pipeline::PipelineConfig cfg = Config();

  PrintSection(g_smoke ? "Streaming pipeline, end to end (smoke scale)"
                       : "Streaming pipeline, end to end (8 nodes)");
  pipeline::PipelineResult r = RunEngine(cfg, 4);
  {
    TablePrinter t({"stage", "tuples/rows", "note"});
    t.AddRow({"ingest", Num(static_cast<double>(r.tuples_ingested)),
              "zipf keys, adaptive shuffle"});
    t.AddRow({"window", Num(static_cast<double>(r.windowed_tuples)),
              "fused (window, key) group id"});
    t.AddRow({"aggregate", Num(static_cast<double>(r.rows_published)),
              "COUNT / SUM(val) / MAX(ts) per group"});
    t.AddRow({"subscribers", Num(static_cast<double>(r.rows_delivered)),
              "replicated to every node"});
    t.Print();
  }
  const double ingest_bytes = static_cast<double>(r.tuples_ingested) * 32;
  {
    TablePrinter t({"metric", "value"});
    t.AddRow({"completion", Millis(r.completion)});
    t.AddRow({"ingest throughput", Rate(ingest_bytes, r.completion)});
    t.AddRow({"row latency p50", Micros(r.latency.Quantile(0.5))});
    t.AddRow({"row latency p95", Micros(r.latency.Quantile(0.95))});
    t.AddRow({"row latency p99", Micros(r.latency.Quantile(0.99))});
    t.Print();
  }
  DFI_CHECK_EQ(r.tuples_ingested, r.windowed_tuples);
  DFI_CHECK_EQ(r.rows_delivered, r.rows_published * cfg.num_nodes *
                                     cfg.subscribers_per_node);
  RecordMetric("completion", static_cast<double>(r.completion) / 1e6, "ms");
  RecordMetric("ingest_throughput",
               ingest_bytes / static_cast<double>(r.completion) * 1e9 / kGiB,
               "GiB/s");
  RecordMetric("latency_p50_us", r.latency.Quantile(0.5) / 1000.0, "us");
  RecordMetric("latency_p95_us", r.latency.Quantile(0.95) / 1000.0, "us");
  RecordMetric("latency_p99_us", r.latency.Quantile(0.99) / 1000.0, "us");
  RecordMetric("rows_published", static_cast<double>(r.rows_published),
               "rows");

  PrintSection("Determinism: engine pool sizes 1 / 2 / 4");
  {
    TablePrinter t({"pool", "window groups", "content digest", "match"});
    const uint64_t want = WindowDigest(r);
    bool all_match = true;
    for (uint32_t pool : {1u, 2u, 4u}) {
      const pipeline::PipelineResult p = RunEngine(cfg, pool);
      const uint64_t digest = WindowDigest(p);
      const bool match = digest == want && p.windows == r.windows;
      all_match = all_match && match;
      char hex[32];
      std::snprintf(hex, sizeof(hex), "%016" PRIx64, digest);
      t.AddRow({std::to_string(pool),
                Num(static_cast<double>(p.windows.size())), hex,
                match ? "yes" : "NO"});
    }
    t.Print();
    DFI_CHECK(all_match) << "pipeline content differs across pool sizes";
    RecordMetric("determinism_pools_match", all_match ? 1 : 0, "bool");
    std::printf(
        "(window assignment is a pure function of tuple content, and the\n"
        " combiner folds are commutative — content is identical at any\n"
        " engine pool size)\n");
  }

  PrintSection("Skew: zipf 0.99 ingest keys, static vs adaptive shuffle");
  {
    pipeline::PipelineConfig skew = cfg;
    skew.zipf_theta = 0.99;
    skew.adaptive_shuffle = false;
    pipeline::PipelineResult s = RunEngine(skew, 4);
    skew.adaptive_shuffle = true;
    pipeline::PipelineResult a = RunEngine(skew, 4);
    const double speedup =
        static_cast<double>(s.completion) / static_cast<double>(a.completion);
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    TablePrinter t({"shuffle edge", "completion", "latency p95", "speedup"});
    t.AddRow({"static key-hash", Millis(s.completion),
              Micros(s.latency.Quantile(0.95)), "-"});
    t.AddRow({"adaptive", Millis(a.completion),
              Micros(a.latency.Quantile(0.95)), sp});
    t.Print();
    RecordMetric("skew_speedup_zipf099", speedup, "x");
    // Same content either way: adaptation moves tuples, not results.
    DFI_CHECK(s.windows == a.windows)
        << "adaptive shuffle changed the aggregate content";
  }
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      dfi::bench::g_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  return dfi::bench::BenchMain(static_cast<int>(args.size()), args.data(),
                               dfi::bench::Run);
}
