// Section 6.1.4: memory consumption of the scale-out shuffle flow (the
// private source/target buffers) and the effect of shrinking the rings.
// Paper numbers: 16 MiB/node at 2 nodes x 4 threads, 64 MiB at 8 x 4,
// 785.5 MiB at 8 x 14; halving segments to 16 costs ~2.7% bandwidth,
// quartering to 8 costs ~8%.

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kTupleSize = 1024;

struct CellResult {
  uint64_t bytes_node0 = 0;
  double rate_bytes_per_ns = 0;
};

CellResult RunCell(uint32_t num_nodes, uint32_t threads_per_node,
                   uint32_t segments_per_ring, uint64_t bytes_per_source) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, num_nodes);
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "mem";
  spec.sources = DfiNodes::GridOf(addrs, threads_per_node);
  spec.targets = DfiNodes::GridOf(addrs, threads_per_node);
  spec.schema = PaddedSchema(kTupleSize);
  spec.options.segments_per_ring = segments_per_ring;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint32_t workers = num_nodes * threads_per_node;
  const uint64_t tuples = bytes_per_source / kTupleSize;
  std::atomic<SimTime> finish{0};
  std::atomic<uint64_t> mem_node0{0};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto src = dfi.CreateShuffleSource("mem", w);
      auto tgt = dfi.CreateShuffleTarget("mem", w);
      if (w == 0) {
        // All endpoints exist now; snapshot node 0's registered memory.
        mem_node0.store(dfi.RegisteredBytesOnNode(0));
      }
      std::vector<uint8_t> buf(kTupleSize, 0);
      bool drained = false;
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i * 7 + w);
        DFI_CHECK_OK((*src)->Push(buf.data()));
        if (i % 128 == 0) {
          SegmentView seg;
          ConsumeResult r;
          while (!drained && (*tgt)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              drained = true;
              break;
            }
          }
        }
      }
      DFI_CHECK_OK((*src)->Close());
      SegmentView seg;
      while (!drained) {
        if ((*tgt)->ConsumeSegment(&seg) == ConsumeResult::kFlowEnd) {
          drained = true;
        }
      }
      const SimTime end =
          std::max((*src)->clock().now(), (*tgt)->clock().now());
      SimTime prev = finish.load();
      while (prev < end && !finish.compare_exchange_weak(prev, end)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  CellResult result;
  result.bytes_node0 = mem_node0.load();
  result.rate_bytes_per_ns = static_cast<double>(bytes_per_source) * workers /
                             static_cast<double>(finish.load());
  return result;
}

void Run() {
  PrintSection(
      "Section 6.1.4: memory consumption of scale-out shuffle flows");
  {
    TablePrinter table(
        {"setup", "registered flow memory per node (node 0)"});
    CellResult r = RunCell(2, 4, 32, 4 * kMiB);
    table.AddRow({"2 nodes x 4 threads, 32 segments",
                  FormatBytes(r.bytes_node0)});
    r = RunCell(8, 4, 32, 4 * kMiB);
    table.AddRow({"8 nodes x 4 threads, 32 segments",
                  FormatBytes(r.bytes_node0)});
    r = RunCell(8, 14, 32, 2 * kMiB);
    table.AddRow({"8 nodes x 14 threads, 32 segments",
                  FormatBytes(r.bytes_node0)});
    table.Print();
    std::printf(
        "(paper: 16 MiB, 64 MiB and 785.5 MiB respectively — target rings\n"
        " of 32 x 8 KiB segments per source/target pair plus send rings)\n");
  }
  {
    PrintSection("Segment-count sensitivity (8 nodes x 4 threads)");
    TablePrinter table({"segments/ring", "memory/node", "aggregated BW",
                        "relative"});
    const CellResult base = RunCell(8, 4, 32, 16 * kMiB);
    for (uint32_t segments : {32u, 16u, 8u}) {
      const CellResult r = segments == 32
                               ? base
                               : RunCell(8, 4, segments, 16 * kMiB);
      char rel[32];
      std::snprintf(rel, sizeof(rel), "%+.1f%%",
                    (r.rate_bytes_per_ns / base.rate_bytes_per_ns - 1.0) *
                        100.0);
      table.AddRow({std::to_string(segments), FormatBytes(r.bytes_node0),
                    Rate(r.rate_bytes_per_ns * 1e9, 1'000'000'000), rel});
    }
    table.Print();
    std::printf(
        "(paper: 16 segments -> -2.7%% bandwidth, 8 segments -> -8%%.\n"
        " Note: run-to-run noise of these 32-worker runs is ~+-10%% in this\n"
        " emulation, so the paper's small effect is below our resolution;\n"
        " the memory savings column is the robust result.)\n");
  }
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
