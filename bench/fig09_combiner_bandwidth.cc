// Figure 9: combiner flow with SUM aggregation, 8 sender nodes -> 1 target
// node with 1/2/4 target threads. Aggregated sender bandwidth.
// Paper result: 1 target thread is CPU-bound on aggregation for small
// tuples; 2-4 threads reach the target's in-going link limit.

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint64_t kBytesPerSource = 12 * kMiB;
constexpr uint64_t kGroups = 4096;

Schema CombinerSchema(uint32_t tuple_size) {
  DFI_CHECK_GE(tuple_size, 16u);
  if (tuple_size == 16) {
    return Schema{{"key", DataType::kUInt64}, {"value", DataType::kInt64}};
  }
  return Schema{{"key", DataType::kUInt64},
                {"value", DataType::kInt64},
                {"pad", DataType::kChar, tuple_size - 16}};
}

double RunCell(uint32_t tuple_size, uint32_t target_threads) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 9);  // node 0 receives, 1..8 send
  DfiRuntime dfi(&fabric);

  CombinerFlowSpec spec;
  spec.name = "agg";
  for (uint32_t s = 0; s < 8; ++s) {
    spec.sources.Append(Endpoint{addrs[1 + s], 0});
  }
  for (uint32_t t = 0; t < target_threads; ++t) {
    spec.targets.Append(Endpoint{addrs[0], t});
  }
  spec.schema = CombinerSchema(tuple_size);
  spec.group_by_index = 0;
  spec.aggregates = {{AggFunc::kSum, 1}};
  DFI_CHECK_OK(dfi.InitCombinerFlow(std::move(spec)));

  const uint64_t tuples = kBytesPerSource / tuple_size;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < 8; ++s) {
    threads.emplace_back([&, s] {
      auto src = dfi.CreateCombinerSource("agg", s);
      std::vector<uint8_t> buf(tuple_size, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema())
            .Set<uint64_t>(0, (s * tuples + i) % kGroups)
            .Set<int64_t>(1, static_cast<int64_t>(i));
        DFI_CHECK_OK((*src)->Push(buf.data()));
      }
      DFI_CHECK_OK((*src)->Close());
    });
  }
  for (uint32_t t = 0; t < target_threads; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi.CreateCombinerTarget("agg", t);
      AggRow row;
      while ((*tgt)->ConsumeAggregate(&row) != ConsumeResult::kFlowEnd) {
      }
      SimTime prev = finish.load();
      while (prev < (*tgt)->clock().now() &&
             !finish.compare_exchange_weak(prev, (*tgt)->clock().now())) {
      }
    });
  }
  for (auto& th : threads) th.join();
  const double total = static_cast<double>(kBytesPerSource) * 8;
  return total / static_cast<double>(finish.load());
}

void Run() {
  PrintSection(
      "Figure 9: combiner flow with SUM aggregation (8:1), aggregated "
      "sender bandwidth");
  TablePrinter table({"tuple size", "1 target thread", "2 target threads",
                      "4 target threads"});
  for (uint32_t tuple_size : {64u, 256u, 1024u}) {
    std::vector<std::string> row{FormatBytes(tuple_size)};
    for (uint32_t threads : {1u, 2u, 4u}) {
      row.push_back(Rate(RunCell(tuple_size, threads) * 1e9, 1'000'000'000));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "(expected: small tuples CPU-bound at 1 target thread; >= 2 threads\n"
      " approach the receiver's 11.64 GiB/s in-going link)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
