// Figure 10a: MPI vs DFI point-to-point, single-threaded — runtime for
// transferring a fixed table between two nodes on a tuple-by-tuple basis.
// The paper transfers 16 GiB; we scale to 32 MiB (shapes are unchanged:
// runtimes scale linearly with the table size).
// Paper result: MPI_Send/Recv is very slow for small tuples (no batching);
// DFI's bandwidth optimization stays fast across all tuple sizes.

#include <atomic>

#include "bench/bench_common.h"
#include "mpi/mpi_env.h"

namespace dfi::bench {
namespace {

constexpr uint64_t kTableBytes = 32 * kMiB;

SimTime RunDfi(uint32_t tuple_size, FlowOptimization opt) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "p2p";
  spec.sources.Append(Endpoint{addrs[0], 0});
  spec.targets.Append(Endpoint{addrs[1], 0});
  spec.schema = PaddedSchema(tuple_size);
  spec.options.optimization = opt;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint64_t tuples = kTableBytes / tuple_size;
  std::atomic<SimTime> finish{0};
  std::thread producer([&] {
    auto src = dfi.CreateShuffleSource("p2p", 0);
    std::vector<uint8_t> buf(tuple_size, 0);
    for (uint64_t i = 0; i < tuples; ++i) {
      TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
      DFI_CHECK_OK((*src)->Push(buf.data()));
    }
    DFI_CHECK_OK((*src)->Close());
  });
  auto tgt = dfi.CreateShuffleTarget("p2p", 0);
  SegmentView seg;
  while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
  }
  producer.join();
  return (*tgt)->clock().now();
}

SimTime RunMpi(uint32_t tuple_size) {
  net::Fabric fabric;
  auto nodes = fabric.AddNodes(2);
  mpi::MpiEnv env(&fabric, nodes);
  const uint64_t tuples = kTableBytes / tuple_size;
  SimTime finish = 0;
  std::thread sender([&] {
    VirtualClock clock;
    std::vector<uint8_t> buf(tuple_size, 0);
    for (uint64_t i = 0; i < tuples; ++i) {
      DFI_CHECK_OK(env.Send(0, 1, 0, buf.data(), tuple_size, &clock));
    }
  });
  VirtualClock clock;
  std::vector<uint8_t> buf(tuple_size, 0);
  for (uint64_t i = 0; i < tuples; ++i) {
    DFI_CHECK_OK(env.Recv(1, 0, 0, buf.data(), tuple_size, &clock));
  }
  sender.join();
  finish = clock.now();
  return finish;
}

void Run() {
  PrintSection(
      "Figure 10a: MPI vs DFI point-to-point runtime, single-threaded "
      "(32 MiB table, scaled from the paper's 16 GiB)");
  TablePrinter table({"tuple size", "DFI bandwidth-opt", "DFI latency-opt",
                      "MPI Send/Recv"});
  for (uint32_t size : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    const SimTime dfi_bw = RunDfi(size, FlowOptimization::kBandwidth);
    const SimTime mpi = RunMpi(size);
    table.AddRow({FormatBytes(size), Millis(dfi_bw),
                  Millis(RunDfi(size, FlowOptimization::kLatency)),
                  Millis(mpi)});
    if (size == 16u) {
      RecordMetric("MPI / DFI bandwidth-opt runtime ratio (16 B)",
                   static_cast<double>(mpi) / static_cast<double>(dfi_bw),
                   "x");
    }
  }
  table.Print();
  std::printf(
      "(expected: MPI runtime explodes for small tuples — one message per\n"
      " tuple, no batching; DFI bandwidth-opt is flat and near wire speed)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
