// Figure 15: state machine replication — DARE vs DFI Multi-Paxos vs DFI
// NOPaxos. Five replicas, six clients on three nodes, 64-byte requests,
// YCSB read-dominated (95/5). The throughput/latency curve is swept by
// varying the clients' virtual think time.
// Paper result: both DFI implementations beat DARE in throughput and
// latency; Multi-Paxos and NOPaxos have near-identical latency until
// ~Multi-Paxos' leader saturates, beyond which NOPaxos sustains much
// higher request rates (clients collect the votes themselves).

#include "apps/consensus/consensus.h"
#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

using consensus::ConsensusConfig;
using consensus::ConsensusResult;

template <typename Fn>
void Sweep(const char* name, Fn run, TablePrinter* table) {
  double peak_rps = 0;
  for (SimTime think : {40'000, 20'000, 10'000, 5'000, 2'000, 500, 0}) {
    ConsensusConfig cfg;
    cfg.requests_per_client = 1500;
    cfg.think_time_ns = think;
    // At low offered load the submission window is irrelevant for
    // throughput; a window of 1 keeps the clients' real-time racing from
    // skewing the virtual-order of requests (emulation artifact).
    cfg.client_window = think >= 10'000 ? 1 : 8;
    net::Fabric fabric;
    auto addrs =
        MakeCluster(&fabric, cfg.num_replicas + cfg.num_client_nodes);
    DfiRuntime dfi(&fabric);
    auto r = run(&dfi, addrs, cfg);
    DFI_CHECK(r.ok()) << r.status();
    table->AddRow({name, Micros(think), Num(r->throughput_rps),
                   Micros(r->median_latency_ns),
                   Micros(r->p95_latency_ns)});
    if (r->throughput_rps > peak_rps) peak_rps = r->throughput_rps;
  }
  RecordMetric(std::string("peak throughput, ") + name, peak_rps, "req/s");
}

void Run() {
  PrintSection(
      "Figure 15: consensus — DARE vs DFI Multi-Paxos vs DFI NOPaxos "
      "(5 replicas, 6 clients, 64 B requests, YCSB 95/5)");
  TablePrinter table({"system", "think time", "requests/s",
                      "median latency", "p95 latency"});
  Sweep("DARE", consensus::RunDare, &table);
  Sweep("DFI Multi-Paxos", consensus::RunMultiPaxos, &table);
  Sweep("DFI NOPaxos", consensus::RunNoPaxos, &table);
  table.Print();
  std::printf(
      "(expected: DARE saturates first — sequential clients + serializing\n"
      " write protocol; Multi-Paxos sustains more; NOPaxos sustains the\n"
      " highest rates because clients collect votes themselves. Latencies\n"
      " of the two DFI systems are near-identical at low load: NOPaxos'\n"
      " sequencer costs what Multi-Paxos' extra message delays cost.)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
