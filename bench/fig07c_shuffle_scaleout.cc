// Figure 7c: scale-out of the shuffle flow — aggregated sender bandwidth
// for N:N topologies of 2..8 servers with 4 and 14 source/target threads
// per server. Paper result: linear scaling with node count; 4 threads per
// node already saturate each link.

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kTupleSize = 1024;

double RunCell(uint32_t num_nodes, uint32_t threads_per_node,
               uint64_t bytes_per_source) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, num_nodes);
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "scale";
  spec.sources = DfiNodes::GridOf(addrs, threads_per_node);
  spec.targets = DfiNodes::GridOf(addrs, threads_per_node);
  spec.schema = PaddedSchema(kTupleSize);
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint32_t workers = num_nodes * threads_per_node;
  const uint64_t tuples = bytes_per_source / kTupleSize;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto src = dfi.CreateShuffleSource("scale", w);
      auto tgt = dfi.CreateShuffleTarget("scale", w);
      std::vector<uint8_t> buf(kTupleSize, 0);
      bool drained = false;
      auto drain = [&](bool block) {
        SegmentView seg;
        ConsumeResult r;
        if (block) {
          while (!drained) {
            if ((*tgt)->ConsumeSegment(&seg) == ConsumeResult::kFlowEnd) {
              drained = true;
            }
          }
        } else {
          while (!drained && (*tgt)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              drained = true;
              break;
            }
          }
        }
      };
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema())
            .Set<uint64_t>(0, w * tuples + i);
        DFI_CHECK_OK((*src)->Push(buf.data()));
        if (i % 128 == 0) drain(false);
      }
      DFI_CHECK_OK((*src)->Close());
      drain(true);
      const SimTime end =
          std::max((*src)->clock().now(), (*tgt)->clock().now());
      SimTime prev = finish.load();
      while (prev < end && !finish.compare_exchange_weak(prev, end)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  const double total_bytes =
      static_cast<double>(bytes_per_source) * workers;
  return total_bytes / static_cast<double>(finish.load());  // bytes/ns
}

void Run() {
  PrintSection(
      "Figure 7c: shuffle flow scale-out, aggregated sender bandwidth "
      "(N:N, 1 KiB tuples)");
  TablePrinter table({"servers", "4 threads/server", "14 threads/server"});
  for (uint32_t nodes = 2; nodes <= 8; ++nodes) {
    std::vector<std::string> row{std::to_string(nodes)};
    // 4 threads: 16 MiB per source; 14 threads: smaller per-source volume
    // keeps host memory/wall time in check at 12544 connections.
    const double r4 = RunCell(nodes, 4, 16 * kMiB);
    row.push_back(Rate(r4 * 1e9, 1'000'000'000));
    const double r14 = RunCell(nodes, 14, 4 * kMiB);
    row.push_back(Rate(r14 * 1e9, 1'000'000'000));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "(expected shape: aggregated bandwidth grows linearly with servers,\n"
      " approx. servers x 11.64 GiB/s; 4 threads already saturate links)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
