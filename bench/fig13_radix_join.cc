// Figure 13: distributed radix hash join, 8 nodes x 8 workers — MPI radix
// join (Barthels et al. [2]) vs the DFI radix join, with phase breakdown.
// The paper joins 2.56 B x 2.56 B tuples; we scale to 2^22 x 2^22 (the
// per-phase *ratios* and the ordering are scale-independent once the run
// is bandwidth-bound).
// Paper result: the DFI join wins ~20% — no histogram pass, no barrier,
// network partitioning overlapped with local processing.

#include "apps/join/distributed_join.h"
#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

void Run() {
  PrintSection(
      "Figure 13: distributed radix join, 8 nodes / 64 workers, "
      "2^22 x 2^22 tuples (scaled from 2.56B x 2.56B)");
  join::JoinConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 8;
  cfg.inner_tuples = 1ull << 22;
  cfg.outer_tuples = 1ull << 22;

  join::JoinResult mpi_result;
  {
    net::Fabric fabric;
    auto addrs = MakeCluster(&fabric, cfg.num_nodes);
    std::vector<net::NodeId> ids;
    for (uint32_t i = 0; i < cfg.num_nodes; ++i) ids.push_back(i);
    auto r = join::RunMpiRadixJoin(&fabric, ids, cfg);
    DFI_CHECK(r.ok()) << r.status();
    mpi_result = *r;
  }
  join::JoinResult dfi_result;
  {
    net::Fabric fabric;
    auto addrs = MakeCluster(&fabric, cfg.num_nodes);
    DfiRuntime dfi(&fabric);
    auto r = join::RunDfiRadixJoin(&dfi, addrs, cfg);
    DFI_CHECK(r.ok()) << r.status();
    dfi_result = *r;
  }
  DFI_CHECK_EQ(mpi_result.matches, dfi_result.matches);

  TablePrinter table({"phase", "MPI radix join", "DFI radix join"});
  table.AddRow({"histogram", Millis(mpi_result.phases.histogram), "-"});
  table.AddRow({"network partition",
                Millis(mpi_result.phases.network_partition),
                Millis(dfi_result.phases.network_partition) +
                    " (incl. local partition, streamed)"});
  table.AddRow({"sync barrier", Millis(mpi_result.phases.sync_barrier),
                "-"});
  table.AddRow({"local partition",
                Millis(mpi_result.phases.local_partition),
                "(overlapped)"});
  table.AddRow({"build + probe", Millis(mpi_result.phases.build_probe),
                Millis(dfi_result.phases.build_probe)});
  table.AddRow({"TOTAL", Millis(mpi_result.phases.total),
                Millis(dfi_result.phases.total)});
  table.Print();
  RecordMetric("MPI / DFI total runtime ratio",
               static_cast<double>(mpi_result.phases.total) /
                   static_cast<double>(dfi_result.phases.total),
               "x");
  RecordMetric("join matches",
               static_cast<double>(dfi_result.matches), "matches");
  std::printf("join matches: %llu (both variants)\n",
              static_cast<unsigned long long>(dfi_result.matches));
  std::printf(
      "(expected: DFI total < MPI total; MPI pays the histogram pass and\n"
      " the post-shuffle synchronization barrier that DFI eliminates)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
