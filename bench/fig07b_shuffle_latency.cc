// Figure 7b: median round-trip latency of latency-optimized shuffle flows
// vs. a raw-verbs ping-pong (the ib_write_lat stand-in), for 16 B .. 16 KiB
// tuples and 1/4/8 receiving servers.
// Paper result: DFI adds only minimal overhead over ib_write_lat; more
// targets cost slightly more due to flow-internal routing.

#include <atomic>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "rdma/queue_pair.h"

namespace dfi::bench {
namespace {

constexpr int kRounds = 400;

/// Raw one-sided-write ping-pong between two nodes, the role
/// `ib_write_lat` plays in the paper: the latency floor.
SimTime IbWriteLat(uint32_t size) {
  net::Fabric fabric;
  MakeCluster(&fabric, 2);
  rdma::RdmaEnv env(&fabric);
  rdma::RdmaContext* a = env.context(0);
  rdma::RdmaContext* b = env.context(1);
  rdma::MemoryRegion* buf_a = a->AllocateRegion(size);
  rdma::MemoryRegion* buf_b = b->AllocateRegion(size);
  rdma::RcQueuePair* ab = a->CreateRcQp(1, a->CreateCq());
  rdma::RcQueuePair* ba = b->CreateRcQp(0, b->CreateCq());
  const net::SimConfig& cfg = fabric.config();

  VirtualClock clock_a, clock_b;
  LatencyRecorder rtt;
  for (int i = 0; i < kRounds; ++i) {
    const SimTime t0 = clock_a.now();
    rdma::WriteDesc ping{buf_a->addr(), buf_b->RefAt(0), size, 0, false,
                         size <= cfg.max_inline_bytes};
    auto tp = ab->PostWrite(ping, &clock_a);
    DFI_CHECK(tp.ok());
    // Responder polls memory, then pongs.
    clock_b.AdvanceTo(tp->arrival);
    clock_b.Advance(cfg.poll_cq_ns);
    rdma::WriteDesc pong{buf_b->addr(), buf_a->RefAt(0), size, 0, false,
                         size <= cfg.max_inline_bytes};
    auto tq = ba->PostWrite(pong, &clock_b);
    DFI_CHECK(tq.ok());
    clock_a.AdvanceTo(tq->arrival);
    clock_a.Advance(cfg.poll_cq_ns);
    rtt.Record(clock_a.now() - t0);
  }
  return rtt.Median();
}

/// DFI round trip: a request tuple through a latency-optimized 1:N shuffle
/// flow (round-robin across the N servers), response through an N:1 flow.
SimTime DfiRoundTrip(uint32_t size, uint32_t num_servers) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 1 + num_servers);
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec req;
  req.name = "req";
  req.sources.Append(Endpoint{addrs[0], 0});
  for (uint32_t s = 0; s < num_servers; ++s) {
    req.targets.Append(Endpoint{addrs[1 + s], 0});
  }
  req.schema = PaddedSchema(size);
  req.options.optimization = FlowOptimization::kLatency;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(req)));

  ShuffleFlowSpec resp;
  resp.name = "resp";
  for (uint32_t s = 0; s < num_servers; ++s) {
    resp.sources.Append(Endpoint{addrs[1 + s], 0});
  }
  resp.targets.Append(Endpoint{addrs[0], 0});
  resp.schema = PaddedSchema(size);
  resp.options.optimization = FlowOptimization::kLatency;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(resp)));

  std::vector<std::thread> servers;
  for (uint32_t s = 0; s < num_servers; ++s) {
    servers.emplace_back([&, s] {
      auto in = dfi.CreateShuffleTarget("req", s);
      auto out = dfi.CreateShuffleSource("resp", s);
      TupleView tuple;
      while ((*in)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        (*out)->clock().AdvanceTo((*in)->clock().now());
        DFI_CHECK_OK((*out)->Push(tuple.data()));
        (*in)->clock().AdvanceTo((*out)->clock().now());
      }
      DFI_CHECK_OK((*out)->Close());
    });
  }

  auto src = dfi.CreateShuffleSource("req", 0);
  auto tgt = dfi.CreateShuffleTarget("resp", 0);
  std::vector<uint8_t> buf(size, 0);
  LatencyRecorder rtt;
  for (int i = 0; i < kRounds; ++i) {
    const SimTime t0 =
        std::max((*src)->clock().now(), (*tgt)->clock().now());
    (*src)->clock().AdvanceTo(t0);
    TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
    DFI_CHECK_OK((*src)->PushTo(buf.data(), i % num_servers));
    TupleView tuple;
    DFI_CHECK((*tgt)->Consume(&tuple) == ConsumeResult::kOk);
    rtt.Record((*tgt)->clock().now() - t0);
  }
  DFI_CHECK_OK((*src)->Close());
  for (auto& th : servers) th.join();
  TupleView tuple;
  while ((*tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
  }
  return rtt.Median();
}

void Run() {
  PrintSection(
      "Figure 7b: shuffle flow median round-trip latency "
      "(latency-optimized) vs raw verbs ping-pong");
  TablePrinter table({"tuple size", "ib_write_lat (N=1)", "DFI N=1",
                      "DFI N=4", "DFI N=8"});
  for (uint32_t size : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    table.AddRow({FormatBytes(size), Micros(IbWriteLat(size)),
                  Micros(DfiRoundTrip(size, 1)),
                  Micros(DfiRoundTrip(size, 4)),
                  Micros(DfiRoundTrip(size, 8))});
  }
  table.Print();
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
