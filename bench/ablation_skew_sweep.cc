// Ablation: skew- and straggler-adaptive shuffle vs the static key-hash
// partitioner, extending Figure 12 (straggler resilience) and Figure 13
// (partitioned-join shuffle) to skewed inputs.
//
// Three sections, each comparing the same workload with adaptive shuffling
// off (the static baseline) and on:
//  1. Zipf sweep: 8x8-thread shuffle of a zipfian relation for
//     theta in {0, 0.5, 0.8, 0.99, 1.2}. Static partitioning funnels the
//     hot keys' tuples into single target threads; the adaptive path
//     re-splits detected hot keys across the home node's sink threads and
//     work-steals the residue.
//  2. Hot-key adversarial: a few designated keys own half the traffic —
//     the sharpest version of the same effect.
//  3. Thread straggler: uniform keys, one sink thread at 1/8 processing
//     speed (the thread-level analogue of Figure 12's slow node). Work
//     stealing lets same-node siblings absorb the straggler's backlog;
//     backpressure reaction additionally diverts cold keys at the source.
//
// Targets pay a per-tuple processing cost on consume, so completion time is
// dominated by the most-loaded sink thread — the quantity skew distorts.
//
// `--smoke` runs a scaled-down sweep (4 nodes, fewer tuples) for CI.

#include <algorithm>
#include <atomic>
#include <thread>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

bool g_smoke = false;

constexpr uint32_t kThreadsPerNode = 8;
constexpr uint32_t kTupleSize = sizeof(JoinTuple);  // 16 B key/payload
constexpr uint64_t kKeyDomain = 1u << 20;
/// Per-tuple compute: producing a tuple at the source / processing a
/// consumed tuple at the target (the join-build side of Figure 13).
constexpr SimTime kProduceNs = 20;
constexpr SimTime kProcessNs = 60;

struct SweepConfig {
  uint32_t nodes;
  uint64_t tuples_per_source;
  uint32_t epoch_tuples;
};

SweepConfig Config() {
  if (g_smoke) return {4, 10240, 1024};
  return {8, 65536, 4096};
}

struct RunStats {
  SimTime finish = 0;
  uint64_t resplit = 0;   // tuples routed away from their static home
  uint64_t diverted = 0;  // tuples diverted by backpressure reaction
  uint64_t stolen = 0;    // segments consumed from a sibling's column
};

/// Runs one shuffle of per-source `relations[w]` and returns the finish
/// virtual time (max over worker threads of max(source, sink clock)).
/// `straggle_worker` (if >= 0) processes consumed tuples `straggle`x
/// slower.
RunStats RunShuffle(const SweepConfig& cfg,
                    const std::vector<std::vector<JoinTuple>>& relations,
                    bool adaptive, bool react_to_backpressure,
                    int straggle_worker = -1, SimTime straggle = 8) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, cfg.nodes);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "skew";
  spec.sources = DfiNodes::GridOf(addrs, kThreadsPerNode);
  spec.targets = DfiNodes::GridOf(addrs, kThreadsPerNode);
  spec.schema = Schema{{"key", DataType::kUInt64},
                       {"payload", DataType::kUInt64}};
  if (adaptive) {
    spec.options.adaptive.enabled = true;
    // One fair share per epoch is enough to count as hot: the sweep wants
    // every key the sketch can resolve re-split, not just extreme ones.
    spec.options.adaptive.hot_factor = 1.0;
    spec.options.adaptive.epoch_tuples = cfg.epoch_tuples;
    spec.options.adaptive.max_hot_keys = 8;
    spec.options.adaptive.react_to_backpressure = react_to_backpressure;
  }
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint32_t workers = cfg.nodes * kThreadsPerNode;
  DFI_CHECK_EQ(relations.size(), workers);
  RunStats stats;
  std::atomic<SimTime> finish{0};
  std::atomic<uint64_t> resplit{0}, diverted{0}, stolen{0};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto src = dfi.CreateShuffleSource("skew", w);
      auto tgt = dfi.CreateShuffleTarget("skew", w);
      const SimTime process =
          static_cast<int>(w) == straggle_worker ? kProcessNs * straggle
                                                 : kProcessNs;
      bool drained = false;
      auto drain_available = [&] {
        SegmentView seg;
        ConsumeResult r;
        while (!drained && (*tgt)->TryConsumeSegment(&seg, &r)) {
          if (r == ConsumeResult::kFlowEnd) {
            drained = true;
          } else if (r == ConsumeResult::kOk) {
            (*tgt)->clock().Advance(
                static_cast<SimTime>(seg.bytes / kTupleSize) * process);
          } else {
            DFI_CHECK(false) << (*tgt)->last_status();
          }
        }
      };
      const std::vector<JoinTuple>& rel = relations[w];
      for (uint64_t i = 0; i < rel.size(); ++i) {
        (*src)->clock().Advance(kProduceNs);
        DFI_CHECK_OK((*src)->Push(&rel[i]));
        if (i % 64 == 0) drain_available();
      }
      DFI_CHECK_OK((*src)->Close());
      SegmentView seg;
      while (!drained) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) {
          drained = true;
        } else if (r == ConsumeResult::kOk) {
          (*tgt)->clock().Advance(
              static_cast<SimTime>(seg.bytes / kTupleSize) * process);
        } else {
          DFI_CHECK(false) << (*tgt)->last_status();
        }
      }
      if (const AdaptivePartitioner* a = (*src)->adaptive(); a != nullptr) {
        resplit.fetch_add(a->resplit_tuples());
        diverted.fetch_add(a->diverted_tuples());
      }
      stolen.fetch_add((*tgt)->stolen_segments());
      const SimTime end =
          std::max((*src)->clock().now(), (*tgt)->clock().now());
      SimTime prev = finish.load();
      while (prev < end && !finish.compare_exchange_weak(prev, end)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  stats.finish = finish.load();
  stats.resplit = resplit.load();
  stats.diverted = diverted.load();
  stats.stolen = stolen.load();
  return stats;
}

std::vector<std::vector<JoinTuple>> ZipfRelations(const SweepConfig& cfg,
                                                  double theta) {
  const uint32_t workers = cfg.nodes * kThreadsPerNode;
  std::vector<std::vector<JoinTuple>> rel(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    rel[w] = GenerateZipfianRelation(cfg.tuples_per_source, kKeyDomain,
                                     theta, BenchSeed() + w);
  }
  return rel;
}

std::vector<std::vector<JoinTuple>> HotKeyRelations(const SweepConfig& cfg,
                                                    uint64_t hot_keys,
                                                    double hot_fraction) {
  const uint32_t workers = cfg.nodes * kThreadsPerNode;
  std::vector<std::vector<JoinTuple>> rel(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    rel[w] = GenerateHotKeyRelation(cfg.tuples_per_source, kKeyDomain,
                                    hot_keys, hot_fraction, BenchSeed() + w);
  }
  return rel;
}

std::string Speedup(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

void Run() {
  const SweepConfig cfg = Config();
  const uint32_t workers = cfg.nodes * kThreadsPerNode;
  const double total_bytes = static_cast<double>(workers) *
                             static_cast<double>(cfg.tuples_per_source) *
                             kTupleSize;

  PrintSection(g_smoke ? "Skew sweep: zipfian shuffle, static vs adaptive "
                         "(smoke scale)"
                       : "Skew sweep: zipfian shuffle (8 nodes x 8 "
                         "threads), static vs adaptive");
  {
    TablePrinter table({"zipf theta", "static", "adaptive", "speedup",
                        "re-split tuples", "stolen segments"});
    double uniform_ratio = 1.0, skew_ratio = 0.0;
    for (const double theta : {0.0, 0.5, 0.8, 0.99, 1.2}) {
      const auto rel = ZipfRelations(cfg, theta);
      const RunStats s = RunShuffle(cfg, rel, /*adaptive=*/false,
                                    /*react_to_backpressure=*/false);
      const RunStats a = RunShuffle(cfg, rel, /*adaptive=*/true,
                                    /*react_to_backpressure=*/false);
      const double ratio =
          static_cast<double>(s.finish) / static_cast<double>(a.finish);
      char name[32];
      std::snprintf(name, sizeof(name), "theta=%.2f", theta);
      table.AddRow({name, Millis(s.finish), Millis(a.finish), Speedup(ratio),
                    Num(static_cast<double>(a.resplit)),
                    Num(static_cast<double>(a.stolen))});
      RecordMetric(std::string("adaptive speedup, ") + name, ratio, "x");
      RecordMetric(std::string("static throughput, ") + name,
                   total_bytes / static_cast<double>(s.finish) * 1e9 / kGiB,
                   "GiB/s");
      if (theta == 0.0) uniform_ratio = ratio;
      if (theta == 0.99) skew_ratio = ratio;
    }
    table.Print();
    // No skew: adaptive must not cost anything (acceptance: within 5%).
    DFI_CHECK_GE(uniform_ratio, 0.95)
        << "adaptive slower than static on uniform input";
    DFI_CHECK_LE(uniform_ratio, 1.05)
        << "adaptive faster than static on uniform input — the baseline "
           "run is suspect";
    // Acceptance: >= 2x at the YCSB-default skew (looser at smoke scale,
    // where fewer epochs run adapted).
    DFI_CHECK_GE(skew_ratio, g_smoke ? 1.4 : 2.0)
        << "adaptive speedup under zipf 0.99 below the acceptance bar";
    std::printf(
        "(expected: ~1x at theta=0, growing with skew — the static "
        "hot-key\n target thread is the completion bottleneck; adaptive "
        "re-splits it\n across its node's sink threads)\n");
  }

  PrintSection("Hot-key adversarial: 4 keys own 50% of the traffic");
  {
    TablePrinter table({"configuration", "static", "adaptive", "speedup",
                        "re-split tuples", "stolen segments"});
    const auto rel = HotKeyRelations(cfg, /*hot_keys=*/4,
                                     /*hot_fraction=*/0.5);
    const RunStats s = RunShuffle(cfg, rel, /*adaptive=*/false,
                                  /*react_to_backpressure=*/false);
    const RunStats a = RunShuffle(cfg, rel, /*adaptive=*/true,
                                  /*react_to_backpressure=*/false);
    const double ratio =
        static_cast<double>(s.finish) / static_cast<double>(a.finish);
    table.AddRow({"4 keys, 50% of tuples", Millis(s.finish),
                  Millis(a.finish), Speedup(ratio),
                  Num(static_cast<double>(a.resplit)),
                  Num(static_cast<double>(a.stolen))});
    table.Print();
    RecordMetric("adaptive speedup, hot-key 4x50%", ratio, "x");
    DFI_CHECK_GE(ratio, g_smoke ? 1.5 : 2.0)
        << "adaptive speedup on the hot-key workload below the bar";
  }

  PrintSection(
      "Thread straggler (Figure 12 extension): uniform keys, one sink "
      "thread at 1/8 speed");
  {
    TablePrinter table({"configuration", "static", "adaptive", "speedup",
                        "diverted tuples", "stolen segments"});
    const auto rel = ZipfRelations(cfg, /*theta=*/0.0);
    const RunStats s =
        RunShuffle(cfg, rel, /*adaptive=*/false,
                   /*react_to_backpressure=*/false, /*straggle_worker=*/0);
    // The straggler case opts into backpressure reaction: queue depths are
    // the only signal that distinguishes a slow *consumer* (frequencies
    // look uniform), at the documented cost of bit-determinism.
    const RunStats a =
        RunShuffle(cfg, rel, /*adaptive=*/true,
                   /*react_to_backpressure=*/true, /*straggle_worker=*/0);
    const double ratio =
        static_cast<double>(s.finish) / static_cast<double>(a.finish);
    table.AddRow({"sink thread 0 at 1/8 speed", Millis(s.finish),
                  Millis(a.finish), Speedup(ratio),
                  Num(static_cast<double>(a.diverted)),
                  Num(static_cast<double>(a.stolen))});
    table.Print();
    RecordMetric("adaptive speedup, thread straggler 1/8", ratio, "x");
    DFI_CHECK_GE(ratio, g_smoke ? 1.5 : 2.0)
        << "straggler resilience below the bar";
    std::printf(
        "(expected: static completion is pinned to the slow thread; with "
        "stealing\n + backpressure reaction its same-node siblings absorb "
        "the backlog)\n");
  }
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      dfi::bench::g_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  return dfi::bench::BenchMain(static_cast<int>(args.size()), args.data(),
                               dfi::bench::Run);
}
