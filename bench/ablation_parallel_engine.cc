// Ablation: deterministic parallel emulation engine (work-stealing
// virtual-time scheduler) vs thread-per-actor execution.
//
// The fleet is n/2 source->target pipelines (n emulated nodes), each a
// 1:1 latency-optimized shuffle flow (one tuple per segment). A bench-level
// bounded skew window keeps each producer within a few segments of its
// consumer — the tightly coupled interleaving every multi-actor emulation
// exhibits — so the pair hands off on every delivery. Thread-per-actor pays
// two kernel context switches per handoff across n oversubscribed OS
// threads; the engine parks and resumes ucontext fibers in user space on a
// fixed worker pool. The skew window is pure real-time synchronization
// (it never touches a virtual clock), and the flow's own backpressure
// paths stay cold (credits never run low at this window size), so every
// virtual quantity is a push-side sequential sum or max-join: the reported
// simulated time — the last segment's wire arrival — is digit-identical
// between the modes, and the ablation isolates pure emulator overhead:
// wall-clock drops (target: >= 4x at 64 nodes), simulated time moves
// 0.00%.
//
// Part A: 64-node fleet, thread mode vs engine mode (speedup headline).
// Part B: fleet scaling 8..256 nodes, both modes (EXPERIMENTS.md table).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/exec/engine.h"

namespace dfi::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Fixed total work per fleet run, split across pipelines: within a fleet
// size the thread/engine comparison is like-for-like, and across sizes the
// thread-mode cost of oversubscription grows while total emulated work
// stays constant. Divisible by every pipeline count used below.
constexpr uint64_t kTotalTuples = 491'520;

// Actors per emulated node: each node pair carries this many independent
// 1:1 flows, each with its own source and target actor. Emulated fleets
// run many actors per node (flow endpoints, MPI ranks, replicas, clients);
// the oversubscription cost of thread-per-actor grows with the actor
// count, which is exactly what the engine removes.
constexpr uint32_t kFlowsPerPair = 4;

// Max segments a producer may run ahead of its consumer, enforced with
// real-time parking only — the tight coupling every multi-actor emulation
// exhibits. Small so the pair hands off on (nearly) every delivery.
constexpr uint64_t kSkewWindow = 4;

/// Real-time-only backpressure between one producer/consumer pair. In an
/// engine it parks the task; on threads it does a timed cv wait. Neither
/// side ever advances a virtual clock, so the window is invisible to the
/// emulation.
struct SkewGate {
  std::atomic<uint64_t> consumed{0};
  exec::WaitPoint wp;
  std::mutex mu;
  std::condition_variable cv;

  void AwaitRoom(uint64_t next) {
    auto room = [&] {
      return next < consumed.load(std::memory_order_acquire) + kSkewWindow;
    };
    while (!room()) {
      if (exec::Engine::InTask()) {
        exec::Engine::Park(&wp, room, /*now=*/0, exec::Engine::kNoTimer);
      } else {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, std::chrono::microseconds(200), room);
      }
    }
  }

  void Consumed() {
    consumed.fetch_add(1, std::memory_order_release);
    cv.notify_one();
    wp.WakeAll();
  }
};

struct FleetRun {
  double wall_s = 0;    // wall-clock seconds for the whole fleet
  SimTime sim_done = 0; // flow completion: max segment arrival (wire) time
  uint64_t tuples = 0;  // total tuples delivered (sanity)
};

/// Spawns one actor per endpoint (n/2 sources + n/2 targets) and runs the
/// fleet to completion. Called either from a plain thread (thread-per-actor
/// mode) or from inside an engine root task (engine mode) — ActorGroup
/// picks the execution vehicle.
FleetRun RunFleetBody(uint32_t nodes) {
  const uint32_t pipelines = (nodes / 2) * kFlowsPerPair;
  const uint64_t tuples = kTotalTuples / pipelines;
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, nodes);
  DfiRuntime dfi(&fabric);

  for (uint32_t p = 0; p < pipelines; ++p) {
    const uint32_t pair = p / kFlowsPerPair;
    ShuffleFlowSpec spec;
    spec.name = "pipe." + std::to_string(p);
    spec.sources.Append(Endpoint{addrs[pair], 0});
    spec.targets.Append(Endpoint{addrs[nodes / 2 + pair], 0});
    spec.schema = PaddedSchema(8);
    // Latency-optimized segments: one tuple per segment, one consumer
    // wakeup per delivery. The ring is sized so it never wraps and the
    // source's cached credit never runs low (low fires at 3/4 of the
    // ring): the source side never samples consumer progress — neither
    // slot-release timestamps nor credit-counter reads — so its virtual
    // timeline, and with it every segment's wire arrival, is a pure
    // function of the push sequence.
    spec.options.optimization = FlowOptimization::kLatency;
    spec.options.segments_per_ring = static_cast<uint32_t>(2 * tuples + 16);
    DFI_CHECK(dfi.InitShuffleFlow(std::move(spec)).ok());
  }

  std::vector<SimTime> done(pipelines, 0);
  std::vector<uint64_t> counts(pipelines, 0);
  std::vector<std::unique_ptr<SkewGate>> gates;
  gates.reserve(pipelines);
  for (uint32_t p = 0; p < pipelines; ++p) {
    gates.push_back(std::make_unique<SkewGate>());
  }
  exec::ActorGroup actors;
  for (uint32_t p = 0; p < pipelines; ++p) {
    const uint32_t src_node = p / kFlowsPerPair;
    const uint32_t tgt_node = nodes / 2 + p / kFlowsPerPair;
    actors.Spawn(src_node, "src." + std::to_string(p),
                 [&dfi, &gates, p, tuples] {
      auto src = dfi.CreateShuffleSource("pipe." + std::to_string(p), 0);
      DFI_CHECK(src.ok());
      for (uint64_t i = 0; i < tuples; ++i) {
        gates[p]->AwaitRoom(i);
        const uint64_t key = i;
        DFI_CHECK((*src)->Push(&key).ok());
      }
      DFI_CHECK((*src)->Close().ok());
    });
    actors.Spawn(tgt_node, "tgt." + std::to_string(p),
                 [&dfi, &gates, &done, &counts, p] {
      auto tgt = dfi.CreateShuffleTarget("pipe." + std::to_string(p), 0);
      DFI_CHECK(tgt.ok());
      SegmentView seg;
      for (;;) {
        const ConsumeResult r = (*tgt)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) break;
        DFI_CHECK(r == ConsumeResult::kOk);
        counts[p] += seg.bytes / 8;
        // Flow completion = last wire arrival. Arrival times are computed
        // from push-side sequential state, so this max-join is identical
        // in both execution modes; the target's own clock is not (it
        // accrues a poll charge per raced ready-gate pop, and the number
        // of raced pops depends on real-time interleaving).
        done[p] = std::max(done[p], seg.arrival);
        gates[p]->Consumed();
      }
    });
  }
  actors.Join();

  FleetRun run;
  for (uint32_t p = 0; p < pipelines; ++p) {
    run.sim_done = std::max(run.sim_done, done[p]);
    run.tuples += counts[p];
  }
  return run;
}

FleetRun RunFleet(bool engine_mode, uint32_t nodes) {
  const Clock::time_point start = Clock::now();
  FleetRun run;
  if (engine_mode) {
    exec::Engine engine({.workers = 0, .lookahead_ns = 1000});
    engine.Spawn(0, "fleet-root", [&] { run = RunFleetBody(nodes); });
    engine.Run();
  } else {
    run = RunFleetBody(nodes);
  }
  run.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  DFI_CHECK_EQ(run.tuples, kTotalTuples);
  return run;
}

std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f s", s);
  return buf;
}

std::string Pct(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", p);
  return buf;
}

double SimDeltaPct(const FleetRun& a, const FleetRun& b) {
  if (a.sim_done == 0) return 0;
  return (static_cast<double>(b.sim_done) -
          static_cast<double>(a.sim_done)) *
         100.0 / static_cast<double>(a.sim_done);
}

void Run() {
  // Warm up allocator, page cache, and fiber stacks so part A's headline
  // numbers are not skewed by first-run effects.
  RunFleet(/*engine_mode=*/false, 8);
  RunFleet(/*engine_mode=*/true, 8);

  PrintSection("Ablation: parallel emulation engine, 64-node fleet");
  const FleetRun threads64 = RunFleet(/*engine_mode=*/false, 64);
  const FleetRun engine64 = RunFleet(/*engine_mode=*/true, 64);
  const double speedup = threads64.wall_s / engine64.wall_s;
  {
    TablePrinter t({"execution", "wall clock", "sim time", "sim delta"});
    t.AddRow({"thread-per-actor (256 threads)", Secs(threads64.wall_s),
              Millis(threads64.sim_done), "-"});
    t.AddRow({"engine (work-stealing fibers)", Secs(engine64.wall_s),
              Millis(engine64.sim_done),
              Pct(SimDeltaPct(threads64, engine64))});
    t.Print();
  }
  std::printf("engine speedup at 64 nodes: %.2fx (simulated time %s)\n",
              speedup, Pct(SimDeltaPct(threads64, engine64)).c_str());
  RecordMetric("engine_speedup_64_nodes", speedup, "x");
  RecordMetric("sim_time_delta_64_nodes", SimDeltaPct(threads64, engine64),
               "%");
  RecordMetric("engine_wall_64_nodes", engine64.wall_s, "s");
  RecordMetric("threads_wall_64_nodes", threads64.wall_s, "s");

  PrintSection("Fleet scaling: thread-per-actor vs engine");
  TablePrinter t({"nodes", "threads wall", "engine wall", "speedup",
                  "sim delta"});
  for (uint32_t nodes : {8u, 16u, 64u, 128u, 256u}) {
    const FleetRun th = RunFleet(/*engine_mode=*/false, nodes);
    const FleetRun en = RunFleet(/*engine_mode=*/true, nodes);
    char sp[32];
    std::snprintf(sp, sizeof(sp), "%.2fx", th.wall_s / en.wall_s);
    t.AddRow({std::to_string(nodes), Secs(th.wall_s), Secs(en.wall_s), sp,
              Pct(SimDeltaPct(th, en))});
    RecordMetric("engine_speedup_" + std::to_string(nodes) + "_nodes",
                 th.wall_s / en.wall_s, "x");
    RecordMetric("sim_time_delta_" + std::to_string(nodes) + "_nodes",
                 SimDeltaPct(th, en), "%");
  }
  t.Print();
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
