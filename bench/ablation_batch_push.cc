// Ablation: batched zero-copy push/consume hot path.
//
// Part A compares tuple-at-a-time Push against PushBatch on an N:M shuffle
// with 8-byte tuples: the batched path partitions with one devirtualized
// histogram+scatter loop per batch and copies straight into the staging
// segments through zero-copy reservations, so the *wall-clock* emulator
// throughput rises (target: >= 2x) while the *simulated* time stays
// identical — per-tuple virtual costs are precomputed and charged per
// batch.
//
// Part B measures the target-side consume cost as idle source channels are
// added: ready-channel lists make one TryConsumeSegment O(active channels)
// where the old round-robin scan was O(num_sources).

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr uint32_t kSources = 4;
constexpr uint32_t kTargets = 4;
constexpr uint64_t kTuplesPerSource = 2'000'000;
constexpr size_t kBatchTuples = 4096;

/// Tuples each source pushes before every target drains its rings; small
/// enough that no per-target ring (32 segments) overflows within a round,
/// so the driver loop never blocks — and that a round's data stays
/// cache-resident, so the ablation measures the push/consume CPU path
/// rather than the host's DRAM bandwidth (which both modes share).
constexpr uint64_t kRoundTuples = 8 * 1024;

struct ShuffleRun {
  double wall_s = 0;       // wall-clock seconds for the whole flow
  double push_s = 0;       // wall-clock seconds inside Push/PushBatch
  double mtuples_s = 0;    // end-to-end wall-clock throughput
  double push_mtuples_s = 0;  // push-path wall-clock throughput
  SimTime sim_done = 0;    // max target virtual completion time
};

/// One full N:M shuffle of kSources x kTuplesPerSource 8-byte tuples;
/// `batched` picks PushBatch over Push. A single driver thread alternates
/// between pushing a bounded burst per source and draining every target, so
/// the measurement captures the push/consume hot path itself rather than
/// scheduler wakeups (rings are deep enough that nothing ever blocks).
ShuffleRun RunShuffle(bool batched) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, kSources + kTargets);
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "ablation_batch";
  for (uint32_t s = 0; s < kSources; ++s) {
    spec.sources.Append(Endpoint{addrs[s], 0});
  }
  for (uint32_t t = 0; t < kTargets; ++t) {
    spec.targets.Append(Endpoint{addrs[kSources + t], 0});
  }
  spec.schema = PaddedSchema(8);
  // 8-deep rings keep the 4x4 channel matrix L2-resident (16 rings x 64 KiB
  // + staging ~ 1.5 MiB); the default 32-deep rings would make both modes
  // DRAM-bound and mask the CPU-path difference this ablation isolates.
  spec.options.segments_per_ring = 8;
  DFI_CHECK(dfi.InitShuffleFlow(std::move(spec)).ok());

  std::vector<std::unique_ptr<ShuffleSource>> sources;
  std::vector<std::unique_ptr<ShuffleTarget>> targets;
  for (uint32_t s = 0; s < kSources; ++s) {
    auto source = dfi.CreateShuffleSource("ablation_batch", s);
    DFI_CHECK(source.ok());
    sources.push_back(std::move(*source));
  }
  for (uint32_t t = 0; t < kTargets; ++t) {
    auto target = dfi.CreateShuffleTarget("ablation_batch", t);
    DFI_CHECK(target.ok());
    targets.push_back(std::move(*target));
  }
  std::vector<std::vector<uint64_t>> keys(kSources);
  for (uint32_t s = 0; s < kSources; ++s) {
    keys[s].resize(kTuplesPerSource);
    for (uint64_t i = 0; i < kTuplesPerSource; ++i) {
      keys[s][i] = s * kTuplesPerSource + i;
    }
  }

  uint64_t bytes = 0;
  auto drain = [&] {
    SegmentView view;
    ConsumeResult result;
    for (auto& target : targets) {
      while (target->TryConsumeSegment(&view, &result) &&
             result == ConsumeResult::kOk) {
        bytes += view.bytes;
      }
    }
  };

  double push_s = 0;
  const Clock::time_point start = Clock::now();
  for (uint64_t pos = 0; pos < kTuplesPerSource; pos += kRoundTuples) {
    const uint64_t n = std::min(kRoundTuples, kTuplesPerSource - pos);
    const Clock::time_point push_start = Clock::now();
    for (uint32_t s = 0; s < kSources; ++s) {
      if (batched) {
        for (uint64_t i = 0; i < n; i += kBatchTuples) {
          DFI_CHECK(sources[s]
                        ->PushBatch(&keys[s][pos + i],
                                    std::min<uint64_t>(kBatchTuples, n - i))
                        .ok());
        }
      } else {
        for (uint64_t i = 0; i < n; ++i) {
          DFI_CHECK(sources[s]->Push(&keys[s][pos + i]).ok());
        }
      }
    }
    push_s += SecondsSince(push_start);
    drain();
  }
  for (auto& source : sources) DFI_CHECK(source->Close().ok());
  for (auto& target : targets) {
    SegmentView view;
    while (target->ConsumeSegment(&view) != ConsumeResult::kFlowEnd) {
      bytes += view.bytes;
    }
  }

  ShuffleRun run;
  run.wall_s = SecondsSince(start);
  run.push_s = push_s;
  run.mtuples_s = kSources * kTuplesPerSource / run.wall_s / 1e6;
  run.push_mtuples_s = kSources * kTuplesPerSource / push_s / 1e6;
  for (auto& target : targets) {
    run.sim_done = std::max(run.sim_done, target->clock().now());
  }
  DFI_CHECK_EQ(bytes, uint64_t{kSources} * kTuplesPerSource * 8);
  return run;
}

void PartA() {
  PrintSection(
      "Ablation: batched vs tuple-at-a-time push, 4:4 shuffle, 8 B tuples");
  // Interleave repetitions and keep each mode's best run: the emulation
  // host (often a small VM) sees multi-x wall-clock noise, and the fastest
  // run is the one closest to the actual cost of the code path.
  ShuffleRun scalar, batch;
  for (int rep = 0; rep < 3; ++rep) {
    const ShuffleRun s = RunShuffle(/*batched=*/false);
    if (rep == 0 || s.wall_s < scalar.wall_s) scalar = s;
    const ShuffleRun b = RunShuffle(/*batched=*/true);
    if (rep == 0 || b.wall_s < batch.wall_s) batch = b;
  }
  TablePrinter table({"push mode", "push Mtuples/s", "flow Mtuples/s",
                      "wall time", "simulated time"});
  char buf[32], buf2[32];
  std::snprintf(buf, sizeof(buf), "%.1f", scalar.push_mtuples_s);
  std::snprintf(buf2, sizeof(buf2), "%.1f", scalar.mtuples_s);
  table.AddRow({"Push (per tuple)", buf, buf2,
                Millis(SimTime(scalar.wall_s * 1e9)),
                Millis(scalar.sim_done)});
  std::snprintf(buf, sizeof(buf), "%.1f", batch.push_mtuples_s);
  std::snprintf(buf2, sizeof(buf2), "%.1f", batch.mtuples_s);
  table.AddRow({"PushBatch (4096)", buf, buf2,
                Millis(SimTime(batch.wall_s * 1e9)),
                Millis(batch.sim_done)});
  table.Print();
  TablePrinter summary({"metric", "value"});
  std::snprintf(buf, sizeof(buf), "%.2fx",
                batch.push_mtuples_s / scalar.push_mtuples_s);
  summary.AddRow({"push speedup", buf});
  std::snprintf(buf, sizeof(buf), "%.2fx", batch.mtuples_s / scalar.mtuples_s);
  summary.AddRow({"end-to-end speedup", buf});
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                100.0 * (static_cast<double>(batch.sim_done) -
                         static_cast<double>(scalar.sim_done)) /
                    static_cast<double>(scalar.sim_done));
  summary.AddRow({"simulated-time delta", buf});
  summary.Print();
  std::printf(
      "(the batched path devirtualizes partitioning and reserves segment\n"
      " space once per run; simulated time must stay identical because the\n"
      " same per-tuple virtual costs are charged batch-wise)\n");
}

/// Part B: wall-clock cost of one target consume with n-1 idle sources.
/// Only source 0 pushes; single-threaded rounds of "fill K segments, then
/// TryConsumeSegment K times" isolate the consume-side scan.
double ConsumeNsPerSegment(uint32_t num_sources) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "idle_scan";
  for (uint32_t s = 0; s < num_sources; ++s) {
    spec.sources.Append(Endpoint{addrs[0], s});
  }
  spec.targets.Append(Endpoint{addrs[1], 0});
  spec.schema = PaddedSchema(8);
  DFI_CHECK(dfi.InitShuffleFlow(std::move(spec)).ok());

  // Handles for every source so the flow can terminate: only source 0
  // pushes; the rest stay idle until the final Close.
  std::vector<std::unique_ptr<ShuffleSource>> sources;
  for (uint32_t s = 0; s < num_sources; ++s) {
    auto created = dfi.CreateShuffleSource("idle_scan", s);
    DFI_CHECK(created.ok());
    sources.push_back(std::move(*created));
  }
  ShuffleSource* source = sources[0].get();
  auto target = dfi.CreateShuffleTarget("idle_scan", 0);
  DFI_CHECK(target.ok());

  // 8 KiB segments of 8 B tuples; K=16 full segments fit the 32-slot ring.
  constexpr uint32_t kSegmentsPerRound = 16;
  constexpr uint64_t kTuplesPerSegment = 8 * kKiB / 8;
  constexpr uint32_t kRounds = 400;
  std::vector<uint64_t> keys(kTuplesPerSegment * kSegmentsPerRound);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;

  double consume_s = 0;
  uint64_t consumed = 0;
  for (uint32_t round = 0; round < kRounds; ++round) {
    DFI_CHECK(source->PushBatch(keys.data(), keys.size()).ok());
    const Clock::time_point start = Clock::now();
    SegmentView view;
    ConsumeResult result;
    while ((*target)->TryConsumeSegment(&view, &result)) ++consumed;
    consume_s += SecondsSince(start);
  }
  DFI_CHECK_EQ(consumed, uint64_t{kSegmentsPerRound} * kRounds);
  for (auto& s : sources) DFI_CHECK(s->Close().ok());
  SegmentView view;
  while ((*target)->ConsumeSegment(&view) != ConsumeResult::kFlowEnd) {
  }
  return consume_s * 1e9 / consumed;
}

void PartB() {
  PrintSection(
      "Ablation: target consume cost vs idle source channels "
      "(ready-list scan)");
  TablePrinter table({"source channels (1 active)", "wall ns/segment"});
  for (uint32_t n : {1u, 4u, 16u, 64u, 256u}) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", ConsumeNsPerSegment(n));
    table.AddRow({std::to_string(n), buf});
  }
  table.Print();
  std::printf(
      "(the per-target gate feeds a ready-channel list, so consume cost\n"
      " tracks deliveries, not the channel count; a round-robin scan would\n"
      " grow linearly with idle channels)\n");
}

void Run() {
  PartA();
  PartB();
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
