// Control-plane churn bench (robustness PR — not a paper figure): the
// sharded, replicated RegistryService under publish/retrieve/close churn
// at 1e4..1e6 concurrent flows, plus shard failover under a FaultPlan.
//
// Three sections:
//   1. Churn throughput: 8 clients batch-publish, batch-retrieve, and
//      close half of N flows against 8 shards x 3 replicas; reported as
//      applied control ops per virtual second (the emulated service rate)
//      and host wall seconds (the emulator's own cost).
//   2. Failover: the same churn with the FaultPlan crashing shard 0's
//      primary node mid-run. The run must complete with zero lost and
//      zero duplicated registrations (audited flow-by-flow), and the
//      virtual recovery time — crash to the first op applied by the
//      promoted backup — is reported from the event trace.
//   3. Determinism: the failover run replayed at engine pool sizes 1/2/4
//      must produce the identical registry event trace (ISSUE 7 chaos
//      criterion); we compare the order-insensitive trace hash and the
//      canonical sorted trace string.
//
// DFI_CHURN_MAX_FLOWS (env) caps the section-1 scales — CI smoke runs set
// it small so the --json run stays in seconds.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/exec/engine.h"
#include "registry/registry_client.h"
#include "registry/registry_service.h"

namespace dfi::bench {
namespace {

using reg::RegistryService;
using reg::RegistryServiceOptions;

/// Minimal published flow state: the control plane never looks inside.
struct BenchFlowState : FlowStateBase {
  void Abort(const Status&) override {}
};

constexpr uint32_t kClients = 8;
constexpr uint32_t kShards = 8;
constexpr uint32_t kReplication = 3;
constexpr size_t kBatch = 32;  // ops per RPC

struct ChurnConfig {
  size_t flows = 10'000;
  uint32_t workers = 4;
  SimTime crash_at = 0;  // 0 = no fault; else crash shard 0's primary node
  bool record_trace = false;
};

struct ChurnResult {
  uint64_t applied = 0;
  uint64_t rpcs = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  uint64_t duplicates = 0;
  SimTime virtual_ns = 0;     // latest client clock at the end of churn
  SimTime recovery_ns = -1;   // crash -> first apply by the promoted backup
  uint64_t trace_hash = 0;
  std::string trace;          // iff record_trace
  double wall_s = 0;
};

std::string FlowName(uint32_t client, size_t i) {
  return "churn.c" + std::to_string(client) + ".f" + std::to_string(i);
}

ChurnResult RunChurn(const ChurnConfig& cfg) {
  net::Fabric fabric;
  const std::vector<net::NodeId> nodes =
      fabric.AddNodes(kShards * kReplication + kClients);

  RegistryServiceOptions opts;
  opts.num_shards = kShards;
  opts.replication = kReplication;
  opts.replica_nodes.assign(nodes.begin(),
                            nodes.begin() + kShards * kReplication);
  opts.record_trace = cfg.record_trace;
  RegistryService service(&fabric, opts);
  if (cfg.crash_at > 0) {
    // Shard 0's replica 0 is its primary until the crash.
    fabric.fault_plan().CrashNode(service.ReplicaNode(0, 0), cfg.crash_at);
  }

  const size_t per_client = cfg.flows / kClients;
  std::vector<std::unique_ptr<VirtualClock>> clocks(kClients);
  std::vector<std::unique_ptr<reg::RegistryClient>> clients(kClients);
  for (uint32_t c = 0; c < kClients; ++c) {
    clocks[c] = std::make_unique<VirtualClock>();
    clients[c] = std::make_unique<reg::RegistryClient>(
        &service,
        reg::RegistryClientOptions{
            .client_id = c + 1,
            .node = nodes[kShards * kReplication + c]},
        clocks[c].get());
  }

  const auto wall_start = std::chrono::steady_clock::now();
  exec::Engine engine({.workers = cfg.workers});
  for (uint32_t c = 0; c < kClients; ++c) {
    engine.Spawn(c, "churn" + std::to_string(c), [&, c] {
      reg::RegistryClient& client = *clients[c];
      // Publish every flow, in RPC-sized batches.
      for (size_t base = 0; base < per_client; base += kBatch) {
        const size_t n = std::min(kBatch, per_client - base);
        std::vector<std::pair<std::string, std::shared_ptr<FlowStateBase>>>
            batch;
        batch.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          batch.emplace_back(FlowName(c, base + i),
                             std::make_shared<BenchFlowState>());
        }
        auto r = client.PublishBatch(batch);
        DFI_CHECK(r.ok()) << r.status();
        for (const auto& op : *r) DFI_CHECK(op.status.ok()) << op.status;
      }
      // Retrieve every flow back.
      for (size_t base = 0; base < per_client; base += kBatch) {
        const size_t n = std::min(kBatch, per_client - base);
        std::vector<std::string> names;
        names.reserve(n);
        for (size_t i = 0; i < n; ++i) names.push_back(FlowName(c, base + i));
        auto r = client.RetrieveBatch(names);
        DFI_CHECK(r.ok()) << r.status();
        for (const auto& op : *r) DFI_CHECK(op.status.ok()) << op.status;
      }
      // Close the even-indexed half: steady-state churn, not teardown.
      std::vector<std::string> closing;
      for (size_t i = 0; i < per_client; i += 2) {
        closing.push_back(FlowName(c, i));
        if (closing.size() == kBatch || i + 2 >= per_client) {
          auto r = client.CloseBatch(closing);
          DFI_CHECK(r.ok()) << r.status();
          for (const auto& op : *r) DFI_CHECK(op.status.ok()) << op.status;
          closing.clear();
        }
      }
    });
  }
  engine.Run();

  ChurnResult out;
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
  out.applied = service.applied_ops();
  out.duplicates = service.duplicates_suppressed();
  out.trace_hash = service.TraceHash();
  for (uint32_t c = 0; c < kClients; ++c) {
    const auto stats = clients[c]->stats();
    out.rpcs += stats.rpcs;
    out.retries += stats.retries;
    out.failovers += stats.failovers;
    out.virtual_ns = std::max(out.virtual_ns, clocks[c]->now());
  }

  // Audit: zero lost, zero duplicated. Every flow that was closed is gone;
  // every flow that was not is retrievable exactly as published; the
  // primaries' total matches. An auditor client counts them all.
  const size_t expected_live = kClients * (per_client - (per_client + 1) / 2);
  DFI_CHECK_EQ(service.TotalFlows(out.virtual_ns + 1), expected_live);
  VirtualClock audit_clock;
  audit_clock.AdvanceTo(out.virtual_ns + 1);
  reg::RegistryClient auditor(
      &service,
      reg::RegistryClientOptions{.client_id = kClients + 1,
                                 .node = nodes.back()},
      &audit_clock);
  exec::Engine audit_engine({.workers = 1});
  audit_engine.Spawn(0, "audit", [&] {
    for (uint32_t c = 0; c < kClients; ++c) {
      for (size_t base = 0; base < per_client; base += kBatch) {
        const size_t n = std::min(kBatch, per_client - base);
        std::vector<std::string> names;
        names.reserve(n);
        for (size_t i = 0; i < n; ++i) names.push_back(FlowName(c, base + i));
        auto r = auditor.RetrieveBatch(names);
        DFI_CHECK(r.ok()) << r.status();
        for (size_t i = 0; i < n; ++i) {
          const bool closed = (base + i) % 2 == 0;
          const StatusCode code = (*r)[i].status.code();
          DFI_CHECK(code == (closed ? StatusCode::kNotFound : StatusCode::kOk))
              << names[i] << ": " << (*r)[i].status;
        }
      }
    }
  });
  audit_engine.Run();

  if (cfg.record_trace) {
    out.trace = service.TraceString();
    if (cfg.crash_at > 0) {
      // Recovery: crash to the first op the promoted backup (epoch 2 of
      // shard 0) applied. The crash must land mid-churn: the trace has to
      // show shard-0 applies under both epochs.
      bool pre_crash = false;
      for (const reg::RegistryEvent& e : service.Events()) {
        if (e.shard != 0) continue;
        if (e.epoch == 1) pre_crash = true;
        if (e.epoch >= 2) {
          out.recovery_ns = e.at - cfg.crash_at;
          break;
        }
      }
      DFI_CHECK(pre_crash) << "crash landed before any shard-0 traffic";
    }
  }
  return out;
}

void Run() {
  // --- Section 1: churn throughput --------------------------------------
  size_t max_flows = 1'000'000;
  if (const char* cap = std::getenv("DFI_CHURN_MAX_FLOWS")) {
    max_flows = std::strtoull(cap, nullptr, 10);
  }
  PrintSection(
      "Registry churn: publish+retrieve+close, 8 clients, 8 shards x 3 "
      "replicas");
  TablePrinter table({"flows", "ctl ops", "RPCs", "virtual time",
                      "ops/virtual-s", "wall"});
  double peak_ops_per_s = 0;
  for (size_t flows : {size_t{10'000}, size_t{100'000}, size_t{1'000'000}}) {
    if (flows > max_flows) continue;
    ChurnConfig cfg;
    cfg.flows = flows;
    ChurnResult r = RunChurn(cfg);
    const double ops_per_s =
        static_cast<double>(r.applied) / r.virtual_ns * 1e9;
    peak_ops_per_s = std::max(peak_ops_per_s, ops_per_s);
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.2f s", r.wall_s);
    table.AddRow({Num(static_cast<double>(flows)),
                  Num(static_cast<double>(r.applied)),
                  Num(static_cast<double>(r.rpcs)), Millis(r.virtual_ns),
                  Num(ops_per_s), wall});
  }
  table.Print();
  RecordMetric("peak_ctl_ops_per_virtual_s", peak_ops_per_s, "ops/s");

  // --- Section 2: failover under churn ----------------------------------
  PrintSection(
      "Shard failover: FaultPlan crashes shard 0's primary mid-churn "
      "(20k flows)");
  ChurnConfig fcfg;
  fcfg.flows = 20'000;
  fcfg.crash_at = 300'000;  // mid-publish for every client
  fcfg.record_trace = true;
  ChurnResult f = RunChurn(fcfg);
  // A dead primary mostly shows as silence (retry + view refresh), and
  // only as a retry when an RPC is in flight across the crash instant —
  // both counters are reported but may legitimately be zero. The hard
  // evidence of a mid-churn failover is the trace: shard-0 applies under
  // epoch 1 *and* under epoch 2 (checked in RunChurn).
  DFI_CHECK_GE(f.recovery_ns, 0) << "no epoch-2 apply on the crashed shard";
  TablePrinter ftable({"crash at", "recovery", "failovers", "retries",
                       "dup suppressed", "ctl ops"});
  ftable.AddRow({Micros(fcfg.crash_at), Micros(f.recovery_ns),
                 Num(static_cast<double>(f.failovers)),
                 Num(static_cast<double>(f.retries)),
                 Num(static_cast<double>(f.duplicates)),
                 Num(static_cast<double>(f.applied))});
  ftable.Print();
  RecordMetric("failover_recovery_us", f.recovery_ns / 1000.0, "us");
  std::printf(
      "audit: zero lost, zero duplicated registrations (every surviving\n"
      "flow retrieved, every closed flow absent, primary totals match).\n");

  // --- Section 3: trace determinism across pool sizes -------------------
  PrintSection(
      "Determinism: identical registry event trace at engine pool sizes "
      "1/2/4 (4k flows, same fault plan)");
  ChurnConfig dcfg;
  dcfg.flows = 4'000;
  dcfg.crash_at = 300'000;
  dcfg.record_trace = true;
  std::string baseline_trace;
  uint64_t baseline_hash = 0;
  for (uint32_t workers : {1u, 2u, 4u}) {
    dcfg.workers = workers;
    ChurnResult r = RunChurn(dcfg);
    if (workers == 1) {
      baseline_trace = r.trace;
      baseline_hash = r.trace_hash;
    } else {
      DFI_CHECK_EQ(r.trace_hash, baseline_hash)
          << "trace hash diverged at " << workers << " workers";
      DFI_CHECK(r.trace == baseline_trace)
          << "trace diverged at " << workers << " workers";
    }
    std::printf("workers=%u  trace_hash=%016llx  events ok\n", workers,
                static_cast<unsigned long long>(r.trace_hash));
  }
  RecordMetric("trace_hash", static_cast<double>(baseline_hash & 0xffffffff),
               "low32");
  std::printf(
      "(expected: one crashed primary costs one epoch bump and a bounded\n"
      " recovery window; churn completes exactly-once at every pool size\n"
      " with the same canonical event trace.)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
