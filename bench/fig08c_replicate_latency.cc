// Figure 8c: replicate flow latency — a source replicates a request to N
// targets and waits for replies from all of them.
// Paper result: naive replication is fastest at N=1 but its latency grows
// with N (serialized sends); multicast grows much less and wins at N=8.

#include "bench/bench_common.h"
#include "common/stats.h"

namespace dfi::bench {
namespace {

constexpr int kRounds = 300;

SimTime RunCell(uint32_t tuple_size, uint32_t num_targets, bool multicast) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 1 + num_targets);
  DfiRuntime dfi(&fabric);

  ReplicateFlowSpec req;
  req.name = "req";
  req.sources.Append(Endpoint{addrs[0], 0});
  for (uint32_t t = 0; t < num_targets; ++t) {
    req.targets.Append(Endpoint{addrs[1 + t], 0});
  }
  req.schema = PaddedSchema(tuple_size);
  req.options.optimization = FlowOptimization::kLatency;
  req.options.use_multicast = multicast;
  DFI_CHECK_OK(dfi.InitReplicateFlow(std::move(req)));

  ShuffleFlowSpec resp;
  resp.name = "resp";
  for (uint32_t t = 0; t < num_targets; ++t) {
    resp.sources.Append(Endpoint{addrs[1 + t], 0});
  }
  resp.targets.Append(Endpoint{addrs[0], 0});
  resp.schema = Schema{{"seq", DataType::kUInt64}};
  resp.options.optimization = FlowOptimization::kLatency;
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(resp)));

  std::vector<std::thread> servers;
  for (uint32_t t = 0; t < num_targets; ++t) {
    servers.emplace_back([&, t] {
      auto in = dfi.CreateReplicateTarget("req", t);
      auto out = dfi.CreateShuffleSource("resp", t);
      TupleView tuple;
      while ((*in)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        (*out)->clock().AdvanceTo((*in)->clock().now());
        const uint64_t seq = tuple.Get<uint64_t>(0);
        DFI_CHECK_OK((*out)->Push(&seq));
        (*in)->clock().AdvanceTo((*out)->clock().now());
      }
      DFI_CHECK_OK((*out)->Close());
    });
  }

  auto src = dfi.CreateReplicateSource("req", 0);
  auto tgt = dfi.CreateShuffleTarget("resp", 0);
  std::vector<uint8_t> buf(tuple_size, 0);
  LatencyRecorder rtt;
  for (int i = 0; i < kRounds; ++i) {
    const SimTime t0 =
        std::max((*src)->clock().now(), (*tgt)->clock().now());
    (*src)->clock().AdvanceTo(t0);
    (*tgt)->clock().AdvanceTo(t0);
    TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
    DFI_CHECK_OK((*src)->Push(buf.data()));
    for (uint32_t r = 0; r < num_targets; ++r) {
      TupleView tuple;
      DFI_CHECK((*tgt)->Consume(&tuple) == ConsumeResult::kOk);
    }
    rtt.Record((*tgt)->clock().now() - t0);
  }
  DFI_CHECK_OK((*src)->Close());
  for (auto& th : servers) th.join();
  TupleView tuple;
  while ((*tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
  }
  return rtt.Median();
}

void Run() {
  PrintSection(
      "Figure 8c: replicate flow median latency until replies from all "
      "targets (1:N)");
  TablePrinter table({"tuple size", "naive N=1", "naive N=8",
                      "multicast N=1", "multicast N=8"});
  // 4064 B is the largest tuple that fits one multicast datagram
  // (4 KiB MTU minus the segment footer).
  for (uint32_t size : {16u, 64u, 256u, 1024u, 4064u}) {
    const SimTime naive8 = RunCell(size, 8, false);
    const SimTime mcast8 = RunCell(size, 8, true);
    table.AddRow({FormatBytes(size), Micros(RunCell(size, 1, false)),
                  Micros(naive8), Micros(RunCell(size, 1, true)),
                  Micros(mcast8)});
    if (size == 64u) {
      RecordMetric("naive 1:8 median latency (64 B)", naive8 / 1000.0, "us");
      RecordMetric("multicast 1:8 median latency (64 B)", mcast8 / 1000.0,
                   "us");
    }
  }
  table.Print();
  std::printf(
      "(expected: naive wins at N=1, multicast wins at N=8 because the\n"
      " naive source serializes one write per target)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
