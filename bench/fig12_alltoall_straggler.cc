// Figure 12: collective shuffling (8:8) with one straggling node — batched
// MPI_Alltoall vs DFI shuffle flow, for two table sizes and straggler
// factors s=1 (none) and s=0.5 (one node at half CPU speed).
// The paper's tables are 2 GiB / 8 GiB; we scale both down 16x (128 MiB /
// 512 MiB) — ratios are what matter.
// Paper result: MPI suffers the full straggler delay (bulk-synchronous: no
// transfer starts before the straggler finished its local pre-shuffle);
// DFI overlaps and is much less affected.

#include <atomic>

#include "bench/bench_common.h"
#include "mpi/mpi_env.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kNodes = 8;
constexpr uint32_t kTupleSize = 64;

SimTime RunDfi(uint64_t table_bytes, double straggle) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, kNodes);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "st";
  spec.sources = DfiNodes::GridOf(addrs, 1);
  spec.targets = DfiNodes::GridOf(addrs, 1);
  spec.schema = PaddedSchema(kTupleSize);
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint64_t tuples = table_bytes / kNodes / kTupleSize;
  // Per-tuple compute cost of producing a tuple; the straggler (worker 0)
  // pays 1/s times more (CPU frequency scaled by s).
  const SimTime base_cost = 20;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kNodes; ++w) {
    workers.emplace_back([&, w] {
      const SimTime cost =
          w == 0 ? static_cast<SimTime>(base_cost / straggle) : base_cost;
      auto src = dfi.CreateShuffleSource("st", w);
      auto tgt = dfi.CreateShuffleTarget("st", w);
      std::vector<uint8_t> buf(kTupleSize, 0);
      bool drained = false;
      for (uint64_t i = 0; i < tuples; ++i) {
        (*src)->clock().Advance(cost);  // compute producing the tuple
        TupleWriter(buf.data(), &(*src)->schema())
            .Set<uint64_t>(0, w * tuples + i);
        DFI_CHECK_OK((*src)->Push(buf.data()));
        if (i % 64 == 0) {
          SegmentView seg;
          ConsumeResult r;
          while (!drained && (*tgt)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              drained = true;
              break;
            }
          }
        }
      }
      DFI_CHECK_OK((*src)->Close());
      SegmentView seg;
      while (!drained) {
        if ((*tgt)->ConsumeSegment(&seg) == ConsumeResult::kFlowEnd) {
          drained = true;
        }
      }
      const SimTime end =
          std::max((*src)->clock().now(), (*tgt)->clock().now());
      SimTime prev = finish.load();
      while (prev < end && !finish.compare_exchange_weak(prev, end)) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

SimTime RunMpi(uint64_t table_bytes, double straggle) {
  net::Fabric fabric;
  auto nodes = fabric.AddNodes(kNodes);
  mpi::MpiEnv env(&fabric, nodes);
  const uint64_t tuples = table_bytes / kNodes / kTupleSize;
  const SimTime base_cost = 20;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t r = 0; r < kNodes; ++r) {
    workers.emplace_back([&, r] {
      const SimTime cost =
          r == 0 ? static_cast<SimTime>(base_cost / straggle) : base_cost;
      VirtualClock clock;
      // Batched variant: pre-shuffle the whole local table, then one big
      // Alltoall for the complete batch (paper section 6.2.2).
      const net::SimConfig& cfg = fabric.config();
      clock.Advance(static_cast<SimTime>(tuples) *
                    (cost + cfg.tuple_push_fixed_ns +
                     static_cast<SimTime>(kTupleSize *
                                          cfg.tuple_copy_ns_per_byte)));
      const uint64_t bytes_per_rank = tuples * kTupleSize / kNodes;
      std::vector<uint8_t> send(kNodes * bytes_per_rank, 0);
      std::vector<uint8_t> recv(kNodes * bytes_per_rank, 0);
      DFI_CHECK_OK(env.Alltoall(static_cast<int>(r), send.data(),
                                recv.data(), bytes_per_rank, &clock));
      SimTime prev = finish.load();
      while (prev < clock.now() &&
             !finish.compare_exchange_weak(prev, clock.now())) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

void Run() {
  PrintSection(
      "Figure 12: collective shuffling (8:8) with one straggling node "
      "(batched; tables scaled 16x down from the paper's 2/8 GiB)");
  TablePrinter table(
      {"configuration", "MPI Alltoall", "DFI shuffle flow", "DFI speedup"});
  struct Cell {
    const char* name;
    uint64_t bytes;
    double s;
  };
  for (const Cell& cell :
       {Cell{"s=1.0, T=128 MiB", 128 * kMiB, 1.0},
        Cell{"s=0.5, T=128 MiB", 128 * kMiB, 0.5},
        Cell{"s=1.0, T=512 MiB", 512 * kMiB, 1.0},
        Cell{"s=0.5, T=512 MiB", 512 * kMiB, 0.5}}) {
    const SimTime m = RunMpi(cell.bytes, cell.s);
    const SimTime d = RunDfi(cell.bytes, cell.s);
    const double ratio = static_cast<double>(m) / static_cast<double>(d);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", ratio);
    table.AddRow({cell.name, Millis(m), Millis(d), speedup});
    RecordMetric(std::string("DFI straggler speedup, ") + cell.name, ratio,
                 "x");
  }
  table.Print();
  std::printf(
      "(expected: the straggler hits MPI with the full pre-shuffle delay —\n"
      " the collective blocks until everyone is ready; DFI keeps sending\n"
      " while computing and degrades far less)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
