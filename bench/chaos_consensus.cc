// Chaos experiment: Multi-Paxos leader failover under a scripted
// fail-stop crash (robustness PR — not a paper figure). A FaultPlan kills
// the term-1 leader's node mid-run; every survivor unwinds through the
// bounded-blocking machinery (poisoned channels, kPeerFailed fault-plan
// probes, block deadlines) and fails over to a pre-published term-2 flow
// set. Reported: requests completed across both terms, how many in-flight
// requests the clients resubmitted, and the virtual recovery time from the
// crash to the first / last client's first term-2 reply.

#include "apps/consensus/consensus.h"
#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

using consensus::ChaosConfig;
using consensus::ChaosResult;

void Run() {
  PrintSection(
      "Chaos: Multi-Paxos leader failover (5 replicas, 6 clients, "
      "fail-stop leader crash, 50 ms block deadline)");
  TablePrinter table({"crash at", "requests/s", "completed", "resubmitted",
                      "recovery (first)", "recovery (all)"});
  for (SimTime crash_at : {500'000, 2'000'000, 8'000'000}) {
    ChaosConfig chaos;
    chaos.base.requests_per_client = 1500;
    chaos.base.seed = BenchSeed();
    chaos.crash_at_ns = crash_at;
    net::Fabric fabric;
    auto addrs = MakeCluster(
        &fabric, chaos.base.num_replicas + chaos.base.num_client_nodes);
    DfiRuntime dfi(&fabric);
    auto r = consensus::RunMultiPaxosChaos(&dfi, addrs, chaos);
    DFI_CHECK(r.ok()) << r.status();
    DFI_CHECK_EQ(r->completed,
                 static_cast<uint64_t>(chaos.base.num_clients) *
                     chaos.base.requests_per_client);
    table.AddRow({Micros(crash_at), Num(r->throughput_rps),
                  Num(static_cast<double>(r->completed)),
                  Num(static_cast<double>(r->resubmitted)),
                  Micros(r->recovery_first_reply_ns),
                  Micros(r->recovery_all_clients_ns)});
    std::printf("fault trace (crash at %s): %s\n", Micros(crash_at).c_str(),
                r->fault_trace.c_str());
  }
  table.Print();
  std::printf(
      "(expected: every request completes despite the crash — clients\n"
      " resubmit their in-flight request on the failover flows; recovery\n"
      " is dominated by crash detection plus the new leader's log replay,\n"
      " far below the worst-case block deadline.)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
