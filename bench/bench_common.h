#ifndef DFI_BENCH_BENCH_COMMON_H_
#define DFI_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/table_printer.h"
#include "bench_util/workload.h"
#include "common/units.h"
#include "core/dfi.h"

namespace dfi::bench {

/// Builds a fabric with `n` nodes using the default EDR-like SimConfig and
/// returns the node addresses.
inline std::vector<std::string> MakeCluster(net::Fabric* fabric, size_t n) {
  std::vector<std::string> addrs;
  for (net::NodeId id : fabric->AddNodes(n)) {
    addrs.push_back(fabric->node(id).address());
  }
  return addrs;
}

/// Formats a byte/ns rate as GiB/s with two decimals (the unit of the
/// paper's bandwidth plots).
inline std::string Rate(double bytes, SimTime ns) {
  if (ns <= 0) return "-";
  const double gib_per_s = bytes / static_cast<double>(ns) * 1e9 / kGiB;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f GiB/s", gib_per_s);
  return buf;
}

inline std::string Micros(SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1000.0);
  return buf;
}

inline std::string Millis(SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1.0e6);
  return buf;
}

inline std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Seed shared by all benches, settable with `--seed <n>` (defaults to the
/// classic 7). Benches that randomize workloads or fault injection read it
/// here so chaos runs can be replayed exactly.
inline uint64_t& BenchSeed() {
  static uint64_t seed = 7;
  return seed;
}

/// Shared bench entry point: parses the command line (`--json <path>`
/// emits the printed tables as machine-readable JSON for CI; `--seed <n>`
/// replays a run deterministically) and runs the benchmark body.
inline int BenchMain(int argc, char** argv, void (*run)()) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      BenchSeed() = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--seed <n>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!json_path.empty()) {
    // Fail before the run, not after: benches take minutes, and an
    // unwritable path would otherwise be reported only at the very end.
    if (!std::ofstream(json_path)) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    EnableResultCapture();
  }
  const auto wall_start = std::chrono::steady_clock::now();
  run();
  if (!json_path.empty()) {
    // Every bench JSON carries the host wall-clock cost of the run — the
    // emulator-throughput number CI trends alongside the simulated results.
    PrintSection("Run cost");
    RecordMetric("wall_clock", std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   wall_start)
                                   .count(),
                 "s");
  }
  if (!json_path.empty() && !WriteJsonResults(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

/// A pad schema with an 8-byte key and `size`-byte total tuples.
inline Schema PaddedSchema(uint32_t size) {
  DFI_CHECK_GE(size, 8u);
  if (size == 8) return Schema{{"key", DataType::kUInt64}};
  return Schema{{"key", DataType::kUInt64},
                {"pad", DataType::kChar, size - 8}};
}

}  // namespace dfi::bench

#endif  // DFI_BENCH_BENCH_COMMON_H_
