// Figure 7a: shuffle flow sender bandwidth, 1 sender node -> 8 target
// nodes, bandwidth-optimized, varying tuple size and source thread count.
// Paper result: ~2 source threads saturate 100 Gbps for tuples >= 256 B,
// 4 threads saturate for all sizes; 1 thread is CPU-bound for small tuples.

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint64_t kBytesPerSource = 64 * kMiB;

SimTime RunCell(uint32_t tuple_size, uint32_t num_sources) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 9);  // node 0 sends, nodes 1..8 receive
  DfiRuntime dfi(&fabric);

  ShuffleFlowSpec spec;
  spec.name = "bw";
  for (uint32_t s = 0; s < num_sources; ++s) {
    spec.sources.Append(Endpoint{addrs[0], s});
  }
  for (uint32_t t = 0; t < 8; ++t) {
    spec.targets.Append(Endpoint{addrs[1 + t], 0});
  }
  spec.schema = PaddedSchema(tuple_size);
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint64_t tuples_per_source = kBytesPerSource / tuple_size;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto src = dfi.CreateShuffleSource("bw", s);
      std::vector<uint8_t> buf(tuple_size, 0);
      for (uint64_t i = 0; i < tuples_per_source; ++i) {
        TupleWriter(buf.data(), &(*src)->schema())
            .Set<uint64_t>(0, s * tuples_per_source + i);
        DFI_CHECK_OK((*src)->Push(buf.data()));
      }
      DFI_CHECK_OK((*src)->Close());
    });
  }
  for (uint32_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi.CreateShuffleTarget("bw", t);
      SegmentView seg;
      while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
      }
      SimTime prev = finish.load();
      while (prev < (*tgt)->clock().now() &&
             !finish.compare_exchange_weak(prev, (*tgt)->clock().now())) {
      }
    });
  }
  for (auto& th : threads) th.join();
  return finish.load();
}

void Run() {
  PrintSection(
      "Figure 7a: shuffle flow sender bandwidth (1:8, bandwidth-optimized, "
      "8 KiB segments)");
  net::SimConfig cfg;
  std::printf("max link speed: %s\n",
              Rate(cfg.MaxLinkBytesPerSecond(), 1'000'000'000).c_str());
  TablePrinter table({"tuple size", "1 source thread", "2 source threads",
                      "4 source threads"});
  for (uint32_t tuple_size : {64u, 256u, 1024u}) {
    std::vector<std::string> row{FormatBytes(tuple_size)};
    for (uint32_t threads : {1u, 2u, 4u}) {
      const SimTime t = RunCell(tuple_size, threads);
      row.push_back(Rate(static_cast<double>(kBytesPerSource) * threads, t));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
