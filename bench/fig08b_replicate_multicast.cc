// Figure 8b: replicate flow with RDMA multicast, 1 sender node -> 8 target
// nodes. The switch replicates, so aggregated receiver bandwidth exceeds
// the sender's link speed — up to ~8x one in-group link's rate.
// Paper result: up to 64 GiB/s aggregated; additional source threads in
// the same multicast group do NOT scale (NIC/group serialization).

#include <atomic>

#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

constexpr uint64_t kBytesPerSource = 16 * kMiB;

double RunCell(uint32_t tuple_size, uint32_t num_sources) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 9);
  DfiRuntime dfi(&fabric);

  ReplicateFlowSpec spec;
  spec.name = "mc";
  for (uint32_t s = 0; s < num_sources; ++s) {
    spec.sources.Append(Endpoint{addrs[0], s});
  }
  for (uint32_t t = 0; t < 8; ++t) {
    spec.targets.Append(Endpoint{addrs[1 + t], 0});
  }
  spec.schema = PaddedSchema(tuple_size);
  spec.options.use_multicast = true;
  DFI_CHECK_OK(dfi.InitReplicateFlow(std::move(spec)));

  const uint64_t tuples = kBytesPerSource / tuple_size;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> threads;
  for (uint32_t s = 0; s < num_sources; ++s) {
    threads.emplace_back([&, s] {
      auto src = dfi.CreateReplicateSource("mc", s);
      std::vector<uint8_t> buf(tuple_size, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
        DFI_CHECK_OK((*src)->Push(buf.data()));
      }
      DFI_CHECK_OK((*src)->Close());
    });
  }
  for (uint32_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto tgt = dfi.CreateReplicateTarget("mc", t);
      SegmentView seg;
      while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
      }
      SimTime prev = finish.load();
      while (prev < (*tgt)->clock().now() &&
             !finish.compare_exchange_weak(prev, (*tgt)->clock().now())) {
      }
    });
  }
  for (auto& th : threads) th.join();
  const double delivered =
      static_cast<double>(kBytesPerSource) * num_sources * 8;
  return delivered / static_cast<double>(finish.load());
}

void Run() {
  PrintSection(
      "Figure 8b: replicate flow aggregated receiver bandwidth "
      "(RDMA multicast, 1:8)");
  TablePrinter table({"tuple size", "1 source thread", "2 source threads",
                      "4 source threads"});
  double peak = 0;  // bytes/ns, best cell
  for (uint32_t tuple_size : {64u, 256u, 1024u}) {
    std::vector<std::string> row{FormatBytes(tuple_size)};
    for (uint32_t threads : {1u, 2u, 4u}) {
      const double cell = RunCell(tuple_size, threads);
      if (cell > peak) peak = cell;
      row.push_back(Rate(cell * 1e9, 1'000'000'000));
    }
    table.AddRow(row);
  }
  table.Print();
  RecordMetric("peak aggregated receiver bandwidth", peak * 1e9 / kGiB,
               "GiB/s");
  std::printf(
      "(replication happens in the switch: aggregated receiver BW exceeds\n"
      " one link, approaching 8x the in-group rate; extra source threads\n"
      " in the same group do not scale)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
