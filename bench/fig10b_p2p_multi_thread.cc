// Figure 10b: MPI vs DFI point-to-point, multi-threaded, 64 B tuples —
// runtime of transferring a fixed table with 1..8 sender threads.
// Paper result: DFI scales with threads; MPI_THREAD_MULTIPLE *degrades*
// with threads (global latch contention); MPI multi-process scales better
// than MPI multi-threaded but worse than DFI.

#include <atomic>

#include "bench/bench_common.h"
#include "mpi/mpi_env.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kTupleSize = 64;
constexpr uint64_t kTableBytes = 16 * kMiB;

SimTime RunDfi(uint32_t threads_count) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, 2);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "p2p";
  for (uint32_t s = 0; s < threads_count; ++s) {
    spec.sources.Append(Endpoint{addrs[0], s});
    spec.targets.Append(Endpoint{addrs[1], s});
  }
  spec.schema = PaddedSchema(kTupleSize);
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint64_t tuples = kTableBytes / kTupleSize / threads_count;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t s = 0; s < threads_count; ++s) {
    workers.emplace_back([&, s] {
      auto src = dfi.CreateShuffleSource("p2p", s);
      std::vector<uint8_t> buf(kTupleSize, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema()).Set<uint64_t>(0, i);
        DFI_CHECK_OK((*src)->PushTo(buf.data(), s));
      }
      DFI_CHECK_OK((*src)->Close());
    });
    workers.emplace_back([&, s] {
      auto tgt = dfi.CreateShuffleTarget("p2p", s);
      SegmentView seg;
      while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
      }
      SimTime prev = finish.load();
      while (prev < (*tgt)->clock().now() &&
             !finish.compare_exchange_weak(prev, (*tgt)->clock().now())) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

/// MPI_THREAD_MULTIPLE: one rank per node, `threads_count` threads calling
/// MPI concurrently through the per-rank latch.
SimTime RunMpiMultiThreaded(uint32_t threads_count) {
  net::Fabric fabric;
  auto nodes = fabric.AddNodes(2);
  mpi::MpiEnv env(&fabric, nodes, mpi::ThreadMode::kMultiple, threads_count);
  const uint64_t tuples = kTableBytes / kTupleSize / threads_count;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads_count; ++t) {
    workers.emplace_back([&, t] {
      VirtualClock clock;
      std::vector<uint8_t> buf(kTupleSize, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        DFI_CHECK_OK(
            env.Send(0, 1, static_cast<int>(t), buf.data(), kTupleSize,
                     &clock));
      }
    });
    workers.emplace_back([&, t] {
      VirtualClock clock;
      std::vector<uint8_t> buf(kTupleSize, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        DFI_CHECK_OK(env.Recv(1, 0, static_cast<int>(t), buf.data(),
                              kTupleSize, &clock));
      }
      SimTime prev = finish.load();
      while (prev < clock.now() &&
             !finish.compare_exchange_weak(prev, clock.now())) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

/// MPI multi-process: `procs` single-threaded ranks per node (uncontended
/// latches, but shared-memory cost for co-located processes).
SimTime RunMpiMultiProcess(uint32_t procs) {
  net::Fabric fabric;
  auto base = fabric.AddNodes(2);
  std::vector<net::NodeId> ranks;
  for (uint32_t p = 0; p < procs; ++p) ranks.push_back(base[0]);
  for (uint32_t p = 0; p < procs; ++p) ranks.push_back(base[1]);
  mpi::MpiEnv env(&fabric, ranks, mpi::ThreadMode::kSingle);
  const uint64_t tuples = kTableBytes / kTupleSize / procs;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t p = 0; p < procs; ++p) {
    workers.emplace_back([&, p] {
      VirtualClock clock;
      std::vector<uint8_t> buf(kTupleSize, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        DFI_CHECK_OK(env.Send(static_cast<int>(p),
                              static_cast<int>(procs + p), 0, buf.data(),
                              kTupleSize, &clock));
      }
    });
    workers.emplace_back([&, p] {
      VirtualClock clock;
      std::vector<uint8_t> buf(kTupleSize, 0);
      for (uint64_t i = 0; i < tuples; ++i) {
        DFI_CHECK_OK(env.Recv(static_cast<int>(procs + p),
                              static_cast<int>(p), 0, buf.data(), kTupleSize,
                              &clock));
      }
      SimTime prev = finish.load();
      while (prev < clock.now() &&
             !finish.compare_exchange_weak(prev, clock.now())) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

void Run() {
  PrintSection(
      "Figure 10b: MPI vs DFI point-to-point runtime, multi-threaded, "
      "64 B tuples (16 MiB table)");
  TablePrinter table({"sender threads", "DFI bandwidth-opt",
                      "MPI multi-threaded", "MPI multi-process"});
  for (uint32_t threads_count : {1u, 2u, 4u, 8u}) {
    const SimTime dfi = RunDfi(threads_count);
    const SimTime mpi_mt = RunMpiMultiThreaded(threads_count);
    table.AddRow({std::to_string(threads_count), Millis(dfi),
                  Millis(mpi_mt),
                  Millis(RunMpiMultiProcess(threads_count))});
    if (threads_count == 8u) {
      RecordMetric("MPI multi-threaded / DFI runtime ratio (8 threads)",
                   static_cast<double>(mpi_mt) / static_cast<double>(dfi),
                   "x");
    }
  }
  table.Print();
  std::printf(
      "(expected: DFI improves with threads; MPI multi-threaded *worsens*\n"
      " with threads — latch contention; multi-process sits in between)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
