// Figure 14: join adaptability — with a 1000x smaller inner relation,
// swapping the inner shuffle flow for a replicate flow (fragment-and-
// replicate join) is a one-line change in DFI and wins.
// Paper result: DFI radix < MPI radix; DFI replicate join another ~20%
// faster (the tiny inner is cheap to replicate; the big outer stays local).

#include "apps/join/distributed_join.h"
#include "bench/bench_common.h"

namespace dfi::bench {
namespace {

void Run() {
  PrintSection(
      "Figure 14: distributed joins with a small inner relation "
      "(inner = outer / 1024), 8 nodes / 64 workers");
  join::JoinConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 8;
  cfg.outer_tuples = 1ull << 22;
  cfg.inner_tuples = cfg.outer_tuples / 1024;

  join::JoinResult mpi_result, radix_result, repl_result;
  {
    net::Fabric fabric;
    MakeCluster(&fabric, cfg.num_nodes);
    std::vector<net::NodeId> ids;
    for (uint32_t i = 0; i < cfg.num_nodes; ++i) ids.push_back(i);
    auto r = join::RunMpiRadixJoin(&fabric, ids, cfg);
    DFI_CHECK(r.ok()) << r.status();
    mpi_result = *r;
  }
  {
    net::Fabric fabric;
    auto addrs = MakeCluster(&fabric, cfg.num_nodes);
    DfiRuntime dfi(&fabric);
    auto r = join::RunDfiRadixJoin(&dfi, addrs, cfg);
    DFI_CHECK(r.ok()) << r.status();
    radix_result = *r;
  }
  {
    net::Fabric fabric;
    auto addrs = MakeCluster(&fabric, cfg.num_nodes);
    DfiRuntime dfi(&fabric);
    auto r = join::RunDfiReplicateJoin(&dfi, addrs, cfg);
    DFI_CHECK(r.ok()) << r.status();
    repl_result = *r;
  }
  DFI_CHECK_EQ(mpi_result.matches, radix_result.matches);
  DFI_CHECK_EQ(mpi_result.matches, repl_result.matches);

  TablePrinter table({"phase", "MPI radix join", "DFI radix join",
                      "DFI replicate join"});
  table.AddRow({"histogram", Millis(mpi_result.phases.histogram), "-", "-"});
  table.AddRow({"network partition",
                Millis(mpi_result.phases.network_partition),
                Millis(radix_result.phases.network_partition), "-"});
  table.AddRow({"network replication", "-", "-",
                Millis(repl_result.phases.network_replication)});
  table.AddRow({"sync barrier", Millis(mpi_result.phases.sync_barrier), "-",
                "-"});
  table.AddRow({"local partition",
                Millis(mpi_result.phases.local_partition), "(overlapped)",
                "-"});
  table.AddRow({"build + probe", Millis(mpi_result.phases.build_probe),
                Millis(radix_result.phases.build_probe),
                Millis(repl_result.phases.build_probe)});
  table.AddRow({"TOTAL", Millis(mpi_result.phases.total),
                Millis(radix_result.phases.total),
                Millis(repl_result.phases.total)});
  table.Print();
  RecordMetric("MPI / DFI replicate-join total runtime ratio",
               static_cast<double>(mpi_result.phases.total) /
                   static_cast<double>(repl_result.phases.total),
               "x");
  RecordMetric("join matches",
               static_cast<double>(repl_result.matches), "matches");
  std::printf("join matches: %llu (all variants)\n",
              static_cast<unsigned long long>(repl_result.matches));
  std::printf(
      "(expected: the replicate join is fastest — replicating the tiny\n"
      " inner is cheap and the big outer relation never crosses the wire)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
