// Figure 11: collective shuffling (8:8) in a streaming / mini-batched
// manner — MPI_Alltoall invoked per 8-tuple mini-batch vs a DFI shuffle
// flow, for growing tuple sizes. Reports runtime and effective bandwidth.
// Paper result: MPI's runtime is enormous for small tuples (every
// mini-batch is a bulk-synchronous collective); DFI pipelines and stays
// near wire speed; MPI approaches DFI only for very large tuples.

#include <atomic>

#include "bench/bench_common.h"
#include "mpi/mpi_env.h"

namespace dfi::bench {
namespace {

constexpr uint32_t kNodes = 8;
constexpr uint64_t kTableBytesPerNode = 4 * kMiB;

SimTime RunDfi(uint32_t tuple_size) {
  net::Fabric fabric;
  auto addrs = MakeCluster(&fabric, kNodes);
  DfiRuntime dfi(&fabric);
  ShuffleFlowSpec spec;
  spec.name = "a2a";
  spec.sources = DfiNodes::GridOf(addrs, 1);
  spec.targets = DfiNodes::GridOf(addrs, 1);
  spec.schema = PaddedSchema(tuple_size);
  DFI_CHECK_OK(dfi.InitShuffleFlow(std::move(spec)));

  const uint64_t tuples = kTableBytesPerNode / tuple_size;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kNodes; ++w) {
    workers.emplace_back([&, w] {
      auto src = dfi.CreateShuffleSource("a2a", w);
      auto tgt = dfi.CreateShuffleTarget("a2a", w);
      std::vector<uint8_t> buf(tuple_size, 0);
      bool drained = false;
      for (uint64_t i = 0; i < tuples; ++i) {
        TupleWriter(buf.data(), &(*src)->schema())
            .Set<uint64_t>(0, w * tuples + i);
        DFI_CHECK_OK((*src)->Push(buf.data()));
        if (i % 64 == 0) {
          SegmentView seg;
          ConsumeResult r;
          while (!drained && (*tgt)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              drained = true;
              break;
            }
          }
        }
      }
      DFI_CHECK_OK((*src)->Close());
      SegmentView seg;
      while (!drained) {
        if ((*tgt)->ConsumeSegment(&seg) == ConsumeResult::kFlowEnd) {
          drained = true;
        }
      }
      const SimTime end =
          std::max((*src)->clock().now(), (*tgt)->clock().now());
      SimTime prev = finish.load();
      while (prev < end && !finish.compare_exchange_weak(prev, end)) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

SimTime RunMpi(uint32_t tuple_size) {
  net::Fabric fabric;
  auto nodes = fabric.AddNodes(kNodes);
  mpi::MpiEnv env(&fabric, nodes);
  // Mini-batches of 8 tuples: on average one tuple per target per round
  // (the "streaming-based" use of the collective from the paper).
  const uint64_t tuples = kTableBytesPerNode / tuple_size;
  const uint64_t rounds = tuples / kNodes;
  std::atomic<SimTime> finish{0};
  std::vector<std::thread> workers;
  for (uint32_t r = 0; r < kNodes; ++r) {
    workers.emplace_back([&, r] {
      VirtualClock clock;
      std::vector<uint8_t> send(kNodes * tuple_size, 0);
      std::vector<uint8_t> recv(kNodes * tuple_size, 0);
      for (uint64_t i = 0; i < rounds; ++i) {
        // Local pre-shuffle of the mini-batch into per-target slots.
        clock.Advance(static_cast<SimTime>(
            kNodes * (fabric.config().tuple_push_fixed_ns +
                      tuple_size * fabric.config().tuple_copy_ns_per_byte)));
        DFI_CHECK_OK(env.Alltoall(static_cast<int>(r), send.data(),
                                  recv.data(), tuple_size, &clock));
      }
      SimTime prev = finish.load();
      while (prev < clock.now() &&
             !finish.compare_exchange_weak(prev, clock.now())) {
      }
    });
  }
  for (auto& th : workers) th.join();
  return finish.load();
}

void Run() {
  PrintSection(
      "Figure 11: collective shuffling (8:8), pipelined mini-batches of 8 "
      "tuples — MPI_Alltoall vs DFI shuffle flow (4 MiB per node)");
  TablePrinter table({"tuple size", "DFI runtime", "DFI bandwidth",
                      "MPI runtime", "MPI bandwidth"});
  const double total = static_cast<double>(kTableBytesPerNode) * kNodes;
  for (uint32_t size : {64u, 256u, 1024u, 4096u, 16384u}) {
    const SimTime d = RunDfi(size);
    const SimTime m = RunMpi(size);
    table.AddRow({FormatBytes(size), Millis(d), Rate(total, d), Millis(m),
                  Rate(total, m)});
    if (size == 64u) {
      RecordMetric("MPI / DFI shuffle runtime ratio (64 B)",
                   static_cast<double>(m) / static_cast<double>(d), "x");
      RecordMetric("DFI shuffle bandwidth (64 B)",
                   total / static_cast<double>(d) * 1e9 / kGiB, "GiB/s");
    }
  }
  table.Print();
  std::printf(
      "(expected: MPI is orders of magnitude slower for small tuples —\n"
      " every 8-tuple batch is a blocking collective; bandwidths converge\n"
      " for large tuples)\n");
}

}  // namespace
}  // namespace dfi::bench

int main(int argc, char** argv) {
  return dfi::bench::BenchMain(argc, argv, dfi::bench::Run);
}
