#!/usr/bin/env bash
# Sanitized CI job: builds everything with
# -DDFI_SANITIZE=<address|undefined|thread> and runs the full test suite
# (tier-1 plus the chaos suite) and the chaos consensus bench. Zero reports
# is the acceptance bar — teardown/poison code is where lifetime bugs hide,
# and the work-stealing scheduler is where data races would hide.
set -euo pipefail

KIND="${1:-address}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$KIND"

cmake -B "$BUILD" -S "$ROOT" -DDFI_SANITIZE="$KIND" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"

# Make sanitizer findings fatal and loud.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
# The unified transport layer (FlowEndpoint/FlowSink) concentrates the
# ring/teardown lifetime hazards the sanitizers exist for — rerun its suite
# standalone with shuffling and repetition to shake out latent races.
"$BUILD/tests/core_endpoint_test" --gtest_repeat=5 --gtest_shuffle
# The replicated control plane: failover promotion, the exactly-once dedup
# window, and parked barrier/retrieve waiters are lifetime- and race-prone
# by construction — rerun both suites shuffled.
"$BUILD/tests/registry_service_test" --gtest_repeat=3 --gtest_shuffle
"$BUILD/tests/flow_barrier_test" --gtest_repeat=3 --gtest_shuffle
# Adaptive shuffle: sink-side work stealing shares columns between target
# threads and hot-key migration rewires routing mid-flow — both are prime
# race/lifetime territory, so shake the property suite too.
"$BUILD/tests/core_adaptive_shuffle_property_test" --gtest_repeat=3 --gtest_shuffle
if [ "$KIND" = "thread" ]; then
  # TSan focus: the work-stealing engine. Repeat the scheduler unit tests
  # and the cross-pool-size determinism suite — every park/wake handoff,
  # steal, and fiber switch in the emulator runs under the race detector.
  "$BUILD/tests/exec_engine_test" --gtest_repeat=10 --gtest_shuffle
  "$BUILD/tests/engine_determinism_test" --gtest_repeat=3
fi
"$BUILD/bench/chaos_consensus" --seed "${DFI_CHAOS_SEED:-7}"
# The graph layer: one batched publish per graph, whole-graph poison on
# operator failure, and per-edge handle teardown — run the graph suite and
# the multi-stage pipeline (source/window/aggregate/subscriber actors over
# four flows) under the sanitizer, plus the examples so they can't rot.
"$BUILD/tests/core_graph_test" --gtest_repeat=3 --gtest_shuffle
"$BUILD/bench/pipeline_streaming" --smoke
"$BUILD/examples/quickstart"
"$BUILD/examples/stream_aggregation"
"$BUILD/examples/distributed_join"
"$BUILD/examples/replicated_kv"
echo "sanitized ($KIND) tier-1 + endpoint + graph + chaos suite passed"
