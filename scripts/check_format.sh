#!/usr/bin/env bash
# Formatting gate for CI. Uses clang-format (.clang-format at the repo
# root) when available; otherwise falls back to a lightweight lint that
# catches the violations clang-format would flag loudest — tabs, trailing
# whitespace, CRLF line endings, and a missing final newline.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

mapfile -t FILES < <(git ls-files '*.h' '*.cc')
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "no C++ sources tracked"
  exit 0
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "checking ${#FILES[@]} files with $(clang-format --version)"
  clang-format --dry-run -Werror "${FILES[@]}"
  echo "format check passed (clang-format)"
  exit 0
fi

echo "clang-format not found; running fallback lint on ${#FILES[@]} files"
fail=0
for f in "${FILES[@]}"; do
  if grep -nP '\t' "$f" >/dev/null; then
    echo "$f: tab character (use spaces)"
    grep -nP '\t' "$f" | head -3
    fail=1
  fi
  if grep -nP ' +$' "$f" >/dev/null; then
    echo "$f: trailing whitespace"
    grep -nP ' +$' "$f" | head -3
    fail=1
  fi
  if grep -nP '\r$' "$f" >/dev/null; then
    echo "$f: CRLF line ending"
    fail=1
  fi
  if [[ -s "$f" && -n "$(tail -c 1 "$f")" ]]; then
    echo "$f: missing final newline"
    fail=1
  fi
done
if [[ $fail -ne 0 ]]; then
  echo "format check FAILED (fallback lint)"
  exit 1
fi
echo "format check passed (fallback lint)"
