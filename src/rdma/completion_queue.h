#ifndef DFI_RDMA_COMPLETION_QUEUE_H_
#define DFI_RDMA_COMPLETION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/exec/engine.h"
#include "common/sim_time.h"
#include "rdma/verbs_types.h"

namespace dfi::rdma {

/// Emulated completion queue. Completions are pushed by the emulated NIC
/// (synchronously at post time, stamped with their virtual completion time)
/// and polled by application threads.
///
/// Polling charges SimConfig::poll_cq_ns to the caller's virtual clock and
/// joins the clock with the completion's virtual timestamp, which models
/// the real-world behavior that a completion can only be observed after it
/// happened.
class CompletionQueue {
 public:
  explicit CompletionQueue(SimTime poll_cost_ns)
      : poll_cost_ns_(poll_cost_ns) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Emulated-NIC side: enqueue a completion.
  void Push(const Completion& c);

  /// Non-blocking poll. Returns false if the queue is empty. On success the
  /// caller's clock advances by the poll cost and to at least `c->time`.
  bool TryPoll(Completion* c, VirtualClock* clock);

  /// Blocking poll: waits (real time) until a completion is available.
  void PollBlocking(Completion* c, VirtualClock* clock);

  /// Blocking poll with a real-time deadline; returns false on timeout.
  bool PollFor(Completion* c, VirtualClock* clock,
               std::chrono::milliseconds timeout);

  size_t size() const;

  /// Versioned-wakeup interface (as RingSync): engine tasks capture the
  /// version, TryPoll, and park via DeadlineWait::Block when empty.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  exec::WaitPoint& wait_point() { return wait_point_; }

 private:
  bool PopLocked(Completion* c, VirtualClock* clock);

  const SimTime poll_cost_ns_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  exec::WaitPoint wait_point_;
  std::deque<Completion> queue_;
  uint64_t version_ = 0;
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_COMPLETION_QUEUE_H_
