#ifndef DFI_RDMA_MEMORY_REGION_H_
#define DFI_RDMA_MEMORY_REGION_H_

#include <cstdint>
#include <memory>

#include "net/fabric.h"
#include "rdma/verbs_types.h"

namespace dfi::rdma {

/// A registered memory region: memory the emulated NIC may access directly.
/// Identified fabric-wide by its rkey (the directory lives in RdmaEnv).
/// Registration is counted against the owning node's registered-byte
/// accounting (paper section 6.1.4 measures exactly this).
class MemoryRegion {
 public:
  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;
  ~MemoryRegion();

  uint8_t* addr() const { return addr_; }
  size_t length() const { return length_; }
  uint32_t rkey() const { return rkey_; }
  net::NodeId node() const { return node_; }

  /// Remote reference to byte `offset` within this region.
  RemoteRef RefAt(uint64_t offset = 0) const { return {rkey_, offset}; }

 private:
  friend class RdmaContext;

  MemoryRegion(uint8_t* addr, size_t length, uint32_t rkey, net::NodeId node,
               std::unique_ptr<uint8_t[]> owned, net::Node* accounting);

  uint8_t* const addr_;
  const size_t length_;
  const uint32_t rkey_;
  const net::NodeId node_;
  std::unique_ptr<uint8_t[]> owned_;
  net::Node* const accounting_;
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_MEMORY_REGION_H_
