#include "rdma/memory_region.h"

#include <utility>

namespace dfi::rdma {

MemoryRegion::MemoryRegion(uint8_t* addr, size_t length, uint32_t rkey,
                           net::NodeId node, std::unique_ptr<uint8_t[]> owned,
                           net::Node* accounting)
    : addr_(addr),
      length_(length),
      rkey_(rkey),
      node_(node),
      owned_(std::move(owned)),
      accounting_(accounting) {
  accounting_->AddRegisteredBytes(length_);
}

MemoryRegion::~MemoryRegion() { accounting_->SubRegisteredBytes(length_); }

}  // namespace dfi::rdma
