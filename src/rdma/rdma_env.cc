#include "rdma/rdma_env.h"

#include <cstring>
#include <utility>

#include "common/logging.h"
#include "rdma/queue_pair.h"
#include "rdma/ud_queue_pair.h"

namespace dfi::rdma {

RdmaEnv::RdmaEnv(net::Fabric* fabric) : fabric_(fabric) {
  DFI_CHECK(fabric != nullptr);
}

RdmaEnv::~RdmaEnv() = default;

RdmaContext* RdmaEnv::context(net::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(node);
  if (it != contexts_.end()) return it->second.get();
  auto ctx = std::make_unique<RdmaContext>(this, node);
  RdmaContext* raw = ctx.get();
  contexts_.emplace(node, std::move(ctx));
  return raw;
}

uint32_t RdmaEnv::RegisterMr(uint8_t* base, size_t length, net::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t rkey = next_rkey_++;
  mrs_[rkey] = MrInfo{base, length, node};
  return rkey;
}

void RdmaEnv::DeregisterMr(uint32_t rkey) {
  std::lock_guard<std::mutex> lock(mu_);
  mrs_.erase(rkey);
}

StatusOr<MrInfo> RdmaEnv::ResolveMr(uint32_t rkey) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) {
    return Status::NotFound("rkey " + std::to_string(rkey));
  }
  return it->second;
}

StatusOr<uint8_t*> RdmaEnv::ResolveRemote(const RemoteRef& ref,
                                          uint32_t length) const {
  DFI_ASSIGN_OR_RETURN(MrInfo info, ResolveMr(ref.rkey));
  if (ref.offset + length > info.length) {
    return Status::OutOfRange(
        "remote access [" + std::to_string(ref.offset) + ", " +
        std::to_string(ref.offset + length) + ") exceeds MR of " +
        std::to_string(info.length) + " bytes");
  }
  return info.base + ref.offset;
}

net::NodeId RdmaEnv::MrNode(uint32_t rkey) const {
  auto info = ResolveMr(rkey);
  return info.ok() ? info->node : net::kInvalidNode;
}

uint32_t RdmaEnv::RegisterUdQp(UdQueuePair* qp) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t qpn = next_qpn_++;
  ud_qps_[qpn] = qp;
  return qpn;
}

void RdmaEnv::DeregisterUdQp(uint32_t qpn) {
  std::lock_guard<std::mutex> lock(mu_);
  ud_qps_.erase(qpn);
  for (auto& [group, qps] : group_qps_) {
    std::erase_if(qps, [qpn](UdQueuePair* q) { return q->qpn() == qpn; });
  }
}

UdQueuePair* RdmaEnv::FindUdQp(uint32_t qpn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ud_qps_.find(qpn);
  return it == ud_qps_.end() ? nullptr : it->second;
}

void RdmaEnv::AttachToGroup(net::MulticastGroupId group, UdQueuePair* qp) {
  std::lock_guard<std::mutex> lock(mu_);
  group_qps_[group].push_back(qp);
}

std::vector<UdQueuePair*> RdmaEnv::GroupQps(
    net::MulticastGroupId group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = group_qps_.find(group);
  return it == group_qps_.end() ? std::vector<UdQueuePair*>{} : it->second;
}

RdmaContext::RdmaContext(RdmaEnv* env, net::NodeId node)
    : env_(env), node_(node) {}

RdmaContext::~RdmaContext() {
  // Deregister rkeys before regions free their memory.
  for (auto& region : regions_) {
    env_->DeregisterMr(region->rkey());
  }
}

net::Node& RdmaContext::node() { return env_->fabric().node(node_); }

MemoryRegion* RdmaContext::AllocateRegion(size_t bytes) {
  auto buffer = std::make_unique<uint8_t[]>(bytes);
  std::memset(buffer.get(), 0, bytes);
  uint8_t* addr = buffer.get();
  const uint32_t rkey = env_->RegisterMr(addr, bytes, node_);
  auto region = std::unique_ptr<MemoryRegion>(new MemoryRegion(
      addr, bytes, rkey, node_, std::move(buffer), &node()));
  MemoryRegion* raw = region.get();
  std::lock_guard<std::mutex> lock(mu_);
  regions_.push_back(std::move(region));
  return raw;
}

MemoryRegion* RdmaContext::RegisterRegion(uint8_t* addr, size_t bytes) {
  const uint32_t rkey = env_->RegisterMr(addr, bytes, node_);
  auto region = std::unique_ptr<MemoryRegion>(
      new MemoryRegion(addr, bytes, rkey, node_, nullptr, &node()));
  MemoryRegion* raw = region.get();
  std::lock_guard<std::mutex> lock(mu_);
  regions_.push_back(std::move(region));
  return raw;
}

CompletionQueue* RdmaContext::CreateCq() {
  auto cq = std::make_unique<CompletionQueue>(config().poll_cq_ns);
  CompletionQueue* raw = cq.get();
  std::lock_guard<std::mutex> lock(mu_);
  cqs_.push_back(std::move(cq));
  return raw;
}

RcQueuePair* RdmaContext::CreateRcQp(net::NodeId remote,
                                     CompletionQueue* send_cq) {
  auto qp = std::make_unique<RcQueuePair>(env_, node_, remote, send_cq);
  RcQueuePair* raw = qp.get();
  std::lock_guard<std::mutex> lock(mu_);
  rc_qps_.push_back(std::move(qp));
  return raw;
}

UdQueuePair* RdmaContext::CreateUdQp(CompletionQueue* send_cq,
                                     CompletionQueue* recv_cq) {
  auto qp = std::make_unique<UdQueuePair>(env_, node_, send_cq, recv_cq);
  UdQueuePair* raw = qp.get();
  std::lock_guard<std::mutex> lock(mu_);
  ud_qps_.push_back(std::move(qp));
  return raw;
}

}  // namespace dfi::rdma
