#include "rdma/ud_queue_pair.h"

#include <cmath>

#include "common/logging.h"
#include "rdma/dma_memory.h"
#include "rdma/rdma_env.h"

namespace dfi::rdma {

UdQueuePair::UdQueuePair(RdmaEnv* env, net::NodeId local,
                         CompletionQueue* send_cq, CompletionQueue* recv_cq)
    : env_(env), local_(local), send_cq_(send_cq), recv_cq_(recv_cq) {
  qpn_ = env_->RegisterUdQp(this);
}

UdQueuePair::~UdQueuePair() { env_->DeregisterUdQp(qpn_); }

Status UdQueuePair::AttachMulticast(net::MulticastGroupId group) {
  DFI_RETURN_IF_ERROR(
      env_->fabric().network_switch().JoinGroup(group, local_));
  env_->AttachToGroup(group, this);
  return Status::OK();
}

void UdQueuePair::PostRecv(void* buf, uint32_t length, uint64_t wr_id) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_queue_.push_back(RecvWqe{buf, length, wr_id});
}

bool UdQueuePair::Deliver(const void* buf, uint32_t length, SimTime arrival,
                          net::NodeId src, uint64_t key) {
  RecvWqe wqe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (recv_queue_.empty()) {
      drops_no_recv_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    wqe = recv_queue_.front();
    if (length > wqe.length) {
      drops_no_recv_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    recv_queue_.pop_front();
  }
  DmaCopy(wqe.buf, buf, length);
  DFI_CHECK(recv_cq_ != nullptr) << "UD delivery on QP without recv CQ";
  const Completion completion{wqe.wr_id, WorkType::kRecv, arrival, length,
                              true, src};
  // Reorder injection: the payload landed (DMA happens at delivery time),
  // but the completion may be held until the next delivery and then pushed
  // *behind* it — the receiver observes genuine out-of-order arrival.
  std::optional<Completion> release;
  bool hold = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (held_completion_.has_value()) {
      release = held_completion_;
      held_completion_.reset();
    } else if (env_->fabric().network_switch().ShouldReorderDelivery(key,
                                                                     local_)) {
      held_completion_ = completion;
      hold = true;
    }
  }
  if (!hold) recv_cq_->Push(completion);
  if (release.has_value()) recv_cq_->Push(*release);
  return true;
}

StatusOr<OpTiming> UdQueuePair::PostSend(uint32_t dst_qpn, const void* buf,
                                         uint32_t length, uint64_t wr_id,
                                         bool signaled, VirtualClock* clock) {
  const net::SimConfig& cfg = env_->config();
  if (length > cfg.ud_mtu_bytes) {
    return Status::InvalidArgument("UD payload " + std::to_string(length) +
                                   " exceeds MTU " +
                                   std::to_string(cfg.ud_mtu_bytes));
  }
  UdQueuePair* dst = env_->FindUdQp(dst_qpn);
  if (dst == nullptr) {
    return Status::NotFound("UD QPN " + std::to_string(dst_qpn));
  }
  const net::FaultPlan& plan = env_->fabric().fault_plan();
  if (plan.active() && !plan.NodeAlive(local_, clock->now())) {
    if (signaled && send_cq_ != nullptr) {
      send_cq_->Push(Completion{wr_id, WorkType::kSend, clock->now(), length,
                                false, local_});
    }
    return Status::PeerFailed("local node " + std::to_string(local_) +
                              " crashed");
  }
  clock->Advance(cfg.post_wqe_ns + cfg.ud_send_overhead_ns);

  OpTiming t;
  t.post_done = clock->now();
  net::Fabric& fabric = env_->fabric();
  const net::TransferWindow egress = fabric.node(local_).egress().Reserve(
      t.post_done + cfg.nic_process_ns, length);
  const net::TransferWindow ingress = fabric.node(dst->node())
                                          .ingress()
                                          .Reserve(egress.end +
                                                       cfg.propagation_ns,
                                                   length);
  t.arrival = ingress.end;
  t.ack = egress.end;  // UD send completes locally once on the wire.

  // Unreliable semantics: datagrams to a crashed or partitioned node simply
  // vanish — the sender still gets its (successful) send completion. Loss is
  // decided per (message, target) by a deterministic hash, as in multicast.
  const bool target_ok =
      !plan.active() || (plan.NodeAlive(dst->node(), t.arrival) &&
                         plan.Reachable(local_, dst->node(), t.arrival));
  if (target_ok && !fabric.network_switch().ShouldDropDelivery(
                       wr_id, dst->node(), t.arrival)) {
    dst->Deliver(buf, length, t.arrival, local_, wr_id);
  }
  if (signaled) {
    DFI_CHECK(send_cq_ != nullptr) << "signaled UD send without send CQ";
    send_cq_->Push(
        Completion{wr_id, WorkType::kSend, t.ack, length, true, local_});
  }
  return t;
}

StatusOr<OpTiming> UdQueuePair::PostSendMulticast(net::MulticastGroupId group,
                                                  const void* buf,
                                                  uint32_t length,
                                                  uint64_t wr_id,
                                                  bool signaled,
                                                  VirtualClock* clock) {
  const net::SimConfig& cfg = env_->config();
  if (length > cfg.ud_mtu_bytes) {
    return Status::InvalidArgument("UD payload " + std::to_string(length) +
                                   " exceeds MTU " +
                                   std::to_string(cfg.ud_mtu_bytes));
  }
  const net::FaultPlan& plan = env_->fabric().fault_plan();
  if (plan.active() && !plan.NodeAlive(local_, clock->now())) {
    if (signaled && send_cq_ != nullptr) {
      send_cq_->Push(Completion{wr_id, WorkType::kSend, clock->now(), length,
                                false, local_});
    }
    return Status::PeerFailed("local node " + std::to_string(local_) +
                              " crashed");
  }
  clock->Advance(cfg.post_wqe_ns + cfg.ud_send_overhead_ns);

  OpTiming t;
  t.post_done = clock->now();
  net::Fabric& fabric = env_->fabric();
  const net::TransferWindow egress = fabric.node(local_).egress().Reserve(
      t.post_done + cfg.nic_process_ns, length);
  // The message is serialized once on the group resource in the switch,
  // then replicated onto every member's ingress link.
  const net::TransferWindow grp = fabric.network_switch().ReserveGroup(
      group, egress.end + cfg.propagation_ns / 2, length);
  t.ack = egress.end;

  SimTime last_arrival = grp.end;
  for (UdQueuePair* qp : env_->GroupQps(group)) {
    if (qp == this) continue;  // A source does not loop back to itself.
    const net::TransferWindow ingress =
        fabric.node(qp->node()).ingress().Reserve(grp.end, length);
    const SimTime arrival = ingress.end + cfg.propagation_ns / 2;
    last_arrival = std::max(last_arrival, arrival);
    // Deliveries to crashed or partitioned members vanish silently.
    if (plan.active() && (!plan.NodeAlive(qp->node(), arrival) ||
                          !plan.Reachable(local_, qp->node(), arrival))) {
      continue;
    }
    // Loss is decided per (message, target) by a deterministic hash, so a
    // given seed drops the same deliveries regardless of thread timing.
    if (fabric.network_switch().ShouldDropDelivery(wr_id, qp->node(),
                                                   arrival)) {
      continue;
    }
    qp->Deliver(buf, length, arrival, local_, wr_id);
  }
  t.arrival = last_arrival;

  if (signaled) {
    DFI_CHECK(send_cq_ != nullptr) << "signaled UD send without send CQ";
    send_cq_->Push(
        Completion{wr_id, WorkType::kSend, t.ack, length, true, local_});
  }
  return t;
}

size_t UdQueuePair::posted_recvs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recv_queue_.size();
}

}  // namespace dfi::rdma
