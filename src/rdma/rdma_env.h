#ifndef DFI_RDMA_RDMA_ENV_H_
#define DFI_RDMA_RDMA_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"
#include "rdma/completion_queue.h"
#include "rdma/memory_region.h"
#include "rdma/verbs_types.h"

namespace dfi::rdma {

class RdmaContext;
class RcQueuePair;
class UdQueuePair;

/// Resolved view of a registered memory region.
struct MrInfo {
  uint8_t* base = nullptr;
  size_t length = 0;
  net::NodeId node = net::kInvalidNode;
};

/// Fabric-wide RDMA environment: owns one RdmaContext ("device context")
/// per node, the rkey directory used to resolve one-sided accesses, and the
/// UD queue-pair directory used for datagram/multicast delivery.
///
/// In a real deployment each of these directories is distributed (rkeys are
/// exchanged out-of-band, UD QPNs via the subnet manager); centralizing
/// them inside the emulation changes no API-visible behavior.
class RdmaEnv {
 public:
  explicit RdmaEnv(net::Fabric* fabric);
  ~RdmaEnv();

  RdmaEnv(const RdmaEnv&) = delete;
  RdmaEnv& operator=(const RdmaEnv&) = delete;

  /// Device context for `node`, created on first use.
  RdmaContext* context(net::NodeId node);

  net::Fabric& fabric() { return *fabric_; }
  const net::SimConfig& config() const { return fabric_->config(); }

  /// rkey directory -------------------------------------------------------
  uint32_t RegisterMr(uint8_t* base, size_t length, net::NodeId node);
  void DeregisterMr(uint32_t rkey);
  StatusOr<MrInfo> ResolveMr(uint32_t rkey) const;
  /// Resolves a RemoteRef to a raw pointer, checking bounds.
  StatusOr<uint8_t*> ResolveRemote(const RemoteRef& ref, uint32_t length) const;
  net::NodeId MrNode(uint32_t rkey) const;

  /// UD directory ---------------------------------------------------------
  uint32_t RegisterUdQp(UdQueuePair* qp);
  void DeregisterUdQp(uint32_t qpn);
  UdQueuePair* FindUdQp(uint32_t qpn) const;
  void AttachToGroup(net::MulticastGroupId group, UdQueuePair* qp);
  std::vector<UdQueuePair*> GroupQps(net::MulticastGroupId group) const;

 private:
  net::Fabric* const fabric_;

  mutable std::mutex mu_;
  std::unordered_map<net::NodeId, std::unique_ptr<RdmaContext>> contexts_;
  uint32_t next_rkey_ = 1;
  std::unordered_map<uint32_t, MrInfo> mrs_;
  uint32_t next_qpn_ = 1;
  std::unordered_map<uint32_t, UdQueuePair*> ud_qps_;
  std::unordered_map<net::MulticastGroupId, std::vector<UdQueuePair*>>
      group_qps_;
};

/// Per-node device context: factory for memory regions, completion queues
/// and queue pairs on one node. All objects returned are owned by the
/// context and live until it is destroyed.
class RdmaContext {
 public:
  RdmaContext(RdmaEnv* env, net::NodeId node);
  ~RdmaContext();

  RdmaContext(const RdmaContext&) = delete;
  RdmaContext& operator=(const RdmaContext&) = delete;

  net::NodeId node_id() const { return node_; }
  net::Node& node();
  RdmaEnv& env() { return *env_; }
  const net::SimConfig& config() const { return env_->config(); }

  /// Allocates and registers a zeroed buffer of `bytes` (the emulation's
  /// analogue of posix_memalign + ibv_reg_mr on huge pages).
  MemoryRegion* AllocateRegion(size_t bytes);

  /// Registers caller-owned memory.
  MemoryRegion* RegisterRegion(uint8_t* addr, size_t bytes);

  CompletionQueue* CreateCq();

  /// Creates a reliable-connection QP to `remote` posting completions to
  /// `send_cq` (may be null if the QP is used unsignaled only).
  RcQueuePair* CreateRcQp(net::NodeId remote, CompletionQueue* send_cq);

  /// Creates an unreliable-datagram QP; receives complete on `recv_cq`.
  UdQueuePair* CreateUdQp(CompletionQueue* send_cq, CompletionQueue* recv_cq);

 private:
  RdmaEnv* const env_;
  const net::NodeId node_;

  std::mutex mu_;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<RcQueuePair>> rc_qps_;
  std::vector<std::unique_ptr<UdQueuePair>> ud_qps_;
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_RDMA_ENV_H_
