#include "rdma/completion_queue.h"

namespace dfi::rdma {

void CompletionQueue::Push(const Completion& c) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(c);
    ++version_;
  }
  cv_.notify_one();
  wait_point_.WakeAll();
  exec::BumpProgress();
}

bool CompletionQueue::PopLocked(Completion* c, VirtualClock* clock) {
  if (queue_.empty()) return false;
  *c = queue_.front();
  queue_.pop_front();
  clock->Advance(poll_cost_ns_);
  clock->AdvanceTo(c->time);
  return true;
}

bool CompletionQueue::TryPoll(Completion* c, VirtualClock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    clock->Advance(poll_cost_ns_);
    return false;
  }
  return PopLocked(c, clock);
}

void CompletionQueue::PollBlocking(Completion* c, VirtualClock* clock) {
  if (exec::Engine::InTask()) {
    for (;;) {
      const uint64_t seen = version();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (PopLocked(c, clock)) return;
      }
      exec::Engine::Park(&wait_point_,
                         [&] { return version() != seen; }, clock->now(),
                         exec::Engine::kNoTimer);
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  PopLocked(c, clock);
}

bool CompletionQueue::PollFor(Completion* c, VirtualClock* clock,
                              std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty(); })) {
    return false;
  }
  return PopLocked(c, clock);
}

size_t CompletionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace dfi::rdma
