#ifndef DFI_RDMA_QUEUE_PAIR_H_
#define DFI_RDMA_QUEUE_PAIR_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/status.h"
#include "rdma/completion_queue.h"
#include "rdma/verbs_types.h"

namespace dfi::rdma {

class RdmaEnv;

/// Emulated reliable-connection queue pair: one-sided WRITE / READ /
/// FETCH_ADD between two fixed nodes.
///
/// All verbs are asynchronous from the caller's perspective: posting
/// charges only the post cost to the caller's virtual clock; the returned
/// OpTiming carries the virtual arrival/ack milestones computed from the
/// link schedulers. Data movement is performed eagerly (real memcpy with
/// DMA ordering semantics, see dma_memory.h) so the memory contents are
/// always consistent with "the write happened".
///
/// PlanWrite/CommitWrite split one write into timing computation and
/// execution so the payload may embed its own arrival timestamp (DFI's
/// segment footers do this).
class RcQueuePair {
 public:
  RcQueuePair(RdmaEnv* env, net::NodeId local, net::NodeId remote,
              CompletionQueue* send_cq);

  RcQueuePair(const RcQueuePair&) = delete;
  RcQueuePair& operator=(const RcQueuePair&) = delete;

  net::NodeId local_node() const { return local_; }
  net::NodeId remote_node() const { return remote_; }

  /// QP error-state check against the fabric's fault plan: kPeerFailed if,
  /// at virtual time `at`, either endpoint has crashed or a partition
  /// separates them. Verbs posted on a failed connection do not vanish —
  /// signaled ones complete with an error completion (success = false) and
  /// the post returns this status, mirroring a real QP's transition to the
  /// error state where outstanding WQEs are flushed with errors.
  Status CheckConnected(SimTime at) const;

  /// Computes the virtual-time milestones of a write of `length` bytes
  /// posted now, reserving link capacity. Charges the post cost (plus the
  /// inline copy cost if `inlined`).
  OpTiming PlanWrite(uint32_t length, bool inlined, VirtualClock* clock);

  /// Executes a previously planned write: moves the bytes and, if
  /// requested, pushes a completion stamped with `timing.ack`. On a failed
  /// connection the bytes are not moved; a signaled WQE completes with an
  /// error completion instead.
  Status CommitWrite(const WriteDesc& desc, const OpTiming& timing);

  /// PlanWrite + CommitWrite in one step.
  StatusOr<OpTiming> PostWrite(const WriteDesc& desc, VirtualClock* clock);

  /// One-sided read, local <- remote. The copy is performed eagerly; the
  /// timing says when the data is virtually available.
  StatusOr<OpTiming> PostRead(const ReadDesc& desc, VirtualClock* clock);

  /// Blocking remote fetch-and-add on a uint64 at `remote` (the DFI tuple
  /// sequencer uses this). Advances the caller's clock to the response
  /// arrival and returns the previous value.
  StatusOr<uint64_t> FetchAdd(const RemoteRef& remote, uint64_t add,
                              VirtualClock* clock);

  uint64_t writes_posted() const { return writes_posted_; }
  uint64_t reads_posted() const { return reads_posted_; }

 private:
  /// Virtual round-trip of a small request with a `response_bytes` payload
  /// coming back. Shared by READ and FETCH_ADD.
  OpTiming PlanRoundTrip(uint32_t response_bytes, VirtualClock* clock);

  RdmaEnv* const env_;
  const net::NodeId local_;
  const net::NodeId remote_;
  CompletionQueue* const send_cq_;
  uint64_t writes_posted_ = 0;
  uint64_t reads_posted_ = 0;
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_QUEUE_PAIR_H_
