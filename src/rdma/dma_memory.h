#ifndef DFI_RDMA_DMA_MEMORY_H_
#define DFI_RDMA_DMA_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <cstring>

namespace dfi::rdma {

/// Emulates the DMA semantics DFI's buffer design relies on (paper section
/// 5.2): the remote NIC writes a message into memory in *increasing address
/// order*, so metadata placed after the payload ("footer") is only visible
/// once the payload is fully written.
///
/// In the emulation this is realized with a release/acquire protocol on the
/// final byte of every DMA: the payload is copied with plain stores, then a
/// release fence is issued, then the last byte is stored atomically. A
/// reader that polls memory for a state change must read the flag byte with
/// LoadDmaFlag() (atomic load + acquire fence) before touching the payload;
/// this pairs with the writer's fence and establishes the same guarantee
/// the NIC gives on real hardware.
inline void DmaCopy(void* dst, const void* src, size_t len) {
  if (len == 0) return;
  auto* d = static_cast<uint8_t*>(dst);
  const auto* s = static_cast<const uint8_t*>(src);
  if (len > 1) {
    std::memcpy(d, s, len - 1);
  }
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<uint8_t>(d[len - 1]).store(s[len - 1],
                                             std::memory_order_relaxed);
}

/// Publishes a single flag byte after all prior plain stores (used by
/// targets to flip a local footer back to writable).
inline void StoreDmaFlag(uint8_t* addr, uint8_t value) {
  std::atomic_thread_fence(std::memory_order_release);
  std::atomic_ref<uint8_t>(*addr).store(value, std::memory_order_relaxed);
}

/// Reads a flag byte published by DmaCopy/StoreDmaFlag. All memory written
/// before the flag is visible after this returns.
inline uint8_t LoadDmaFlag(const uint8_t* addr) {
  const uint8_t v = std::atomic_ref<const uint8_t>(*addr).load(
      std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return v;
}

}  // namespace dfi::rdma

#endif  // DFI_RDMA_DMA_MEMORY_H_
