#ifndef DFI_RDMA_UD_QUEUE_PAIR_H_
#define DFI_RDMA_UD_QUEUE_PAIR_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/sim_time.h"
#include "common/status.h"
#include "rdma/completion_queue.h"
#include "rdma/verbs_types.h"

namespace dfi::rdma {

class RdmaEnv;

/// Emulated unreliable-datagram queue pair with multicast support.
///
/// Semantics mirrored from InfiniBand UD:
///  * two-sided only — a delivery consumes a pre-posted receive request;
///    if none is posted, the datagram is dropped (receiver-not-ready);
///  * payloads limited to the MTU (SimConfig::ud_mtu_bytes);
///  * *unreliable*: the switch may drop any delivery (loss injection), and
///    there are no acknowledgements;
///  * multicast: a message sent to a group traverses the sender's egress
///    link once, is serialized on the per-group switch resource, and is
///    replicated to every attached QP's node ingress — which is how the
///    aggregated receive bandwidth in the paper's Figure 8b exceeds the
///    sender's link speed.
class UdQueuePair {
 public:
  UdQueuePair(RdmaEnv* env, net::NodeId local, CompletionQueue* send_cq,
              CompletionQueue* recv_cq);
  ~UdQueuePair();

  UdQueuePair(const UdQueuePair&) = delete;
  UdQueuePair& operator=(const UdQueuePair&) = delete;

  uint32_t qpn() const { return qpn_; }
  net::NodeId node() const { return local_; }
  CompletionQueue* recv_cq() { return recv_cq_; }

  /// Attaches this QP to a multicast group: datagrams sent to the group are
  /// delivered to this QP's receive queue.
  Status AttachMulticast(net::MulticastGroupId group);

  /// Posts a receive buffer; consumed in FIFO order by deliveries.
  void PostRecv(void* buf, uint32_t length, uint64_t wr_id);

  /// Sends a datagram to one remote QP.
  StatusOr<OpTiming> PostSend(uint32_t dst_qpn, const void* buf,
                              uint32_t length, uint64_t wr_id, bool signaled,
                              VirtualClock* clock);

  /// Sends a datagram to a multicast group.
  StatusOr<OpTiming> PostSendMulticast(net::MulticastGroupId group,
                                       const void* buf, uint32_t length,
                                       uint64_t wr_id, bool signaled,
                                       VirtualClock* clock);

  size_t posted_recvs() const;
  uint64_t drops_no_recv() const { return drops_no_recv_; }

 private:
  friend class RcQueuePair;

  struct RecvWqe {
    void* buf;
    uint32_t length;
    uint64_t wr_id;
  };

  /// Called by a sender's PostSend*: consume one recv WQE and place the
  /// payload; pushes a recv completion stamped `arrival`. Returns false if
  /// dropped (no recv posted or payload too large for the buffer). `key`
  /// identifies the message for deterministic reorder injection: a
  /// reordered delivery's completion is held back and surfaces *after* the
  /// next delivery's, emulating out-of-order datagram arrival.
  bool Deliver(const void* buf, uint32_t length, SimTime arrival,
               net::NodeId src, uint64_t key);

  RdmaEnv* const env_;
  const net::NodeId local_;
  CompletionQueue* const send_cq_;
  CompletionQueue* const recv_cq_;
  uint32_t qpn_ = 0;

  mutable std::mutex mu_;
  std::deque<RecvWqe> recv_queue_;
  /// Completion held back by reorder injection; released (after the newer
  /// completion) by the next delivery. A tail-of-flow hold never releases,
  /// which ordered flows absorb through their gap machinery — the same
  /// contract as loss injection.
  std::optional<Completion> held_completion_;
  std::atomic<uint64_t> drops_no_recv_{0};
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_UD_QUEUE_PAIR_H_
