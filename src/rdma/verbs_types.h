#ifndef DFI_RDMA_VERBS_TYPES_H_
#define DFI_RDMA_VERBS_TYPES_H_

#include <cstdint>

#include "common/sim_time.h"
#include "net/fabric.h"

namespace dfi::rdma {

/// Remote memory address: rkey identifies a registered MemoryRegion in the
/// fabric-wide directory, offset is relative to the region base.
struct RemoteRef {
  uint32_t rkey = 0;
  uint64_t offset = 0;
};

/// Kind of completed work request.
enum class WorkType : uint8_t {
  kWrite,
  kRead,
  kFetchAdd,
  kSend,
  kRecv,
};

/// One completion-queue entry.
struct Completion {
  uint64_t wr_id = 0;
  WorkType type = WorkType::kWrite;
  /// Virtual time at which the operation completed (for a write: remote
  /// placement acknowledged; for a recv: message arrival).
  SimTime time = 0;
  uint32_t byte_len = 0;
  bool success = true;
  /// Source node of a received datagram (UD only).
  net::NodeId src_node = net::kInvalidNode;
};

/// One-sided RDMA write work request.
struct WriteDesc {
  const void* local = nullptr;
  RemoteRef remote;
  uint32_t length = 0;
  uint64_t wr_id = 0;
  /// Request a completion entry (selective signaling: DFI signals only on
  /// source-ring wrap-around).
  bool signaled = false;
  /// Payload copied into the WQE; allowed up to SimConfig::max_inline_bytes.
  bool inlined = false;
};

/// One-sided RDMA read work request (local <- remote).
struct ReadDesc {
  void* local = nullptr;
  RemoteRef remote;
  uint32_t length = 0;
  uint64_t wr_id = 0;
  bool signaled = false;
};

/// Virtual-time milestones of a posted operation.
struct OpTiming {
  /// Calling thread's clock right after posting (the verb is asynchronous;
  /// this is all the CPU pays).
  SimTime post_done = 0;
  /// Data fully placed in remote (write) or local (read) memory.
  SimTime arrival = 0;
  /// Acknowledgement seen by the initiator NIC (completion timestamp).
  SimTime ack = 0;
};

}  // namespace dfi::rdma

#endif  // DFI_RDMA_VERBS_TYPES_H_
