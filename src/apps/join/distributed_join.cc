#include "apps/join/distributed_join.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "apps/join/hash_table.h"
#include "bench_util/workload.h"
#include "core/graph/executor.h"
#include "core/replicate_flow.h"
#include "common/hash.h"
#include "common/logging.h"
#include "mpi/mpi_env.h"

namespace dfi::join {
namespace {

Schema JoinSchema() {
  return Schema{{"key", DataType::kUInt64}, {"payload", DataType::kUInt64}};
}

/// Inner relation: dense primary keys, worker w holds slice w.
std::vector<bench::JoinTuple> InnerChunk(const JoinConfig& cfg, uint32_t w) {
  const uint32_t W = cfg.total_workers();
  const uint64_t begin = cfg.inner_tuples * w / W;
  const uint64_t end = cfg.inner_tuples * (w + 1) / W;
  std::vector<bench::JoinTuple> out;
  out.reserve(end - begin);
  for (uint64_t k = begin; k < end; ++k) {
    out.push_back(bench::JoinTuple{k, k * 2});
  }
  return out;
}

/// Outer relation: uniform foreign keys into the inner domain.
std::vector<bench::JoinTuple> OuterChunk(const JoinConfig& cfg, uint32_t w) {
  const uint32_t W = cfg.total_workers();
  const uint64_t begin = cfg.outer_tuples * w / W;
  const uint64_t end = cfg.outer_tuples * (w + 1) / W;
  return bench::GenerateUniformRelation(end - begin, cfg.inner_tuples,
                                        cfg.seed + 1000 + w);
}

/// Network partition: target worker of a key (first-level radix over the
/// key hash).
uint32_t NetworkDest(uint64_t key, uint32_t num_workers) {
  return static_cast<uint32_t>(HashU64(key) % num_workers);
}

/// Local partition: second-level radix bits (independent hash bits).
uint32_t LocalBucket(uint64_t key, uint32_t bits) {
  return static_cast<uint32_t>((HashU64(key) >> 32) & ((1u << bits) - 1));
}

SimTime MaxClock(ShuffleSource& a, ShuffleTarget& b) {
  return std::max(a.clock().now(), b.clock().now());
}

void JoinClocks(ShuffleSource& a, ShuffleTarget& b) {
  const SimTime t = MaxClock(a, b);
  a.clock().AdvanceTo(t);
  b.clock().AdvanceTo(t);
}

}  // namespace

uint64_t ReferenceJoinMatches(const JoinConfig& config) {
  // The inner relation is a dense primary key over [0, inner_tuples) and
  // every outer key is drawn from that domain, so every outer tuple matches
  // exactly once.
  return config.outer_tuples;
}

// ---------------------------------------------------------------------------
// DFI radix join (paper Figure 2)
// ---------------------------------------------------------------------------

StatusOr<JoinResult> RunDfiRadixJoin(DfiRuntime* dfi,
                                     const std::vector<std::string>& nodes,
                                     const JoinConfig& config) {
  if (nodes.size() != config.num_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  const uint32_t W = config.total_workers();
  const net::SimConfig& sim = dfi->config();

  RoutingFn routing = [W](TupleView t, uint32_t) {
    return NetworkDest(t.Get<uint64_t>(0), W);
  };
  // Flow setup as a typed dataflow graph: the worker fleet appears twice
  // (scan side / join side, same placement) with both relations' shuffles
  // as typed edges between them. Build() validates schemas and routing in
  // one pass and Instantiate() registers both flows in a single batched
  // control-plane RPC; the fused scan/partition/build/probe loop below
  // claims the endpoints (kCustom vertices).
  graph::GraphSpec gs;
  gs.name = "join";
  const DfiNodes grid = DfiNodes::GridOf(nodes, config.workers_per_node);
  graph::VertexSpec scan_vertex;
  scan_vertex.name = "scan";
  scan_vertex.workers = grid;
  scan_vertex.output = {JoinSchema(), Ordering::kNone};
  graph::VertexSpec join_vertex;
  join_vertex.name = "join";
  join_vertex.workers = grid;
  gs.vertices = {std::move(scan_vertex), std::move(join_vertex)};
  for (const char* name : {"join.inner", "join.outer"}) {
    graph::EdgeSpec edge;
    edge.name = name;
    edge.from = "scan";
    edge.to = "join";
    edge.kind = graph::EdgeKind::kShuffle;
    edge.type = {JoinSchema(), Ordering::kNone};
    edge.routing = routing;
    gs.edges.push_back(std::move(edge));
  }
  DFI_ASSIGN_OR_RETURN(graph::Graph g,
                       graph::Graph::Build(std::move(gs), &dfi->fabric()));
  DFI_ASSIGN_OR_RETURN(std::unique_ptr<graph::GraphRun> run,
                       g.Instantiate(dfi));
  DFI_RETURN_IF_ERROR(run->Start());

  std::atomic<uint64_t> total_matches{0};
  std::vector<SimTime> t_partition(W), t_total(W);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};

  for (uint32_t w = 0; w < W; ++w) {
    threads.emplace_back([&, w] {
      auto src1 = run->ClaimShuffleSource("join.inner", w);
      auto tgt1 = run->ClaimShuffleTarget("join.inner", w);
      auto src2 = run->ClaimShuffleSource("join.outer", w);
      auto tgt2 = run->ClaimShuffleTarget("join.outer", w);
      if (!src1.ok() || !tgt1.ok() || !src2.ok() || !tgt2.ok()) {
        failed.store(true);
        return;
      }
      const Schema schema = JoinSchema();
      const uint32_t num_buckets = 1u << config.local_radix_bits;
      std::vector<std::vector<bench::JoinTuple>> buckets(num_buckets);

      // --- Phase 1: network shuffle of the inner relation, local
      // partitioning streamed as segments arrive (no histogram pass, no
      // barrier — the DFI design win of section 6.3.1).
      auto partition_inner_segment = [&](const SegmentView& seg) {
        for (uint32_t off = 0; off + 16 <= seg.bytes; off += 16) {
          TupleView t(seg.payload + off, &schema);
          const uint64_t key = t.Get<uint64_t>(0);
          (*tgt1)->clock().Advance(sim.tuple_consume_fixed_ns +
                                   config.partition_cost_ns);
          buckets[LocalBucket(key, config.local_radix_bits)].push_back(
              bench::JoinTuple{key, t.Get<uint64_t>(1)});
        }
      };
      const std::vector<bench::JoinTuple> inner = InnerChunk(config, w);
      uint64_t i = 0;
      bool inner_drained = false;
      for (const bench::JoinTuple& t : inner) {
        if (!(*src1)->Push(&t).ok()) {
          failed.store(true);
          return;
        }
        if (++i % 256 == 0) {
          // Drain whatever already arrived: compute/communication overlap.
          SegmentView seg;
          ConsumeResult r;
          while (!inner_drained && (*tgt1)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              inner_drained = true;
              break;
            }
            partition_inner_segment(seg);
          }
        }
      }
      if (!(*src1)->Close().ok()) {
        failed.store(true);
        return;
      }
      while (!inner_drained) {
        SegmentView seg;
        const ConsumeResult r = (*tgt1)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) {
          inner_drained = true;
          break;
        }
        partition_inner_segment(seg);
      }
      JoinClocks(**src1, **tgt1);
      t_partition[w] = (*tgt1)->clock().now();
      // Per-worker phase timings on demand (debug aid for calibration).
      if (getenv("DFI_JOIN_DEBUG") != nullptr) {
        fprintf(stderr, "w%u phase1: src=%lld tgt=%lld\n", w,
                static_cast<long long>((*src1)->clock().now()),
                static_cast<long long>((*tgt1)->clock().now()));
      }

      // --- Build cache-sized hash tables per bucket.
      std::vector<JoinHashTable> tables(num_buckets);
      uint64_t built = 0;
      for (uint32_t b = 0; b < num_buckets; ++b) {
        tables[b].Reserve(buckets[b].size());
        for (const bench::JoinTuple& t : buckets[b]) {
          tables[b].Insert(t.key, t.payload);
          ++built;
        }
      }
      (*tgt1)->clock().Advance(static_cast<SimTime>(built) *
                               config.build_cost_ns);
      (*src2)->clock().AdvanceTo((*tgt1)->clock().now());
      (*tgt2)->clock().AdvanceTo((*tgt1)->clock().now());

      // --- Phase 2: shuffle the outer relation; probe streamed on arrival.
      uint64_t matches = 0;
      auto probe_segment = [&](const SegmentView& seg) {
        for (uint32_t off = 0; off + 16 <= seg.bytes; off += 16) {
          TupleView t(seg.payload + off, &schema);
          const uint64_t key = t.Get<uint64_t>(0);
          (*tgt2)->clock().Advance(sim.tuple_consume_fixed_ns +
                                   config.probe_cost_ns);
          matches += tables[LocalBucket(key, config.local_radix_bits)]
                         .CountMatches(key);
        }
      };
      const std::vector<bench::JoinTuple> outer = OuterChunk(config, w);
      bool outer_drained = false;
      i = 0;
      for (const bench::JoinTuple& t : outer) {
        if (!(*src2)->Push(&t).ok()) {
          failed.store(true);
          return;
        }
        if (++i % 256 == 0) {
          SegmentView seg;
          ConsumeResult r;
          while (!outer_drained && (*tgt2)->TryConsumeSegment(&seg, &r)) {
            if (r == ConsumeResult::kFlowEnd) {
              outer_drained = true;
              break;
            }
            probe_segment(seg);
          }
        }
      }
      if (!(*src2)->Close().ok()) {
        failed.store(true);
        return;
      }
      while (!outer_drained) {
        SegmentView seg;
        const ConsumeResult r = (*tgt2)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) {
          outer_drained = true;
          break;
        }
        probe_segment(seg);
      }
      JoinClocks(**src2, **tgt2);
      total_matches.fetch_add(matches, std::memory_order_relaxed);
      t_total[w] = (*tgt2)->clock().now();
    });
  }
  for (auto& t : threads) t.join();
  DFI_RETURN_IF_ERROR(run->Finish());
  if (failed.load()) return Status::Internal("join worker failed");

  JoinResult result;
  result.matches = total_matches.load();
  SimTime part_sum = 0, total_max = 0;
  for (uint32_t w = 0; w < W; ++w) {
    part_sum += t_partition[w];
    total_max = std::max(total_max, t_total[w]);
  }
  result.phases.network_partition = part_sum / W;
  result.phases.total = total_max;
  result.phases.build_probe = total_max - result.phases.network_partition;
  return result;
}

// ---------------------------------------------------------------------------
// Graph-native radix join: the same join on built-in operators
// ---------------------------------------------------------------------------

StatusOr<JoinResult> RunGraphRadixJoin(DfiRuntime* dfi,
                                       const std::vector<std::string>& nodes,
                                       const JoinConfig& config) {
  if (nodes.size() != config.num_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  const DfiNodes grid = DfiNodes::GridOf(nodes, config.workers_per_node);

  graph::GraphSpec gs;
  gs.name = "graph-join";
  graph::VertexSpec inner_scan;
  inner_scan.name = "inner-scan";
  inner_scan.kind = graph::OpKind::kSource;
  inner_scan.workers = grid;
  inner_scan.output = {JoinSchema(), Ordering::kNone};
  inner_scan.source_fn = [config](graph::OpContext& ctx,
                                  const graph::EmitFn& emit) -> Status {
    for (const bench::JoinTuple& t : InnerChunk(config, ctx.worker)) {
      DFI_RETURN_IF_ERROR(emit(&t));
    }
    return Status::OK();
  };
  graph::VertexSpec outer_scan;
  outer_scan.name = "outer-scan";
  outer_scan.kind = graph::OpKind::kSource;
  outer_scan.workers = grid;
  outer_scan.output = {JoinSchema(), Ordering::kNone};
  outer_scan.source_fn = [config](graph::OpContext& ctx,
                                  const graph::EmitFn& emit) -> Status {
    for (const bench::JoinTuple& t : OuterChunk(config, ctx.worker)) {
      DFI_RETURN_IF_ERROR(emit(&t));
    }
    return Status::OK();
  };
  graph::VertexSpec join;
  join.name = "join";
  join.kind = graph::OpKind::kJoin;
  join.workers = grid;
  join.join = {.key_field = 0,
               .payload_field = 1,
               .local_radix_bits = config.local_radix_bits,
               .partition_cost_ns = config.partition_cost_ns,
               .build_cost_ns = config.build_cost_ns,
               .probe_cost_ns = config.probe_cost_ns};
  gs.vertices = {std::move(inner_scan), std::move(outer_scan),
                 std::move(join)};
  // In-edge order defines build vs probe side: edge 0 is built, edge 1
  // probed.
  graph::EdgeSpec inner_edge;
  inner_edge.name = "graph-join.inner";
  inner_edge.from = "inner-scan";
  inner_edge.to = "join";
  inner_edge.type = {JoinSchema(), Ordering::kNone};
  graph::EdgeSpec outer_edge;
  outer_edge.name = "graph-join.outer";
  outer_edge.from = "outer-scan";
  outer_edge.to = "join";
  outer_edge.type = {JoinSchema(), Ordering::kNone};
  gs.edges = {std::move(inner_edge), std::move(outer_edge)};

  DFI_ASSIGN_OR_RETURN(graph::Graph g,
                       graph::Graph::Build(std::move(gs), &dfi->fabric()));
  DFI_ASSIGN_OR_RETURN(std::unique_ptr<graph::GraphRun> run,
                       g.Instantiate(dfi));
  DFI_RETURN_IF_ERROR(run->Start());
  DFI_RETURN_IF_ERROR(run->Finish());

  const graph::GraphRun::VertexStats stats = run->stats("join");
  JoinResult result;
  result.matches = stats.join_matches;
  result.phases.total = stats.max_clock;
  result.phases.build_probe = stats.max_clock;
  return result;
}

// ---------------------------------------------------------------------------
// MPI radix join baseline (Barthels et al. [2])
// ---------------------------------------------------------------------------

StatusOr<JoinResult> RunMpiRadixJoin(net::Fabric* fabric,
                                     const std::vector<net::NodeId>& nodes,
                                     const JoinConfig& config) {
  if (nodes.size() != config.num_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  const uint32_t W = config.total_workers();
  std::vector<net::NodeId> rank_nodes(W);
  for (uint32_t w = 0; w < W; ++w) {
    rank_nodes[w] = nodes[w / config.workers_per_node];
  }
  mpi::MpiEnv env(fabric, rank_nodes, mpi::ThreadMode::kSingle);
  const net::SimConfig& sim = fabric->config();
  // Staging a tuple into a send buffer costs the same whether DFI or MPI
  // does it — both joins are charged identical fundamental per-tuple costs
  // so the comparison isolates the *algorithmic* differences (histogram
  // pass, barrier, overlap), as in the paper.
  const SimTime stage_cost =
      sim.tuple_push_fixed_ns +
      static_cast<SimTime>(sizeof(bench::JoinTuple) *
                           sim.tuple_copy_ns_per_byte);
  const SimTime scan_cost =
      sim.tuple_consume_fixed_ns + config.partition_cost_ns;

  // Windows sized generously for the hash-partitioned incoming share.
  const size_t in_share =
      (config.inner_tuples / W + 4096) * 3 / 2 * sizeof(bench::JoinTuple);
  const size_t out_share =
      (config.outer_tuples / W + 4096) * 3 / 2 * sizeof(bench::JoinTuple);
  DFI_ASSIGN_OR_RETURN(mpi::MpiWindow * inner_win,
                       env.CreateWindow(in_share));
  DFI_ASSIGN_OR_RETURN(mpi::MpiWindow * outer_win,
                       env.CreateWindow(out_share));

  struct RankStat {
    SimTime histogram = 0, network = 0, barrier = 0, local = 0,
            build_probe = 0, total = 0;
    uint64_t matches = 0;
    uint64_t received_inner = 0, received_outer = 0;
  };
  std::vector<RankStat> stats(W);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (uint32_t w = 0; w < W; ++w) {
    threads.emplace_back([&, w] {
      VirtualClock clock;
      RankStat& st = stats[w];
      const int rank = static_cast<int>(w);
      constexpr uint32_t kWcBuf = 8192;  // write-combine buffer (paper opt.)

      // One full pass per relation: histogram -> offsets -> put -> fence.
      auto partition_relation =
          [&](const std::vector<bench::JoinTuple>& chunk,
              mpi::MpiWindow* window, uint64_t* received) -> bool {
        // Pass 1: histogram (the extra scan DFI does not need).
        SimTime t0 = clock.now();
        std::vector<uint64_t> hist(W, 0);
        for (const bench::JoinTuple& t : chunk) {
          ++hist[NetworkDest(t.key, W)];
          clock.Advance(config.histogram_cost_ns);
        }
        // Exchange histograms so every rank knows its incoming counts ...
        std::vector<uint64_t> incoming(W, 0);
        if (!env.Alltoall(rank, hist.data(), incoming.data(),
                          sizeof(uint64_t), &clock)
                 .ok()) {
          return false;
        }
        // ... and exchange exclusive write offsets back.
        std::vector<uint64_t> offsets_for_src(W, 0);
        uint64_t acc = 0;
        for (uint32_t s = 0; s < W; ++s) {
          offsets_for_src[s] = acc;
          acc += incoming[s];
        }
        *received = acc;
        std::vector<uint64_t> my_offsets(W, 0);
        if (!env.Alltoall(rank, offsets_for_src.data(), my_offsets.data(),
                          sizeof(uint64_t), &clock)
                 .ok()) {
          return false;
        }
        st.histogram += clock.now() - t0;

        // Pass 2: partition into write-combine buffers, one-sided puts to
        // coordination-free exclusive offsets.
        t0 = clock.now();
        std::vector<std::vector<bench::JoinTuple>> wc(W);
        std::vector<uint64_t> cursor = my_offsets;
        auto flush = [&](uint32_t d) -> bool {
          if (wc[d].empty()) return true;
          const size_t bytes = wc[d].size() * sizeof(bench::JoinTuple);
          if (!env.Put(rank, wc[d].data(), bytes, static_cast<int>(d),
                       cursor[d] * sizeof(bench::JoinTuple), window, &clock)
                   .ok()) {
            return false;
          }
          cursor[d] += wc[d].size();
          wc[d].clear();
          return true;
        };
        for (const bench::JoinTuple& t : chunk) {
          const uint32_t d = NetworkDest(t.key, W);
          clock.Advance(stage_cost);
          wc[d].push_back(t);
          if (wc[d].size() * sizeof(bench::JoinTuple) >= kWcBuf) {
            if (!flush(d)) return false;
          }
        }
        for (uint32_t d = 0; d < W; ++d) {
          if (!flush(d)) return false;
        }
        st.network += clock.now() - t0;

        // Barrier: all data must have arrived before local processing (the
        // synchronization DFI's streaming consume avoids).
        t0 = clock.now();
        if (!env.Fence(rank, window, &clock).ok()) return false;
        st.barrier += clock.now() - t0;
        return true;
      };

      const std::vector<bench::JoinTuple> inner = InnerChunk(config, w);
      if (!partition_relation(inner, inner_win, &st.received_inner)) {
        failed.store(true);
        return;
      }
      // Local partition + build of the received inner share.
      SimTime t0 = clock.now();
      const uint32_t num_buckets = 1u << config.local_radix_bits;
      std::vector<std::vector<bench::JoinTuple>> buckets(num_buckets);
      const auto* in_tuples =
          reinterpret_cast<const bench::JoinTuple*>(inner_win->local(rank));
      for (uint64_t i = 0; i < st.received_inner; ++i) {
        clock.Advance(scan_cost);
        buckets[LocalBucket(in_tuples[i].key, config.local_radix_bits)]
            .push_back(in_tuples[i]);
      }
      st.local += clock.now() - t0;
      t0 = clock.now();
      std::vector<JoinHashTable> tables(num_buckets);
      for (uint32_t b = 0; b < num_buckets; ++b) {
        tables[b].Reserve(buckets[b].size());
        for (const bench::JoinTuple& t : buckets[b]) {
          tables[b].Insert(t.key, t.payload);
          clock.Advance(config.build_cost_ns);
        }
      }
      st.build_probe += clock.now() - t0;

      const std::vector<bench::JoinTuple> outer = OuterChunk(config, w);
      if (!partition_relation(outer, outer_win, &st.received_outer)) {
        failed.store(true);
        return;
      }
      // Local partition + probe of the received outer share.
      t0 = clock.now();
      std::vector<std::vector<bench::JoinTuple>> obuckets(num_buckets);
      const auto* out_tuples =
          reinterpret_cast<const bench::JoinTuple*>(outer_win->local(rank));
      for (uint64_t i = 0; i < st.received_outer; ++i) {
        clock.Advance(scan_cost);
        obuckets[LocalBucket(out_tuples[i].key, config.local_radix_bits)]
            .push_back(out_tuples[i]);
      }
      st.local += clock.now() - t0;
      t0 = clock.now();
      for (uint32_t b = 0; b < num_buckets; ++b) {
        for (const bench::JoinTuple& t : obuckets[b]) {
          clock.Advance(config.probe_cost_ns);
          st.matches += tables[b].CountMatches(t.key);
        }
      }
      st.build_probe += clock.now() - t0;
      st.total = clock.now();
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) return Status::Internal("MPI join rank failed");

  JoinResult result;
  SimTime total_max = 0;
  for (const RankStat& st : stats) {
    result.matches += st.matches;
    result.phases.histogram += st.histogram / W;
    result.phases.network_partition += st.network / W;
    result.phases.sync_barrier += st.barrier / W;
    result.phases.local_partition += st.local / W;
    result.phases.build_probe += st.build_probe / W;
    total_max = std::max(total_max, st.total);
  }
  result.phases.total = total_max;
  return result;
}

// ---------------------------------------------------------------------------
// DFI fragment-and-replicate join (paper "Join Adaptability")
// ---------------------------------------------------------------------------

StatusOr<JoinResult> RunDfiReplicateJoin(DfiRuntime* dfi,
                                         const std::vector<std::string>& nodes,
                                         const JoinConfig& config) {
  if (nodes.size() != config.num_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  const uint32_t W = config.total_workers();
  const net::SimConfig& sim = dfi->config();

  ReplicateFlowSpec spec;
  spec.name = "join.replicate";
  spec.sources = DfiNodes::GridOf(nodes, config.workers_per_node);
  spec.targets = DfiNodes::GridOf(nodes, config.workers_per_node);
  spec.schema = JoinSchema();
  spec.options.use_multicast = true;
  // Size the receive pools so the whole (small) inner relation fits without
  // credit blocking: workers push everything before they start draining.
  const uint64_t segments_needed =
      (config.inner_tuples * sizeof(bench::JoinTuple)) / 4000 + 2 * W + 16;
  spec.options.segments_per_ring = static_cast<uint32_t>(segments_needed);
  DFI_RETURN_IF_ERROR(dfi->InitReplicateFlow(std::move(spec)));

  std::atomic<uint64_t> total_matches{0};
  std::vector<SimTime> t_repl(W), t_total(W);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (uint32_t w = 0; w < W; ++w) {
    threads.emplace_back([&, w] {
      auto src = dfi->CreateReplicateSource("join.replicate", w);
      auto tgt = dfi->CreateReplicateTarget("join.replicate", w);
      if (!src.ok() || !tgt.ok()) {
        failed.store(true);
        return;
      }
      // Replicate the inner fragment to everyone.
      for (const bench::JoinTuple& t : InnerChunk(config, w)) {
        if (!(*src)->Push(&t).ok()) {
          failed.store(true);
          return;
        }
      }
      if (!(*src)->Close().ok()) {
        failed.store(true);
        return;
      }
      // Receive the full inner relation; build one table streaming.
      JoinHashTable table;
      table.Reserve(config.inner_tuples);
      const Schema schema = JoinSchema();
      SegmentView seg;
      while ((*tgt)->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
        for (uint32_t off = 0; off + 16 <= seg.bytes; off += 16) {
          TupleView t(seg.payload + off, &schema);
          (*tgt)->clock().Advance(sim.tuple_consume_fixed_ns +
                                  config.build_cost_ns);
          table.Insert(t.Get<uint64_t>(0), t.Get<uint64_t>(1));
        }
      }
      (*src)->clock().AdvanceTo((*tgt)->clock().now());
      t_repl[w] = (*tgt)->clock().now();

      // Probe the local outer fragment — zero network traffic.
      uint64_t matches = 0;
      for (const bench::JoinTuple& t : OuterChunk(config, w)) {
        (*tgt)->clock().Advance(config.probe_cost_ns);
        matches += table.CountMatches(t.key);
      }
      total_matches.fetch_add(matches, std::memory_order_relaxed);
      t_total[w] = (*tgt)->clock().now();
    });
  }
  for (auto& t : threads) t.join();
  DFI_RETURN_IF_ERROR(dfi->RemoveFlow("join.replicate"));
  if (failed.load()) return Status::Internal("replicate join worker failed");

  JoinResult result;
  result.matches = total_matches.load();
  SimTime repl_sum = 0, total_max = 0;
  for (uint32_t w = 0; w < W; ++w) {
    repl_sum += t_repl[w];
    total_max = std::max(total_max, t_total[w]);
  }
  result.phases.network_replication = repl_sum / W;
  result.phases.total = total_max;
  result.phases.build_probe = total_max - result.phases.network_replication;
  return result;
}

}  // namespace dfi::join
