#ifndef DFI_APPS_JOIN_HASH_TABLE_H_
#define DFI_APPS_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace dfi::join {

/// Open-addressing (linear probing) multimap from uint64 keys to uint64
/// payloads, used for the cache-sized partitions of the radix hash join.
/// Supports duplicate keys; power-of-two capacity.
class JoinHashTable {
 public:
  JoinHashTable() = default;

  /// Prepares for ~`expected` inserts (50% max load factor).
  void Reserve(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
  }

  void Insert(uint64_t key, uint64_t payload) {
    DFI_DCHECK(!slots_.empty());
    DFI_DCHECK(size_ * 2 <= slots_.size()) << "table overfull";
    size_t i = HashU64(key) & mask_;
    while (slots_[i].used) {
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, payload, true};
    ++size_;
  }

  /// Invokes fn(payload) for every entry matching `key`; returns the match
  /// count.
  template <typename Fn>
  size_t Probe(uint64_t key, Fn fn) const {
    if (slots_.empty()) return 0;
    size_t matches = 0;
    size_t i = HashU64(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        fn(slots_[i].payload);
        ++matches;
      }
      i = (i + 1) & mask_;
    }
    return matches;
  }

  /// Count-only probe.
  size_t CountMatches(uint64_t key) const {
    return Probe(key, [](uint64_t) {});
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t payload = 0;
    bool used = false;
  };
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace dfi::join

#endif  // DFI_APPS_JOIN_HASH_TABLE_H_
