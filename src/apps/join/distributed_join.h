#ifndef DFI_APPS_JOIN_DISTRIBUTED_JOIN_H_
#define DFI_APPS_JOIN_DISTRIBUTED_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/dfi_runtime.h"

namespace dfi::join {

/// Configuration of the distributed joins (paper section 6.3.1: 8 nodes,
/// 64 workers total, 2.56 B x 2.56 B tuples — scaled down here; see
/// EXPERIMENTS.md).
struct JoinConfig {
  uint32_t num_nodes = 8;
  uint32_t workers_per_node = 8;
  uint64_t inner_tuples = 1 << 22;
  uint64_t outer_tuples = 1 << 22;
  /// Second-pass radix bits: buckets per worker (cache-sized partitions).
  uint32_t local_radix_bits = 6;
  uint64_t seed = 42;

  // Application-level CPU cost model (virtual ns/tuple), calibrated to a
  // few GB/s of single-thread partitioning like the paper's hardware.
  SimTime histogram_cost_ns = 2;
  SimTime partition_cost_ns = 5;
  SimTime build_cost_ns = 10;
  SimTime probe_cost_ns = 10;

  uint32_t total_workers() const { return num_nodes * workers_per_node; }
};

/// Per-phase virtual runtimes (mean across workers; the phases the paper's
/// Figure 13/14 break down). Phases that a variant does not have stay 0 —
/// e.g. DFI needs no histogram pass and no synchronization barrier.
struct JoinPhases {
  SimTime histogram = 0;
  SimTime network_partition = 0;  ///< shuffle (DFI: overlapped w/ partition)
  SimTime network_replication = 0;  ///< fragment-and-replicate variant
  SimTime sync_barrier = 0;
  SimTime local_partition = 0;  ///< 0 for DFI: streamed while consuming
  SimTime build_probe = 0;
  /// Completion time: max over workers of the final virtual clock.
  SimTime total = 0;
};

struct JoinResult {
  uint64_t matches = 0;
  JoinPhases phases;
};

/// Distributed radix hash join on two bandwidth-optimized DFI shuffle flows
/// (paper Figure 2): no histogram pass, no barrier; incoming tuples are
/// partitioned/built/probed in a streaming fashion.
StatusOr<JoinResult> RunDfiRadixJoin(DfiRuntime* dfi,
                                     const std::vector<std::string>& nodes,
                                     const JoinConfig& config);

/// The same radix join expressed entirely as built-in graph operators: two
/// kSource scans feeding a kJoin vertex over typed shuffle edges. Produces
/// the same match count as RunDfiRadixJoin; phase timings are coarser (the
/// built-in operator does not overlap push and consume), so the fused
/// variant above remains the figure-13 configuration.
StatusOr<JoinResult> RunGraphRadixJoin(DfiRuntime* dfi,
                                       const std::vector<std::string>& nodes,
                                       const JoinConfig& config);

/// Baseline: MPI radix join following Barthels et al. [2] — histogram pass,
/// exclusive-offset MPI_Put network partitioning, fence barrier, then local
/// partition + build/probe.
StatusOr<JoinResult> RunMpiRadixJoin(net::Fabric* fabric,
                                     const std::vector<net::NodeId>& nodes,
                                     const JoinConfig& config);

/// Fragment-and-replicate join: the (small) inner relation is replicated to
/// every worker over one DFI replicate flow (multicast); the outer relation
/// is probed locally without any network transfer (paper section 6.3.1,
/// "Join Adaptability").
StatusOr<JoinResult> RunDfiReplicateJoin(DfiRuntime* dfi,
                                         const std::vector<std::string>& nodes,
                                         const JoinConfig& config);

/// Single-node reference join for correctness checks: exact number of
/// matches the distributed variants must reproduce.
uint64_t ReferenceJoinMatches(const JoinConfig& config);

}  // namespace dfi::join

#endif  // DFI_APPS_JOIN_DISTRIBUTED_JOIN_H_
