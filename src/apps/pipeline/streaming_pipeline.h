#ifndef DFI_APPS_PIPELINE_STREAMING_PIPELINE_H_
#define DFI_APPS_PIPELINE_STREAMING_PIPELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/dfi_runtime.h"
#include "core/graph/executor.h"
#include "core/graph/graph.h"

namespace dfi::pipeline {

/// Configuration of the flagship streaming pipeline (DESIGN.md §14):
///
///   ingest --shuffle(adaptive)--> window --combiner--> aggregate
///     --replicate--> subscribers
///
/// Ingest workers emit {key, seq, val, ts} tuples whose keys follow a
/// zipfian distribution; the skew-adaptive shuffle spreads hot keys over
/// window workers; the window operator fuses (seq / window_size) with the
/// key into a window group key; the combiner edge folds each (window, key)
/// group into COUNT / SUM(val) / MAX(ts); aggregate workers re-emit the
/// rows over a replicate edge; every subscriber observes every row.
struct PipelineConfig {
  uint32_t num_nodes = 4;
  uint32_t sources_per_node = 2;
  uint32_t windows_per_node = 2;
  /// Aggregate workers, all placed on the first node (the paper's N:1
  /// combiner topology).
  uint32_t aggregate_workers = 2;
  uint32_t subscribers_per_node = 1;
  uint64_t tuples_per_source = 1 << 14;
  uint64_t key_domain = 1 << 10;
  /// YCSB-convention zipf skew; 0 = uniform.
  double zipf_theta = 0.0;
  /// Sequence numbers per window (window id = seq / window_size).
  uint64_t window_size = 1024;
  uint32_t window_key_bits = 20;
  /// Skew adaptation on the ingest shuffle (hot-key re-splitting + target
  /// work stealing).
  bool adaptive_shuffle = true;
  uint64_t seed = 42;
};

struct PipelineResult {
  uint64_t tuples_ingested = 0;
  uint64_t windowed_tuples = 0;
  /// Aggregate rows published over the replicate edge.
  uint64_t rows_published = 0;
  /// Row deliveries summed over all subscribers.
  uint64_t rows_delivered = 0;
  /// Max final virtual clock over the subscriber workers.
  SimTime completion = 0;
  /// End-to-end latency per delivered row: subscriber consume time minus
  /// MAX(ts) of the row's window (merged over all subscribers).
  LatencyRecorder latency;
  /// Content of every window group as observed by subscriber 0:
  /// window key -> (COUNT, SUM(val)). Exact integers, insensitive to
  /// delivery order — the determinism-test fingerprint.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> windows;
  /// Commutative content hash per subscriber. All entries must agree (a
  /// replicate edge delivers every row to every subscriber).
  std::vector<uint64_t> fingerprints;
};

/// The pipeline's dataflow graph. Exposed so tests and benches can inspect
/// or perturb the typed spec before Graph::Build; `collector` receives the
/// subscriber sink bodies' output and must outlive the returned spec's run.
/// Most callers want RunStreamingPipeline below.
struct PipelineCollector;
graph::GraphSpec MakePipelineSpec(const PipelineConfig& config,
                                  const std::vector<std::string>& nodes,
                                  PipelineCollector* collector);

/// Builds, validates, instantiates and runs the pipeline graph; blocks
/// until every operator finished. Dual-mode: inside a running engine task
/// the operators become engine actors (deterministic content at any pool
/// size), on a plain thread they are OS threads.
StatusOr<PipelineResult> RunStreamingPipeline(
    DfiRuntime* dfi, const std::vector<std::string>& nodes,
    const PipelineConfig& config);

}  // namespace dfi::pipeline

#endif  // DFI_APPS_PIPELINE_STREAMING_PIPELINE_H_
