#include "apps/pipeline/streaming_pipeline.h"

#include <algorithm>
#include <mutex>

#include "bench_util/workload.h"
#include "common/hash.h"

namespace dfi::pipeline {
namespace {

/// Tuple layout of the ingest stream. `val` is a small deterministic
/// function of (key, seq) so window sums stay exact integers; `ts` is the
/// source's virtual clock at emit time (the latency epoch).
Schema IngestSchema() {
  return Schema{{"key", DataType::kUInt64},
                {"seq", DataType::kUInt64},
                {"val", DataType::kUInt64},
                {"ts", DataType::kUInt64}};
}

/// IngestSchema plus the window operator's fused group key.
Schema WindowedSchema() {
  return Schema{{"key", DataType::kUInt64},
                {"seq", DataType::kUInt64},
                {"val", DataType::kUInt64},
                {"ts", DataType::kUInt64},
                {"wkey", DataType::kUInt64}};
}

/// Row schema a kAggregate vertex derives from the combiner edge below:
/// group key plus one double accumulator per aggregate, in spec order
/// (COUNT, SUM(val), MAX(ts)).
Schema RowSchema() {
  return Schema{{"group", DataType::kUInt64},
                {"a0", DataType::kDouble},
                {"a1", DataType::kDouble},
                {"a2", DataType::kDouble}};
}

struct PackedTuple {
  uint64_t key, seq, val, ts;
};
static_assert(sizeof(PackedTuple) == 32, "densely packed");

}  // namespace

/// Shared sink-side state the subscriber bodies write into (one graph run's
/// worth; guarded by `mu` — subscribers run concurrently).
struct PipelineCollector {
  std::mutex mu;
  std::vector<uint64_t> fingerprints;
  std::vector<uint64_t> delivered;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> windows;  // subscriber 0
  LatencyRecorder latency;
};

graph::GraphSpec MakePipelineSpec(const PipelineConfig& config,
                                  const std::vector<std::string>& nodes,
                                  PipelineCollector* collector) {
  const uint32_t num_subscribers =
      config.num_nodes * config.subscribers_per_node;
  collector->fingerprints.assign(num_subscribers, 0);
  collector->delivered.assign(num_subscribers, 0);

  graph::GraphSpec gs;
  gs.name = "pipeline";

  graph::VertexSpec ingest;
  ingest.name = "ingest";
  ingest.kind = graph::OpKind::kSource;
  ingest.workers = DfiNodes::GridOf(nodes, config.sources_per_node);
  ingest.output = {IngestSchema(), Ordering::kNone};
  ingest.source_fn = [config](graph::OpContext& ctx,
                              const graph::EmitFn& emit) -> Status {
    const auto keys = bench::GenerateZipfianRelation(
        config.tuples_per_source, config.key_domain, config.zipf_theta,
        config.seed + ctx.worker);
    PackedTuple t;
    for (uint64_t seq = 0; seq < config.tuples_per_source; ++seq) {
      t.key = keys[seq].key;
      t.seq = seq;
      t.val = HashU64(t.key ^ (seq * 0x9E3779B97F4A7C15ull)) & 0xFFFF;
      t.ts = static_cast<uint64_t>(ctx.clock->now());
      DFI_RETURN_IF_ERROR(emit(&t));
    }
    return Status::OK();
  };

  graph::VertexSpec window;
  window.name = "window";
  window.kind = graph::OpKind::kWindow;
  window.workers = DfiNodes::GridOf(nodes, config.windows_per_node);
  window.window = {.seq_field = 1,
                   .key_field = 0,
                   .window_size = config.window_size,
                   .key_bits = config.window_key_bits,
                   .out_field = "wkey"};

  graph::VertexSpec aggregate;
  aggregate.name = "aggregate";
  aggregate.kind = graph::OpKind::kAggregate;
  aggregate.workers =
      DfiNodes::GridOf({nodes[0]}, config.aggregate_workers);

  graph::VertexSpec subscribers;
  subscribers.name = "subscribers";
  subscribers.kind = graph::OpKind::kSink;
  subscribers.workers = DfiNodes::GridOf(nodes, config.subscribers_per_node);
  subscribers.tuple_sink = [collector](graph::OpContext& ctx,
                                       TupleView row) -> Status {
    const uint64_t group = row.Get<uint64_t>(0);
    const uint64_t count = static_cast<uint64_t>(row.Get<double>(1));
    const uint64_t sum = static_cast<uint64_t>(row.Get<double>(2));
    const uint64_t max_ts = static_cast<uint64_t>(row.Get<double>(3));
    const int64_t latency =
        ctx.clock->now() - static_cast<SimTime>(max_ts);
    // Commutative per-row hash: delivery order is not deterministic across
    // engine pool sizes, the multiset of rows is.
    const uint64_t row_hash =
        HashU64(group * 0x9E3779B97F4A7C15ull ^ (count << 32) ^ sum);
    std::lock_guard<std::mutex> lock(collector->mu);
    collector->fingerprints[ctx.worker] += row_hash;
    collector->delivered[ctx.worker] += 1;
    if (ctx.worker == 0) {
      collector->windows[group] = {count, sum};
    }
    collector->latency.Record(latency);
    return Status::OK();
  };

  gs.vertices = {std::move(ingest), std::move(window), std::move(aggregate),
                 std::move(subscribers)};

  graph::EdgeSpec shuffle;
  shuffle.name = "pipe.ingest";
  shuffle.from = "ingest";
  shuffle.to = "window";
  shuffle.kind = graph::EdgeKind::kShuffle;
  shuffle.type = {IngestSchema(), Ordering::kNone};
  shuffle.key_index = 0;
  shuffle.options.adaptive.enabled = config.adaptive_shuffle;

  graph::EdgeSpec combine;
  combine.name = "pipe.window";
  combine.from = "window";
  combine.to = "aggregate";
  combine.kind = graph::EdgeKind::kCombiner;
  combine.type = {WindowedSchema(), Ordering::kNone};
  combine.key_index = 4;  // wkey
  combine.aggregates = {{AggFunc::kCount, 0},
                        {AggFunc::kSum, 2},    // val
                        {AggFunc::kMax, 3}};   // ts

  graph::EdgeSpec publish;
  publish.name = "pipe.publish";
  publish.from = "aggregate";
  publish.to = "subscribers";
  publish.kind = graph::EdgeKind::kReplicate;
  publish.type = {RowSchema(), Ordering::kNone};

  gs.edges = {std::move(shuffle), std::move(combine), std::move(publish)};
  return gs;
}

StatusOr<PipelineResult> RunStreamingPipeline(
    DfiRuntime* dfi, const std::vector<std::string>& nodes,
    const PipelineConfig& config) {
  if (nodes.size() != config.num_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  PipelineCollector collector;
  DFI_ASSIGN_OR_RETURN(
      graph::Graph g,
      graph::Graph::Build(MakePipelineSpec(config, nodes, &collector),
                          &dfi->fabric()));
  DFI_ASSIGN_OR_RETURN(std::unique_ptr<graph::GraphRun> run,
                       g.Instantiate(dfi));
  DFI_RETURN_IF_ERROR(run->Start());
  DFI_RETURN_IF_ERROR(run->Finish());

  PipelineResult result;
  result.tuples_ingested = run->stats("ingest").tuples_out;
  result.windowed_tuples = run->stats("window").tuples_out;
  result.rows_published = run->stats("aggregate").tuples_out;
  result.rows_delivered = run->stats("subscribers").tuples_in;
  result.completion = run->stats("subscribers").max_clock;
  result.latency = std::move(collector.latency);
  result.windows = std::move(collector.windows);
  result.fingerprints = std::move(collector.fingerprints);
  // Every subscriber must have seen the same multiset of rows.
  for (uint64_t fp : result.fingerprints) {
    if (fp != result.fingerprints[0]) {
      return Status::Internal(
          "subscribers disagree on delivered content (replicate edge broke "
          "all-to-all delivery)");
    }
  }
  return result;
}

}  // namespace dfi::pipeline
