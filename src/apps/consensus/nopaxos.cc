#include <atomic>
#include <thread>

#include "apps/consensus/internal.h"
#include "common/exec/engine.h"

namespace dfi::consensus {

using internal::ClientEndpoint;
using internal::ClientOutcome;
using internal::MakeCommand;
using internal::SyncClocks;
using internal::TupleDrain;

StatusOr<ConsensusResult> RunNoPaxos(DfiRuntime* dfi,
                                     const std::vector<std::string>& nodes,
                                     const ConsensusConfig& cfg) {
  if (nodes.size() != cfg.num_replicas + cfg.num_client_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  if (cfg.num_replicas < 3 || cfg.num_replicas % 2 == 0) {
    return Status::InvalidArgument("need an odd number >= 3 of replicas");
  }
  // The client needs the leader's result plus matching view-acks from a
  // majority; with the leader's own answer counted, that is majority-1
  // follower acks.
  const uint32_t needed_acks = cfg.num_replicas / 2 + 1 - 1;

  FlowOptions lat;
  lat.optimization = FlowOptimization::kLatency;
  {
    // Ordered unreliable multicast (OUM): clients -> all replicas through
    // DFI's globally-ordered replicate flow and its tuple sequencer.
    ReplicateFlowSpec oum;
    oum.name = "np.oum";
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      oum.sources.Append(ClientEndpoint(nodes, cfg, c));
    }
    for (uint32_t r = 0; r < cfg.num_replicas; ++r) {
      oum.targets.Append(Endpoint{nodes[r], 0});
    }
    oum.schema = Command::MakeSchema();
    oum.options = lat;
    oum.options.use_multicast = true;
    oum.options.global_ordering = true;
    // Deep receive pools: all clients' windows can be outstanding at once
    // (NOPaxos pre-posts large receive queues on every replica).
    oum.options.segments_per_ring = 256;
    DFI_RETURN_IF_ERROR(dfi->InitReplicateFlow(std::move(oum)));

    // Leader result back to the client.
    ShuffleFlowSpec reply;
    reply.name = "np.reply";
    reply.sources.Append(Endpoint{nodes[0], 0});
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      reply.targets.Append(ClientEndpoint(nodes, cfg, c));
    }
    reply.schema = Reply::MakeSchema();
    reply.options = lat;
    reply.routing = [](TupleView t, uint32_t m) {
      return t.Get<uint16_t>(0) % m;
    };
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(reply)));

    // Follower view-acks straight to the clients — the load that saturates
    // the Multi-Paxos leader is collected by the clients themselves here
    // (paper section 6.3.2).
    ShuffleFlowSpec ack;
    ack.name = "np.ack";
    for (uint32_t r = 1; r < cfg.num_replicas; ++r) {
      ack.sources.Append(Endpoint{nodes[r], 0});
    }
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      ack.targets.Append(ClientEndpoint(nodes, cfg, c));
    }
    ack.schema = Vote::MakeSchema();
    ack.options = lat;
    ack.routing = [](TupleView t, uint32_t m) {
      return t.Get<uint16_t>(2) % m;  // field 2: client_id
    };
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(ack)));
  }

  std::atomic<bool> failed{false};
  std::vector<ClientOutcome> outcomes(cfg.num_clients);
  exec::ActorGroup actors;

  // ---- Replicas -----------------------------------------------------------
  for (uint32_t r = 0; r < cfg.num_replicas; ++r) {
    actors.Spawn(r, "np.replica." + std::to_string(r), [&, r] {
      auto oum_tgt = dfi->CreateReplicateTarget("np.oum", r);
      if (!oum_tgt.ok()) {
        failed.store(true);
        return;
      }
      const bool is_leader = r == 0;
      std::unique_ptr<ShuffleSource> out_src;
      if (is_leader) {
        auto src = dfi->CreateShuffleSource("np.reply", 0);
        if (!src.ok()) {
          failed.store(true);
          return;
        }
        out_src = std::move(src).value();
      } else {
        auto src = dfi->CreateShuffleSource("np.ack", r - 1);
        if (!src.ok()) {
          failed.store(true);
          return;
        }
        out_src = std::move(src).value();
      }

      KvStore kv;
      uint64_t log_length = 0;
      SegmentView seg;
      const Schema schema = Command::MakeSchema();
      for (;;) {
        const ConsumeResult res = (*oum_tgt)->ConsumeSegment(&seg);
        if (res == ConsumeResult::kFlowEnd) break;
        DFI_CHECK(res == ConsumeResult::kOk);
        Command cmd;
        std::memcpy(&cmd, seg.payload, sizeof(cmd));
        SyncClocks((*oum_tgt)->clock(), out_src->clock());
        (*oum_tgt)->clock().Advance(cfg.replica_logic_cost_ns +
                                    cfg.log_append_cost_ns);
        out_src->clock().AdvanceTo((*oum_tgt)->clock().now());
        const uint64_t slot = log_length++;
        if (is_leader) {
          // Execute speculatively in OUM order and answer the client.
          out_src->clock().Advance(cfg.kv_op_cost_ns);
          Reply rep{};
          rep.client_id = cmd.client_id;
          rep.ok = 1;
          rep.req_id = cmd.req_id;
          rep.log_index = slot;
          if (cmd.is_write) {
            Value v;
            std::memcpy(v.data(), cmd.value, kValueBytes);
            kv.Put(cmd.key, v);
            std::memcpy(rep.value, cmd.value, kValueBytes);
          } else {
            Value v;
            kv.Get(cmd.key, &v);
            std::memcpy(rep.value, v.data(), kValueBytes);
          }
          DFI_CHECK_OK(out_src->Push(&rep));
        } else {
          Vote ack{seg.sequence, static_cast<uint16_t>(r), cmd.client_id,
                   cmd.req_id};
          DFI_CHECK_OK(out_src->Push(&ack));
        }
      }
      DFI_CHECK_OK(out_src->Close());
    });
  }

  // ---- Clients ------------------------------------------------------------
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    actors.Spawn(cfg.num_replicas + c % cfg.num_client_nodes,
                 "np.client." + std::to_string(c), [&, c] {
      auto oum_src = dfi->CreateReplicateSource("np.oum", c);
      auto reply_tgt = dfi->CreateShuffleTarget("np.reply", c);
      auto ack_tgt = dfi->CreateShuffleTarget("np.ack", c);
      if (!oum_src.ok() || !reply_tgt.ok() || !ack_tgt.ok()) {
        failed.store(true);
        return;
      }
      auto sync3 = [&] {
        SimTime t = (*oum_src)->clock().now();
        t = std::max(t, (*reply_tgt)->clock().now());
        t = std::max(t, (*ack_tgt)->clock().now());
        (*oum_src)->clock().AdvanceTo(t);
        (*reply_tgt)->clock().AdvanceTo(t);
        (*ack_tgt)->clock().AdvanceTo(t);
        return t;
      };

      ClientOutcome& out = outcomes[c];
      const auto requests = bench::GenerateYcsbRequests(
          cfg.requests_per_client, cfg.key_space, cfg.write_fraction, 0.0,
          cfg.seed + c);
      std::vector<SimTime> send_time(cfg.requests_per_client);
      std::vector<SimTime> last_arrival(cfg.requests_per_client, 0);
      std::vector<uint8_t> got_reply(cfg.requests_per_client, 0);
      std::vector<uint8_t> ack_count(cfg.requests_per_client, 0);
      std::vector<uint8_t> completed(cfg.requests_per_client, 0);
      TupleDrain<Reply> replies(reply_tgt->get());
      TupleDrain<Vote> acks(ack_tgt->get());
      out.latencies.Reserve(cfg.requests_per_client);
      uint32_t sent = 0, done = 0;

      auto maybe_complete = [&](uint32_t req) {
        if (completed[req] || !got_reply[req] ||
            ack_count[req] < needed_acks) {
          return;
        }
        completed[req] = 1;
        sync3();
        out.latencies.Record(
            std::max<SimTime>(last_arrival[req] - send_time[req], 0));
        ++done;
      };

      while (done < cfg.requests_per_client) {
        const uint64_t epoch = exec::ProgressEpoch();
        bool progressed = false;
        while (sent < cfg.requests_per_client &&
               sent - done < cfg.client_window) {
          sync3();
          if (sent >= cfg.client_window) {
            (*oum_src)->clock().Advance(cfg.think_time_ns);
          }
          const Command cmd =
              MakeCommand(static_cast<uint16_t>(c), sent, requests[sent]);
          send_time[sent] = (*oum_src)->clock().now();
          // Push pays the OUM sequencer round trip (paper: "fetching a
          // global sequence number ... incurs an additional two message
          // delays").
          DFI_CHECK_OK((*oum_src)->Push(&cmd));
          ++sent;
          progressed = true;
        }
        Reply rep;
        SimTime arrival = 0;
        while (replies.Next(&rep, &arrival)) {
          got_reply[rep.req_id] = 1;
          last_arrival[rep.req_id] =
              std::max(last_arrival[rep.req_id], arrival);
          maybe_complete(rep.req_id);
          progressed = true;
        }
        Vote ack;
        while (acks.Next(&ack, &arrival)) {
          if (ack.req_id < cfg.requests_per_client) {
            ++ack_count[ack.req_id];
            last_arrival[ack.req_id] =
                std::max(last_arrival[ack.req_id], arrival);
            maybe_complete(ack.req_id);
          }
          progressed = true;
        }
        if (!progressed) exec::IdleWait(epoch);
      }
      out.completed = done;
      out.finish = sync3();
      DFI_CHECK_OK((*oum_src)->Close());
      replies.DrainToEnd();
      acks.DrainToEnd();
    });
  }

  actors.Join();
  DFI_RETURN_IF_ERROR(dfi->RemoveFlows({"np.oum", "np.reply", "np.ack"}));
  if (failed.load()) return Status::Internal("nopaxos worker failed");

  ConsensusResult result;
  LatencyRecorder all;
  SimTime finish = 0;
  for (auto& o : outcomes) {
    result.completed += o.completed;
    all.Merge(o.latencies);
    finish = std::max(finish, o.finish);
  }
  result.throughput_rps = static_cast<double>(result.completed) * 1e9 /
                          std::max<SimTime>(finish, 1);
  result.median_latency_ns = all.Median();
  result.p95_latency_ns = all.Quantile(0.95);
  return result;
}

}  // namespace dfi::consensus
