#ifndef DFI_APPS_CONSENSUS_KV_STORE_H_
#define DFI_APPS_CONSENSUS_KV_STORE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>

namespace dfi::consensus {

/// Value payload of the replicated key-value store (paper section 6.3.2
/// uses 64-byte requests; the value share of a request is 48 bytes).
inline constexpr size_t kValueBytes = 48;
using Value = std::array<uint8_t, kValueBytes>;

/// The state machine replicated by the consensus protocols: a simple
/// in-memory KV store. Single-writer (the replica thread applying log
/// entries in order); reads may come from the same thread.
class KvStore {
 public:
  void Put(uint64_t key, const Value& value) { map_[key] = value; }

  /// Returns false (and zeroes `out`) if the key is absent.
  bool Get(uint64_t key, Value* out) const {
    auto it = map_.find(key);
    if (it == map_.end()) {
      out->fill(0);
      return false;
    }
    *out = it->second;
    return true;
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<uint64_t, Value> map_;
};

}  // namespace dfi::consensus

#endif  // DFI_APPS_CONSENSUS_KV_STORE_H_
