#ifndef DFI_APPS_CONSENSUS_MESSAGES_H_
#define DFI_APPS_CONSENSUS_MESSAGES_H_

#include <cstdint>
#include <cstring>

#include "apps/consensus/kv_store.h"
#include "core/schema.h"

namespace dfi::consensus {

/// 64-byte client request (paper section 6.3.2: clients submit 64-byte
/// requests). Packed wire format shared by all three systems.
struct Command {
  uint16_t client_id;
  uint8_t is_write;
  uint8_t pad0;
  uint32_t req_id;
  uint64_t key;
  uint8_t value[kValueBytes];

  static Schema MakeSchema() {
    return Schema{{"client_id", DataType::kUInt16},
                  {"is_write", DataType::kUInt8},
                  {"pad0", DataType::kUInt8},
                  {"req_id", DataType::kUInt32},
                  {"key", DataType::kUInt64},
                  {"value", DataType::kChar, kValueBytes}};
  }
};
static_assert(sizeof(Command) == 64, "64-byte requests");

/// Reply from the leader to a client.
struct Reply {
  uint16_t client_id;
  uint8_t ok;
  uint8_t pad0;
  uint32_t req_id;
  uint8_t value[kValueBytes];
  uint64_t log_index;  ///< slot / OUM sequence the request committed at

  static Schema MakeSchema() {
    return Schema{{"client_id", DataType::kUInt16},
                  {"ok", DataType::kUInt8},
                  {"pad0", DataType::kUInt8},
                  {"req_id", DataType::kUInt32},
                  {"value", DataType::kChar, kValueBytes},
                  {"log_index", DataType::kUInt64}};
  }
};
static_assert(sizeof(Reply) == 64);

/// Leader -> follower proposal (Multi-Paxos).
struct Proposal {
  uint64_t log_index;
  Command cmd;

  static Schema MakeSchema() {
    return Schema{{"log_index", DataType::kUInt64},
                  {"cmd", DataType::kChar, sizeof(Command)}};
  }
};
static_assert(sizeof(Proposal) == 72);

/// Follower -> leader vote (Multi-Paxos) / follower -> client view ack
/// (NOPaxos).
struct Vote {
  uint64_t log_index;
  uint16_t replica;
  uint16_t client_id;  ///< NOPaxos: ack routed to this client
  uint32_t req_id;

  static Schema MakeSchema() {
    return Schema{{"log_index", DataType::kUInt64},
                  {"replica", DataType::kUInt16},
                  {"client_id", DataType::kUInt16},
                  {"req_id", DataType::kUInt32}};
  }
};
static_assert(sizeof(Vote) == 16);

}  // namespace dfi::consensus

#endif  // DFI_APPS_CONSENSUS_MESSAGES_H_
