#ifndef DFI_APPS_CONSENSUS_INTERNAL_H_
#define DFI_APPS_CONSENSUS_INTERNAL_H_

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "apps/consensus/consensus.h"
#include "core/replicate_flow.h"
#include "apps/consensus/messages.h"
#include "bench_util/workload.h"
#include "common/stats.h"

namespace dfi::consensus::internal {

/// Non-blocking typed drain over a ShuffleTarget: copies tuples out of
/// consumed segments into a local queue so a replica can poll several
/// incoming flows without blocking on any one of them.
template <typename T>
class TupleDrain {
 public:
  explicit TupleDrain(ShuffleTarget* target) : target_(target) {
    static_assert(std::is_trivially_copyable_v<T>);
  }

  /// Non-blocking: next message if one is available. `arrival` (optional)
  /// receives the virtual time the message reached this endpoint — the
  /// right-hand side of latency measurements (the caller's clock may run
  /// ahead of old arrivals when it pipelines a submission window).
  bool Next(T* out, SimTime* arrival = nullptr) {
    if (buffer_.empty()) Refill();
    if (buffer_.empty()) return false;
    *out = buffer_.front().first;
    if (arrival != nullptr) *arrival = buffer_.front().second;
    buffer_.pop_front();
    return true;
  }

  /// Non-consuming peek at the next message's arrival time; false if no
  /// message is buffered/available. Lets a consumer of several flows merge
  /// them in virtual-arrival order instead of real-delivery order.
  bool PeekArrival(SimTime* arrival) {
    if (buffer_.empty()) Refill();
    if (buffer_.empty()) return false;
    *arrival = buffer_.front().second;
    return true;
  }

  /// The flow ended (cleanly or by failure) and everything was drained.
  bool ended() const { return ended_ && buffer_.empty(); }

  /// The flow ended with kError (peer failure / abort) instead of a clean
  /// flow end. Chaos-aware consumers check this to fail over.
  bool errored() const { return errored_; }

  /// Blocking drain to the end of the flow (discarding messages); used at
  /// teardown so sources never block on full rings. A failed flow (kError)
  /// counts as ended — erroring calls never become productive again.
  void DrainToEnd() {
    SegmentView seg;
    while (!ended_) {
      const ConsumeResult r = target_->ConsumeSegment(&seg);
      if (r == ConsumeResult::kFlowEnd || r == ConsumeResult::kError) {
        ended_ = true;
        errored_ = errored_ || r == ConsumeResult::kError;
        break;
      }
    }
    buffer_.clear();
  }

 private:
  void Refill() {
    if (ended_) return;
    SegmentView seg;
    ConsumeResult r;
    while (target_->TryConsumeSegment(&seg, &r)) {
      if (r == ConsumeResult::kFlowEnd) {
        ended_ = true;
        return;
      }
      if (r == ConsumeResult::kError) {
        ended_ = true;
        errored_ = true;
        return;
      }
      DFI_CHECK_EQ(seg.bytes % sizeof(T), 0u);
      for (uint32_t off = 0; off + sizeof(T) <= seg.bytes;
           off += sizeof(T)) {
        T msg;
        std::memcpy(&msg, seg.payload + off, sizeof(T));
        buffer_.emplace_back(msg, seg.arrival);
      }
      return;  // one segment per refill keeps polling fair across flows
    }
  }

  ShuffleTarget* target_;
  std::deque<std::pair<T, SimTime>> buffer_;
  bool ended_ = false;
  bool errored_ = false;
};

/// Joins two endpoint clocks (a worker thread driving both a source and a
/// target owns one logical timeline).
inline void SyncClocks(VirtualClock& a, VirtualClock& b) {
  const SimTime t = std::max(a.now(), b.now());
  a.AdvanceTo(t);
  b.AdvanceTo(t);
}

/// Builds a Command for request `req` of client `c`.
inline Command MakeCommand(uint16_t client, uint32_t req,
                           const bench::KvRequest& r) {
  Command cmd{};
  cmd.client_id = client;
  cmd.is_write = r.is_write ? 1 : 0;
  cmd.req_id = req;
  cmd.key = r.key;
  std::memset(cmd.value, static_cast<int>(req & 0xFF), sizeof(cmd.value));
  return cmd;
}

/// Client endpoint for client index c (clients spread over the client
/// nodes, several client threads per node — thread-centric as everywhere).
inline Endpoint ClientEndpoint(const std::vector<std::string>& nodes,
                               const ConsensusConfig& cfg, uint32_t c) {
  return Endpoint{nodes[cfg.num_replicas + c % cfg.num_client_nodes],
                  c / cfg.num_client_nodes};
}

/// Per-client outcome of a run.
struct ClientOutcome {
  LatencyRecorder latencies;
  SimTime finish = 0;
  uint64_t completed = 0;
};

/// The shared closed-loop client driver: submits requests with a window and
/// think time, records per-request virtual latencies from matching replies.
/// Used by Multi-Paxos and DARE (NOPaxos clients additionally collect
/// follower acks and have their own driver).
inline ClientOutcome RunLeaderClient(ShuffleSource* submit,
                                     ShuffleTarget* replies,
                                     const ConsensusConfig& cfg,
                                     uint32_t client_index, uint32_t window) {
  ClientOutcome out;
  const auto requests = bench::GenerateYcsbRequests(
      cfg.requests_per_client, cfg.key_space, cfg.write_fraction,
      /*zipf_theta=*/0.0, cfg.seed + client_index);
  std::vector<SimTime> send_time(cfg.requests_per_client);
  uint32_t sent = 0, done = 0;
  out.latencies.Reserve(cfg.requests_per_client);
  while (done < cfg.requests_per_client) {
    while (sent < cfg.requests_per_client && sent - done < window) {
      SyncClocks(submit->clock(), replies->clock());
      // Think time paces steady-state submissions (one per completed
      // request); the initial window fill is a burst, otherwise the fill
      // delay would pollute the latency of the first requests.
      if (sent >= window) {
        submit->clock().Advance(cfg.think_time_ns);
      }
      replies->clock().AdvanceTo(submit->clock().now());
      const Command cmd = MakeCommand(static_cast<uint16_t>(client_index),
                                      sent, requests[sent]);
      send_time[sent] = submit->clock().now();
      DFI_CHECK_OK(submit->Push(&cmd));
      ++sent;
    }
    SegmentView seg;
    DFI_CHECK(replies->ConsumeSegment(&seg) == ConsumeResult::kOk)
        << "reply flow ended before all replies arrived";
    Reply rep;
    std::memcpy(&rep, seg.payload, sizeof(rep));
    SyncClocks(submit->clock(), replies->clock());
    // Latency against the reply's *arrival*: with a pipelined window the
    // client clock runs ahead of old arrivals (think-time pacing).
    out.latencies.Record(std::max<SimTime>(
        seg.arrival - send_time[rep.req_id], 0));
    ++done;
  }
  out.completed = done;
  out.finish = replies->clock().now();
  DFI_CHECK_OK(submit->Close());
  // Drain the end markers so the leader's reply-source Close never blocks.
  SegmentView seg;
  while (replies->ConsumeSegment(&seg) != ConsumeResult::kFlowEnd) {
  }
  return out;
}

}  // namespace dfi::consensus::internal

#endif  // DFI_APPS_CONSENSUS_INTERNAL_H_
