#ifndef DFI_APPS_CONSENSUS_CONSENSUS_H_
#define DFI_APPS_CONSENSUS_CONSENSUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/dfi_runtime.h"

namespace dfi::consensus {

/// Shared configuration of the state-machine-replication experiments
/// (paper section 6.3.2: five replicas, six clients on three nodes,
/// 64-byte requests, YCSB read-dominated 95/5).
struct ConsensusConfig {
  uint32_t num_replicas = 5;
  uint32_t num_clients = 6;
  uint32_t num_client_nodes = 3;
  uint32_t requests_per_client = 2000;
  /// Outstanding requests per client. DARE clients are strictly sequential
  /// (window 1 enforced; paper: "each DARE client cannot submit a new
  /// request until it has received the result from its previous request").
  uint32_t client_window = 8;
  /// Virtual think time between request submissions — the load knob used
  /// to sweep the throughput/latency curve of Figure 15.
  SimTime think_time_ns = 0;
  double write_fraction = 0.05;
  uint64_t key_space = 100000;
  uint64_t seed = 7;

  // ---- Cost model ---------------------------------------------------------
  SimTime kv_op_cost_ns = 100;
  SimTime log_append_cost_ns = 50;
  /// Per-message protocol logic at a replica.
  SimTime replica_logic_cost_ns = 60;
  /// DARE only: extra serialization in the leader's write protocol.
  SimTime dare_write_overhead_ns = 700;
  /// DARE only: per-request software overhead of the hand-crafted protocol
  /// (request detection by polling, log management).
  SimTime dare_request_overhead_ns = 3200;
};

/// Outcome of one run at one load point.
struct ConsensusResult {
  uint64_t completed = 0;
  /// Requests per second of *virtual* time.
  double throughput_rps = 0;
  SimTime median_latency_ns = 0;
  SimTime p95_latency_ns = 0;
};

/// Classical leader-based Multi-Paxos (normal, failure-free operation)
/// modeled exactly on the paper's Figure 3: an N:1 shuffle flow for client
/// submissions, a replicate flow (multicast) for proposals, an N:1 shuffle
/// flow for votes and a 1:N shuffle flow for replies.
///
/// `nodes` must hold num_replicas + num_client_nodes fabric addresses
/// (replicas first).
StatusOr<ConsensusResult> RunMultiPaxos(DfiRuntime* dfi,
                                        const std::vector<std::string>& nodes,
                                        const ConsensusConfig& config);

/// NOPaxos normal operation on DFI's globally-ordered replicate flow (the
/// OUM primitive, paper sections 4.3.2/5.4): clients multicast requests
/// through the tuple sequencer; replicas consume in sequence order; the
/// leader answers while followers ack directly to the clients, which
/// collect the majority themselves. Lost OUM segments are recovered through
/// the flow's gap handling.
StatusOr<ConsensusResult> RunNoPaxos(DfiRuntime* dfi,
                                     const std::vector<std::string>& nodes,
                                     const ConsensusConfig& config);

/// DARE-like baseline [28]: a replicated KV store on a hand-crafted
/// consensus protocol over one-sided RDMA. Reproduces the two properties
/// the paper attributes DARE's disadvantage to — strictly sequential
/// clients and a serializing leader write protocol.
StatusOr<ConsensusResult> RunDare(DfiRuntime* dfi,
                                  const std::vector<std::string>& nodes,
                                  const ConsensusConfig& config);

}  // namespace dfi::consensus

#endif  // DFI_APPS_CONSENSUS_CONSENSUS_H_
