#ifndef DFI_APPS_CONSENSUS_CONSENSUS_H_
#define DFI_APPS_CONSENSUS_CONSENSUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/dfi_runtime.h"

namespace dfi::consensus {

/// Shared configuration of the state-machine-replication experiments
/// (paper section 6.3.2: five replicas, six clients on three nodes,
/// 64-byte requests, YCSB read-dominated 95/5).
struct ConsensusConfig {
  uint32_t num_replicas = 5;
  uint32_t num_clients = 6;
  uint32_t num_client_nodes = 3;
  uint32_t requests_per_client = 2000;
  /// Outstanding requests per client. DARE clients are strictly sequential
  /// (window 1 enforced; paper: "each DARE client cannot submit a new
  /// request until it has received the result from its previous request").
  uint32_t client_window = 8;
  /// Virtual think time between request submissions — the load knob used
  /// to sweep the throughput/latency curve of Figure 15.
  SimTime think_time_ns = 0;
  double write_fraction = 0.05;
  uint64_t key_space = 100000;
  uint64_t seed = 7;

  // ---- Cost model ---------------------------------------------------------
  SimTime kv_op_cost_ns = 100;
  SimTime log_append_cost_ns = 50;
  /// Per-message protocol logic at a replica.
  SimTime replica_logic_cost_ns = 60;
  /// DARE only: extra serialization in the leader's write protocol.
  SimTime dare_write_overhead_ns = 700;
  /// DARE only: per-request software overhead of the hand-crafted protocol
  /// (request detection by polling, log management).
  SimTime dare_request_overhead_ns = 3200;
};

/// Outcome of one run at one load point.
struct ConsensusResult {
  uint64_t completed = 0;
  /// Requests per second of *virtual* time.
  double throughput_rps = 0;
  SimTime median_latency_ns = 0;
  SimTime p95_latency_ns = 0;
};

/// Classical leader-based Multi-Paxos (normal, failure-free operation)
/// modeled exactly on the paper's Figure 3: an N:1 shuffle flow for client
/// submissions, a replicate flow (multicast) for proposals, an N:1 shuffle
/// flow for votes and a 1:N shuffle flow for replies.
///
/// `nodes` must hold num_replicas + num_client_nodes fabric addresses
/// (replicas first).
StatusOr<ConsensusResult> RunMultiPaxos(DfiRuntime* dfi,
                                        const std::vector<std::string>& nodes,
                                        const ConsensusConfig& config);

/// NOPaxos normal operation on DFI's globally-ordered replicate flow (the
/// OUM primitive, paper sections 4.3.2/5.4): clients multicast requests
/// through the tuple sequencer; replicas consume in sequence order; the
/// leader answers while followers ack directly to the clients, which
/// collect the majority themselves. Lost OUM segments are recovered through
/// the flow's gap handling.
StatusOr<ConsensusResult> RunNoPaxos(DfiRuntime* dfi,
                                     const std::vector<std::string>& nodes,
                                     const ConsensusConfig& config);

/// DARE-like baseline [28]: a replicated KV store on a hand-crafted
/// consensus protocol over one-sided RDMA. Reproduces the two properties
/// the paper attributes DARE's disadvantage to — strictly sequential
/// clients and a serializing leader write protocol.
StatusOr<ConsensusResult> RunDare(DfiRuntime* dfi,
                                  const std::vector<std::string>& nodes,
                                  const ConsensusConfig& config);

/// Configuration of the chaos failover experiment: Multi-Paxos under a
/// scripted fail-stop leader crash (robustness PR). `base.client_window`
/// is forced to 1 — clients track at most one in-flight request, so
/// failover resubmission needs no request log.
struct ChaosConfig {
  ConsensusConfig base;
  /// Virtual time at which replica 0 (the term-1 leader) fail-stops.
  SimTime crash_at_ns = 2'000'000;  // 2 ms
  /// Bounded-blocking deadline installed on every flow (virtual time);
  /// survivors must observe the failure well before this backstop.
  SimTime block_deadline_ns = 50'000'000;  // 50 ms
};

/// Outcome of one chaos failover run.
struct ChaosResult {
  uint64_t completed = 0;    ///< requests finished across both terms
  uint64_t resubmitted = 0;  ///< requests replayed on the term-2 flows
  SimTime crash_at_ns = 0;
  /// Virtual time from the crash to the *first* client reply out of the
  /// term-2 (failover) flows — the headline recovery latency.
  SimTime recovery_first_reply_ns = 0;
  /// Virtual time from the crash until *every* client received its first
  /// term-2 reply (all clients recovered).
  SimTime recovery_all_clients_ns = 0;
  double throughput_rps = 0;
  /// The fault plan's canonical event trace (determinism witness).
  std::string fault_trace;
};

/// Multi-Paxos leader failover under a FaultPlan crash: term 1 runs the
/// Figure-3 flow set with replica 0 as leader until the plan fail-stops it;
/// survivors observe kPeerFailed / poisoned teardown (never a hang), then
/// fail over to a pre-published term-2 flow set led by replica 1, where
/// clients resubmit their in-flight requests. Demonstrates the PR's
/// deadline + abort machinery end to end.
StatusOr<ChaosResult> RunMultiPaxosChaos(
    DfiRuntime* dfi, const std::vector<std::string>& nodes,
    const ChaosConfig& config);

}  // namespace dfi::consensus

#endif  // DFI_APPS_CONSENSUS_CONSENSUS_H_
