#include <atomic>
#include <thread>

#include "apps/consensus/internal.h"
#include "common/exec/engine.h"

namespace dfi::consensus {

using internal::ClientEndpoint;
using internal::ClientOutcome;
using internal::MakeCommand;
using internal::RunLeaderClient;
using internal::SyncClocks;
using internal::TupleDrain;

StatusOr<ConsensusResult> RunMultiPaxos(DfiRuntime* dfi,
                                        const std::vector<std::string>& nodes,
                                        const ConsensusConfig& cfg) {
  if (nodes.size() != cfg.num_replicas + cfg.num_client_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  if (cfg.num_replicas < 3 || cfg.num_replicas % 2 == 0) {
    return Status::InvalidArgument("need an odd number >= 3 of replicas");
  }
  const uint32_t majority = cfg.num_replicas / 2 + 1;
  const Endpoint leader_ep{nodes[0], 0};

  // ---- The four flows of paper Figure 3 ----------------------------------
  FlowOptions lat;
  lat.optimization = FlowOptimization::kLatency;
  {
    ShuffleFlowSpec submit;
    submit.name = "mp.submit";
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      submit.sources.Append(ClientEndpoint(nodes, cfg, c));
    }
    submit.targets.Append(leader_ep);
    submit.schema = Command::MakeSchema();
    submit.options = lat;
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(submit)));

    ReplicateFlowSpec propose;
    propose.name = "mp.propose";
    propose.sources.Append(leader_ep);
    for (uint32_t r = 1; r < cfg.num_replicas; ++r) {
      propose.targets.Append(Endpoint{nodes[r], 0});
    }
    propose.schema = Proposal::MakeSchema();
    propose.options = lat;
    propose.options.use_multicast = true;
    // Deep receive pools so every in-flight client request can have an
    // outstanding proposal without stalling the leader.
    propose.options.segments_per_ring = 256;
    DFI_RETURN_IF_ERROR(dfi->InitReplicateFlow(std::move(propose)));

    ShuffleFlowSpec vote;
    vote.name = "mp.vote";
    for (uint32_t r = 1; r < cfg.num_replicas; ++r) {
      vote.sources.Append(Endpoint{nodes[r], 0});
    }
    vote.targets.Append(leader_ep);
    vote.schema = Vote::MakeSchema();
    vote.options = lat;
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(vote)));

    ShuffleFlowSpec reply;
    reply.name = "mp.reply";
    reply.sources.Append(leader_ep);
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      reply.targets.Append(ClientEndpoint(nodes, cfg, c));
    }
    reply.schema = Reply::MakeSchema();
    reply.options = lat;
    // Route replies by the client id carried in the tuple.
    reply.routing = [](TupleView t, uint32_t m) {
      return t.Get<uint16_t>(0) % m;
    };
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(reply)));
  }

  const uint64_t total_requests =
      static_cast<uint64_t>(cfg.num_clients) * cfg.requests_per_client;
  std::atomic<bool> failed{false};
  std::vector<ClientOutcome> outcomes(cfg.num_clients);
  exec::ActorGroup actors;

  // ---- Leader -------------------------------------------------------------
  actors.Spawn(0, "mp.leader", [&] {
    auto submit_tgt = dfi->CreateShuffleTarget("mp.submit", 0);
    auto vote_tgt = dfi->CreateShuffleTarget("mp.vote", 0);
    auto propose_src = dfi->CreateReplicateSource("mp.propose", 0);
    auto reply_src = dfi->CreateShuffleSource("mp.reply", 0);
    if (!submit_tgt.ok() || !vote_tgt.ok() || !propose_src.ok() ||
        !reply_src.ok()) {
      failed.store(true);
      return;
    }
    auto sync_all = [&] {
      SimTime t = (*submit_tgt)->clock().now();
      t = std::max(t, (*vote_tgt)->clock().now());
      t = std::max(t, (*propose_src)->clock().now());
      t = std::max(t, (*reply_src)->clock().now());
      (*submit_tgt)->clock().AdvanceTo(t);
      (*vote_tgt)->clock().AdvanceTo(t);
      (*propose_src)->clock().AdvanceTo(t);
      (*reply_src)->clock().AdvanceTo(t);
      return t;
    };

    KvStore kv;
    struct Pending {
      Command cmd;
      uint32_t votes = 1;  // the leader's own vote
      bool done = false;
    };
    std::unordered_map<uint64_t, Pending> pending;
    TupleDrain<Command> submits(submit_tgt->get());
    TupleDrain<Vote> votes(vote_tgt->get());
    uint64_t next_index = 0;
    uint64_t replied = 0;

    while (replied < total_requests) {
      // Epoch before the poll round: a delivery racing the scan bumps the
      // epoch, so the IdleWait below returns immediately instead of parking.
      const uint64_t epoch = exec::ProgressEpoch();
      bool progressed = false;
      // Merge the two incoming flows in *virtual* arrival order: real
      // delivery order does not track virtual time on an oversubscribed
      // host, and processing a late-virtual submit before an early-virtual
      // vote would drag the leader clock (and thus reply times) forward.
      SimTime submit_arrival = 0, vote_arrival = 0;
      const bool have_submit = submits.PeekArrival(&submit_arrival);
      const bool have_vote = votes.PeekArrival(&vote_arrival);
      const bool take_submit =
          have_submit && (!have_vote || submit_arrival <= vote_arrival);
      Command cmd;
      if (take_submit && submits.Next(&cmd)) {
        // Order the request, append it to the local log and forward it to
        // the followers over the replicate flow.
        sync_all();
        (*submit_tgt)->clock().Advance(cfg.replica_logic_cost_ns +
                                       cfg.log_append_cost_ns);
        const uint64_t index = next_index++;
        pending.emplace(index, Pending{cmd, 1, false});
        Proposal proposal{index, cmd};
        DFI_CHECK_OK((*propose_src)->Push(&proposal));
        progressed = true;
      }
      Vote vote;
      while (votes.Next(&vote)) {
        sync_all();
        (*vote_tgt)->clock().Advance(30);  // tallying one vote is a counter
        auto it = pending.find(vote.log_index);
        if (it != pending.end()) {
          Pending& p = it->second;
          ++p.votes;
          if (!p.done && p.votes >= majority) {
            // Committed: execute on the state machine, answer the client.
            p.done = true;
            (*vote_tgt)->clock().Advance(cfg.kv_op_cost_ns);
            Reply rep{};
            rep.client_id = p.cmd.client_id;
            rep.ok = 1;
            rep.req_id = p.cmd.req_id;
            rep.log_index = vote.log_index;
            if (p.cmd.is_write) {
              Value v;
              std::memcpy(v.data(), p.cmd.value, kValueBytes);
              kv.Put(p.cmd.key, v);
              std::memcpy(rep.value, p.cmd.value, kValueBytes);
            } else {
              Value v;
              kv.Get(p.cmd.key, &v);
              std::memcpy(rep.value, v.data(), kValueBytes);
            }
            sync_all();
            DFI_CHECK_OK((*reply_src)->Push(&rep));
            ++replied;
          }
          if (p.votes == cfg.num_replicas) pending.erase(it);
        }
        progressed = true;
      }
      if (!progressed) exec::IdleWait(epoch);
    }
    DFI_CHECK_OK((*propose_src)->Close());
    DFI_CHECK_OK((*reply_src)->Close());
    votes.DrainToEnd();
    submits.DrainToEnd();
  });

  // ---- Followers ----------------------------------------------------------
  for (uint32_t r = 1; r < cfg.num_replicas; ++r) {
    actors.Spawn(r, "mp.follower." + std::to_string(r), [&, r] {
      auto propose_tgt = dfi->CreateReplicateTarget("mp.propose", r - 1);
      auto vote_src = dfi->CreateShuffleSource("mp.vote", r - 1);
      if (!propose_tgt.ok() || !vote_src.ok()) {
        failed.store(true);
        return;
      }
      std::vector<Command> log;
      TupleView tuple;
      while ((*propose_tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
        Proposal proposal;
        std::memcpy(&proposal, tuple.data(), sizeof(proposal));
        SyncClocks((*propose_tgt)->clock(), (*vote_src)->clock());
        (*propose_tgt)->clock().Advance(cfg.replica_logic_cost_ns +
                                        cfg.log_append_cost_ns);
        (*vote_src)->clock().AdvanceTo((*propose_tgt)->clock().now());
        log.push_back(proposal.cmd);
        Vote vote{proposal.log_index, static_cast<uint16_t>(r),
                  proposal.cmd.client_id, proposal.cmd.req_id};
        DFI_CHECK_OK((*vote_src)->Push(&vote));
      }
      DFI_CHECK_OK((*vote_src)->Close());
    });
  }

  // ---- Clients ------------------------------------------------------------
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    actors.Spawn(cfg.num_replicas + c % cfg.num_client_nodes,
                 "mp.client." + std::to_string(c), [&, c] {
      auto submit_src = dfi->CreateShuffleSource("mp.submit", c);
      auto reply_tgt = dfi->CreateShuffleTarget("mp.reply", c);
      if (!submit_src.ok() || !reply_tgt.ok()) {
        failed.store(true);
        return;
      }
      outcomes[c] = RunLeaderClient(submit_src->get(), reply_tgt->get(), cfg,
                                    c, cfg.client_window);
    });
  }

  actors.Join();
  DFI_RETURN_IF_ERROR(
      dfi->RemoveFlows({"mp.submit", "mp.propose", "mp.vote", "mp.reply"}));
  if (failed.load()) return Status::Internal("multi-paxos worker failed");

  ConsensusResult result;
  LatencyRecorder all;
  SimTime finish = 0;
  for (auto& o : outcomes) {
    result.completed += o.completed;
    all.Merge(o.latencies);
    finish = std::max(finish, o.finish);
  }
  result.throughput_rps =
      static_cast<double>(result.completed) * 1e9 / std::max<SimTime>(finish, 1);
  result.median_latency_ns = all.Median();
  result.p95_latency_ns = all.Quantile(0.95);
  return result;
}

}  // namespace dfi::consensus
