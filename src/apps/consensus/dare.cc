#include <algorithm>
#include <atomic>
#include <thread>

#include "apps/consensus/internal.h"
#include "common/exec/engine.h"
#include "rdma/queue_pair.h"

namespace dfi::consensus {

using internal::ClientEndpoint;
using internal::ClientOutcome;
using internal::RunLeaderClient;
using internal::SyncClocks;

StatusOr<ConsensusResult> RunDare(DfiRuntime* dfi,
                                  const std::vector<std::string>& nodes,
                                  const ConsensusConfig& cfg) {
  if (nodes.size() != cfg.num_replicas + cfg.num_client_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  if (cfg.num_replicas < 3 || cfg.num_replicas % 2 == 0) {
    return Status::InvalidArgument("need an odd number >= 3 of replicas");
  }
  const uint32_t followers = cfg.num_replicas - 1;
  const uint32_t follower_acks_needed = cfg.num_replicas / 2 + 1 - 1;
  const Endpoint leader_ep{nodes[0], 0};

  // Client communication still needs a transport; DARE uses queue pairs
  // directly in the original, we reuse latency-optimized flows (the cost is
  // the same: one small message each way).
  FlowOptions lat;
  lat.optimization = FlowOptimization::kLatency;
  {
    ShuffleFlowSpec submit;
    submit.name = "dare.submit";
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      submit.sources.Append(ClientEndpoint(nodes, cfg, c));
    }
    submit.targets.Append(leader_ep);
    submit.schema = Command::MakeSchema();
    submit.options = lat;
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(submit)));

    ShuffleFlowSpec reply;
    reply.name = "dare.reply";
    reply.sources.Append(leader_ep);
    for (uint32_t c = 0; c < cfg.num_clients; ++c) {
      reply.targets.Append(ClientEndpoint(nodes, cfg, c));
    }
    reply.schema = Reply::MakeSchema();
    reply.options = lat;
    reply.routing = [](TupleView t, uint32_t m) {
      return t.Get<uint16_t>(0) % m;
    };
    DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(reply)));
  }

  // One-sided replication substrate: a log region on every follower,
  // written directly by the leader's RC queue pairs.
  const uint64_t total_requests =
      static_cast<uint64_t>(cfg.num_clients) * cfg.requests_per_client;
  const size_t log_bytes = (total_requests + 16) * sizeof(Command);
  rdma::RdmaEnv& env = dfi->rdma();
  auto leader_node = dfi->fabric().ResolveAddress(nodes[0]);
  DFI_RETURN_IF_ERROR(leader_node.status());
  rdma::RdmaContext* leader_ctx = env.context(*leader_node);
  std::vector<rdma::MemoryRegion*> follower_logs(followers);
  std::vector<rdma::RcQueuePair*> qps(followers);
  for (uint32_t f = 0; f < followers; ++f) {
    auto fnode = dfi->fabric().ResolveAddress(nodes[1 + f]);
    DFI_RETURN_IF_ERROR(fnode.status());
    follower_logs[f] = env.context(*fnode)->AllocateRegion(log_bytes);
    qps[f] = leader_ctx->CreateRcQp(*fnode, leader_ctx->CreateCq());
  }

  std::atomic<bool> failed{false};
  std::vector<ClientOutcome> outcomes(cfg.num_clients);
  exec::ActorGroup actors;

  // ---- Leader: the serializing write protocol -----------------------------
  actors.Spawn(0, "dare.leader", [&] {
    auto submit_tgt = dfi->CreateShuffleTarget("dare.submit", 0);
    auto reply_src = dfi->CreateShuffleSource("dare.reply", 0);
    if (!submit_tgt.ok() || !reply_src.ok()) {
      failed.store(true);
      return;
    }
    KvStore kv;
    uint64_t log_index = 0;
    uint64_t replied = 0;
    TupleView tuple;
    while (replied < total_requests) {
      DFI_CHECK((*submit_tgt)->Consume(&tuple) == ConsumeResult::kOk);
      Command cmd;
      std::memcpy(&cmd, tuple.data(), sizeof(cmd));
      SyncClocks((*submit_tgt)->clock(), (*reply_src)->clock());
      VirtualClock& clock = (*submit_tgt)->clock();
      clock.Advance(cfg.dare_request_overhead_ns);

      Reply rep{};
      rep.client_id = cmd.client_id;
      rep.ok = 1;
      rep.req_id = cmd.req_id;
      if (cmd.is_write) {
        // Writes serialize: append to the leader log, replicate the entry
        // with one-sided writes and wait for a majority before answering —
        // one request at a time (paper: "DARE's write protocol serializes
        // requests"; a mix of reads and writes interrupts the read batches).
        clock.Advance(cfg.dare_write_overhead_ns + cfg.log_append_cost_ns);
        const uint64_t slot = log_index++;
        std::vector<SimTime> acks;
        acks.reserve(followers);
        for (uint32_t f = 0; f < followers; ++f) {
          rdma::WriteDesc desc;
          desc.local = &cmd;
          desc.remote = follower_logs[f]->RefAt(slot * sizeof(Command));
          desc.length = sizeof(Command);
          auto timing = qps[f]->PostWrite(desc, &clock);
          DFI_CHECK(timing.ok()) << timing.status();
          acks.push_back(timing->ack);
        }
        std::sort(acks.begin(), acks.end());
        clock.AdvanceTo(acks[follower_acks_needed - 1]);
        clock.Advance(cfg.kv_op_cost_ns);
        Value v;
        std::memcpy(v.data(), cmd.value, kValueBytes);
        kv.Put(cmd.key, v);
        std::memcpy(rep.value, cmd.value, kValueBytes);
        rep.log_index = slot;
      } else {
        // Reads are served from the leader's state (lease), no replication.
        clock.Advance(cfg.kv_op_cost_ns);
        Value v;
        kv.Get(cmd.key, &v);
        std::memcpy(rep.value, v.data(), kValueBytes);
      }
      SyncClocks((*submit_tgt)->clock(), (*reply_src)->clock());
      DFI_CHECK_OK((*reply_src)->Push(&rep));
      ++replied;
    }
    DFI_CHECK_OK((*reply_src)->Close());
    while ((*submit_tgt)->Consume(&tuple) != ConsumeResult::kFlowEnd) {
    }
  });

  // ---- Clients: strictly sequential (window 1) ----------------------------
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    actors.Spawn(cfg.num_replicas + c % cfg.num_client_nodes,
                 "dare.client." + std::to_string(c), [&, c] {
      auto submit_src = dfi->CreateShuffleSource("dare.submit", c);
      auto reply_tgt = dfi->CreateShuffleTarget("dare.reply", c);
      if (!submit_src.ok() || !reply_tgt.ok()) {
        failed.store(true);
        return;
      }
      outcomes[c] = RunLeaderClient(submit_src->get(), reply_tgt->get(), cfg,
                                    c, /*window=*/1);
    });
  }

  actors.Join();
  DFI_RETURN_IF_ERROR(dfi->RemoveFlows({"dare.submit", "dare.reply"}));
  if (failed.load()) return Status::Internal("dare worker failed");

  ConsensusResult result;
  LatencyRecorder all;
  SimTime finish = 0;
  for (auto& o : outcomes) {
    result.completed += o.completed;
    all.Merge(o.latencies);
    finish = std::max(finish, o.finish);
  }
  result.throughput_rps = static_cast<double>(result.completed) * 1e9 /
                          std::max<SimTime>(finish, 1);
  result.median_latency_ns = all.Median();
  result.p95_latency_ns = all.Quantile(0.95);
  return result;
}

}  // namespace dfi::consensus
