// Multi-Paxos leader failover under a scripted fail-stop crash (robustness
// PR). Term 1 is the Figure-3 flow set led by replica 0; a FaultPlan crash
// fail-stops that leader mid-run. Every survivor observes the failure
// through the PR's machinery — poisoned channels, kPeerFailed fault-plan
// probes, block deadlines — *never* by hanging — and fails over to a
// pre-published term-2 flow set led by replica 1 (the emulation stand-in
// for a pre-negotiated view change; electing a leader is Paxos' own
// business, not the data-flow interface's). Clients resubmit their one
// in-flight request on the term-2 flows; the recovery metric is the
// virtual time from the crash to the first term-2 reply.

#include <atomic>
#include <thread>

#include "apps/consensus/internal.h"
#include "common/exec/engine.h"

namespace dfi::consensus {

using internal::ClientEndpoint;
using internal::MakeCommand;
using internal::SyncClocks;
using internal::TupleDrain;

namespace {

constexpr const char* kFlows[] = {"mpx.t1.submit", "mpx.t1.propose",
                                  "mpx.t1.vote",   "mpx.t1.reply",
                                  "mpx.t2.submit", "mpx.t2.propose",
                                  "mpx.t2.vote",   "mpx.t2.reply"};

/// Per-client chaos outcome.
struct ChaosClientOutcome {
  LatencyRecorder latencies;
  SimTime finish = 0;
  uint64_t completed = 0;
  uint64_t resubmitted = 0;
  /// Virtual arrival of this client's first term-2 reply; -1 if the client
  /// finished entirely in term 1.
  SimTime first_t2_arrival = -1;
  bool failed = false;
};

/// Publishes one term's four flows (Figure 3). `leader` is the term's
/// leader replica; `first_follower` the first replica index acting as a
/// follower (term 2 excludes the crashed replica 0 entirely).
Status InitTermFlows(DfiRuntime* dfi, const std::vector<std::string>& nodes,
                     const ConsensusConfig& cfg, const FlowOptions& lat,
                     const std::string& prefix, uint32_t leader,
                     uint32_t first_follower) {
  const Endpoint leader_ep{nodes[leader], 0};

  ShuffleFlowSpec submit;
  submit.name = prefix + ".submit";
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    submit.sources.Append(ClientEndpoint(nodes, cfg, c));
  }
  submit.targets.Append(leader_ep);
  submit.schema = Command::MakeSchema();
  submit.options = lat;
  DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(submit)));

  ReplicateFlowSpec propose;
  propose.name = prefix + ".propose";
  propose.sources.Append(leader_ep);
  for (uint32_t r = first_follower; r < cfg.num_replicas; ++r) {
    propose.targets.Append(Endpoint{nodes[r], 0});
  }
  propose.schema = Proposal::MakeSchema();
  propose.options = lat;
  propose.options.use_multicast = true;
  propose.options.segments_per_ring = 256;
  DFI_RETURN_IF_ERROR(dfi->InitReplicateFlow(std::move(propose)));

  ShuffleFlowSpec vote;
  vote.name = prefix + ".vote";
  for (uint32_t r = first_follower; r < cfg.num_replicas; ++r) {
    vote.sources.Append(Endpoint{nodes[r], 0});
  }
  vote.targets.Append(leader_ep);
  vote.schema = Vote::MakeSchema();
  vote.options = lat;
  DFI_RETURN_IF_ERROR(dfi->InitShuffleFlow(std::move(vote)));

  ShuffleFlowSpec reply;
  reply.name = prefix + ".reply";
  reply.sources.Append(leader_ep);
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    reply.targets.Append(ClientEndpoint(nodes, cfg, c));
  }
  reply.schema = Reply::MakeSchema();
  reply.options = lat;
  reply.routing = [](TupleView t, uint32_t m) {
    return t.Get<uint16_t>(0) % m;
  };
  return dfi->InitShuffleFlow(std::move(reply));
}

/// The generic leader loop shared by both terms: merge submits and votes in
/// virtual-arrival order, order+propose each command, reply on majority.
/// Returns false if the term ended by failure (term 1: the scripted crash —
/// detected when the leader's own virtual clock passes `crash_at`, or any
/// flow operation failing; term 2 must stay clean).
bool RunLeaderTerm(ShuffleTarget* submit_tgt, ShuffleTarget* vote_tgt,
                   ReplicateSource* propose_src, ShuffleSource* reply_src,
                   const ConsensusConfig& cfg, uint32_t majority,
                   uint32_t voters, SimTime crash_at, KvStore* kv) {
  auto sync_all = [&] {
    SimTime t = submit_tgt->clock().now();
    t = std::max(t, vote_tgt->clock().now());
    t = std::max(t, propose_src->clock().now());
    t = std::max(t, reply_src->clock().now());
    submit_tgt->clock().AdvanceTo(t);
    vote_tgt->clock().AdvanceTo(t);
    propose_src->clock().AdvanceTo(t);
    reply_src->clock().AdvanceTo(t);
    return t;
  };

  struct Pending {
    Command cmd;
    uint32_t votes = 1;  // the leader's own vote
    bool done = false;
  };
  std::unordered_map<uint64_t, Pending> pending;
  TupleDrain<Command> submits(submit_tgt);
  TupleDrain<Vote> votes(vote_tgt);
  uint64_t next_index = 0;
  uint64_t replied = 0;

  for (;;) {
    if (crash_at > 0 && sync_all() >= crash_at) return false;  // fail-stop
    if (submits.errored() || votes.errored()) return false;
    const uint64_t epoch = exec::ProgressEpoch();
    bool progressed = false;
    SimTime submit_arrival = 0, vote_arrival = 0;
    const bool have_submit = submits.PeekArrival(&submit_arrival);
    const bool have_vote = votes.PeekArrival(&vote_arrival);
    const bool take_submit =
        have_submit && (!have_vote || submit_arrival <= vote_arrival);
    Command cmd;
    if (take_submit && submits.Next(&cmd)) {
      sync_all();
      submit_tgt->clock().Advance(cfg.replica_logic_cost_ns +
                                  cfg.log_append_cost_ns);
      const uint64_t index = next_index++;
      pending.emplace(index, Pending{cmd, 1, false});
      Proposal proposal{index, cmd};
      if (!propose_src->Push(&proposal).ok()) return false;
      progressed = true;
    }
    Vote vote;
    while (votes.Next(&vote)) {
      sync_all();
      vote_tgt->clock().Advance(30);
      auto it = pending.find(vote.log_index);
      if (it != pending.end()) {
        Pending& p = it->second;
        ++p.votes;
        if (!p.done && p.votes >= majority) {
          p.done = true;
          vote_tgt->clock().Advance(cfg.kv_op_cost_ns);
          Reply rep{};
          rep.client_id = p.cmd.client_id;
          rep.ok = 1;
          rep.req_id = p.cmd.req_id;
          rep.log_index = vote.log_index;
          if (p.cmd.is_write) {
            Value v;
            std::memcpy(v.data(), p.cmd.value, kValueBytes);
            kv->Put(p.cmd.key, v);
            std::memcpy(rep.value, p.cmd.value, kValueBytes);
          } else {
            Value v;
            kv->Get(p.cmd.key, &v);
            std::memcpy(rep.value, v.data(), kValueBytes);
          }
          sync_all();
          if (!reply_src->Push(&rep).ok()) return false;
          ++replied;
        }
        if (p.votes == voters + 1) pending.erase(it);
      }
      progressed = true;
    }
    if (!progressed) {
      // The term is over once every client closed its submit source and
      // every ordered command was committed and answered. (Term 1 under a
      // crash never gets here — the fail-stop above fires first.)
      if (submits.ended() && replied == next_index) break;
      exec::IdleWait(epoch);
    }
  }
  if (!propose_src->Close().ok()) return false;
  if (!reply_src->Close().ok()) return false;
  votes.DrainToEnd();
  return !votes.errored();
}

}  // namespace

StatusOr<ChaosResult> RunMultiPaxosChaos(DfiRuntime* dfi,
                                         const std::vector<std::string>& nodes,
                                         const ChaosConfig& chaos) {
  const ConsensusConfig& cfg = chaos.base;
  if (nodes.size() != cfg.num_replicas + cfg.num_client_nodes) {
    return Status::InvalidArgument("node list does not match config");
  }
  if (cfg.num_replicas < 3 || cfg.num_replicas % 2 == 0) {
    return Status::InvalidArgument("need an odd number >= 3 of replicas");
  }
  if (chaos.crash_at_ns < 0) {
    return Status::InvalidArgument("crash_at_ns must be >= 0 (0 = no crash)");
  }

  // Script the fail-stop of the term-1 leader's node. Every layer consults
  // the plan at virtual operation times, so survivors can detect the death
  // even if the crashing leader's poison writes were lost.
  if (chaos.crash_at_ns > 0) {
    DFI_ASSIGN_OR_RETURN(const net::NodeId crashed,
                         dfi->fabric().ResolveAddress(nodes[0]));
    dfi->fabric().fault_plan().CrashNode(crashed, chaos.crash_at_ns);
  }

  FlowOptions lat;
  lat.optimization = FlowOptimization::kLatency;
  lat.block_deadline_ns = chaos.block_deadline_ns;
  DFI_RETURN_IF_ERROR(InitTermFlows(dfi, nodes, cfg, lat, "mpx.t1",
                                    /*leader=*/0, /*first_follower=*/1));
  DFI_RETURN_IF_ERROR(InitTermFlows(dfi, nodes, cfg, lat, "mpx.t2",
                                    /*leader=*/1, /*first_follower=*/2));

  const uint32_t majority1 = cfg.num_replicas / 2 + 1;
  // Term 2 runs among the survivors only: replica 1 leads, replicas
  // 2..n-1 vote, so a majority of the surviving n-1 replicas commits.
  const uint32_t majority2 = (cfg.num_replicas - 1) / 2 + 1;
  std::atomic<bool> failed{false};
  std::vector<ChaosClientOutcome> outcomes(cfg.num_clients);
  exec::ActorGroup actors;

  // ---- Term-1 leader (replica 0, the crash victim) ------------------------
  actors.Spawn(0, "mpx.t1.leader", [&] {
    auto submit_tgt = dfi->CreateShuffleTarget("mpx.t1.submit", 0);
    auto vote_tgt = dfi->CreateShuffleTarget("mpx.t1.vote", 0);
    auto propose_src = dfi->CreateReplicateSource("mpx.t1.propose", 0);
    auto reply_src = dfi->CreateShuffleSource("mpx.t1.reply", 0);
    if (!submit_tgt.ok() || !vote_tgt.ok() || !propose_src.ok() ||
        !reply_src.ok()) {
      failed.store(true);
      return;
    }
    KvStore kv;
    if (!RunLeaderTerm(submit_tgt->get(), vote_tgt->get(), propose_src->get(),
                       reply_src->get(), cfg, majority1,
                       /*voters=*/cfg.num_replicas - 1, chaos.crash_at_ns,
                       &kv)) {
      // Fail-stop: tear down every endpoint so no survivor blocks forever
      // on this replica, then vanish. No clean Close — a crash does not say
      // goodbye; the poisoned-footer flag and the fault plan carry the news.
      const Status cause = Status::PeerFailed("term-1 leader fail-stopped");
      (*submit_tgt)->Abort(cause);
      (*vote_tgt)->Abort(cause);
      (*propose_src)->Abort(cause);
      (*reply_src)->Abort(cause);
    }
  });

  // ---- Followers (replicas 1..n-1): term 1, then their term-2 role --------
  for (uint32_t r = 1; r < cfg.num_replicas; ++r) {
    actors.Spawn(r, "mpx.follower." + std::to_string(r), [&, r] {
      auto propose_tgt = dfi->CreateReplicateTarget("mpx.t1.propose", r - 1);
      auto vote_src = dfi->CreateShuffleSource("mpx.t1.vote", r - 1);
      if (!propose_tgt.ok() || !vote_src.ok()) {
        failed.store(true);
        return;
      }
      std::vector<Command> log;
      bool t1_down = false;
      TupleView tuple;
      for (;;) {
        const ConsumeResult res = (*propose_tgt)->Consume(&tuple);
        if (res == ConsumeResult::kFlowEnd) break;
        if (res != ConsumeResult::kOk) {
          t1_down = true;  // leader died: kError from poison/fault plan
          break;
        }
        Proposal proposal;
        std::memcpy(&proposal, tuple.data(), sizeof(proposal));
        SyncClocks((*propose_tgt)->clock(), (*vote_src)->clock());
        (*propose_tgt)->clock().Advance(cfg.replica_logic_cost_ns +
                                        cfg.log_append_cost_ns);
        (*vote_src)->clock().AdvanceTo((*propose_tgt)->clock().now());
        log.push_back(proposal.cmd);
        Vote vote{proposal.log_index, static_cast<uint16_t>(r),
                  proposal.cmd.client_id, proposal.cmd.req_id};
        if (!(*vote_src)->Push(&vote).ok()) {
          t1_down = true;  // vote ring at the dead leader
          break;
        }
      }
      if (t1_down) {
        (*vote_src)->Abort(Status::Aborted("follower left term 1"));
      } else if (!(*vote_src)->Close().ok()) {
        t1_down = true;
      }
      // A crash can only be *observed* after it happened: term 2 starts at
      // the later of this replica's local time and the crash time.
      SimTime t2_start =
          std::max((*propose_tgt)->clock().now(), (*vote_src)->clock().now());
      if (t1_down) t2_start = std::max(t2_start, chaos.crash_at_ns);

      if (r == 1) {
        // ---- Term-2 leader ------------------------------------------------
        auto submit2 = dfi->CreateShuffleTarget("mpx.t2.submit", 0);
        auto vote2 = dfi->CreateShuffleTarget("mpx.t2.vote", 0);
        auto propose2 = dfi->CreateReplicateSource("mpx.t2.propose", 0);
        auto reply2 = dfi->CreateShuffleSource("mpx.t2.reply", 0);
        if (!submit2.ok() || !vote2.ok() || !propose2.ok() || !reply2.ok()) {
          failed.store(true);
          return;
        }
        // Recovery work: replay the replicated log into the new leader's
        // state machine before serving — part of the measured recovery time.
        KvStore kv;
        for (const Command& cmd : log) {
          if (!cmd.is_write) continue;
          Value v;
          std::memcpy(v.data(), cmd.value, kValueBytes);
          kv.Put(cmd.key, v);
        }
        t2_start += static_cast<SimTime>(log.size()) * cfg.kv_op_cost_ns;
        (*submit2)->clock().AdvanceTo(t2_start);
        (*vote2)->clock().AdvanceTo(t2_start);
        (*propose2)->clock().AdvanceTo(t2_start);
        (*reply2)->clock().AdvanceTo(t2_start);
        if (!RunLeaderTerm(submit2->get(), vote2->get(), propose2->get(),
                           reply2->get(), cfg, majority2,
                           /*voters=*/cfg.num_replicas - 2,
                           /*crash_at=*/0, &kv)) {
          failed.store(true);  // term 2 must stay clean
        }
      } else {
        // ---- Term-2 follower ----------------------------------------------
        auto propose2 = dfi->CreateReplicateTarget("mpx.t2.propose", r - 2);
        auto vote2 = dfi->CreateShuffleSource("mpx.t2.vote", r - 2);
        if (!propose2.ok() || !vote2.ok()) {
          failed.store(true);
          return;
        }
        (*propose2)->clock().AdvanceTo(t2_start);
        (*vote2)->clock().AdvanceTo(t2_start);
        for (;;) {
          const ConsumeResult res = (*propose2)->Consume(&tuple);
          if (res == ConsumeResult::kFlowEnd) break;
          if (res != ConsumeResult::kOk) {
            failed.store(true);
            (*vote2)->Abort(Status::Aborted("term-2 follower failed"));
            return;
          }
          Proposal proposal;
          std::memcpy(&proposal, tuple.data(), sizeof(proposal));
          SyncClocks((*propose2)->clock(), (*vote2)->clock());
          (*propose2)->clock().Advance(cfg.replica_logic_cost_ns +
                                       cfg.log_append_cost_ns);
          (*vote2)->clock().AdvanceTo((*propose2)->clock().now());
          Vote vote{proposal.log_index, static_cast<uint16_t>(r),
                    proposal.cmd.client_id, proposal.cmd.req_id};
          if (!(*vote2)->Push(&vote).ok()) {
            failed.store(true);
            return;
          }
        }
        if (!(*vote2)->Close().ok()) failed.store(true);
      }
    });
  }

  // ---- Clients: window 1, resubmit the in-flight request on failover ------
  for (uint32_t c = 0; c < cfg.num_clients; ++c) {
    actors.Spawn(cfg.num_replicas + c % cfg.num_client_nodes,
                 "mpx.client." + std::to_string(c), [&, c] {
      auto submit1 = dfi->CreateShuffleSource("mpx.t1.submit", c);
      auto reply1 = dfi->CreateShuffleTarget("mpx.t1.reply", c);
      auto submit2 = dfi->CreateShuffleSource("mpx.t2.submit", c);
      auto reply2 = dfi->CreateShuffleTarget("mpx.t2.reply", c);
      if (!submit1.ok() || !reply1.ok() || !submit2.ok() || !reply2.ok()) {
        failed.store(true);
        return;
      }
      ChaosClientOutcome& out = outcomes[c];
      const auto requests = bench::GenerateYcsbRequests(
          cfg.requests_per_client, cfg.key_space, cfg.write_fraction,
          /*zipf_theta=*/0.0, cfg.seed + c);
      out.latencies.Reserve(cfg.requests_per_client);

      int term = 1;
      ShuffleSource* src = submit1->get();
      ShuffleTarget* tgt = reply1->get();
      auto fail_over = [&] {
        const Status cause = Status::Aborted("client failed over to term 2");
        (*submit1)->Abort(cause);
        (*reply1)->Abort(cause);
        const SimTime t = std::max(
            {src->clock().now(), tgt->clock().now(), chaos.crash_at_ns});
        term = 2;
        src = submit2->get();
        tgt = reply2->get();
        src->clock().AdvanceTo(t);
        tgt->clock().AdvanceTo(t);
      };

      uint32_t i = 0;
      bool resend = false;
      while (i < cfg.requests_per_client && !out.failed) {
        const bool is_resend = resend;
        resend = false;
        SyncClocks(src->clock(), tgt->clock());
        if (i > 0 && !is_resend) src->clock().Advance(cfg.think_time_ns);
        tgt->clock().AdvanceTo(src->clock().now());
        const Command cmd =
            MakeCommand(static_cast<uint16_t>(c), i, requests[i]);
        const SimTime send = src->clock().now();
        if (is_resend) ++out.resubmitted;
        if (!src->Push(&cmd).ok()) {
          if (term == 1) {
            fail_over();
            resend = true;
            continue;
          }
          out.failed = true;
          break;
        }
        // Window 1: wait for the reply to request i on the current term.
        for (;;) {
          SegmentView seg;
          const ConsumeResult r = tgt->ConsumeSegment(&seg);
          if (r == ConsumeResult::kOk) {
            Reply rep;
            std::memcpy(&rep, seg.payload, sizeof(rep));
            if (rep.req_id != i) continue;  // stale duplicate
            SyncClocks(src->clock(), tgt->clock());
            out.latencies.Record(std::max<SimTime>(seg.arrival - send, 0));
            if (term == 2 && out.first_t2_arrival < 0) {
              out.first_t2_arrival = seg.arrival;
            }
            ++out.completed;
            ++i;
            break;
          }
          if (r == ConsumeResult::kError && term == 1) {
            // The leader died with our request in flight: fail over and
            // resubmit it on the term-2 flows.
            fail_over();
            resend = true;
            break;
          }
          out.failed = true;  // term-2 error or premature flow end
          break;
        }
      }
      out.finish = tgt->clock().now();
      if (out.failed) return;

      if (term == 1) {
        // Never saw the crash (it happened after our last reply, if at
        // all). The term-1 teardown may still fail mid-drain — fine.
        (void)src->Close();
        SegmentView seg;
        for (;;) {
          const ConsumeResult r = (*reply1)->ConsumeSegment(&seg);
          if (r == ConsumeResult::kFlowEnd || r == ConsumeResult::kError) {
            break;
          }
        }
        const SimTime t = std::max(src->clock().now(), tgt->clock().now());
        (*submit2)->clock().AdvanceTo(t);
        (*reply2)->clock().AdvanceTo(t);
      }
      // Every client closes its term-2 submit — the term-2 leader ends its
      // term on that — and drains term-2 replies so its Close never blocks.
      if (!(*submit2)->Close().ok()) {
        failed.store(true);
        return;
      }
      SegmentView seg;
      for (;;) {
        const ConsumeResult r = (*reply2)->ConsumeSegment(&seg);
        if (r == ConsumeResult::kFlowEnd) break;
        if (r == ConsumeResult::kError) {
          failed.store(true);
          return;
        }
      }
    });
  }

  actors.Join();
  DFI_RETURN_IF_ERROR(
      dfi->RemoveFlows({std::begin(kFlows), std::end(kFlows)}));
  for (const auto& o : outcomes) {
    if (o.failed) failed.store(true);
  }
  if (failed.load()) return Status::Internal("chaos multi-paxos worker failed");

  ChaosResult result;
  result.crash_at_ns = chaos.crash_at_ns;
  result.fault_trace = dfi->fabric().fault_plan().TraceString();
  SimTime finish = 0;
  SimTime first_recovery = -1, last_recovery = -1;
  for (auto& o : outcomes) {
    result.completed += o.completed;
    result.resubmitted += o.resubmitted;
    finish = std::max(finish, o.finish);
    if (o.first_t2_arrival >= 0) {
      const SimTime rec =
          std::max<SimTime>(o.first_t2_arrival - chaos.crash_at_ns, 0);
      first_recovery =
          first_recovery < 0 ? rec : std::min(first_recovery, rec);
      last_recovery = std::max(last_recovery, rec);
    }
  }
  result.recovery_first_reply_ns = std::max<SimTime>(first_recovery, 0);
  result.recovery_all_clients_ns = std::max<SimTime>(last_recovery, 0);
  result.throughput_rps = static_cast<double>(result.completed) * 1e9 /
                          std::max<SimTime>(finish, 1);
  return result;
}

}  // namespace dfi::consensus
