#include "bench_util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dfi::bench {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      out += rows_[r][c];
      if (c + 1 < rows_[r].size()) {
        out.append(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintSection(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace dfi::bench
