#include "bench_util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dfi::bench {
namespace {

/// Process-wide collector behind the `--json` bench flag. Benches are
/// single-threaded reporters (tables are printed from main), so no locking.
struct JsonTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};
struct JsonMetric {
  std::string name;
  double value = 0;
  std::string unit;
};
struct JsonSection {
  std::string title;
  std::vector<JsonTable> tables;
  std::vector<JsonMetric> metrics;
};
struct Collector {
  bool enabled = false;
  std::vector<JsonSection> sections;
};

Collector& collector() {
  static Collector c;
  return c;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonStringArray(std::string* out,
                           const std::vector<std::string>& items) {
  out->push_back('[');
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonString(out, items[i]);
  }
  out->push_back(']');
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      out += rows_[r][c];
      if (c + 1 < rows_[r].size()) {
        out.append(widths[c] - rows_[r][c].size() + 2, ' ');
      }
    }
    out += '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  Collector& c = collector();
  if (!c.enabled) return;
  // Tables printed before any PrintSection land in an untitled section.
  if (c.sections.empty()) c.sections.emplace_back();
  JsonTable table;
  table.header = rows_.front();
  table.rows.assign(rows_.begin() + 1, rows_.end());
  c.sections.back().tables.push_back(std::move(table));
}

void PrintSection(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  Collector& c = collector();
  if (c.enabled) c.sections.push_back(JsonSection{title, {}, {}});
}

void RecordMetric(const std::string& name, double value,
                  const std::string& unit) {
  Collector& c = collector();
  if (!c.enabled) return;
  if (c.sections.empty()) c.sections.emplace_back();
  c.sections.back().metrics.push_back(JsonMetric{name, value, unit});
}

void EnableResultCapture() { collector().enabled = true; }

bool ResultCaptureEnabled() { return collector().enabled; }

bool WriteJsonResults(const std::string& path) {
  std::string out = "{\"sections\":[";
  const Collector& c = collector();
  for (size_t s = 0; s < c.sections.size(); ++s) {
    if (s > 0) out.push_back(',');
    out += "{\"title\":";
    AppendJsonString(&out, c.sections[s].title);
    out += ",\"tables\":[";
    const auto& tables = c.sections[s].tables;
    for (size_t t = 0; t < tables.size(); ++t) {
      if (t > 0) out.push_back(',');
      out += "{\"header\":";
      AppendJsonStringArray(&out, tables[t].header);
      out += ",\"rows\":[";
      for (size_t r = 0; r < tables[t].rows.size(); ++r) {
        if (r > 0) out.push_back(',');
        AppendJsonStringArray(&out, tables[t].rows[r]);
      }
      out += "]}";
    }
    out += "],\"metrics\":[";
    const auto& metrics = c.sections[s].metrics;
    for (size_t m = 0; m < metrics.size(); ++m) {
      if (m > 0) out.push_back(',');
      out += "{\"name\":";
      AppendJsonString(&out, metrics[m].name);
      char value[64];
      std::snprintf(value, sizeof(value), "%.10g", metrics[m].value);
      out += ",\"value\":";
      out += value;
      out += ",\"unit\":";
      AppendJsonString(&out, metrics[m].unit);
      out += "}";
    }
    out += "]}";
  }
  out += "]}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dfi::bench
