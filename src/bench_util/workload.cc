#include "bench_util/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi::bench {

std::vector<JoinTuple> GenerateUniformRelation(uint64_t count,
                                               uint64_t key_domain,
                                               uint64_t seed) {
  DFI_CHECK_GT(key_domain, 0u);
  Xorshift128Plus rng(seed);
  std::vector<JoinTuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(JoinTuple{rng.NextBelow(key_domain), i});
  }
  return out;
}

std::vector<JoinTuple> GenerateForeignKeyRelation(uint64_t outer_count,
                                                  uint64_t inner_count,
                                                  uint64_t seed) {
  return GenerateUniformRelation(outer_count, inner_count, seed);
}

std::vector<JoinTuple> GeneratePrimaryKeyRelation(uint64_t count,
                                                  uint64_t seed) {
  std::vector<JoinTuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(JoinTuple{i, i});
  }
  Xorshift128Plus rng(seed);
  for (uint64_t i = count; i > 1; --i) {
    std::swap(out[i - 1], out[rng.NextBelow(i)]);
  }
  return out;
}

std::vector<KvRequest> GenerateYcsbRequests(uint64_t count,
                                            uint64_t key_space,
                                            double write_fraction,
                                            double zipf_theta, uint64_t seed) {
  Xorshift128Plus rng(seed);
  ZipfGenerator zipf(key_space, zipf_theta, seed ^ 0xabcdef);
  std::vector<KvRequest> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(KvRequest{rng.NextBool(write_fraction), zipf.Next()});
  }
  return out;
}

}  // namespace dfi::bench
