#include "bench_util/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace dfi::bench {

std::vector<JoinTuple> GenerateUniformRelation(uint64_t count,
                                               uint64_t key_domain,
                                               uint64_t seed) {
  DFI_CHECK_GT(key_domain, 0u);
  Xorshift128Plus rng(seed);
  std::vector<JoinTuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(JoinTuple{rng.NextBelow(key_domain), i});
  }
  return out;
}

std::vector<JoinTuple> GenerateForeignKeyRelation(uint64_t outer_count,
                                                  uint64_t inner_count,
                                                  uint64_t seed) {
  return GenerateUniformRelation(outer_count, inner_count, seed);
}

std::vector<JoinTuple> GeneratePrimaryKeyRelation(uint64_t count,
                                                  uint64_t seed) {
  std::vector<JoinTuple> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(JoinTuple{i, i});
  }
  Xorshift128Plus rng(seed);
  for (uint64_t i = count; i > 1; --i) {
    std::swap(out[i - 1], out[rng.NextBelow(i)]);
  }
  return out;
}

std::vector<JoinTuple> GenerateZipfianRelation(uint64_t count,
                                               uint64_t key_domain,
                                               double theta, uint64_t seed) {
  DFI_CHECK_GT(key_domain, 0u);
  std::vector<JoinTuple> out;
  out.reserve(count);
  if (theta == 0.0) {
    // Exactly the uniform generator: theta=0 must be digit-identical to the
    // static baselines that use GenerateUniformRelation.
    return GenerateUniformRelation(count, key_domain, seed);
  }
  ZipfGenerator zipf(key_domain, theta, seed);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(JoinTuple{zipf.Next(), i});
  }
  return out;
}

std::vector<JoinTuple> GenerateHotKeyRelation(uint64_t count,
                                              uint64_t key_domain,
                                              uint64_t hot_keys,
                                              double hot_fraction,
                                              uint64_t seed) {
  DFI_CHECK_GT(key_domain, 0u);
  DFI_CHECK_LE(hot_keys, key_domain);
  Xorshift128Plus rng(seed);
  std::vector<JoinTuple> out;
  out.reserve(count);
  const uint64_t cold_domain = key_domain - hot_keys;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key;
    if (hot_keys > 0 && rng.NextBool(hot_fraction)) {
      // Hot keys occupy the front of the domain so tests can identify them.
      key = rng.NextBelow(hot_keys);
    } else if (cold_domain > 0) {
      key = hot_keys + rng.NextBelow(cold_domain);
    } else {
      key = rng.NextBelow(key_domain);
    }
    out.push_back(JoinTuple{key, i});
  }
  return out;
}

std::vector<KvRequest> GenerateYcsbRequests(uint64_t count,
                                            uint64_t key_space,
                                            double write_fraction,
                                            double zipf_theta, uint64_t seed) {
  Xorshift128Plus rng(seed);
  ZipfGenerator zipf(key_space, zipf_theta, seed ^ 0xabcdef);
  std::vector<KvRequest> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(KvRequest{rng.NextBool(write_fraction), zipf.Next()});
  }
  return out;
}

}  // namespace dfi::bench
