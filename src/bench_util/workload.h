#ifndef DFI_BENCH_UTIL_WORKLOAD_H_
#define DFI_BENCH_UTIL_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace dfi::bench {

/// A key/payload tuple of the join workloads (paper section 6.3.1; the
/// evaluation uses 8 B compressed tuples, we use 16 B uncompressed).
struct JoinTuple {
  uint64_t key;
  uint64_t payload;
};

/// Generates `count` tuples whose keys are a random permutation-free uniform
/// draw from [0, key_domain). Deterministic for a seed.
std::vector<JoinTuple> GenerateUniformRelation(uint64_t count,
                                               uint64_t key_domain,
                                               uint64_t seed);

/// Generates a foreign-key relation: every key in [0, inner_count) appears
/// outer_count/inner_count times on average (uniform), so the join result
/// size is predictable (= outer_count when each outer key exists in inner).
std::vector<JoinTuple> GenerateForeignKeyRelation(uint64_t outer_count,
                                                  uint64_t inner_count,
                                                  uint64_t seed);

/// A dense primary-key relation: keys 0..count-1 shuffled.
std::vector<JoinTuple> GeneratePrimaryKeyRelation(uint64_t count,
                                                  uint64_t seed);

/// Generates `count` tuples whose keys follow a zipfian distribution over
/// [0, key_domain) with skew parameter `theta` (theta = 0 -> uniform; the
/// YCSB convention: higher theta = more skew, ~0.99 is the YCSB default).
/// Deterministic for a seed; payloads are the tuple index so duplicates
/// stay distinguishable in multiset checks.
std::vector<JoinTuple> GenerateZipfianRelation(uint64_t count,
                                               uint64_t key_domain,
                                               double theta, uint64_t seed);

/// Generates `count` tuples where a `hot_fraction` share of tuples hit one
/// of `hot_keys` designated hot keys (spread uniformly among them) and the
/// rest draw uniformly from the cold remainder of [0, key_domain). Models
/// the adversarial "one key owns the flow" case more sharply than zipf.
std::vector<JoinTuple> GenerateHotKeyRelation(uint64_t count,
                                              uint64_t key_domain,
                                              uint64_t hot_keys,
                                              double hot_fraction,
                                              uint64_t seed);

/// One YCSB-style KV request (paper section 6.3.2: 64-byte requests, 95%
/// reads / 5% writes, read-dominated workload B).
struct KvRequest {
  bool is_write;
  uint64_t key;
};

/// Generates `count` requests over `key_space` keys with the given write
/// fraction and Zipf skew (theta = 0 -> uniform).
std::vector<KvRequest> GenerateYcsbRequests(uint64_t count,
                                            uint64_t key_space,
                                            double write_fraction,
                                            double zipf_theta, uint64_t seed);

}  // namespace dfi::bench

#endif  // DFI_BENCH_UTIL_WORKLOAD_H_
