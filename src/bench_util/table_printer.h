#ifndef DFI_BENCH_UTIL_TABLE_PRINTER_H_
#define DFI_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dfi::bench {

/// Prints paper-style result tables with aligned columns:
///
///   TablePrinter t({"tuple size", "1 thread", "2 threads", "4 threads"});
///   t.AddRow({"64 B", "3.71 GiB/s", "7.41 GiB/s", "11.64 GiB/s"});
///   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Writes the table to stdout.
  void Print() const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a benchmark section header ("=== Figure 7a: ... ===").
void PrintSection(const std::string& title);

/// Machine-readable result capture (the `--json` bench flag). When enabled,
/// PrintSection and TablePrinter::Print additionally record their
/// sections/tables into a process-wide collector; WriteJsonResults
/// serializes everything captured so far as
/// `{"sections": [{"title", "tables": [{"header", "rows"}],
///                 "metrics": [{"name", "value", "unit"}]}]}`.
void EnableResultCapture();
bool ResultCaptureEnabled();

/// Records one headline scalar of the current section — the numbers the
/// bench epilogues state in prose (peak bandwidth, speedup, match count) —
/// so CI reads them from the JSON without parsing formatted table cells.
/// No-op unless capture is enabled.
void RecordMetric(const std::string& name, double value,
                  const std::string& unit);

/// Writes the captured results as JSON to `path`. Returns false on I/O
/// failure.
bool WriteJsonResults(const std::string& path);

}  // namespace dfi::bench

#endif  // DFI_BENCH_UTIL_TABLE_PRINTER_H_
