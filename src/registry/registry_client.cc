#include "registry/registry_client.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace dfi::reg {

namespace {
SimTime NsFromMs(std::chrono::milliseconds ms) {
  return static_cast<SimTime>(ms.count()) * 1'000'000;
}
}  // namespace

RegistryClient::RegistryClient(RegistryService* service,
                               RegistryClientOptions options,
                               VirtualClock* clock)
    : service_(service), options_(options), clock_(clock) {
  DFI_CHECK(service_ != nullptr);
  const uint32_t shards = service_->options().num_shards;
  conns_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    conns_.push_back(std::make_unique<ShardConn>());
  }
  shard_epochs_.assign(shards, 1);
}

void RegistryClient::SleepUntilVt(SimTime from, SimTime until) {
  if (until > from && exec::Engine::InTask()) {
    // Nobody ever wakes backoff_wp_, so this is a pure virtual-time sleep:
    // the park returns exactly when the engine floor reaches `until`,
    // independent of worker-pool size.
    exec::Engine::Park(&backoff_wp_, [] { return false; }, from, until);
  }
  if (clock_) clock_->AdvanceTo(until);
}

void RegistryClient::ObserveEpoch(ShardId shard, Epoch epoch) {
  if (!options_.enable_cache) return;  // epochs only fence the cache
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= shard_epochs_[shard]) return;
  shard_epochs_[shard] = epoch;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.shard == shard && it->second.epoch < epoch) {
      it = cache_.erase(it);
      ++stats_.cache_invalidations;
    } else {
      ++it;
    }
  }
}

Status RegistryClient::CacheLookup(const std::string& name,
                                   std::shared_ptr<FlowStateBase>* state) {
  if (!options_.enable_cache) return Status::NotFound("cache disabled");
  const SimTime now = NowVt();
  const ShardId shard = service_->ShardOf(name);
  const ShardView view = service_->ViewAt(shard, now);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(name);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return Status::NotFound("not cached");
  }
  const CacheEntry& e = it->second;
  if (e.epoch != view.epoch ||
      (e.lease_expiry != 0 && now >= e.lease_expiry)) {
    cache_.erase(it);
    ++stats_.cache_invalidations;
    ++stats_.cache_misses;
    return Status::NotFound("cache entry fenced");
  }
  ++stats_.cache_hits;
  *state = e.state;
  return Status::OK();
}

void RegistryClient::CacheInsert(const std::string& name, ShardId shard,
                                 const OpResult& r) {
  if (!options_.enable_cache || !r.status.ok() || r.state == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  CacheEntry e;
  e.state = r.state;
  e.shard = shard;
  e.epoch = shard_epochs_[shard];
  e.lease_expiry = r.lease_expiry;
  cache_[name] = std::move(e);
}

void RegistryClient::CacheErase(const std::string& name) {
  if (!options_.enable_cache) return;
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(name);
}

void RegistryClient::InvalidateCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

RegistryClientStats RegistryClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status RegistryClient::ExecuteShardBatch(ShardId shard, std::vector<Op> ops,
                                         std::vector<OpResult>* results) {
  results->clear();
  if (ops.empty()) return Status::OK();
  ShardConn& conn = *conns_[shard];
  std::lock_guard<std::mutex> conn_lock(conn.mu);

  BatchRequest req;
  req.client_id = options_.client_id;
  req.client_node = options_.node;
  req.shard = shard;
  req.base_seq = conn.next_seq;
  req.ops = std::move(ops);
  // Sequence numbers are consumed whether or not the batch lands: a later
  // batch after a give-up jumps the dedup window forward (the shards accept
  // forward jumps, they only reject re-use).
  conn.next_seq = req.base_seq + req.ops.size();

  SimTime now = NowVt();
  const SimTime deadline = now + options_.retry_deadline_ns;
  SimTime backoff = options_.backoff_initial_ns;
  ShardView view = service_->ViewAt(shard, now);
  req.target_replica = view.primary;

  while (true) {
    if (!view.available) {
      if (clock_) clock_->AdvanceTo(now);
      return Status::PeerFailed("registry shard " + std::to_string(shard) +
                                ": every replica has crashed");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rpcs;
    }
    BatchResult res = service_->Execute(req, now);
    if (res.transport.ok() && !res.wrong_primary) {
      ObserveEpoch(shard, res.epoch);
      if (clock_) clock_->AdvanceTo(res.complete_at);
      *results = std::move(res.results);
      return Status::OK();
    }
    if (res.wrong_primary) {
      // A live non-primary answered with a redirect: refresh the view and
      // retry at the primary immediately (the redirect already cost a
      // round trip; no backoff).
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failovers;
      }
      ObserveEpoch(shard, res.epoch);
      now = std::max(now, res.complete_at);
      view = service_->ViewAt(shard, now);
      req.target_replica = view.primary;
      continue;
    }
    if (res.transport.code() != StatusCode::kUnavailable) {
      // Rejected before execution (invalid batch, whole shard gone):
      // terminal, retrying cannot help.
      if (clock_) clock_->AdvanceTo(std::max(now, res.complete_at));
      return res.transport;
    }
    // Silence: the target was dead, unreachable, or died mid-batch. Back
    // off (capped exponential) and retry at whoever is primary by then —
    // the dedup windows make the retry exactly-once.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    const SimTime observed = std::max(now, res.complete_at);
    const SimTime wake = observed + backoff;
    backoff = std::min(backoff * 2, options_.backoff_cap_ns);
    if (wake > deadline) {
      SleepUntilVt(now, observed);
      return Status::DeadlineExceeded(
          "registry batch to shard " + std::to_string(shard) +
          " exceeded its retry deadline (" +
          std::to_string(options_.retry_deadline_ns) + "ns)");
    }
    SleepUntilVt(now, wake);
    now = wake;
    view = service_->ViewAt(shard, now);
    req.target_replica = view.primary;
  }
}

StatusOr<std::vector<OpResult>> RegistryClient::ExecuteOps(
    std::vector<Op> ops) {
  // Group per shard (ordered for determinism), one batched RPC each,
  // scatter per-op results back into input order. Shard-level transport
  // failures fold into the affected ops' statuses — partial success is a
  // result, not an exception.
  std::map<ShardId, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < ops.size(); ++i) {
    by_shard[service_->ShardOf(ops[i].name)].push_back(i);
  }
  std::vector<OpResult> out(ops.size());
  for (auto& [shard, idxs] : by_shard) {
    std::vector<Op> batch;
    batch.reserve(idxs.size());
    for (size_t i : idxs) batch.push_back(std::move(ops[i]));
    std::vector<OpResult> results;
    const Status s = ExecuteShardBatch(shard, std::move(batch), &results);
    if (!s.ok()) {
      for (size_t i : idxs) out[i].status = s;
      continue;
    }
    for (size_t k = 0; k < idxs.size(); ++k) {
      out[idxs[k]] = std::move(results[k]);
    }
  }
  return out;
}

Status RegistryClient::Publish(const std::string& name,
                               std::shared_ptr<FlowStateBase> state) {
  return PublishWithLease(name, std::move(state), 0);
}

Status RegistryClient::PublishWithLease(const std::string& name,
                                        std::shared_ptr<FlowStateBase> state,
                                        SimTime lease_expiry) {
  Op op;
  op.kind = OpKind::kPublish;
  op.name = name;
  op.state = std::move(state);
  op.lease_expiry = lease_expiry;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return results[0].status;
}

StatusOr<std::shared_ptr<FlowStateBase>> RegistryClient::Retrieve(
    const std::string& name) {
  std::shared_ptr<FlowStateBase> cached;
  if (CacheLookup(name, &cached).ok()) return cached;
  Op op;
  op.kind = OpKind::kRetrieve;
  op.name = name;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  const ShardId shard = service_->ShardOf(name);
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(ExecuteShardBatch(shard, std::move(ops), &results));
  OpResult& r = results[0];
  if (!r.status.ok()) return r.status;
  CacheInsert(name, shard, r);
  return r.state;
}

StatusOr<std::shared_ptr<FlowStateBase>> RegistryClient::RetrieveBlocking(
    const std::string& name, std::chrono::milliseconds timeout) {
  const bool in_task = exec::Engine::InTask();
  const SimTime deadline_vt = NowVt() + NsFromMs(timeout);
  const auto deadline_rt = std::chrono::steady_clock::now() + timeout;
  // Engine-mode poll cadence: park in exponentially growing slices and
  // advance the clock through each one, so a failover at a later virtual
  // time than our last RPC becomes visible (the shard view is evaluated at
  // our own clock). See FlowBarrier::Wait for the full rationale.
  constexpr SimTime kPollInitialNs = 10'000;
  constexpr SimTime kPollCapNs = 1'000'000;
  SimTime poll_interval = kPollInitialNs;
  while (true) {
    // Capture the progress epoch *before* polling so a publish landing
    // between the poll and the park wakes us (lost-wakeup protocol).
    const uint64_t seen = exec::ProgressEpoch();
    auto r = Retrieve(name);
    if (r.ok()) return r;
    if (r.status().code() != StatusCode::kNotFound) return r.status();
    if (in_task) {
      const SimTime now = NowVt();
      const SimTime wake =
          clock_ ? std::min(deadline_vt, now + poll_interval) : deadline_vt;
      if (exec::IdleWaitUntil(seen, now, wake) == exec::WakeCause::kTimer) {
        if (wake >= deadline_vt) {
          if (clock_) clock_->AdvanceTo(deadline_vt);
          return Status::DeadlineExceeded(
              "flow '" + name + "' not published within " +
              std::to_string(timeout.count()) + "ms (virtual)");
        }
        clock_->AdvanceTo(wake);
        poll_interval = std::min(poll_interval * 2, kPollCapNs);
      } else {
        poll_interval = kPollInitialNs;
      }
    } else {
      if (std::chrono::steady_clock::now() >= deadline_rt) {
        return Status::DeadlineExceeded("flow '" + name +
                                        "' not published within " +
                                        std::to_string(timeout.count()) +
                                        "ms");
      }
      exec::IdleWaitUntil(seen, /*now=*/-1, /*wake_at=*/0);  // 50us slice
    }
  }
}

Status RegistryClient::Close(const std::string& name) {
  CacheErase(name);
  Op op;
  op.kind = OpKind::kClose;
  op.name = name;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return results[0].status;
}

Status RegistryClient::MarkFailed(const std::string& name,
                                  const Status& cause) {
  CacheErase(name);
  Op op;
  op.kind = OpKind::kMarkFailed;
  op.name = name;
  op.fail_cause = cause;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return results[0].status;
}

Status RegistryClient::RenewLease(const std::string& name,
                                  SimTime new_expiry) {
  Op op;
  op.kind = OpKind::kRenewLease;
  op.name = name;
  op.lease_expiry = new_expiry;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return results[0].status;
}

StatusOr<std::vector<OpResult>> RegistryClient::PublishBatch(
    const std::vector<std::pair<std::string, std::shared_ptr<FlowStateBase>>>&
        flows,
    SimTime lease_expiry) {
  std::vector<Op> ops;
  ops.reserve(flows.size());
  for (const auto& [name, state] : flows) {
    Op op;
    op.kind = OpKind::kPublish;
    op.name = name;
    op.state = state;
    op.lease_expiry = lease_expiry;
    ops.push_back(std::move(op));
  }
  return ExecuteOps(std::move(ops));
}

StatusOr<std::vector<OpResult>> RegistryClient::RetrieveBatch(
    const std::vector<std::string>& names) {
  std::vector<OpResult> out(names.size());
  std::vector<Op> ops;
  std::vector<size_t> miss_index;
  for (size_t i = 0; i < names.size(); ++i) {
    std::shared_ptr<FlowStateBase> cached;
    if (CacheLookup(names[i], &cached).ok()) {
      out[i].state = std::move(cached);
      continue;
    }
    Op op;
    op.kind = OpKind::kRetrieve;
    op.name = names[i];
    ops.push_back(std::move(op));
    miss_index.push_back(i);
  }
  if (!ops.empty()) {
    DFI_ASSIGN_OR_RETURN(std::vector<OpResult> fetched,
                         ExecuteOps(std::move(ops)));
    for (size_t k = 0; k < miss_index.size(); ++k) {
      const size_t i = miss_index[k];
      out[i] = std::move(fetched[k]);
      CacheInsert(names[i], service_->ShardOf(names[i]), out[i]);
    }
  }
  return out;
}

StatusOr<std::vector<OpResult>> RegistryClient::CloseBatch(
    const std::vector<std::string>& names) {
  std::vector<Op> ops;
  ops.reserve(names.size());
  for (const std::string& name : names) {
    CacheErase(name);
    Op op;
    op.kind = OpKind::kClose;
    op.name = name;
    ops.push_back(std::move(op));
  }
  return ExecuteOps(std::move(ops));
}

StatusOr<OpResult> RegistryClient::BarrierEnter(const std::string& name,
                                                uint32_t expected,
                                                uint64_t generation) {
  Op op;
  op.kind = OpKind::kBarrierEnter;
  op.name = name;
  op.barrier_expected = expected;
  op.barrier_generation = generation;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return std::move(results[0]);
}

StatusOr<OpResult> RegistryClient::BarrierPoll(const std::string& name,
                                               uint64_t generation) {
  Op op;
  op.kind = OpKind::kBarrierPoll;
  op.name = name;
  op.barrier_generation = generation;
  std::vector<Op> ops;
  ops.push_back(std::move(op));
  std::vector<OpResult> results;
  DFI_RETURN_IF_ERROR(
      ExecuteShardBatch(service_->ShardOf(name), std::move(ops), &results));
  return std::move(results[0]);
}

}  // namespace dfi::reg
