#include "registry/flow_barrier.h"

#include <algorithm>
#include <utility>

#include "common/exec/engine.h"
#include "common/logging.h"
#include "registry/registry_client.h"

namespace dfi::reg {

FlowBarrier::FlowBarrier(RegistryClient* client, std::string name,
                         uint32_t expected)
    : client_(client), name_(std::move(name)), expected_(expected) {
  DFI_CHECK(client_ != nullptr);
  DFI_CHECK_GE(expected_, 1u);
}

Status FlowBarrier::Wait(std::chrono::milliseconds timeout) {
  VirtualClock* clock = client_->clock();
  const bool in_task = exec::Engine::InTask();
  const SimTime start_vt = clock ? clock->now() : 0;
  const SimTime deadline_vt =
      start_vt + static_cast<SimTime>(timeout.count()) * 1'000'000;
  const auto deadline_rt = std::chrono::steady_clock::now() + timeout;

  DFI_ASSIGN_OR_RETURN(OpResult r,
                       client_->BarrierEnter(name_, expected_, generation_));
  DFI_RETURN_IF_ERROR(r.status);

  // Engine-mode poll cadence. A parked waiter is only woken by progress
  // bumps, but its *view* of the shard is evaluated at its own virtual
  // clock — a failover (or a release on the promoted backup) at a later
  // virtual time stays invisible until the waiter's clock crosses it. So
  // instead of parking all the way to the deadline, park in exponentially
  // growing slices and advance the clock through each one; the cap bounds
  // the overshoot past the release instant.
  constexpr SimTime kPollInitialNs = 10'000;
  constexpr SimTime kPollCapNs = 1'000'000;
  SimTime poll_interval = kPollInitialNs;

  while (!r.barrier_released) {
    // Capture the progress epoch before polling: an arrival that releases
    // the barrier between our poll and our park bumps it and the park
    // falls through (lost-wakeup protocol).
    const uint64_t seen = exec::ProgressEpoch();
    DFI_ASSIGN_OR_RETURN(r, client_->BarrierPoll(name_, generation_));
    DFI_RETURN_IF_ERROR(r.status);
    if (r.barrier_released) break;
    if (in_task) {
      const SimTime now = clock ? clock->now() : -1;
      const SimTime wake =
          clock ? std::min(deadline_vt, now + poll_interval) : deadline_vt;
      if (exec::IdleWaitUntil(seen, now, wake) == exec::WakeCause::kTimer) {
        if (wake >= deadline_vt) {
          if (clock) clock->AdvanceTo(deadline_vt);
          return Status::DeadlineExceeded(
              "barrier '" + name_ + "' generation " +
              std::to_string(generation_) + " timed out (virtual)");
        }
        clock->AdvanceTo(wake);
        poll_interval = std::min(poll_interval * 2, kPollCapNs);
      } else {
        poll_interval = kPollInitialNs;
      }
    } else {
      if (std::chrono::steady_clock::now() >= deadline_rt) {
        return Status::DeadlineExceeded("barrier '" + name_ +
                                        "' generation " +
                                        std::to_string(generation_) +
                                        " timed out");
      }
      exec::IdleWaitUntil(seen, /*now=*/-1, /*wake_at=*/0);  // 50us slice
    }
  }

  // Join the release instant: every participant leaves at the latest
  // arrival's virtual time (plus its own reply hop, already charged by the
  // client transport). A poll-cadence waiter may have overshot the release
  // while scanning forward; time never runs backwards.
  if (clock && r.barrier_release_at > clock->now()) {
    clock->AdvanceTo(r.barrier_release_at);
  }
  ++generation_;
  return Status::OK();
}

}  // namespace dfi::reg
