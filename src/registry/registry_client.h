#ifndef DFI_REGISTRY_REGISTRY_CLIENT_H_
#define DFI_REGISTRY_REGISTRY_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec/engine.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "registry/registry_service.h"
#include "registry/registry_types.h"

namespace dfi::reg {

struct RegistryClientOptions {
  /// Dedup-window identity at the shards. Every client of one service must
  /// use a distinct id.
  uint64_t client_id = 0;
  /// Fabric node the client runs on; kNoNode for driver-thread clients
  /// (no request/reply hop cost, always reachable).
  net::NodeId node = kNoNode;
  /// Client-side read cache, fenced by shard epoch and lease expiry.
  /// Disable for loopback deployments: their epoch never changes, so a
  /// cached entry would never be invalidated by a failover.
  bool enable_cache = true;
  /// Per-call retry budget (virtual ns): total time a batch may spend on
  /// silence/backoff before giving up with kDeadlineExceeded.
  SimTime retry_deadline_ns = 50'000'000;
  /// Capped exponential backoff between retries after observed silence.
  SimTime backoff_initial_ns = 2'000;
  SimTime backoff_cap_ns = 1'000'000;
};

struct RegistryClientStats {
  uint64_t rpcs = 0;            // Execute() round trips issued
  uint64_t retries = 0;         // re-sends after observed silence
  uint64_t failovers = 0;       // wrong-primary redirects followed
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;    // cacheable retrieves that went to the wire
  uint64_t cache_invalidations = 0;  // entries dropped on an epoch bump
};

/// Client stub of the sharded control plane: batches ops per shard, caches
/// retrieved flow state (fenced by shard epoch + lease expiry), follows
/// wrong-primary redirects, and turns observed silence into deadline-bounded
/// retries with capped exponential backoff. All waiting is virtual-time
/// parking (exec::Engine) inside engine tasks and plain sleeps on OS
/// threads, so one client implementation serves both modes.
///
/// Concurrency: a client serializes its traffic to each shard (one logical
/// FIFO connection per shard — the dedup windows require per-client
/// sequence numbers to arrive in order). Give each emulated actor its own
/// client (distinct client_id); sharing one client across engine fibers is
/// only safe in loopback mode, where no call ever parks while holding the
/// connection.
class RegistryClient {
 public:
  explicit RegistryClient(RegistryService* service,
                          RegistryClientOptions options = {},
                          VirtualClock* clock = nullptr);

  RegistryClient(const RegistryClient&) = delete;
  RegistryClient& operator=(const RegistryClient&) = delete;

  const RegistryClientOptions& options() const { return options_; }
  RegistryService* service() const { return service_; }
  VirtualClock* clock() const { return clock_; }

  // ---- Single-op convenience (one-op batches) ---------------------------
  Status Publish(const std::string& name,
                 std::shared_ptr<FlowStateBase> state);
  Status PublishWithLease(const std::string& name,
                          std::shared_ptr<FlowStateBase> state,
                          SimTime lease_expiry);
  StatusOr<std::shared_ptr<FlowStateBase>> Retrieve(const std::string& name);
  /// Waits until the flow is published (or the timeout lapses — virtual
  /// time inside an engine task, real time on a plain thread). kPeerFailed
  /// and other terminal errors return immediately.
  StatusOr<std::shared_ptr<FlowStateBase>> RetrieveBlocking(
      const std::string& name,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));
  Status Close(const std::string& name);
  Status MarkFailed(const std::string& name, const Status& cause);
  Status RenewLease(const std::string& name, SimTime new_expiry);

  // ---- Batched API (grouped per shard, one RPC per shard) ---------------
  /// Publishes `flows` (optionally leased); results in input order.
  StatusOr<std::vector<OpResult>> PublishBatch(
      const std::vector<std::pair<std::string,
                                  std::shared_ptr<FlowStateBase>>>& flows,
      SimTime lease_expiry = 0);
  StatusOr<std::vector<OpResult>> RetrieveBatch(
      const std::vector<std::string>& names);
  StatusOr<std::vector<OpResult>> CloseBatch(
      const std::vector<std::string>& names);

  // ---- Barrier plumbing (used by FlowBarrier) ---------------------------
  StatusOr<OpResult> BarrierEnter(const std::string& name, uint32_t expected,
                                  uint64_t generation);
  StatusOr<OpResult> BarrierPoll(const std::string& name,
                                 uint64_t generation);

  /// Drops every cached entry (tests / manual fencing).
  void InvalidateCache();

  RegistryClientStats stats() const;

 private:
  struct CacheEntry {
    std::shared_ptr<FlowStateBase> state;
    ShardId shard = 0;
    Epoch epoch = 0;
    SimTime lease_expiry = 0;  // 0 = unleased
  };

  /// One logical connection to a shard: FIFO, per-client sequence numbers.
  struct ShardConn {
    std::mutex mu;
    uint64_t next_seq = 0;
  };

  SimTime NowVt() const { return clock_ ? clock_->now() : 0; }

  /// Sends `ops` (all owned by `shard`) as one batch; retries through
  /// redirects and silence until success, a terminal error, or the retry
  /// deadline. On success fills `results` (one per op) and advances the
  /// clock to the reply arrival.
  Status ExecuteShardBatch(ShardId shard, std::vector<Op> ops,
                           std::vector<OpResult>* results);

  /// Groups `ops` by owning shard (of op.name), executes one batch per
  /// shard, scatters per-op results back into input order.
  StatusOr<std::vector<OpResult>> ExecuteOps(std::vector<Op> ops);

  /// Fences the cache with an epoch observed in a reply/view for `shard`.
  void ObserveEpoch(ShardId shard, Epoch epoch);

  /// Deterministic virtual sleep until `until` (engine: parks on a private
  /// WaitPoint with a timer; thread: no-op beyond the clock charge).
  void SleepUntilVt(SimTime from, SimTime until);

  Status CacheLookup(const std::string& name,
                     std::shared_ptr<FlowStateBase>* state);
  /// Caches a successful retrieve/publish result under the latest epoch
  /// observed for `shard`.
  void CacheInsert(const std::string& name, ShardId shard,
                   const OpResult& r);
  void CacheErase(const std::string& name);

  RegistryService* const service_;
  const RegistryClientOptions options_;
  VirtualClock* const clock_;

  std::vector<std::unique_ptr<ShardConn>> conns_;  // one per shard

  mutable std::mutex mu_;  // cache + epochs + stats
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<Epoch> shard_epochs_;  // highest epoch observed per shard
  RegistryClientStats stats_;

  exec::WaitPoint backoff_wp_;  // never woken: pure virtual-time sleeps
};

}  // namespace dfi::reg

#endif  // DFI_REGISTRY_REGISTRY_CLIENT_H_
