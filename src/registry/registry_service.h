#ifndef DFI_REGISTRY_REGISTRY_SERVICE_H_
#define DFI_REGISTRY_REGISTRY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/rpc.h"
#include "registry/registry_types.h"

namespace dfi::net {
class Fabric;
}

namespace dfi::reg {

struct RegistryServiceOptions {
  /// Number of shards (hash of flow name → shard).
  uint32_t num_shards = 1;
  /// Replicas per shard (1 = unreplicated).
  uint32_t replication = 1;
  /// Fabric placement: `replica_nodes[shard * replication + r]` hosts
  /// replica `r` of `shard`. Empty = loopback mode (no fabric coupling, no
  /// virtual RPC cost — the default for in-process runtimes); when
  /// non-empty it must hold num_shards * replication node ids and a fabric
  /// must be bound.
  std::vector<net::NodeId> replica_nodes;
  /// Per-op service CPU at a replica (fabric mode only).
  SimTime op_serve_ns = 120;
  /// Modeled wire size of one op's request/reply record.
  uint32_t op_wire_bytes = 96;
  /// Retain the full event list for Events()/TraceString(). The rolling
  /// order-insensitive TraceHash() is always maintained; the list costs
  /// memory per applied op, so big churn runs leave this off.
  bool record_trace = false;
};

/// The sharded, replicated control plane behind the DFI flow registry.
///
/// The namespace is hash-partitioned into `num_shards` shards; each shard
/// is `replication` replica stores (each one a FlowRegistry) with a
/// primary/backup epoch protocol:
///
///   - The primary of shard S at virtual time t is its lowest-index replica
///     whose fabric node is alive at t under the FaultPlan; the shard's
///     epoch is 1 + the number of its replicas crashed by t. Both are pure
///     functions of (plan, t) — failover is deterministic and needs no
///     election traffic in the emulation.
///   - Mutations are applied at the primary and synchronously replicated to
///     every backup alive at the (virtual) replication delivery time, so a
///     single crash loses nothing once `replication >= 2`.
///   - Every op carries (client_id, seq). Replicas keep a per-client dedup
///     window (applied-through watermark + the last batch's results); a
///     retry after a mid-batch primary crash re-sends the batch, the new
///     primary skips the already-replicated prefix and applies the rest —
///     exactly-once, or a clean kDeadlineExceeded/kPeerFailed.
///   - Replies carry the shard epoch; clients fence their caches with it.
///
/// Execute() is the entire "wire": the client's virtual send time goes in,
/// the client-observed completion time comes out, and every intermediate
/// step (request hop, per-op service, replication delivery, reply hop) is
/// checked against the FaultPlan at its own virtual time via net::RpcPath.
/// A crash mid-batch applies a prefix and returns silence — exactly what a
/// real client of a real shard server would observe.
class RegistryService {
 public:
  /// `fabric` may be null only in loopback mode (empty replica_nodes).
  explicit RegistryService(net::Fabric* fabric,
                           RegistryServiceOptions options = {});

  RegistryService(const RegistryService&) = delete;
  RegistryService& operator=(const RegistryService&) = delete;

  const RegistryServiceOptions& options() const { return options_; }

  /// Shard owning `name` (stable hash; never changes at runtime).
  ShardId ShardOf(const std::string& name) const;

  /// The shard's primary/epoch at virtual time `at` — the pure failover
  /// function. Cheap enough to call per cache hit.
  ShardView ViewAt(ShardId shard, SimTime at) const;

  /// Executes one batched RPC sent at virtual time `start`. See class
  /// comment for the failure model.
  BatchResult Execute(const BatchRequest& request, SimTime start);

  /// Driver-side lease scrubber: fails lapsed leases on every replica of
  /// every shard at virtual time `now`; returns newly failed flows (as
  /// counted at the shards' primaries).
  size_t MarkExpired(SimTime now);

  /// Total live flows across shard primaries at `at` (audit/metrics).
  size_t TotalFlows(SimTime at) const;

  /// Fabric node hosting replica `replica` of `shard`; kNoNode in loopback.
  net::NodeId ReplicaNode(ShardId shard, uint32_t replica) const;

  // ---- Determinism instrumentation --------------------------------------
  /// Order-insensitive hash over every applied op (commutative sum of
  /// per-event hashes): identical across worker-pool sizes whenever the
  /// workload's per-name writers are single (the engine determinism
  /// contract), without retaining the event list.
  uint64_t TraceHash() const {
    return trace_hash_.load(std::memory_order_relaxed);
  }
  /// Applied (non-duplicate) ops and suppressed duplicates, service-wide.
  uint64_t applied_ops() const {
    return applied_ops_.load(std::memory_order_relaxed);
  }
  uint64_t duplicates_suppressed() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  /// The canonical event trace sorted by (at, client, seq); requires
  /// options.record_trace.
  std::vector<RegistryEvent> Events() const;
  /// Renders Events() one line per event.
  std::string TraceString() const;

 private:
  struct ClientWindow {
    uint64_t applied_through = 0;  // every seq < this has been applied
    uint64_t last_base = UINT64_MAX;
    std::vector<OpResult> last_results;
  };

  struct BarrierState {
    uint32_t expected = 0;
    uint64_t generation = 0;  // current (unreleased) generation
    std::map<uint64_t, SimTime> arrivals;  // client_id -> arrival vt
    SimTime last_release_at = 0;
    bool ever_released = false;
  };

  /// One replica store: a FlowRegistry plus dedup windows and barriers.
  struct Replica {
    FlowRegistry store;
    std::unordered_map<uint64_t, ClientWindow> clients;
    std::unordered_map<std::string, BarrierState> barriers;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Replica>> replicas;
    std::vector<RegistryEvent> events;  // iff record_trace
  };

  /// Executes `op` against `replica`'s stores at virtual time `at`
  /// (no dedup bookkeeping — the caller owns the window).
  OpResult ApplyOp(Replica* replica, const Op& op, uint64_t client_id,
                   SimTime at) const;

  /// Applies one op with dedup at the primary and replicates it to live
  /// backups. Caller holds the shard mutex.
  OpResult ApplyWithDedup(Shard* shard, ShardId shard_id, uint32_t primary,
                          const BatchRequest& request, size_t op_index,
                          SimTime at, Epoch epoch);

  uint32_t PrimaryIndexAt(ShardId shard, SimTime at) const;
  Epoch EpochAt(ShardId shard, SimTime at) const;
  bool NodeAliveAt(net::NodeId node, SimTime at) const;

  void RecordEvent(Shard* shard, ShardId shard_id, Epoch epoch,
                   const Op& op, uint64_t client_id, uint64_t seq,
                   StatusCode code, SimTime at);

  net::Fabric* const fabric_;
  const RegistryServiceOptions options_;
  const net::RpcPath path_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> trace_hash_{0};
  std::atomic<uint64_t> applied_ops_{0};
  std::atomic<uint64_t> duplicates_{0};
};

}  // namespace dfi::reg

#endif  // DFI_REGISTRY_REGISTRY_SERVICE_H_
