#include "registry/registry_service.h"

#include <algorithm>
#include <utility>

#include "common/exec/engine.h"
#include "common/hash.h"
#include "common/logging.h"
#include "net/fabric.h"

namespace dfi::reg {

char OpKindChar(OpKind kind) {
  switch (kind) {
    case OpKind::kPublish: return 'P';
    case OpKind::kRetrieve: return 'R';
    case OpKind::kClose: return 'C';
    case OpKind::kMarkFailed: return 'F';
    case OpKind::kRenewLease: return 'L';
    case OpKind::kBarrierEnter: return 'B';
    case OpKind::kBarrierPoll: return 'b';
  }
  return '?';
}

RegistryService::RegistryService(net::Fabric* fabric,
                                 RegistryServiceOptions options)
    : fabric_(fabric),
      options_(std::move(options)),
      path_(options_.replica_nodes.empty() ? nullptr : fabric) {
  DFI_CHECK_GE(options_.num_shards, 1u);
  DFI_CHECK_GE(options_.replication, 1u);
  if (!options_.replica_nodes.empty()) {
    DFI_CHECK(fabric_ != nullptr)
        << "fabric-placed registry replicas need a fabric";
    DFI_CHECK_EQ(options_.replica_nodes.size(),
                 static_cast<size_t>(options_.num_shards) *
                     options_.replication);
  }
  shards_.reserve(options_.num_shards);
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->replicas.reserve(options_.replication);
    for (uint32_t r = 0; r < options_.replication; ++r) {
      shard->replicas.push_back(std::make_unique<Replica>());
    }
    shards_.push_back(std::move(shard));
  }
}

ShardId RegistryService::ShardOf(const std::string& name) const {
  return static_cast<ShardId>(HashBytes(name.data(), name.size()) %
                              options_.num_shards);
}

net::NodeId RegistryService::ReplicaNode(ShardId shard,
                                         uint32_t replica) const {
  if (options_.replica_nodes.empty()) return kNoNode;
  return options_.replica_nodes[static_cast<size_t>(shard) *
                                    options_.replication +
                                replica];
}

bool RegistryService::NodeAliveAt(net::NodeId node, SimTime at) const {
  if (path_.loopback()) return true;
  const net::FaultPlan& plan = fabric_->fault_plan();
  return !plan.active() || plan.NodeAlive(node, at);
}

uint32_t RegistryService::PrimaryIndexAt(ShardId shard, SimTime at) const {
  if (path_.loopback()) return 0;
  for (uint32_t r = 0; r < options_.replication; ++r) {
    if (NodeAliveAt(ReplicaNode(shard, r), at)) return r;
  }
  return UINT32_MAX;
}

Epoch RegistryService::EpochAt(ShardId shard, SimTime at) const {
  if (path_.loopback()) return 1;
  const net::FaultPlan& plan = fabric_->fault_plan();
  Epoch epoch = 1;
  if (!plan.active()) return epoch;
  for (uint32_t r = 0; r < options_.replication; ++r) {
    if (plan.CrashTime(ReplicaNode(shard, r)) <= at) ++epoch;
  }
  return epoch;
}

ShardView RegistryService::ViewAt(ShardId shard, SimTime at) const {
  DFI_CHECK_LT(shard, options_.num_shards);
  ShardView view;
  view.epoch = EpochAt(shard, at);
  const uint32_t primary = PrimaryIndexAt(shard, at);
  view.available = primary != UINT32_MAX;
  view.primary = view.available ? primary : 0;
  view.primary_node = ReplicaNode(shard, view.primary);
  return view;
}

void RegistryService::RecordEvent(Shard* shard, ShardId shard_id,
                                  Epoch epoch, const Op& op,
                                  uint64_t client_id, uint64_t seq,
                                  StatusCode code, SimTime at) {
  // Order-insensitive accumulation: the commutative sum over per-event
  // hashes is identical however the scheduler interleaved the appends.
  uint64_t h = HashU64(static_cast<uint64_t>(at));
  h = HashU64(h ^ ((static_cast<uint64_t>(shard_id) << 32) ^ epoch));
  h = HashU64(h ^ HashBytes(op.name.data(), op.name.size()));
  h = HashU64(h ^ (client_id * 0x9e3779b97f4a7c15ull + seq));
  h = HashU64(h ^ ((static_cast<uint64_t>(OpKindChar(op.kind)) << 8) |
                   static_cast<uint64_t>(code)));
  trace_hash_.fetch_add(h, std::memory_order_relaxed);
  if (options_.record_trace) {
    RegistryEvent e;
    e.at = at;
    e.shard = shard_id;
    e.epoch = epoch;
    e.kind = op.kind;
    e.name = op.name;
    e.client_id = client_id;
    e.seq = seq;
    e.code = code;
    shard->events.push_back(std::move(e));
  }
}

OpResult RegistryService::ApplyOp(Replica* replica, const Op& op,
                                  uint64_t client_id, SimTime at) const {
  OpResult r;
  switch (op.kind) {
    case OpKind::kPublish:
      r.status = replica->store.PublishWithLease(op.name, op.state,
                                                 op.lease_expiry);
      break;
    case OpKind::kRetrieve: {
      SimTime lease = 0;
      auto s = replica->store.Retrieve(op.name, &lease);
      if (s.ok()) {
        r.state = *s;
        r.lease_expiry = lease;
      } else {
        r.status = s.status();
      }
      break;
    }
    case OpKind::kClose:
      r.status = replica->store.Remove(op.name);
      break;
    case OpKind::kMarkFailed:
      r.status = replica->store.MarkFailed(op.name, op.fail_cause);
      break;
    case OpKind::kRenewLease:
      r.status = replica->store.RenewLease(op.name, at, op.lease_expiry);
      break;
    case OpKind::kBarrierEnter: {
      BarrierState& b = replica->barriers[op.name];
      if (b.expected == 0) b.expected = op.barrier_expected;
      if (op.barrier_expected != b.expected) {
        r.status = Status::InvalidArgument(
            "barrier '" + op.name + "' expects " +
            std::to_string(b.expected) + " participants, not " +
            std::to_string(op.barrier_expected));
        break;
      }
      if (op.barrier_generation < b.generation) {
        // This generation already released (e.g. a duplicate enter whose
        // first apply released it).
        r.barrier_released = true;
        r.barrier_release_at = b.last_release_at;
        break;
      }
      if (op.barrier_generation > b.generation) {
        r.status = Status::FailedPrecondition(
            "barrier '" + op.name + "' generation " +
            std::to_string(op.barrier_generation) + " not yet open");
        break;
      }
      b.arrivals.emplace(client_id, at);
      if (b.arrivals.size() >= b.expected) {
        SimTime release = 0;
        for (const auto& [c, t] : b.arrivals) {
          release = std::max(release, t);
        }
        b.last_release_at = release;
        b.ever_released = true;
        ++b.generation;
        b.arrivals.clear();
        r.barrier_released = true;
        r.barrier_release_at = release;
      }
      break;
    }
    case OpKind::kBarrierPoll: {
      auto it = replica->barriers.find(op.name);
      if (it != replica->barriers.end() &&
          op.barrier_generation < it->second.generation) {
        r.barrier_released = true;
        r.barrier_release_at = it->second.last_release_at;
      }
      break;
    }
  }
  return r;
}

OpResult RegistryService::ApplyWithDedup(Shard* shard, ShardId shard_id,
                                         uint32_t primary_index,
                                         const BatchRequest& request,
                                         size_t op_index, SimTime at,
                                         Epoch epoch) {
  Replica& primary = *shard->replicas[primary_index];
  const uint64_t seq = request.base_seq + op_index;
  ClientWindow& window = primary.clients[request.client_id];
  if (seq < window.applied_through) {
    // A retry resent an op this shard already has (the crashed primary
    // replicated it before dying, or the reply was lost): return the
    // stored result, apply nothing — the exactly-once guarantee.
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    OpResult r;
    if (window.last_base == request.base_seq &&
        op_index < window.last_results.size()) {
      r = window.last_results[op_index];
    }
    r.duplicate = true;
    return r;
  }
  // seq >= applied_through: a fresh op. seq > applied_through is a forward
  // jump — the client abandoned an earlier batch at its retry deadline and
  // moved on; the window only has to reject *re-use*, so it jumps with it.
  // `prev` (the pre-apply watermark) rides along to the backups: a backup
  // whose watermark does not match missed an op while dead or partitioned
  // and must stay out forever rather than silently diverge.
  const uint64_t prev = window.applied_through;
  OpResult result = ApplyOp(&primary, request.ops[op_index],
                            request.client_id, at);
  if (window.last_base != request.base_seq) {
    window.last_base = request.base_seq;
    window.last_results.clear();
  }
  window.last_results.push_back(result);
  window.applied_through = seq + 1;
  applied_ops_.fetch_add(1, std::memory_order_relaxed);
  RecordEvent(shard, shard_id, epoch, request.ops[op_index],
              request.client_id, seq, result.status.code(), at);
  // Mutations bump the engine progress epoch so parked pollers re-check.
  // Reads (retrieve, barrier poll) must NOT bump: a poll loop that bumped
  // on its own poll would wake itself out of every park and spin the
  // worker forever instead of yielding (self-notification livelock).
  const OpKind kind = request.ops[op_index].kind;
  if (kind != OpKind::kRetrieve && kind != OpKind::kBarrierPoll) {
    exec::BumpProgress();
  }

  // Synchronous replication: every backup that is alive and reachable at
  // the virtual delivery time applies the same op. A backup that missed an
  // op (dead, or cut off by a partition) never applies later ones either —
  // its watermark stays put — so windows never develop silent gaps.
  const net::NodeId primary_node = ReplicaNode(shard_id, primary_index);
  for (uint32_t r = 0; r < options_.replication; ++r) {
    if (r == primary_index) continue;
    Replica& backup = *shard->replicas[r];
    if (!path_.loopback()) {
      const net::NodeId backup_node = ReplicaNode(shard_id, r);
      const SimTime deliver =
          at + path_.HopNs(primary_node, backup_node, at,
                           options_.op_wire_bytes);
      const net::FaultPlan& plan = fabric_->fault_plan();
      if (!NodeAliveAt(backup_node, deliver)) continue;
      if (plan.active() &&
          !plan.Reachable(primary_node, backup_node, at)) {
        continue;
      }
    }
    ClientWindow& bw = backup.clients[request.client_id];
    if (bw.applied_through != prev) continue;  // missed earlier ops: stay out
    OpResult br = ApplyOp(&backup, request.ops[op_index],
                          request.client_id, at);
    if (bw.last_base != request.base_seq) {
      bw.last_base = request.base_seq;
      bw.last_results.clear();
    }
    bw.last_results.push_back(std::move(br));
    bw.applied_through = seq + 1;
  }
  return result;
}

BatchResult RegistryService::Execute(const BatchRequest& request,
                                     SimTime start) {
  BatchResult out;
  out.complete_at = start;
  if (request.shard >= options_.num_shards ||
      request.target_replica >= options_.replication) {
    out.transport = Status::InvalidArgument("batch addresses shard " +
                                            std::to_string(request.shard) +
                                            " replica " +
                                            std::to_string(
                                                request.target_replica));
    return out;
  }
  for (const Op& op : request.ops) {
    if (ShardOf(op.name) != request.shard) {
      out.transport = Status::InvalidArgument(
          "op on '" + op.name + "' does not belong to shard " +
          std::to_string(request.shard));
      return out;
    }
  }

  Shard& shard = *shards_[request.shard];
  const bool loop = path_.loopback();
  const net::NodeId target_node =
      ReplicaNode(request.shard, request.target_replica);
  const uint32_t wire_bytes =
      options_.op_wire_bytes *
      static_cast<uint32_t>(std::max<size_t>(1, request.ops.size()));

  SimTime t_arrive = start;
  SimTime observe_silence = start;
  if (!loop) {
    const SimTime hop =
        path_.HopNs(request.client_node, target_node, start, wire_bytes);
    t_arrive = start + hop;
    observe_silence = start + 2 * hop;
    const net::FaultPlan& plan = fabric_->fault_plan();
    if (plan.active() &&
        (!plan.NodeAlive(target_node, t_arrive) ||
         (request.client_node != kNoNode &&
          !plan.Reachable(request.client_node, target_node, t_arrive)))) {
      out.transport = Status::Unavailable(
          "registry replica node " + std::to_string(target_node) +
          " dead or unreachable");
      out.complete_at = observe_silence;
      return out;
    }
  }

  const uint32_t primary = PrimaryIndexAt(request.shard, t_arrive);
  if (primary == UINT32_MAX) {
    out.transport = Status::PeerFailed(
        "every replica of registry shard " + std::to_string(request.shard) +
        " has crashed");
    out.complete_at = observe_silence;
    return out;
  }
  out.epoch = EpochAt(request.shard, t_arrive);

  const SimTime per_op = loop ? 0 : options_.op_serve_ns;
  if (request.target_replica != primary) {
    // Live non-primary: it answers with a redirect carrying the current
    // view; the client refreshes and retries at the primary.
    out.wrong_primary = true;
    const SimTime t_redirect = t_arrive + per_op;
    out.transport = Status::OK();
    out.complete_at =
        loop ? start
             : t_redirect + path_.HopNs(target_node, request.client_node,
                                        t_redirect, options_.op_wire_bytes);
    return out;
  }

  const SimTime crash_t =
      loop ? net::FaultPlan::kNever
           : fabric_->fault_plan().CrashTime(target_node);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.results.reserve(request.ops.size());
    for (size_t i = 0; i < request.ops.size(); ++i) {
      const SimTime t_i = t_arrive + per_op * static_cast<SimTime>(i + 1);
      if (crash_t <= t_i) {
        // The primary died mid-batch: the prefix it reached is applied and
        // replicated, the rest is lost, and no reply ever leaves the node.
        // The client observes silence and retries; the dedup windows turn
        // that retry into exactly-once.
        out.results.clear();
        out.transport = Status::Unavailable(
            "registry shard " + std::to_string(request.shard) +
            " primary crashed mid-batch");
        out.complete_at = std::max(observe_silence, crash_t);
        return out;
      }
      out.results.push_back(ApplyWithDedup(&shard, request.shard, primary,
                                           request, i, t_i, out.epoch));
    }
  }

  const SimTime t_done =
      t_arrive + per_op * static_cast<SimTime>(request.ops.size());
  if (!loop) {
    const net::FaultPlan& plan = fabric_->fault_plan();
    if (plan.active() && request.client_node != kNoNode &&
        !plan.Reachable(target_node, request.client_node, t_done)) {
      // Executed but the reply can't get back; the client will retry and
      // be absorbed by the dedup window.
      out.results.clear();
      out.transport =
          Status::Unavailable("registry reply path partitioned");
      out.complete_at = std::max(observe_silence, t_done);
      return out;
    }
    out.complete_at = t_done + path_.HopNs(target_node, request.client_node,
                                           t_done, wire_bytes);
  } else {
    out.complete_at = start;
  }
  out.transport = Status::OK();
  return out;
}

size_t RegistryService::MarkExpired(SimTime now) {
  size_t newly_failed = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint32_t primary = PrimaryIndexAt(s, now);
    for (uint32_t r = 0; r < options_.replication; ++r) {
      if (!NodeAliveAt(ReplicaNode(s, r), now)) continue;
      const size_t n = shard.replicas[r]->store.MarkExpired(now);
      if (r == primary) newly_failed += n;
    }
  }
  if (newly_failed > 0) {
    trace_hash_.fetch_add(
        HashU64(static_cast<uint64_t>(now) ^ (newly_failed << 17)),
        std::memory_order_relaxed);
  }
  return newly_failed;
}

size_t RegistryService::TotalFlows(SimTime at) const {
  size_t total = 0;
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const uint32_t primary = PrimaryIndexAt(s, at);
    if (primary == UINT32_MAX) continue;
    total += shards_[s]->replicas[primary]->store.size();
  }
  return total;
}

std::vector<RegistryEvent> RegistryService::Events() const {
  std::vector<RegistryEvent> all;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    all.insert(all.end(), shard->events.begin(), shard->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const RegistryEvent& a, const RegistryEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.client_id != b.client_id) return a.client_id < b.client_id;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.shard < b.shard;
            });
  return all;
}

std::string RegistryService::TraceString() const {
  std::string out;
  for (const RegistryEvent& e : Events()) {
    out += "@" + std::to_string(e.at) + "ns s" + std::to_string(e.shard) +
           " e" + std::to_string(e.epoch) + " " + OpKindChar(e.kind) + " " +
           e.name + " c" + std::to_string(e.client_id) + "#" +
           std::to_string(e.seq) + " " + StatusCodeToString(e.code) + "\n";
  }
  return out;
}

}  // namespace dfi::reg
