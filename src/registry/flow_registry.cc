#include "registry/flow_registry.h"

#include <utility>

namespace dfi {

Status FlowRegistry::Publish(const std::string& name,
                             std::shared_ptr<FlowStateBase> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flows_.count(name) != 0) {
      return Status::AlreadyExists("flow '" + name + "'");
    }
    flows_.emplace(name, std::move(state));
  }
  cv_.notify_all();
  return Status::OK();
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::Retrieve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return Status::NotFound("flow '" + name + "'");
  }
  return it->second;
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::RetrieveBlocking(
    const std::string& name, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout,
                    [&] { return flows_.count(name) != 0; })) {
    return Status::Unavailable("flow '" + name + "' not published in time");
  }
  return flows_.at(name);
}

Status FlowRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flows_.erase(name) == 0) {
    return Status::NotFound("flow '" + name + "'");
  }
  return Status::OK();
}

size_t FlowRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

}  // namespace dfi
