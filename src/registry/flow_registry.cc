#include "registry/flow_registry.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

void FlowRegistry::NotifyChanged() {
  version_.fetch_add(1, std::memory_order_seq_cst);
  cv_.notify_all();
  wp_.WakeAll();
  exec::BumpProgress();
}

Status FlowRegistry::Publish(const std::string& name,
                             std::shared_ptr<FlowStateBase> state) {
  return PublishWithLease(name, std::move(state), /*lease_expiry=*/0);
}

Status FlowRegistry::PublishWithLease(const std::string& name,
                                      std::shared_ptr<FlowStateBase> state,
                                      SimTime lease_expiry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flows_.count(name) != 0) {
      return Status::AlreadyExists("flow '" + name + "'");
    }
    Entry entry;
    entry.state = std::move(state);
    entry.lease_expiry = lease_expiry;
    flows_.emplace(name, std::move(entry));
  }
  NotifyChanged();
  return Status::OK();
}

void FlowRegistry::FailLocked(Entry* entry, const Status& cause) {
  entry->failed = true;
  entry->fail_cause =
      cause.ok() ? Status::PeerFailed("flow publisher failed") : cause;
  // Unwind blocked participants. Abort is idempotent and takes no registry
  // locks, so calling it under mu_ is safe.
  if (entry->state != nullptr) entry->state->Abort(entry->fail_cause);
}

Status FlowRegistry::RenewLease(const std::string& name, SimTime now,
                                SimTime new_expiry) {
  bool lapsed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) {
      return Status::NotFound("flow '" + name + "'");
    }
    Entry& entry = it->second;
    if (entry.failed) {
      return Status::FailedPrecondition("flow '" + name +
                                        "' already marked failed");
    }
    if (entry.lease_expiry != 0 && now >= entry.lease_expiry) {
      // The heartbeat arrived at or past the expiry: the lease lapsed in
      // this very tick. Fail the flow here so the outcome is identical
      // whether the scrubber's MarkExpired(now) ran before or after us.
      FailLocked(&entry,
                 Status::PeerFailed("flow '" + name + "' lease expired at " +
                                    std::to_string(entry.lease_expiry) +
                                    "ns"));
      lapsed = true;
    } else {
      entry.lease_expiry = new_expiry;
    }
  }
  if (lapsed) {
    NotifyChanged();
    return Status::FailedPrecondition("flow '" + name +
                                      "' lease lapsed before renewal");
  }
  return Status::OK();
}

Status FlowRegistry::MarkFailed(const std::string& name,
                                const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) {
      return Status::NotFound("flow '" + name + "'");
    }
    if (!it->second.failed) FailLocked(&it->second, cause);
  }
  NotifyChanged();
  return Status::OK();
}

size_t FlowRegistry::MarkExpired(SimTime now) {
  size_t newly_failed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, entry] : flows_) {
      if (entry.failed || entry.lease_expiry == 0 ||
          now < entry.lease_expiry) {
        continue;
      }
      FailLocked(&entry,
                 Status::PeerFailed("flow '" + name + "' lease expired at " +
                                    std::to_string(entry.lease_expiry) +
                                    "ns"));
      ++newly_failed;
    }
  }
  if (newly_failed > 0) NotifyChanged();
  return newly_failed;
}

bool FlowRegistry::PublisherAlive(const std::string& name, SimTime now) {
  bool fail_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) return false;
    Entry& entry = it->second;
    if (entry.failed) return false;
    if (entry.lease_expiry == 0 || now < entry.lease_expiry) return true;
    FailLocked(&entry,
               Status::PeerFailed("flow '" + name + "' lease expired at " +
                                  std::to_string(entry.lease_expiry) +
                                  "ns"));
    fail_now = true;
  }
  if (fail_now) NotifyChanged();
  return false;
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::Retrieve(
    const std::string& name) const {
  return Retrieve(name, nullptr);
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::Retrieve(
    const std::string& name, SimTime* lease_expiry) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return Status::NotFound("flow '" + name + "'");
  }
  if (it->second.failed) return it->second.fail_cause;
  if (lease_expiry != nullptr) *lease_expiry = it->second.lease_expiry;
  return it->second.state;
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::RetrieveBlocking(
    const std::string& name, std::chrono::milliseconds timeout,
    VirtualClock* clock) {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    ++pending_[name].waiters;
  }
  // Deregisters this waiter on every exit path; the last waiter out drops
  // the per-name bookkeeping (and any handoff entry retained for it).
  struct WaiterGuard {
    FlowRegistry* reg;
    const std::string& name;
    ~WaiterGuard() {
      std::lock_guard<std::mutex> lock(reg->mu_);
      auto it = reg->pending_.find(name);
      if (it != reg->pending_.end() && --it->second.waiters == 0) {
        reg->pending_.erase(it);
      }
    }
  } guard{this, name};

  // Checks for a satisfied wait under mu_: a live entry wins; otherwise a
  // handoff from a Remove that happened after this waiter registered.
  auto check = [&](StatusOr<std::shared_ptr<FlowStateBase>>* out) {
    auto it = flows_.find(name);
    const Entry* entry = nullptr;
    if (it != flows_.end()) {
      entry = &it->second;
    } else {
      auto pit = pending_.find(name);
      if (pit != pending_.end() && pit->second.has_handoff &&
          ticket < pit->second.handoff_ticket_limit) {
        entry = &pit->second.handoff;
      }
    }
    if (entry == nullptr) return false;
    *out = entry->failed
               ? StatusOr<std::shared_ptr<FlowStateBase>>(entry->fail_cause)
               : StatusOr<std::shared_ptr<FlowStateBase>>(entry->state);
    return true;
  };

  StatusOr<std::shared_ptr<FlowStateBase>> result =
      Status::DeadlineExceeded("flow '" + name + "' not published in time");

  if (exec::Engine::InTask()) {
    // Engine mode: the timeout is virtual time from the caller's clock.
    // Park until the registry changes or the engine floor reaches the
    // deadline; the expired deadline is committed to the clock so a timed-
    // out retrieve costs exactly its budget, deterministically.
    const SimTime base = clock != nullptr ? clock->now() : 0;
    const SimTime deadline_vt =
        base + static_cast<SimTime>(timeout.count()) * 1'000'000;
    for (;;) {
      uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (check(&result)) return result;
        seen = version_.load(std::memory_order_seq_cst);
      }
      const exec::WakeCause cause = exec::Engine::Park(
          &wp_,
          [&] { return version_.load(std::memory_order_seq_cst) != seen; },
          clock != nullptr ? clock->now() : SimTime(-1), deadline_vt);
      if (cause == exec::WakeCause::kTimer) {
        std::lock_guard<std::mutex> lock(mu_);
        if (check(&result)) return result;
        if (clock != nullptr) clock->AdvanceTo(deadline_vt);
        return Status::DeadlineExceeded("flow '" + name +
                                        "' not published in time");
      }
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [&] { return check(&result); })) {
    return Status::DeadlineExceeded("flow '" + name +
                                    "' not published in time");
  }
  return result;
}

Status FlowRegistry::Remove(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) {
      return Status::NotFound("flow '" + name + "'");
    }
    auto pit = pending_.find(name);
    if (pit != pending_.end() && pit->second.waiters > 0) {
      // Hand the entry off to retrievers that were already blocked: the
      // publish they were waiting for must not vanish out from under them.
      pit->second.has_handoff = true;
      pit->second.handoff_ticket_limit = next_ticket_;
      pit->second.handoff = it->second;
    }
    flows_.erase(it);
  }
  NotifyChanged();
  return Status::OK();
}

size_t FlowRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

}  // namespace dfi
