#include "registry/flow_registry.h"

#include <utility>

#include "common/exec/engine.h"
#include "common/logging.h"

namespace dfi {

Status FlowRegistry::Publish(const std::string& name,
                             std::shared_ptr<FlowStateBase> state) {
  return PublishWithLease(name, std::move(state), /*lease_expiry=*/0);
}

Status FlowRegistry::PublishWithLease(const std::string& name,
                                      std::shared_ptr<FlowStateBase> state,
                                      SimTime lease_expiry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flows_.count(name) != 0) {
      return Status::AlreadyExists("flow '" + name + "'");
    }
    Entry entry;
    entry.state = std::move(state);
    entry.lease_expiry = lease_expiry;
    flows_.emplace(name, std::move(entry));
  }
  cv_.notify_all();
  exec::BumpProgress();
  return Status::OK();
}

void FlowRegistry::FailLocked(Entry* entry, const Status& cause) {
  entry->failed = true;
  entry->fail_cause =
      cause.ok() ? Status::PeerFailed("flow publisher failed") : cause;
  // Unwind blocked participants. Abort is idempotent and takes no registry
  // locks, so calling it under mu_ is safe.
  if (entry->state != nullptr) entry->state->Abort(entry->fail_cause);
}

Status FlowRegistry::RenewLease(const std::string& name,
                                SimTime new_expiry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return Status::NotFound("flow '" + name + "'");
  }
  if (it->second.failed) {
    return Status::FailedPrecondition("flow '" + name +
                                      "' already marked failed");
  }
  it->second.lease_expiry = new_expiry;
  return Status::OK();
}

Status FlowRegistry::MarkFailed(const std::string& name,
                                const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) {
      return Status::NotFound("flow '" + name + "'");
    }
    if (!it->second.failed) FailLocked(&it->second, cause);
  }
  cv_.notify_all();
  return Status::OK();
}

size_t FlowRegistry::MarkExpired(SimTime now) {
  size_t newly_failed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, entry] : flows_) {
      if (entry.failed || entry.lease_expiry == 0 ||
          now < entry.lease_expiry) {
        continue;
      }
      FailLocked(&entry,
                 Status::PeerFailed("flow '" + name + "' lease expired at " +
                                    std::to_string(entry.lease_expiry) +
                                    "ns"));
      ++newly_failed;
    }
  }
  if (newly_failed > 0) cv_.notify_all();
  return newly_failed;
}

bool FlowRegistry::PublisherAlive(const std::string& name, SimTime now) {
  bool fail_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flows_.find(name);
    if (it == flows_.end()) return false;
    Entry& entry = it->second;
    if (entry.failed) return false;
    if (entry.lease_expiry == 0 || now < entry.lease_expiry) return true;
    FailLocked(&entry,
               Status::PeerFailed("flow '" + name + "' lease expired at " +
                                  std::to_string(entry.lease_expiry) +
                                  "ns"));
    fail_now = true;
  }
  if (fail_now) cv_.notify_all();
  return false;
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::Retrieve(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return Status::NotFound("flow '" + name + "'");
  }
  if (it->second.failed) return it->second.fail_cause;
  return it->second.state;
}

StatusOr<std::shared_ptr<FlowStateBase>> FlowRegistry::RetrieveBlocking(
    const std::string& name, std::chrono::milliseconds timeout) const {
  DFI_CHECK(!exec::Engine::InTask())
      << "RetrieveBlocking is a real-time driver-thread API; engine tasks "
         "must poll Retrieve() and park instead";
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout,
                    [&] { return flows_.count(name) != 0; })) {
    return Status::DeadlineExceeded("flow '" + name +
                                    "' not published in time");
  }
  const Entry& entry = flows_.at(name);
  if (entry.failed) return entry.fail_cause;
  return entry.state;
}

Status FlowRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (flows_.erase(name) == 0) {
    return Status::NotFound("flow '" + name + "'");
  }
  return Status::OK();
}

size_t FlowRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

}  // namespace dfi
