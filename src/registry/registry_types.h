#ifndef DFI_REGISTRY_REGISTRY_TYPES_H_
#define DFI_REGISTRY_REGISTRY_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "net/rpc.h"
#include "registry/flow_registry.h"

/// Typed request/reply messages of the sharded control plane — the
/// emulation's equivalent of DFI-public's RegistryServer wire protocol
/// (typed RetrieveFlowHandleRequest / CreateFlowRequest messages). A batch
/// is the RPC unit: one client sends up to a few dozen ops for one shard in
/// a single round trip.
namespace dfi::reg {

using ShardId = uint32_t;
/// Shard configuration epoch. Bumped every time a replica of the shard
/// fails over; clients fence cached entries with it.
using Epoch = uint64_t;

/// "No fabric node" — driver-thread clients and loopback deployments.
inline constexpr net::NodeId kNoNode = static_cast<net::NodeId>(-1);

enum class OpKind : uint8_t {
  kPublish,      // name, state, lease_expiry
  kRetrieve,     // name
  kClose,        // name (Remove)
  kMarkFailed,   // name, fail_cause
  kRenewLease,   // name, lease_expiry (new expiry; applied at service time)
  kBarrierEnter, // name, barrier_expected, barrier_generation
  kBarrierPoll,  // name, barrier_generation
};

/// Returns a one-character mnemonic for trace rendering ('P', 'R', ...).
char OpKindChar(OpKind kind);

/// One control-plane operation.
struct Op {
  OpKind kind = OpKind::kRetrieve;
  std::string name;
  std::shared_ptr<FlowStateBase> state;  // kPublish
  SimTime lease_expiry = 0;              // kPublish / kRenewLease
  Status fail_cause;                     // kMarkFailed
  uint32_t barrier_expected = 0;         // kBarrierEnter
  uint64_t barrier_generation = 0;       // barrier ops
};

/// Per-op reply.
struct OpResult {
  Status status;
  std::shared_ptr<FlowStateBase> state;  // kRetrieve
  SimTime lease_expiry = 0;              // kRetrieve (0 = unleased)
  /// The op's sequence number was already applied (a retry after a primary
  /// crash hit the dedup window): the stored result is returned and nothing
  /// is re-executed — the exactly-once half of the protocol.
  bool duplicate = false;
  bool barrier_released = false;    // barrier ops
  SimTime barrier_release_at = 0;   // virtual release time (max arrival)
};

/// One batched RPC: `ops[i]` carries sequence number `base_seq + i` for the
/// shard's per-client dedup window. All ops must map to `shard`.
struct BatchRequest {
  uint64_t client_id = 0;
  uint64_t base_seq = 0;
  net::NodeId client_node = kNoNode;
  ShardId shard = 0;
  /// Replica index within the shard the client believes is primary.
  uint32_t target_replica = 0;
  std::vector<Op> ops;
};

/// Reply to one batched RPC.
struct BatchResult {
  /// OK = a reply was received. kUnavailable = silence (dead / unreachable
  /// / mid-service crash — indistinguishable to the client, who retries).
  /// Other codes = the request was rejected before execution.
  Status transport;
  /// Client-observed completion virtual time (reply arrival, or the time
  /// the silence was established).
  SimTime complete_at = 0;
  /// Shard epoch at service time — the client's cache fencing token.
  Epoch epoch = 0;
  /// The replica was not the shard primary at arrival; `epoch` and the
  /// refreshed view tell the client where to retry.
  bool wrong_primary = false;
  std::vector<OpResult> results;  // one per op iff transport.ok()
};

/// A client's current belief about one shard.
struct ShardView {
  Epoch epoch = 1;
  uint32_t primary = 0;
  net::NodeId primary_node = kNoNode;
  /// False once every replica of the shard has crashed.
  bool available = true;
};

/// One applied mutation/read in the canonical registry event trace.
/// (at, client_id, seq) is a total order: sequence numbers are unique per
/// client and apply times are deterministic in virtual time, so sorting by
/// this key yields the same trace at every worker-pool size.
struct RegistryEvent {
  SimTime at = 0;
  ShardId shard = 0;
  Epoch epoch = 0;
  OpKind kind = OpKind::kRetrieve;
  std::string name;
  uint64_t client_id = 0;
  uint64_t seq = 0;
  StatusCode code = StatusCode::kOk;
};

}  // namespace dfi::reg

#endif  // DFI_REGISTRY_REGISTRY_TYPES_H_
