#ifndef DFI_REGISTRY_FLOW_BARRIER_H_
#define DFI_REGISTRY_FLOW_BARRIER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dfi::reg {

class RegistryClient;

/// Reusable distributed barrier over the control plane — the registry-side
/// equivalent of the paper's deployment-wide "all participants ready"
/// synchronization before flow traffic starts.
///
/// `expected` participants each construct a FlowBarrier on the same name
/// against their own RegistryClient (distinct client_ids) and call Wait().
/// The barrier releases when all have entered; each waiter's virtual clock
/// joins the release time (the latest arrival), so participants leave the
/// barrier at the same virtual instant plus their own reply hop. The
/// barrier is generational: after a release the next Wait() enters the next
/// generation, so one instance serves phase loops.
///
/// Barrier state lives in the owning shard and is replicated/deduplicated
/// like every other registry op, so a primary crash between arrivals
/// neither loses entries nor double-counts a retried one.
class FlowBarrier {
 public:
  /// Does not take ownership of `client`.
  FlowBarrier(RegistryClient* client, std::string name, uint32_t expected);

  FlowBarrier(const FlowBarrier&) = delete;
  FlowBarrier& operator=(const FlowBarrier&) = delete;

  /// Enters the current generation and waits for the release. Virtual-time
  /// timeout inside an engine task, real-time on a plain thread. Errors:
  /// kDeadlineExceeded (timeout), kInvalidArgument (participant-count
  /// mismatch), kPeerFailed / kDeadlineExceeded from the transport when the
  /// owning shard is gone.
  Status Wait(std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(10000));

  /// Generations completed by this participant (== Wait() successes).
  uint64_t generation() const { return generation_; }
  const std::string& name() const { return name_; }

 private:
  RegistryClient* const client_;
  const std::string name_;
  const uint32_t expected_;
  uint64_t generation_ = 0;
};

}  // namespace dfi::reg

#endif  // DFI_REGISTRY_FLOW_BARRIER_H_
