#ifndef DFI_REGISTRY_FLOW_REGISTRY_H_
#define DFI_REGISTRY_FLOW_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace dfi {

/// Opaque base for per-flow state published in the registry. The core
/// library derives its flow-state objects from this.
class FlowStateBase {
 public:
  virtual ~FlowStateBase() = default;
};

/// Central flow-metadata registry (the paper's "central registry, e.g. a
/// master node": flow metadata is published on initialization and retrieved
/// by sources/targets before use).
///
/// In a distributed deployment the published metadata would be QP numbers,
/// rkeys and buffer addresses exchanged over the wire; in this in-process
/// emulation it is the flow-state object itself. The API shape (publish /
/// retrieve by unique flow name, blocking retrieve for races between
/// initializer and users) matches the paper's model.
class FlowRegistry {
 public:
  FlowRegistry() = default;

  FlowRegistry(const FlowRegistry&) = delete;
  FlowRegistry& operator=(const FlowRegistry&) = delete;

  /// Publishes a flow. Fails with AlreadyExists on duplicate names.
  Status Publish(const std::string& name,
                 std::shared_ptr<FlowStateBase> state);

  /// Retrieves a flow's state; NotFound if absent.
  StatusOr<std::shared_ptr<FlowStateBase>> Retrieve(
      const std::string& name) const;

  /// Blocking retrieve: waits until the flow is published (or the timeout
  /// expires).
  StatusOr<std::shared_ptr<FlowStateBase>> RetrieveBlocking(
      const std::string& name,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000))
      const;

  /// Removes a flow from the registry.
  Status Remove(const std::string& name);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unordered_map<std::string, std::shared_ptr<FlowStateBase>> flows_;
};

}  // namespace dfi

#endif  // DFI_REGISTRY_FLOW_REGISTRY_H_
