#ifndef DFI_REGISTRY_FLOW_REGISTRY_H_
#define DFI_REGISTRY_FLOW_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/exec/engine.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace dfi {

/// Opaque base for per-flow state published in the registry. The core
/// library derives its flow-state objects from this.
class FlowStateBase {
 public:
  virtual ~FlowStateBase() = default;

  /// Tears the flow down (fault handling): implementations poison their
  /// channels so every participant's next operation fails with `cause`.
  /// Default is a no-op for states with nothing to tear down.
  virtual void Abort(const Status& cause) { (void)cause; }
};

/// Single-node flow-metadata store (the paper's "central registry, e.g. a
/// master node": flow metadata is published on initialization and retrieved
/// by sources/targets before use).
///
/// In a distributed deployment the published metadata would be QP numbers,
/// rkeys and buffer addresses exchanged over the wire; in this in-process
/// emulation it is the flow-state object itself. The API shape (publish /
/// retrieve by unique flow name, blocking retrieve for races between
/// initializer and users) matches the paper's model.
///
/// Since the control-plane PR this class is also the storage engine of one
/// shard *replica* inside reg::RegistryService — the sharded, replicated
/// control plane that fronts it for million-flow deployments. Use
/// reg::RegistryClient for anything beyond a single-process test.
///
/// Race semantics (all deterministic in virtual time):
///   - RenewLease carries the renewer's virtual `now`: a renewal at or past
///     the current expiry fails the flow exactly as MarkExpired(now) would,
///     so renew-vs-scrub in the same virtual tick resolves identically in
///     either call order.
///   - Remove hands the removed entry off to retrievers already blocked in
///     RetrieveBlocking: a publish/remove pair can never starve a retriever
///     that was waiting when the pair landed. Retrievers that arrive after
///     the Remove wait for a fresh publish as usual.
class FlowRegistry {
 public:
  FlowRegistry() = default;

  FlowRegistry(const FlowRegistry&) = delete;
  FlowRegistry& operator=(const FlowRegistry&) = delete;

  /// Publishes a flow. Fails with AlreadyExists on duplicate names.
  Status Publish(const std::string& name,
                 std::shared_ptr<FlowStateBase> state);

  /// Publishes a flow with a liveness lease: the publisher promises to
  /// renew before `lease_expiry` (virtual time). Once the lease lapses —
  /// established by MarkExpired(now) or any PublisherAlive(name, now) probe
  /// past the expiry — the flow counts as failed and retrievals return
  /// kPeerFailed. `lease_expiry == 0` means no lease (same as Publish).
  Status PublishWithLease(const std::string& name,
                          std::shared_ptr<FlowStateBase> state,
                          SimTime lease_expiry);

  /// Extends a leased flow's expiry (heartbeat) at virtual time `now`.
  /// NotFound if absent; FailedPrecondition if the flow was already marked
  /// failed, or if `now >=` the current expiry — a too-late heartbeat does
  /// not resurrect a lapsed lease, it fails the flow (the same outcome a
  /// MarkExpired(now) in the same virtual tick would have produced, no
  /// matter which call ran first).
  Status RenewLease(const std::string& name, SimTime now, SimTime new_expiry);

  /// Marks a flow's publisher as failed (crash detection, e.g. by a fault
  /// plan or an operator) and aborts the flow state so blocked
  /// participants unwind. Subsequent retrievals fail with `cause`.
  Status MarkFailed(const std::string& name, const Status& cause);

  /// Fails every leased flow whose lease expired at or before `now`
  /// (virtual time); returns how many flows were newly failed. The
  /// emulation's stand-in for the registry's background lease scrubber.
  size_t MarkExpired(SimTime now);

  /// True while the flow is published and not failed, and (when leased) the
  /// lease covers `now`. A probe past the expiry fails the flow as a side
  /// effect, so liveness answers are monotonic.
  bool PublisherAlive(const std::string& name, SimTime now);

  /// Retrieves a flow's state; NotFound if absent, kPeerFailed (the
  /// MarkFailed cause) if its publisher failed. The overload also reports
  /// the flow's lease expiry (0 = unleased) so callers that cache the
  /// result can fence it client-side.
  StatusOr<std::shared_ptr<FlowStateBase>> Retrieve(
      const std::string& name) const;
  StatusOr<std::shared_ptr<FlowStateBase>> Retrieve(
      const std::string& name, SimTime* lease_expiry) const;

  /// Blocking retrieve: waits until the flow is published. Fails with
  /// kDeadlineExceeded once the timeout elapses (the caller's bounded
  /// retrieve deadline, not a transient unavailability).
  ///
  /// Dual-mode: on a plain thread the timeout is real time (cv wait,
  /// byte-for-byte the historical behavior); inside an exec::Engine task
  /// the fiber parks and the timeout is *virtual* time measured from
  /// `clock->now()` (0 if no clock), so an idle fleet jumps straight to the
  /// deadline instead of burning wall clock, and the deadline is charged to
  /// `clock` on expiry.
  StatusOr<std::shared_ptr<FlowStateBase>> RetrieveBlocking(
      const std::string& name,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000),
      VirtualClock* clock = nullptr);

  /// Removes a flow from the registry. Retrievers already blocked on the
  /// name receive the removed entry (publish/remove handoff, see class
  /// comment) instead of waiting out their full timeout.
  Status Remove(const std::string& name);

  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<FlowStateBase> state;
    SimTime lease_expiry = 0;  // 0 = no lease
    bool failed = false;
    Status fail_cause;
  };

  /// Blocked-retriever bookkeeping for one name. `handoff` retains the
  /// entry of a Remove that landed while retrievers with a ticket below
  /// `handoff_ticket_limit` were already waiting.
  struct PendingWait {
    uint32_t waiters = 0;
    bool has_handoff = false;
    uint64_t handoff_ticket_limit = 0;
    Entry handoff;
  };

  /// Marks `entry` failed and aborts its state. Caller holds mu_.
  static void FailLocked(Entry* entry, const Status& cause);

  /// Bumps the change version and wakes both thread- and engine-mode
  /// waiters. Call *after* releasing mu_.
  void NotifyChanged();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::atomic<uint64_t> version_{0};
  mutable exec::WaitPoint wp_;
  uint64_t next_ticket_ = 0;
  std::unordered_map<std::string, Entry> flows_;
  std::unordered_map<std::string, PendingWait> pending_;
};

}  // namespace dfi

#endif  // DFI_REGISTRY_FLOW_REGISTRY_H_
