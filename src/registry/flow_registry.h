#ifndef DFI_REGISTRY_FLOW_REGISTRY_H_
#define DFI_REGISTRY_FLOW_REGISTRY_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/sim_time.h"
#include "common/status.h"

namespace dfi {

/// Opaque base for per-flow state published in the registry. The core
/// library derives its flow-state objects from this.
class FlowStateBase {
 public:
  virtual ~FlowStateBase() = default;

  /// Tears the flow down (fault handling): implementations poison their
  /// channels so every participant's next operation fails with `cause`.
  /// Default is a no-op for states with nothing to tear down.
  virtual void Abort(const Status& cause) { (void)cause; }
};

/// Central flow-metadata registry (the paper's "central registry, e.g. a
/// master node": flow metadata is published on initialization and retrieved
/// by sources/targets before use).
///
/// In a distributed deployment the published metadata would be QP numbers,
/// rkeys and buffer addresses exchanged over the wire; in this in-process
/// emulation it is the flow-state object itself. The API shape (publish /
/// retrieve by unique flow name, blocking retrieve for races between
/// initializer and users) matches the paper's model.
class FlowRegistry {
 public:
  FlowRegistry() = default;

  FlowRegistry(const FlowRegistry&) = delete;
  FlowRegistry& operator=(const FlowRegistry&) = delete;

  /// Publishes a flow. Fails with AlreadyExists on duplicate names.
  Status Publish(const std::string& name,
                 std::shared_ptr<FlowStateBase> state);

  /// Publishes a flow with a liveness lease: the publisher promises to
  /// renew before `lease_expiry` (virtual time). Once the lease lapses —
  /// established by MarkExpired(now) or any PublisherAlive(name, now) probe
  /// past the expiry — the flow counts as failed and retrievals return
  /// kPeerFailed. `lease_expiry == 0` means no lease (same as Publish).
  Status PublishWithLease(const std::string& name,
                          std::shared_ptr<FlowStateBase> state,
                          SimTime lease_expiry);

  /// Extends a leased flow's expiry (heartbeat). NotFound if absent;
  /// FailedPrecondition if the flow was already marked failed.
  Status RenewLease(const std::string& name, SimTime new_expiry);

  /// Marks a flow's publisher as failed (crash detection, e.g. by a fault
  /// plan or an operator) and aborts the flow state so blocked
  /// participants unwind. Subsequent retrievals fail with `cause`.
  Status MarkFailed(const std::string& name, const Status& cause);

  /// Fails every leased flow whose lease expired at or before `now`
  /// (virtual time); returns how many flows were newly failed. The
  /// emulation's stand-in for the registry's background lease scrubber.
  size_t MarkExpired(SimTime now);

  /// True while the flow is published and not failed, and (when leased) the
  /// lease covers `now`. A probe past the expiry fails the flow as a side
  /// effect, so liveness answers are monotonic.
  bool PublisherAlive(const std::string& name, SimTime now);

  /// Retrieves a flow's state; NotFound if absent, kPeerFailed (the
  /// MarkFailed cause) if its publisher failed.
  StatusOr<std::shared_ptr<FlowStateBase>> Retrieve(
      const std::string& name) const;

  /// Blocking retrieve: waits until the flow is published. Fails with
  /// kDeadlineExceeded once the timeout elapses (the caller's bounded
  /// retrieve deadline, not a transient unavailability). Real-time API for
  /// driver threads only — engine tasks must use Retrieve() in a parked
  /// retry loop instead of occupying a scheduler worker (checked).
  StatusOr<std::shared_ptr<FlowStateBase>> RetrieveBlocking(
      const std::string& name,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000))
      const;

  /// Removes a flow from the registry.
  Status Remove(const std::string& name);

  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<FlowStateBase> state;
    SimTime lease_expiry = 0;  // 0 = no lease
    bool failed = false;
    Status fail_cause;
  };

  /// Marks `entry` failed and aborts its state. Caller holds mu_.
  static void FailLocked(Entry* entry, const Status& cause);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unordered_map<std::string, Entry> flows_;
};

}  // namespace dfi

#endif  // DFI_REGISTRY_FLOW_REGISTRY_H_
