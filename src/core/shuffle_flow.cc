#include "core/shuffle_flow.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// ShuffleFlowState
// ---------------------------------------------------------------------------

ShuffleFlowState::ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();

  const uint32_t n = num_sources();
  const uint32_t m = num_targets();
  DFI_CHECK_GT(n, 0u);
  DFI_CHECK_GT(m, 0u);
  target_gates_ = std::make_unique<RingSync[]>(m);
  channels_.resize(static_cast<size_t>(n) * m);
  const uint32_t tuple_size =
      static_cast<uint32_t>(spec_.schema.tuple_size());
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < m; ++t) {
      auto channel = std::make_unique<ChannelShared>(
          env_->context(target_nodes_[t]), spec_.options, tuple_size,
          static_cast<uint16_t>(s));
      channel->set_target_gate(&target_gates_[t]);
      channels_[static_cast<size_t>(s) * m + t] = std::move(channel);
    }
  }
}

uint64_t ShuffleFlowState::RingBytesOnNode(net::NodeId node) const {
  uint64_t bytes = 0;
  for (const auto& ch : channels_) {
    if (ch->target_node() == node) {
      bytes += ch->ring().total_bytes() + 64;  // ring + credit counter
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// ShuffleSource
// ---------------------------------------------------------------------------

ShuffleSource::ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  routing_ = state_->spec().routing
                 ? state_->spec().routing
                 : KeyHashRouting(state_->spec().shuffle_key_index);
  rdma::RdmaContext* ctx =
      state_->env()->context(state_->source_node(source_index_));
  const uint32_t m = state_->num_targets();
  channels_.reserve(m);
  for (uint32_t t = 0; t < m; ++t) {
    channels_.push_back(std::make_unique<ChannelSource>(
        state_->channel(source_index_, t), ctx, &clock_));
  }
}

Status ShuffleSource::Push(const void* tuple) {
  const uint32_t target = routing_(
      TupleView(static_cast<const uint8_t*>(tuple), &state_->spec().schema),
      state_->num_targets());
  if (target >= state_->num_targets()) {
    return Status::OutOfRange("routing function returned target " +
                              std::to_string(target) + " of " +
                              std::to_string(state_->num_targets()));
  }
  return channels_[target]->Push(
      tuple, static_cast<uint32_t>(schema().tuple_size()));
}

Status ShuffleSource::PushTo(const void* tuple, uint32_t target_index) {
  if (target_index >= state_->num_targets()) {
    return Status::OutOfRange("target index " +
                              std::to_string(target_index));
  }
  return channels_[target_index]->Push(
      tuple, static_cast<uint32_t>(schema().tuple_size()));
}

Status ShuffleSource::Flush() {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->Flush());
  }
  return Status::OK();
}

Status ShuffleSource::Close() {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->Close());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ShuffleTarget
// ---------------------------------------------------------------------------

ShuffleTarget::ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t target_index)
    : state_(std::move(state)),
      target_index_(target_index),
      config_(&state_->env()->config()) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  const uint32_t n = state_->num_sources();
  cursors_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    cursors_.push_back(std::make_unique<ChannelTargetCursor>(
        state_->channel(s, target_index_), &clock_));
  }
}

bool ShuffleTarget::TryConsumeSegment(SegmentView* out,
                                      ConsumeResult* out_result) {
  // Release the previously returned segment.
  if (held_cursor_ >= 0) {
    cursors_[held_cursor_]->Release();
    held_cursor_ = -1;
  }
  const uint32_t n = static_cast<uint32_t>(cursors_.size());
  uint32_t exhausted = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t idx = (rr_index_ + i) % n;
    ChannelTargetCursor& cursor = *cursors_[idx];
    if (cursor.exhausted()) {
      ++exhausted;
      continue;
    }
    SegmentView view;
    if (cursor.TryConsume(&view)) {
      clock_.Advance(config_->consume_segment_fixed_ns);
      if (view.bytes == 0) {
        // Pure end-of-flow marker: recycle silently. (End markers may also
        // carry a final partial payload; those are surfaced normally.)
        cursor.Release();
        if (cursor.exhausted()) ++exhausted;
        continue;
      }
      rr_index_ = (idx + 1) % n;
      held_cursor_ = static_cast<int>(idx);
      *out = view;
      *out_result = ConsumeResult::kOk;
      return true;
    }
    clock_.Advance(config_->consume_poll_ns);
  }
  if (exhausted == n) {
    *out_result = ConsumeResult::kFlowEnd;
    return true;  // definitive answer
  }
  return false;
}

ConsumeResult ShuffleTarget::ConsumeSegment(SegmentView* out) {
  RingSync* gate = state_->target_gate(target_index_);
  for (;;) {
    // Capture the gate version before scanning so a delivery racing with
    // the scan is never missed.
    const uint64_t version = gate->version();
    ConsumeResult result;
    if (TryConsumeSegment(out, &result)) return result;
    gate->WaitChanged(version);
  }
}

ConsumeResult ShuffleTarget::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema().tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, &schema());
      tuple_offset_ += tuple_size;
      clock_.Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r == ConsumeResult::kFlowEnd) return r;
    current_ = view;
  }
}

}  // namespace dfi
