#include "core/shuffle_flow.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "core/deadline.h"

namespace dfi {

// ---------------------------------------------------------------------------
// ShuffleFlowState
// ---------------------------------------------------------------------------

ShuffleFlowState::ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();

  const uint32_t n = num_sources();
  const uint32_t m = num_targets();
  DFI_CHECK_GT(n, 0u);
  DFI_CHECK_GT(m, 0u);
  target_gates_ = std::make_unique<ReadyGate[]>(m);
  channels_.resize(static_cast<size_t>(n) * m);
  const uint32_t tuple_size =
      static_cast<uint32_t>(spec_.schema.tuple_size());
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < m; ++t) {
      auto channel = std::make_unique<ChannelShared>(
          env_->context(target_nodes_[t]), spec_.options, tuple_size,
          static_cast<uint16_t>(s));
      channel->set_target_gate(&target_gates_[t]);
      channels_[static_cast<size_t>(s) * m + t] = std::move(channel);
    }
  }
}

void ShuffleFlowState::Abort(const Status& cause) {
  // Poison wakes both halves of every channel (sync + target gate), so
  // blocked sources and targets observe the teardown promptly.
  for (auto& ch : channels_) ch->Poison(cause);
}

uint64_t ShuffleFlowState::RingBytesOnNode(net::NodeId node) const {
  uint64_t bytes = 0;
  for (const auto& ch : channels_) {
    if (ch->target_node() == node) {
      bytes += ch->ring().total_bytes() + 64;  // ring + credit counter
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// ShuffleSource
// ---------------------------------------------------------------------------

ShuffleSource::ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t source_index)
    : state_(std::move(state)),
      source_index_(source_index),
      tuple_size_(
          static_cast<uint32_t>(state_->spec().schema.tuple_size())),
      target_mod_(state_->num_targets()) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  routing_spec_ = state_->spec().routing.set()
                      ? state_->spec().routing
                      : KeyHashRouting(state_->spec().shuffle_key_index);
  routing_ = routing_spec_.MakeFn();
  rdma::RdmaContext* ctx =
      state_->env()->context(state_->source_node(source_index_));
  const uint32_t m = state_->num_targets();
  channels_.reserve(m);
  for (uint32_t t = 0; t < m; ++t) {
    channels_.push_back(std::make_unique<ChannelSource>(
        state_->channel(source_index_, t), ctx, &clock_));
  }
  batch_cursors_.resize(m);
}

Status ShuffleSource::Push(const void* tuple) {
  const uint32_t target = routing_(
      TupleView(static_cast<const uint8_t*>(tuple), &state_->spec().schema),
      state_->num_targets());
  if (target >= state_->num_targets()) {
    return Status::OutOfRange("routing function returned target " +
                              std::to_string(target) + " of " +
                              std::to_string(state_->num_targets()));
  }
  return channels_[target]->Push(tuple, tuple_size_);
}

Status ShuffleSource::PushTo(const void* tuple, uint32_t target_index) {
  if (target_index >= state_->num_targets()) {
    return Status::OutOfRange("target index " +
                              std::to_string(target_index));
  }
  return channels_[target_index]->Push(tuple, tuple_size_);
}

Status ShuffleSource::AppendRun(uint32_t target, const uint8_t* run,
                                size_t n) {
  ChannelSource& ch = *channels_[target];
  const uint32_t ts = tuple_size_;
  while (n > 0) {
    uint32_t granted = 0;
    uint8_t* dst = nullptr;
    DFI_RETURN_IF_ERROR(ch.ReserveTuples(
        static_cast<uint32_t>(std::min<size_t>(n, UINT32_MAX)), &granted,
        &dst));
    DFI_CHECK_GT(granted, 0u);
    std::memcpy(dst, run, static_cast<size_t>(granted) * ts);
    DFI_RETURN_IF_ERROR(ch.CommitTuples(granted));
    run += static_cast<size_t>(granted) * ts;
    n -= granted;
  }
  return Status::OK();
}

Status ShuffleSource::PushBatch(const void* tuples, size_t count) {
  if (count == 0) return Status::OK();
  if (count > UINT32_MAX) {
    return Status::InvalidArgument("batch too large; split it");
  }
  const uint8_t* base = static_cast<const uint8_t*>(tuples);
  const uint32_t ts = tuple_size_;
  const uint32_t m = state_->num_targets();
  if (m == 1) {
    // Degenerate partitioning: the whole run goes to target 0 as wide
    // copies, no per-tuple work at all.
    return AppendRun(0, base, count);
  }

  // One fused sweep: partition each tuple (devirtualized for the builtin
  // partitioners — the only indirect call left is this function itself)
  // and copy it straight into its channel's open reservation. Per-tuple
  // Push order per target is preserved because tuples are emitted in batch
  // order.
  for (auto& cur : batch_cursors_) cur = BatchCursor{};
  Status status;
  // Commits whatever `cur` wrote into its open reservation (transmitting
  // the now full segment) and opens the next one.
  auto refill = [&](BatchCursor& cur, uint32_t target) {
    ChannelSource& ch = *channels_[target];
    if (cur.dst != cur.start) {
      status = ch.CommitTuples(
          static_cast<uint32_t>((cur.dst - cur.start) / ts));
      if (!status.ok()) return false;
    }
    uint32_t granted = 0;
    status = ch.ReserveTuples(UINT32_MAX, &granted, &cur.start);
    if (!status.ok()) return false;
    DFI_CHECK_GT(granted, 0u);
    cur.dst = cur.start;
    cur.end = cur.start + static_cast<size_t>(granted) * ts;
    return true;
  };
  auto emit = [&](uint32_t target, const uint8_t* tuple) {
    BatchCursor& cur = batch_cursors_[target];
    if (cur.dst == cur.end && !refill(cur, target)) return false;
    if (ts == 8) {
      // Dominant case (8-byte tuples): a single load/store pair.
      std::memcpy(cur.dst, tuple, 8);
    } else {
      std::memcpy(cur.dst, tuple, ts);
    }
    cur.dst += ts;
    return true;
  };

  const Schema& schema = state_->spec().schema;
  switch (routing_spec_.kind()) {
    case RoutingSpec::Kind::kKeyHash: {
      const size_t off = schema.offset(routing_spec_.key_field_index());
      const size_t key_size =
          schema.field_size(routing_spec_.key_field_index());
      // Two-pass blocks: a tight partition loop (vectorizable hash, then
      // magic-number modulo) followed by the scatter; splitting the passes
      // keeps the hash chain and the copy chain independently pipelined.
      constexpr size_t kBlock = 512;
      const uint8_t* p = base;
      if (ts == 8 && off == 0 && key_size == 8) {
        // Dominant case — the tuple IS an 8-byte key: the hash pass runs
        // over a dense u64 run (SIMD via HashKeys8), the modulo reduces to
        // a mask when num_targets is a power of two, and the scatter is a
        // fixed-width load/store pair per tuple.
        uint64_t h[kBlock];
        const bool pow2 = target_mod_.pow2();
        const uint64_t mask = target_mod_.mask();
        for (size_t done = 0; done < count;) {
          const size_t n = std::min(kBlock, count - done);
          HashKeys8(p, n, h);
          for (size_t j = 0; j < n; ++j, p += 8) {
            const uint32_t target = static_cast<uint32_t>(
                pow2 ? (h[j] & mask) : target_mod_.Mod(h[j]));
            BatchCursor& cur = batch_cursors_[target];
            if (cur.dst == cur.end && !refill(cur, target)) return status;
            std::memcpy(cur.dst, p, 8);
            cur.dst += 8;
          }
          done += n;
        }
        break;
      }
      uint32_t tgt[kBlock];
      for (size_t done = 0; done < count;) {
        const size_t n = std::min(kBlock, count - done);
        const uint8_t* q = p + off;
        if (key_size == 8) {
          // 8-byte keys load directly (arbitrary stride / offset).
          for (size_t j = 0; j < n; ++j, q += ts) {
            uint64_t k;
            std::memcpy(&k, q, 8);
            tgt[j] = static_cast<uint32_t>(target_mod_.Mod(HashU64(k)));
          }
        } else {
          for (size_t j = 0; j < n; ++j, q += ts) {
            tgt[j] = static_cast<uint32_t>(
                target_mod_.Mod(HashU64(ReadKeyBytes(q, key_size))));
          }
        }
        for (size_t j = 0; j < n; ++j, p += ts) {
          if (!emit(tgt[j], p)) return status;
        }
        done += n;
      }
      break;
    }
    case RoutingSpec::Kind::kRadix: {
      const size_t off = schema.offset(routing_spec_.key_field_index());
      const size_t key_size =
          schema.field_size(routing_spec_.key_field_index());
      const uint32_t shift = routing_spec_.shift();
      const uint32_t bits = routing_spec_.bits();
      const uint8_t* p = base;
      for (size_t i = 0; i < count; ++i, p += ts) {
        const uint32_t part =
            RadixBits(ReadKeyBytes(p + off, key_size), shift, bits);
        DFI_DCHECK(part < m);
        if (part >= m) {
          return Status::OutOfRange("routing function returned target " +
                                    std::to_string(part) + " of " +
                                    std::to_string(m));
        }
        if (!emit(part, p)) return status;
      }
      break;
    }
    default: {  // kGeneric (kUnset is resolved away at construction)
      const uint8_t* p = base;
      for (size_t i = 0; i < count; ++i, p += ts) {
        const uint32_t target = routing_(TupleView(p, &schema), m);
        if (target >= m) {
          return Status::OutOfRange("routing function returned target " +
                                    std::to_string(target) + " of " +
                                    std::to_string(m));
        }
        if (!emit(target, p)) return status;
      }
      break;
    }
  }

  // Commit the partial tail reservations of every touched target.
  for (uint32_t t = 0; t < m; ++t) {
    const BatchCursor& cur = batch_cursors_[t];
    if (cur.dst != cur.start) {
      DFI_RETURN_IF_ERROR(channels_[t]->CommitTuples(
          static_cast<uint32_t>((cur.dst - cur.start) / ts)));
    }
  }
  return Status::OK();
}

Status ShuffleSource::Flush() {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->Flush());
  }
  return Status::OK();
}

Status ShuffleSource::Close() {
  // Attempt every channel even after a failure: targets whose channel did
  // close should not be starved of their end-of-flow marker because a
  // sibling channel's close failed.
  Status first;
  for (auto& ch : channels_) {
    Status s = ch->Close();
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  return first;
}

void ShuffleSource::Abort(const Status& cause) {
  for (auto& ch : channels_) ch->Abort(cause);
}

// ---------------------------------------------------------------------------
// ShuffleTarget
// ---------------------------------------------------------------------------

ShuffleTarget::ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t target_index)
    : state_(std::move(state)),
      target_index_(target_index),
      config_(&state_->env()->config()) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  const uint32_t n = state_->num_sources();
  cursors_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    cursors_.push_back(std::make_unique<ChannelTargetCursor>(
        state_->channel(s, target_index_), &clock_));
  }
}

void ShuffleTarget::ReleaseHeld() {
  if (held_cursor_ < 0) return;
  ChannelTargetCursor& held = *cursors_[held_cursor_];
  // A held cursor is never already exhausted (exhaustion happens on the
  // release of the end-of-flow segment), so exhausted() flipping true here
  // is exactly the transition.
  held.Release();
  if (held.exhausted()) ++exhausted_count_;
  held_cursor_ = -1;
}

bool ShuffleTarget::TryConsumeSegment(SegmentView* out,
                                      ConsumeResult* out_result) {
  // Release the previously returned segment.
  ReleaseHeld();
  // Pop delivered channels off the ready list instead of scanning all
  // rings: cost is O(deliveries handled), independent of how many source
  // channels sit idle.
  ReadyGate* gate = state_->target_gate(target_index_);
  uint32_t idx = 0;
  while (gate->TryDequeue(&idx)) {
    ChannelTargetCursor& cursor = *cursors_[idx];
    if (cursor.exhausted()) continue;  // stale entry, already drained
    SegmentView view;
    if (!cursor.TryConsume(&view)) {
      // Entry raced an earlier pop that consumed this delivery.
      clock_.Advance(config_->consume_poll_ns);
      continue;
    }
    clock_.Advance(config_->consume_segment_fixed_ns);
    if (view.bytes == 0) {
      // Pure end-of-flow marker: recycle silently. (End markers may also
      // carry a final partial payload; those are surfaced normally.)
      cursor.Release();
      if (cursor.exhausted()) ++exhausted_count_;
      continue;
    }
    held_cursor_ = static_cast<int>(idx);
    *out = view;
    *out_result = ConsumeResult::kOk;
    return true;
  }
  if (exhausted_count_ == cursors_.size()) {
    *out_result = ConsumeResult::kFlowEnd;
    return true;  // definitive answer
  }
  // Nothing consumable: surface teardown through the non-blocking path too
  // (already-delivered segments above still drain ahead of the error).
  for (auto& cursor : cursors_) {
    if (!cursor->exhausted() && cursor->shared()->poisoned()) {
      last_status_ = cursor->shared()->poison_status();
      *out_result = ConsumeResult::kError;
      return true;
    }
  }
  return false;
}

bool ShuffleTarget::CheckFailure(DeadlineWait* wait,
                                 ConsumeResult* out_result) {
  // A crashed source never sends its end-of-flow marker; ask the fault
  // plan so the failure surfaces as kPeerFailed instead of waiting out the
  // full deadline. (Poison is detected in TryConsumeSegment.)
  const net::FaultPlan* plan =
      cursors_.empty() ? nullptr : cursors_[0]->shared()->fault_plan();
  if (plan != nullptr && plan->active()) {
    const SimTime now = wait->ProvisionalNow();
    for (uint32_t s = 0; s < cursors_.size(); ++s) {
      if (cursors_[s]->exhausted()) continue;
      const net::NodeId src = state_->source_node(s);
      if (src != net::kInvalidNode && !plan->NodeAlive(src, now)) {
        last_status_ = Status::PeerFailed(
            "shuffle source " + std::to_string(s) + " on node " +
            std::to_string(src) + " failed before closing its channel");
        wait->Commit();
        *out_result = ConsumeResult::kError;
        return true;
      }
    }
  }
  if (!wait->Tick()) {
    last_status_ = Status::DeadlineExceeded(
        "consume deadline elapsed with " +
        std::to_string(cursors_.size() - exhausted_count_) +
        " source channel(s) still open");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  return false;
}

ConsumeResult ShuffleTarget::ConsumeSegment(SegmentView* out) {
  ReadyGate* gate = state_->target_gate(target_index_);
  DeadlineWait wait(state_->spec().options, &clock_);
  for (;;) {
    // Capture the gate version before scanning so a delivery racing with
    // the scan is never missed.
    const uint64_t version = gate->version();
    ConsumeResult result;
    if (TryConsumeSegment(out, &result)) return result;
    if (CheckFailure(&wait, &result)) return result;
    gate->WaitChangedFor(version, DeadlineWait::kRealSlice);
  }
}

ConsumeResult ShuffleTarget::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema().tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, &schema());
      tuple_offset_ += tuple_size;
      clock_.Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r != ConsumeResult::kOk) return r;
    current_ = view;
  }
}

void ShuffleTarget::Abort(const Status& cause) {
  for (auto& cursor : cursors_) cursor->shared()->Poison(cause);
}

}  // namespace dfi
