#include "core/shuffle_flow.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// ShuffleFlowState
// ---------------------------------------------------------------------------

ShuffleFlowState::ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  DFI_CHECK_GT(num_sources(), 0u);
  DFI_CHECK_GT(num_targets(), 0u);
  matrix_ = ChannelMatrix(
      env_, spec_.options,
      static_cast<uint32_t>(spec_.schema.tuple_size()), num_sources(),
      target_nodes_);

  // Work-stealing plane: shared per-target columns grouped per node, plus
  // the group wakeups every delivery bumps. Disabled under ordered_handoff
  // (a stolen segment would reorder app-level per-key processing across
  // sink threads).
  const AdaptiveShuffleOptions& adaptive = spec_.options.adaptive;
  if (adaptive.enabled && adaptive.work_stealing &&
      !adaptive.ordered_handoff) {
    steal_columns_.reserve(num_targets());
    group_of_target_.resize(num_targets());
    std::vector<net::NodeId> group_nodes;
    for (uint32_t t = 0; t < num_targets(); ++t) {
      steal_columns_.push_back(
          std::make_unique<StealColumn>(&matrix_, t));
      SinkStealGroup* group = nullptr;
      for (size_t g = 0; g < group_nodes.size(); ++g) {
        if (group_nodes[g] == target_nodes_[t]) {
          group = steal_groups_[g].get();
          break;
        }
      }
      if (group == nullptr) {
        steal_groups_.push_back(std::make_unique<SinkStealGroup>());
        group_nodes.push_back(target_nodes_[t]);
        group = steal_groups_.back().get();
      }
      group->AddColumn(steal_columns_.back().get());
      group_of_target_[t] = group;
    }
    for (uint32_t s = 0; s < num_sources(); ++s) {
      for (uint32_t t = 0; t < num_targets(); ++t) {
        matrix_.channel(s, t)->set_steal_wake(&group_of_target_[t]->wake());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ShuffleSource
// ---------------------------------------------------------------------------

ShuffleSource::ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  const RoutingSpec routing =
      state_->spec().routing.set()
          ? state_->spec().routing
          : KeyHashRouting(state_->spec().shuffle_key_index);
  partitioner_ = Partitioner::FromRouting(routing, &state_->spec().schema,
                                          state_->num_targets());
  if (state_->spec().options.adaptive.enabled) {
    // Adaptive routing wraps the key-hash geometry; InitShuffleFlow
    // rejects adaptive specs with a non-key-hash routing override.
    DFI_CHECK(routing.kind() == RoutingSpec::Kind::kKeyHash)
        << "adaptive shuffle requires key-hash routing";
    adaptive_.emplace(&state_->spec().schema, routing.key_field_index(),
                      state_->target_nodes(),
                      state_->spec().options.adaptive,
                      state_->matrix()->load_board());
  }
  endpoint_.emplace(
      state_->matrix(), source_index_,
      state_->env()->context(state_->source_node(source_index_)), &clock_);
}

// ---------------------------------------------------------------------------
// ShuffleTarget
// ---------------------------------------------------------------------------

ShuffleTarget::ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t target_index)
    : state_(std::move(state)), target_index_(target_index) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  if (StealColumn* column = state_->steal_column(target_index_);
      column != nullptr) {
    sink_.emplace(column, state_->steal_group_of(target_index_),
                  &state_->spec().schema, &state_->env()->config(), &clock_,
                  "shuffle", state_->source_nodes());
  } else {
    sink_.emplace(state_->matrix(), target_index_, &state_->spec().schema,
                  &state_->env()->config(), &clock_, "shuffle",
                  state_->source_nodes());
  }
}

}  // namespace dfi
