#include "core/shuffle_flow.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// ShuffleFlowState
// ---------------------------------------------------------------------------

ShuffleFlowState::ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  DFI_CHECK_GT(num_sources(), 0u);
  DFI_CHECK_GT(num_targets(), 0u);
  matrix_ = ChannelMatrix(
      env_, spec_.options,
      static_cast<uint32_t>(spec_.schema.tuple_size()), num_sources(),
      target_nodes_);
}

// ---------------------------------------------------------------------------
// ShuffleSource
// ---------------------------------------------------------------------------

ShuffleSource::ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  const RoutingSpec routing =
      state_->spec().routing.set()
          ? state_->spec().routing
          : KeyHashRouting(state_->spec().shuffle_key_index);
  partitioner_ = Partitioner::FromRouting(routing, &state_->spec().schema,
                                          state_->num_targets());
  endpoint_.emplace(
      state_->matrix(), source_index_,
      state_->env()->context(state_->source_node(source_index_)), &clock_);
}

// ---------------------------------------------------------------------------
// ShuffleTarget
// ---------------------------------------------------------------------------

ShuffleTarget::ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                             uint32_t target_index)
    : state_(std::move(state)), target_index_(target_index) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  sink_.emplace(state_->matrix(), target_index_, &state_->spec().schema,
                &state_->env()->config(), &clock_, "shuffle",
                state_->source_nodes());
}

}  // namespace dfi
