#include "core/graph/lowering.h"

namespace dfi::graph {

ShuffleFlowSpec LowerShuffleEdge(const EdgeSpec& edge, const VertexSpec& from,
                                 const VertexSpec& to) {
  ShuffleFlowSpec spec;
  spec.name = edge.name;
  spec.sources = from.workers;
  spec.targets = to.workers;
  spec.schema = edge.type.schema;
  spec.shuffle_key_index = edge.key_index;
  spec.routing = edge.routing;
  spec.options = edge.options;
  return spec;
}

ReplicateFlowSpec LowerReplicateEdge(const EdgeSpec& edge,
                                     const VertexSpec& from,
                                     const VertexSpec& to) {
  ReplicateFlowSpec spec;
  spec.name = edge.name;
  spec.sources = from.workers;
  spec.targets = to.workers;
  spec.schema = edge.type.schema;
  spec.options = edge.options;
  return spec;
}

CombinerFlowSpec LowerCombinerEdge(const EdgeSpec& edge,
                                   const VertexSpec& from,
                                   const VertexSpec& to) {
  CombinerFlowSpec spec;
  spec.name = edge.name;
  spec.sources = from.workers;
  spec.targets = to.workers;
  spec.schema = edge.type.schema;
  spec.group_by_index = edge.key_index;
  spec.global_aggregate = edge.global_aggregate;
  spec.aggregates = edge.aggregates;
  spec.multi_node_targets = edge.multi_node_targets;
  spec.options = edge.options;
  return spec;
}

}  // namespace dfi::graph
