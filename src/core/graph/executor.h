#ifndef DFI_CORE_GRAPH_EXECUTOR_H_
#define DFI_CORE_GRAPH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec/engine.h"
#include "common/status.h"
#include "core/combiner_flow.h"
#include "core/graph/graph.h"
#include "core/replicate_flow.h"
#include "core/shuffle_flow.h"

namespace dfi::graph {

/// One instantiated (lowered) dataflow graph: every edge's flow state is
/// constructed and published through a single batched control-plane RPC,
/// and each built-in operator runs one actor per worker endpoint.
/// Obtained from Graph::Instantiate; lifecycle:
///
///   auto run = DFI_TRY(g.Instantiate(&dfi));
///   DFI_CHECK_OK(run->Start());     // spawns the operator actors
///   ...                             // drive kCustom vertices via Claim*
///   DFI_CHECK_OK(run->Finish());    // joins actors, removes the flows
///
/// Start/Finish follow the dual-mode actor convention (ActorGroup): called
/// from inside a running engine task the operators become engine actors in
/// their placement's node domain — deterministic at any worker-pool size —
/// and plain OS threads otherwise.
class GraphRun {
 public:
  ~GraphRun();

  GraphRun(const GraphRun&) = delete;
  GraphRun& operator=(const GraphRun&) = delete;

  /// Spawns one actor per worker of every built-in vertex (kCustom vertices
  /// are the application's job — see Claim*). Idempotence is not supported;
  /// call once.
  Status Start();

  /// Joins all operator actors, then removes every edge's flow from the
  /// registry (one batched RPC). Returns the first operator failure; on
  /// failure the whole graph was already torn down (every edge poisoned) so
  /// no actor deadlocks on a dead peer.
  Status Finish();

  /// First operator failure so far (OK while healthy). Threadsafe.
  Status status() const;

  // ---- kCustom endpoint claims -------------------------------------------
  /// Handles onto an edge's flow for application-driven (kCustom) vertices.
  /// `worker` is the vertex-local worker index (= endpoint index of every
  /// adjacent edge). The edge must be of the matching kind; the claimed
  /// side's vertex must be the kCustom one being driven.
  StatusOr<std::unique_ptr<ShuffleSource>> ClaimShuffleSource(
      const std::string& edge, uint32_t worker);
  StatusOr<std::unique_ptr<ShuffleTarget>> ClaimShuffleTarget(
      const std::string& edge, uint32_t worker);
  StatusOr<std::unique_ptr<ReplicateSource>> ClaimReplicateSource(
      const std::string& edge, uint32_t worker);
  StatusOr<std::unique_ptr<ReplicateTarget>> ClaimReplicateTarget(
      const std::string& edge, uint32_t worker);
  StatusOr<std::unique_ptr<CombinerSource>> ClaimCombinerSource(
      const std::string& edge, uint32_t worker);
  StatusOr<std::unique_ptr<CombinerTarget>> ClaimCombinerTarget(
      const std::string& edge, uint32_t worker);

  // ---- Observability ------------------------------------------------------
  /// Post-Finish per-vertex totals, summed over the vertex's workers.
  struct VertexStats {
    uint64_t tuples_in = 0;
    uint64_t tuples_out = 0;
    uint64_t join_matches = 0;  ///< kJoin only
    /// Max final virtual time over the vertex's driving clocks (consume
    /// side for operators with inputs, push side for sources).
    SimTime max_clock = 0;
  };
  /// Stats of vertex `name`; zeroes for kCustom/unknown vertices.
  VertexStats stats(const std::string& name) const;

  const Graph& graph() const { return graph_; }

 private:
  friend class Graph;

  /// Per-edge lowered flow state; exactly one member is set, matching the
  /// edge kind.
  struct EdgeState {
    std::shared_ptr<ShuffleFlowState> shuffle;
    std::shared_ptr<ReplicateFlowState> replicate;
    std::shared_ptr<CombinerFlowState> combiner;
  };

  GraphRun(Graph graph, DfiRuntime* dfi, std::vector<EdgeState> edges);

  /// Records the first failure and poisons every edge so blocked peers
  /// observe the teardown instead of waiting forever.
  void Fail(const std::string& vertex, const Status& status);
  void AccumulateStats(int vertex, const VertexStats& worker_stats);

  /// One operator worker, dispatched on the vertex kind. Returns the
  /// worker-local stats through `out`.
  Status RunWorker(int vertex, uint32_t worker, VertexStats* out);
  Status RunSource(int vertex, uint32_t worker, VertexStats* out);
  Status RunTransformLike(int vertex, uint32_t worker, VertexStats* out);
  Status RunAggregate(int vertex, uint32_t worker, VertexStats* out);
  Status RunJoin(int vertex, uint32_t worker, VertexStats* out);
  Status RunSink(int vertex, uint32_t worker, VertexStats* out);

  StatusOr<int> CheckClaim(const std::string& edge, EdgeKind kind,
                           uint32_t worker, bool source_side) const;

  const Graph graph_;
  DfiRuntime* const dfi_;
  std::vector<EdgeState> edges_;
  std::vector<std::string> flow_names_;  // for the batched removal
  exec::ActorGroup actors_;
  bool started_ = false;
  bool finished_ = false;

  mutable std::mutex mu_;
  Status first_error_;                     // guarded by mu_
  std::vector<VertexStats> vertex_stats_;  // guarded by mu_
};

}  // namespace dfi::graph

#endif  // DFI_CORE_GRAPH_EXECUTOR_H_
