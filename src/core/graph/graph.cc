#include "core/graph/graph.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/graph/lowering.h"

namespace dfi::graph {
namespace {

Diagnostic VertexDiag(DiagCode code, const std::string& vertex,
                      std::string message) {
  return Diagnostic{code, vertex, "", std::move(message)};
}

Diagnostic EdgeDiag(DiagCode code, const std::string& vertex,
                    const std::string& edge, std::string message) {
  return Diagnostic{code, vertex, edge, std::move(message)};
}

/// Ordering the lowered transport of `edge` delivers on its own, before
/// composing with what arrives upstream.
Ordering TransportOrdering(const EdgeSpec& edge) {
  switch (edge.kind) {
    case EdgeKind::kShuffle:
      // Static routing preserves per-(source, key) FIFO. Adaptive
      // re-splitting spreads a hot key over sibling targets, which breaks
      // it unless the sequencer-compatible ordered hand-off is on.
      if (edge.options.adaptive.enabled &&
          !edge.options.adaptive.ordered_handoff) {
        return Ordering::kNone;
      }
      return Ordering::kPerChannel;
    case EdgeKind::kReplicate:
      // The OUM sequencer (multicast + global_ordering) delivers one total
      // order; the naive transport still guarantees per-channel FIFO.
      if (edge.options.global_ordering && edge.options.use_multicast) {
        return Ordering::kGlobal;
      }
      return Ordering::kPerChannel;
    case EdgeKind::kCombiner:
      // Aggregation folds tuples commutatively; no order survives.
      return Ordering::kNone;
  }
  return Ordering::kNone;
}

/// Structural pass: names, endpoint resolution, arity, bodies, acyclicity.
/// Returns false when the graph is too broken for the typed pass to run.
bool ValidateStructure(const GraphSpec& spec,
                       const std::unordered_map<std::string, int>& vertex_of,
                       std::vector<Graph::EdgeInfo>* edge_info,
                       std::vector<Graph::VertexInfo>* vertex_info,
                       std::vector<int>* topo_order,
                       std::vector<Diagnostic>* diags) {
  const size_t before = diags->size();

  std::unordered_set<std::string> edge_names;
  for (size_t v = 0; v < spec.vertices.size(); ++v) {
    const VertexSpec& vs = spec.vertices[v];
    if (vs.name.empty()) {
      diags->push_back(VertexDiag(DiagCode::kEmptyName, "",
                                  "vertex without a name"));
    }
    if (vertex_of.at(vs.name) != static_cast<int>(v)) {
      diags->push_back(VertexDiag(DiagCode::kDuplicateName, vs.name,
                                  "vertex name used twice"));
    }
    if (vs.workers.empty()) {
      diags->push_back(VertexDiag(DiagCode::kNoWorkers, vs.name,
                                  "vertex has no worker endpoints"));
    }
  }
  for (size_t e = 0; e < spec.edges.size(); ++e) {
    const EdgeSpec& es = spec.edges[e];
    if (es.name.empty()) {
      diags->push_back(EdgeDiag(DiagCode::kEmptyName, "", "",
                                "edge (flow) without a name"));
    } else if (!edge_names.insert(es.name).second) {
      diags->push_back(EdgeDiag(DiagCode::kDuplicateName, "", es.name,
                                "edge name used twice"));
    }
    for (const std::string* end : {&es.from, &es.to}) {
      auto it = vertex_of.find(*end);
      if (it == vertex_of.end()) {
        diags->push_back(EdgeDiag(DiagCode::kUnknownVertex, *end, es.name,
                                  "edge endpoint names no declared vertex"));
        continue;
      }
      const int v = it->second;
      if (end == &es.from) {
        (*edge_info)[e].from = v;
        (*vertex_info)[v].out.push_back(static_cast<int>(e));
      } else {
        (*edge_info)[e].to = v;
        (*vertex_info)[v].in.push_back(static_cast<int>(e));
      }
    }
  }
  if (diags->size() != before) return false;

  // Arity + required bodies per operator kind.
  for (size_t v = 0; v < spec.vertices.size(); ++v) {
    const VertexSpec& vs = spec.vertices[v];
    const size_t in = (*vertex_info)[v].in.size();
    const size_t out = (*vertex_info)[v].out.size();
    auto arity = [&](bool ok, const char* want) {
      if (!ok) {
        diags->push_back(VertexDiag(
            DiagCode::kArity, vs.name,
            std::string(OpKindName(vs.kind)) + " operator requires " + want +
                ", has " + std::to_string(in) + " in / " +
                std::to_string(out) + " out"));
      }
    };
    auto body = [&](bool present, const char* what) {
      if (!present) {
        diags->push_back(VertexDiag(
            DiagCode::kMissingBody, vs.name,
            std::string(OpKindName(vs.kind)) + " operator needs a " + what));
      }
    };
    switch (vs.kind) {
      case OpKind::kSource:
        arity(in == 0 && out == 1, "0 in / 1 out");
        body(static_cast<bool>(vs.source_fn), "source_fn");
        break;
      case OpKind::kTransform:
        arity(in == 1 && out == 1, "1 in / 1 out");
        body(static_cast<bool>(vs.transform_fn), "transform_fn");
        break;
      case OpKind::kWindow:
        arity(in == 1 && out == 1, "1 in / 1 out");
        break;
      case OpKind::kAggregate:
        arity(in == 1 && out <= 1, "1 in / <= 1 out");
        break;
      case OpKind::kJoin:
        arity(in == 2 && out == 0, "2 in / 0 out");
        break;
      case OpKind::kSink:
        arity(in == 1 && out == 0, "1 in / 0 out");
        break;
      case OpKind::kCustom:
        break;  // the application wires whatever it wants
    }
  }

  // Kahn topological sort; leftovers are on a cycle.
  std::vector<size_t> indegree(spec.vertices.size());
  for (size_t v = 0; v < spec.vertices.size(); ++v) {
    indegree[v] = (*vertex_info)[v].in.size();
  }
  std::vector<int> ready;
  for (size_t v = 0; v < spec.vertices.size(); ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
  }
  for (size_t head = 0; head < ready.size(); ++head) {
    const int v = ready[head];
    topo_order->push_back(v);
    for (int e : (*vertex_info)[v].out) {
      if (--indegree[(*edge_info)[e].to] == 0) {
        ready.push_back((*edge_info)[e].to);
      }
    }
  }
  if (topo_order->size() != spec.vertices.size()) {
    for (size_t v = 0; v < spec.vertices.size(); ++v) {
      if (indegree[v] > 0) {
        diags->push_back(VertexDiag(DiagCode::kCycle, spec.vertices[v].name,
                                    "vertex lies on a dataflow cycle"));
      }
    }
  }
  return diags->size() == before;
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return "source";
    case OpKind::kTransform:
      return "transform";
    case OpKind::kWindow:
      return "window";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kJoin:
      return "join";
    case OpKind::kSink:
      return "sink";
    case OpKind::kCustom:
      return "custom";
  }
  return "?";
}

const char* EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kShuffle:
      return "shuffle";
    case EdgeKind::kReplicate:
      return "replicate";
    case EdgeKind::kCombiner:
      return "combiner";
  }
  return "?";
}

int Graph::FindVertex(const std::string& name) const {
  for (size_t v = 0; v < spec_.vertices.size(); ++v) {
    if (spec_.vertices[v].name == name) return static_cast<int>(v);
  }
  return -1;
}

int Graph::FindEdge(const std::string& name) const {
  for (size_t e = 0; e < spec_.edges.size(); ++e) {
    if (spec_.edges[e].name == name) return static_cast<int>(e);
  }
  return -1;
}

StatusOr<Graph> Graph::Build(GraphSpec spec, const net::Fabric* fabric,
                             std::vector<Diagnostic>* diagnostics) {
  std::vector<Diagnostic> local;
  std::vector<Diagnostic>& diags = diagnostics ? *diagnostics : local;
  diags.clear();

  Graph g;
  g.spec_ = std::move(spec);
  const GraphSpec& s = g.spec_;
  g.edge_info_.resize(s.edges.size());
  g.vertex_info_.resize(s.vertices.size());

  std::unordered_map<std::string, int> vertex_of;
  for (size_t v = 0; v < s.vertices.size(); ++v) {
    vertex_of.emplace(s.vertices[v].name, static_cast<int>(v));
  }

  // Phase A — structure. A broken structure would make the typed pass
  // report nonsense, so stop here when it fails.
  if (!ValidateStructure(s, vertex_of, &g.edge_info_, &g.vertex_info_,
                         &g.topo_order_, &diags)) {
    return DiagnosticsToStatus(diags);
  }

  // Resolve worker placements (actor domains; combiner multi-node rule).
  if (fabric != nullptr) {
    for (size_t v = 0; v < s.vertices.size(); ++v) {
      auto nodes = s.vertices[v].workers.Resolve(*fabric);
      if (!nodes.ok()) {
        diags.push_back(VertexDiag(DiagCode::kNoWorkers, s.vertices[v].name,
                                   "placement does not resolve: " +
                                       nodes.status().message()));
        continue;
      }
      g.vertex_info_[v].nodes = std::move(nodes).value();
    }
    if (!diags.empty()) return DiagnosticsToStatus(diags);
  }

  // Phase B — the typed pass, in topological order: derive each vertex's
  // produced schema and input ordering, then check every out edge.
  for (int v : g.topo_order_) {
    const VertexSpec& vs = s.vertices[v];
    VertexInfo& vi = g.vertex_info_[v];

    // Input ordering: the weakest guarantee over all in edges (roots keep
    // the trivially-total kGlobal of a single local stream).
    for (int e : vi.in) {
      vi.input_ordering =
          ComposeOrdering(vi.input_ordering, g.edge_info_[e].delivered);
    }

    // Produced schema.
    switch (vs.kind) {
      case OpKind::kSource:
      case OpKind::kTransform:
      case OpKind::kCustom:
        vi.produced = vs.output.schema;
        break;
      case OpKind::kWindow: {
        const Schema& in_schema = s.edges[vi.in[0]].type.schema;
        if (vs.window.seq_field >= in_schema.num_fields() ||
            vs.window.key_field >= in_schema.num_fields()) {
          diags.push_back(VertexDiag(
              DiagCode::kKeyOutOfRange, vs.name,
              "window seq/key field out of range for input schema " +
                  in_schema.ToString()));
          break;
        }
        auto extended = in_schema.Extend(
            Field{vs.window.out_field, DataType::kUInt64, 0});
        if (!extended.ok()) {
          diags.push_back(VertexDiag(
              DiagCode::kSchemaMismatch, vs.name,
              "window output field collides: " +
                  extended.status().message()));
          break;
        }
        vi.produced = std::move(extended).value();
        break;
      }
      case OpKind::kAggregate: {
        const EdgeSpec& in_edge = s.edges[vi.in[0]];
        std::vector<Field> fields{{"group", DataType::kUInt64, 0}};
        for (size_t a = 0; a < in_edge.aggregates.size(); ++a) {
          fields.push_back(
              Field{"a" + std::to_string(a), DataType::kDouble, 0});
        }
        auto schema = Schema::Create(std::move(fields));
        if (schema.ok()) vi.produced = std::move(schema).value();
        break;
      }
      case OpKind::kJoin:
      case OpKind::kSink:
        break;  // no output
    }

    // In-edge kind constraints of the built-in operators.
    auto in_kind = [&](int i) { return s.edges[vi.in[i]].kind; };
    switch (vs.kind) {
      case OpKind::kTransform:
      case OpKind::kWindow:
        if (in_kind(0) == EdgeKind::kCombiner) {
          diags.push_back(VertexDiag(
              DiagCode::kArity, vs.name,
              std::string(OpKindName(vs.kind)) +
                  " operator cannot consume a combiner edge (aggregate "
                  "rows, not tuples); use an aggregate operator"));
        }
        break;
      case OpKind::kAggregate:
        if (in_kind(0) != EdgeKind::kCombiner) {
          diags.push_back(VertexDiag(
              DiagCode::kArity, vs.name,
              "aggregate operator requires a combiner in edge"));
        }
        break;
      case OpKind::kJoin:
        for (int i : {0, 1}) {
          if (in_kind(i) != EdgeKind::kShuffle) {
            diags.push_back(VertexDiag(
                DiagCode::kArity, vs.name,
                "join operator requires shuffle in edges"));
          }
        }
        break;
      case OpKind::kSink:
        if (in_kind(0) == EdgeKind::kCombiner) {
          if (!vs.agg_sink) {
            diags.push_back(VertexDiag(DiagCode::kMissingBody, vs.name,
                                       "sink on a combiner edge needs an "
                                       "agg_sink"));
          }
        } else if (!vs.tuple_sink) {
          diags.push_back(VertexDiag(DiagCode::kMissingBody, vs.name,
                                     "sink operator needs a tuple_sink"));
        }
        break;
      default:
        break;
    }

    // Out edges: schema compatibility, ordering, per-flow rules.
    for (int e : vi.out) {
      const EdgeSpec& es = s.edges[e];
      EdgeInfo& ei = g.edge_info_[e];
      const VertexSpec& to = s.vertices[ei.to];

      if (vi.produced.num_fields() > 0) {
        Status compat = CheckCompatible(vi.produced, es.type.schema);
        if (!compat.ok()) {
          diags.push_back(EdgeDiag(DiagCode::kSchemaMismatch, vs.name,
                                   es.name, compat.message()));
        }
      }

      ei.delivered =
          ComposeOrdering(vi.input_ordering, TransportOrdering(es));
      if (es.type.ordering > ei.delivered) {
        std::string why;
        if (es.type.ordering == Ordering::kGlobal &&
            TransportOrdering(es) < Ordering::kGlobal) {
          why = "global ordering requires a replicate edge with multicast "
                "and global_ordering (the OUM sequencer)";
        } else if (es.kind == EdgeKind::kShuffle &&
                   es.options.adaptive.enabled &&
                   !es.options.adaptive.ordered_handoff) {
          why = "adaptive re-splitting without ordered_handoff breaks "
                "per-channel order";
        } else if (es.kind == EdgeKind::kCombiner) {
          why = "aggregation erases delivery order";
        } else {
          why = std::string("upstream delivers only ") +
                OrderingName(ei.delivered);
        }
        diags.push_back(EdgeDiag(
            DiagCode::kOrderingUnsatisfied, vs.name, es.name,
            "edge requires " + std::string(OrderingName(es.type.ordering)) +
                " ordering but " + why));
      }

      switch (es.kind) {
        case EdgeKind::kShuffle:
          ValidateShuffleSpec(LowerShuffleEdge(es, vs, to), vs.name,
                              to.name, &diags);
          break;
        case EdgeKind::kReplicate:
          ValidateReplicateSpec(LowerReplicateEdge(es, vs, to), vs.name,
                                to.name, &diags);
          break;
        case EdgeKind::kCombiner: {
          const std::vector<net::NodeId>* target_nodes =
              fabric != nullptr ? &g.vertex_info_[ei.to].nodes : nullptr;
          ValidateCombinerSpec(LowerCombinerEdge(es, vs, to), vs.name,
                               to.name, target_nodes, &diags);
          break;
        }
      }
    }
  }

  DFI_RETURN_IF_ERROR(DiagnosticsToStatus(diags));
  return g;
}

}  // namespace dfi::graph
