#ifndef DFI_CORE_GRAPH_GRAPH_H_
#define DFI_CORE_GRAPH_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/endpoint/policies.h"
#include "core/flow_options.h"
#include "core/graph/diagnostics.h"
#include "core/nodes.h"
#include "core/routing.h"
#include "core/schema.h"

namespace dfi {

class DfiRuntime;

namespace graph {

class GraphRun;

/// Operator vocabulary: the vertex kinds of a dataflow graph. Each vertex
/// runs one actor per worker endpoint in its placement; edges between
/// vertices are DFI flows (DESIGN.md §14).
enum class OpKind : uint8_t {
  kSource,     ///< generates tuples (source_fn), out-degree 1
  kTransform,  ///< per-tuple map (transform_fn), 1 in / 1 out
  kWindow,     ///< built-in transform appending a windowed group key
  kAggregate,  ///< target side of a combiner edge; re-emits AggRows
  kJoin,       ///< built-in streaming radix join over two shuffle edges
  kSink,       ///< consumes tuples (tuple_sink) or agg rows (agg_sink)
  kCustom,     ///< application claims the endpoints (GraphRun::Claim*)
};

const char* OpKindName(OpKind kind);

/// The flow type an edge lowers onto (paper Table 1).
enum class EdgeKind : uint8_t {
  kShuffle,    ///< N:M keyed partitioning
  kReplicate,  ///< all-to-all fan-out (optional multicast + ordering)
  kCombiner,   ///< group-by aggregation at the target
};

const char* EdgeKindName(EdgeKind kind);

/// Per-worker execution context handed to operator callbacks. `clock` is
/// the worker's driving virtual clock — the consume-side clock for
/// operators with inputs, the push-side clock for sources — so callbacks
/// can charge their own per-tuple CPU costs.
struct OpContext {
  uint32_t worker = 0;
  uint32_t num_workers = 1;
  VirtualClock* clock = nullptr;
};

/// Emits one packed tuple onto the vertex's out edge.
using EmitFn = std::function<Status(const void*)>;
/// Source body: push tuples through `emit` until done; the executor closes
/// the flow afterwards.
using SourceFn = std::function<Status(OpContext&, const EmitFn&)>;
/// Transform body: called once per input tuple; may emit 0..n tuples.
using TransformFn = std::function<Status(OpContext&, TupleView, const EmitFn&)>;
/// Sink bodies: one call per delivered tuple / aggregate row.
using TupleSinkFn = std::function<Status(OpContext&, TupleView)>;
using AggSinkFn = std::function<Status(OpContext&, const AggRow&)>;

/// kWindow configuration: the operator appends a uint64 field
/// `out_field = (seq / window_size) << key_bits | (key & mask)` — a
/// data-derived window id fused with the grouping key, so downstream
/// combiner edges group per (window, key) and the assignment is a pure
/// function of tuple content (deterministic at any pool size).
struct WindowOpSpec {
  size_t seq_field = 0;        ///< monotone per-source sequence field
  size_t key_field = 0;        ///< grouping key field
  uint64_t window_size = 1024; ///< sequence numbers per window
  uint32_t key_bits = 20;      ///< low bits of the fused id carrying the key
  std::string out_field = "wkey";
};

/// kJoin configuration: streaming radix build over in-edge 0, streaming
/// probe of in-edge 1, with the same per-tuple CPU cost model as the join
/// app (src/apps/join).
struct JoinOpSpec {
  size_t key_field = 0;
  size_t payload_field = 1;
  uint32_t local_radix_bits = 6;
  SimTime partition_cost_ns = 5;
  SimTime build_cost_ns = 10;
  SimTime probe_cost_ns = 10;
};

/// One operator vertex. Exactly the members matching `kind` are read; the
/// typed validation pass rejects missing bodies (kMissingBody) and illegal
/// in/out degrees (kArity).
struct VertexSpec {
  std::string name;
  OpKind kind = OpKind::kCustom;
  /// Worker endpoints: worker w of this vertex is endpoint index w of every
  /// adjacent edge ("Parameterized Dataflow": the count is a graph
  /// parameter, not hard-coded wiring).
  DfiNodes workers;
  /// Type produced on the out edge (kSource / kTransform / kCustom with an
  /// output). kWindow and kAggregate derive theirs; leave empty there.
  EdgeType output;
  SourceFn source_fn;
  TransformFn transform_fn;
  TupleSinkFn tuple_sink;
  AggSinkFn agg_sink;
  WindowOpSpec window;
  JoinOpSpec join;
};

/// One typed edge: a DFI flow carrying `type.schema`, requiring
/// `type.ordering` from the lowered transport.
struct EdgeSpec {
  std::string name;  ///< flow name published in the registry; unique
  std::string from;
  std::string to;
  EdgeKind kind = EdgeKind::kShuffle;
  EdgeType type;
  /// Shuffle: key field of the default key-hash routing. Combiner: the
  /// group-by field.
  size_t key_index = 0;
  /// Shuffle-only routing override (see ShuffleFlowSpec::routing).
  RoutingSpec routing;
  /// Combiner-only aggregation spec.
  std::vector<AggSpec> aggregates;
  bool global_aggregate = false;
  bool multi_node_targets = false;
  FlowOptions options;
};

struct GraphSpec {
  std::string name;
  std::vector<VertexSpec> vertices;
  std::vector<EdgeSpec> edges;
};

/// A validated dataflow graph. Build() is the compile-time-ish typed
/// diagnostic pass: it checks structure (names, arity, acyclicity), schema
/// compatibility across every edge, ordering requirements against what each
/// lowered transport can deliver (composed along chains — the weakest
/// upstream link wins), adaptive-routing legality and combiner topology —
/// every finding names the offending vertex/edge (see Diagnostic). The
/// scattered per-flow InvalidArguments of DfiRuntime::Init*Flow are thin
/// wrappers over the same rules (single-edge graphs).
class Graph {
 public:
  /// Validates `spec`. On failure returns InvalidArgument joining every
  /// finding; `diagnostics` (optional) receives the structured list either
  /// way. `fabric` resolves worker placements (needed by the combiner
  /// multi-node rule and the executor's actor domains).
  static StatusOr<Graph> Build(GraphSpec spec, const net::Fabric* fabric,
                               std::vector<Diagnostic>* diagnostics = nullptr);

  const GraphSpec& spec() const { return spec_; }

  /// Lowers the graph onto the endpoint layer: constructs every edge's flow
  /// state, publishes all of them through ONE batched control-plane RPC
  /// (RegistryClient::PublishBatch), and prepares the operator actors.
  StatusOr<std::unique_ptr<GraphRun>> Instantiate(DfiRuntime* dfi) const;

  // ---- Resolved structure (used by the executor and tests) ---------------
  struct EdgeInfo {
    int from = -1;  ///< vertex index
    int to = -1;
    /// Strongest ordering the lowered transport delivers end to end,
    /// composed with the upstream vertex's ordering (weakest link).
    Ordering delivered = Ordering::kNone;
  };
  struct VertexInfo {
    std::vector<int> in;   ///< edge indices, spec order
    std::vector<int> out;
    /// Resolved schema this vertex emits (derived for kWindow/kAggregate).
    Schema produced;
    /// Ordering of the stream arriving at this vertex (kGlobal for roots).
    Ordering input_ordering = Ordering::kGlobal;
    /// Fabric nodes of the worker placement (empty without a fabric).
    std::vector<net::NodeId> nodes;
  };
  const EdgeInfo& edge_info(size_t e) const { return edge_info_[e]; }
  const VertexInfo& vertex_info(size_t v) const { return vertex_info_[v]; }
  /// Vertex index by name (-1 when unknown).
  int FindVertex(const std::string& name) const;
  int FindEdge(const std::string& name) const;

 private:
  // StatusOr<Graph> default-constructs its value slot; nobody else can
  // create an unvalidated Graph.
  friend class dfi::StatusOr<Graph>;
  Graph() = default;

  GraphSpec spec_;
  std::vector<EdgeInfo> edge_info_;
  std::vector<VertexInfo> vertex_info_;
  std::vector<int> topo_order_;  // vertex indices, sources first
};

}  // namespace graph
}  // namespace dfi

#endif  // DFI_CORE_GRAPH_GRAPH_H_
