#ifndef DFI_CORE_GRAPH_DIAGNOSTICS_H_
#define DFI_CORE_GRAPH_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"

namespace dfi {

struct ShuffleFlowSpec;
struct ReplicateFlowSpec;
struct CombinerFlowSpec;

namespace graph {

/// What a graph-validation diagnostic is about. One code per rule so tests
/// and tools can match structurally instead of grepping messages.
enum class DiagCode : uint8_t {
  kEmptyName,            ///< vertex/edge/flow without a name
  kDuplicateName,        ///< vertex or edge name used twice
  kUnknownVertex,        ///< edge endpoint names no declared vertex
  kNoWorkers,            ///< vertex/flow side with an empty placement
  kArity,                ///< in/out degree illegal for the operator kind
  kCycle,                ///< the graph is not a DAG
  kSchemaMismatch,       ///< produced schema incompatible with the edge type
  kKeyOutOfRange,        ///< shuffle key / group-by / aggregate field index
  kAdaptiveRouting,      ///< adaptive shuffle on non-key-hash routing
  kOrderingUnsatisfied,  ///< required ordering the edge cannot deliver
  kCombinerTopology,     ///< multi-node combiner targets w/o the opt-in
  kNoAggregates,         ///< combiner edge without aggregate specs
  kMissingBody,          ///< operator kind requires a callback it lacks
};

const char* DiagCodeName(DiagCode code);

/// One finding of the typed validation pass: the rule, the offending vertex
/// and/or edge by name, and a human-readable explanation. `status_code` is
/// what the finding maps to when surfaced as a Status (kInvalidArgument for
/// everything except transports that exist but are not wired up, which keep
/// their historical kUnimplemented).
struct Diagnostic {
  DiagCode code;
  std::string vertex;  ///< offending vertex name ("" when edge-only)
  std::string edge;    ///< offending edge/flow name ("" when vertex-only)
  std::string message;
  StatusCode status_code = StatusCode::kInvalidArgument;

  /// "vertex 'w' / edge 'shuffle': [adaptive-routing] ..." — the rendering
  /// used in joined Status messages.
  std::string ToString() const;
};

/// OK when empty; otherwise a Status whose code is the first diagnostic's
/// status_code and whose message joins every finding ("; "-separated).
Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags);

// ---- Shared per-flow validators -------------------------------------------
// One rule set serving both entry points: DfiRuntime::Init*Flow (a single
// edge, no vertex context) and Graph::Build (every edge, with the adjacent
// vertices named). `vertex` names the producing vertex for source-side
// rules and the consuming vertex for target-side rules; pass "" from the
// standalone flow APIs.

void ValidateShuffleSpec(const ShuffleFlowSpec& spec,
                         const std::string& source_vertex,
                         const std::string& target_vertex,
                         std::vector<Diagnostic>* out);

void ValidateReplicateSpec(const ReplicateFlowSpec& spec,
                           const std::string& source_vertex,
                           const std::string& target_vertex,
                           std::vector<Diagnostic>* out);

/// `target_nodes` are the resolved fabric nodes of the target placement
/// (the multi-node topology rule needs them); pass nullptr to skip that
/// rule when no fabric is at hand.
void ValidateCombinerSpec(const CombinerFlowSpec& spec,
                          const std::string& source_vertex,
                          const std::string& target_vertex,
                          const std::vector<net::NodeId>* target_nodes,
                          std::vector<Diagnostic>* out);

}  // namespace graph
}  // namespace dfi

#endif  // DFI_CORE_GRAPH_DIAGNOSTICS_H_
