#include "core/graph/executor.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "core/dfi_runtime.h"
#include "core/graph/lowering.h"

namespace dfi::graph {
namespace {

/// Low `field_size` bytes of field `f`, zero-extended (hosts are
/// little-endian; schema accessors are memcpy-based so packing is fine).
uint64_t ReadUnsigned(const uint8_t* tuple, const Schema& schema, size_t f) {
  uint64_t value = 0;
  std::memcpy(&value, tuple + schema.offset(f),
              std::min<size_t>(sizeof(value), schema.field_size(f)));
  return value;
}

/// Push-side adapter over the three flow kinds, bound to one worker.
struct OutPort {
  std::unique_ptr<ShuffleSource> shuffle;
  std::unique_ptr<ReplicateSource> replicate;
  std::unique_ptr<CombinerSource> combiner;

  Status Push(const void* tuple) {
    if (shuffle) return shuffle->Push(tuple);
    if (replicate) return replicate->Push(tuple);
    return combiner->Push(tuple);
  }
  Status Close() {
    if (shuffle) return shuffle->Close();
    if (replicate) return replicate->Close();
    return combiner->Close();
  }
  VirtualClock& clock() {
    if (shuffle) return shuffle->clock();
    if (replicate) return replicate->clock();
    return combiner->clock();
  }
};

OutPort OpenOut(const std::shared_ptr<ShuffleFlowState>& shuffle,
                const std::shared_ptr<ReplicateFlowState>& replicate,
                const std::shared_ptr<CombinerFlowState>& combiner,
                uint32_t worker) {
  OutPort port;
  if (shuffle) {
    port.shuffle = std::make_unique<ShuffleSource>(shuffle, worker);
  } else if (replicate) {
    port.replicate = std::make_unique<ReplicateSource>(replicate, worker);
  } else {
    port.combiner = std::make_unique<CombinerSource>(combiner, worker);
  }
  return port;
}

/// Consume-side adapter over the tuple-delivering flow kinds (combiner
/// targets yield AggRows instead and are handled where they occur).
struct TupleInPort {
  std::unique_ptr<ShuffleTarget> shuffle;
  std::unique_ptr<ReplicateTarget> replicate;

  ConsumeResult Consume(TupleView* out) {
    return shuffle ? shuffle->Consume(out) : replicate->Consume(out);
  }
  VirtualClock& clock() {
    return shuffle ? shuffle->clock() : replicate->clock();
  }
  Status last_status() {
    return shuffle ? shuffle->last_status() : replicate->last_status();
  }
};

TupleInPort OpenTupleIn(const std::shared_ptr<ShuffleFlowState>& shuffle,
                        const std::shared_ptr<ReplicateFlowState>& replicate,
                        uint32_t worker) {
  TupleInPort port;
  if (shuffle) {
    port.shuffle = std::make_unique<ShuffleTarget>(shuffle, worker);
  } else {
    port.replicate = std::make_unique<ReplicateTarget>(replicate, worker);
  }
  return port;
}

}  // namespace

StatusOr<std::unique_ptr<GraphRun>> Graph::Instantiate(DfiRuntime* dfi) const {
  std::vector<GraphRun::EdgeState> edges(spec_.edges.size());
  std::vector<std::pair<std::string, std::shared_ptr<FlowStateBase>>> publish;
  publish.reserve(spec_.edges.size());
  for (size_t e = 0; e < spec_.edges.size(); ++e) {
    const EdgeSpec& es = spec_.edges[e];
    const VertexSpec& from = spec_.vertices[edge_info_[e].from];
    const VertexSpec& to = spec_.vertices[edge_info_[e].to];
    std::shared_ptr<FlowStateBase> state;
    switch (es.kind) {
      case EdgeKind::kShuffle:
        edges[e].shuffle = std::make_shared<ShuffleFlowState>(
            LowerShuffleEdge(es, from, to), &dfi->rdma());
        state = edges[e].shuffle;
        break;
      case EdgeKind::kReplicate:
        edges[e].replicate = std::make_shared<ReplicateFlowState>(
            LowerReplicateEdge(es, from, to), &dfi->rdma());
        state = edges[e].replicate;
        break;
      case EdgeKind::kCombiner:
        edges[e].combiner = std::make_shared<CombinerFlowState>(
            LowerCombinerEdge(es, from, to), &dfi->rdma());
        state = edges[e].combiner;
        break;
    }
    publish.emplace_back(es.name, std::move(state));
  }

  // One batched control-plane RPC registers the whole graph (vs. one
  // Publish round trip per flow in the hand-rolled setup path).
  DFI_ASSIGN_OR_RETURN(std::vector<reg::OpResult> results,
                       dfi->registry_client().PublishBatch(publish));
  for (size_t e = 0; e < results.size(); ++e) {
    if (!results[e].status.ok()) {
      // Roll the published prefix back so a name collision leaves no
      // half-registered graph behind.
      std::vector<std::string> published;
      for (size_t p = 0; p < e; ++p) published.push_back(spec_.edges[p].name);
      if (!published.empty()) {
        (void)dfi->registry_client().CloseBatch(published);
      }
      return Status(results[e].status.code(),
                    "edge '" + spec_.edges[e].name +
                        "': " + results[e].status.message());
    }
  }
  return std::unique_ptr<GraphRun>(
      new GraphRun(*this, dfi, std::move(edges)));
}

GraphRun::GraphRun(Graph graph, DfiRuntime* dfi, std::vector<EdgeState> edges)
    : graph_(std::move(graph)), dfi_(dfi), edges_(std::move(edges)) {
  for (const EdgeSpec& es : graph_.spec().edges) {
    flow_names_.push_back(es.name);
  }
  vertex_stats_.resize(graph_.spec().vertices.size());
}

GraphRun::~GraphRun() {
  if (started_ && !finished_) (void)Finish();
}

Status GraphRun::Start() {
  if (started_) {
    return Status::FailedPrecondition("graph '" + graph_.spec().name +
                                      "' already started");
  }
  started_ = true;
  const GraphSpec& spec = graph_.spec();
  for (size_t v = 0; v < spec.vertices.size(); ++v) {
    const VertexSpec& vs = spec.vertices[v];
    if (vs.kind == OpKind::kCustom) continue;  // application-driven
    const std::vector<net::NodeId>& nodes = graph_.vertex_info(v).nodes;
    for (uint32_t w = 0; w < vs.workers.size(); ++w) {
      const uint32_t domain = w < nodes.size() ? nodes[w] : 0;
      actors_.Spawn(domain,
                    spec.name + "." + vs.name + "." + std::to_string(w),
                    [this, v = static_cast<int>(v), w] {
                      VertexStats st;
                      Status s = RunWorker(v, w, &st);
                      if (!s.ok()) {
                        Fail(graph_.spec().vertices[v].name, s);
                      }
                      AccumulateStats(v, st);
                    });
    }
  }
  return Status::OK();
}

Status GraphRun::Finish() {
  if (finished_) return status();
  actors_.Join();
  finished_ = true;
  Status removal = dfi_->RemoveFlows(flow_names_);
  Status first = status();
  return first.ok() ? removal : first;
}

Status GraphRun::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

void GraphRun::Fail(const std::string& vertex, const Status& status) {
  Status cause(status.code(),
               "vertex '" + vertex + "': " + status.message());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = cause;
  }
  // Whole-graph teardown: poison every edge so peers blocked on this
  // operator observe the failure instead of deadlocking.
  for (EdgeState& es : edges_) {
    if (es.shuffle) es.shuffle->Abort(cause);
    if (es.replicate) es.replicate->Abort(cause);
    if (es.combiner) es.combiner->Abort(cause);
  }
}

void GraphRun::AccumulateStats(int vertex, const VertexStats& worker_stats) {
  std::lock_guard<std::mutex> lock(mu_);
  VertexStats& vs = vertex_stats_[vertex];
  vs.tuples_in += worker_stats.tuples_in;
  vs.tuples_out += worker_stats.tuples_out;
  vs.join_matches += worker_stats.join_matches;
  vs.max_clock = std::max(vs.max_clock, worker_stats.max_clock);
}

GraphRun::VertexStats GraphRun::stats(const std::string& name) const {
  const int v = graph_.FindVertex(name);
  if (v < 0) return VertexStats{};
  std::lock_guard<std::mutex> lock(mu_);
  return vertex_stats_[v];
}

// ---------------------------------------------------------------------------
// Operator actor bodies
// ---------------------------------------------------------------------------

Status GraphRun::RunWorker(int vertex, uint32_t worker, VertexStats* out) {
  switch (graph_.spec().vertices[vertex].kind) {
    case OpKind::kSource:
      return RunSource(vertex, worker, out);
    case OpKind::kTransform:
    case OpKind::kWindow:
      return RunTransformLike(vertex, worker, out);
    case OpKind::kAggregate:
      return RunAggregate(vertex, worker, out);
    case OpKind::kJoin:
      return RunJoin(vertex, worker, out);
    case OpKind::kSink:
      return RunSink(vertex, worker, out);
    case OpKind::kCustom:
      break;  // never spawned
  }
  return Status::OK();
}

Status GraphRun::RunSource(int vertex, uint32_t worker, VertexStats* out) {
  const VertexSpec& vs = graph_.spec().vertices[vertex];
  const int e = graph_.vertex_info(vertex).out[0];
  EdgeState& es = edges_[e];
  OutPort port = OpenOut(es.shuffle, es.replicate, es.combiner, worker);
  OpContext ctx{worker, static_cast<uint32_t>(vs.workers.size()),
                &port.clock()};
  uint64_t emitted = 0;
  EmitFn emit = [&](const void* tuple) {
    Status s = port.Push(tuple);
    if (s.ok()) ++emitted;
    return s;
  };
  DFI_RETURN_IF_ERROR(vs.source_fn(ctx, emit));
  DFI_RETURN_IF_ERROR(port.Close());
  out->tuples_out = emitted;
  out->max_clock = port.clock().now();
  return Status::OK();
}

Status GraphRun::RunTransformLike(int vertex, uint32_t worker,
                                  VertexStats* out) {
  const VertexSpec& vs = graph_.spec().vertices[vertex];
  const Graph::VertexInfo& vi = graph_.vertex_info(vertex);
  EdgeState& ein = edges_[vi.in[0]];
  EdgeState& eout = edges_[vi.out[0]];
  TupleInPort in = OpenTupleIn(ein.shuffle, ein.replicate, worker);
  OutPort port = OpenOut(eout.shuffle, eout.replicate, eout.combiner, worker);
  OpContext ctx{worker, static_cast<uint32_t>(vs.workers.size()),
                &in.clock()};

  uint64_t consumed = 0, emitted = 0;
  // Pipeline clock chaining: an emitted tuple cannot leave before the
  // input that caused it arrived (plus whatever the body charged).
  EmitFn emit = [&](const void* tuple) {
    port.clock().AdvanceTo(in.clock().now());
    Status s = port.Push(tuple);
    if (s.ok()) ++emitted;
    return s;
  };

  // kWindow precomputation: output tuple = input + fused window key.
  const Schema& in_schema = graph_.spec().edges[vi.in[0]].type.schema;
  const Schema& out_schema = vi.produced;
  std::vector<uint8_t> window_buf(
      vs.kind == OpKind::kWindow ? out_schema.tuple_size() : 0);
  const size_t wkey_index = out_schema.num_fields() - 1;
  const uint64_t key_mask = vs.window.key_bits >= 64
                                ? ~uint64_t{0}
                                : (uint64_t{1} << vs.window.key_bits) - 1;

  TupleView tuple;
  for (;;) {
    ConsumeResult r = in.Consume(&tuple);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r == ConsumeResult::kError) return in.last_status();
    if (r == ConsumeResult::kGap) continue;
    ++consumed;
    if (vs.kind == OpKind::kTransform) {
      DFI_RETURN_IF_ERROR(vs.transform_fn(ctx, tuple, emit));
      continue;
    }
    const uint64_t seq =
        ReadUnsigned(tuple.data(), in_schema, vs.window.seq_field);
    const uint64_t key =
        ReadUnsigned(tuple.data(), in_schema, vs.window.key_field);
    const uint64_t wkey =
        ((seq / vs.window.window_size) << vs.window.key_bits) |
        (key & key_mask);
    std::memcpy(window_buf.data(), tuple.data(), in_schema.tuple_size());
    TupleWriter(window_buf.data(), &out_schema).Set(wkey_index, wkey);
    DFI_RETURN_IF_ERROR(emit(window_buf.data()));
  }
  DFI_RETURN_IF_ERROR(port.Close());
  out->tuples_in = consumed;
  out->tuples_out = emitted;
  out->max_clock = std::max(in.clock().now(), port.clock().now());
  return Status::OK();
}

Status GraphRun::RunAggregate(int vertex, uint32_t worker, VertexStats* out) {
  const VertexSpec& vs = graph_.spec().vertices[vertex];
  const Graph::VertexInfo& vi = graph_.vertex_info(vertex);
  CombinerTarget target(edges_[vi.in[0]].combiner, worker);
  OpContext ctx{worker, static_cast<uint32_t>(vs.workers.size()),
                &target.clock()};

  const bool has_out = !vi.out.empty();
  OutPort port;
  if (has_out) {
    EdgeState& eout = edges_[vi.out[0]];
    port = OpenOut(eout.shuffle, eout.replicate, eout.combiner, worker);
  }
  const Schema& row_schema = vi.produced;
  std::vector<uint8_t> row_buf(row_schema.tuple_size());

  uint64_t rows = 0;
  AggRow row;
  for (;;) {
    ConsumeResult r = target.ConsumeAggregate(&row);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r == ConsumeResult::kError) return target.last_status();
    ++rows;
    if (has_out) {
      // Group keys are disjoint across aggregate workers, so each partial
      // row can be re-emitted independently.
      TupleWriter writer(row_buf.data(), &row_schema);
      writer.Set(0, row.group_key);
      for (size_t a = 0; a < row.values.size(); ++a) {
        writer.Set(1 + a, row.values[a]);
      }
      port.clock().AdvanceTo(target.clock().now());
      DFI_RETURN_IF_ERROR(port.Push(row_buf.data()));
    } else if (vs.agg_sink) {
      DFI_RETURN_IF_ERROR(vs.agg_sink(ctx, row));
    }
  }
  if (has_out) DFI_RETURN_IF_ERROR(port.Close());
  out->tuples_in = target.tuples_aggregated();
  out->tuples_out = rows;
  out->max_clock = has_out
                       ? std::max(target.clock().now(), port.clock().now())
                       : target.clock().now();
  return Status::OK();
}

Status GraphRun::RunJoin(int vertex, uint32_t worker, VertexStats* out) {
  const VertexSpec& vs = graph_.spec().vertices[vertex];
  const Graph::VertexInfo& vi = graph_.vertex_info(vertex);
  const JoinOpSpec& js = vs.join;
  ShuffleTarget build(edges_[vi.in[0]].shuffle, worker);
  ShuffleTarget probe(edges_[vi.in[1]].shuffle, worker);
  const Schema& build_schema = graph_.spec().edges[vi.in[0]].type.schema;
  const Schema& probe_schema = graph_.spec().edges[vi.in[1]].type.schema;

  // Build phase: hash the inner input as it streams in. Multiplicity per
  // key is all the probe side needs to count matches.
  std::unordered_map<uint64_t, uint64_t> table;
  uint64_t consumed = 0;
  TupleView tuple;
  for (;;) {
    ConsumeResult r = build.Consume(&tuple);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r == ConsumeResult::kError) return build.last_status();
    ++consumed;
    build.clock().Advance(js.partition_cost_ns + js.build_cost_ns);
    ++table[ReadUnsigned(tuple.data(), build_schema, js.key_field)];
  }

  // Probe phase starts no earlier than the build finished (same max-join
  // of clocks as the hand-rolled join app).
  probe.clock().AdvanceTo(build.clock().now());
  uint64_t matches = 0;
  for (;;) {
    ConsumeResult r = probe.Consume(&tuple);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r == ConsumeResult::kError) return probe.last_status();
    ++consumed;
    probe.clock().Advance(js.partition_cost_ns + js.probe_cost_ns);
    auto it =
        table.find(ReadUnsigned(tuple.data(), probe_schema, js.key_field));
    if (it != table.end()) matches += it->second;
  }
  out->tuples_in = consumed;
  out->join_matches = matches;
  out->max_clock = probe.clock().now();
  return Status::OK();
}

Status GraphRun::RunSink(int vertex, uint32_t worker, VertexStats* out) {
  const VertexSpec& vs = graph_.spec().vertices[vertex];
  const Graph::VertexInfo& vi = graph_.vertex_info(vertex);
  EdgeState& ein = edges_[vi.in[0]];
  OpContext ctx{worker, static_cast<uint32_t>(vs.workers.size()), nullptr};
  uint64_t consumed = 0;

  if (ein.combiner) {
    CombinerTarget target(ein.combiner, worker);
    ctx.clock = &target.clock();
    AggRow row;
    for (;;) {
      ConsumeResult r = target.ConsumeAggregate(&row);
      if (r == ConsumeResult::kFlowEnd) break;
      if (r == ConsumeResult::kError) return target.last_status();
      ++consumed;
      DFI_RETURN_IF_ERROR(vs.agg_sink(ctx, row));
    }
    out->tuples_in = consumed;
    out->max_clock = target.clock().now();
    return Status::OK();
  }

  TupleInPort in = OpenTupleIn(ein.shuffle, ein.replicate, worker);
  ctx.clock = &in.clock();
  TupleView tuple;
  for (;;) {
    ConsumeResult r = in.Consume(&tuple);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r == ConsumeResult::kError) return in.last_status();
    if (r == ConsumeResult::kGap) continue;
    ++consumed;
    DFI_RETURN_IF_ERROR(vs.tuple_sink(ctx, tuple));
  }
  out->tuples_in = consumed;
  out->max_clock = in.clock().now();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// kCustom endpoint claims
// ---------------------------------------------------------------------------

StatusOr<int> GraphRun::CheckClaim(const std::string& edge, EdgeKind kind,
                                   uint32_t worker, bool source_side) const {
  const int e = graph_.FindEdge(edge);
  if (e < 0) {
    return Status::NotFound("graph '" + graph_.spec().name +
                            "' has no edge '" + edge + "'");
  }
  const EdgeSpec& es = graph_.spec().edges[e];
  if (es.kind != kind) {
    return Status::InvalidArgument(
        "edge '" + edge + "' is a " + EdgeKindName(es.kind) +
        " flow, not a " + EdgeKindName(kind) + " flow");
  }
  const VertexSpec& side = graph_.spec().vertices[
      source_side ? graph_.edge_info(e).from : graph_.edge_info(e).to];
  if (worker >= side.workers.size()) {
    return Status::OutOfRange(
        "worker " + std::to_string(worker) + " out of range for vertex '" +
        side.name + "' (" + std::to_string(side.workers.size()) +
        " workers)");
  }
  return e;
}

StatusOr<std::unique_ptr<ShuffleSource>> GraphRun::ClaimShuffleSource(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kShuffle, worker, true));
  return std::make_unique<ShuffleSource>(edges_[e].shuffle, worker);
}

StatusOr<std::unique_ptr<ShuffleTarget>> GraphRun::ClaimShuffleTarget(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kShuffle, worker, false));
  return std::make_unique<ShuffleTarget>(edges_[e].shuffle, worker);
}

StatusOr<std::unique_ptr<ReplicateSource>> GraphRun::ClaimReplicateSource(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kReplicate, worker, true));
  return std::make_unique<ReplicateSource>(edges_[e].replicate, worker);
}

StatusOr<std::unique_ptr<ReplicateTarget>> GraphRun::ClaimReplicateTarget(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kReplicate, worker, false));
  return std::make_unique<ReplicateTarget>(edges_[e].replicate, worker);
}

StatusOr<std::unique_ptr<CombinerSource>> GraphRun::ClaimCombinerSource(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kCombiner, worker, true));
  return std::make_unique<CombinerSource>(edges_[e].combiner, worker);
}

StatusOr<std::unique_ptr<CombinerTarget>> GraphRun::ClaimCombinerTarget(
    const std::string& edge, uint32_t worker) {
  DFI_ASSIGN_OR_RETURN(int e,
                       CheckClaim(edge, EdgeKind::kCombiner, worker, false));
  return std::make_unique<CombinerTarget>(edges_[e].combiner, worker);
}

}  // namespace dfi::graph
