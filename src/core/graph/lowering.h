#ifndef DFI_CORE_GRAPH_LOWERING_H_
#define DFI_CORE_GRAPH_LOWERING_H_

#include "core/combiner_flow.h"
#include "core/graph/graph.h"
#include "core/replicate_flow.h"
#include "core/shuffle_flow.h"

namespace dfi::graph {

// Edge -> flow-spec lowering, shared by the validation pass (the per-flow
// rules run against the exact spec that will be instantiated) and the
// planner (GraphRun constructs flow states from the same specs). The
// from-vertex placement becomes the source side, the to-vertex placement
// the target side; worker w of a vertex is endpoint w of every adjacent
// edge.

ShuffleFlowSpec LowerShuffleEdge(const EdgeSpec& edge, const VertexSpec& from,
                                 const VertexSpec& to);

ReplicateFlowSpec LowerReplicateEdge(const EdgeSpec& edge,
                                     const VertexSpec& from,
                                     const VertexSpec& to);

CombinerFlowSpec LowerCombinerEdge(const EdgeSpec& edge,
                                   const VertexSpec& from,
                                   const VertexSpec& to);

}  // namespace dfi::graph

#endif  // DFI_CORE_GRAPH_LOWERING_H_
