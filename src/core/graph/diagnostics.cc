#include "core/graph/diagnostics.h"

#include "core/combiner_flow.h"
#include "core/replicate_flow.h"
#include "core/shuffle_flow.h"

namespace dfi::graph {
namespace {

/// Shorthand for the common InvalidArgument diagnostic.
Diagnostic Diag(DiagCode code, const std::string& vertex,
                const std::string& edge, std::string message) {
  return Diagnostic{code, vertex, edge, std::move(message)};
}

/// Shared source/target placement rule of every flow kind.
template <typename SpecT>
bool ValidateEndpoints(const SpecT& spec, const std::string& source_vertex,
                       const std::string& target_vertex,
                       std::vector<Diagnostic>* out) {
  bool ok = true;
  if (spec.name.empty()) {
    out->push_back(Diag(DiagCode::kEmptyName, "", "",
                        "flow name must not be empty"));
    ok = false;
  }
  if (spec.sources.empty()) {
    out->push_back(Diag(DiagCode::kNoWorkers, source_vertex, spec.name,
                        "flow '" + spec.name +
                            "' needs at least one source endpoint"));
    ok = false;
  }
  if (spec.targets.empty()) {
    out->push_back(Diag(DiagCode::kNoWorkers, target_vertex, spec.name,
                        "flow '" + spec.name +
                            "' needs at least one target endpoint"));
    ok = false;
  }
  return ok;
}

}  // namespace

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyName:
      return "empty-name";
    case DiagCode::kDuplicateName:
      return "duplicate-name";
    case DiagCode::kUnknownVertex:
      return "unknown-vertex";
    case DiagCode::kNoWorkers:
      return "no-workers";
    case DiagCode::kArity:
      return "arity";
    case DiagCode::kCycle:
      return "cycle";
    case DiagCode::kSchemaMismatch:
      return "schema-mismatch";
    case DiagCode::kKeyOutOfRange:
      return "key-out-of-range";
    case DiagCode::kAdaptiveRouting:
      return "adaptive-routing";
    case DiagCode::kOrderingUnsatisfied:
      return "ordering-unsatisfied";
    case DiagCode::kCombinerTopology:
      return "combiner-topology";
    case DiagCode::kNoAggregates:
      return "no-aggregates";
    case DiagCode::kMissingBody:
      return "missing-body";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (!vertex.empty()) out += "vertex '" + vertex + "'";
  if (!edge.empty()) {
    if (!out.empty()) out += " / ";
    out += "edge '" + edge + "'";
  }
  if (!out.empty()) out += ": ";
  out += "[";
  out += DiagCodeName(code);
  out += "] ";
  out += message;
  return out;
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags) {
  if (diags.empty()) return Status::OK();
  std::string message;
  for (const Diagnostic& d : diags) {
    if (!message.empty()) message += "; ";
    message += d.ToString();
  }
  return Status(diags.front().status_code, std::move(message));
}

void ValidateShuffleSpec(const ShuffleFlowSpec& spec,
                         const std::string& source_vertex,
                         const std::string& target_vertex,
                         std::vector<Diagnostic>* out) {
  ValidateEndpoints(spec, source_vertex, target_vertex, out);
  if (spec.shuffle_key_index >= spec.schema.num_fields()) {
    out->push_back(Diag(
        DiagCode::kKeyOutOfRange, source_vertex, spec.name,
        "shuffle key index " + std::to_string(spec.shuffle_key_index) +
            " out of range for schema " + spec.schema.ToString()));
  }
  if (spec.options.adaptive.enabled && spec.routing.set() &&
      spec.routing.kind() != RoutingSpec::Kind::kKeyHash) {
    // Adaptive routing re-splits around the key-hash home function; radix
    // and generic routings carry no geometry it could wrap.
    out->push_back(Diag(DiagCode::kAdaptiveRouting, source_vertex, spec.name,
                        "adaptive shuffle requires key-hash (or default) "
                        "routing"));
  }
}

void ValidateReplicateSpec(const ReplicateFlowSpec& spec,
                           const std::string& source_vertex,
                           const std::string& target_vertex,
                           std::vector<Diagnostic>* out) {
  ValidateEndpoints(spec, source_vertex, target_vertex, out);
  if (spec.options.global_ordering && !spec.options.use_multicast) {
    Diagnostic d =
        Diag(DiagCode::kOrderingUnsatisfied, target_vertex, spec.name,
             "global ordering requires the multicast transport");
    // Historical contract: the naive transport could order but is not
    // wired to the sequencer — Unimplemented, not InvalidArgument.
    d.status_code = StatusCode::kUnimplemented;
    out->push_back(d);
  }
}

void ValidateCombinerSpec(const CombinerFlowSpec& spec,
                          const std::string& source_vertex,
                          const std::string& target_vertex,
                          const std::vector<net::NodeId>* target_nodes,
                          std::vector<Diagnostic>* out) {
  ValidateEndpoints(spec, source_vertex, target_vertex, out);
  if (spec.aggregates.empty()) {
    out->push_back(Diag(DiagCode::kNoAggregates, target_vertex, spec.name,
                        "combiner flow needs >= 1 aggregate"));
  }
  if (!spec.global_aggregate &&
      spec.group_by_index >= spec.schema.num_fields()) {
    out->push_back(Diag(
        DiagCode::kKeyOutOfRange, target_vertex, spec.name,
        "group-by index " + std::to_string(spec.group_by_index) +
            " out of range for schema " + spec.schema.ToString()));
  }
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.func != AggFunc::kCount &&
        agg.field_index >= spec.schema.num_fields()) {
      out->push_back(Diag(
          DiagCode::kKeyOutOfRange, target_vertex, spec.name,
          "aggregate field index " + std::to_string(agg.field_index) +
              " out of range for schema " + spec.schema.ToString()));
    }
  }
  // N:1 unless the spec opts into multi-node targets (paper section 4.2.3
  // describes N:1; the transport also supports spreading the group-key
  // partitions over nodes, but accidental fan-out is rejected).
  if (!spec.multi_node_targets && target_nodes != nullptr) {
    for (net::NodeId t : *target_nodes) {
      if (t != (*target_nodes)[0]) {
        out->push_back(Diag(
            DiagCode::kCombinerTopology, target_vertex, spec.name,
            "targets span multiple nodes; set multi_node_targets to opt "
            "into the N:M topology"));
        break;
      }
    }
  }
}

}  // namespace dfi::graph
