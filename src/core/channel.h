#ifndef DFI_CORE_CHANNEL_H_
#define DFI_CORE_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/flow_options.h"
#include "core/ring_sync.h"
#include "core/segment.h"
#include "rdma/queue_pair.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// Result of a blocking consume call on any flow target.
enum class ConsumeResult : uint8_t {
  kOk,
  kFlowEnd,  ///< all sources closed and all data drained (paper: FLOW_END)
  kGap,      ///< ordered replicate flow with app-handled gaps: sequence gap
  kError,    ///< flow failed (deadline, peer crash, abort); see last_status()
};

/// Zero-copy view of one consumable segment returned to the target. Valid
/// until the cursor's Release() (which happens on the next consume).
struct SegmentView {
  const uint8_t* payload = nullptr;
  uint32_t bytes = 0;
  uint64_t sequence = 0;
  uint16_t source_index = 0;
  bool end_of_flow = false;
  SimTime arrival = 0;
  /// Target column (matrix target index) the segment was addressed to. With
  /// work stealing the consuming sink thread may differ from the column
  /// owner; this field always names the column.
  uint16_t target_column = 0;
};

class TargetLoadBoard;

/// State shared between the two ends of one private source->target channel.
/// Created at flow initialization; in a real deployment its coordinates
/// (rkey, ring geometry, credit counter address) are what the registry
/// publishes.
class ChannelShared {
 public:
  /// Allocates the target-side ring on `target_ctx`'s node.
  ChannelShared(rdma::RdmaContext* target_ctx, const FlowOptions& options,
                uint32_t tuple_size, uint16_t source_index);

  ChannelShared(const ChannelShared&) = delete;
  ChannelShared& operator=(const ChannelShared&) = delete;

  /// Payload capacity of one segment given options and tuple size: the
  /// configured segment size for bandwidth flows, one tuple (8-aligned) for
  /// latency flows.
  static uint32_t PayloadCapacityFor(const FlowOptions& options,
                                     uint32_t tuple_size);

  const FlowOptions& options() const { return options_; }
  uint32_t tuple_size() const { return tuple_size_; }
  uint16_t source_index() const { return source_index_; }
  const SegmentRing& ring() const { return ring_; }
  rdma::MemoryRegion* ring_mr() const { return ring_mr_; }
  net::NodeId target_node() const { return target_node_; }
  RingSync& sync() { return sync_; }

  /// Optional ready-channel gate shared by all channels of one target
  /// thread: a source announces each delivered segment by enqueuing this
  /// channel's index (== source_index), so a target blocked on "any of my
  /// rings" wakes when any channel delivers and knows *which* one did.
  void set_target_gate(ReadyGate* gate) { target_gate_ = gate; }
  ReadyGate* target_gate() const { return target_gate_; }

  /// Optional queue-depth board slot: deliveries / releases on this channel
  /// bump the depth of target column `target_index` on `board`. Advisory
  /// (see backpressure.h); null when the matrix carries no board.
  void set_load_board(TargetLoadBoard* board, uint32_t target_index) {
    load_board_ = board;
    load_target_ = target_index;
  }
  TargetLoadBoard* load_board() const { return load_board_; }
  uint32_t load_target() const { return load_target_; }

  /// Optional extra wakeup for a same-node work-stealing sink group: each
  /// delivery (and teardown) bumps this gate's version in addition to the
  /// owning target's gate, so idle sibling sinks wake up to steal.
  void set_steal_wake(ReadyGate* wake) { steal_wake_ = wake; }
  ReadyGate* steal_wake() const { return steal_wake_; }

  /// Delivery/consume announcements shared by both channel halves: update
  /// the load board and (on delivery) kick the steal group's wakeup.
  void AnnounceDelivered();
  void AnnounceConsumed();

  /// Segments delivered into this channel's ring and not yet consumed.
  /// Approaches segments_per_ring only when the consumer side stalls long
  /// enough for the producer to fill the ring — the signal a deferring
  /// sink uses to tell "deep backlog" from "producer about to block".
  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Latency-mode credit state (paper section 5.3). The credit counter
  /// (number of tuples consumed by the target) lives in its own registered
  /// region on the target node so sources refresh it with a real RDMA read.
  uint64_t LoadConsumed() const;
  void IncrementConsumed();
  rdma::RemoteRef credit_ref() const { return credit_mr_->RefAt(0); }
  /// Virtual time at which ring slot `slot` was last freed (used to charge
  /// a blocked source's virtual wait).
  std::atomic<SimTime>& slot_free_time(uint32_t slot) {
    return slot_free_time_[slot];
  }

  /// Fault plan of the fabric this channel lives on (never null).
  const net::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Records which node the source half runs on (set when the source
  /// attaches); lets a blocked target ask the fault plan about its peer.
  void set_source_node(net::NodeId node) {
    source_node_.store(node, std::memory_order_relaxed);
  }
  net::NodeId source_node() const {
    return source_node_.load(std::memory_order_relaxed);
  }

  /// Tears the channel down: both halves observe poisoned() on their next
  /// poll and blocked threads are woken. The first cause wins; subsequent
  /// calls are no-ops. Safe from any thread.
  void Poison(const Status& cause);
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }
  /// The teardown cause (OK when not poisoned).
  Status poison_status() const;

 private:
  const FlowOptions options_;
  const uint32_t tuple_size_;
  const uint16_t source_index_;
  const net::NodeId target_node_;
  const net::FaultPlan* fault_plan_;
  std::atomic<net::NodeId> source_node_{net::kInvalidNode};
  rdma::MemoryRegion* ring_mr_;    // owned by the target's RdmaContext
  rdma::MemoryRegion* credit_mr_;  // latency-mode credit counter
  SegmentRing ring_;
  RingSync sync_;
  ReadyGate* target_gate_ = nullptr;
  TargetLoadBoard* load_board_ = nullptr;
  uint32_t load_target_ = 0;
  ReadyGate* steal_wake_ = nullptr;
  std::atomic<uint32_t> inflight_{0};
  std::unique_ptr<std::atomic<SimTime>[]> slot_free_time_;
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mu_;
  Status poison_cause_;
};

/// Source half of a channel. Owned and driven by exactly one source thread.
///
/// Bandwidth mode (paper section 5.2): tuples are appended to the current
/// segment of a small source-side ring; full segments are written to the
/// target ring with one-sided RDMA writes, the footer travelling behind the
/// payload. Writes are signaled only on source-ring wrap-around (selective
/// signaling); while writing segment n, the footer of target segment n+1 is
/// prefetched with an RDMA read.
///
/// Latency mode (paper section 5.3): each tuple is transmitted immediately
/// as a single (inlined if small) write of a one-tuple segment; a credit
/// system replaces the per-segment footer checks on the source side.
class ChannelSource {
 public:
  ChannelSource(ChannelShared* shared, rdma::RdmaContext* source_ctx,
                VirtualClock* clock);
  ~ChannelSource();

  ChannelSource(const ChannelSource&) = delete;
  ChannelSource& operator=(const ChannelSource&) = delete;

  /// Appends one tuple (bandwidth: stage + maybe transmit; latency:
  /// transmit now). `len` must equal the flow's tuple size.
  Status Push(const void* tuple, uint32_t len);

  /// Zero-copy batch reservation: grants space for up to `max_tuples`
  /// packed tuples directly in the current staging segment, so batch
  /// partitioners scatter tuples in place instead of routing them through a
  /// second per-tuple copy. `*granted` is the number of tuples that fit
  /// (>= 1 whenever max_tuples >= 1; bounded by the space left in the
  /// segment, and by 1 in latency mode where each tuple is its own
  /// segment); `*out` points at the reservation. The reservation must be
  /// filled and sealed with CommitTuples before any other push/flush call
  /// on this channel.
  Status ReserveTuples(uint32_t max_tuples, uint32_t* granted, uint8_t** out);

  /// Seals `count` tuples written into the last reservation: charges the
  /// per-tuple virtual cost once for the whole batch and transmits
  /// (latency: immediately; bandwidth: when the segment is full, keeping
  /// the eager-flush invariant of Push). `count` may be less than granted.
  Status CommitTuples(uint32_t count);

  /// Transmits an externally staged segment (replicate flows stage a
  /// segment once on the source and fan it out over several channels). The
  /// buffer must have SegmentFooter space behind `payload_capacity` bytes;
  /// its footer area is overwritten. Marks the channel closed when `end`.
  Status PushSegment(uint8_t* staged_slot, uint32_t fill, bool end);

  /// Transmits any staged partial segment.
  Status Flush();

  /// Flushes and sends the end-of-flow marker. Idempotent.
  Status Close();

  /// Tears the channel down without a clean end-of-flow: poisons the shared
  /// state (waking both halves) and best-effort publishes a poisoned footer
  /// into the target ring so a remote footer poller discovers the abort the
  /// same way it discovers data. Marks the channel closed; all further
  /// pushes fail with `cause`.
  void Abort(const Status& cause);

  uint64_t segments_sent() const { return send_seq_; }
  /// Number of remote-footer prefetch reads issued (bandwidth mode pipelines
  /// one read per transmitted segment; observability for tests).
  uint64_t footer_reads() const { return footer_reads_; }
  VirtualClock* clock() { return clock_; }

 private:
  Status TransmitSegment(const uint8_t* payload, uint32_t fill, bool end);
  /// Blocks (real) / charges (virtual) until target slot `idx` is writable.
  /// Fails with kDeadlineExceeded / kPeerFailed / kAborted when the flow's
  /// deadline elapses or teardown is observed (the remote-ring-full case
  /// that used to hang forever on a dead consumer).
  Status EnsureRemoteWritable(uint32_t idx);
  /// Latency mode: blocks/charges until a credit is available; same failure
  /// semantics as EnsureRemoteWritable.
  Status EnsureCredit();

  ChannelShared* const shared_;
  rdma::RcQueuePair* qp_ = nullptr;
  rdma::CompletionQueue* send_cq_ = nullptr;
  VirtualClock* const clock_;
  const net::SimConfig* config_;
  /// Virtual cost of pushing one tuple (fixed cost + copy cost), rounded
  /// once at construction so the hot path charges a precomputed integer
  /// instead of doing floating-point math per tuple.
  SimTime tuple_push_cost_ns_ = 0;

  // Source-side staging ring (registered memory on the source node).
  rdma::MemoryRegion* staging_mr_ = nullptr;
  SegmentRing staging_;
  uint32_t staging_slot_ = 0;
  uint32_t fill_ = 0;

  uint64_t send_seq_ = 0;       // segments transmitted
  uint64_t sent_tuples_ = 0;    // latency mode: writes issued
  uint64_t cached_consumed_ = 0;  // latency mode: last read credit value
  uint64_t footer_reads_ = 0;
  bool signal_outstanding_ = false;
  bool closed_ = false;
  alignas(8) uint8_t scratch_footer_[sizeof(SegmentFooter)] = {};
};

/// Target half of a channel: a cursor over the target-side ring. Owned and
/// driven by exactly one target thread (possibly interleaved with cursors
/// of the target's other channels).
class ChannelTargetCursor {
 public:
  ChannelTargetCursor(ChannelShared* shared, VirtualClock* clock);

  ChannelTargetCursor(const ChannelTargetCursor&) = delete;
  ChannelTargetCursor& operator=(const ChannelTargetCursor&) = delete;
  ChannelTargetCursor(ChannelTargetCursor&&) = delete;

  /// Non-blocking: if the next segment is consumable, fills `view` and
  /// returns true. The previous segment (if any) is released first.
  bool TryConsume(SegmentView* view);

  /// Releases the segment returned by the last TryConsume, flipping it back
  /// to writable (paper: "sets the state to writable on subsequent consume
  /// calls"). No-op if nothing is held.
  void Release();

  /// Work-stealing variants: same protocol, but arrival/consume time is
  /// charged against the *consuming sink's* clock rather than the clock the
  /// cursor was constructed with — a stealing sibling pays for what it
  /// eats. The caller (the steal column) serializes access to the cursor.
  bool TryConsume(SegmentView* view, VirtualClock* clock);
  void Release(VirtualClock* clock);

  /// True once the end-of-flow segment has been consumed and released.
  bool exhausted() const { return exhausted_; }

  RingSync& sync() { return shared_->sync(); }
  ChannelShared* shared() { return shared_; }

 private:
  ChannelShared* const shared_;
  VirtualClock* const clock_;
  uint64_t consume_seq_ = 0;
  bool holding_ = false;
  bool exhausted_ = false;
};

}  // namespace dfi

#endif  // DFI_CORE_CHANNEL_H_
