#ifndef DFI_CORE_COMBINER_FLOW_H_
#define DFI_CORE_COMBINER_FLOW_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/endpoint/channel_matrix.h"
#include "core/endpoint/flow_endpoint.h"
#include "core/endpoint/flow_sink.h"
#include "core/endpoint/policies.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/routing.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// Declarative description of a combiner flow (paper section 4.2.3): N:M
/// communication where tuples are aggregated in the target buffer using an
/// aggregate function / group-by specification. Multiple target threads
/// may share the work; tuples are routed to them by group key so partial
/// aggregates are disjoint.
struct CombinerFlowSpec {
  std::string name;
  DfiNodes sources;
  /// Target threads. By default all endpoints must live on one node (the
  /// paper's N:1 topology); set `multi_node_targets` to spread them.
  DfiNodes targets;
  Schema schema;
  /// Group-by field. If `global_aggregate` is true it is ignored and a
  /// single aggregate row is produced per target.
  size_t group_by_index = 0;
  bool global_aggregate = false;
  std::vector<AggSpec> aggregates;
  /// Opt-in N:M topology: target threads may span multiple nodes. Group
  /// keys are partitioned across all target threads exactly as in the
  /// single-node case (partial aggregates stay disjoint), so the only
  /// difference is where the partitions live. Left off,
  /// DfiRuntime::InitCombinerFlow rejects multi-node target sets with
  /// kInvalidArgument to catch accidental fan-out.
  bool multi_node_targets = false;
  FlowOptions options;
};

/// Shared state of a combiner flow: the same channel matrix as a shuffle
/// flow plus the aggregation specification.
class CombinerFlowState : public FlowStateBase {
 public:
  CombinerFlowState(CombinerFlowSpec spec, rdma::RdmaEnv* env);

  const CombinerFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  ChannelMatrix* matrix() { return &matrix_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }
  ChannelShared* channel(uint32_t source, uint32_t target) {
    return matrix_.channel(source, target);
  }
  ReadyGate* target_gate(uint32_t target) {
    return matrix_.target_gate(target);
  }
  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }
  const std::vector<net::NodeId>& source_nodes() const {
    return source_nodes_;
  }

  /// Tears the whole flow down by poisoning every channel; all
  /// participants' next operation fails with `cause`.
  void Abort(const Status& cause) override { matrix_.PoisonAll(cause); }

 private:
  const CombinerFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  ChannelMatrix matrix_;
};

/// Source handle of a combiner flow: a FlowEndpoint whose Partitioner
/// routes by group key (or round-robin for global aggregates) to the
/// target thread owning that key's partition.
class CombinerSource {
 public:
  CombinerSource(std::shared_ptr<CombinerFlowState> state,
                 uint32_t source_index);

  CombinerSource(const CombinerSource&) = delete;
  CombinerSource& operator=(const CombinerSource&) = delete;

  Status Push(const void* tuple) {
    return endpoint_->Push(tuple, &partitioner_);
  }
  Status Flush() { return endpoint_->Flush(); }
  Status Close() { return endpoint_->Close(); }

  /// Aborts this source's channels without a clean end-of-flow; targets
  /// observe the teardown and their ConsumeAggregate returns kError.
  void Abort(const Status& cause) { endpoint_->Abort(cause); }

  const Schema& schema() const { return state_->spec().schema; }
  VirtualClock& clock() { return clock_; }

 private:
  std::shared_ptr<CombinerFlowState> state_;
  const uint32_t source_index_;
  VirtualClock clock_;
  Partitioner partitioner_;  // group-key / round-robin / single-target
  std::optional<FlowEndpoint> endpoint_;
};

/// Target handle of a combiner flow: a FlowSink feeding an Aggregator
/// policy — segments are drained through the unified transport and every
/// tuple folded into its group's accumulators, then the aggregate rows are
/// yielded.
class CombinerTarget {
 public:
  CombinerTarget(std::shared_ptr<CombinerFlowState> state,
                 uint32_t target_index);

  CombinerTarget(const CombinerTarget&) = delete;
  CombinerTarget& operator=(const CombinerTarget&) = delete;

  /// Blocking: next aggregate row. The first call drains the entire flow
  /// (aggregation happens as segments arrive); returns kFlowEnd after the
  /// last row, or kError (see last_status()) when the flow fails while
  /// draining — partial aggregates are discarded, not surfaced.
  ConsumeResult ConsumeAggregate(AggRow* out);

  /// Aborts the target side: blocked sources wake with kAborted.
  void Abort(const Status& cause) { sink_->Abort(cause); }

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  /// Number of input tuples folded so far.
  uint64_t tuples_aggregated() const { return aggregator_->tuples_folded(); }
  VirtualClock& clock() { return clock_; }

 private:
  Status Drain();

  std::shared_ptr<CombinerFlowState> state_;
  const uint32_t target_index_;
  const net::SimConfig* config_;
  VirtualClock clock_;
  std::optional<FlowSink> sink_;
  std::optional<Aggregator> aggregator_;
  bool drained_ = false;
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_COMBINER_FLOW_H_
