#ifndef DFI_CORE_COMBINER_FLOW_H_
#define DFI_CORE_COMBINER_FLOW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/channel.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/routing.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// One aggregation to compute in a combiner flow.
struct AggSpec {
  AggFunc func;
  /// Field whose values are aggregated (ignored for kCount).
  size_t field_index = 0;
};

/// Declarative description of a combiner flow (paper section 4.2.3): N:1
/// communication where tuples are aggregated in the target buffer using an
/// aggregate function / group-by specification. Multiple target *threads*
/// on the receiver node may share the work; tuples are routed to them by
/// group key so partial aggregates are disjoint.
struct CombinerFlowSpec {
  std::string name;
  DfiNodes sources;
  /// Target threads; all endpoints must live on one node (N:1 topology).
  DfiNodes targets;
  Schema schema;
  /// Group-by field. If `global_aggregate` is true it is ignored and a
  /// single aggregate row is produced per target.
  size_t group_by_index = 0;
  bool global_aggregate = false;
  std::vector<AggSpec> aggregates;
  FlowOptions options;
};

/// Shared state of a combiner flow: the same private channel matrix as a
/// shuffle flow plus the aggregation specification.
class CombinerFlowState : public FlowStateBase {
 public:
  CombinerFlowState(CombinerFlowSpec spec, rdma::RdmaEnv* env);

  const CombinerFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }
  ChannelShared* channel(uint32_t source, uint32_t target) {
    return channels_[source * num_targets() + target].get();
  }
  ReadyGate* target_gate(uint32_t target) { return &target_gates_[target]; }
  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }

  /// Tears the whole flow down by poisoning every channel; all
  /// participants' next operation fails with `cause`.
  void Abort(const Status& cause) override;

 private:
  const CombinerFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  std::vector<std::unique_ptr<ChannelShared>> channels_;
  std::unique_ptr<ReadyGate[]> target_gates_;
};

/// Source handle of a combiner flow: pushes tuples, routed by group key to
/// the target thread owning that key's partition.
class CombinerSource {
 public:
  CombinerSource(std::shared_ptr<CombinerFlowState> state,
                 uint32_t source_index);

  CombinerSource(const CombinerSource&) = delete;
  CombinerSource& operator=(const CombinerSource&) = delete;

  Status Push(const void* tuple);
  Status Flush();
  Status Close();

  /// Aborts this source's channels without a clean end-of-flow; targets
  /// observe the teardown and their ConsumeAggregate returns kError.
  void Abort(const Status& cause);

  const Schema& schema() const { return state_->spec().schema; }
  VirtualClock& clock() { return clock_; }

 private:
  std::shared_ptr<CombinerFlowState> state_;
  const uint32_t source_index_;
  const uint32_t tuple_size_;  // cached; immutable per flow
  const FastDivisor target_mod_;  // magic-number `% num_targets`
  VirtualClock clock_;
  std::vector<std::unique_ptr<ChannelSource>> channels_;
  uint64_t rr_ = 0;  // round-robin spread for global aggregates
};

/// One aggregated output row of a combiner target.
struct AggRow {
  uint64_t group_key = 0;
  /// One accumulator per AggSpec, in spec order. Sums/min/max of integer
  /// fields are exact for |value| < 2^53.
  std::vector<double> values;
};

/// Target handle of a combiner flow: drains all sources, folding tuples
/// into per-group accumulators, then yields the aggregate rows.
class CombinerTarget {
 public:
  CombinerTarget(std::shared_ptr<CombinerFlowState> state,
                 uint32_t target_index);

  CombinerTarget(const CombinerTarget&) = delete;
  CombinerTarget& operator=(const CombinerTarget&) = delete;

  /// Blocking: next aggregate row. The first call drains the entire flow
  /// (aggregation happens as segments arrive); returns kFlowEnd after the
  /// last row, or kError (see last_status()) when the flow fails while
  /// draining — partial aggregates are discarded, not surfaced.
  ConsumeResult ConsumeAggregate(AggRow* out);

  /// Aborts the target side: blocked sources wake with kAborted.
  void Abort(const Status& cause);

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  /// Number of input tuples folded so far.
  uint64_t tuples_aggregated() const { return tuples_aggregated_; }
  VirtualClock& clock() { return clock_; }

 private:
  void Fold(TupleView tuple);
  Status Drain();

  std::shared_ptr<CombinerFlowState> state_;
  const uint32_t target_index_;
  const net::SimConfig* config_;
  VirtualClock clock_;
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors_;
  bool drained_ = false;
  uint64_t tuples_aggregated_ = 0;
  std::unordered_map<uint64_t, std::vector<double>> groups_;
  std::unordered_map<uint64_t, bool> group_seen_;  // for min/max init
  std::vector<uint64_t> output_keys_;
  size_t output_pos_ = 0;
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_COMBINER_FLOW_H_
