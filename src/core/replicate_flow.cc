#include "core/replicate_flow.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// ReplicateFlowState
// ---------------------------------------------------------------------------

ReplicateFlowState::ReplicateFlowState(ReplicateFlowSpec spec,
                                       rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  DFI_CHECK_GT(num_sources(), 0u);
  DFI_CHECK_GT(num_targets(), 0u);

  const uint32_t tuple_size =
      static_cast<uint32_t>(spec_.schema.tuple_size());
  if (multicast()) {
    mcast_ = std::make_unique<MulticastState>(env_, spec_.options,
                                              tuple_size, num_sources(),
                                              target_nodes_, &latch_);
    return;
  }
  DFI_CHECK(!ordered()) << "global ordering requires the multicast "
                           "transport in this implementation";
  payload_capacity_ =
      ChannelShared::PayloadCapacityFor(spec_.options, tuple_size);
  matrix_ = ChannelMatrix(env_, spec_.options, tuple_size, num_sources(),
                          target_nodes_);
}

void ReplicateFlowState::Abort(const Status& cause) {
  if (!latch_.Trip(cause)) return;  // first cause wins
  matrix_.PoisonAll(cause);  // naive transport, if any
  if (mcast_) mcast_->WakeCreditWaiters();
}

// ---------------------------------------------------------------------------
// ReplicateSource
// ---------------------------------------------------------------------------

ReplicateSource::ReplicateSource(std::shared_ptr<ReplicateFlowState> state,
                                 uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  rdma::RdmaContext* ctx =
      state_->env()->context(state_->source_node(source_index_));
  const net::SimConfig* config = &state_->env()->config();
  if (state_->multicast()) {
    endpoint_ = std::make_unique<MulticastSendEndpoint>(
        state_->mcast(), source_index_, ctx, config,
        state_->abort_latch(), &clock_);
  } else {
    endpoint_ = std::make_unique<BroadcastEndpoint>(
        state_->matrix(), source_index_, ctx, config,
        state_->abort_latch(), &clock_);
  }
}

// ---------------------------------------------------------------------------
// ReplicateTarget
// ---------------------------------------------------------------------------

ReplicateTarget::ReplicateTarget(std::shared_ptr<ReplicateFlowState> state,
                                 uint32_t target_index)
    : state_(std::move(state)), target_index_(target_index) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  const ReplicateFlowSpec& spec = state_->spec();
  const net::SimConfig* config = &state_->env()->config();
  if (state_->multicast()) {
    mcast_sink_.emplace(state_->mcast(), target_index_, &spec.schema,
                        config, &clock_, "replicate",
                        state_->source_nodes(), state_->abort_latch());
  } else {
    sink_.emplace(state_->matrix(), target_index_, &spec.schema, config,
                  &clock_, "replicate", state_->source_nodes(),
                  state_->abort_latch());
  }
}

void ReplicateTarget::SkipGap() {
  DFI_CHECK(mcast_sink_.has_value())
      << "gap handling requires the multicast transport";
  mcast_sink_->SkipGap();
}

void ReplicateTarget::SupplyGap(const void* data, uint32_t bytes) {
  DFI_CHECK(mcast_sink_.has_value())
      << "gap handling requires the multicast transport";
  mcast_sink_->SupplyGap(data, bytes);
}

}  // namespace dfi
