#include "core/replicate_flow.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "core/deadline.h"
#include "net/fault_plan.h"

namespace dfi {
namespace {

uint32_t RoundUp8(uint32_t v) { return (v + 7u) & ~7u; }

/// Real-time backstop while waiting for out-of-order arrivals before gap
/// handling kicks in.
constexpr std::chrono::milliseconds kGapPollTimeout{5};

/// Real-time poll slice for unordered multicast consumes: long enough to be
/// cheap, short enough that teardown / fault-plan crashes surface promptly.
constexpr std::chrono::milliseconds kConsumePollSlice{1};

}  // namespace

// ---------------------------------------------------------------------------
// ReplicateFlowState
// ---------------------------------------------------------------------------

ReplicateFlowState::ReplicateFlowState(ReplicateFlowSpec spec,
                                       rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  DFI_CHECK_GT(num_sources(), 0u);
  DFI_CHECK_GT(num_targets(), 0u);

  const net::SimConfig& cfg = env_->config();
  const uint32_t tuple_size =
      static_cast<uint32_t>(spec_.schema.tuple_size());
  pool_slots_ = spec_.options.segments_per_ring;

  if (!multicast()) {
    DFI_CHECK(!ordered()) << "global ordering requires the multicast "
                             "transport in this implementation";
    payload_capacity_ =
        ChannelShared::PayloadCapacityFor(spec_.options, tuple_size);
    target_gates_ = std::make_unique<ReadyGate[]>(num_targets());
    channels_.resize(static_cast<size_t>(num_sources()) * num_targets());
    for (uint32_t s = 0; s < num_sources(); ++s) {
      for (uint32_t t = 0; t < num_targets(); ++t) {
        auto ch = std::make_unique<ChannelShared>(
            env_->context(target_nodes_[t]), spec_.options, tuple_size,
            static_cast<uint16_t>(s));
        ch->set_target_gate(&target_gates_[t]);
        channels_[static_cast<size_t>(s) * num_targets() + t] =
            std::move(ch);
      }
    }
    return;
  }

  // Multicast transport: segments must fit one datagram.
  const uint32_t mtu_payload =
      (cfg.ud_mtu_bytes - sizeof(SegmentFooter)) & ~7u;
  if (spec_.options.optimization == FlowOptimization::kLatency) {
    payload_capacity_ = RoundUp8(tuple_size);
  } else {
    payload_capacity_ =
        std::min(RoundUp8(spec_.options.segment_size), mtu_payload);
    payload_capacity_ = std::max(payload_capacity_, RoundUp8(tuple_size));
  }
  DFI_CHECK_LE(payload_capacity_ + sizeof(SegmentFooter), cfg.ud_mtu_bytes)
      << "tuple too large for one multicast datagram";
  if (cfg.multicast_loss_probability > 0) {
    DFI_CHECK(ordered()) << "loss injection requires a globally ordered "
                            "replicate flow (gap detection + retransmit)";
  }

  group_ = env_->fabric().network_switch().CreateGroup();
  target_qps_.resize(num_targets());
  recv_pools_.resize(num_targets());
  credit_mrs_.resize(num_targets());
  consume_time_ = std::make_unique<std::atomic<SimTime>[]>(num_targets());
  ends_seen_ = std::make_unique<std::atomic<uint32_t>[]>(num_targets());
  for (uint32_t t = 0; t < num_targets(); ++t) {
    rdma::RdmaContext* ctx = env_->context(target_nodes_[t]);
    rdma::CompletionQueue* recv_cq = ctx->CreateCq();
    target_qps_[t] = ctx->CreateUdQp(ctx->CreateCq(), recv_cq);
    DFI_CHECK_OK(target_qps_[t]->AttachMulticast(group_));
    recv_pools_[t] =
        ctx->AllocateRegion(static_cast<size_t>(slot_bytes()) * pool_slots_);
    for (uint32_t i = 0; i < pool_slots_; ++i) {
      target_qps_[t]->PostRecv(recv_pools_[t]->addr() +
                                   static_cast<size_t>(i) * slot_bytes(),
                               slot_bytes(), i);
    }
    credit_mrs_[t] = ctx->AllocateRegion(64);
    consume_time_[t].store(0, std::memory_order_relaxed);
    ends_seen_[t].store(0, std::memory_order_relaxed);
  }
  if (ordered()) {
    sequencer_mr_ = env_->context(sequencer_node())->AllocateRegion(64);
    histories_.resize(num_sources());
    for (auto& h : histories_) h = std::make_unique<History>();
  }
}

uint8_t* ReplicateFlowState::recv_slot(uint32_t target, uint32_t slot) {
  return recv_pools_[target]->addr() +
         static_cast<size_t>(slot) * slot_bytes();
}

StatusOr<uint64_t> ReplicateFlowState::AcquirePosition(
    rdma::RcQueuePair* seq_qp, VirtualClock* clock) {
  if (!ordered()) {
    return unordered_positions_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Tuple sequencer: RDMA fetch-and-add on a global counter (paper 5.4).
  // Fails with kPeerFailed when the sequencer node crashed or is
  // partitioned away — the flow cannot make ordered progress then.
  return seq_qp->FetchAdd(sequencer_ref(), 1, clock);
}

uint64_t ReplicateFlowState::LoadConsumed(uint32_t target) const {
  return std::atomic_ref<uint64_t>(
             *reinterpret_cast<uint64_t*>(credit_mrs_[target]->addr()))
      .load(std::memory_order_acquire);
}

rdma::RemoteRef ReplicateFlowState::credit_ref(uint32_t target) const {
  return credit_mrs_[target]->RefAt(0);
}

void ReplicateFlowState::ReportConsumed(uint32_t target, SimTime now) {
  consume_time_[target].store(now, std::memory_order_release);
  std::atomic_ref<uint64_t>(
      *reinterpret_cast<uint64_t*>(credit_mrs_[target]->addr()))
      .fetch_add(1, std::memory_order_acq_rel);
  credit_sync_.Notify();
}

Status ReplicateFlowState::WaitForCredit(
    uint64_t position, std::vector<rdma::RcQueuePair*>& credit_qps,
    VirtualClock* clock) {
  const uint64_t slots = pool_slots_;
  auto min_consumed = [&] {
    uint64_t m = UINT64_MAX;
    for (uint32_t t = 0; t < num_targets(); ++t) {
      m = std::min(m, LoadConsumed(t));
    }
    return m;
  };
  // Periodic credit refresh: one 8-byte RDMA read per target each time the
  // cached window is half used (paper: "remote credit is read once the
  // local credit counter reaches a certain threshold").
  if (slots >= 2 && position % (slots / 2) == (slots / 2) - 1) {
    alignas(8) uint8_t scratch[8];
    for (uint32_t t = 0; t < num_targets(); ++t) {
      rdma::ReadDesc read;
      read.local = scratch;
      read.remote = credit_ref(t);
      read.length = sizeof(uint64_t);
      auto timing = credit_qps[t]->PostRead(read, clock);
      DFI_RETURN_IF_ERROR(timing.status());
    }
  }
  if (position < min_consumed() + slots) return Status::OK();

  // Blocked: wait until every target caught up. A dead or aborted target
  // never reports consumption, so the wait is deadline-bounded and checks
  // teardown / fault-plan state every slice instead of hanging forever.
  DeadlineWait wait(spec_.options, clock);
  const net::FaultPlan& plan = env_->fabric().fault_plan();
  for (;;) {
    const uint64_t seen = credit_sync_.version();
    if (position < min_consumed() + slots) break;
    if (aborted()) {
      wait.Commit();
      return abort_status();
    }
    if (plan.active()) {
      const SimTime now = wait.ProvisionalNow();
      for (uint32_t t = 0; t < num_targets(); ++t) {
        if (!plan.NodeAlive(target_nodes_[t], now)) {
          wait.Commit();
          return Status::PeerFailed(
              "replicate target " + std::to_string(t) + " on node " +
              std::to_string(target_nodes_[t]) +
              " failed; credit window cannot advance");
        }
      }
    }
    if (!wait.Tick()) {
      wait.Commit();
      return Status::DeadlineExceeded(
          "credit wait deadline at position " + std::to_string(position));
    }
    credit_sync_.WaitChangedFor(seen, DeadlineWait::kRealSlice);
  }

  // Success: charge virtual time from the limiting target's consume
  // timestamp plus one discovering read (fault-free timing unchanged).
  SimTime limit = 0;
  for (uint32_t t = 0; t < num_targets(); ++t) {
    limit = std::max(limit,
                     consume_time_[t].load(std::memory_order_acquire));
  }
  clock->AdvanceTo(limit);
  alignas(8) uint8_t scratch[8];
  rdma::ReadDesc read;
  read.local = scratch;
  read.remote = credit_ref(0);
  read.length = sizeof(uint64_t);
  auto timing = credit_qps[0]->PostRead(read, clock);
  DFI_RETURN_IF_ERROR(timing.status());
  clock->AdvanceTo(timing->arrival);
  return Status::OK();
}

void ReplicateFlowState::Abort(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (aborted_.load(std::memory_order_relaxed)) return;
    abort_cause_ = cause.ok() ? Status::Aborted("flow aborted") : cause;
    aborted_.store(true, std::memory_order_release);
  }
  for (auto& ch : channels_) ch->Poison(cause);  // naive transport, if any
  credit_sync_.Notify();  // wake sources blocked on the credit window
}

Status ReplicateFlowState::abort_status() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  return abort_cause_;
}

void ReplicateFlowState::RecordHistory(uint32_t source, uint64_t seq,
                                       const uint8_t* data, uint32_t len) {
  History& h = *histories_[source];
  std::lock_guard<std::mutex> lock(h.mu);
  h.segments.emplace(seq, std::vector<uint8_t>(data, data + len));
  while (h.segments.size() > kHistoryDepth) {
    h.segments.erase(h.segments.begin());
  }
}

bool ReplicateFlowState::LookupHistory(uint64_t seq,
                                       std::vector<uint8_t>* out) const {
  for (const auto& hp : histories_) {
    std::lock_guard<std::mutex> lock(hp->mu);
    auto it = hp->segments.find(seq);
    if (it != hp->segments.end()) {
      *out = it->second;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// ReplicateSource
// ---------------------------------------------------------------------------

ReplicateSource::ReplicateSource(std::shared_ptr<ReplicateFlowState> state,
                                 uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  rdma::RdmaContext* ctx =
      state_->env()->context(state_->source_node(source_index_));
  const uint32_t capacity = state_->payload_capacity();
  const uint32_t staging_slots =
      state_->spec().options.optimization == FlowOptimization::kLatency
          ? 1
          : std::max(2u, state_->spec().options.source_segments);
  staging_mr_ = ctx->AllocateRegion(
      static_cast<size_t>(capacity + sizeof(SegmentFooter)) * staging_slots);
  staging_ = SegmentRing(staging_mr_->addr(), capacity, staging_slots);

  if (state_->multicast()) {
    rdma::CompletionQueue* cq = ctx->CreateCq();
    ud_qp_ = ctx->CreateUdQp(cq, ctx->CreateCq());
    if (state_->ordered()) {
      seq_qp_ = ctx->CreateRcQp(state_->sequencer_node(), cq);
    }
    for (uint32_t t = 0; t < state_->num_targets(); ++t) {
      credit_qps_.push_back(ctx->CreateRcQp(state_->target_node(t), cq));
    }
  } else {
    for (uint32_t t = 0; t < state_->num_targets(); ++t) {
      channels_.push_back(std::make_unique<ChannelSource>(
          state_->channel(source_index_, t), ctx, &clock_));
    }
  }
}

Status ReplicateSource::Push(const void* tuple) {
  if (closed_) {
    return Status::FailedPrecondition("push on closed replicate source");
  }
  if (state_->aborted()) return state_->abort_status();
  const net::SimConfig& cfg = state_->env()->config();
  const uint32_t len = static_cast<uint32_t>(schema().tuple_size());
  // The tuple is staged once regardless of target count; replication
  // happens in the NIC (naive: parallel writes) or in the switch
  // (multicast) — see paper section 6.1.2.
  clock_.Advance(cfg.tuple_push_fixed_ns +
                 static_cast<SimTime>(
                     std::llround(len * cfg.tuple_copy_ns_per_byte)));

  if (state_->spec().options.optimization == FlowOptimization::kLatency) {
    std::memcpy(staging_.payload(0), tuple, len);
    return state_->multicast() ? TransmitMulticast(len, false)
                               : TransmitNaive(len, false);
  }
  const uint32_t capacity = staging_.payload_capacity();
  if (fill_ + len > capacity) {
    DFI_RETURN_IF_ERROR(Flush());
  }
  std::memcpy(staging_.payload(staging_slot_) + fill_, tuple, len);
  fill_ += len;
  if (fill_ + len > capacity) {
    DFI_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status ReplicateSource::Flush() {
  if (fill_ == 0) return Status::OK();
  const uint32_t fill = fill_;
  fill_ = 0;
  Status s = state_->multicast() ? TransmitMulticast(fill, false)
                                 : TransmitNaive(fill, false);
  staging_slot_ = (staging_slot_ + 1) % staging_.num_segments();
  return s;
}

Status ReplicateSource::Close() {
  if (closed_) return Status::OK();
  const uint32_t fill = fill_;
  fill_ = 0;
  Status s = state_->multicast() ? TransmitMulticast(fill, true)
                                 : TransmitNaive(fill, true);
  DFI_RETURN_IF_ERROR(s);
  closed_ = true;
  return Status::OK();
}

Status ReplicateSource::TransmitNaive(uint32_t fill, bool end) {
  uint8_t* slot = staging_.payload(staging_slot_);
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->PushSegment(slot, fill, end));
  }
  return Status::OK();
}

void ReplicateSource::Abort(const Status& cause) {
  closed_ = true;
  if (state_->multicast()) {
    // Switch replication has no per-pair channel: tear the flow down.
    state_->Abort(cause);
    return;
  }
  for (auto& ch : channels_) ch->Abort(cause);
}

Status ReplicateSource::TransmitMulticast(uint32_t fill, bool end) {
  DFI_ASSIGN_OR_RETURN(const uint64_t position,
                       state_->AcquirePosition(seq_qp_, &clock_));
  DFI_RETURN_IF_ERROR(
      state_->WaitForCredit(position, credit_qps_, &clock_));

  uint8_t* slot = staging_.payload(staging_slot_);
  auto* footer = reinterpret_cast<SegmentFooter*>(
      slot + staging_.payload_capacity());
  footer->sequence = position;
  footer->fill_bytes = fill;
  footer->source_index = static_cast<uint16_t>(source_index_);
  footer->reserved = 0;
  footer->arrival_sim_time = 0;  // per-target arrival comes from the CQE
  footer->flags = static_cast<uint8_t>(kFlagConsumable |
                                       (end ? kFlagEndOfFlow : 0));
  if (state_->ordered()) {
    state_->RecordHistory(source_index_, position, slot,
                          state_->slot_bytes());
  }
  clock_.Advance(state_->env()->config().segment_seal_ns);
  auto timing = ud_qp_->PostSendMulticast(state_->group(), slot,
                                          state_->slot_bytes(), position,
                                          /*signaled=*/false, &clock_);
  DFI_RETURN_IF_ERROR(timing.status());
  ++send_count_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ReplicateTarget
// ---------------------------------------------------------------------------

ReplicateTarget::ReplicateTarget(std::shared_ptr<ReplicateFlowState> state,
                                 uint32_t target_index)
    : state_(std::move(state)),
      target_index_(target_index),
      config_(&state_->env()->config()) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  if (!state_->multicast()) {
    for (uint32_t s = 0; s < state_->num_sources(); ++s) {
      cursors_.push_back(std::make_unique<ChannelTargetCursor>(
          state_->channel(s, target_index_), &clock_));
    }
  }
}

const SegmentFooter* ReplicateTarget::SlotFooter(uint32_t slot) const {
  return reinterpret_cast<const SegmentFooter*>(
      const_cast<ReplicateFlowState&>(*state_).recv_slot(target_index_,
                                                         slot) +
      state_->payload_capacity());
}

void ReplicateTarget::ReleaseHeld() {
  if (held_slot_ >= 0) {
    state_->target_qp(target_index_)
        ->PostRecv(state_->recv_slot(target_index_,
                                     static_cast<uint32_t>(held_slot_)),
                   state_->slot_bytes(), static_cast<uint32_t>(held_slot_));
    state_->ReportConsumed(target_index_, clock_.now());
    held_slot_ = -1;
  }
  if (!held_copy_.empty()) {
    held_copy_.clear();
    state_->ReportConsumed(target_index_, clock_.now());
  }
}

ConsumeResult ReplicateTarget::ConsumeSegment(SegmentView* out) {
  if (!state_->multicast()) return ConsumeNaive(out);
  return state_->ordered() ? ConsumeMulticastOrdered(out)
                           : ConsumeMulticastUnordered(out);
}

bool ReplicateTarget::CheckFailure(DeadlineWait* wait,
                                   ConsumeResult* out_result) {
  // Flow-level teardown first.
  if (state_->aborted()) {
    last_status_ = state_->abort_status();
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  // Naive transport: per-channel poison (a source-side Abort poisons its
  // channels before the flow-level flag is necessarily set).
  for (auto& cursor : cursors_) {
    if (!cursor->exhausted() && cursor->shared()->poisoned()) {
      last_status_ = cursor->shared()->poison_status();
      wait->Commit();
      *out_result = ConsumeResult::kError;
      return true;
    }
  }
  // A crashed source never sequences its end-of-flow marker, so the flow
  // can never finish; surface it as kPeerFailed. (Multicast end markers are
  // counted, not per-source, so any dead source fails the flow — membership
  // semantics.)
  const net::FaultPlan& plan = state_->env()->fabric().fault_plan();
  if (plan.active()) {
    const SimTime now = wait->ProvisionalNow();
    for (uint32_t s = 0; s < state_->num_sources(); ++s) {
      if (!state_->multicast() && cursors_[s]->exhausted()) continue;
      const net::NodeId src = state_->source_node(s);
      if (!plan.NodeAlive(src, now)) {
        last_status_ = Status::PeerFailed(
            "replicate source " + std::to_string(s) + " on node " +
            std::to_string(src) + " failed before closing the flow");
        wait->Commit();
        *out_result = ConsumeResult::kError;
        return true;
      }
    }
  }
  if (!wait->Tick()) {
    last_status_ =
        Status::DeadlineExceeded("replicate consume deadline elapsed");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  return false;
}

void ReplicateTarget::Abort(const Status& cause) { state_->Abort(cause); }

ConsumeResult ReplicateTarget::ConsumeNaive(SegmentView* out) {
  ReadyGate* gate = state_->target_gate(target_index_);
  const uint32_t n = static_cast<uint32_t>(cursors_.size());
  DeadlineWait wait(state_->spec().options, &clock_);
  // Serve segments in delivery order off the ready list — O(deliveries)
  // instead of an O(num_sources) ring scan per segment. Exhaustion is
  // counted at release transitions, so flow end needs no recount.
  for (;;) {
    const uint64_t version = gate->version();
    if (held_cursor_ >= 0) {
      ChannelTargetCursor& held = *cursors_[held_cursor_];
      held.Release();
      if (held.exhausted()) ++exhausted_count_;
      held_cursor_ = -1;
    }
    uint32_t idx = 0;
    while (gate->TryDequeue(&idx)) {
      ChannelTargetCursor& cursor = *cursors_[idx];
      if (cursor.exhausted()) continue;  // stale entry
      SegmentView view;
      if (!cursor.TryConsume(&view)) {
        clock_.Advance(config_->consume_poll_ns);
        continue;
      }
      clock_.Advance(config_->consume_segment_fixed_ns);
      if (view.bytes == 0) {
        cursor.Release();  // pure end marker
        if (cursor.exhausted()) ++exhausted_count_;
        continue;
      }
      held_cursor_ = static_cast<int>(idx);
      *out = view;
      return ConsumeResult::kOk;
    }
    if (exhausted_count_ == n) return ConsumeResult::kFlowEnd;
    ConsumeResult failure;
    if (CheckFailure(&wait, &failure)) return failure;
    gate->WaitChangedFor(version, DeadlineWait::kRealSlice);
  }
}

ConsumeResult ReplicateTarget::ConsumeMulticastUnordered(SegmentView* out) {
  ReleaseHeld();
  rdma::CompletionQueue* cq = state_->target_qp(target_index_)->recv_cq();
  auto& ends = state_->ends_seen(target_index_);
  DeadlineWait wait(state_->spec().options, &clock_);
  for (;;) {
    if (ends.load(std::memory_order_acquire) == state_->num_sources()) {
      return ConsumeResult::kFlowEnd;
    }
    rdma::Completion c;
    if (!cq->PollFor(&c, &clock_, kConsumePollSlice)) {
      ConsumeResult failure;
      if (CheckFailure(&wait, &failure)) return failure;
      continue;
    }
    const uint32_t slot = static_cast<uint32_t>(c.wr_id);
    const SegmentFooter* footer = SlotFooter(slot);
    if (footer->end_of_flow()) {
      ends.fetch_add(1, std::memory_order_acq_rel);
      if (footer->fill_bytes == 0) {
        // Pure end marker: recycle.
        state_->target_qp(target_index_)
            ->PostRecv(state_->recv_slot(target_index_, slot),
                       state_->slot_bytes(), slot);
        state_->ReportConsumed(target_index_, clock_.now());
        continue;
      }
      // End marker carrying the source's final partial segment: deliver.
    }
    clock_.Advance(config_->consume_segment_fixed_ns);
    held_slot_ = static_cast<int>(slot);
    *out = SegmentView{state_->recv_slot(target_index_, slot),
                       footer->fill_bytes,
                       footer->sequence,
                       footer->source_index,
                       footer->end_of_flow(),
                       c.time};
    return ConsumeResult::kOk;
  }
}

ConsumeResult ReplicateTarget::ConsumeMulticastOrdered(SegmentView* out) {
  ReleaseHeld();
  rdma::CompletionQueue* cq = state_->target_qp(target_index_)->recv_cq();
  auto& ends = state_->ends_seen(target_index_);
  DeadlineWait wait(state_->spec().options, &clock_);
  for (;;) {
    if (ends.load(std::memory_order_acquire) == state_->num_sources()) {
      return ConsumeResult::kFlowEnd;
    }
    // Serve in order from the next list (paper Figure 6).
    auto it = next_list_.begin();
    if (it != next_list_.end() && it->first == expected_seq_) {
      NextEntry entry = std::move(it->second);
      next_list_.erase(it);
      ++expected_seq_;
      const uint8_t* base;
      if (entry.slot != UINT32_MAX) {
        base = state_->recv_slot(target_index_, entry.slot);
      } else {
        held_copy_ = std::move(entry.copy);
        base = held_copy_.data();
      }
      const auto* footer = reinterpret_cast<const SegmentFooter*>(
          base + state_->payload_capacity());
      if (footer->end_of_flow()) {
        // End markers are sequenced like data.
        ends.fetch_add(1, std::memory_order_acq_rel);
        if (footer->fill_bytes == 0) {
          // Pure marker: recycle.
          if (entry.slot != UINT32_MAX) {
            held_slot_ = static_cast<int>(entry.slot);
          }
          ReleaseHeld();
          continue;
        }
        // Marker carrying the final partial segment: fall through and
        // deliver the payload.
      }
      clock_.Advance(config_->consume_segment_fixed_ns);
      clock_.AdvanceTo(entry.arrival);
      if (entry.slot != UINT32_MAX) {
        held_slot_ = static_cast<int>(entry.slot);
      }
      *out = SegmentView{base,
                         footer->fill_bytes,
                         footer->sequence,
                         footer->source_index,
                         footer->end_of_flow(),
                         entry.arrival};
      return ConsumeResult::kOk;
    }

    // Pull arrivals into the next list.
    rdma::Completion c;
    if (cq->PollFor(&c, &clock_, kGapPollTimeout)) {
      const uint32_t slot = static_cast<uint32_t>(c.wr_id);
      const SegmentFooter* footer = SlotFooter(slot);
      const uint64_t seq = footer->sequence;
      if (seq < expected_seq_ || next_list_.count(seq) != 0) {
        // Duplicate (e.g. a retransmission raced the original): recycle the
        // slot without reporting consumption — the sequence was already
        // credited once.
        state_->target_qp(target_index_)
            ->PostRecv(state_->recv_slot(target_index_, slot),
                       state_->slot_bytes(), slot);
        continue;
      }
      next_list_.emplace(seq, NextEntry{slot, {}, c.time});
      continue;
    }

    // Poll timed out: first surface teardown / dead peers / the deadline,
    // then consider gap recovery (paper section 5.4). With loss injection
    // disabled nothing can be lost — the head sequence is merely still in
    // flight (e.g. its sender was descheduled), so keep polling instead of
    // issuing spurious recoveries.
    ConsumeResult failure;
    if (CheckFailure(&wait, &failure)) return failure;
    if (config_->multicast_loss_probability <= 0 &&
        !state_->env()->fabric().fault_plan().HasLossBursts()) {
      continue;
    }
    // Evidence of loss is either a later segment already queued, or the
    // missing sequence being present in a source's retransmit history
    // (covers tail loss where no later segment will ever arrive).
    if (state_->spec().options.app_handles_gaps) {
      // Evidence: a later segment already queued, or the missing sequence
      // recorded in a sender's history (covers tail loss, where nothing
      // later will ever arrive).
      std::vector<uint8_t> probe;
      if (next_list_.empty() && !state_->LookupHistory(expected_seq_, &probe)) {
        continue;  // nothing proves a gap yet
      }
      clock_.Advance(state_->spec().options.gap_timeout_ns);
      out->payload = nullptr;
      out->bytes = 0;
      out->sequence = expected_seq_;  // the missing sequence number
      out->end_of_flow = false;
      out->arrival = clock_.now();
      return ConsumeResult::kGap;
    }
    // Transparent recovery: request a retransmission. In-process this pulls
    // straight from the source's retransmit history, charging the unicast
    // round-trip it would cost on the wire.
    std::vector<uint8_t> copy;
    if (state_->LookupHistory(expected_seq_, &copy)) {
      const net::SimConfig& cfg = *config_;
      clock_.Advance(state_->spec().options.gap_timeout_ns);
      clock_.Advance(2 * cfg.propagation_ns + cfg.ud_send_overhead_ns +
                     static_cast<SimTime>(state_->slot_bytes() /
                                          cfg.LinkBytesPerNs()));
      next_list_.emplace(expected_seq_,
                         NextEntry{UINT32_MAX, std::move(copy),
                                   clock_.now()});
    }
    // Otherwise the segment is still in flight (or not yet sent); keep
    // waiting.
  }
}

ConsumeResult ReplicateTarget::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema().tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, &schema());
      tuple_offset_ += tuple_size;
      clock_.Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r != ConsumeResult::kOk) return r;
    current_ = view;
  }
}

void ReplicateTarget::SkipGap() {
  DFI_CHECK(state_->ordered() && state_->spec().options.app_handles_gaps);
  ++expected_seq_;
  state_->ReportConsumed(target_index_, clock_.now());
}

void ReplicateTarget::SupplyGap(const void* data, uint32_t bytes) {
  DFI_CHECK(state_->ordered() && state_->spec().options.app_handles_gaps);
  DFI_CHECK_LE(bytes, state_->payload_capacity());
  std::vector<uint8_t> copy(state_->slot_bytes(), 0);
  std::memcpy(copy.data(), data, bytes);
  auto* footer = reinterpret_cast<SegmentFooter*>(
      copy.data() + state_->payload_capacity());
  footer->sequence = expected_seq_;
  footer->fill_bytes = bytes;
  footer->flags = kFlagConsumable;
  footer->arrival_sim_time = clock_.now();
  next_list_.emplace(expected_seq_,
                     NextEntry{UINT32_MAX, std::move(copy), clock_.now()});
}

}  // namespace dfi
