#ifndef DFI_CORE_ROUTING_H_
#define DFI_CORE_ROUTING_H_

#include <cstdint>
#include <functional>

#include "common/hash.h"
#include "common/logging.h"
#include "core/schema.h"

namespace dfi {

/// Application-supplied routing function for shuffle flows (paper section
/// 4.2.1, option (2)): maps a tuple to a target index in [0, num_targets).
/// Used e.g. to realize range partitioning or radix-hash partitioning.
using RoutingFn = std::function<uint32_t(TupleView, uint32_t num_targets)>;

/// Reads a tuple's key field as an unsigned 64-bit value regardless of the
/// field's declared width (zero-extended).
inline uint64_t ReadKeyAsU64(TupleView tuple, size_t field_index) {
  const Schema& schema = *tuple.schema();
  const size_t size = schema.field_size(field_index);
  const uint8_t* p = tuple.FieldPtr(field_index);
  switch (size) {
    case 1:
      return *p;
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case 8: {
      uint64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
    default:
      // Wide (kChar) keys: hash the bytes.
      return HashBytes(p, size);
  }
}

/// DFI's default routing: hash of the shuffle key modulo target count
/// (paper section 3.2, option (1)).
inline RoutingFn KeyHashRouting(size_t key_field_index) {
  return [key_field_index](TupleView tuple, uint32_t num_targets) {
    return static_cast<uint32_t>(
        HashU64(ReadKeyAsU64(tuple, key_field_index)) % num_targets);
  };
}

/// Radix-hash partition routing over `bits` bits starting at `shift`
/// (paper section 4.3.1 — the distributed radix join's routing function).
inline RoutingFn RadixRouting(size_t key_field_index, uint32_t shift,
                              uint32_t bits) {
  return [key_field_index, shift, bits](TupleView tuple,
                                        uint32_t num_targets) {
    const uint32_t part =
        RadixBits(ReadKeyAsU64(tuple, key_field_index), shift, bits);
    DFI_DCHECK(part < num_targets);
    return part % num_targets;
  };
}

}  // namespace dfi

#endif  // DFI_CORE_ROUTING_H_
