#ifndef DFI_CORE_ROUTING_H_
#define DFI_CORE_ROUTING_H_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/schema.h"

namespace dfi {

/// Application-supplied routing function for shuffle flows (paper section
/// 4.2.1, option (2)): maps a tuple to a target index in [0, num_targets).
/// Used e.g. to realize range partitioning or radix-hash partitioning.
using RoutingFn = std::function<uint32_t(TupleView, uint32_t num_targets)>;

/// Reads a packed key of `size` bytes as an unsigned 64-bit value
/// (zero-extended); wide (kChar) keys are hashed. Split out of
/// ReadKeyAsU64 so batch partitioners can hoist the offset/size lookup out
/// of their inner loop.
inline uint64_t ReadKeyBytes(const uint8_t* p, size_t size) {
  switch (size) {
    case 1:
      return *p;
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case 8: {
      uint64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
    default:
      // Wide (kChar) keys: hash the bytes.
      return HashBytes(p, size);
  }
}

/// Reads a tuple's key field as an unsigned 64-bit value regardless of the
/// field's declared width (zero-extended).
inline uint64_t ReadKeyAsU64(TupleView tuple, size_t field_index) {
  const Schema& schema = *tuple.schema();
  return ReadKeyBytes(tuple.FieldPtr(field_index),
                      schema.field_size(field_index));
}

/// Routing strategy of a shuffle flow. The two builtin partitioners
/// (key-hash and radix) are carried *declaratively* so sources can run them
/// devirtualized over whole batches (one histogram+scatter loop per batch
/// instead of one std::function dispatch per tuple); arbitrary RoutingFns
/// are wrapped as kGeneric and dispatched per tuple.
class RoutingSpec {
 public:
  enum class Kind : uint8_t {
    kUnset,    ///< flow default: key-hash on ShuffleFlowSpec::shuffle_key_index
    kKeyHash,  ///< HashU64(key) % num_targets (paper section 3.2, option (1))
    kRadix,    ///< radix bits of HashU64(key) (paper section 4.3.1)
    kGeneric,  ///< opaque user RoutingFn
  };

  RoutingSpec() = default;
  /// Implicit wrap of a custom function (or any callable convertible to
  /// one), so `spec.routing = lambda` keeps working at every existing call
  /// site.
  template <typename F,
            typename = std::enable_if_t<
                std::is_convertible_v<F, RoutingFn> &&
                !std::is_same_v<std::decay_t<F>, RoutingSpec>>>
  RoutingSpec(F&& fn)  // NOLINT(google-explicit-constructor)
      : fn_(std::forward<F>(fn)) {
    kind_ = fn_ ? Kind::kGeneric : Kind::kUnset;
  }

  static RoutingSpec KeyHash(size_t key_field_index) {
    RoutingSpec spec;
    spec.kind_ = Kind::kKeyHash;
    spec.key_field_index_ = key_field_index;
    return spec;
  }

  static RoutingSpec Radix(size_t key_field_index, uint32_t shift,
                           uint32_t bits) {
    RoutingSpec spec;
    spec.kind_ = Kind::kRadix;
    spec.key_field_index_ = key_field_index;
    spec.shift_ = shift;
    spec.bits_ = bits;
    return spec;
  }

  Kind kind() const { return kind_; }
  bool set() const { return kind_ != Kind::kUnset; }
  size_t key_field_index() const { return key_field_index_; }
  uint32_t shift() const { return shift_; }
  uint32_t bits() const { return bits_; }
  /// The wrapped function; only valid for kGeneric.
  const RoutingFn& generic_fn() const { return fn_; }

  /// Materializes a per-tuple callable for any kind — the tuple-at-a-time
  /// path and the batch fallback for kGeneric use this.
  RoutingFn MakeFn() const {
    switch (kind_) {
      case Kind::kKeyHash: {
        const size_t key = key_field_index_;
        // The modulo divisor is loop-invariant in practice (one flow, one
        // target count), so memoize its magic number; results are
        // bit-identical to `% num_targets`.
        return [key, mod = FastDivisor()](TupleView tuple,
                                          uint32_t num_targets) mutable {
          if (mod.divisor() != num_targets) mod = FastDivisor(num_targets);
          return static_cast<uint32_t>(
              mod.Mod(HashU64(ReadKeyAsU64(tuple, key))));
        };
      }
      case Kind::kRadix: {
        const size_t key = key_field_index_;
        const uint32_t shift = shift_;
        const uint32_t bits = bits_;
        return [key, shift, bits](TupleView tuple, uint32_t num_targets) {
          const uint32_t part =
              RadixBits(ReadKeyAsU64(tuple, key), shift, bits);
          DFI_DCHECK(part < num_targets);
          (void)num_targets;
          return part;
        };
      }
      case Kind::kGeneric:
        return fn_;
      case Kind::kUnset:
        break;
    }
    return nullptr;
  }

 private:
  Kind kind_ = Kind::kUnset;
  size_t key_field_index_ = 0;
  uint32_t shift_ = 0;
  uint32_t bits_ = 0;
  RoutingFn fn_;
};

/// DFI's default routing: hash of the shuffle key modulo target count
/// (paper section 3.2, option (1)). Recognized by the batch push path.
inline RoutingSpec KeyHashRouting(size_t key_field_index) {
  return RoutingSpec::KeyHash(key_field_index);
}

/// Radix-hash partition routing over `bits` bits starting at `shift`
/// (paper section 4.3.1 — the distributed radix join's routing function).
/// The partition must already lie in [0, num_targets); out-of-range
/// partitions are a routing-function bug surfaced by the DFI_DCHECK (and by
/// the range check in ShuffleSource) rather than silently wrapped.
/// Recognized by the batch push path.
inline RoutingSpec RadixRouting(size_t key_field_index, uint32_t shift,
                                uint32_t bits) {
  return RoutingSpec::Radix(key_field_index, shift, bits);
}

}  // namespace dfi

#endif  // DFI_CORE_ROUTING_H_
