#ifndef DFI_CORE_NODES_H_
#define DFI_CORE_NODES_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"

namespace dfi {

/// One flow endpoint: a specific worker thread on a specific node. DFI is
/// thread-centric — sources and targets are threads, not processes (paper
/// design principle (2)).
struct Endpoint {
  std::string address;   ///< node address, e.g. "192.168.0.1"
  uint32_t thread_id;    ///< worker thread on that node
};

/// Endpoint list in the paper's notation:
/// `DFI_Nodes n({"192.168.0.1|0", "192.168.0.2|1"})` — each entry is
/// "<node-address>|<thread-id>".
class DfiNodes {
 public:
  DfiNodes() = default;
  /// Parses "addr|tid" strings; DFI_CHECKs on malformed input (use Parse()
  /// for recoverable handling).
  DfiNodes(std::initializer_list<std::string> endpoints);
  explicit DfiNodes(std::vector<Endpoint> endpoints)
      : endpoints_(std::move(endpoints)) {}

  static StatusOr<DfiNodes> Parse(const std::vector<std::string>& endpoints);

  size_t size() const { return endpoints_.size(); }
  bool empty() const { return endpoints_.empty(); }
  const Endpoint& operator[](size_t i) const { return endpoints_[i]; }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

  void Append(const Endpoint& e) { endpoints_.push_back(e); }

  /// Resolves every endpoint's address against the fabric.
  StatusOr<std::vector<net::NodeId>> Resolve(const net::Fabric& fabric) const;

  /// Builds a DfiNodes covering `threads_per_node` threads (ids 0..k-1) on
  /// each of the given addresses — the common all-workers pattern.
  static DfiNodes GridOf(const std::vector<std::string>& addresses,
                         uint32_t threads_per_node);

 private:
  std::vector<Endpoint> endpoints_;
};

}  // namespace dfi

#endif  // DFI_CORE_NODES_H_
