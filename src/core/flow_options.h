#ifndef DFI_CORE_FLOW_OPTIONS_H_
#define DFI_CORE_FLOW_OPTIONS_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/units.h"

namespace dfi {

/// Declarative optimization goal of a flow (paper Table 1): bandwidth
/// optimization batches tuples into large segments; latency optimization
/// transmits each tuple immediately with credit-based flow control.
enum class FlowOptimization : uint8_t {
  kBandwidth,
  kLatency,
};

/// Aggregation functions supported by combiner flows.
enum class AggFunc : uint8_t {
  kSum,
  kCount,
  kMin,
  kMax,
};

/// Opt-in skew adaptation for shuffle flows (ROADMAP item 4; Rödiger-style
/// network-aware skew handling). Default-disabled: the static partitioner
/// path stays digit-identical when `enabled` is false.
struct AdaptiveShuffleOptions {
  /// Master switch. When set, ShuffleSource routes through an
  /// AdaptivePartitioner (hot-key detection + re-splitting) and
  /// ShuffleTarget sinks on the same node form a work-stealing group.
  bool enabled = false;

  /// Counters in the per-source Misra-Gries frequency sketch. Bounds the
  /// number of distinct keys tracked per epoch; 64 counters resolve any
  /// key with > ~1.6% share of an epoch.
  uint32_t sketch_counters = 64;

  /// Tuples per detection epoch. At every epoch boundary the sketch is
  /// evaluated: keys promoted to / demoted from the hot set, sketch reset.
  uint32_t epoch_tuples = 4096;

  /// A key is hot when its epoch share exceeds hot_factor / num_targets
  /// (i.e. it alone carries hot_factor times a fair target's share).
  /// Demotion uses half this threshold for hysteresis.
  double hot_factor = 4.0;

  /// Upper bound on simultaneously hot keys per source.
  uint32_t max_hot_keys = 8;

  /// Sequencer-compatible hand-off: hot keys are re-homed (one owner at a
  /// time, old channel flushed before the switch) instead of round-robin
  /// re-split, so per-(source, key) order is preserved end to end. Work
  /// stealing is disabled in this mode — a stolen segment would reorder
  /// app-level processing across sink threads.
  bool ordered_handoff = false;

  /// Target-side work stealing between sink threads on the same node.
  /// Per-channel consumption stays serialized (FIFO within a channel), so
  /// content and order per channel remain deterministic; which sink thread
  /// consumed a segment is scheduling-dependent.
  bool work_stealing = true;

  /// React to per-target backpressure (queue-depth saturation) by
  /// diverting traffic from a saturated target to same-node siblings.
  /// Default off: queue depths are host-schedule-dependent, so reacting to
  /// them trades bit-determinism for straggler resilience.
  bool react_to_backpressure = false;

  /// Saturation hysteresis thresholds on the per-target queue depth
  /// (delivered-but-unconsumed segments summed over the target's channels):
  /// trip at >= high, clear at <= low.
  uint32_t backpressure_high = 24;
  uint32_t backpressure_low = 8;
};

/// Declarative per-flow options (paper Table 1 "flow options" plus the
/// tuning parameters of section 5).
struct FlowOptions {
  FlowOptimization optimization = FlowOptimization::kBandwidth;

  /// Payload capacity of one bandwidth-mode segment. 8 KiB "offers a good
  /// tradeoff between network bandwidth and time until the batch is filled"
  /// (paper section 6.1.1).
  uint32_t segment_size = 8 * kKiB;

  /// Segments per target-side ring (default 32, paper section 6.1.4).
  uint32_t segments_per_ring = 32;

  /// Segments per source-side ring: "much fewer ... than target-side
  /// buffers" (paper section 5.2); signaled writes only on wrap-around.
  uint32_t source_segments = 4;

  /// Replicate flows: replicate in the switch via RDMA multicast instead of
  /// one write per target (paper section 4.2.2).
  bool use_multicast = false;

  /// Replicate flows: global ordering guarantee — all targets consume
  /// tuples in the same order (OUM; paper sections 4.2.2 / 5.4).
  bool global_ordering = false;

  /// Ordered replicate flows: virtual-time gap-detection timeout before a
  /// lost segment is reported / re-requested.
  SimTime gap_timeout_ns = 50 * kMicrosecond;

  /// Ordered replicate flows: if true, gaps are surfaced to the application
  /// on consume() instead of triggering transparent retransmission — the
  /// NOPaxos use case drives its gap-agreement protocol this way (paper
  /// section 5.4).
  bool app_handles_gaps = false;

  /// Deadline (virtual ns) for every blocking wait inside the flow: the
  /// remote-ring-full footer poll, the credit refresh, and blocking
  /// consume calls. 0 (default) waits forever, which preserves fault-free
  /// behavior exactly; fault-tolerant applications set a deadline and
  /// handle kDeadlineExceeded. Teardown (Abort / a fault-plan crash of the
  /// peer) interrupts a blocked call regardless of the deadline. The
  /// semantics are uniform across flow types: the shared transport
  /// (FlowEndpoint / FlowSink, src/core/endpoint/) enforces it for
  /// shuffle, replicate and combiner alike.
  SimTime block_deadline_ns = 0;

  /// Capped exponential backoff charged (in virtual time) per unproductive
  /// re-poll while blocked — the emulation analogue of polling a remote
  /// footer with increasing delay. Only error paths commit this charge to
  /// the clock; successful waits keep deriving their cost from footer
  /// timestamps, leaving the fault-free performance model untouched.
  SimTime backoff_initial_ns = 2 * kMicrosecond;
  SimTime backoff_cap_ns = 1 * kMillisecond;

  /// Skew adaptation (shuffle flows only; ignored elsewhere).
  AdaptiveShuffleOptions adaptive;
};

}  // namespace dfi

#endif  // DFI_CORE_FLOW_OPTIONS_H_
