#ifndef DFI_CORE_FLOW_OPTIONS_H_
#define DFI_CORE_FLOW_OPTIONS_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/units.h"

namespace dfi {

/// Declarative optimization goal of a flow (paper Table 1): bandwidth
/// optimization batches tuples into large segments; latency optimization
/// transmits each tuple immediately with credit-based flow control.
enum class FlowOptimization : uint8_t {
  kBandwidth,
  kLatency,
};

/// Aggregation functions supported by combiner flows.
enum class AggFunc : uint8_t {
  kSum,
  kCount,
  kMin,
  kMax,
};

/// Declarative per-flow options (paper Table 1 "flow options" plus the
/// tuning parameters of section 5).
struct FlowOptions {
  FlowOptimization optimization = FlowOptimization::kBandwidth;

  /// Payload capacity of one bandwidth-mode segment. 8 KiB "offers a good
  /// tradeoff between network bandwidth and time until the batch is filled"
  /// (paper section 6.1.1).
  uint32_t segment_size = 8 * kKiB;

  /// Segments per target-side ring (default 32, paper section 6.1.4).
  uint32_t segments_per_ring = 32;

  /// Segments per source-side ring: "much fewer ... than target-side
  /// buffers" (paper section 5.2); signaled writes only on wrap-around.
  uint32_t source_segments = 4;

  /// Replicate flows: replicate in the switch via RDMA multicast instead of
  /// one write per target (paper section 4.2.2).
  bool use_multicast = false;

  /// Replicate flows: global ordering guarantee — all targets consume
  /// tuples in the same order (OUM; paper sections 4.2.2 / 5.4).
  bool global_ordering = false;

  /// Ordered replicate flows: virtual-time gap-detection timeout before a
  /// lost segment is reported / re-requested.
  SimTime gap_timeout_ns = 50 * kMicrosecond;

  /// Ordered replicate flows: if true, gaps are surfaced to the application
  /// on consume() instead of triggering transparent retransmission — the
  /// NOPaxos use case drives its gap-agreement protocol this way (paper
  /// section 5.4).
  bool app_handles_gaps = false;

  /// Deadline (virtual ns) for every blocking wait inside the flow: the
  /// remote-ring-full footer poll, the credit refresh, and blocking
  /// consume calls. 0 (default) waits forever, which preserves fault-free
  /// behavior exactly; fault-tolerant applications set a deadline and
  /// handle kDeadlineExceeded. Teardown (Abort / a fault-plan crash of the
  /// peer) interrupts a blocked call regardless of the deadline. The
  /// semantics are uniform across flow types: the shared transport
  /// (FlowEndpoint / FlowSink, src/core/endpoint/) enforces it for
  /// shuffle, replicate and combiner alike.
  SimTime block_deadline_ns = 0;

  /// Capped exponential backoff charged (in virtual time) per unproductive
  /// re-poll while blocked — the emulation analogue of polling a remote
  /// footer with increasing delay. Only error paths commit this charge to
  /// the clock; successful waits keep deriving their cost from footer
  /// timestamps, leaving the fault-free performance model untouched.
  SimTime backoff_initial_ns = 2 * kMicrosecond;
  SimTime backoff_cap_ns = 1 * kMillisecond;
};

}  // namespace dfi

#endif  // DFI_CORE_FLOW_OPTIONS_H_
