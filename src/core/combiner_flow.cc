#include "core/combiner_flow.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/deadline.h"
#include "net/fault_plan.h"

namespace dfi {
namespace {

/// Reads a field as double for aggregation.
double FieldAsDouble(TupleView tuple, size_t field_index) {
  const Schema& schema = *tuple.schema();
  switch (schema.field(field_index).type) {
    case DataType::kInt8:
      return tuple.Get<int8_t>(field_index);
    case DataType::kUInt8:
      return tuple.Get<uint8_t>(field_index);
    case DataType::kInt16:
      return tuple.Get<int16_t>(field_index);
    case DataType::kUInt16:
      return tuple.Get<uint16_t>(field_index);
    case DataType::kInt32:
      return tuple.Get<int32_t>(field_index);
    case DataType::kUInt32:
      return tuple.Get<uint32_t>(field_index);
    case DataType::kInt64:
      return static_cast<double>(tuple.Get<int64_t>(field_index));
    case DataType::kUInt64:
      return static_cast<double>(tuple.Get<uint64_t>(field_index));
    case DataType::kFloat:
      return tuple.Get<float>(field_index);
    case DataType::kDouble:
      return tuple.Get<double>(field_index);
    case DataType::kChar:
      DFI_LOG(FATAL) << "cannot aggregate a kChar field";
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// CombinerFlowState
// ---------------------------------------------------------------------------

CombinerFlowState::CombinerFlowState(CombinerFlowSpec spec,
                                     rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  DFI_CHECK(!spec_.aggregates.empty())
      << "combiner flow needs at least one aggregate";
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  // N:1 topology: all target threads on one node.
  for (net::NodeId t : target_nodes_) {
    DFI_CHECK_EQ(t, target_nodes_[0])
        << "combiner flow targets must share one node (N:1)";
  }

  const uint32_t n = num_sources();
  const uint32_t m = num_targets();
  target_gates_ = std::make_unique<ReadyGate[]>(m);
  channels_.resize(static_cast<size_t>(n) * m);
  const uint32_t tuple_size =
      static_cast<uint32_t>(spec_.schema.tuple_size());
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < m; ++t) {
      auto channel = std::make_unique<ChannelShared>(
          env_->context(target_nodes_[t]), spec_.options, tuple_size,
          static_cast<uint16_t>(s));
      channel->set_target_gate(&target_gates_[t]);
      channels_[static_cast<size_t>(s) * m + t] = std::move(channel);
    }
  }
}

void CombinerFlowState::Abort(const Status& cause) {
  for (auto& ch : channels_) ch->Poison(cause);
}

// ---------------------------------------------------------------------------
// CombinerSource
// ---------------------------------------------------------------------------

CombinerSource::CombinerSource(std::shared_ptr<CombinerFlowState> state,
                               uint32_t source_index)
    : state_(std::move(state)),
      source_index_(source_index),
      tuple_size_(
          static_cast<uint32_t>(state_->spec().schema.tuple_size())),
      target_mod_(state_->num_targets()) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  rdma::RdmaContext* ctx =
      state_->env()->context(state_->source_node(source_index_));
  for (uint32_t t = 0; t < state_->num_targets(); ++t) {
    channels_.push_back(std::make_unique<ChannelSource>(
        state_->channel(source_index_, t), ctx, &clock_));
  }
}

Status CombinerSource::Push(const void* tuple) {
  const CombinerFlowSpec& spec = state_->spec();
  uint32_t target = 0;
  if (!spec.global_aggregate && state_->num_targets() > 1) {
    const TupleView view(static_cast<const uint8_t*>(tuple), &spec.schema);
    target = static_cast<uint32_t>(
        target_mod_.Mod(HashU64(ReadKeyAsU64(view, spec.group_by_index))));
  } else if (spec.global_aggregate && state_->num_targets() > 1) {
    // Spread globally-aggregated tuples round-robin; targets hold partial
    // aggregates that the application combines.
    target = static_cast<uint32_t>(rr_++ % state_->num_targets());
  }
  return channels_[target]->Push(tuple, tuple_size_);
}

Status CombinerSource::Flush() {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->Flush());
  }
  return Status::OK();
}

Status CombinerSource::Close() {
  // Attempt every channel even after a failure (see ShuffleSource::Close).
  Status first;
  for (auto& ch : channels_) {
    Status s = ch->Close();
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  return first;
}

void CombinerSource::Abort(const Status& cause) {
  for (auto& ch : channels_) ch->Abort(cause);
}

// ---------------------------------------------------------------------------
// CombinerTarget
// ---------------------------------------------------------------------------

CombinerTarget::CombinerTarget(std::shared_ptr<CombinerFlowState> state,
                               uint32_t target_index)
    : state_(std::move(state)),
      target_index_(target_index),
      config_(&state_->env()->config()) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  for (uint32_t s = 0; s < state_->num_sources(); ++s) {
    cursors_.push_back(std::make_unique<ChannelTargetCursor>(
        state_->channel(s, target_index_), &clock_));
  }
}

void CombinerTarget::Fold(TupleView tuple) {
  const CombinerFlowSpec& spec = state_->spec();
  const uint64_t key = spec.global_aggregate
                           ? 0
                           : ReadKeyAsU64(tuple, spec.group_by_index);
  clock_.Advance(config_->agg_update_ns);

  auto [it, inserted] = groups_.try_emplace(key);
  std::vector<double>& acc = it->second;
  if (inserted) {
    acc.resize(spec.aggregates.size());
    output_keys_.push_back(key);
    for (size_t i = 0; i < spec.aggregates.size(); ++i) {
      switch (spec.aggregates[i].func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
          acc[i] = 0;
          break;
        case AggFunc::kMin:
          acc[i] = std::numeric_limits<double>::infinity();
          break;
        case AggFunc::kMax:
          acc[i] = -std::numeric_limits<double>::infinity();
          break;
      }
    }
  }
  for (size_t i = 0; i < spec.aggregates.size(); ++i) {
    const AggSpec& agg = spec.aggregates[i];
    switch (agg.func) {
      case AggFunc::kSum:
        acc[i] += FieldAsDouble(tuple, agg.field_index);
        break;
      case AggFunc::kCount:
        acc[i] += 1;
        break;
      case AggFunc::kMin:
        acc[i] = std::min(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
      case AggFunc::kMax:
        acc[i] = std::max(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
    }
  }
  ++tuples_aggregated_;
}

Status CombinerTarget::Drain() {
  const Schema& schema = state_->spec().schema;
  const uint32_t tuple_size = static_cast<uint32_t>(schema.tuple_size());
  const uint32_t n = static_cast<uint32_t>(cursors_.size());
  ReadyGate* gate = state_->target_gate(target_index_);
  DeadlineWait wait(state_->spec().options, &clock_);
  const net::FaultPlan& plan = state_->env()->fabric().fault_plan();
  // Fold segments in delivery order off the ready list — O(deliveries),
  // independent of how many source channels sit idle. Exhaustion is
  // counted at the release transitions (a released cursor is exhausted iff
  // the released segment carried end-of-flow), so no O(n) recount is
  // needed before blocking.
  uint32_t exhausted = 0;
  int held = -1;
  auto release = [&](uint32_t idx) {
    cursors_[idx]->Release();
    if (cursors_[idx]->exhausted()) ++exhausted;
  };
  for (;;) {
    // Capture the gate version before draining so a delivery racing with
    // the drain is never missed.
    const uint64_t version = gate->version();
    // Release the segment consumed last round before continuing, so its
    // slot recycles promptly.
    if (held >= 0) {
      release(static_cast<uint32_t>(held));
      held = -1;
    }
    bool found = false;
    uint32_t idx = 0;
    while (gate->TryDequeue(&idx)) {
      ChannelTargetCursor& cursor = *cursors_[idx];
      if (cursor.exhausted()) continue;  // stale entry
      SegmentView view;
      if (!cursor.TryConsume(&view)) {
        clock_.Advance(config_->consume_poll_ns);
        continue;
      }
      clock_.Advance(config_->consume_segment_fixed_ns);
      for (uint32_t off = 0; off + tuple_size <= view.bytes;
           off += tuple_size) {
        clock_.Advance(config_->tuple_consume_fixed_ns);
        Fold(TupleView(view.payload + off, &schema));
      }
      held = static_cast<int>(idx);
      found = true;
      break;
    }
    if (found) continue;
    if (exhausted == n) break;
    // Blocked: surface teardown, crashed sources, or the deadline instead
    // of waiting for an end-of-flow marker that will never come.
    for (auto& cursor : cursors_) {
      if (!cursor->exhausted() && cursor->shared()->poisoned()) {
        if (held >= 0) cursors_[held]->Release();
        wait.Commit();
        return cursor->shared()->poison_status();
      }
    }
    if (plan.active()) {
      const SimTime now = wait.ProvisionalNow();
      for (uint32_t s = 0; s < n; ++s) {
        if (cursors_[s]->exhausted()) continue;
        const net::NodeId src = state_->source_node(s);
        if (!plan.NodeAlive(src, now)) {
          if (held >= 0) cursors_[held]->Release();
          wait.Commit();
          return Status::PeerFailed(
              "combiner source " + std::to_string(s) + " on node " +
              std::to_string(src) + " failed before closing its channel");
        }
      }
    }
    if (!wait.Tick()) {
      if (held >= 0) cursors_[held]->Release();
      wait.Commit();
      return Status::DeadlineExceeded(
          "combiner drain deadline elapsed with " +
          std::to_string(n - exhausted) + " source channel(s) still open");
    }
    gate->WaitChangedFor(version, DeadlineWait::kRealSlice);
  }
  if (held >= 0) cursors_[held]->Release();
  drained_ = true;
  return Status::OK();
}

ConsumeResult CombinerTarget::ConsumeAggregate(AggRow* out) {
  if (!drained_) {
    Status s = Drain();
    if (!s.ok()) {
      last_status_ = std::move(s);
      return ConsumeResult::kError;
    }
  }
  if (output_pos_ >= output_keys_.size()) return ConsumeResult::kFlowEnd;
  const uint64_t key = output_keys_[output_pos_++];
  out->group_key = key;
  out->values = groups_.at(key);
  clock_.Advance(config_->tuple_consume_fixed_ns);
  return ConsumeResult::kOk;
}

void CombinerTarget::Abort(const Status& cause) {
  for (auto& cursor : cursors_) cursor->shared()->Poison(cause);
}

}  // namespace dfi
