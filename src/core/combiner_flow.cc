#include "core/combiner_flow.h"

#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// CombinerFlowState
// ---------------------------------------------------------------------------

CombinerFlowState::CombinerFlowState(CombinerFlowSpec spec,
                                     rdma::RdmaEnv* env)
    : spec_(std::move(spec)), env_(env) {
  DFI_CHECK(!spec_.aggregates.empty())
      << "combiner flow needs at least one aggregate";
  auto sources = spec_.sources.Resolve(env_->fabric());
  DFI_CHECK(sources.ok()) << sources.status();
  source_nodes_ = std::move(sources).value();
  auto targets = spec_.targets.Resolve(env_->fabric());
  DFI_CHECK(targets.ok()) << targets.status();
  target_nodes_ = std::move(targets).value();
  // Topology validation (N:1 unless multi_node_targets) happens in
  // DfiRuntime::InitCombinerFlow, where it can return a clean Status.
  matrix_ = ChannelMatrix(
      env_, spec_.options,
      static_cast<uint32_t>(spec_.schema.tuple_size()), num_sources(),
      target_nodes_);
}

// ---------------------------------------------------------------------------
// CombinerSource
// ---------------------------------------------------------------------------

CombinerSource::CombinerSource(std::shared_ptr<CombinerFlowState> state,
                               uint32_t source_index)
    : state_(std::move(state)), source_index_(source_index) {
  DFI_CHECK_LT(source_index_, state_->num_sources());
  const CombinerFlowSpec& spec = state_->spec();
  const uint32_t m = state_->num_targets();
  if (!spec.global_aggregate && m > 1) {
    partitioner_ =
        Partitioner::KeyHash(&spec.schema, spec.group_by_index, m);
  } else if (spec.global_aggregate && m > 1) {
    // Spread globally-aggregated tuples round-robin; targets hold partial
    // aggregates that the application combines.
    partitioner_ = Partitioner::RoundRobin(m);
  } else {
    partitioner_ = Partitioner::Single();
  }
  endpoint_.emplace(
      state_->matrix(), source_index_,
      state_->env()->context(state_->source_node(source_index_)), &clock_);
}

// ---------------------------------------------------------------------------
// CombinerTarget
// ---------------------------------------------------------------------------

CombinerTarget::CombinerTarget(std::shared_ptr<CombinerFlowState> state,
                               uint32_t target_index)
    : state_(std::move(state)),
      target_index_(target_index),
      config_(&state_->env()->config()) {
  DFI_CHECK_LT(target_index_, state_->num_targets());
  const CombinerFlowSpec& spec = state_->spec();
  sink_.emplace(state_->matrix(), target_index_, &spec.schema, config_,
                &clock_, "combiner", state_->source_nodes());
  aggregator_.emplace(&spec.schema, &spec.aggregates, spec.group_by_index,
                      spec.global_aggregate, config_, &clock_);
}

Status CombinerTarget::Drain() {
  const Schema& schema = state_->spec().schema;
  const uint32_t tuple_size = static_cast<uint32_t>(schema.tuple_size());
  // Fold segments as the unified transport serves them (aggregation
  // happens as segments arrive, paper section 4.2.3).
  for (;;) {
    SegmentView view;
    const ConsumeResult r = sink_->ConsumeSegment(&view);
    if (r == ConsumeResult::kFlowEnd) break;
    if (r != ConsumeResult::kOk) return sink_->last_status();
    for (uint32_t off = 0; off + tuple_size <= view.bytes;
         off += tuple_size) {
      clock_.Advance(config_->tuple_consume_fixed_ns);
      aggregator_->Fold(TupleView(view.payload + off, &schema));
    }
  }
  drained_ = true;
  return Status::OK();
}

ConsumeResult CombinerTarget::ConsumeAggregate(AggRow* out) {
  if (!drained_) {
    Status s = Drain();
    if (!s.ok()) {
      last_status_ = std::move(s);
      return ConsumeResult::kError;
    }
  }
  if (!aggregator_->NextRow(out)) return ConsumeResult::kFlowEnd;
  clock_.Advance(config_->tuple_consume_fixed_ns);
  return ConsumeResult::kOk;
}

}  // namespace dfi
