#include "core/dfi_runtime.h"

#include <utility>

#include "common/logging.h"
#include "core/combiner_flow.h"
#include "core/replicate_flow.h"

namespace dfi {

DfiRuntime::DfiRuntime(net::Fabric* fabric)
    : fabric_(fabric),
      rdma_(std::make_unique<rdma::RdmaEnv>(fabric)),
      registry_service_(/*fabric=*/nullptr),  // loopback control plane
      registry_client_(&registry_service_,
                       reg::RegistryClientOptions{.enable_cache = false}) {
  DFI_CHECK(fabric != nullptr);
}

DfiRuntime::~DfiRuntime() = default;

template <typename StateT>
StatusOr<std::shared_ptr<StateT>> DfiRuntime::LookupState(
    const std::string& flow_name) const {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<FlowStateBase> base,
                       registry_client_.Retrieve(flow_name));
  auto state = std::dynamic_pointer_cast<StateT>(base);
  if (state == nullptr) {
    return Status::InvalidArgument("flow '" + flow_name +
                                   "' has a different flow type");
  }
  return state;
}

// ---- Shuffle ---------------------------------------------------------------

Status DfiRuntime::InitShuffleFlow(ShuffleFlowSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("flow name must not be empty");
  }
  if (spec.sources.empty() || spec.targets.empty()) {
    return Status::InvalidArgument("flow '" + spec.name +
                                   "' needs at least one source and target");
  }
  if (spec.shuffle_key_index >= spec.schema.num_fields()) {
    return Status::InvalidArgument("shuffle key index out of range");
  }
  if (spec.options.adaptive.enabled && spec.routing.set() &&
      spec.routing.kind() != RoutingSpec::Kind::kKeyHash) {
    // Adaptive routing re-splits around the key-hash home function; radix
    // and generic routings carry no geometry it could wrap.
    return Status::InvalidArgument(
        "flow '" + spec.name +
        "': adaptive shuffle requires key-hash (or default) routing");
  }
  const std::string name = spec.name;
  auto state = std::make_shared<ShuffleFlowState>(std::move(spec),
                                                  rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<ShuffleSource>> DfiRuntime::CreateShuffleSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ShuffleFlowState> state,
                       LookupState<ShuffleFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<ShuffleSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<ShuffleTarget>> DfiRuntime::CreateShuffleTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ShuffleFlowState> state,
                       LookupState<ShuffleFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<ShuffleTarget>(std::move(state), target_index);
}

// ---- Replicate -------------------------------------------------------------

Status DfiRuntime::InitReplicateFlow(ReplicateFlowSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("flow name must not be empty");
  }
  if (spec.sources.empty() || spec.targets.empty()) {
    return Status::InvalidArgument("flow '" + spec.name +
                                   "' needs at least one source and target");
  }
  if (spec.options.global_ordering && !spec.options.use_multicast) {
    return Status::Unimplemented(
        "global ordering requires the multicast transport");
  }
  const std::string name = spec.name;
  auto state = std::make_shared<ReplicateFlowState>(std::move(spec),
                                                    rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<ReplicateSource>> DfiRuntime::CreateReplicateSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ReplicateFlowState> state,
                       LookupState<ReplicateFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<ReplicateSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<ReplicateTarget>> DfiRuntime::CreateReplicateTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ReplicateFlowState> state,
                       LookupState<ReplicateFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<ReplicateTarget>(std::move(state), target_index);
}

// ---- Combiner --------------------------------------------------------------

Status DfiRuntime::InitCombinerFlow(CombinerFlowSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("flow name must not be empty");
  }
  if (spec.sources.empty() || spec.targets.empty()) {
    return Status::InvalidArgument("flow '" + spec.name +
                                   "' needs at least one source and target");
  }
  if (spec.aggregates.empty()) {
    return Status::InvalidArgument("combiner flow needs >= 1 aggregate");
  }
  if (!spec.global_aggregate &&
      spec.group_by_index >= spec.schema.num_fields()) {
    return Status::InvalidArgument("group-by index out of range");
  }
  for (const AggSpec& agg : spec.aggregates) {
    if (agg.func != AggFunc::kCount &&
        agg.field_index >= spec.schema.num_fields()) {
      return Status::InvalidArgument("aggregate field index out of range");
    }
  }
  // N:1 unless the spec opts into multi-node targets (paper section 4.2.3
  // describes N:1; the transport also supports spreading the group-key
  // partitions over nodes, but accidental fan-out is rejected).
  if (!spec.multi_node_targets) {
    DFI_ASSIGN_OR_RETURN(std::vector<net::NodeId> target_nodes,
                         spec.targets.Resolve(*fabric_));
    for (net::NodeId t : target_nodes) {
      if (t != target_nodes[0]) {
        return Status::InvalidArgument(
            "combiner flow '" + spec.name +
            "' targets span multiple nodes; set multi_node_targets to opt "
            "into the N:M topology");
      }
    }
  }
  const std::string name = spec.name;
  auto state = std::make_shared<CombinerFlowState>(std::move(spec),
                                                   rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<CombinerSource>> DfiRuntime::CreateCombinerSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<CombinerFlowState> state,
                       LookupState<CombinerFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<CombinerSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<CombinerTarget>> DfiRuntime::CreateCombinerTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<CombinerFlowState> state,
                       LookupState<CombinerFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<CombinerTarget>(std::move(state), target_index);
}

Status DfiRuntime::RemoveFlow(const std::string& flow_name) {
  return registry_client_.Close(flow_name);
}

Status DfiRuntime::RemoveFlows(const std::vector<std::string>& flow_names) {
  DFI_ASSIGN_OR_RETURN(std::vector<reg::OpResult> results,
                       registry_client_.CloseBatch(flow_names));
  for (const reg::OpResult& r : results) {
    DFI_RETURN_IF_ERROR(r.status);
  }
  return Status::OK();
}

Status DfiRuntime::AbortFlow(const std::string& flow_name,
                             const Status& cause) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<FlowStateBase> base,
                       registry_client_.Retrieve(flow_name));
  base->Abort(cause);
  return Status::OK();
}

uint64_t DfiRuntime::RegisteredBytesOnNode(net::NodeId node) const {
  return fabric_->node(node).registered_bytes();
}

}  // namespace dfi
