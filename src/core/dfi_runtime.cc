#include "core/dfi_runtime.h"

#include <utility>

#include "common/logging.h"
#include "core/combiner_flow.h"
#include "core/graph/diagnostics.h"
#include "core/replicate_flow.h"

namespace dfi {

DfiRuntime::DfiRuntime(net::Fabric* fabric)
    : fabric_(fabric),
      rdma_(std::make_unique<rdma::RdmaEnv>(fabric)),
      registry_service_(/*fabric=*/nullptr),  // loopback control plane
      registry_client_(&registry_service_,
                       reg::RegistryClientOptions{.enable_cache = false}) {
  DFI_CHECK(fabric != nullptr);
}

DfiRuntime::~DfiRuntime() = default;

template <typename StateT>
StatusOr<std::shared_ptr<StateT>> DfiRuntime::LookupState(
    const std::string& flow_name) const {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<FlowStateBase> base,
                       registry_client_.Retrieve(flow_name));
  auto state = std::dynamic_pointer_cast<StateT>(base);
  if (state == nullptr) {
    return Status::InvalidArgument("flow '" + flow_name +
                                   "' has a different flow type");
  }
  return state;
}

// ---- Shuffle ---------------------------------------------------------------

Status DfiRuntime::InitShuffleFlow(ShuffleFlowSpec spec) {
  // Single-edge slice of the graph layer's typed diagnostic pass (a
  // standalone flow is a one-edge graph with anonymous endpoints).
  std::vector<graph::Diagnostic> diags;
  graph::ValidateShuffleSpec(spec, /*source_vertex=*/"", /*target_vertex=*/"",
                             &diags);
  DFI_RETURN_IF_ERROR(graph::DiagnosticsToStatus(diags));
  const std::string name = spec.name;
  auto state = std::make_shared<ShuffleFlowState>(std::move(spec),
                                                  rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<ShuffleSource>> DfiRuntime::CreateShuffleSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ShuffleFlowState> state,
                       LookupState<ShuffleFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<ShuffleSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<ShuffleTarget>> DfiRuntime::CreateShuffleTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ShuffleFlowState> state,
                       LookupState<ShuffleFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<ShuffleTarget>(std::move(state), target_index);
}

// ---- Replicate -------------------------------------------------------------

Status DfiRuntime::InitReplicateFlow(ReplicateFlowSpec spec) {
  std::vector<graph::Diagnostic> diags;
  graph::ValidateReplicateSpec(spec, /*source_vertex=*/"",
                               /*target_vertex=*/"", &diags);
  DFI_RETURN_IF_ERROR(graph::DiagnosticsToStatus(diags));
  const std::string name = spec.name;
  auto state = std::make_shared<ReplicateFlowState>(std::move(spec),
                                                    rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<ReplicateSource>> DfiRuntime::CreateReplicateSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ReplicateFlowState> state,
                       LookupState<ReplicateFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<ReplicateSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<ReplicateTarget>> DfiRuntime::CreateReplicateTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<ReplicateFlowState> state,
                       LookupState<ReplicateFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<ReplicateTarget>(std::move(state), target_index);
}

// ---- Combiner --------------------------------------------------------------

Status DfiRuntime::InitCombinerFlow(CombinerFlowSpec spec) {
  std::vector<net::NodeId> target_nodes;
  if (!spec.targets.empty()) {
    DFI_ASSIGN_OR_RETURN(target_nodes, spec.targets.Resolve(*fabric_));
  }
  std::vector<graph::Diagnostic> diags;
  graph::ValidateCombinerSpec(spec, /*source_vertex=*/"",
                              /*target_vertex=*/"", &target_nodes, &diags);
  DFI_RETURN_IF_ERROR(graph::DiagnosticsToStatus(diags));
  const std::string name = spec.name;
  auto state = std::make_shared<CombinerFlowState>(std::move(spec),
                                                   rdma_.get());
  return registry_client_.Publish(name, std::move(state));
}

StatusOr<std::unique_ptr<CombinerSource>> DfiRuntime::CreateCombinerSource(
    const std::string& flow_name, uint32_t source_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<CombinerFlowState> state,
                       LookupState<CombinerFlowState>(flow_name));
  if (source_index >= state->num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source_index));
  }
  return std::make_unique<CombinerSource>(std::move(state), source_index);
}

StatusOr<std::unique_ptr<CombinerTarget>> DfiRuntime::CreateCombinerTarget(
    const std::string& flow_name, uint32_t target_index) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<CombinerFlowState> state,
                       LookupState<CombinerFlowState>(flow_name));
  if (target_index >= state->num_targets()) {
    return Status::OutOfRange("target index " + std::to_string(target_index));
  }
  return std::make_unique<CombinerTarget>(std::move(state), target_index);
}

Status DfiRuntime::RemoveFlow(const std::string& flow_name) {
  return registry_client_.Close(flow_name);
}

Status DfiRuntime::RemoveFlows(const std::vector<std::string>& flow_names) {
  DFI_ASSIGN_OR_RETURN(std::vector<reg::OpResult> results,
                       registry_client_.CloseBatch(flow_names));
  for (const reg::OpResult& r : results) {
    DFI_RETURN_IF_ERROR(r.status);
  }
  return Status::OK();
}

Status DfiRuntime::AbortFlow(const std::string& flow_name,
                             const Status& cause) {
  DFI_ASSIGN_OR_RETURN(std::shared_ptr<FlowStateBase> base,
                       registry_client_.Retrieve(flow_name));
  base->Abort(cause);
  return Status::OK();
}

uint64_t DfiRuntime::RegisteredBytesOnNode(net::NodeId node) const {
  return fabric_->node(node).registered_bytes();
}

}  // namespace dfi
