#include "core/nodes.h"

#include <utility>

#include "common/logging.h"

namespace dfi {
namespace {

StatusOr<Endpoint> ParseOne(const std::string& spec) {
  const size_t bar = spec.rfind('|');
  if (bar == std::string::npos || bar == 0 || bar + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' not of form 'address|threadId'");
  }
  Endpoint e;
  e.address = spec.substr(0, bar);
  const std::string tid = spec.substr(bar + 1);
  for (char c : tid) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "' has non-numeric thread id");
    }
  }
  e.thread_id = static_cast<uint32_t>(std::stoul(tid));
  return e;
}

}  // namespace

DfiNodes::DfiNodes(std::initializer_list<std::string> endpoints) {
  auto parsed = Parse(std::vector<std::string>(endpoints));
  DFI_CHECK(parsed.ok()) << parsed.status();
  *this = std::move(parsed).value();
}

StatusOr<DfiNodes> DfiNodes::Parse(const std::vector<std::string>& endpoints) {
  std::vector<Endpoint> out;
  out.reserve(endpoints.size());
  for (const std::string& spec : endpoints) {
    DFI_ASSIGN_OR_RETURN(Endpoint e, ParseOne(spec));
    out.push_back(std::move(e));
  }
  return DfiNodes(std::move(out));
}

StatusOr<std::vector<net::NodeId>> DfiNodes::Resolve(
    const net::Fabric& fabric) const {
  std::vector<net::NodeId> ids;
  ids.reserve(endpoints_.size());
  for (const Endpoint& e : endpoints_) {
    DFI_ASSIGN_OR_RETURN(net::NodeId id, fabric.ResolveAddress(e.address));
    ids.push_back(id);
  }
  return ids;
}

DfiNodes DfiNodes::GridOf(const std::vector<std::string>& addresses,
                          uint32_t threads_per_node) {
  std::vector<Endpoint> out;
  out.reserve(addresses.size() * threads_per_node);
  for (const std::string& addr : addresses) {
    for (uint32_t t = 0; t < threads_per_node; ++t) {
      out.push_back(Endpoint{addr, t});
    }
  }
  return DfiNodes(std::move(out));
}

}  // namespace dfi
