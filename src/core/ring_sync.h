#ifndef DFI_CORE_RING_SYNC_H_
#define DFI_CORE_RING_SYNC_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dfi {

/// Real-time wakeup channel between the two ends of a ring.
///
/// Emulation artifact (documented in DESIGN.md): on real hardware a blocked
/// source spins, re-reading the remote footer with RDMA reads and random
/// backoff, and a blocked target polls its local footer in main memory. In
/// the emulation, spinning threads on an oversubscribed host would waste
/// wall-clock time without affecting *virtual* time, so blocked threads
/// sleep here instead and the virtual cost of the would-have-been polling
/// is charged from footer timestamps when they wake. Performance-model
/// behavior is unchanged; only host CPU waste is avoided.
class RingSync {
 public:
  RingSync() = default;
  RingSync(const RingSync&) = delete;
  RingSync& operator=(const RingSync&) = delete;

  /// Wakes all waiters; call after any footer state change.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
  }

  /// Blocks until `pred()` is true. The predicate reads footer flags (with
  /// acquire semantics), so it is re-evaluated after every Notify().
  template <typename Pred>
  void Wait(Pred pred) {
    if (pred()) return;
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen = version_;
    while (!pred()) {
      cv_.wait(lock, [&] { return version_ != seen; });
      seen = version_;
    }
  }

  /// Lost-wakeup-safe two-phase waiting: capture the version *before*
  /// scanning state; if the scan found nothing, WaitChanged() blocks until
  /// any Notify() issued after the capture.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  void WaitChanged(uint64_t seen) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return version_ != seen; });
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t version_ = 0;
};

}  // namespace dfi

#endif  // DFI_CORE_RING_SYNC_H_
