#ifndef DFI_CORE_RING_SYNC_H_
#define DFI_CORE_RING_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/exec/engine.h"

namespace dfi {

/// Wakeup channel between the two ends of a ring. Dual-mode:
///
///   - Thread mode (historical): blocked OS threads sleep on a condition
///     variable. Emulation artifact (documented in DESIGN.md): on real
///     hardware a blocked source spins re-reading the remote footer; in the
///     emulation spinning threads on an oversubscribed host would waste
///     wall-clock time without affecting *virtual* time, so blocked threads
///     sleep and the virtual cost of the would-have-been polling is charged
///     from footer timestamps when they wake.
///
///   - Engine mode: when the caller is an exec::Engine task, waits park the
///     *fiber* on the embedded WaitPoint and Notify reschedules it, so
///     thousands of blocked actors cost no OS threads and no sleep slices.
///
/// Both modes share the version counter; the mode is chosen per call from
/// exec::Engine::InTask(), so one binary serves both execution models.
class RingSync {
 public:
  RingSync() = default;
  RingSync(const RingSync&) = delete;
  RingSync& operator=(const RingSync&) = delete;

  /// Wakes all waiters; call after any footer state change.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
    wait_point_.WakeAll();
    exec::BumpProgress();
  }

  /// Blocks until `pred()` is true. The predicate reads footer flags (with
  /// acquire semantics), so it is re-evaluated after every Notify().
  template <typename Pred>
  void Wait(Pred pred) {
    if (pred()) return;
    if (exec::Engine::InTask()) {
      for (;;) {
        const uint64_t seen = version();
        if (pred()) return;
        exec::Engine::Park(&wait_point_,
                           [&] { return version() != seen; },
                           /*now=*/-1, exec::Engine::kNoTimer);
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen = version_;
    while (!pred()) {
      cv_.wait(lock, [&] { return version_ != seen; });
      seen = version_;
    }
  }

  /// Lost-wakeup-safe two-phase waiting: capture the version *before*
  /// scanning state; if the scan found nothing, WaitChanged() blocks until
  /// any Notify() issued after the capture.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  void WaitChanged(uint64_t seen) {
    if (exec::Engine::InTask()) {
      while (version() == seen) {
        exec::Engine::Park(&wait_point_,
                           [&] { return version() != seen; },
                           /*now=*/-1, exec::Engine::kNoTimer);
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return version_ != seen; });
  }

  /// Bounded variant for deadline-aware waiters: returns once the version
  /// moves past `seen` or after `timeout` of real time, whichever is first
  /// (true iff the version changed). Callers loop, re-checking poison /
  /// fault / deadline conditions between slices. Engine tasks should use
  /// DeadlineWait::Block instead (virtual-time wakeups); this fallback
  /// parks until the next Notify so a stray caller cannot stall a worker.
  bool WaitChangedFor(uint64_t seen, std::chrono::nanoseconds timeout) {
    if (exec::Engine::InTask()) {
      exec::Engine::Park(&wait_point_, [&] { return version() != seen; },
                         /*now=*/-1, exec::Engine::kNoTimer);
      return version() != seen;
    }
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return version_ != seen; });
  }

  exec::WaitPoint& wait_point() { return wait_point_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  exec::WaitPoint wait_point_;
  uint64_t version_ = 0;
};

/// Per-target ready-channel gate: RingSync-style versioned wakeups plus a
/// multi-producer queue of channel indices with pending deliveries.
///
/// Every channel of one target thread shares the target's gate. A source
/// enqueues its channel index right after delivering a segment (one entry
/// per delivered segment), so the target pops exactly the channels that
/// have data instead of round-robin scanning every ring: consume cost is
/// O(active channels), not O(num_sources). On real hardware the equivalent
/// is polling a small shared completion/doorbell area instead of n footers.
///
/// Entry/segment accounting: deliveries and entries are 1:1, and a target
/// consumes segments of one channel in ring order, so every successful
/// TryConsume can be matched to one popped entry. Pops that find nothing
/// consumable (e.g. an end marker already recycled) are skipped by the
/// consumer.
///
/// Dual-mode like RingSync: engine tasks park their fiber, plain threads
/// sleep on the condition variable.
class ReadyGate {
 public:
  ReadyGate() = default;
  ReadyGate(const ReadyGate&) = delete;
  ReadyGate& operator=(const ReadyGate&) = delete;

  /// Announces one delivered segment on `channel_index` and wakes the
  /// target.
  void Enqueue(uint32_t channel_index) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_.push_back(channel_index);
      ++version_;
    }
    cv_.notify_all();
    wait_point_.WakeAll();
    exec::BumpProgress();
  }

  /// Pops the oldest announced channel index; false when none is pending.
  bool TryDequeue(uint32_t* channel_index) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ready_.empty()) return false;
    *channel_index = ready_.front();
    ready_.pop_front();
    return true;
  }

  /// Version-only wakeup (no ready entry), e.g. for state changes that are
  /// not segment deliveries.
  void Notify() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
    wait_point_.WakeAll();
    exec::BumpProgress();
  }

  /// Lost-wakeup-safe two-phase waiting, as in RingSync: capture the
  /// version *before* draining the queue; WaitChanged blocks until any
  /// Enqueue/Notify issued after the capture.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }
  void WaitChanged(uint64_t seen) {
    if (exec::Engine::InTask()) {
      while (version() == seen) {
        exec::Engine::Park(&wait_point_,
                           [&] { return version() != seen; },
                           /*now=*/-1, exec::Engine::kNoTimer);
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return version_ != seen; });
  }

  /// Bounded variant, as in RingSync::WaitChangedFor.
  bool WaitChangedFor(uint64_t seen, std::chrono::nanoseconds timeout) {
    if (exec::Engine::InTask()) {
      exec::Engine::Park(&wait_point_, [&] { return version() != seen; },
                         /*now=*/-1, exec::Engine::kNoTimer);
      return version() != seen;
    }
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return version_ != seen; });
  }

  exec::WaitPoint& wait_point() { return wait_point_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  exec::WaitPoint wait_point_;
  std::deque<uint32_t> ready_;
  uint64_t version_ = 0;
};

}  // namespace dfi

#endif  // DFI_CORE_RING_SYNC_H_
