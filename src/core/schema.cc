#include "core/schema.h"

#include <unordered_set>
#include <utility>

#include "common/logging.h"

namespace dfi {

size_t DataTypeSize(DataType type) {
  switch (type) {
    case DataType::kInt8:
    case DataType::kUInt8:
      return 1;
    case DataType::kInt16:
    case DataType::kUInt16:
      return 2;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat:
      return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kChar:
      DFI_LOG(FATAL) << "kChar has no intrinsic size; use Field::length";
  }
  return 0;
}

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt8:
      return "int8";
    case DataType::kUInt8:
      return "uint8";
    case DataType::kInt16:
      return "int16";
    case DataType::kUInt16:
      return "uint16";
    case DataType::kInt32:
      return "int32";
    case DataType::kUInt32:
      return "uint32";
    case DataType::kInt64:
      return "int64";
    case DataType::kUInt64:
      return "uint64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kChar:
      return "char";
  }
  return "?";
}

const char* OrderingName(Ordering ordering) {
  switch (ordering) {
    case Ordering::kNone:
      return "none";
    case Ordering::kPerChannel:
      return "per-channel";
    case Ordering::kGlobal:
      return "global";
  }
  return "?";
}

StatusOr<Schema> Schema::Create(std::vector<Field> fields) {
  if (fields.empty()) {
    return Status::InvalidArgument("schema must have at least one field");
  }
  std::unordered_set<std::string> names;
  Schema schema;
  schema.fields_ = std::move(fields);
  schema.offsets_.reserve(schema.fields_.size());
  size_t offset = 0;
  for (const Field& f : schema.fields_) {
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name '" + f.name + "'");
    }
    const size_t size =
        f.type == DataType::kChar ? f.length : DataTypeSize(f.type);
    if (size == 0) {
      return Status::InvalidArgument("field '" + f.name +
                                     "' has zero length");
    }
    schema.offsets_.push_back(offset);
    offset += size;
  }
  schema.tuple_size_ = offset;
  return schema;
}

Schema::Schema(std::initializer_list<Field> fields) {
  auto result = Create(std::vector<Field>(fields));
  DFI_CHECK(result.ok()) << result.status();
  *this = std::move(result).value();
}

size_t Schema::field_size(size_t i) const {
  const Field& f = fields_[i];
  return f.type == DataType::kChar ? f.length : DataTypeSize(f.type);
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("field '" + name + "'");
}

StatusOr<Schema> Schema::Extend(const Field& field) const {
  std::vector<Field> fields = fields_;
  fields.push_back(field);
  return Create(std::move(fields));
}

StatusOr<Schema> Schema::WithField(const Field& field) const {
  std::vector<Field> fields = fields_;
  for (Field& f : fields) {
    if (f.name == field.name) {
      f = field;
      return Create(std::move(fields));
    }
  }
  return Status::NotFound("field '" + field.name + "'");
}

StatusOr<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const std::string& name : names) {
    DFI_ASSIGN_OR_RETURN(size_t i, IndexOf(name));
    fields.push_back(fields_[i]);
  }
  return Create(std::move(fields));
}

Status CheckCompatible(const Schema& produced, const Schema& required) {
  if (produced.num_fields() != required.num_fields()) {
    return Status::InvalidArgument(
        "schema mismatch: produced " + produced.ToString() + " has " +
        std::to_string(produced.num_fields()) + " fields, edge requires " +
        std::to_string(required.num_fields()));
  }
  for (size_t i = 0; i < produced.num_fields(); ++i) {
    const Field& p = produced.field(i);
    const Field& r = required.field(i);
    if (p.name != r.name) {
      return Status::InvalidArgument(
          "schema mismatch at field " + std::to_string(i) +
          ": produced field '" + p.name + "', edge requires '" + r.name +
          "'");
    }
    if (p.type != r.type) {
      return Status::InvalidArgument(
          "schema mismatch at field '" + p.name + "': produced type " +
          DataTypeName(p.type) + ", edge requires " + DataTypeName(r.type));
    }
    if (produced.field_size(i) != required.field_size(i)) {
      return Status::InvalidArgument(
          "schema mismatch at field '" + p.name + "': produced width " +
          std::to_string(produced.field_size(i)) + " B, edge requires " +
          std::to_string(required.field_size(i)) + " B");
    }
  }
  return Status::OK();
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        field_size(i) != other.field_size(i)) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
    if (fields_[i].type == DataType::kChar) {
      out += "(" + std::to_string(fields_[i].length) + ")";
    }
  }
  out += "}";
  return out;
}

}  // namespace dfi
