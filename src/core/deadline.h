#ifndef DFI_CORE_DEADLINE_H_
#define DFI_CORE_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/exec/engine.h"
#include "common/sim_time.h"
#include "core/flow_options.h"

namespace dfi {

/// Tracks one bounded blocking wait in virtual time.
///
/// On hardware a blocked peer re-polls remote state (footer reads, credit
/// reads) with a capped exponential backoff; the poll count times the
/// backoff is the virtual cost of being blocked, and the configured
/// deadline bounds it. The emulation sleeps in real time instead of
/// spinning (see ring_sync.h), so this class keeps the virtual ledger: each
/// unproductive wakeup accrues the next backoff step into a *provisional*
/// budget checked against FlowOptions::block_deadline_ns.
///
/// The budget is provisional on purpose: a wait that eventually succeeds
/// derives its virtual cost from the footer/credit timestamps exactly as
/// before, so fault-free runs keep their timing bit-for-bit. Only the error
/// paths (deadline, poison, peer failure) Commit() the accrued backoff to
/// the clock before returning, so a failing participant's clock reflects
/// the time it spent discovering the failure.
class DeadlineWait {
 public:
  DeadlineWait(const FlowOptions& options, VirtualClock* clock)
      : clock_(clock),
        deadline_ns_(options.block_deadline_ns),
        backoff_ns_(std::max<SimTime>(1, options.backoff_initial_ns)),
        cap_ns_(std::max<SimTime>(1, options.backoff_cap_ns)) {}

  /// Accrues one unproductive poll round. Returns false once the deadline
  /// (if any) is exhausted.
  bool Tick() {
    waited_ns_ += backoff_ns_;
    backoff_ns_ = std::min(backoff_ns_ * 2, cap_ns_);
    return deadline_ns_ == 0 || waited_ns_ < deadline_ns_;
  }

  /// Virtual time provisionally spent blocked so far.
  SimTime waited() const { return waited_ns_; }

  /// Virtual "now" as seen by this blocked thread — the fault plan is
  /// queried at this time so a peer's scheduled crash becomes observable
  /// once the provisional wait passes it.
  SimTime ProvisionalNow() const { return clock_->now() + waited_ns_; }

  /// Commits the provisional wait to the clock (error paths only).
  void Commit() {
    if (waited_ns_ > 0) clock_->Advance(waited_ns_);
    waited_ns_ = 0;
  }

  /// Real-time slice for one bounded sleep between poll rounds. Short
  /// enough that teardown and fault-plan crashes are noticed promptly,
  /// long enough that an idle blocked thread costs no measurable host CPU.
  static constexpr std::chrono::nanoseconds kRealSlice =
      std::chrono::microseconds(200);

  /// One blocked poll round against `sync` — anything with `version()` and
  /// `wait_point()` (RingSync, ReadyGate, rdma::CompletionQueue). Engine
  /// tasks park the fiber until the version moves past `seen` or the
  /// engine's virtual floor reaches the next backoff wake time — an idle
  /// fleet jumps straight there instead of burning real sleep slices, so
  /// deadline and fault discovery costs microseconds of wall clock. Plain
  /// threads sleep one kRealSlice, byte-for-byte the historical behavior.
  /// Returns true iff the version changed (as WaitChangedFor). Callers
  /// loop, re-checking poison / fault / deadline conditions per round.
  template <typename Sync>
  bool Block(Sync& sync, uint64_t seen) {
    if (exec::Engine::InTask()) {
      exec::Engine::Park(&sync.wait_point(),
                         [&] { return sync.version() != seen; },
                         clock_->now(), ProvisionalNow() + backoff_ns_);
      return sync.version() != seen;
    }
    if constexpr (requires { sync.WaitChangedFor(seen, kRealSlice); }) {
      return sync.WaitChangedFor(seen, kRealSlice);
    } else {
      std::this_thread::sleep_for(kRealSlice);
      return sync.version() != seen;
    }
  }

 private:
  VirtualClock* const clock_;
  const SimTime deadline_ns_;
  SimTime backoff_ns_;
  const SimTime cap_ns_;
  SimTime waited_ns_ = 0;
};

}  // namespace dfi

#endif  // DFI_CORE_DEADLINE_H_
