#ifndef DFI_CORE_REPLICATE_FLOW_H_
#define DFI_CORE_REPLICATE_FLOW_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/endpoint/abort_latch.h"
#include "core/endpoint/channel_matrix.h"
#include "core/endpoint/flow_endpoint.h"
#include "core/endpoint/flow_sink.h"
#include "core/endpoint/multicast.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// Declarative description of a replicate flow (paper section 4.2.2): every
/// tuple pushed by any source is delivered to *all* targets. Topologies 1:N
/// and N:M. Options: bandwidth/latency, naive one-sided vs. RDMA multicast
/// transport, and a global ordering guarantee (all targets consume the same
/// sequence — the OUM primitive used by NOPaxos).
struct ReplicateFlowSpec {
  std::string name;
  DfiNodes sources;
  DfiNodes targets;
  Schema schema;
  FlowOptions options;
};

/// Shared state of a replicate flow. For the naive transport this is the
/// same private channel matrix as a shuffle flow (one ring per
/// source/target pair, written one-sided). For multicast it is the shared
/// MulticastState (switch group, per-target UD receive machinery, credit
/// window and — when globally ordered — the tuple sequencer and retransmit
/// histories). Teardown has flow granularity either way: an AbortLatch
/// shared by all participants.
class ReplicateFlowState : public FlowStateBase {
 public:
  ReplicateFlowState(ReplicateFlowSpec spec, rdma::RdmaEnv* env);

  const ReplicateFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }
  bool multicast() const { return spec_.options.use_multicast; }
  bool ordered() const { return spec_.options.global_ordering; }
  uint32_t payload_capacity() const {
    return mcast_ ? mcast_->payload_capacity() : payload_capacity_;
  }

  ChannelMatrix* matrix() { return &matrix_; }          // naive transport
  MulticastState* mcast() { return mcast_.get(); }      // multicast
  AbortLatch* abort_latch() { return &latch_; }

  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }
  net::NodeId target_node(uint32_t target) const {
    return target_nodes_[target];
  }
  const std::vector<net::NodeId>& source_nodes() const {
    return source_nodes_;
  }

  /// Tears the whole flow down. Replication is all-to-all (every target
  /// consumes every tuple), so teardown has flow granularity: naive-mode
  /// channels are poisoned and multicast participants observe the tripped
  /// latch on their next poll slice. First cause wins.
  void Abort(const Status& cause) override;
  bool aborted() const { return latch_.tripped(); }
  /// The teardown cause (OK when not aborted).
  Status abort_status() const { return latch_.status(); }

 private:
  const ReplicateFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  uint32_t payload_capacity_ = 0;  // naive transport
  AbortLatch latch_;
  ChannelMatrix matrix_;                   // naive transport
  std::unique_ptr<MulticastState> mcast_;  // multicast transport
};

/// Source handle of a replicate flow: a FanoutEndpoint — tuples are staged
/// once regardless of target count; the transport (BroadcastEndpoint for
/// naive, MulticastSendEndpoint for switch replication) fans the segment
/// out at transmit time.
class ReplicateSource {
 public:
  ReplicateSource(std::shared_ptr<ReplicateFlowState> state,
                  uint32_t source_index);

  ReplicateSource(const ReplicateSource&) = delete;
  ReplicateSource& operator=(const ReplicateSource&) = delete;

  /// Pushes one tuple to *all* targets.
  Status Push(const void* tuple) {
    return endpoint_->Push(
        tuple, static_cast<uint32_t>(schema().tuple_size()));
  }
  Status Flush() { return endpoint_->Flush(); }
  Status Close() { return endpoint_->Close(); }

  /// Aborts without a clean end-of-flow. Replication is all-to-all, so the
  /// whole flow is torn down: every participant's next operation fails
  /// with `cause`.
  void Abort(const Status& cause) { endpoint_->Abort(cause); }

  const Schema& schema() const { return state_->spec().schema; }
  VirtualClock& clock() { return clock_; }

 private:
  std::shared_ptr<ReplicateFlowState> state_;
  const uint32_t source_index_;
  VirtualClock clock_;
  std::unique_ptr<FanoutEndpoint> endpoint_;
};

/// Target handle of a replicate flow: a FlowSink (naive transport) or a
/// MulticastSink (switch replication). For ordered flows, consume returns
/// segments in global sequence order, reordering out-of-order arrivals via
/// the Sequencer policy (paper Figure 6) and handling gaps by timeout +
/// retransmission (or by surfacing kGap to the application when
/// FlowOptions::app_handles_gaps is set; out->sequence then holds the
/// missing sequence number).
class ReplicateTarget {
 public:
  ReplicateTarget(std::shared_ptr<ReplicateFlowState> state,
                  uint32_t target_index);

  ReplicateTarget(const ReplicateTarget&) = delete;
  ReplicateTarget& operator=(const ReplicateTarget&) = delete;

  /// Blocking consume of the next segment (zero-copy into the receive
  /// pool / ring). Tuples are packed in the payload as in shuffle flows.
  ConsumeResult ConsumeSegment(SegmentView* out) {
    return sink_ ? sink_->ConsumeSegment(out)
                 : mcast_sink_->ConsumeSegment(out);
  }

  /// Blocking consume of the next single tuple.
  ConsumeResult Consume(TupleView* out) {
    return sink_ ? sink_->Consume(out) : mcast_sink_->Consume(out);
  }

  /// Ordered + app_handles_gaps: skip the missing sequence the last kGap
  /// reported (the application decided it is a no-op). Reports the skipped
  /// position as consumed so the credit window keeps moving.
  void SkipGap();

  /// Ordered + app_handles_gaps: adopt `data` as the content of the missing
  /// sequence the last kGap reported (the application recovered it through
  /// its own protocol, e.g. NOPaxos gap agreement).
  void SupplyGap(const void* data, uint32_t bytes);

  /// Aborts the whole flow (see ReplicateFlowState::Abort).
  void Abort(const Status& cause) { state_->Abort(cause); }

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const {
    return sink_ ? sink_->last_status() : mcast_sink_->last_status();
  }

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t target_index() const { return target_index_; }
  VirtualClock& clock() { return clock_; }

 private:
  std::shared_ptr<ReplicateFlowState> state_;
  const uint32_t target_index_;
  VirtualClock clock_;
  std::optional<FlowSink> sink_;            // naive transport
  std::optional<MulticastSink> mcast_sink_;  // multicast transport
};

}  // namespace dfi

#endif  // DFI_CORE_REPLICATE_FLOW_H_
