#ifndef DFI_CORE_REPLICATE_FLOW_H_
#define DFI_CORE_REPLICATE_FLOW_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/channel.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"
#include "rdma/ud_queue_pair.h"

namespace dfi {

class DeadlineWait;

/// Declarative description of a replicate flow (paper section 4.2.2): every
/// tuple pushed by any source is delivered to *all* targets. Topologies 1:N
/// and N:M. Options: bandwidth/latency, naive one-sided vs. RDMA multicast
/// transport, and a global ordering guarantee (all targets consume the same
/// sequence — the OUM primitive used by NOPaxos).
struct ReplicateFlowSpec {
  std::string name;
  DfiNodes sources;
  DfiNodes targets;
  Schema schema;
  FlowOptions options;
};

/// Shared state of a replicate flow. For the naive transport this is the
/// same private channel matrix as a shuffle flow (one ring per
/// source/target pair, written one-sided). For multicast it holds the
/// switch group, per-target UD receive machinery, the shared credit state
/// and — when globally ordered — the tuple sequencer and per-source
/// retransmit histories.
class ReplicateFlowState : public FlowStateBase {
 public:
  ReplicateFlowState(ReplicateFlowSpec spec, rdma::RdmaEnv* env);

  const ReplicateFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }
  bool multicast() const { return spec_.options.use_multicast; }
  bool ordered() const { return spec_.options.global_ordering; }
  uint32_t payload_capacity() const { return payload_capacity_; }
  uint32_t pool_slots() const { return pool_slots_; }

  // ---- Naive transport ---------------------------------------------------
  ChannelShared* channel(uint32_t source, uint32_t target) {
    return channels_[source * num_targets() + target].get();
  }
  ReadyGate* target_gate(uint32_t target) { return &target_gates_[target]; }
  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }
  net::NodeId target_node(uint32_t target) const {
    return target_nodes_[target];
  }

  // ---- Multicast transport -----------------------------------------------
  net::MulticastGroupId group() const { return group_; }
  rdma::UdQueuePair* target_qp(uint32_t target) {
    return target_qps_[target];
  }
  uint8_t* recv_slot(uint32_t target, uint32_t slot);
  uint32_t slot_bytes() const {
    return payload_capacity_ + sizeof(SegmentFooter);
  }

  /// Credit protocol (paper section 5.4): a message with position `p` may
  /// only be sent once every target has consumed more than
  /// `p - pool_slots` messages. Targets report consumption through a
  /// back-flow counter; sources cache and refresh it with RDMA reads.
  /// AcquirePosition fails with kPeerFailed when the sequencer node is
  /// down; WaitForCredit fails with kDeadlineExceeded / kPeerFailed /
  /// kAborted when the window cannot advance (dead or aborted target).
  StatusOr<uint64_t> AcquirePosition(rdma::RcQueuePair* seq_qp,
                                     VirtualClock* clock);
  Status WaitForCredit(uint64_t position,
                       std::vector<rdma::RcQueuePair*>& credit_qps,
                       VirtualClock* clock);
  void ReportConsumed(uint32_t target, SimTime now);
  uint64_t LoadConsumed(uint32_t target) const;
  rdma::RemoteRef credit_ref(uint32_t target) const;
  rdma::RemoteRef sequencer_ref() const { return sequencer_mr_->RefAt(0); }
  net::NodeId sequencer_node() const { return target_nodes_[0]; }
  RingSync& credit_sync() { return credit_sync_; }

  /// Ordered mode: retransmit history. Sources record every sent segment
  /// (bounded) before sending; a target that timed out on a gap pulls the
  /// segment from here (the emulation's stand-in for the paper's
  /// lost-segment request back-flow).
  void RecordHistory(uint32_t source, uint64_t seq, const uint8_t* data,
                     uint32_t len);
  bool LookupHistory(uint64_t seq, std::vector<uint8_t>* out) const;

  /// End-of-flow bookkeeping for multicast targets.
  std::atomic<uint32_t>& ends_seen(uint32_t target) {
    return ends_seen_[target];
  }

  /// Tears the whole flow down. Replication is all-to-all (every target
  /// consumes every tuple), so teardown has flow granularity: naive-mode
  /// channels are poisoned and multicast participants observe aborted() on
  /// their next poll slice. First cause wins.
  void Abort(const Status& cause) override;
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  /// The teardown cause (OK when not aborted).
  Status abort_status() const;

 private:
  const ReplicateFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  uint32_t payload_capacity_ = 0;
  uint32_t pool_slots_ = 0;

  // Naive transport.
  std::vector<std::unique_ptr<ChannelShared>> channels_;
  std::unique_ptr<ReadyGate[]> target_gates_;

  // Multicast transport.
  net::MulticastGroupId group_ = 0;
  std::vector<rdma::UdQueuePair*> target_qps_;
  std::vector<rdma::MemoryRegion*> recv_pools_;
  std::vector<rdma::MemoryRegion*> credit_mrs_;  // one consumed counter each
  std::unique_ptr<std::atomic<SimTime>[]> consume_time_;
  rdma::MemoryRegion* sequencer_mr_ = nullptr;
  std::atomic<uint64_t> unordered_positions_{0};
  RingSync credit_sync_;
  std::unique_ptr<std::atomic<uint32_t>[]> ends_seen_;

  // Ordered mode retransmit history (per source).
  struct History {
    mutable std::mutex mu;
    std::map<uint64_t, std::vector<uint8_t>> segments;
  };
  std::vector<std::unique_ptr<History>> histories_;
  static constexpr size_t kHistoryDepth = 4096;

  // Teardown state (multicast has no per-pair channel to poison).
  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  Status abort_cause_;
};

/// Source handle of a replicate flow.
class ReplicateSource {
 public:
  ReplicateSource(std::shared_ptr<ReplicateFlowState> state,
                  uint32_t source_index);

  ReplicateSource(const ReplicateSource&) = delete;
  ReplicateSource& operator=(const ReplicateSource&) = delete;

  /// Pushes one tuple to *all* targets.
  Status Push(const void* tuple);
  Status Flush();
  Status Close();

  /// Aborts without a clean end-of-flow. Replication is all-to-all, so the
  /// whole flow is torn down: every participant's next operation fails
  /// with `cause`.
  void Abort(const Status& cause);

  const Schema& schema() const { return state_->spec().schema; }
  VirtualClock& clock() { return clock_; }

 private:
  Status TransmitNaive(uint32_t fill, bool end);
  Status TransmitMulticast(uint32_t fill, bool end);

  std::shared_ptr<ReplicateFlowState> state_;
  const uint32_t source_index_;
  VirtualClock clock_;

  // Naive transport: one staged segment fanned out over per-target
  // channels.
  std::vector<std::unique_ptr<ChannelSource>> channels_;
  rdma::MemoryRegion* staging_mr_ = nullptr;
  SegmentRing staging_;
  uint32_t staging_slot_ = 0;
  uint32_t fill_ = 0;

  // Multicast transport.
  rdma::UdQueuePair* ud_qp_ = nullptr;
  rdma::RcQueuePair* seq_qp_ = nullptr;  // sequencer fetch-and-add
  std::vector<rdma::RcQueuePair*> credit_qps_;
  uint64_t send_count_ = 0;
  bool closed_ = false;
};

/// Target handle of a replicate flow. For ordered flows, consume returns
/// segments in global sequence order, reordering out-of-order arrivals via
/// a receive list / next list (paper Figure 6) and handling gaps by
/// timeout + retransmission (or by surfacing kGap to the application when
/// FlowOptions::app_handles_gaps is set; out->sequence then holds the
/// missing sequence number).
class ReplicateTarget {
 public:
  ReplicateTarget(std::shared_ptr<ReplicateFlowState> state,
                  uint32_t target_index);

  ReplicateTarget(const ReplicateTarget&) = delete;
  ReplicateTarget& operator=(const ReplicateTarget&) = delete;

  /// Blocking consume of the next segment (zero-copy into the receive
  /// pool / ring). Tuples are packed in the payload as in shuffle flows.
  ConsumeResult ConsumeSegment(SegmentView* out);

  /// Blocking consume of the next single tuple.
  ConsumeResult Consume(TupleView* out);

  /// Ordered + app_handles_gaps: skip the missing sequence the last kGap
  /// reported (the application decided it is a no-op). Reports the skipped
  /// position as consumed so the credit window keeps moving.
  void SkipGap();

  /// Ordered + app_handles_gaps: adopt `data` as the content of the missing
  /// sequence the last kGap reported (the application recovered it through
  /// its own protocol, e.g. NOPaxos gap agreement).
  void SupplyGap(const void* data, uint32_t bytes);

  /// Aborts the whole flow (see ReplicateFlowState::Abort).
  void Abort(const Status& cause);

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t target_index() const { return target_index_; }
  VirtualClock& clock() { return clock_; }

 private:
  ConsumeResult ConsumeNaive(SegmentView* out);
  ConsumeResult ConsumeMulticastUnordered(SegmentView* out);
  ConsumeResult ConsumeMulticastOrdered(SegmentView* out);
  void ReleaseHeld();
  /// One failure-poll round while blocked: surfaces flow teardown, channel
  /// poison (naive mode), crashed sources (fault plan) or the flow deadline
  /// as kError; ticks `wait`. True when the consume call must stop.
  bool CheckFailure(DeadlineWait* wait, ConsumeResult* out_result);
  /// Parses the footer at the end of a received datagram slot.
  const SegmentFooter* SlotFooter(uint32_t slot) const;

  std::shared_ptr<ReplicateFlowState> state_;
  const uint32_t target_index_;
  const net::SimConfig* config_;
  VirtualClock clock_;

  // Naive transport.
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors_;
  uint32_t exhausted_count_ = 0;  // cursors that reached end-of-flow
  int held_cursor_ = -1;

  // Multicast transport.
  int held_slot_ = -1;
  std::vector<uint8_t> held_copy_;  // retransmitted segment storage
  uint64_t expected_seq_ = 0;       // ordered mode
  struct NextEntry {
    uint32_t slot = UINT32_MAX;       // recv-pool slot, or
    std::vector<uint8_t> copy;        // owned retransmit copy
    SimTime arrival = 0;
  };
  std::map<uint64_t, NextEntry> next_list_;  // ordered mode reordering
  uint32_t failed_polls_ = 0;

  // Tuple iteration state.
  SegmentView current_;
  uint32_t tuple_offset_ = 0;
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_REPLICATE_FLOW_H_
