#ifndef DFI_CORE_DFI_H_
#define DFI_CORE_DFI_H_

/// Umbrella header for the DFI library: include this to use flows.
///
/// DFI (the Data Flow Interface) abstracts high-speed-network communication
/// of data-intensive systems as *flows* between thread-level sources and
/// targets — see README.md for a quickstart and DESIGN.md for the
/// architecture.

#include "core/combiner_flow.h"   // IWYU pragma: export
#include "core/dfi_runtime.h"     // IWYU pragma: export
#include "core/flow_options.h"    // IWYU pragma: export
#include "core/graph/executor.h"  // IWYU pragma: export
#include "core/graph/graph.h"     // IWYU pragma: export
#include "core/nodes.h"           // IWYU pragma: export
#include "core/replicate_flow.h"  // IWYU pragma: export
#include "core/routing.h"         // IWYU pragma: export
#include "core/schema.h"          // IWYU pragma: export
#include "core/shuffle_flow.h"    // IWYU pragma: export
#include "net/fabric.h"           // IWYU pragma: export
#include "net/sim_config.h"       // IWYU pragma: export

#endif  // DFI_CORE_DFI_H_
