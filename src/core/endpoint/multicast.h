#ifndef DFI_CORE_ENDPOINT_MULTICAST_H_
#define DFI_CORE_ENDPOINT_MULTICAST_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/endpoint/abort_latch.h"
#include "core/endpoint/flow_endpoint.h"
#include "core/endpoint/policies.h"
#include "core/ring_sync.h"
#include "core/segment.h"
#include "net/fault_plan.h"
#include "rdma/rdma_env.h"
#include "rdma/ud_queue_pair.h"

namespace dfi {

class DeadlineWait;

/// Shared switch-replication machinery of a multicast flow: the multicast
/// group, per-target UD receive pools, the credit window (paper section
/// 5.4), and — when globally ordered — the tuple sequencer plus per-source
/// retransmit histories. Owned by the flow state; endpoints and sinks hold
/// pointers.
class MulticastState {
 public:
  MulticastState(rdma::RdmaEnv* env, const FlowOptions& options,
                 uint32_t tuple_size, uint32_t num_sources,
                 std::vector<net::NodeId> target_nodes,
                 const AbortLatch* flow_abort);

  MulticastState(const MulticastState&) = delete;
  MulticastState& operator=(const MulticastState&) = delete;

  uint32_t num_sources() const { return num_sources_; }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(target_nodes_.size());
  }
  bool ordered() const { return options_.global_ordering; }
  const FlowOptions& options() const { return options_; }
  uint32_t payload_capacity() const { return payload_capacity_; }
  uint32_t pool_slots() const { return pool_slots_; }
  uint32_t slot_bytes() const {
    return payload_capacity_ + sizeof(SegmentFooter);
  }
  net::MulticastGroupId group() const { return group_; }
  rdma::UdQueuePair* target_qp(uint32_t target) {
    return target_qps_[target];
  }
  uint8_t* recv_slot(uint32_t target, uint32_t slot);
  net::NodeId target_node(uint32_t target) const {
    return target_nodes_[target];
  }
  const net::FaultPlan& fault_plan() const {
    return env_->fabric().fault_plan();
  }

  /// Credit protocol (paper section 5.4): a message with position `p` may
  /// only be sent once every target has consumed more than
  /// `p - pool_slots` messages. Targets report consumption through a
  /// back-flow counter; sources cache and refresh it with RDMA reads.
  /// AcquirePosition fails with kPeerFailed when the sequencer node is
  /// down; WaitForCredit fails with kDeadlineExceeded / kPeerFailed /
  /// kAborted when the window cannot advance (dead or aborted target).
  StatusOr<uint64_t> AcquirePosition(rdma::RcQueuePair* seq_qp,
                                     VirtualClock* clock);
  Status WaitForCredit(uint64_t position,
                       std::vector<rdma::RcQueuePair*>& credit_qps,
                       VirtualClock* clock);
  void ReportConsumed(uint32_t target, SimTime now);
  uint64_t LoadConsumed(uint32_t target) const;
  rdma::RemoteRef credit_ref(uint32_t target) const;
  rdma::RemoteRef sequencer_ref() const { return sequencer_mr_->RefAt(0); }
  net::NodeId sequencer_node() const { return target_nodes_[0]; }

  /// Ordered mode: retransmit history. Sources record every sent segment
  /// (bounded) before sending; a target that timed out on a gap pulls the
  /// segment from here (the emulation's stand-in for the paper's
  /// lost-segment request back-flow).
  void RecordHistory(uint32_t source, uint64_t seq, const uint8_t* data,
                     uint32_t len);
  bool LookupHistory(uint64_t seq, std::vector<uint8_t>* out) const;

  /// End-of-flow bookkeeping for multicast targets.
  std::atomic<uint32_t>& ends_seen(uint32_t target) {
    return ends_seen_[target];
  }

  /// Wakes sources blocked on the credit window (flow teardown).
  void WakeCreditWaiters() { credit_sync_.Notify(); }

 private:
  rdma::RdmaEnv* const env_;
  const FlowOptions options_;
  const uint32_t num_sources_;
  const std::vector<net::NodeId> target_nodes_;
  const AbortLatch* const flow_abort_;
  uint32_t payload_capacity_ = 0;
  uint32_t pool_slots_ = 0;

  net::MulticastGroupId group_ = 0;
  std::vector<rdma::UdQueuePair*> target_qps_;
  std::vector<rdma::MemoryRegion*> recv_pools_;
  std::vector<rdma::MemoryRegion*> credit_mrs_;  // one consumed counter each
  std::unique_ptr<std::atomic<SimTime>[]> consume_time_;
  rdma::MemoryRegion* sequencer_mr_ = nullptr;
  std::atomic<uint64_t> unordered_positions_{0};
  RingSync credit_sync_;
  std::unique_ptr<std::atomic<uint32_t>[]> ends_seen_;

  // Ordered mode retransmit history (per source).
  struct History {
    mutable std::mutex mu;
    std::map<uint64_t, std::vector<uint8_t>> segments;
  };
  std::vector<std::unique_ptr<History>> histories_;
  static constexpr size_t kHistoryDepth = 4096;
};

/// Switch-replication fan-out transport: the staged segment is sequenced
/// (ordered mode), credit-gated, and sent once as a UD multicast datagram;
/// the switch replicates it to every target (paper section 4.2.2).
class MulticastSendEndpoint : public FanoutEndpoint {
 public:
  /// `flow_abort` is the flow's latch; Abort trips it (switch replication
  /// has no per-pair channel, so teardown has flow granularity).
  MulticastSendEndpoint(MulticastState* mcast, uint32_t source_index,
                        rdma::RdmaContext* ctx, const net::SimConfig* config,
                        AbortLatch* flow_abort, VirtualClock* clock);

  void Abort(const Status& cause) override;

 protected:
  Status Transmit(uint32_t fill, bool end) override;

 private:
  MulticastState* const mcast_;
  const uint32_t source_index_;
  AbortLatch* const flow_abort_;
  rdma::UdQueuePair* ud_qp_ = nullptr;
  rdma::RcQueuePair* seq_qp_ = nullptr;  // sequencer fetch-and-add
  std::vector<rdma::RcQueuePair*> credit_qps_;
  uint64_t send_count_ = 0;
};

/// Target half of a multicast flow: consumes segments from the UD receive
/// pool. Ordered flows compose a Sequencer to deliver the global sequence,
/// reordering out-of-order arrivals (paper Figure 6) and handling gaps by
/// timeout + retransmission — or by surfacing kGap to the application when
/// FlowOptions::app_handles_gaps is set.
class MulticastSink {
 public:
  MulticastSink(MulticastState* mcast, uint32_t target_index,
                const Schema* schema, const net::SimConfig* config,
                VirtualClock* clock, std::string label,
                std::vector<net::NodeId> source_nodes,
                const AbortLatch* flow_abort);

  MulticastSink(const MulticastSink&) = delete;
  MulticastSink& operator=(const MulticastSink&) = delete;

  ConsumeResult ConsumeSegment(SegmentView* out);
  ConsumeResult Consume(TupleView* out);

  /// Ordered + app_handles_gaps: skip the missing sequence the last kGap
  /// reported (the application decided it is a no-op). Reports the skipped
  /// position as consumed so the credit window keeps moving.
  void SkipGap();

  /// Ordered + app_handles_gaps: adopt `data` as the content of the missing
  /// sequence the last kGap reported (the application recovered it through
  /// its own protocol, e.g. NOPaxos gap agreement).
  void SupplyGap(const void* data, uint32_t bytes);

  const Status& last_status() const { return last_status_; }

 private:
  ConsumeResult ConsumeUnordered(SegmentView* out);
  ConsumeResult ConsumeOrdered(SegmentView* out);
  void ReleaseHeld();
  /// One failure-poll round while blocked: surfaces flow teardown, crashed
  /// sources (fault plan) or the flow deadline as kError; ticks `wait`.
  bool CheckFailure(DeadlineWait* wait, ConsumeResult* out_result);
  /// Parses the footer at the end of a received datagram slot.
  const SegmentFooter* SlotFooter(uint32_t slot) const;

  MulticastState* const mcast_;
  const uint32_t target_index_;
  const Schema* const schema_;
  const net::SimConfig* const config_;
  VirtualClock* const clock_;
  const std::string label_;
  const std::vector<net::NodeId> source_nodes_;
  const AbortLatch* const flow_abort_;

  int held_slot_ = -1;
  std::vector<uint8_t> held_copy_;  // retransmitted segment storage
  Sequencer seq_;                   // ordered mode

  // Tuple iteration state.
  SegmentView current_;
  uint32_t tuple_offset_ = 0;
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_MULTICAST_H_
