#ifndef DFI_CORE_ENDPOINT_POLICIES_H_
#define DFI_CORE_ENDPOINT_POLICIES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/sim_time.h"
#include "core/endpoint/backpressure.h"
#include "core/flow_options.h"
#include "core/routing.h"
#include "core/schema.h"
#include "net/fault_plan.h"
#include "net/sim_config.h"

namespace dfi {

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

/// Routing policy plugged into a FlowEndpoint: maps one packed tuple to a
/// target index (paper Table 1 — the only source-side difference between
/// the flow types). The builtin partitioners carry their key geometry and
/// magic-number divisor declaratively so FlowEndpoint::PushBatch can run
/// them devirtualized over whole batches; kGeneric wraps an arbitrary
/// RoutingFn dispatched per tuple.
class Partitioner {
 public:
  enum class Kind : uint8_t {
    kSingle,      ///< everything to target 0 (1-target flows, combiner N:1)
    kKeyHash,     ///< HashU64(key) % num_targets
    kRadix,       ///< radix bits of HashU64(key)
    kRoundRobin,  ///< spread with no key (combiner global aggregates)
    kGeneric,     ///< opaque user RoutingFn
  };

  Partitioner() = default;  // kSingle

  static Partitioner Single() { return Partitioner(); }

  static Partitioner KeyHash(const Schema* schema, size_t key_field_index,
                             uint32_t num_targets);
  static Partitioner Radix(const Schema* schema, size_t key_field_index,
                           uint32_t shift, uint32_t bits,
                           uint32_t num_targets);
  static Partitioner RoundRobin(uint32_t num_targets);
  static Partitioner Generic(RoutingFn fn, const Schema* schema,
                             uint32_t num_targets);

  /// Builds the partitioner matching a resolved RoutingSpec (must not be
  /// kUnset; flow construction resolves the default first).
  static Partitioner FromRouting(const RoutingSpec& spec,
                                 const Schema* schema, uint32_t num_targets);

  /// Routes one packed tuple. Results may exceed num_targets() for buggy
  /// kRadix/kGeneric routings; the endpoint range-checks.
  uint32_t Route(const uint8_t* tuple);

  Kind kind() const { return kind_; }
  uint32_t num_targets() const { return num_targets_; }
  const Schema* schema() const { return schema_; }
  /// Key geometry, hoisted out of batch inner loops (kKeyHash / kRadix).
  size_t key_offset() const { return key_offset_; }
  size_t key_size() const { return key_size_; }
  uint32_t shift() const { return shift_; }
  uint32_t bits() const { return bits_; }
  const FastDivisor& mod() const { return mod_; }
  const RoutingFn& fn() const { return fn_; }

 private:
  Kind kind_ = Kind::kSingle;
  const Schema* schema_ = nullptr;
  uint32_t num_targets_ = 1;
  size_t key_offset_ = 0;
  size_t key_size_ = 0;
  uint32_t shift_ = 0;
  uint32_t bits_ = 0;
  FastDivisor mod_;
  RoutingFn fn_;
  uint64_t rr_ = 0;  // round-robin cursor
};

// ---------------------------------------------------------------------------
// AdaptivePartitioner
// ---------------------------------------------------------------------------

/// Skew-adaptive key-hash partitioner (opt-in via
/// AdaptiveShuffleOptions::enabled). Wraps the static key-hash geometry
/// with a small per-source Misra-Gries frequency sketch evaluated at fixed
/// tuple-count epochs: keys whose epoch share exceeds
/// hot_factor / num_targets are promoted to a bounded hot set and re-split
/// across the sibling target threads on their home target's node — keys
/// never leave their home *node* (node-level co-location such as radix-join
/// partition assignment survives), only the thread-level assignment becomes
/// dynamic. Demotion at half the promotion threshold gives hysteresis.
///
/// Two spreading modes:
///  - unordered (default): each hot tuple round-robins over the home node's
///    sibling targets via a deterministic per-key cursor.
///  - ordered_handoff: a hot key has exactly one owner at a time, rotated
///    at epoch boundaries; Route() reports the previous owner in
///    `flush_first` so the endpoint flushes that channel *before* pushing
///    to the new owner. Segments of one (source, key) pair then arrive in
///    disjoint, contiguous intervals per target — a downstream Sequencer
///    ordering per (source, key) observes no inversions.
///
/// Every routing decision is a pure function of the source's own input
/// prefix (sketch state + epoch counter), so adaptive routing is
/// bit-deterministic. The exception is opt-in backpressure reaction
/// (react_to_backpressure): when the home target's queue-depth slot is
/// saturated, tuples divert to the least-loaded unsaturated sibling —
/// host-schedule-dependent by design, never enabled by default.
class AdaptivePartitioner {
 public:
  /// `target_nodes[t]` is the node hosting target t (defines the sibling
  /// sets); `board` may be null (no backpressure reaction regardless of
  /// the option).
  AdaptivePartitioner(const Schema* schema, size_t key_field_index,
                      const std::vector<net::NodeId>& target_nodes,
                      const AdaptiveShuffleOptions& opts,
                      const TargetLoadBoard* board);

  AdaptivePartitioner(const AdaptivePartitioner&) = delete;
  AdaptivePartitioner& operator=(const AdaptivePartitioner&) = delete;

  struct Decision {
    uint32_t target = 0;
    /// Channel to flush before pushing (ordered hand-off re-homed the key
    /// away from this target); -1 when no hand-off happened.
    int32_t flush_first = -1;
  };

  /// Routes one packed tuple and advances the sketch/epoch state.
  Decision Route(const uint8_t* tuple);

  uint32_t num_targets() const { return num_targets_; }
  /// The static key-hash target of `key` (where the non-adaptive
  /// partitioner would send it).
  uint32_t HomeTarget(uint64_t key) const {
    return static_cast<uint32_t>(mod_.Mod(HashU64(key)));
  }
  bool IsHot(uint64_t key) const { return hot_.count(key) != 0; }

  // Observability for tests and benches.
  uint64_t promotions() const { return promotions_; }
  uint64_t demotions() const { return demotions_; }
  /// Tuples routed to a target other than their static home.
  uint64_t resplit_tuples() const { return resplit_tuples_; }
  uint64_t diverted_tuples() const { return diverted_tuples_; }

 private:
  struct HotKey {
    /// Sibling targets (home node's target threads, home first).
    std::vector<uint32_t> spread;
    /// Unordered mode: deterministic round-robin cursor over `spread`.
    uint32_t cursor = 0;
    /// Ordered mode: current single owner (index into `spread`).
    uint32_t owner = 0;
    /// Ordered mode: channel whose staged partial segment must be flushed
    /// before this key's next push (the previous owner after a re-homing);
    /// -1 when none. Surfaced once via Decision::flush_first.
    int32_t pending_flush = -1;
    /// Ordered mode: key was demoted at the last epoch boundary; its next
    /// Route() goes home (with the final hand-off flush) and erases it.
    bool demoted = false;
  };

  void SketchAdd(uint64_t key);
  /// Epoch boundary: promote/demote against the sketch, then reset it.
  void EndEpoch();
  uint32_t RouteHot(HotKey& hot, int32_t* flush_first);

  const size_t key_offset_;
  const size_t key_size_;
  const uint32_t num_targets_;
  const AdaptiveShuffleOptions opts_;
  const TargetLoadBoard* const board_;  // null: no backpressure reaction
  FastDivisor mod_;
  /// target -> sibling targets on the same node (includes itself, home
  /// first, matrix order otherwise).
  std::vector<std::vector<uint32_t>> siblings_;
  /// Misra-Gries summary of the current epoch (<= sketch_counters keys).
  std::unordered_map<uint64_t, uint64_t> sketch_;
  std::unordered_map<uint64_t, HotKey> hot_;
  uint64_t epoch_ = 0;
  uint32_t epoch_fill_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t resplit_tuples_ = 0;
  uint64_t diverted_tuples_ = 0;
};

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

/// One aggregation to compute in a combiner flow.
struct AggSpec {
  AggFunc func;
  /// Field whose values are aggregated (ignored for kCount).
  size_t field_index = 0;
};

/// One aggregated output row of a combiner target.
struct AggRow {
  uint64_t group_key = 0;
  /// One accumulator per AggSpec, in spec order. Sums/min/max of integer
  /// fields are exact for |value| < 2^53.
  std::vector<double> values;
};

/// Aggregation policy plugged into a combiner target's FlowSink: folds
/// tuples into per-group accumulators (SUM/COUNT/MIN/MAX, paper section
/// 4.2.3), then yields the aggregate rows in first-seen group order.
class Aggregator {
 public:
  Aggregator(const Schema* schema, const std::vector<AggSpec>* aggregates,
             size_t group_by_index, bool global_aggregate,
             const net::SimConfig* config, VirtualClock* clock);

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Folds one tuple into its group's accumulators; charges agg_update_ns.
  void Fold(TupleView tuple);

  /// Yields the next aggregate row; false once all groups were emitted.
  bool NextRow(AggRow* out);

  /// Number of input tuples folded so far.
  uint64_t tuples_folded() const { return tuples_folded_; }

 private:
  const Schema* const schema_;
  const std::vector<AggSpec>* const aggregates_;
  const size_t group_by_index_;
  const bool global_aggregate_;
  const net::SimConfig* const config_;
  VirtualClock* const clock_;
  uint64_t tuples_folded_ = 0;
  std::unordered_map<uint64_t, std::vector<double>> groups_;
  std::vector<uint64_t> output_keys_;
  size_t output_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Sequencer
// ---------------------------------------------------------------------------

/// Global-ordering policy for OUM replicate flows (paper Figure 6): tracks
/// the next expected sequence number and reorders out-of-order arrivals via
/// a next list. Gap handling (skip / supply / retransmit) advances or feeds
/// the sequencer; the transport decides *when* a gap is declared.
class Sequencer {
 public:
  /// One queued out-of-order arrival: either a receive-pool slot or an
  /// owned copy (retransmissions, application-supplied gap content).
  struct Entry {
    uint32_t slot = UINT32_MAX;  // recv-pool slot, or
    std::vector<uint8_t> copy;   // owned segment copy
    SimTime arrival = 0;
  };

  uint64_t expected() const { return expected_; }
  bool HasPending() const { return !pending_.empty(); }

  /// True when `seq` is neither consumed nor already queued (duplicates —
  /// e.g. a retransmission racing the original — must be recycled without
  /// re-crediting).
  bool Fresh(uint64_t seq) const {
    return seq >= expected_ && pending_.count(seq) == 0;
  }

  /// Queues an arrival for in-order delivery.
  void Offer(uint64_t seq, Entry entry) {
    pending_.emplace(seq, std::move(entry));
  }

  /// Pops the head entry iff it is the next expected sequence, advancing
  /// the expectation.
  bool PopReady(Entry* out) {
    auto it = pending_.begin();
    if (it == pending_.end() || it->first != expected_) return false;
    *out = std::move(it->second);
    pending_.erase(it);
    ++expected_;
    return true;
  }

  /// Skips the expected sequence (application declared the gap a no-op).
  void Skip() { ++expected_; }

 private:
  uint64_t expected_ = 0;
  std::map<uint64_t, Entry> pending_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_POLICIES_H_
