#include "core/endpoint/policies.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace dfi {
namespace {

/// Reads a field as double for aggregation.
double FieldAsDouble(TupleView tuple, size_t field_index) {
  const Schema& schema = *tuple.schema();
  switch (schema.field(field_index).type) {
    case DataType::kInt8:
      return tuple.Get<int8_t>(field_index);
    case DataType::kUInt8:
      return tuple.Get<uint8_t>(field_index);
    case DataType::kInt16:
      return tuple.Get<int16_t>(field_index);
    case DataType::kUInt16:
      return tuple.Get<uint16_t>(field_index);
    case DataType::kInt32:
      return tuple.Get<int32_t>(field_index);
    case DataType::kUInt32:
      return tuple.Get<uint32_t>(field_index);
    case DataType::kInt64:
      return static_cast<double>(tuple.Get<int64_t>(field_index));
    case DataType::kUInt64:
      return static_cast<double>(tuple.Get<uint64_t>(field_index));
    case DataType::kFloat:
      return tuple.Get<float>(field_index);
    case DataType::kDouble:
      return tuple.Get<double>(field_index);
    case DataType::kChar:
      DFI_LOG(FATAL) << "cannot aggregate a kChar field";
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

Partitioner Partitioner::KeyHash(const Schema* schema,
                                 size_t key_field_index,
                                 uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kKeyHash;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.key_offset_ = schema->offset(key_field_index);
  p.key_size_ = schema->field_size(key_field_index);
  p.mod_ = FastDivisor(num_targets);
  return p;
}

Partitioner Partitioner::Radix(const Schema* schema, size_t key_field_index,
                               uint32_t shift, uint32_t bits,
                               uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kRadix;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.key_offset_ = schema->offset(key_field_index);
  p.key_size_ = schema->field_size(key_field_index);
  p.shift_ = shift;
  p.bits_ = bits;
  return p;
}

Partitioner Partitioner::RoundRobin(uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kRoundRobin;
  p.num_targets_ = num_targets;
  return p;
}

Partitioner Partitioner::Generic(RoutingFn fn, const Schema* schema,
                                 uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kGeneric;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.fn_ = std::move(fn);
  return p;
}

Partitioner Partitioner::FromRouting(const RoutingSpec& spec,
                                     const Schema* schema,
                                     uint32_t num_targets) {
  switch (spec.kind()) {
    case RoutingSpec::Kind::kKeyHash:
      return KeyHash(schema, spec.key_field_index(), num_targets);
    case RoutingSpec::Kind::kRadix:
      return Radix(schema, spec.key_field_index(), spec.shift(), spec.bits(),
                   num_targets);
    case RoutingSpec::Kind::kGeneric:
      return Generic(spec.generic_fn(), schema, num_targets);
    case RoutingSpec::Kind::kUnset:
      break;
  }
  DFI_LOG(FATAL) << "routing spec must be resolved before building a "
                    "partitioner";
  return Partitioner();
}

uint32_t Partitioner::Route(const uint8_t* tuple) {
  switch (kind_) {
    case Kind::kSingle:
      return 0;
    case Kind::kKeyHash:
      return static_cast<uint32_t>(
          mod_.Mod(HashU64(ReadKeyBytes(tuple + key_offset_, key_size_))));
    case Kind::kRadix:
      return RadixBits(ReadKeyBytes(tuple + key_offset_, key_size_), shift_,
                       bits_);
    case Kind::kRoundRobin:
      return static_cast<uint32_t>(rr_++ % num_targets_);
    case Kind::kGeneric:
      return fn_(TupleView(tuple, schema_), num_targets_);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

Aggregator::Aggregator(const Schema* schema,
                       const std::vector<AggSpec>* aggregates,
                       size_t group_by_index, bool global_aggregate,
                       const net::SimConfig* config, VirtualClock* clock)
    : schema_(schema),
      aggregates_(aggregates),
      group_by_index_(group_by_index),
      global_aggregate_(global_aggregate),
      config_(config),
      clock_(clock) {
  DFI_CHECK(!aggregates_->empty())
      << "combiner flow needs at least one aggregate";
}

void Aggregator::Fold(TupleView tuple) {
  const uint64_t key =
      global_aggregate_ ? 0 : ReadKeyAsU64(tuple, group_by_index_);
  clock_->Advance(config_->agg_update_ns);

  auto [it, inserted] = groups_.try_emplace(key);
  std::vector<double>& acc = it->second;
  if (inserted) {
    acc.resize(aggregates_->size());
    output_keys_.push_back(key);
    for (size_t i = 0; i < aggregates_->size(); ++i) {
      switch ((*aggregates_)[i].func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
          acc[i] = 0;
          break;
        case AggFunc::kMin:
          acc[i] = std::numeric_limits<double>::infinity();
          break;
        case AggFunc::kMax:
          acc[i] = -std::numeric_limits<double>::infinity();
          break;
      }
    }
  }
  for (size_t i = 0; i < aggregates_->size(); ++i) {
    const AggSpec& agg = (*aggregates_)[i];
    switch (agg.func) {
      case AggFunc::kSum:
        acc[i] += FieldAsDouble(tuple, agg.field_index);
        break;
      case AggFunc::kCount:
        acc[i] += 1;
        break;
      case AggFunc::kMin:
        acc[i] = std::min(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
      case AggFunc::kMax:
        acc[i] = std::max(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
    }
  }
  ++tuples_folded_;
}

bool Aggregator::NextRow(AggRow* out) {
  if (output_pos_ >= output_keys_.size()) return false;
  const uint64_t key = output_keys_[output_pos_++];
  out->group_key = key;
  out->values = groups_.at(key);
  return true;
}

}  // namespace dfi
