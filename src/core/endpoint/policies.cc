#include "core/endpoint/policies.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace dfi {
namespace {

/// Reads a field as double for aggregation.
double FieldAsDouble(TupleView tuple, size_t field_index) {
  const Schema& schema = *tuple.schema();
  switch (schema.field(field_index).type) {
    case DataType::kInt8:
      return tuple.Get<int8_t>(field_index);
    case DataType::kUInt8:
      return tuple.Get<uint8_t>(field_index);
    case DataType::kInt16:
      return tuple.Get<int16_t>(field_index);
    case DataType::kUInt16:
      return tuple.Get<uint16_t>(field_index);
    case DataType::kInt32:
      return tuple.Get<int32_t>(field_index);
    case DataType::kUInt32:
      return tuple.Get<uint32_t>(field_index);
    case DataType::kInt64:
      return static_cast<double>(tuple.Get<int64_t>(field_index));
    case DataType::kUInt64:
      return static_cast<double>(tuple.Get<uint64_t>(field_index));
    case DataType::kFloat:
      return tuple.Get<float>(field_index);
    case DataType::kDouble:
      return tuple.Get<double>(field_index);
    case DataType::kChar:
      DFI_LOG(FATAL) << "cannot aggregate a kChar field";
  }
  return 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

Partitioner Partitioner::KeyHash(const Schema* schema,
                                 size_t key_field_index,
                                 uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kKeyHash;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.key_offset_ = schema->offset(key_field_index);
  p.key_size_ = schema->field_size(key_field_index);
  p.mod_ = FastDivisor(num_targets);
  return p;
}

Partitioner Partitioner::Radix(const Schema* schema, size_t key_field_index,
                               uint32_t shift, uint32_t bits,
                               uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kRadix;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.key_offset_ = schema->offset(key_field_index);
  p.key_size_ = schema->field_size(key_field_index);
  p.shift_ = shift;
  p.bits_ = bits;
  return p;
}

Partitioner Partitioner::RoundRobin(uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kRoundRobin;
  p.num_targets_ = num_targets;
  return p;
}

Partitioner Partitioner::Generic(RoutingFn fn, const Schema* schema,
                                 uint32_t num_targets) {
  Partitioner p;
  p.kind_ = Kind::kGeneric;
  p.schema_ = schema;
  p.num_targets_ = num_targets;
  p.fn_ = std::move(fn);
  return p;
}

Partitioner Partitioner::FromRouting(const RoutingSpec& spec,
                                     const Schema* schema,
                                     uint32_t num_targets) {
  switch (spec.kind()) {
    case RoutingSpec::Kind::kKeyHash:
      return KeyHash(schema, spec.key_field_index(), num_targets);
    case RoutingSpec::Kind::kRadix:
      return Radix(schema, spec.key_field_index(), spec.shift(), spec.bits(),
                   num_targets);
    case RoutingSpec::Kind::kGeneric:
      return Generic(spec.generic_fn(), schema, num_targets);
    case RoutingSpec::Kind::kUnset:
      break;
  }
  DFI_LOG(FATAL) << "routing spec must be resolved before building a "
                    "partitioner";
  return Partitioner();
}

uint32_t Partitioner::Route(const uint8_t* tuple) {
  switch (kind_) {
    case Kind::kSingle:
      return 0;
    case Kind::kKeyHash:
      return static_cast<uint32_t>(
          mod_.Mod(HashU64(ReadKeyBytes(tuple + key_offset_, key_size_))));
    case Kind::kRadix:
      return RadixBits(ReadKeyBytes(tuple + key_offset_, key_size_), shift_,
                       bits_);
    case Kind::kRoundRobin:
      return static_cast<uint32_t>(rr_++ % num_targets_);
    case Kind::kGeneric:
      return fn_(TupleView(tuple, schema_), num_targets_);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// AdaptivePartitioner
// ---------------------------------------------------------------------------

AdaptivePartitioner::AdaptivePartitioner(
    const Schema* schema, size_t key_field_index,
    const std::vector<net::NodeId>& target_nodes,
    const AdaptiveShuffleOptions& opts, const TargetLoadBoard* board)
    : key_offset_(schema->offset(key_field_index)),
      key_size_(schema->field_size(key_field_index)),
      num_targets_(static_cast<uint32_t>(target_nodes.size())),
      opts_(opts),
      board_(board),
      mod_(num_targets_) {
  DFI_CHECK_GT(num_targets_, 0u);
  DFI_CHECK_GT(opts_.epoch_tuples, 0u);
  // Sibling sets: for each target, the targets on the same node, home
  // first, matrix order otherwise. Keys are only ever re-split within
  // their home node, so node-level key placement is untouched.
  siblings_.resize(num_targets_);
  for (uint32_t t = 0; t < num_targets_; ++t) {
    siblings_[t].push_back(t);
    for (uint32_t u = 0; u < num_targets_; ++u) {
      if (u != t && target_nodes[u] == target_nodes[t]) {
        siblings_[t].push_back(u);
      }
    }
  }
}

void AdaptivePartitioner::SketchAdd(uint64_t key) {
  // Misra-Gries: any key with epoch count > epoch_tuples / sketch_counters
  // survives with count no more than that margin below its true count.
  auto it = sketch_.find(key);
  if (it != sketch_.end()) {
    ++it->second;
    return;
  }
  if (sketch_.size() < opts_.sketch_counters) {
    sketch_.emplace(key, 1);
    return;
  }
  for (auto mg = sketch_.begin(); mg != sketch_.end();) {
    if (--mg->second == 0) {
      mg = sketch_.erase(mg);
    } else {
      ++mg;
    }
  }
}

void AdaptivePartitioner::EndEpoch() {
  epoch_fill_ = 0;
  ++epoch_;
  const double threshold =
      opts_.hot_factor * opts_.epoch_tuples / num_targets_;

  // Demote cooled-off keys (half the promotion threshold: hysteresis), and
  // in ordered mode rotate the single owner of keys that stay hot so one
  // hot key's load still spreads across the node's siblings over time.
  for (auto it = hot_.begin(); it != hot_.end();) {
    HotKey& hk = it->second;
    const auto seen = sketch_.find(it->first);
    const double count =
        seen == sketch_.end() ? 0.0 : static_cast<double>(seen->second);
    if (count < threshold / 2) {
      ++demotions_;
      if (opts_.ordered_handoff) {
        // Keep the entry around for one more Route(): it goes home and
        // carries the final hand-off flush of the last owner's channel.
        hk.demoted = true;
        hk.pending_flush = static_cast<int32_t>(hk.spread[hk.owner]);
        ++it;
      } else {
        it = hot_.erase(it);
      }
    } else {
      if (opts_.ordered_handoff && !hk.demoted) {
        const uint32_t next = static_cast<uint32_t>(
            HashU64(it->first ^ epoch_) % hk.spread.size());
        if (next != hk.owner) {
          hk.pending_flush = static_cast<int32_t>(hk.spread[hk.owner]);
          hk.owner = next;
        }
      }
      ++it;
    }
  }

  // Promote this epoch's heavy hitters, hottest first (key ascending as a
  // deterministic tie-break), bounded by max_hot_keys.
  std::vector<std::pair<uint64_t, uint64_t>> candidates;  // (count, key)
  for (const auto& [key, count] : sketch_) {
    if (static_cast<double>(count) >= threshold && hot_.count(key) == 0) {
      candidates.emplace_back(count, key);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [count, key] : candidates) {
    if (hot_.size() >= opts_.max_hot_keys) break;
    const uint32_t home = HomeTarget(key);
    if (siblings_[home].size() < 2) continue;  // nothing to re-split over
    HotKey hk;
    hk.spread = siblings_[home];
    hk.cursor =
        static_cast<uint32_t>(HashU64(key) % hk.spread.size());
    if (opts_.ordered_handoff) {
      hk.owner = static_cast<uint32_t>(HashU64(key ^ epoch_) %
                                       hk.spread.size());
      // Re-homing away from home: the home channel may hold staged tuples
      // of this key, so the first re-routed push flushes it first.
      if (hk.owner != 0) hk.pending_flush = static_cast<int32_t>(home);
    }
    ++promotions_;
    hot_.emplace(key, std::move(hk));
  }
  sketch_.clear();
}

uint32_t AdaptivePartitioner::RouteHot(HotKey& hot, int32_t* flush_first) {
  if (hot.pending_flush >= 0) {
    *flush_first = hot.pending_flush;
    hot.pending_flush = -1;
  }
  const uint32_t home = hot.spread[0];
  if (hot.demoted) return home;  // caller erases the entry
  uint32_t target;
  if (opts_.ordered_handoff) {
    target = hot.spread[hot.owner];
  } else {
    target = hot.spread[hot.cursor];
    hot.cursor = (hot.cursor + 1) % static_cast<uint32_t>(hot.spread.size());
    if (board_ != nullptr && opts_.react_to_backpressure &&
        board_->saturated(target)) {
      uint32_t best_depth = UINT32_MAX;
      uint32_t best = target;
      for (uint32_t sibling : hot.spread) {
        if (board_->saturated(sibling)) continue;
        const uint32_t depth = board_->depth(sibling);
        if (depth < best_depth) {
          best_depth = depth;
          best = sibling;
        }
      }
      if (best != target) {
        target = best;
        ++diverted_tuples_;
      }
    }
  }
  if (target != home) ++resplit_tuples_;
  return target;
}

AdaptivePartitioner::Decision AdaptivePartitioner::Route(
    const uint8_t* tuple) {
  const uint64_t key = ReadKeyBytes(tuple + key_offset_, key_size_);
  SketchAdd(key);
  if (++epoch_fill_ >= opts_.epoch_tuples) EndEpoch();

  Decision d;
  if (!hot_.empty()) {
    auto it = hot_.find(key);
    if (it != hot_.end()) {
      d.target = RouteHot(it->second, &d.flush_first);
      if (it->second.demoted) hot_.erase(it);
      return d;
    }
  }
  const uint32_t home = HomeTarget(key);
  d.target = home;
  // Opt-in straggler relief: a cold key bound for a saturated target is
  // diverted to the least-loaded unsaturated sibling on the same node.
  // Never taken in ordered mode (it would break per-key order) and never
  // without the board (static-determinism default).
  if (board_ != nullptr && opts_.react_to_backpressure &&
      !opts_.ordered_handoff && board_->saturated(home)) {
    const std::vector<uint32_t>& sibs = siblings_[home];
    if (sibs.size() > 1) {
      uint32_t best_depth = UINT32_MAX;
      uint32_t best = home;
      for (uint32_t sibling : sibs) {
        if (board_->saturated(sibling)) continue;
        const uint32_t depth = board_->depth(sibling);
        if (depth < best_depth) {
          best_depth = depth;
          best = sibling;
        }
      }
      if (best != home) {
        d.target = best;
        ++diverted_tuples_;
      }
    }
  }
  return d;
}

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

Aggregator::Aggregator(const Schema* schema,
                       const std::vector<AggSpec>* aggregates,
                       size_t group_by_index, bool global_aggregate,
                       const net::SimConfig* config, VirtualClock* clock)
    : schema_(schema),
      aggregates_(aggregates),
      group_by_index_(group_by_index),
      global_aggregate_(global_aggregate),
      config_(config),
      clock_(clock) {
  DFI_CHECK(!aggregates_->empty())
      << "combiner flow needs at least one aggregate";
}

void Aggregator::Fold(TupleView tuple) {
  const uint64_t key =
      global_aggregate_ ? 0 : ReadKeyAsU64(tuple, group_by_index_);
  clock_->Advance(config_->agg_update_ns);

  auto [it, inserted] = groups_.try_emplace(key);
  std::vector<double>& acc = it->second;
  if (inserted) {
    acc.resize(aggregates_->size());
    output_keys_.push_back(key);
    for (size_t i = 0; i < aggregates_->size(); ++i) {
      switch ((*aggregates_)[i].func) {
        case AggFunc::kSum:
        case AggFunc::kCount:
          acc[i] = 0;
          break;
        case AggFunc::kMin:
          acc[i] = std::numeric_limits<double>::infinity();
          break;
        case AggFunc::kMax:
          acc[i] = -std::numeric_limits<double>::infinity();
          break;
      }
    }
  }
  for (size_t i = 0; i < aggregates_->size(); ++i) {
    const AggSpec& agg = (*aggregates_)[i];
    switch (agg.func) {
      case AggFunc::kSum:
        acc[i] += FieldAsDouble(tuple, agg.field_index);
        break;
      case AggFunc::kCount:
        acc[i] += 1;
        break;
      case AggFunc::kMin:
        acc[i] = std::min(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
      case AggFunc::kMax:
        acc[i] = std::max(acc[i], FieldAsDouble(tuple, agg.field_index));
        break;
    }
  }
  ++tuples_folded_;
}

bool Aggregator::NextRow(AggRow* out) {
  if (output_pos_ >= output_keys_.size()) return false;
  const uint64_t key = output_keys_[output_pos_++];
  out->group_key = key;
  out->values = groups_.at(key);
  return true;
}

}  // namespace dfi
