#ifndef DFI_CORE_ENDPOINT_ABORT_LATCH_H_
#define DFI_CORE_ENDPOINT_ABORT_LATCH_H_

#include <atomic>
#include <mutex>

#include "common/status.h"

namespace dfi {

/// Flow-granular teardown flag. Flows whose transport has no per-pair
/// channel to poison (multicast replication) — or whose semantics make any
/// participant failure a whole-flow failure — trip this latch instead; every
/// endpoint checks it on its next operation or poll slice. The first cause
/// wins; later trips are no-ops.
class AbortLatch {
 public:
  AbortLatch() = default;

  AbortLatch(const AbortLatch&) = delete;
  AbortLatch& operator=(const AbortLatch&) = delete;

  /// Trips the latch. Returns true when this call was the one that tripped
  /// it (the caller then performs the one-time teardown side effects, e.g.
  /// poisoning channels or waking credit waiters).
  bool Trip(const Status& cause) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tripped_.load(std::memory_order_relaxed)) return false;
    cause_ = cause.ok() ? Status::Aborted("flow aborted") : cause;
    tripped_.store(true, std::memory_order_release);
    return true;
  }

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// The teardown cause (OK when not tripped).
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cause_;
  }

 private:
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;
  Status cause_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_ABORT_LATCH_H_
