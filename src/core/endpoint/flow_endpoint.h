#ifndef DFI_CORE_ENDPOINT_FLOW_ENDPOINT_H_
#define DFI_CORE_ENDPOINT_FLOW_ENDPOINT_H_

#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/channel.h"
#include "core/endpoint/abort_latch.h"
#include "core/endpoint/channel_matrix.h"
#include "core/endpoint/policies.h"

namespace dfi {

/// Source half of the unified transport: one worker thread's view of its
/// row of the channel matrix. Owns the per-target ChannelSources and with
/// them everything the paper's section 5 source side does — staging-ring
/// wrap, selective signaling, footer prefetch, zero-copy batch
/// reservations, deadline-bounded blocking on a full remote ring, and
/// poisoned-footer teardown. Flow types differ only in the Partitioner
/// they pass in (paper Table 1).
class FlowEndpoint {
 public:
  FlowEndpoint(ChannelMatrix* matrix, uint32_t source_index,
               rdma::RdmaContext* source_ctx, VirtualClock* clock);

  FlowEndpoint(const FlowEndpoint&) = delete;
  FlowEndpoint& operator=(const FlowEndpoint&) = delete;

  uint32_t num_targets() const {
    return static_cast<uint32_t>(channels_.size());
  }
  uint32_t tuple_size() const { return tuple_size_; }
  ChannelSource* channel(uint32_t target) { return channels_[target].get(); }

  /// Pushes one packed tuple, routed by `partitioner`.
  Status Push(const void* tuple, Partitioner* partitioner);

  /// Pushes with an explicit target (paper section 4.2.1, option (3)).
  Status PushTo(const void* tuple, uint32_t target_index);

  /// Pushes one packed tuple routed by an AdaptivePartitioner (opt-in skew
  /// adaptation). Honors the decision's hand-off flush: when a hot key was
  /// re-homed under ordered_handoff, the previous owner's channel is
  /// flushed before the tuple lands on the new owner, so per-(source, key)
  /// segments stay contiguous per target in transmit order.
  Status PushAdaptive(const void* tuple, AdaptivePartitioner* router);

  /// Batched adaptive push. Adaptive routing is inherently per-tuple (the
  /// frequency sketch advances with every tuple), so this simply sweeps
  /// PushAdaptive over the run — same per-target sequences as per-tuple
  /// pushes.
  Status PushBatchAdaptive(const void* tuples, size_t count,
                           AdaptivePartitioner* router);

  /// Batched push: partitions a run of `count` densely packed tuples and
  /// scatters them directly into the per-target staging segments in one
  /// fused sweep over the batch (zero-copy reservations, see
  /// ChannelSource::ReserveTuples). Builtin partitioners (key-hash, radix)
  /// run devirtualized — one indirect call per batch instead of one per
  /// tuple; a kGeneric partitioner falls back to per-tuple dispatch for the
  /// partitioning decision only. Delivers exactly the same per-target
  /// tuple sequences as calling Push on each tuple in order.
  Status PushBatch(const void* tuples, size_t count,
                   Partitioner* partitioner);

  /// Scatters a contiguous run of `n` tuples to one target (1-target flows
  /// and explicit-target batches skip partitioning entirely).
  Status AppendRun(uint32_t target, const uint8_t* run, size_t n);

  /// Fans an externally staged segment out to every target (replicate
  /// flows stage once and write per target; see ChannelSource::PushSegment).
  Status BroadcastSegment(uint8_t* staged_slot, uint32_t fill, bool end);

  /// Transmits all partially-filled segments.
  Status Flush();

  /// Flushes and signals end-of-flow to every target. Idempotent. Attempts
  /// every channel even after a failure: targets whose channel did close
  /// should not be starved of their end-of-flow marker because a sibling
  /// channel's close failed; the first error wins.
  Status Close();

  /// Aborts this endpoint's channels without a clean end-of-flow: every
  /// target observes the poisoned footer / shared poison state and its
  /// consume returns kError.
  void Abort(const Status& cause);

 private:
  /// Per-target write cursor into an open zero-copy reservation
  /// (ChannelSource::ReserveTuples), refilled on demand while PushBatch
  /// sweeps a batch. A pointer pair keeps the per-tuple hot path to one
  /// compare and one bump; the committed tuple count is recovered as
  /// (dst - start) / tuple_size at the (rare) refill and tail commits.
  struct BatchCursor {
    uint8_t* dst = nullptr;    // next write position
    uint8_t* end = nullptr;    // reservation end; dst == end forces refill
    uint8_t* start = nullptr;  // reservation base
  };

  /// Cached tuple size; immutable per flow, so the hot path never
  /// re-derives it.
  const uint32_t tuple_size_;
  std::vector<std::unique_ptr<ChannelSource>> channels_;  // one per target
  std::vector<BatchCursor> batch_cursors_;  // scratch, one per target
};

/// Source half of a fan-out (replicate) flow: tuples are staged once into
/// a local segment regardless of target count, and replication happens at
/// transmit time — in the NIC (naive: one write per target) or in the
/// switch (multicast) — see paper section 6.1.2. Subclasses supply the
/// Transmit step; this base owns the staging ring, the push/flush/close
/// protocol and the flow-abort check.
class FanoutEndpoint {
 public:
  virtual ~FanoutEndpoint();

  FanoutEndpoint(const FanoutEndpoint&) = delete;
  FanoutEndpoint& operator=(const FanoutEndpoint&) = delete;

  /// Stages one tuple for all targets (latency mode transmits it
  /// immediately).
  Status Push(const void* tuple, uint32_t len);

  /// Transmits the staged partial segment, if any.
  Status Flush();

  /// Transmits the final (possibly empty) segment with the end-of-flow
  /// marker. Idempotent.
  Status Close();

  /// Aborts without a clean end-of-flow.
  virtual void Abort(const Status& cause) = 0;

  bool closed() const { return closed_; }

 protected:
  FanoutEndpoint(rdma::RdmaContext* ctx, const FlowOptions& options,
                 uint32_t payload_capacity, const net::SimConfig* config,
                 const AbortLatch* flow_abort, VirtualClock* clock);

  /// Transmits the current staging slot's first `fill` bytes to every
  /// target.
  virtual Status Transmit(uint32_t fill, bool end) = 0;

  uint8_t* staging_payload() { return staging_.payload(staging_slot_); }
  const SegmentRing& staging() const { return staging_; }
  void MarkClosed() { closed_ = true; }

  VirtualClock* const clock_;
  const net::SimConfig* const config_;

 private:
  const FlowOptions options_;
  const AbortLatch* const flow_abort_;  // may be null
  rdma::MemoryRegion* staging_mr_ = nullptr;
  SegmentRing staging_;
  uint32_t staging_slot_ = 0;
  uint32_t fill_ = 0;
  bool closed_ = false;
};

/// Naive fan-out transport: the staged segment is written once per target
/// over the per-pair one-sided channels of a ChannelMatrix row.
class BroadcastEndpoint : public FanoutEndpoint {
 public:
  BroadcastEndpoint(ChannelMatrix* matrix, uint32_t source_index,
                    rdma::RdmaContext* ctx, const net::SimConfig* config,
                    const AbortLatch* flow_abort, VirtualClock* clock);

  void Abort(const Status& cause) override;

 protected:
  Status Transmit(uint32_t fill, bool end) override;

 private:
  FlowEndpoint fanout_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_FLOW_ENDPOINT_H_
