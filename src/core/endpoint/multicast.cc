#include "core/endpoint/multicast.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "core/deadline.h"

namespace dfi {
namespace {

uint32_t RoundUp8(uint32_t v) { return (v + 7u) & ~7u; }

/// Real-time backstop while waiting for out-of-order arrivals before gap
/// handling kicks in.
constexpr std::chrono::milliseconds kGapPollTimeout{5};

/// Real-time poll slice for unordered multicast consumes: long enough to be
/// cheap, short enough that teardown / fault-plan crashes surface promptly.
constexpr std::chrono::milliseconds kConsumePollSlice{1};

/// One blocked poll round on a recv CQ. Engine tasks take a non-blocking
/// poll and park with the deadline's virtual backoff instead of holding an
/// OS thread inside the CQ's condition variable; plain threads keep the
/// historical real-time slice. Returns true when a completion was polled;
/// false means the caller should run its failure / gap-recovery checks.
bool PollRound(rdma::CompletionQueue* cq, VirtualClock* clock,
               DeadlineWait* wait, std::chrono::milliseconds slice,
               rdma::Completion* c) {
  if (exec::Engine::InTask()) {
    const uint64_t seen = cq->version();
    if (cq->TryPoll(c, clock)) return true;
    wait->Block(*cq, seen);
    return false;
  }
  return cq->PollFor(c, clock, slice);
}

}  // namespace

// ---------------------------------------------------------------------------
// MulticastState
// ---------------------------------------------------------------------------

MulticastState::MulticastState(rdma::RdmaEnv* env,
                               const FlowOptions& options,
                               uint32_t tuple_size, uint32_t num_sources,
                               std::vector<net::NodeId> target_nodes,
                               const AbortLatch* flow_abort)
    : env_(env),
      options_(options),
      num_sources_(num_sources),
      target_nodes_(std::move(target_nodes)),
      flow_abort_(flow_abort) {
  const net::SimConfig& cfg = env_->config();
  pool_slots_ = options_.segments_per_ring;

  // Segments must fit one datagram.
  const uint32_t mtu_payload =
      (cfg.ud_mtu_bytes - sizeof(SegmentFooter)) & ~7u;
  if (options_.optimization == FlowOptimization::kLatency) {
    payload_capacity_ = RoundUp8(tuple_size);
  } else {
    payload_capacity_ =
        std::min(RoundUp8(options_.segment_size), mtu_payload);
    payload_capacity_ = std::max(payload_capacity_, RoundUp8(tuple_size));
  }
  DFI_CHECK_LE(payload_capacity_ + sizeof(SegmentFooter), cfg.ud_mtu_bytes)
      << "tuple too large for one multicast datagram";
  if (cfg.multicast_loss_probability > 0) {
    DFI_CHECK(ordered()) << "loss injection requires a globally ordered "
                            "replicate flow (gap detection + retransmit)";
  }

  group_ = env_->fabric().network_switch().CreateGroup();
  target_qps_.resize(num_targets());
  recv_pools_.resize(num_targets());
  credit_mrs_.resize(num_targets());
  consume_time_ = std::make_unique<std::atomic<SimTime>[]>(num_targets());
  ends_seen_ = std::make_unique<std::atomic<uint32_t>[]>(num_targets());
  for (uint32_t t = 0; t < num_targets(); ++t) {
    rdma::RdmaContext* ctx = env_->context(target_nodes_[t]);
    rdma::CompletionQueue* recv_cq = ctx->CreateCq();
    target_qps_[t] = ctx->CreateUdQp(ctx->CreateCq(), recv_cq);
    DFI_CHECK_OK(target_qps_[t]->AttachMulticast(group_));
    recv_pools_[t] =
        ctx->AllocateRegion(static_cast<size_t>(slot_bytes()) * pool_slots_);
    for (uint32_t i = 0; i < pool_slots_; ++i) {
      target_qps_[t]->PostRecv(recv_pools_[t]->addr() +
                                   static_cast<size_t>(i) * slot_bytes(),
                               slot_bytes(), i);
    }
    credit_mrs_[t] = ctx->AllocateRegion(64);
    consume_time_[t].store(0, std::memory_order_relaxed);
    ends_seen_[t].store(0, std::memory_order_relaxed);
  }
  if (ordered()) {
    sequencer_mr_ = env_->context(sequencer_node())->AllocateRegion(64);
    histories_.resize(num_sources_);
    for (auto& h : histories_) h = std::make_unique<History>();
  }
}

uint8_t* MulticastState::recv_slot(uint32_t target, uint32_t slot) {
  return recv_pools_[target]->addr() +
         static_cast<size_t>(slot) * slot_bytes();
}

StatusOr<uint64_t> MulticastState::AcquirePosition(rdma::RcQueuePair* seq_qp,
                                                   VirtualClock* clock) {
  if (!ordered()) {
    return unordered_positions_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Tuple sequencer: RDMA fetch-and-add on a global counter (paper 5.4).
  // Fails with kPeerFailed when the sequencer node crashed or is
  // partitioned away — the flow cannot make ordered progress then.
  return seq_qp->FetchAdd(sequencer_ref(), 1, clock);
}

uint64_t MulticastState::LoadConsumed(uint32_t target) const {
  return std::atomic_ref<uint64_t>(
             *reinterpret_cast<uint64_t*>(credit_mrs_[target]->addr()))
      .load(std::memory_order_acquire);
}

rdma::RemoteRef MulticastState::credit_ref(uint32_t target) const {
  return credit_mrs_[target]->RefAt(0);
}

void MulticastState::ReportConsumed(uint32_t target, SimTime now) {
  consume_time_[target].store(now, std::memory_order_release);
  std::atomic_ref<uint64_t>(
      *reinterpret_cast<uint64_t*>(credit_mrs_[target]->addr()))
      .fetch_add(1, std::memory_order_acq_rel);
  credit_sync_.Notify();
}

Status MulticastState::WaitForCredit(
    uint64_t position, std::vector<rdma::RcQueuePair*>& credit_qps,
    VirtualClock* clock) {
  const uint64_t slots = pool_slots_;
  auto min_consumed = [&] {
    uint64_t m = UINT64_MAX;
    for (uint32_t t = 0; t < num_targets(); ++t) {
      m = std::min(m, LoadConsumed(t));
    }
    return m;
  };
  // Periodic credit refresh: one 8-byte RDMA read per target each time the
  // cached window is half used (paper: "remote credit is read once the
  // local credit counter reaches a certain threshold").
  if (slots >= 2 && position % (slots / 2) == (slots / 2) - 1) {
    alignas(8) uint8_t scratch[8];
    for (uint32_t t = 0; t < num_targets(); ++t) {
      rdma::ReadDesc read;
      read.local = scratch;
      read.remote = credit_ref(t);
      read.length = sizeof(uint64_t);
      auto timing = credit_qps[t]->PostRead(read, clock);
      DFI_RETURN_IF_ERROR(timing.status());
    }
  }
  if (position < min_consumed() + slots) return Status::OK();

  // Blocked: wait until every target caught up. A dead or aborted target
  // never reports consumption, so the wait is deadline-bounded and checks
  // teardown / fault-plan state every slice instead of hanging forever.
  DeadlineWait wait(options_, clock);
  const net::FaultPlan& plan = fault_plan();
  for (;;) {
    const uint64_t seen = credit_sync_.version();
    if (position < min_consumed() + slots) break;
    if (flow_abort_ != nullptr && flow_abort_->tripped()) {
      wait.Commit();
      return flow_abort_->status();
    }
    if (plan.active()) {
      const SimTime now = wait.ProvisionalNow();
      for (uint32_t t = 0; t < num_targets(); ++t) {
        if (!plan.NodeAlive(target_nodes_[t], now)) {
          wait.Commit();
          return Status::PeerFailed(
              "replicate target " + std::to_string(t) + " on node " +
              std::to_string(target_nodes_[t]) +
              " failed; credit window cannot advance");
        }
      }
    }
    if (!wait.Tick()) {
      wait.Commit();
      return Status::DeadlineExceeded(
          "credit wait deadline at position " + std::to_string(position));
    }
    wait.Block(credit_sync_, seen);
  }

  // Success: charge virtual time from the limiting target's consume
  // timestamp plus one discovering read (fault-free timing unchanged).
  SimTime limit = 0;
  for (uint32_t t = 0; t < num_targets(); ++t) {
    limit = std::max(limit,
                     consume_time_[t].load(std::memory_order_acquire));
  }
  clock->AdvanceTo(limit);
  alignas(8) uint8_t scratch[8];
  rdma::ReadDesc read;
  read.local = scratch;
  read.remote = credit_ref(0);
  read.length = sizeof(uint64_t);
  auto timing = credit_qps[0]->PostRead(read, clock);
  DFI_RETURN_IF_ERROR(timing.status());
  clock->AdvanceTo(timing->arrival);
  return Status::OK();
}

void MulticastState::RecordHistory(uint32_t source, uint64_t seq,
                                   const uint8_t* data, uint32_t len) {
  History& h = *histories_[source];
  std::lock_guard<std::mutex> lock(h.mu);
  h.segments.emplace(seq, std::vector<uint8_t>(data, data + len));
  while (h.segments.size() > kHistoryDepth) {
    h.segments.erase(h.segments.begin());
  }
}

bool MulticastState::LookupHistory(uint64_t seq,
                                   std::vector<uint8_t>* out) const {
  for (const auto& hp : histories_) {
    std::lock_guard<std::mutex> lock(hp->mu);
    auto it = hp->segments.find(seq);
    if (it != hp->segments.end()) {
      *out = it->second;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// MulticastSendEndpoint
// ---------------------------------------------------------------------------

MulticastSendEndpoint::MulticastSendEndpoint(MulticastState* mcast,
                                             uint32_t source_index,
                                             rdma::RdmaContext* ctx,
                                             const net::SimConfig* config,
                                             AbortLatch* flow_abort,
                                             VirtualClock* clock)
    : FanoutEndpoint(ctx, mcast->options(), mcast->payload_capacity(),
                     config, flow_abort, clock),
      mcast_(mcast),
      source_index_(source_index),
      flow_abort_(flow_abort) {
  rdma::CompletionQueue* cq = ctx->CreateCq();
  ud_qp_ = ctx->CreateUdQp(cq, ctx->CreateCq());
  if (mcast_->ordered()) {
    seq_qp_ = ctx->CreateRcQp(mcast_->sequencer_node(), cq);
  }
  for (uint32_t t = 0; t < mcast_->num_targets(); ++t) {
    credit_qps_.push_back(ctx->CreateRcQp(mcast_->target_node(t), cq));
  }
}

Status MulticastSendEndpoint::Transmit(uint32_t fill, bool end) {
  DFI_ASSIGN_OR_RETURN(const uint64_t position,
                       mcast_->AcquirePosition(seq_qp_, clock_));
  DFI_RETURN_IF_ERROR(
      mcast_->WaitForCredit(position, credit_qps_, clock_));

  uint8_t* slot = staging_payload();
  auto* footer = reinterpret_cast<SegmentFooter*>(
      slot + staging().payload_capacity());
  footer->sequence = position;
  footer->fill_bytes = fill;
  footer->source_index = static_cast<uint16_t>(source_index_);
  footer->reserved = 0;
  footer->arrival_sim_time = 0;  // per-target arrival comes from the CQE
  footer->flags = static_cast<uint8_t>(kFlagConsumable |
                                       (end ? kFlagEndOfFlow : 0));
  if (mcast_->ordered()) {
    mcast_->RecordHistory(source_index_, position, slot,
                          mcast_->slot_bytes());
  }
  clock_->Advance(config_->segment_seal_ns);
  auto timing = ud_qp_->PostSendMulticast(mcast_->group(), slot,
                                          mcast_->slot_bytes(), position,
                                          /*signaled=*/false, clock_);
  DFI_RETURN_IF_ERROR(timing.status());
  ++send_count_;
  return Status::OK();
}

void MulticastSendEndpoint::Abort(const Status& cause) {
  MarkClosed();
  // Switch replication has no per-pair channel: tear the flow down.
  if (flow_abort_->Trip(cause)) mcast_->WakeCreditWaiters();
}

// ---------------------------------------------------------------------------
// MulticastSink
// ---------------------------------------------------------------------------

MulticastSink::MulticastSink(MulticastState* mcast, uint32_t target_index,
                             const Schema* schema,
                             const net::SimConfig* config,
                             VirtualClock* clock, std::string label,
                             std::vector<net::NodeId> source_nodes,
                             const AbortLatch* flow_abort)
    : mcast_(mcast),
      target_index_(target_index),
      schema_(schema),
      config_(config),
      clock_(clock),
      label_(std::move(label)),
      source_nodes_(std::move(source_nodes)),
      flow_abort_(flow_abort) {}

const SegmentFooter* MulticastSink::SlotFooter(uint32_t slot) const {
  return reinterpret_cast<const SegmentFooter*>(
      mcast_->recv_slot(target_index_, slot) + mcast_->payload_capacity());
}

void MulticastSink::ReleaseHeld() {
  if (held_slot_ >= 0) {
    mcast_->target_qp(target_index_)
        ->PostRecv(mcast_->recv_slot(target_index_,
                                     static_cast<uint32_t>(held_slot_)),
                   mcast_->slot_bytes(), static_cast<uint32_t>(held_slot_));
    mcast_->ReportConsumed(target_index_, clock_->now());
    held_slot_ = -1;
  }
  if (!held_copy_.empty()) {
    held_copy_.clear();
    mcast_->ReportConsumed(target_index_, clock_->now());
  }
}

bool MulticastSink::CheckFailure(DeadlineWait* wait,
                                 ConsumeResult* out_result) {
  // Flow-level teardown first.
  if (flow_abort_ != nullptr && flow_abort_->tripped()) {
    last_status_ = flow_abort_->status();
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  // A crashed source never sequences its end-of-flow marker, so the flow
  // can never finish; surface it as kPeerFailed. (Multicast end markers are
  // counted, not per-source, so any dead source fails the flow — membership
  // semantics.)
  const net::FaultPlan& plan = mcast_->fault_plan();
  if (plan.active()) {
    const SimTime now = wait->ProvisionalNow();
    for (uint32_t s = 0; s < source_nodes_.size(); ++s) {
      const net::NodeId src = source_nodes_[s];
      if (!plan.NodeAlive(src, now)) {
        last_status_ = Status::PeerFailed(
            label_ + " source " + std::to_string(s) + " on node " +
            std::to_string(src) + " failed before closing the flow");
        wait->Commit();
        *out_result = ConsumeResult::kError;
        return true;
      }
    }
  }
  if (!wait->Tick()) {
    last_status_ =
        Status::DeadlineExceeded(label_ + " consume deadline elapsed");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  return false;
}

ConsumeResult MulticastSink::ConsumeSegment(SegmentView* out) {
  return mcast_->ordered() ? ConsumeOrdered(out) : ConsumeUnordered(out);
}

ConsumeResult MulticastSink::ConsumeUnordered(SegmentView* out) {
  ReleaseHeld();
  rdma::CompletionQueue* cq = mcast_->target_qp(target_index_)->recv_cq();
  auto& ends = mcast_->ends_seen(target_index_);
  DeadlineWait wait(mcast_->options(), clock_);
  for (;;) {
    if (ends.load(std::memory_order_acquire) == mcast_->num_sources()) {
      return ConsumeResult::kFlowEnd;
    }
    rdma::Completion c;
    if (!PollRound(cq, clock_, &wait, kConsumePollSlice, &c)) {
      ConsumeResult failure;
      if (CheckFailure(&wait, &failure)) return failure;
      continue;
    }
    const uint32_t slot = static_cast<uint32_t>(c.wr_id);
    const SegmentFooter* footer = SlotFooter(slot);
    if (footer->end_of_flow()) {
      ends.fetch_add(1, std::memory_order_acq_rel);
      if (footer->fill_bytes == 0) {
        // Pure end marker: recycle.
        mcast_->target_qp(target_index_)
            ->PostRecv(mcast_->recv_slot(target_index_, slot),
                       mcast_->slot_bytes(), slot);
        mcast_->ReportConsumed(target_index_, clock_->now());
        continue;
      }
      // End marker carrying the source's final partial segment: deliver.
    }
    clock_->Advance(config_->consume_segment_fixed_ns);
    held_slot_ = static_cast<int>(slot);
    *out = SegmentView{mcast_->recv_slot(target_index_, slot),
                       footer->fill_bytes,
                       footer->sequence,
                       footer->source_index,
                       footer->end_of_flow(),
                       c.time};
    return ConsumeResult::kOk;
  }
}

ConsumeResult MulticastSink::ConsumeOrdered(SegmentView* out) {
  ReleaseHeld();
  rdma::CompletionQueue* cq = mcast_->target_qp(target_index_)->recv_cq();
  auto& ends = mcast_->ends_seen(target_index_);
  DeadlineWait wait(mcast_->options(), clock_);
  for (;;) {
    if (ends.load(std::memory_order_acquire) == mcast_->num_sources()) {
      return ConsumeResult::kFlowEnd;
    }
    // Serve in order from the next list (paper Figure 6).
    Sequencer::Entry entry;
    if (seq_.PopReady(&entry)) {
      const uint8_t* base;
      if (entry.slot != UINT32_MAX) {
        base = mcast_->recv_slot(target_index_, entry.slot);
      } else {
        held_copy_ = std::move(entry.copy);
        base = held_copy_.data();
      }
      const auto* footer = reinterpret_cast<const SegmentFooter*>(
          base + mcast_->payload_capacity());
      if (footer->end_of_flow()) {
        // End markers are sequenced like data.
        ends.fetch_add(1, std::memory_order_acq_rel);
        if (footer->fill_bytes == 0) {
          // Pure marker: recycle.
          if (entry.slot != UINT32_MAX) {
            held_slot_ = static_cast<int>(entry.slot);
          }
          ReleaseHeld();
          continue;
        }
        // Marker carrying the final partial segment: fall through and
        // deliver the payload.
      }
      clock_->Advance(config_->consume_segment_fixed_ns);
      clock_->AdvanceTo(entry.arrival);
      if (entry.slot != UINT32_MAX) {
        held_slot_ = static_cast<int>(entry.slot);
      }
      *out = SegmentView{base,
                         footer->fill_bytes,
                         footer->sequence,
                         footer->source_index,
                         footer->end_of_flow(),
                         entry.arrival};
      return ConsumeResult::kOk;
    }

    // Pull arrivals into the next list.
    rdma::Completion c;
    if (PollRound(cq, clock_, &wait, kGapPollTimeout, &c)) {
      const uint32_t slot = static_cast<uint32_t>(c.wr_id);
      const SegmentFooter* footer = SlotFooter(slot);
      const uint64_t seq = footer->sequence;
      if (!seq_.Fresh(seq)) {
        // Duplicate (e.g. a retransmission raced the original): recycle the
        // slot without reporting consumption — the sequence was already
        // credited once.
        mcast_->target_qp(target_index_)
            ->PostRecv(mcast_->recv_slot(target_index_, slot),
                       mcast_->slot_bytes(), slot);
        continue;
      }
      seq_.Offer(seq, Sequencer::Entry{slot, {}, c.time});
      continue;
    }

    // Poll timed out: first surface teardown / dead peers / the deadline,
    // then consider gap recovery (paper section 5.4). With loss injection
    // disabled nothing can be lost — the head sequence is merely still in
    // flight (e.g. its sender was descheduled), so keep polling instead of
    // issuing spurious recoveries.
    ConsumeResult failure;
    if (CheckFailure(&wait, &failure)) return failure;
    if (config_->multicast_loss_probability <= 0 &&
        !mcast_->fault_plan().HasLossBursts()) {
      continue;
    }
    if (mcast_->options().app_handles_gaps) {
      // Evidence of loss is either a later segment already queued, or the
      // missing sequence recorded in a sender's history (covers tail loss,
      // where nothing later will ever arrive).
      std::vector<uint8_t> probe;
      if (!seq_.HasPending() &&
          !mcast_->LookupHistory(seq_.expected(), &probe)) {
        continue;  // nothing proves a gap yet
      }
      clock_->Advance(mcast_->options().gap_timeout_ns);
      out->payload = nullptr;
      out->bytes = 0;
      out->sequence = seq_.expected();  // the missing sequence number
      out->end_of_flow = false;
      out->arrival = clock_->now();
      return ConsumeResult::kGap;
    }
    // Transparent recovery: request a retransmission. In-process this pulls
    // straight from the source's retransmit history, charging the unicast
    // round-trip it would cost on the wire.
    std::vector<uint8_t> copy;
    if (mcast_->LookupHistory(seq_.expected(), &copy)) {
      const net::SimConfig& cfg = *config_;
      clock_->Advance(mcast_->options().gap_timeout_ns);
      clock_->Advance(2 * cfg.propagation_ns + cfg.ud_send_overhead_ns +
                      static_cast<SimTime>(mcast_->slot_bytes() /
                                           cfg.LinkBytesPerNs()));
      seq_.Offer(seq_.expected(),
                 Sequencer::Entry{UINT32_MAX, std::move(copy),
                                  clock_->now()});
    }
    // Otherwise the segment is still in flight (or not yet sent); keep
    // waiting.
  }
}

ConsumeResult MulticastSink::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema_->tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, schema_);
      tuple_offset_ += tuple_size;
      clock_->Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r != ConsumeResult::kOk) return r;
    current_ = view;
  }
}

void MulticastSink::SkipGap() {
  DFI_CHECK(mcast_->ordered() && mcast_->options().app_handles_gaps);
  seq_.Skip();
  mcast_->ReportConsumed(target_index_, clock_->now());
}

void MulticastSink::SupplyGap(const void* data, uint32_t bytes) {
  DFI_CHECK(mcast_->ordered() && mcast_->options().app_handles_gaps);
  DFI_CHECK_LE(bytes, mcast_->payload_capacity());
  std::vector<uint8_t> copy(mcast_->slot_bytes(), 0);
  std::memcpy(copy.data(), data, bytes);
  auto* footer = reinterpret_cast<SegmentFooter*>(
      copy.data() + mcast_->payload_capacity());
  footer->sequence = seq_.expected();
  footer->fill_bytes = bytes;
  footer->flags = kFlagConsumable;
  footer->arrival_sim_time = clock_->now();
  seq_.Offer(seq_.expected(),
             Sequencer::Entry{UINT32_MAX, std::move(copy), clock_->now()});
}

}  // namespace dfi
