#ifndef DFI_CORE_ENDPOINT_CHANNEL_MATRIX_H_
#define DFI_CORE_ENDPOINT_CHANNEL_MATRIX_H_

#include <memory>
#include <vector>

#include "core/channel.h"
#include "core/endpoint/backpressure.h"
#include "core/flow_options.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// The private channel fabric of one flow: an N x M matrix of
/// source->target segment-ring channels plus one ReadyGate per target
/// thread (paper Figure 5 — every (source thread, target thread) pair gets
/// its own ring so no synchronization is needed on the data path). All
/// three flow types build exactly this structure for the one-sided
/// transport; the matrix owns it once.
class ChannelMatrix {
 public:
  ChannelMatrix() = default;

  /// Allocates every ring on its target's node and wires the gates.
  ChannelMatrix(rdma::RdmaEnv* env, const FlowOptions& options,
                uint32_t tuple_size, uint32_t num_sources,
                const std::vector<net::NodeId>& target_nodes);

  ChannelMatrix(ChannelMatrix&&) = default;
  ChannelMatrix& operator=(ChannelMatrix&&) = default;

  bool empty() const { return channels_.empty(); }
  uint32_t num_sources() const { return num_sources_; }
  uint32_t num_targets() const { return num_targets_; }
  uint32_t tuple_size() const { return tuple_size_; }
  const FlowOptions& options() const { return options_; }

  ChannelShared* channel(uint32_t source, uint32_t target) const {
    return channels_[static_cast<size_t>(source) * num_targets_ + target]
        .get();
  }
  ReadyGate* target_gate(uint32_t target) const {
    return &target_gates_[target];
  }

  /// Per-target queue-depth board (null unless the flow opted into
  /// adaptive shuffling — the static path never allocates or touches it,
  /// keeping its per-segment work digit-identical).
  TargetLoadBoard* load_board() const { return load_board_.get(); }

  /// Tears the whole matrix down: poison wakes both halves of every channel
  /// (sync + target gate), so blocked sources and targets observe the
  /// teardown promptly.
  void PoisonAll(const Status& cause);

  /// Registered bytes of all rings of this flow on `node` (memory
  /// accounting, paper section 6.1.4; excludes source-side staging which is
  /// counted when sources are created).
  uint64_t RingBytesOnNode(net::NodeId node) const;

 private:
  FlowOptions options_;
  uint32_t tuple_size_ = 0;
  uint32_t num_sources_ = 0;
  uint32_t num_targets_ = 0;
  std::vector<std::unique_ptr<ChannelShared>> channels_;
  std::unique_ptr<ReadyGate[]> target_gates_;
  std::unique_ptr<TargetLoadBoard> load_board_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_CHANNEL_MATRIX_H_
