#include "core/endpoint/flow_sink.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/deadline.h"

namespace dfi {

// ---------------------------------------------------------------------------
// StealColumn / SinkStealGroup
// ---------------------------------------------------------------------------

StealColumn::StealColumn(ChannelMatrix* matrix, uint32_t target_index)
    : target_index_(target_index),
      gate_(matrix->target_gate(target_index)),
      options_(&matrix->options()),
      board_(matrix->load_board()) {
  const uint32_t n = matrix->num_sources();
  cursors.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    // The cursors have no resident clock: every consume/release charges
    // the clock of whichever group sink performs it.
    cursors.push_back(std::make_unique<ChannelTargetCursor>(
        matrix->channel(s, target_index), /*clock=*/nullptr));
  }
  busy.assign(n, 0);
  deferred.assign(n, 0);
}

bool SinkStealGroup::AllExhausted() {
  for (StealColumn* col : columns_) {
    std::lock_guard<std::mutex> lock(col->mu);
    if (!col->AllExhaustedLocked()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FlowSink
// ---------------------------------------------------------------------------

FlowSink::FlowSink(ChannelMatrix* matrix, uint32_t target_index,
                   const Schema* schema, const net::SimConfig* config,
                   VirtualClock* clock, std::string label,
                   std::vector<net::NodeId> source_nodes,
                   const AbortLatch* flow_abort)
    : gate_(matrix->target_gate(target_index)),
      target_index_(target_index),
      schema_(schema),
      config_(config),
      clock_(clock),
      options_(&matrix->options()),
      label_(std::move(label)),
      source_nodes_(std::move(source_nodes)),
      flow_abort_(flow_abort) {
  const uint32_t n = matrix->num_sources();
  cursors_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    cursors_.push_back(std::make_unique<ChannelTargetCursor>(
        matrix->channel(s, target_index), clock_));
  }
}

FlowSink::FlowSink(StealColumn* column, SinkStealGroup* group,
                   const Schema* schema, const net::SimConfig* config,
                   VirtualClock* clock, std::string label,
                   std::vector<net::NodeId> source_nodes,
                   const AbortLatch* flow_abort)
    : gate_(column->gate()),
      target_index_(column->target_index()),
      schema_(schema),
      config_(config),
      clock_(clock),
      options_(&column->options()),
      label_(std::move(label)),
      source_nodes_(std::move(source_nodes)),
      flow_abort_(flow_abort),
      column_(column),
      group_(group) {
  const auto& cols = group_->columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == column_) {
      own_pos_ = i;
      break;
    }
  }
}

void FlowSink::ReleaseHeld() {
  if (column_ != nullptr) {
    ReleaseHeldColumn();
    return;
  }
  if (held_cursor_ < 0) return;
  ChannelTargetCursor& held = *cursors_[held_cursor_];
  // A held cursor is never already exhausted (exhaustion happens on the
  // release of the end-of-flow segment), so exhausted() flipping true here
  // is exactly the transition.
  held.Release();
  if (held.exhausted()) ++exhausted_count_;
  held_cursor_ = -1;
}

void FlowSink::ReleaseHeldColumn() {
  if (held_col_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(held_col_->mu);
    const uint32_t idx = static_cast<uint32_t>(held_cursor_);
    ChannelTargetCursor& held = *held_col_->cursors[idx];
    held.Release(clock_);
    if (held.exhausted()) ++held_col_->exhausted;
    held_col_->busy[idx] = 0;
    ReplayDeferredLocked(held_col_, idx);
  }
  held_col_ = nullptr;
  held_cursor_ = -1;
  // A release can unblock siblings: the freed cursor's next segment
  // becomes poppable (replayed entries), and a drained column moves the
  // group toward flow end. Wake the group.
  group_->wake().Notify();
}

void FlowSink::ReplayDeferredLocked(StealColumn* col, uint32_t idx) {
  uint32_t replay = col->deferred[idx];
  col->deferred[idx] = 0;
  while (replay-- > 0) col->gate()->Enqueue(idx);
}

bool FlowSink::ScanColumnLocked(StealColumn* col, SegmentView* out,
                                ConsumeResult* out_result) {
  uint32_t idx = 0;
  while (col->gate()->TryDequeue(&idx)) {
    ChannelTargetCursor& cursor = *col->cursors[idx];
    if (cursor.exhausted()) continue;  // stale entry, already drained
    if (col->busy[idx] != 0) {
      // Another sink is iterating this cursor's segment; park the
      // announcement for replay on its release instead of re-enqueueing
      // (re-enqueued entries would cycle through this pop loop forever).
      ++col->deferred[idx];
      continue;
    }
    SegmentView view;
    if (!cursor.TryConsume(&view, clock_)) {
      // Raced an earlier pop; same virtual-time rule as the exclusive
      // path: never charge host-schedule noise to the clock.
      ++stale_pops_;
      continue;
    }
    clock_->Advance(config_->consume_segment_fixed_ns);
    if (view.bytes == 0) {
      // Pure end-of-flow marker: recycle silently. The exhaustion can
      // complete the group (flow end for siblings blocked in consume), so
      // it must bump the group wake like ReleaseHeldColumn does.
      cursor.Release(clock_);
      if (cursor.exhausted()) ++col->exhausted;
      ReplayDeferredLocked(col, idx);
      group_->wake().Notify();
      continue;
    }
    col->busy[idx] = 1;
    held_col_ = col;
    held_cursor_ = static_cast<int>(idx);
    if (col != column_) ++stolen_segments_;
    view.target_column = static_cast<uint16_t>(col->target_index());
    *out = view;
    *out_result = ConsumeResult::kOk;
    return true;
  }
  return false;
}

bool FlowSink::OwnColumnRingPressure() {
  // Per-channel ring occupancy, deliberately NOT the column's aggregate
  // queue depth: a skewed column's aggregate backlog stays high through
  // the whole drain even while every producer still has free ring slots,
  // and overriding deferral on the aggregate would make the slow owner
  // churn through exactly the backlog its siblings should be levelling.
  const uint32_t full = column_->options().segments_per_ring;
  std::lock_guard<std::mutex> lock(column_->mu);
  for (const auto& cursor : column_->cursors) {
    if (!cursor->exhausted() && cursor->shared()->inflight() + 1 >= full) {
      return true;
    }
  }
  return false;
}

bool FlowSink::TryConsumeSegmentColumn(SegmentView* out,
                                       ConsumeResult* out_result) {
  ReleaseHeldColumn();
  const SimTime my_now = clock_->now();
  // Sample this sink's app-side per-segment processing cost: the clock
  // advance between handing out a segment and the next consume call.
  if (cost_sample_armed_) {
    cost_sample_armed_ = false;
    const SimTime delta = my_now - cost_sample_start_;
    my_cost_ = my_cost_ == 0 ? delta : (3 * my_cost_ + delta) / 4;
  }
  const SimTime my_cost = my_cost_ + config_->consume_segment_fixed_ns;
  column_->owner_now.store(my_now, std::memory_order_relaxed);
  column_->owner_cost.store(my_cost, std::memory_order_relaxed);
  const auto& cols = group_->columns();
  const size_t n = cols.size();
  // Level-filling scheduler over *virtual* time. Host threads burn
  // through segments essentially for free in host time, so whoever the
  // host happens to schedule would otherwise eat the whole backlog and
  // charge it to one clock, inflating the emulated completion. Instead
  // each sink publishes (clock, per-segment cost) and the group keeps all
  // clocks level with the current maximum:
  //  - a sink may *steal* only while the stolen segment keeps its clock
  //    below the group max (my_now + my_cost < max) — such a move can
  //    never raise the makespan, and it strictly helps when the donor
  //    would otherwise push past the max;
  //  - the *peak* sink (my_now + my_cost >= max) defers even its own
  //    column while some sibling would take the head strictly below the
  //    max — that sibling's steal test passes, so the work is picked up,
  //    and a below-max sink never defers, so the group always makes
  //    progress.
  // On balanced load the clocks stay level and neither rule fires — the
  // adaptive sink then consumes exactly like the exclusive one. Deferring
  // also stops when some channel of the own column runs its ring near
  // full: a producer may be about to block on a slot only consumption can
  // free — correctness over balance (see OwnColumnRingPressure()).
  const SimTime my_done = my_now + my_cost;
  SimTime group_max = my_now;
  SimTime best_sibling_done = my_done;
  for (StealColumn* col : cols) {
    const SimTime sib_now = col->owner_now.load(std::memory_order_relaxed);
    group_max = std::max(group_max, sib_now);
    if (col != column_) {
      best_sibling_done = std::min(
          best_sibling_done,
          sib_now + col->owner_cost.load(std::memory_order_relaxed));
    }
  }
  const bool defer_own = my_done >= group_max &&
                         best_sibling_done < group_max &&
                         !OwnColumnRingPressure();
  bool all_exhausted = true;
  // Own column first, then the siblings in rotating group order.
  for (size_t i = 0; i < n; ++i) {
    StealColumn* col = cols[(own_pos_ + i) % n];
    const bool skip = col == column_ ? defer_own : my_done >= group_max;
    std::lock_guard<std::mutex> lock(col->mu);
    if (!skip && ScanColumnLocked(col, out, out_result)) {
      // Arm the cost sample at the post-consume clock; the next call's
      // delta is the app's processing time for this segment.
      cost_sample_armed_ = true;
      cost_sample_start_ = clock_->now();
      return true;
    }
    all_exhausted = all_exhausted && col->AllExhaustedLocked();
  }
  if (all_exhausted) {
    *out_result = ConsumeResult::kFlowEnd;
    return true;  // definitive: every column of the group is drained
  }
  // Our published clock advanced (e.g. source-side pushes on an
  // interleaved worker) and we consumed nothing — a sibling's steal test
  // against our column may have just turned true while it sits blocked.
  // Bump the group wake exactly once per advance; a repeat poll with an
  // unchanged clock stays silent, so blocked waiters are not spun awake.
  if (my_now > last_published_now_) {
    last_published_now_ = my_now;
    group_->wake().Notify();
  }
  // Nothing consumable: surface teardown through the non-blocking path.
  // The own column sees a channel from every source, so any source-level
  // abort is visible here.
  std::lock_guard<std::mutex> lock(column_->mu);
  for (auto& cursor : column_->cursors) {
    if (!cursor->exhausted() && cursor->shared()->poisoned()) {
      last_status_ = cursor->shared()->poison_status();
      *out_result = ConsumeResult::kError;
      return true;
    }
  }
  return false;
}

bool FlowSink::TryConsumeSegment(SegmentView* out,
                                 ConsumeResult* out_result) {
  if (column_ != nullptr) return TryConsumeSegmentColumn(out, out_result);
  // Release the previously returned segment.
  ReleaseHeld();
  // Pop delivered channels off the ready list instead of scanning all
  // rings: cost is O(deliveries handled), independent of how many source
  // channels sit idle.
  uint32_t idx = 0;
  while (gate_->TryDequeue(&idx)) {
    ChannelTargetCursor& cursor = *cursors_[idx];
    if (cursor.exhausted()) continue;  // stale entry, already drained
    SegmentView view;
    if (!cursor.TryConsume(&view)) {
      // Entry raced an earlier pop that consumed this delivery. The stale
      // entry is an artifact of the ready list's real-time mirror of ring
      // state — how many occur depends on host scheduling, not on emulated
      // behavior — so charging virtual time here would leak host-schedule
      // noise into the consumer clock (and, through slot-release
      // timestamps, into producer wire times), breaking the determinism
      // contract. Count it for stats instead.
      ++stale_pops_;
      continue;
    }
    clock_->Advance(config_->consume_segment_fixed_ns);
    if (view.bytes == 0) {
      // Pure end-of-flow marker: recycle silently. (End markers may also
      // carry a final partial payload; those are surfaced normally.)
      cursor.Release();
      if (cursor.exhausted()) ++exhausted_count_;
      continue;
    }
    held_cursor_ = static_cast<int>(idx);
    view.target_column = static_cast<uint16_t>(target_index_);
    *out = view;
    *out_result = ConsumeResult::kOk;
    return true;
  }
  if (exhausted_count_ == cursors_.size()) {
    *out_result = ConsumeResult::kFlowEnd;
    return true;  // definitive answer
  }
  // Nothing consumable: surface teardown through the non-blocking path too
  // (already-delivered segments above still drain ahead of the error).
  for (auto& cursor : cursors_) {
    if (!cursor->exhausted() && cursor->shared()->poisoned()) {
      last_status_ = cursor->shared()->poison_status();
      *out_result = ConsumeResult::kError;
      return true;
    }
  }
  return false;
}

bool FlowSink::CheckFailure(DeadlineWait* wait, ConsumeResult* out_result) {
  // Flow-level teardown first (flows with flow-granular abort semantics).
  if (flow_abort_ != nullptr && flow_abort_->tripped()) {
    last_status_ = flow_abort_->status();
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  // A crashed source never sends its end-of-flow marker; ask the fault
  // plan so the failure surfaces as kPeerFailed instead of waiting out the
  // full deadline. (Poison is detected in TryConsumeSegment.) In
  // work-stealing mode the own column carries one channel per source, so
  // polling it under its lock covers every peer.
  int dead_source = -1;
  uint32_t open_channels = 0;
  const SimTime now = wait->ProvisionalNow();
  auto poll = [&](const std::vector<std::unique_ptr<ChannelTargetCursor>>&
                      cursors) {
    const net::FaultPlan* plan =
        cursors.empty() ? nullptr : cursors[0]->shared()->fault_plan();
    const bool active = plan != nullptr && plan->active();
    for (uint32_t s = 0; s < cursors.size(); ++s) {
      if (cursors[s]->exhausted()) continue;
      ++open_channels;
      const net::NodeId src = source_nodes_[s];
      if (active && dead_source < 0 && src != net::kInvalidNode &&
          !plan->NodeAlive(src, now)) {
        dead_source = static_cast<int>(s);
      }
    }
  };
  if (column_ != nullptr) {
    std::lock_guard<std::mutex> lock(column_->mu);
    poll(column_->cursors);
  } else {
    poll(cursors_);
  }
  if (dead_source >= 0) {
    last_status_ = Status::PeerFailed(
        label_ + " source " + std::to_string(dead_source) + " on node " +
        std::to_string(source_nodes_[dead_source]) +
        " failed before closing its channel");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  if (!wait->Tick()) {
    last_status_ = Status::DeadlineExceeded(
        label_ + " consume deadline elapsed with " +
        std::to_string(open_channels) + " source channel(s) still open");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  return false;
}

ConsumeResult FlowSink::ConsumeSegment(SegmentView* out) {
  DeadlineWait wait(*options_, clock_);
  // Work-stealing mode blocks on the group-level wakeup (bumped by every
  // delivery to and release within the group); exclusive mode on the own
  // ready gate.
  ReadyGate& wake = group_ != nullptr ? group_->wake() : *gate_;
  for (;;) {
    // Capture the version before scanning so a delivery racing with the
    // scan is never missed.
    const uint64_t version = wake.version();
    ConsumeResult result;
    if (TryConsumeSegment(out, &result)) return result;
    if (CheckFailure(&wait, &result)) return result;
    wait.Block(wake, version);
  }
}

ConsumeResult FlowSink::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema_->tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, schema_);
      tuple_offset_ += tuple_size;
      clock_->Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r != ConsumeResult::kOk) return r;
    current_ = view;
  }
}

void FlowSink::Abort(const Status& cause) {
  if (column_ != nullptr) {
    std::lock_guard<std::mutex> lock(column_->mu);
    for (auto& cursor : column_->cursors) cursor->shared()->Poison(cause);
    return;
  }
  for (auto& cursor : cursors_) cursor->shared()->Poison(cause);
}

}  // namespace dfi
