#include "core/endpoint/flow_sink.h"

#include <utility>

#include "common/logging.h"
#include "core/deadline.h"

namespace dfi {

FlowSink::FlowSink(ChannelMatrix* matrix, uint32_t target_index,
                   const Schema* schema, const net::SimConfig* config,
                   VirtualClock* clock, std::string label,
                   std::vector<net::NodeId> source_nodes,
                   const AbortLatch* flow_abort)
    : gate_(matrix->target_gate(target_index)),
      schema_(schema),
      config_(config),
      clock_(clock),
      options_(&matrix->options()),
      label_(std::move(label)),
      source_nodes_(std::move(source_nodes)),
      flow_abort_(flow_abort) {
  const uint32_t n = matrix->num_sources();
  cursors_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    cursors_.push_back(std::make_unique<ChannelTargetCursor>(
        matrix->channel(s, target_index), clock_));
  }
}

void FlowSink::ReleaseHeld() {
  if (held_cursor_ < 0) return;
  ChannelTargetCursor& held = *cursors_[held_cursor_];
  // A held cursor is never already exhausted (exhaustion happens on the
  // release of the end-of-flow segment), so exhausted() flipping true here
  // is exactly the transition.
  held.Release();
  if (held.exhausted()) ++exhausted_count_;
  held_cursor_ = -1;
}

bool FlowSink::TryConsumeSegment(SegmentView* out,
                                 ConsumeResult* out_result) {
  // Release the previously returned segment.
  ReleaseHeld();
  // Pop delivered channels off the ready list instead of scanning all
  // rings: cost is O(deliveries handled), independent of how many source
  // channels sit idle.
  uint32_t idx = 0;
  while (gate_->TryDequeue(&idx)) {
    ChannelTargetCursor& cursor = *cursors_[idx];
    if (cursor.exhausted()) continue;  // stale entry, already drained
    SegmentView view;
    if (!cursor.TryConsume(&view)) {
      // Entry raced an earlier pop that consumed this delivery. The stale
      // entry is an artifact of the ready list's real-time mirror of ring
      // state — how many occur depends on host scheduling, not on emulated
      // behavior — so charging virtual time here would leak host-schedule
      // noise into the consumer clock (and, through slot-release
      // timestamps, into producer wire times), breaking the determinism
      // contract. Count it for stats instead.
      ++stale_pops_;
      continue;
    }
    clock_->Advance(config_->consume_segment_fixed_ns);
    if (view.bytes == 0) {
      // Pure end-of-flow marker: recycle silently. (End markers may also
      // carry a final partial payload; those are surfaced normally.)
      cursor.Release();
      if (cursor.exhausted()) ++exhausted_count_;
      continue;
    }
    held_cursor_ = static_cast<int>(idx);
    *out = view;
    *out_result = ConsumeResult::kOk;
    return true;
  }
  if (exhausted_count_ == cursors_.size()) {
    *out_result = ConsumeResult::kFlowEnd;
    return true;  // definitive answer
  }
  // Nothing consumable: surface teardown through the non-blocking path too
  // (already-delivered segments above still drain ahead of the error).
  for (auto& cursor : cursors_) {
    if (!cursor->exhausted() && cursor->shared()->poisoned()) {
      last_status_ = cursor->shared()->poison_status();
      *out_result = ConsumeResult::kError;
      return true;
    }
  }
  return false;
}

bool FlowSink::CheckFailure(DeadlineWait* wait, ConsumeResult* out_result) {
  // Flow-level teardown first (flows with flow-granular abort semantics).
  if (flow_abort_ != nullptr && flow_abort_->tripped()) {
    last_status_ = flow_abort_->status();
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  // A crashed source never sends its end-of-flow marker; ask the fault
  // plan so the failure surfaces as kPeerFailed instead of waiting out the
  // full deadline. (Poison is detected in TryConsumeSegment.)
  const net::FaultPlan* plan =
      cursors_.empty() ? nullptr : cursors_[0]->shared()->fault_plan();
  if (plan != nullptr && plan->active()) {
    const SimTime now = wait->ProvisionalNow();
    for (uint32_t s = 0; s < cursors_.size(); ++s) {
      if (cursors_[s]->exhausted()) continue;
      const net::NodeId src = source_nodes_[s];
      if (src != net::kInvalidNode && !plan->NodeAlive(src, now)) {
        last_status_ = Status::PeerFailed(
            label_ + " source " + std::to_string(s) + " on node " +
            std::to_string(src) + " failed before closing its channel");
        wait->Commit();
        *out_result = ConsumeResult::kError;
        return true;
      }
    }
  }
  if (!wait->Tick()) {
    last_status_ = Status::DeadlineExceeded(
        label_ + " consume deadline elapsed with " +
        std::to_string(cursors_.size() - exhausted_count_) +
        " source channel(s) still open");
    wait->Commit();
    *out_result = ConsumeResult::kError;
    return true;
  }
  return false;
}

ConsumeResult FlowSink::ConsumeSegment(SegmentView* out) {
  DeadlineWait wait(*options_, clock_);
  for (;;) {
    // Capture the gate version before scanning so a delivery racing with
    // the scan is never missed.
    const uint64_t version = gate_->version();
    ConsumeResult result;
    if (TryConsumeSegment(out, &result)) return result;
    if (CheckFailure(&wait, &result)) return result;
    wait.Block(*gate_, version);
  }
}

ConsumeResult FlowSink::Consume(TupleView* out) {
  const uint32_t tuple_size =
      static_cast<uint32_t>(schema_->tuple_size());
  for (;;) {
    if (current_.payload != nullptr &&
        tuple_offset_ + tuple_size <= current_.bytes) {
      *out = TupleView(current_.payload + tuple_offset_, schema_);
      tuple_offset_ += tuple_size;
      clock_->Advance(config_->tuple_consume_fixed_ns);
      return ConsumeResult::kOk;
    }
    current_ = SegmentView{};
    tuple_offset_ = 0;
    SegmentView view;
    const ConsumeResult r = ConsumeSegment(&view);
    if (r != ConsumeResult::kOk) return r;
    current_ = view;
  }
}

void FlowSink::Abort(const Status& cause) {
  for (auto& cursor : cursors_) cursor->shared()->Poison(cause);
}

}  // namespace dfi
