#ifndef DFI_CORE_ENDPOINT_FLOW_SINK_H_
#define DFI_CORE_ENDPOINT_FLOW_SINK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/channel.h"
#include "core/endpoint/abort_latch.h"
#include "core/endpoint/channel_matrix.h"
#include "core/schema.h"
#include "net/fault_plan.h"

namespace dfi {

class DeadlineWait;

/// Target half of the unified transport: one worker thread's view of its
/// column of the channel matrix. Owns the per-source cursors and with them
/// everything the paper's section 5 target side does — serving segments in
/// delivery order off the ready gate (O(deliveries) instead of an
/// O(num_sources) ring scan), footer-driven release/recycle, end-of-flow
/// accounting, and deadline-bounded blocking that surfaces teardown
/// (poison / flow abort), crashed peers (fault plan) and the flow deadline
/// as kError. Flow types differ only in what they do with the consumed
/// segments (iterate, aggregate).
class FlowSink {
 public:
  /// `label` names the flow type in failure messages ("shuffle",
  /// "replicate", "combiner"). `flow_abort` (optional) is checked while
  /// blocked, for flows with flow-granular teardown.
  FlowSink(ChannelMatrix* matrix, uint32_t target_index,
           const Schema* schema, const net::SimConfig* config,
           VirtualClock* clock, std::string label,
           std::vector<net::NodeId> source_nodes,
           const AbortLatch* flow_abort = nullptr);

  FlowSink(const FlowSink&) = delete;
  FlowSink& operator=(const FlowSink&) = delete;

  /// Non-blocking: releases the previously returned segment, then serves
  /// the next delivered one. Returns false if nothing is currently
  /// consumable (out_result distinguishes empty from flow end / error).
  bool TryConsumeSegment(SegmentView* out, ConsumeResult* out_result);

  /// Blocking: next whole segment, zero-copy. The view is valid until the
  /// next ConsumeSegment/Consume call.
  ConsumeResult ConsumeSegment(SegmentView* out);

  /// Blocking: next tuple out of the flow. Returns kFlowEnd once every
  /// source has closed and all segments are drained.
  ConsumeResult Consume(TupleView* out);

  /// Aborts the target side of this column: sources blocked on its full
  /// rings wake with the cause instead of waiting out their deadline.
  void Abort(const Status& cause);

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  uint32_t num_sources() const {
    return static_cast<uint32_t>(cursors_.size());
  }
  uint32_t exhausted_count() const { return exhausted_count_; }

 private:
  /// Releases the held cursor (if any), tracking its exhaustion.
  void ReleaseHeld();
  /// One failure-poll round while blocked: surfaces flow teardown, crashed
  /// sources (fault plan), or the flow deadline as kError; ticks `wait`.
  /// Returns true when the consume call must stop. (Poison is detected in
  /// TryConsumeSegment.)
  bool CheckFailure(DeadlineWait* wait, ConsumeResult* out_result);

  ReadyGate* const gate_;
  const Schema* const schema_;
  const net::SimConfig* const config_;
  VirtualClock* const clock_;
  const FlowOptions* const options_;
  const std::string label_;
  const std::vector<net::NodeId> source_nodes_;
  const AbortLatch* const flow_abort_;  // may be null
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors_;  // per source
  uint32_t exhausted_count_ = 0;  // cursors that reached end-of-flow
  uint64_t stale_pops_ = 0;  // ready-gate entries that raced an earlier pop
  int held_cursor_ = -1;  // cursor whose segment `current_` views
  SegmentView current_;
  uint32_t tuple_offset_ = 0;  // iteration state within current_
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_FLOW_SINK_H_
