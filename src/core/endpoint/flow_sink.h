#ifndef DFI_CORE_ENDPOINT_FLOW_SINK_H_
#define DFI_CORE_ENDPOINT_FLOW_SINK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/channel.h"
#include "core/endpoint/abort_latch.h"
#include "core/endpoint/channel_matrix.h"
#include "core/schema.h"
#include "net/fault_plan.h"

namespace dfi {

class DeadlineWait;

/// One target column of the matrix, shared between the sink threads of a
/// same-node work-stealing group (opt-in via AdaptiveShuffleOptions). Owns
/// the per-source cursors; every access — including by the column's own
/// sink — goes through `mu`, which serializes consumption per channel and
/// thereby keeps per-channel content and order exactly as in the exclusive
/// path. What becomes scheduling-dependent is only *which* sink thread of
/// the group consumes a given segment.
class StealColumn {
 public:
  StealColumn(ChannelMatrix* matrix, uint32_t target_index);

  StealColumn(const StealColumn&) = delete;
  StealColumn& operator=(const StealColumn&) = delete;

  uint32_t target_index() const { return target_index_; }
  ReadyGate* gate() { return gate_; }
  const FlowOptions& options() const { return *options_; }
  /// The flow's per-target queue-depth board (null when the matrix carries
  /// none); lets the owner detect its own column saturating.
  const TargetLoadBoard* board() const { return board_; }

  /// Virtual clock and estimated per-segment processing cost of the
  /// column's owning sink, published by the owner on every consume call.
  /// The group schedules consumption by estimated completion times (see
  /// FlowSink::TryConsumeSegmentColumn): host threads race ahead of
  /// virtual time essentially for free, so without this a host-fast sink
  /// would vacuum up the whole group's segments and charge their cost to
  /// its own clock — *inflating* the emulated completion instead of
  /// improving it.
  std::atomic<SimTime> owner_now{0};
  std::atomic<SimTime> owner_cost{0};

  /// All members below are guarded by `mu`.
  std::mutex mu;
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors;  // per source
  /// Cursor is checked out by some sink (its segment is being iterated).
  std::vector<uint8_t> busy;
  /// Ready-gate entries popped while their cursor was busy: replayed onto
  /// the gate when the cursor is released, so no delivery announcement is
  /// ever lost and the pop loop never cycles over busy entries.
  std::vector<uint32_t> deferred;
  uint32_t exhausted = 0;  // cursors that reached end-of-flow

  bool AllExhaustedLocked() const {
    return exhausted == static_cast<uint32_t>(cursors.size());
  }

 private:
  const uint32_t target_index_;
  ReadyGate* const gate_;
  const FlowOptions* const options_;
  const TargetLoadBoard* const board_;
};

/// The same-node sink group: its columns plus one group-level wakeup that
/// every channel delivery (and release) bumps, so an idle sink wakes to
/// steal work queued for a busy sibling.
class SinkStealGroup {
 public:
  void AddColumn(StealColumn* column) { columns_.push_back(column); }
  const std::vector<StealColumn*>& columns() { return columns_; }
  ReadyGate& wake() { return wake_; }

  /// True once every column of the group is fully drained (locks each
  /// column briefly).
  bool AllExhausted();

 private:
  std::vector<StealColumn*> columns_;
  ReadyGate wake_;
};

/// Target half of the unified transport: one worker thread's view of its
/// column of the channel matrix. Owns the per-source cursors and with them
/// everything the paper's section 5 target side does — serving segments in
/// delivery order off the ready gate (O(deliveries) instead of an
/// O(num_sources) ring scan), footer-driven release/recycle, end-of-flow
/// accounting, and deadline-bounded blocking that surfaces teardown
/// (poison / flow abort), crashed peers (fault plan) and the flow deadline
/// as kError. Flow types differ only in what they do with the consumed
/// segments (iterate, aggregate).
class FlowSink {
 public:
  /// `label` names the flow type in failure messages ("shuffle",
  /// "replicate", "combiner"). `flow_abort` (optional) is checked while
  /// blocked, for flows with flow-granular teardown.
  FlowSink(ChannelMatrix* matrix, uint32_t target_index,
           const Schema* schema, const net::SimConfig* config,
           VirtualClock* clock, std::string label,
           std::vector<net::NodeId> source_nodes,
           const AbortLatch* flow_abort = nullptr);

  /// Work-stealing mode: this sink owns `column` but drains the whole
  /// `group` — its own column first, then (one-pass, opportunistic) the
  /// sibling columns. Virtual consume costs are charged to *this* sink's
  /// clock for whatever it eats, stolen or not. Flow end is the whole
  /// group drained, so a sink returns kFlowEnd only once no sibling could
  /// still hand it work.
  FlowSink(StealColumn* column, SinkStealGroup* group, const Schema* schema,
           const net::SimConfig* config, VirtualClock* clock,
           std::string label, std::vector<net::NodeId> source_nodes,
           const AbortLatch* flow_abort = nullptr);

  FlowSink(const FlowSink&) = delete;
  FlowSink& operator=(const FlowSink&) = delete;

  /// Non-blocking: releases the previously returned segment, then serves
  /// the next delivered one. Returns false if nothing is currently
  /// consumable (out_result distinguishes empty from flow end / error).
  bool TryConsumeSegment(SegmentView* out, ConsumeResult* out_result);

  /// Blocking: next whole segment, zero-copy. The view is valid until the
  /// next ConsumeSegment/Consume call.
  ConsumeResult ConsumeSegment(SegmentView* out);

  /// Blocking: next tuple out of the flow. Returns kFlowEnd once every
  /// source has closed and all segments are drained.
  ConsumeResult Consume(TupleView* out);

  /// Aborts the target side of this column: sources blocked on its full
  /// rings wake with the cause instead of waiting out their deadline.
  void Abort(const Status& cause);

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  uint32_t num_sources() const {
    return static_cast<uint32_t>(
        column_ != nullptr ? column_->cursors.size() : cursors_.size());
  }
  uint32_t exhausted_count() const { return exhausted_count_; }
  /// Work-stealing mode: segments this sink consumed from sibling columns.
  uint64_t stolen_segments() const { return stolen_segments_; }

 private:
  /// Releases the held cursor (if any), tracking its exhaustion.
  void ReleaseHeld();
  /// One failure-poll round while blocked: surfaces flow teardown, crashed
  /// sources (fault plan), or the flow deadline as kError; ticks `wait`.
  /// Returns true when the consume call must stop. (Poison is detected in
  /// TryConsumeSegment.)
  bool CheckFailure(DeadlineWait* wait, ConsumeResult* out_result);

  // Work-stealing-mode internals (column_ != nullptr).
  void ReleaseHeldColumn();
  /// Replays deferred gate entries of cursor `idx` (column locked).
  static void ReplayDeferredLocked(StealColumn* col, uint32_t idx);
  /// Pops and consumes from one column; fills out/out_result on success.
  bool ScanColumnLocked(StealColumn* col, SegmentView* out,
                        ConsumeResult* out_result);
  /// True when some channel of the own column runs its ring within one
  /// segment of full — its producer may be about to block on a slot that
  /// only consumption can free, so the peak sink must not defer.
  bool OwnColumnRingPressure();
  bool TryConsumeSegmentColumn(SegmentView* out, ConsumeResult* out_result);

  ReadyGate* const gate_;
  const uint32_t target_index_;
  const Schema* const schema_;
  const net::SimConfig* const config_;
  VirtualClock* const clock_;
  const FlowOptions* const options_;
  const std::string label_;
  const std::vector<net::NodeId> source_nodes_;
  const AbortLatch* const flow_abort_;  // may be null
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors_;  // per source
  /// Work-stealing mode (else null): own column, the node group, and the
  /// own column's position within the group's scan order.
  StealColumn* const column_ = nullptr;
  SinkStealGroup* const group_ = nullptr;
  size_t own_pos_ = 0;
  StealColumn* held_col_ = nullptr;  // column of the held cursor
  uint64_t stolen_segments_ = 0;
  /// EWMA of this sink's app-side processing cost per segment (the clock
  /// advance between returning a segment and the next consume call);
  /// published on the own column for the group's completion estimates.
  SimTime my_cost_ = 0;
  bool cost_sample_armed_ = false;
  SimTime cost_sample_start_ = 0;
  SimTime last_published_now_ = 0;
  uint32_t exhausted_count_ = 0;  // cursors that reached end-of-flow
  uint64_t stale_pops_ = 0;  // ready-gate entries that raced an earlier pop
  int held_cursor_ = -1;  // cursor whose segment `current_` views
  SegmentView current_;
  uint32_t tuple_offset_ = 0;  // iteration state within current_
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_FLOW_SINK_H_
